//! End-to-end integration tests spanning every crate: generate →
//! preprocess → coarsen → construct → partition → verify.

use multilevel_coarsen::coarsen::construct::intra_aggregate_weight;
use multilevel_coarsen::graph::cc::is_connected;
use multilevel_coarsen::graph::metrics::edge_cut;
use multilevel_coarsen::graph::suite;
use multilevel_coarsen::prelude::*;

#[test]
fn mini_suite_full_pipeline_every_method() {
    let policy = ExecPolicy::host();
    for ng in suite::mini_suite(42) {
        let g = &ng.graph;
        assert!(is_connected(g), "{}", ng.name);
        for method in MapMethod::TABLE4 {
            let opts = CoarsenOptions {
                method,
                ..Default::default()
            };
            let h = coarsen(&policy, g, &opts);
            // Every level is a valid weighted graph with conserved totals.
            let mut fine = g.clone();
            for level in &h.levels {
                level
                    .graph
                    .validate()
                    .unwrap_or_else(|e| panic!("{}/{method:?}: {e}", ng.name));
                let intra = intra_aggregate_weight(&policy, &fine, &level.mapping);
                assert_eq!(
                    level.graph.total_edge_weight() + intra,
                    fine.total_edge_weight(),
                    "{}/{method:?}: weight conservation",
                    ng.name
                );
                assert_eq!(level.graph.total_vwgt(), fine.total_vwgt());
                fine = level.graph.clone();
            }
            // Partition via FM from this hierarchy's method.
            let r = fm_bisect(&policy, g, &opts, &FmConfig::default(), 7);
            assert_eq!(r.cut, edge_cut(g, &r.part), "{}/{method:?}", ng.name);
            assert!(
                r.imbalance <= 1.05,
                "{}/{method:?}: imbalance {}",
                ng.name,
                r.imbalance
            );
        }
    }
}

#[test]
fn construction_methods_identical_on_mini_suite() {
    let policy = ExecPolicy::host();
    for ng in suite::mini_suite(11) {
        let g = &ng.graph;
        let (mapping, _) = find_mapping(&policy, g, MapMethod::SeqHec, 3);
        let mut graphs = Vec::new();
        for cm in ConstructMethod::ALL {
            let opts = ConstructOptions::with_method(cm);
            graphs.push((cm, construct_coarse_graph(&policy, g, &mapping, &opts)));
        }
        for (cm, c) in &graphs[1..] {
            assert_eq!(c, &graphs[0].1, "{}: {cm:?} differs from Sort", ng.name);
        }
    }
}

#[test]
fn spectral_and_fm_agree_on_an_easy_instance() {
    // Two well-separated communities: both refinements must find the
    // 2-edge bottleneck.
    let mut edges = Vec::new();
    for c in 0..2u32 {
        let base = c * 30;
        for i in 0..30u32 {
            for d in 1..=3u32 {
                edges.push((base + i, base + (i + d) % 30));
            }
        }
    }
    edges.push((0, 30));
    edges.push((15, 45));
    let g = multilevel_coarsen::graph::builder::from_edges_unit(60, &edges);
    let policy = ExecPolicy::host();
    // The heuristics are randomized; the best of a few seeds must find the
    // optimal bottleneck.
    let fm_best = (0..5)
        .map(|s| {
            fm_bisect(
                &policy,
                &g,
                &CoarsenOptions::default(),
                &FmConfig::default(),
                s,
            )
            .cut
        })
        .min()
        .unwrap();
    let sp_best = (0..3)
        .map(|s| {
            spectral_bisect(
                &policy,
                &g,
                &CoarsenOptions::default(),
                &SpectralConfig::default(),
                s,
            )
            .cut
        })
        .min()
        .unwrap();
    assert_eq!(fm_best, 2, "FM should find the 2-edge bottleneck");
    assert_eq!(sp_best, 2, "spectral should find the 2-edge bottleneck");
}

#[test]
fn hierarchy_projection_preserves_any_coarse_cut() {
    let policy = ExecPolicy::host();
    for ng in suite::mini_suite(5) {
        let g = &ng.graph;
        let h = coarsen(&policy, g, &CoarsenOptions::default());
        let coarsest = h.coarsest();
        for seed in 0..3u64 {
            let part: Vec<u32> = (0..coarsest.n())
                .map(|u| (mlcg(seed, u) % 2) as u32)
                .collect();
            let coarse_cut = edge_cut(coarsest, &part);
            let fine = h.project_to_fine(&part);
            assert_eq!(edge_cut(g, &fine), coarse_cut, "{} seed {seed}", ng.name);
        }
    }
}

fn mlcg(seed: u64, u: usize) -> u64 {
    multilevel_coarsen::par::rng::hash_index(seed, u as u64)
}

#[test]
fn device_and_host_policies_agree_on_quality_class() {
    // Device-sim vs host must produce hierarchies of comparable depth and
    // partitions of comparable cut on the same input.
    let g = multilevel_coarsen::graph::generators::grid2d(48, 48);
    let host = ExecPolicy::host();
    let dev = ExecPolicy::device_sim();
    let h1 = coarsen(&host, &g, &CoarsenOptions::default());
    let h2 = coarsen(&dev, &g, &CoarsenOptions::default());
    assert!((h1.num_levels() as i64 - h2.num_levels() as i64).abs() <= 2);
    let r1 = fm_bisect(
        &host,
        &g,
        &CoarsenOptions::default(),
        &FmConfig::default(),
        3,
    );
    let r2 = fm_bisect(
        &dev,
        &g,
        &CoarsenOptions::default(),
        &FmConfig::default(),
        3,
    );
    let ratio = r1.cut.max(r2.cut) as f64 / r1.cut.min(r2.cut).max(1) as f64;
    assert!(
        ratio < 2.0,
        "cut quality diverged: {} vs {}",
        r1.cut,
        r2.cut
    );
}

#[test]
fn metis_like_baselines_complete_on_mini_suite() {
    let policy = ExecPolicy::host();
    for ng in suite::mini_suite(19) {
        let g = &ng.graph;
        let a = metis_like(g, 3);
        let b = mtmetis_like(&policy, g, 3);
        assert!(a.cut > 0 || g.m() == 0);
        assert!(b.cut > 0 || g.m() == 0);
        assert!(
            a.imbalance <= 1.1,
            "{}: metis-like imbalance {}",
            ng.name,
            a.imbalance
        );
        assert!(
            b.imbalance <= 1.1,
            "{}: mtmetis-like imbalance {}",
            ng.name,
            b.imbalance
        );
    }
}

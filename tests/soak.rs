//! Larger-scale soak tests, `#[ignore]`d by default (run with
//! `cargo test --release -- --ignored` on a machine with time to spare).
//! They exercise the same pipelines as the regular integration tests at
//! `--scale 1` corpus sizes, watching for nonlinear blow-ups.

use multilevel_coarsen::graph::suite;
use multilevel_coarsen::prelude::*;

#[test]
#[ignore = "scale-1 corpus; several minutes on a laptop"]
fn full_corpus_coarsens_at_scale_one() {
    let policy = ExecPolicy::host();
    for name in suite::REGULAR.iter().chain(suite::SKEWED.iter()) {
        let g = suite::by_name(name, 1, 42).unwrap();
        let h = coarsen(&policy, &g, &CoarsenOptions::default());
        assert!(
            h.coarsest().n() <= 50,
            "{name}: stopped at {} vertices",
            h.coarsest().n()
        );
        for level in &h.levels {
            level
                .graph
                .validate()
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}

#[test]
#[ignore = "scale-1 partition sweep; several minutes"]
fn fm_partition_quality_holds_at_scale_one() {
    let policy = ExecPolicy::host();
    for name in ["rgg", "delaunay", "kron", "hollywood-sim"] {
        let g = suite::by_name(name, 1, 42).unwrap();
        let r = fm_bisect(
            &policy,
            &g,
            &CoarsenOptions::default(),
            &FmConfig::default(),
            7,
        );
        assert!(r.imbalance <= 1.05, "{name}: imbalance {}", r.imbalance);
        assert!(r.cut > 0);
        // The cut should be a small fraction of total edges on these graphs.
        assert!(
            (r.cut as f64) < 0.6 * g.total_edge_weight() as f64,
            "{name}: cut {} of {}",
            r.cut,
            g.total_edge_weight()
        );
    }
}

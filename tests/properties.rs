//! Cross-crate property-based tests: random graphs and mappings must
//! satisfy the paper's structural invariants for every algorithm
//! combination.
//!
//! Randomized via the dependency-free `mlcg_par::proplite` harness; a
//! failing case prints the seed that reproduces it.

use multilevel_coarsen::coarsen::construct::intra_aggregate_weight;
use multilevel_coarsen::graph::builder::from_edges_weighted;
use multilevel_coarsen::graph::cc::largest_component;
use multilevel_coarsen::graph::metrics::edge_cut;
use multilevel_coarsen::graph::Csr;
use multilevel_coarsen::par::proplite::{run_cases, Gen};
use multilevel_coarsen::prelude::*;

/// A connected random weighted graph with 2..=60 vertices.
fn connected_graph(g: &mut Gen) -> Csr {
    let n = g.usize_in(2, 60);
    let seed = g.u64();
    let mut rng = multilevel_coarsen::par::rng::Xoshiro256pp::new(seed);
    let mut edges: Vec<(u32, u32, u64)> = Vec::new();
    // Random spanning tree ensures connectivity.
    for v in 1..n as u32 {
        let u = rng.next_below(v as u64) as u32;
        edges.push((u, v, 1 + rng.next_below(9)));
    }
    // Extra random edges.
    let extra = rng.next_below(3 * n as u64) as usize;
    for _ in 0..extra {
        let a = rng.next_below(n as u64) as u32;
        let b = rng.next_below(n as u64) as u32;
        if a != b {
            edges.push((a, b, 1 + rng.next_below(9)));
        }
    }
    let (g, _) = largest_component(&from_edges_weighted(n, &edges));
    g
}

#[test]
fn every_mapper_yields_complete_contiguous_mappings() {
    run_cases(48, 0xC1, |gen| {
        let g = connected_graph(gen);
        let seed = gen.u64();
        let policy = ExecPolicy::serial();
        for method in [
            MapMethod::Hec,
            MapMethod::Hec2,
            MapMethod::Hec3,
            MapMethod::Hem,
            MapMethod::MtMetis,
            MapMethod::Gosh,
            MapMethod::GoshHec,
            MapMethod::Mis2,
            MapMethod::SeqHec,
            MapMethod::SeqHem,
        ] {
            let (m, _) = find_mapping(&policy, &g, method, seed);
            assert!(m.validate().is_ok(), "{method:?}: {:?}", m.validate());
            assert!(
                m.n_coarse < g.n() || g.n() <= 1,
                "{method:?} made no progress"
            );
        }
    });
}

#[test]
fn construction_methods_agree_and_conserve_weight() {
    run_cases(48, 0xC2, |gen| {
        let g = connected_graph(gen);
        let seed = gen.u64();
        let policy = ExecPolicy::serial();
        let (mapping, _) = find_mapping(&policy, &g, MapMethod::Hec, seed);
        let mut first: Option<Csr> = None;
        for cm in ConstructMethod::ALL {
            for threshold in [0.0, f64::INFINITY] {
                let opts = ConstructOptions {
                    method: cm,
                    degree_dedup_skew_threshold: threshold,
                };
                let c = construct_coarse_graph(&policy, &g, &mapping, &opts);
                assert!(c.validate().is_ok(), "{cm:?}: {:?}", c.validate());
                assert_eq!(
                    c.total_edge_weight() + intra_aggregate_weight(&policy, &g, &mapping),
                    g.total_edge_weight()
                );
                match &first {
                    None => first = Some(c),
                    Some(f) => assert_eq!(&c, f, "{cm:?}/{threshold} differs"),
                }
            }
        }
    });
}

#[test]
fn matchings_never_exceed_pair_size() {
    run_cases(48, 0xC3, |gen| {
        let g = connected_graph(gen);
        let seed = gen.u64();
        let policy = ExecPolicy::serial();
        for method in [MapMethod::Hem, MapMethod::MtMetis, MapMethod::SeqHem] {
            let (m, _) = find_mapping(&policy, &g, method, seed);
            let max = m.aggregate_sizes().into_iter().max().unwrap_or(0);
            assert!(max <= 2, "{method:?} aggregate size {max}");
        }
    });
}

#[test]
fn fm_never_increases_cut_and_stays_balanced() {
    run_cases(48, 0xC4, |gen| {
        let g = connected_graph(gen);
        let seed = gen.u64();
        let mut rng = multilevel_coarsen::par::rng::Xoshiro256pp::new(seed);
        let mut part: Vec<u32> = (0..g.n()).map(|_| rng.next_below(2) as u32).collect();
        // Repair balance to within one vertex before refining.
        loop {
            let ones = part.iter().filter(|&&p| p == 1).count();
            let zeros = part.len() - ones;
            if ones.abs_diff(zeros) <= 1 {
                break;
            }
            let from = u32::from(ones > zeros);
            let idx = part.iter().position(|&p| p == from).unwrap();
            part[idx] = 1 - from;
        }
        let before = edge_cut(&g, &part);
        let after =
            multilevel_coarsen::partition::fm::fm_refine(&g, &mut part, &FmConfig::default());
        assert!(after <= before, "FM worsened {before} -> {after}");
        assert_eq!(after, edge_cut(&g, &part));
        let (w0, w1) = multilevel_coarsen::graph::metrics::part_weights(&g, &part);
        let total = w0 + w1;
        assert!(
            w0.max(w1) <= (total.div_ceil(2) as f64 * 1.03) as u64 + 1,
            "imbalanced: {w0}/{w1}"
        );
    });
}

#[test]
fn coarsening_projection_preserves_cut() {
    run_cases(48, 0xC5, |gen| {
        let g = connected_graph(gen);
        let seed = gen.u64();
        let policy = ExecPolicy::serial();
        let opts = CoarsenOptions {
            cutoff: 8,
            seed,
            ..Default::default()
        };
        let h = coarsen(&policy, &g, &opts);
        let nc = h.coarsest().n();
        let part: Vec<u32> = (0..nc as u32).map(|u| u % 2).collect();
        let coarse_cut = edge_cut(h.coarsest(), &part);
        let fine = h.project_to_fine(&part);
        assert_eq!(edge_cut(&g, &fine), coarse_cut);
    });
}

#[test]
fn prefix_sums_and_sorts_compose() {
    run_cases(48, 0xC6, |gen| {
        let mut values = gen.vec_u64(300, 100);
        // exclusive_scan(values)[i] + values_orig[i] == inclusive at i.
        let policy = ExecPolicy::serial();
        let orig = values.clone();
        let total = multilevel_coarsen::par::scan::exclusive_scan(&policy, &mut values);
        assert_eq!(total, orig.iter().sum::<u64>());
        for i in 0..orig.len() {
            let expect: u64 = orig[..i].iter().sum();
            assert_eq!(values[i], expect);
        }
    });
}

//! Observability-layer integration tests: trace span/counter/gauge
//! structure for the full pipeline, cross-policy determinism of the
//! deterministic mapping methods, opt-in invariant audits across the
//! mini corpus, and negative tests pinning a corrupted hierarchy to the
//! failing phase by name.

use multilevel_coarsen::graph::suite;
use multilevel_coarsen::partition::{fm_bisect, spectral_bisect, FmConfig, SpectralConfig};
use multilevel_coarsen::prelude::*;

fn traced_opts(method: MapMethod, cm: ConstructMethod, validate: bool) -> CoarsenOptions {
    let trace = if validate {
        TraceCollector::enabled_with_validation()
    } else {
        TraceCollector::enabled()
    };
    CoarsenOptions {
        method,
        construction: ConstructOptions::with_method(cm),
        seed: 42,
        trace,
        ..Default::default()
    }
}

#[test]
fn coarsen_trace_has_spans_counters_and_gauges_per_level() {
    let g = multilevel_coarsen::graph::generators::grid2d(32, 32);
    let opts = traced_opts(MapMethod::Hec, ConstructMethod::Hash, false);
    let h = coarsen(&ExecPolicy::host(), &g, &opts);
    assert!(
        h.num_levels() >= 2,
        "grid should coarsen through several levels"
    );
    for lvl in 0..h.num_levels() {
        for path in [
            format!("mapping/hec/level{lvl}"),
            format!("construct/hash/level{lvl}"),
        ] {
            assert!(
                h.trace
                    .spans
                    .iter()
                    .any(|s| s.path == path && s.seconds >= 0.0),
                "missing span {path}"
            );
        }
        for gauge in [
            "nv",
            "ne",
            "compression",
            "matched_frac",
            "max_coarse_degree",
        ] {
            let path = format!("level/{lvl}/{gauge}");
            assert!(h.trace.gauge(&path).is_some(), "missing gauge {path}");
        }
        // The per-level nv gauge must agree with the hierarchy itself.
        let nv = h.trace.gauge(&format!("level/{lvl}/nv")).unwrap();
        assert_eq!(nv as usize, h.levels[lvl].graph.n());
    }
    assert!(h.trace.counter("mapping/edges_scanned") >= g.adj().len() as u64);
    // Grids stay below the skew threshold, so the vertex-centric path runs
    // exactly two full-adjacency traversals per level (fused count +
    // scatter) while mapping runs one.
    assert_eq!(
        h.trace.counter("construct/edges_scanned"),
        2 * h.trace.counter("mapping/edges_scanned")
    );
    assert!(h.trace.counter("mapping/passes") as usize >= h.num_levels());
    // No audits were requested, and the aggregate mapping time covers all
    // levels (span_seconds stops at `/` boundaries).
    assert!(h.trace.audits.is_empty());
    assert!(h.trace.span_seconds("mapping") > 0.0);
}

#[test]
fn partition_results_carry_full_pipeline_traces() {
    let g = multilevel_coarsen::graph::generators::grid2d(24, 24);
    let policy = ExecPolicy::host();

    let opts = traced_opts(MapMethod::Hec, ConstructMethod::Sort, false);
    let r = fm_bisect(&policy, &g, &opts, &FmConfig::default(), 42);
    for path in [
        "partition/fm/coarsen",
        "partition/fm/refine",
        "fm/pass0",
        "mapping/hec/level0",
    ] {
        assert!(
            r.trace.spans.iter().any(|s| s.path == path),
            "fm trace missing span {path}"
        );
    }
    assert!(r.trace.span_seconds("partition/fm") > 0.0);

    let opts = traced_opts(MapMethod::Hec, ConstructMethod::Sort, false);
    let r = spectral_bisect(&policy, &g, &opts, &SpectralConfig::default(), 42);
    for path in [
        "partition/spectral/coarsen",
        "partition/spectral/refine",
        "fiedler/coarsest",
    ] {
        assert!(
            r.trace.spans.iter().any(|s| s.path == path),
            "spectral trace missing {path}"
        );
    }
    assert!(r.trace.counter("fiedler/power_iterations") > 0);
    // The JSON-lines export round-trips basic shape: one object per line.
    let jsonl = r.trace.to_jsonl_string();
    assert!(jsonl.lines().count() >= r.trace.spans.len());
    for line in jsonl.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "bad JSONL line: {line}"
        );
    }
}

#[test]
fn deterministic_methods_agree_across_policies() {
    // HEC and MIS2 resolve ties by vertex index, so every execution policy
    // (1 worker or N) must produce bit-identical hierarchies per seed.
    for ng in suite::mini_suite(42) {
        for method in [MapMethod::Hec, MapMethod::Mis2] {
            let opts = CoarsenOptions {
                method,
                seed: 7,
                trace: TraceCollector::disabled(),
                ..Default::default()
            };
            let baseline = coarsen(&ExecPolicy::serial(), &ng.graph, &opts);
            for policy in ExecPolicy::all_test_policies() {
                let h = coarsen(&policy, &ng.graph, &opts);
                assert_eq!(
                    h.num_levels(),
                    baseline.num_levels(),
                    "{}/{method:?}/{policy}: level count",
                    ng.name
                );
                for (lvl, (a, b)) in h.levels.iter().zip(&baseline.levels).enumerate() {
                    assert_eq!(
                        a.mapping.map, b.mapping.map,
                        "{}/{method:?}/{policy}: mapping at level {lvl}",
                        ng.name
                    );
                    assert_eq!(
                        a.graph, b.graph,
                        "{}/{method:?}/{policy}: graph at level {lvl}",
                        ng.name
                    );
                }
            }
        }
    }
}

#[test]
fn audits_pass_for_every_method_and_construction_on_mini_suite() {
    let policy = ExecPolicy::host();
    for ng in suite::mini_suite(42) {
        for method in MapMethod::TABLE4 {
            for cm in ConstructMethod::ALL {
                let opts = traced_opts(method, cm, true);
                let h = coarsen(&policy, &ng.graph, &opts);
                assert!(
                    !h.trace.audits.is_empty(),
                    "{}/{method:?}/{cm:?}: validation recorded no audits",
                    ng.name
                );
                if let Some(fail) = h.trace.first_failed_audit() {
                    panic!(
                        "{}/{method:?}/{cm:?}: audit {} failed in {}: {}",
                        ng.name, fail.check, fail.phase, fail.detail
                    );
                }
            }
        }
    }
}

#[test]
fn corrupted_mapping_is_pinned_to_its_phase() {
    let g = multilevel_coarsen::graph::generators::grid2d(24, 24);
    let policy = ExecPolicy::serial();
    let mut h = coarsen(&policy, &g, &CoarsenOptions::default());
    assert!(h.num_levels() >= 2);
    h.levels[1].mapping.map[0] = u32::MAX;
    let trace = TraceCollector::enabled_with_validation();
    audit_hierarchy(&policy, &trace, &h);
    let fail = trace
        .report()
        .first_failed_audit()
        .cloned()
        .expect("corruption not detected");
    assert_eq!(fail.phase, "mapping/level1");
    assert_eq!(fail.check, "mapping-complete");
}

#[test]
fn corrupted_row_ptr_is_pinned_to_its_phase() {
    let g = multilevel_coarsen::graph::generators::grid2d(24, 24);
    let policy = ExecPolicy::serial();
    let mut h = coarsen(&policy, &g, &CoarsenOptions::default());
    // Rebuild level 0's coarse graph with a non-monotone row_ptr. The last
    // entry stays correct, so construction accepts it — only the audit's
    // CSR well-formedness check can catch it.
    let c = &h.levels[0].graph;
    let mut xadj = c.xadj_vec();
    assert!(xadj.len() > 3);
    xadj.swap(1, 2);
    assert!(xadj[1] > xadj[2], "swap must break monotonicity");
    let vwgt = c.vwgt().to_vec();
    let mut bad = Csr::from_parts(xadj, c.adj().to_vec(), c.wgt().to_vec());
    bad.set_vwgt(vwgt);
    h.levels[0].graph = bad;

    let trace = TraceCollector::enabled_with_validation();
    audit_hierarchy(&policy, &trace, &h);
    let fail = trace
        .report()
        .first_failed_audit()
        .cloned()
        .expect("corruption not detected");
    assert_eq!(fail.phase, "construct/level0");
    assert_eq!(fail.check, "csr-wellformed");
}

#[test]
fn env_var_enables_validation_and_names_the_failing_phase() {
    // MLCG_VALIDATE=1 must be enough to get audits through the default
    // options path — the repro binary relies on this.
    std::env::set_var("MLCG_VALIDATE", "1");
    let trace = TraceCollector::from_env();
    std::env::remove_var("MLCG_VALIDATE");
    assert!(trace.validate_enabled());

    let g = multilevel_coarsen::graph::generators::grid2d(16, 16);
    let policy = ExecPolicy::serial();
    let mut h = coarsen(&policy, &g, &CoarsenOptions::default());
    h.levels[0].mapping.map[3] = (h.levels[0].mapping.n_coarse + 5) as u32;
    audit_hierarchy(&policy, &trace, &h);
    let report = trace.report();
    let fail = report
        .first_failed_audit()
        .expect("corruption not detected");
    assert_eq!(fail.phase, "mapping/level0");
    assert!(
        !fail.detail.is_empty(),
        "failure should carry a diagnostic detail"
    );
}

#[test]
fn disabled_collector_records_nothing_through_the_full_pipeline() {
    let g = multilevel_coarsen::graph::generators::grid2d(16, 16);
    let opts = CoarsenOptions {
        trace: TraceCollector::disabled(),
        ..Default::default()
    };
    let r = fm_bisect(&ExecPolicy::host(), &g, &opts, &FmConfig::default(), 42);
    assert!(r.trace.is_empty(), "disabled tracing must record nothing");
}

//! Integration tests for the features this reproduction adds beyond the
//! paper's evaluation: Suitor/b-Suitor coarsening, the hybrid dedup
//! construction, ACE weighted aggregation, k-way partitioning, and the
//! parallel refinement — each exercised end-to-end.

use multilevel_coarsen::coarsen::ace::{ace_coarsen, AceOptions};
use multilevel_coarsen::coarsen::mapping::suitor::b_suitor;
use multilevel_coarsen::graph::metrics::edge_cut;
use multilevel_coarsen::graph::suite;
use multilevel_coarsen::partition::kway::kway_partition;
use multilevel_coarsen::partition::parref::{parfm_bisect, ParRefConfig};
use multilevel_coarsen::prelude::*;

#[test]
fn suitor_drives_a_full_multilevel_partition() {
    let policy = ExecPolicy::host();
    for ng in suite::mini_suite(3) {
        let opts = CoarsenOptions {
            method: MapMethod::Suitor,
            ..Default::default()
        };
        let r = fm_bisect(&policy, &ng.graph, &opts, &FmConfig::default(), 5);
        assert_eq!(r.cut, edge_cut(&ng.graph, &r.part), "{}", ng.name);
        assert!(
            r.imbalance <= 1.05,
            "{}: imbalance {}",
            ng.name,
            r.imbalance
        );
        assert!(r.levels >= 1, "{}", ng.name);
    }
}

#[test]
fn hybrid_construction_equals_sort_along_a_hierarchy() {
    let policy = ExecPolicy::host();
    for ng in suite::mini_suite(9) {
        let mk = |cm| CoarsenOptions {
            construction: ConstructOptions::with_method(cm),
            ..Default::default()
        };
        let a = coarsen(&policy, &ng.graph, &mk(ConstructMethod::Sort));
        let b = coarsen(&policy, &ng.graph, &mk(ConstructMethod::Hybrid));
        assert_eq!(a.num_levels(), b.num_levels(), "{}", ng.name);
        for (la, lb) in a.levels.iter().zip(&b.levels) {
            assert_eq!(la.graph, lb.graph, "{}: hybrid dedup diverged", ng.name);
        }
    }
}

#[test]
fn b_suitor_coarsens_deeper_with_larger_b() {
    let policy = ExecPolicy::serial();
    for ng in suite::mini_suite(5) {
        let (m1, _) = b_suitor(&policy, &ng.graph, 1, 3);
        let (m2, _) = b_suitor(&policy, &ng.graph, 2, 3);
        assert!(
            m2.n_coarse <= m1.n_coarse,
            "{}: b=2 gave {} vs b=1 {}",
            ng.name,
            m2.n_coarse,
            m1.n_coarse
        );
        m1.validate().unwrap();
        m2.validate().unwrap();
    }
}

#[test]
fn ace_levels_stack_into_a_multilevel_hierarchy() {
    // Chain two ACE levels manually: coarse operator of level 1 (rounded
    // to a graph) feeds level 2.
    let g = multilevel_coarsen::graph::generators::grid2d(20, 20);
    let policy = ExecPolicy::host();
    let l1 = ace_coarsen(&policy, &g, &AceOptions::default());
    assert!(l1.seeds.len() < g.n());
    assert!(l1.seeds.len() > 20);
    // The coarse operator's diagonal carries intra-aggregate weight; its
    // off-diagonal pattern must connect the seeds (no empty rows).
    for i in 0..l1.coarse.n_rows {
        assert!(!l1.coarse.row(i).0.is_empty(), "isolated coarse vertex {i}");
    }
}

#[test]
fn kway_and_parref_on_the_mini_suite() {
    let policy = ExecPolicy::host();
    for ng in suite::mini_suite(13) {
        let g = &ng.graph;
        let kw = kway_partition(
            &policy,
            g,
            4,
            &CoarsenOptions::default(),
            &FmConfig::default(),
            3,
        );
        assert_eq!(kw.cut, edge_cut(g, &kw.part), "{}", ng.name);
        assert!(
            kw.imbalance <= 1.4,
            "{}: kway imbalance {}",
            ng.name,
            kw.imbalance
        );

        let pr = parfm_bisect(
            &policy,
            g,
            &CoarsenOptions::default(),
            &ParRefConfig::default(),
            3,
        );
        let fm = fm_bisect(
            &policy,
            g,
            &CoarsenOptions::default(),
            &FmConfig::default(),
            3,
        );
        assert!(
            pr.cut as f64 <= 2.5 * fm.cut.max(1) as f64,
            "{}: parallel refinement too weak ({} vs {})",
            ng.name,
            pr.cut,
            fm.cut
        );
    }
}

//! Failure-injection and adversarial-input tests: pathological graph
//! shapes, extreme weights, degenerate sizes, and misuse that must be
//! rejected loudly rather than silently corrupting results.

use multilevel_coarsen::graph::builder::{from_edges_unit, from_edges_weighted};
use multilevel_coarsen::graph::generators as gen;
use multilevel_coarsen::graph::metrics::edge_cut;
use multilevel_coarsen::graph::Csr;
use multilevel_coarsen::prelude::*;

fn all_parallel_methods() -> Vec<MapMethod> {
    vec![
        MapMethod::Hec,
        MapMethod::Hec2,
        MapMethod::Hec3,
        MapMethod::Hem,
        MapMethod::MtMetis,
        MapMethod::Gosh,
        MapMethod::GoshHec,
        MapMethod::Mis2,
        MapMethod::Suitor,
    ]
}

#[test]
fn extreme_weights_do_not_overflow() {
    // Weights near u32::MAX summed across parallel edges between large
    // aggregates: u64 coarse weights must hold exactly.
    let big = u32::MAX as u64;
    let mut edges = Vec::new();
    for i in 0..20u32 {
        edges.push((i, 20 + i, big)); // bipartite heavy band
        if i > 0 {
            edges.push((i - 1, i, 1));
            edges.push((20 + i - 1, 20 + i, 1));
        }
    }
    let g = from_edges_weighted(40, &edges);
    g.validate().unwrap();
    let policy = ExecPolicy::serial();
    // Collapse each side to one aggregate: coarse edge = 20 * big.
    let map: Vec<u32> = (0..40).map(|u| u32::from(u >= 20)).collect();
    let mapping = multilevel_coarsen::coarsen::Mapping { map, n_coarse: 2 };
    let c = construct_coarse_graph(&policy, &g, &mapping, &ConstructOptions::default());
    assert_eq!(c.find_edge(0, 1), Some(20 * big));
}

#[test]
fn every_method_handles_a_clique_of_two() {
    let g = gen::path(2);
    for method in all_parallel_methods() {
        for policy in [ExecPolicy::serial(), ExecPolicy::host()] {
            let (m, _) = find_mapping(&policy, &g, method, 1);
            m.validate().unwrap();
            assert_eq!(m.n_coarse, 1, "{method:?} must merge the only edge");
        }
    }
}

#[test]
fn uniform_weight_ties_everywhere() {
    // All-equal weights exercise every tie-break path; the complete
    // bipartite graph adds massive heavy-neighbor contention.
    let mut edges = Vec::new();
    for i in 0..12u32 {
        for j in 12..24u32 {
            edges.push((i, j));
        }
    }
    let g = from_edges_unit(24, &edges);
    for method in all_parallel_methods() {
        let (m, _) = find_mapping(&ExecPolicy::host(), &g, method, 7);
        m.validate().unwrap_or_else(|e| panic!("{method:?}: {e}"));
    }
}

#[test]
fn long_path_worst_case_for_pointer_jumping() {
    let g = gen::path(20_000);
    for method in [MapMethod::Hec, MapMethod::Hec3, MapMethod::GoshHec] {
        let (m, _) = find_mapping(&ExecPolicy::host(), &g, method, 3);
        m.validate().unwrap();
        assert!(m.n_coarse < 20_000);
    }
}

#[test]
fn caterpillar_stresses_leaf_matching() {
    // A spine where every spine vertex carries many leaves.
    let mut edges = Vec::new();
    let spine = 50u32;
    let mut next = spine;
    for s in 0..spine {
        if s + 1 < spine {
            edges.push((s, s + 1));
        }
        for _ in 0..8 {
            edges.push((s, next));
            next += 1;
        }
    }
    let g = from_edges_unit(next as usize, &edges);
    let (hem, _) = find_mapping(&ExecPolicy::serial(), &g, MapMethod::Hem, 5);
    let (two, _) = find_mapping(&ExecPolicy::serial(), &g, MapMethod::MtMetis, 5);
    assert!(
        two.n_coarse < hem.n_coarse,
        "leaf matching must beat plain HEM on caterpillars: {} vs {}",
        two.n_coarse,
        hem.n_coarse
    );
    // Leaves pair up: ratio close to 2.
    assert!(
        two.coarsening_ratio() > 1.7,
        "ratio {}",
        two.coarsening_ratio()
    );
}

#[test]
fn coarsening_a_star_of_stars() {
    // Hub of hubs: two-level skew. HEC must collapse it in very few levels.
    let mut edges = Vec::new();
    let mut next = 1u32;
    for _ in 0..12 {
        let hub = next;
        edges.push((0, hub));
        next += 1;
        for _ in 0..30 {
            edges.push((hub, next));
            next += 1;
        }
    }
    let g = from_edges_unit(next as usize, &edges);
    let h = coarsen(&ExecPolicy::host(), &g, &CoarsenOptions::default());
    assert!(
        h.num_levels() <= 3,
        "{} levels on a star-of-stars",
        h.num_levels()
    );
    assert!(h.coarsest().n() <= 50);
}

#[test]
fn partitioners_reject_or_survive_tiny_graphs() {
    for n in [1usize, 2, 3] {
        let g = gen::path(n.max(1));
        let r = fm_bisect(
            &ExecPolicy::serial(),
            &g,
            &CoarsenOptions::default(),
            &FmConfig::default(),
            1,
        );
        assert_eq!(r.part.len(), g.n());
        assert_eq!(r.cut, edge_cut(&g, &r.part));
    }
}

#[test]
fn csr_invariant_violations_are_reported() {
    // Each malformed structure must produce a distinct validation error.
    let cases: Vec<(Csr, &str)> = vec![
        // A self-loop on each of two vertices (even entry count).
        (
            Csr::from_parts(vec![0, 1, 2], vec![0, 1], vec![1, 1]),
            "self-loop",
        ),
        (
            Csr::from_parts(vec![0, 1, 2], vec![1, 0], vec![0, 0]),
            "zero edge weight",
        ),
        (
            Csr::from_parts(vec![0, 2, 4], vec![1, 1, 0, 0], vec![1, 1, 1, 1]),
            "sorted",
        ),
    ];
    for (g, needle) in cases {
        let err = g.validate().unwrap_err();
        assert!(err.contains(needle), "expected '{needle}' in '{err}'");
    }
}

#[test]
fn mapping_with_gap_labels_is_rejected() {
    let m = multilevel_coarsen::coarsen::Mapping {
        map: vec![0, 2, 0],
        n_coarse: 3,
    };
    assert!(m.validate().unwrap_err().contains("unused"));
}

#[test]
fn weighted_coarse_levels_keep_heavy_edges_together() {
    // After one level, a dominant fine edge becomes a dominant coarse
    // edge; HEC on the coarse graph must contract it first.
    let g = from_edges_weighted(
        6,
        &[
            (0, 1, 1),
            (1, 2, 1),
            (2, 3, 1000),
            (3, 4, 1),
            (4, 5, 1),
            (0, 5, 1),
        ],
    );
    let policy = ExecPolicy::serial();
    let (m, _) = find_mapping(&policy, &g, MapMethod::SeqHec, 9);
    // Whatever the aggregates, vertices 2 and 3 share one (the heavy edge
    // dominates every competing choice at both endpoints).
    assert_eq!(m.map[2], m.map[3]);
}

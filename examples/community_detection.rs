//! Community detection via multilevel spectral clustering — the paper's
//! intro lists clustering as a core multilevel application ("spectral
//! clustering (where the balance constraint is relaxed)").
//!
//! Plants four communities in a stochastic block model, recovers them by
//! recursive spectral bisection on the multilevel hierarchy, and scores
//! the result against the ground truth with pairwise precision/recall.
//!
//! ```text
//! cargo run --release --example community_detection
//! ```

use multilevel_coarsen::graph::builder::from_edges_unit;
use multilevel_coarsen::graph::cc::{induced_subgraph, largest_component};
use multilevel_coarsen::graph::metrics::edge_cut;
use multilevel_coarsen::graph::Csr;
use multilevel_coarsen::par::rng::Xoshiro256pp;
use multilevel_coarsen::prelude::*;

const COMMUNITIES: usize = 4;
const PER_COMMUNITY: usize = 300;
const P_IN: f64 = 0.040;
const P_OUT: f64 = 0.002;

fn planted_partition(seed: u64) -> (Csr, Vec<u32>) {
    let n = COMMUNITIES * PER_COMMUNITY;
    let mut rng = Xoshiro256pp::new(seed);
    let mut edges = Vec::new();
    for i in 0..n as u32 {
        for j in (i + 1)..n as u32 {
            let same = i as usize / PER_COMMUNITY == j as usize / PER_COMMUNITY;
            let p = if same { P_IN } else { P_OUT };
            if rng.next_f64() < p {
                edges.push((i, j));
            }
        }
    }
    let g = from_edges_unit(n, &edges);
    let (lcc, map) = largest_component(&g);
    let truth: Vec<u32> = (0..n)
        .filter(|&u| map[u] != u32::MAX)
        .map(|u| (u / PER_COMMUNITY) as u32)
        .collect();
    (lcc, truth)
}

/// Recursive spectral bisection into k clusters (balance relaxed: each
/// split just takes the Fiedler sign, no median balancing).
fn spectral_clusters(
    policy: &ExecPolicy,
    g: &Csr,
    k: usize,
    labels: &mut [u32],
    base: u32,
    ids: &[u32],
) {
    if k <= 1 || g.n() < 8 {
        for &u in ids {
            labels[u as usize] = base;
        }
        return;
    }
    let r = spectral_bisect(
        policy,
        g,
        &CoarsenOptions::default(),
        &SpectralConfig::default(),
        7,
    );
    let k0 = k.div_ceil(2);
    for side in 0..2u32 {
        let side_local: Vec<u32> = (0..g.n() as u32)
            .filter(|&u| r.part[u as usize] == side)
            .collect();
        if side_local.is_empty() {
            continue;
        }
        let label = if side == 0 { base } else { base + k0 as u32 };
        let sub_k = if side == 0 { k0 } else { k - k0 };
        let (sub, _) = induced_subgraph(g, &side_local);
        let (sub_lcc, submap) = largest_component(&sub);
        let sub_ids: Vec<u32> = side_local.iter().map(|&u| ids[u as usize]).collect();
        if sub_lcc.n() == sub.n() {
            spectral_clusters(policy, &sub_lcc, sub_k, labels, label, &sub_ids);
        } else {
            // Rare disconnection: label stragglers directly.
            for (i, &orig) in sub_ids.iter().enumerate() {
                labels[orig as usize] = label + u32::from(submap[i] == u32::MAX);
            }
        }
    }
}

/// Pairwise precision/recall/F1 of a clustering vs ground truth.
fn pairwise_score(pred: &[u32], truth: &[u32]) -> (f64, f64, f64) {
    let n = pred.len();
    let (mut tp, mut fp, mut fne) = (0u64, 0u64, 0u64);
    for i in 0..n {
        for j in (i + 1)..n {
            let same_pred = pred[i] == pred[j];
            let same_true = truth[i] == truth[j];
            match (same_pred, same_true) {
                (true, true) => tp += 1,
                (true, false) => fp += 1,
                (false, true) => fne += 1,
                _ => {}
            }
        }
    }
    let prec = tp as f64 / (tp + fp).max(1) as f64;
    let rec = tp as f64 / (tp + fne).max(1) as f64;
    let f1 = 2.0 * prec * rec / (prec + rec).max(1e-12);
    (prec, rec, f1)
}

fn main() {
    let (g, truth) = planted_partition(5);
    println!(
        "planted-partition graph: {} ({} communities of ~{} vertices, p_in/p_out = {:.0})",
        g.summary(),
        COMMUNITIES,
        PER_COMMUNITY,
        P_IN / P_OUT
    );
    let policy = ExecPolicy::host();

    let mut labels = vec![0u32; g.n()];
    let ids: Vec<u32> = (0..g.n() as u32).collect();
    spectral_clusters(&policy, &g, COMMUNITIES, &mut labels, 0, &ids);

    let (prec, rec, f1) = pairwise_score(&labels, &truth);
    println!("pairwise precision = {prec:.3}, recall = {rec:.3}, F1 = {f1:.3}");
    println!(
        "cut between clusters = {} of {} edges",
        edge_cut(&g, &labels),
        g.m()
    );
    let mut sizes = [0usize; COMMUNITIES + 1];
    for &l in &labels {
        sizes[(l as usize).min(COMMUNITIES)] += 1;
    }
    println!("cluster sizes: {:?}", &sizes[..COMMUNITIES]);
    assert!(
        f1 > 0.8,
        "clustering failed to recover the planted structure (F1 {f1:.3})"
    );
    println!("recovered the planted communities ✔");
}

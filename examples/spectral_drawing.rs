//! Spectral graph drawing — the paper notes spectral partitioning "is
//! closely related to spectral drawing (where two eigenvectors are used
//! as coordinates for vertices)". This example computes the Fiedler
//! vector and the third Laplacian eigenvector of a mesh via the
//! multilevel machinery and writes an SVG drawing.
//!
//! ```text
//! cargo run --release --example spectral_drawing
//! # -> writes target/spectral_drawing.svg
//! ```

use multilevel_coarsen::graph::cc::largest_component;
use multilevel_coarsen::graph::generators::delaunay_like;
use multilevel_coarsen::prelude::*;
use multilevel_coarsen::sparse::fiedler::{fiedler_from, fiedler_vector};
use multilevel_coarsen::sparse::ops::{dot, normalize};

fn main() {
    let (g, _) = largest_component(&delaunay_like(18, 18, 5));
    println!("drawing {}", g.summary());
    let policy = ExecPolicy::host();

    // First non-trivial eigenvector: the Fiedler vector, computed
    // multilevel (coarsest solve + per-level warm-started refinement).
    let h = coarsen(&policy, &g, &CoarsenOptions::default());
    let mut x = fiedler_vector(&policy, h.coarsest(), 1e-10, 20_000, 3).vector;
    for level in (0..h.num_levels()).rev() {
        x = h.interpolate_level(level, &x);
        x = fiedler_from(&policy, h.graph_above(level), x, 1e-10, 2_000).vector;
    }

    // Second coordinate: power-iterate while deflating both the constant
    // vector and x (simple block deflation on the fine graph).
    let mut y = fiedler_vector(&policy, &g, 1e-8, 5_000, 17).vector;
    let proj = dot(&y, &x);
    for (yi, xi) in y.iter_mut().zip(&x) {
        *yi -= proj * xi;
    }
    normalize(&mut y);

    // Render.
    let (w, hgt) = (800.0, 800.0);
    let (min_x, max_x) = x
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let (min_y, max_y) = y
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let sx = |v: f64| 20.0 + (v - min_x) / (max_x - min_x).max(1e-12) * (w - 40.0);
    let sy = |v: f64| 20.0 + (v - min_y) / (max_y - min_y).max(1e-12) * (hgt - 40.0);
    let mut svg =
        format!("<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{hgt}\">\n");
    for u in 0..g.n() as u32 {
        for (v, _) in g.edges(u) {
            if v > u {
                svg.push_str(&format!(
                    "<line x1=\"{:.1}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" stroke=\"#8da0cb\" stroke-width=\"0.6\"/>\n",
                    sx(x[u as usize]),
                    sy(y[u as usize]),
                    sx(x[v as usize]),
                    sy(y[v as usize])
                ));
            }
        }
    }
    for u in 0..g.n() {
        svg.push_str(&format!(
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"1.6\" fill=\"#fc8d62\"/>\n",
            sx(x[u]),
            sy(y[u])
        ));
    }
    svg.push_str("</svg>\n");
    let path = std::path::Path::new("target/spectral_drawing.svg");
    std::fs::create_dir_all("target").ok();
    std::fs::write(path, svg).expect("write svg");
    println!(
        "wrote {} ({} vertices, {} edges)",
        path.display(),
        g.n(),
        g.m()
    );
}

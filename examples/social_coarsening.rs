//! Coarsening a skewed social network — the workload class (Orkut,
//! hollywood09, kron21) where the paper's method differences are
//! starkest: matching-based coarsening stalls on hubs and near-cliques,
//! while HEC's unbounded aggregates and mt-Metis' two-hop matches keep
//! the level count low.
//!
//! ```text
//! cargo run --release --example social_coarsening
//! ```

use multilevel_coarsen::graph::cc::largest_component;
use multilevel_coarsen::graph::generators;
use multilevel_coarsen::par::Timer;
use multilevel_coarsen::prelude::*;

fn main() {
    // A hub-heavy social network stand-in (RMAT with Graph500 parameters).
    let (g, _) = largest_component(&generators::rmat(15, 12, 0.57, 0.19, 0.19, 7));
    println!("social network: {}", g.summary());
    let stats = DegreeStats::of(&g);
    println!(
        "degree skew Δ/avg = {:.1} -> {}",
        stats.skew,
        if stats.is_skewed() {
            "skewed group"
        } else {
            "regular group"
        }
    );

    let policy = ExecPolicy::host();
    println!(
        "\n{:>8} | {:>7} | {:>9} | {:>8} | {:>10}",
        "method", "levels", "coarse n", "avg cr", "time (ms)"
    );
    for method in [
        MapMethod::Hec,
        MapMethod::Hec2,
        MapMethod::Hec3,
        MapMethod::Hem,
        MapMethod::MtMetis,
        MapMethod::Gosh,
        MapMethod::GoshHec,
        MapMethod::Mis2,
        MapMethod::Suitor,
    ] {
        let opts = CoarsenOptions {
            method,
            ..Default::default()
        };
        let t = Timer::start();
        let h = coarsen(&policy, &g, &opts);
        let ms = t.seconds() * 1e3;
        println!(
            "{:>8} | {:>7} | {:>9} | {:>8.2} | {:>10.1}",
            method.name(),
            h.num_levels(),
            h.coarsest().n(),
            h.avg_coarsening_ratio(),
            ms
        );
    }

    // Where does the time go for HEC? (The paper's Table II/III columns.)
    let h = coarsen(&policy, &g, &CoarsenOptions::default());
    println!(
        "\nHEC phase split: {:.0}% construction, {:.0}% mapping",
        h.stats.construction_fraction() * 100.0,
        (1.0 - h.stats.construction_fraction()) * 100.0
    );
    println!(
        "first-level mapping passes: {:?} (the paper reports ~99% of vertices settle in 2)",
        h.levels[0].map_stats.resolved_per_pass
    );
}

//! Domain decomposition of a 3-D FEM mesh — the classic multilevel
//! partitioning workload the paper's regular-group graphs represent.
//!
//! Partitions a 27-point-stencil mesh recursively into 2, 4 and 8 balanced
//! subdomains by repeated bisection, comparing FM against spectral
//! refinement and against the Metis-like baseline.
//!
//! ```text
//! cargo run --release --example mesh_partition
//! ```

use multilevel_coarsen::graph::generators::{grid3d, Stencil};
use multilevel_coarsen::graph::metrics::edge_cut;
use multilevel_coarsen::graph::Csr;
use multilevel_coarsen::prelude::*;

/// Recursively bisect into `2^depth` parts; returns the part label array.
fn recursive_bisect(policy: &ExecPolicy, g: &Csr, depth: u32, seed: u64) -> Vec<u32> {
    if depth == 0 || g.n() < 4 {
        return vec![0; g.n()];
    }
    let r = fm_bisect(
        policy,
        g,
        &CoarsenOptions::default(),
        &FmConfig::default(),
        seed,
    );
    // Split into subgraphs and recurse.
    let mut labels = vec![0u32; g.n()];
    for side in 0..2u32 {
        let ids: Vec<u32> = (0..g.n() as u32)
            .filter(|&u| r.part[u as usize] == side)
            .collect();
        let mut newid = vec![u32::MAX; g.n()];
        for (i, &u) in ids.iter().enumerate() {
            newid[u as usize] = i as u32;
        }
        let mut edges = Vec::new();
        for &u in &ids {
            for (v, w) in g.edges(u) {
                if newid[v as usize] != u32::MAX && v > u {
                    edges.push((newid[u as usize], newid[v as usize], w));
                }
            }
        }
        let sub = multilevel_coarsen::graph::builder::from_edges_weighted(ids.len(), &edges);
        let (lcc, map) = multilevel_coarsen::graph::cc::largest_component(&sub);
        // Recurse only on the largest component; stragglers stay put.
        let sub_labels = if lcc.n() > 4 {
            recursive_bisect(
                policy,
                &lcc,
                depth - 1,
                seed.wrapping_mul(31).wrapping_add(7),
            )
        } else {
            vec![0; lcc.n()]
        };
        for (i, &u) in ids.iter().enumerate() {
            let sub_label = if map[i] != u32::MAX {
                sub_labels[map[i] as usize]
            } else {
                0
            };
            labels[u as usize] = side * (1 << (depth - 1)) + sub_label;
        }
    }
    labels
}

fn main() {
    let g = grid3d(16, 16, 16, Stencil::Box27);
    println!("FEM mesh: {}", g.summary());
    let policy = ExecPolicy::host();

    // Head-to-head bisection.
    for (name, r) in [
        (
            "FM + HEC",
            fm_bisect(
                &policy,
                &g,
                &CoarsenOptions::default(),
                &FmConfig::default(),
                1,
            ),
        ),
        (
            "spectral + HEC",
            spectral_bisect(
                &policy,
                &g,
                &CoarsenOptions::default(),
                &SpectralConfig::default(),
                1,
            ),
        ),
        ("Metis-like", metis_like(&g, 1)),
        ("mt-Metis-like", mtmetis_like(&policy, &g, 1)),
    ] {
        println!(
            "{name:>16}: cut {:>6}, imbalance {:.3}, coarsen {:>5.1} ms, refine {:>6.1} ms",
            r.cut,
            r.imbalance,
            r.coarsen_seconds * 1e3,
            r.refine_seconds * 1e3
        );
    }

    // Recursive multi-way decomposition.
    for depth in 1..=3u32 {
        let labels = recursive_bisect(&policy, &g, depth, 99);
        let k = 1u32 << depth;
        let cut = edge_cut(&g, &labels);
        let mut sizes = vec![0usize; k as usize];
        for &l in &labels {
            sizes[l as usize] += 1;
        }
        println!(
            "{k}-way decomposition: cut {cut:>6}, part sizes {:?}",
            sizes
        );
    }
}

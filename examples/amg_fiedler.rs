//! AMG-style Fiedler computation through ACE weighted aggregation — the
//! use case that motivated ACE (algebraic multigrid graph drawing) and
//! HEC (the cascadic multigrid Fiedler solver the paper cites).
//!
//! Builds an ACE hierarchy (interpolation matrices `P` with fractional
//! weights), solves the eigenproblem on the coarsest operator, and
//! interpolates up with `x_fine = P · x_coarse`, smoothing each level with
//! power iterations (cascadic schedule: loose tolerance except on the
//! finest level) — then compares total work against a flat solve.
//!
//! ```text
//! cargo run --release --example amg_fiedler
//! ```

use multilevel_coarsen::coarsen::ace::{ace_coarsen, AceLevel, AceOptions};
use multilevel_coarsen::graph::generators::grid2d;
use multilevel_coarsen::graph::Csr;
use multilevel_coarsen::prelude::*;
use multilevel_coarsen::sparse::fiedler::{fiedler_from, fiedler_vector, residual};
use multilevel_coarsen::sparse::{spmv, CsrMatrix};

/// Round an ACE coarse operator back into a weighted graph (off-diagonal
/// magnitudes, scaled so the smallest surviving entry is >= 1).
fn operator_to_graph(op: &CsrMatrix) -> Csr {
    let mut min_mag = f64::MAX;
    for i in 0..op.n_rows {
        let (cols, vals) = op.row(i);
        for (&c, &v) in cols.iter().zip(vals) {
            if c as usize != i && v.abs() > 0.0 {
                min_mag = min_mag.min(v.abs());
            }
        }
    }
    let scale = if min_mag.is_finite() && min_mag < 1.0 {
        1.0 / min_mag
    } else {
        1.0
    };
    let mut edges = Vec::new();
    for i in 0..op.n_rows {
        let (cols, vals) = op.row(i);
        for (&c, &v) in cols.iter().zip(vals) {
            if (c as usize) > i && v.abs() > 0.0 {
                edges.push((i as u32, c, (v.abs() * scale).round().max(1.0) as u64));
            }
        }
    }
    multilevel_coarsen::graph::builder::from_edges_weighted(op.n_rows, &edges)
}

fn main() {
    let g = grid2d(48, 48);
    println!("AMG-style Fiedler on {}", g.summary());
    let policy = ExecPolicy::host();
    let tol = 1e-8;

    // --- build the ACE hierarchy down to ~64 vertices ---
    let mut levels: Vec<(AceLevel, Csr)> = Vec::new();
    let mut current = g.clone();
    for _ in 0..10 {
        if current.n() < 64 {
            break;
        }
        // No drop tolerance here: this use case wants the exact operator.
        let opts = AceOptions {
            drop_tol: 0.0,
            ..Default::default()
        };
        let lvl = ace_coarsen(&policy, &current, &opts);
        let coarse_graph = operator_to_graph(&lvl.coarse);
        let next = mlcg_graph_connected(coarse_graph);
        if next.n() != lvl.coarse.n_rows {
            // The drop tolerance disconnected the operator; interpolation
            // dimensions would no longer line up — stop stacking levels.
            break;
        }
        println!(
            "  level: {} -> {} vertices ({} interpolation nnz)",
            current.n(),
            next.n(),
            lvl.p.nnz()
        );
        levels.push((lvl, current));
        current = next;
    }

    // --- coarsest solve + interpolation up the ACE hierarchy ---
    // Iterations on small operators are cheap, so compare *work units*
    // (iterations x operator size) and wall time, not raw counts.
    let t = multilevel_coarsen::par::Timer::start();
    let coarse_solve = fiedler_vector(&policy, &current, tol, 100_000, 7);
    let mut work = coarse_solve.iterations * current.size();
    println!(
        "coarsest solve: {} iterations on {} vertices",
        coarse_solve.iterations,
        current.n()
    );
    let mut x = coarse_solve.vector;
    // Cascadic schedule: intermediate levels are smoothed to a loose
    // tolerance (their job is only to seed the next level); the full
    // tolerance is enforced on the finest level alone.
    let loose_tol = 1e-3;
    for (i, (lvl, fine_graph)) in levels.iter().rev().enumerate() {
        // x_fine = P x_coarse (P is n_fine x n_coarse).
        let mut xf = vec![0.0; lvl.p.n_rows];
        spmv(&policy, &lvl.p, &x, &mut xf);
        let level_tol = if i + 1 == levels.len() {
            tol
        } else {
            loose_tol
        };
        let refined = fiedler_from(&policy, fine_graph, xf, level_tol, 100_000);
        work += refined.iterations * fine_graph.size();
        x = refined.vector;
    }
    let amg_secs = t.seconds();
    let warm = fiedler_from(&policy, &g, x.clone(), tol, 1000);
    println!(
        "AMG path: {:.1}M work units, {:.0} ms; residual {:.2e}",
        work as f64 / 1e6,
        amg_secs * 1e3,
        residual(&policy, &g, &warm)
    );

    // --- flat solve for comparison ---
    let t = multilevel_coarsen::par::Timer::start();
    let flat = fiedler_vector(&policy, &g, tol, 200_000, 7);
    let flat_secs = t.seconds();
    let flat_work = flat.iterations * g.size();
    println!(
        "flat power iteration: {:.1}M work units, {:.0} ms; residual {:.2e}",
        flat_work as f64 / 1e6,
        flat_secs * 1e3,
        residual(&policy, &g, &flat)
    );
    println!(
        "work reduction: {:.1}x, wall-time reduction: {:.1}x",
        flat_work as f64 / work.max(1) as f64,
        flat_secs / amg_secs.max(1e-9)
    );
}

/// ACE operators can drop entries; keep the largest connected component so
/// the next level's eigen-solve is well posed.
fn mlcg_graph_connected(g: Csr) -> Csr {
    let (lcc, _) = multilevel_coarsen::graph::cc::largest_component(&g);
    lcc
}

//! Quickstart: coarsen a graph, inspect the hierarchy, bisect it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use multilevel_coarsen::graph::generators;
use multilevel_coarsen::prelude::*;

fn main() {
    // 1. Build (or load — see `mlcg_graph::io`) an undirected graph.
    let g = generators::grid2d(64, 64);
    println!("input graph: {}", g.summary());

    // 2. Pick an execution policy: serial(), host() or device_sim().
    let policy = ExecPolicy::host();

    // 3. Coarsen with the paper's lock-free parallel HEC (Algorithm 4)
    //    and sort-based construction, down to 50 vertices.
    let opts = CoarsenOptions::default();
    let h = coarsen(&policy, &g, &opts);
    println!(
        "hierarchy: {} levels, coarsest n = {}, avg coarsening ratio = {:.2}",
        h.num_levels(),
        h.coarsest().n(),
        h.avg_coarsening_ratio()
    );
    for (i, level) in h.levels.iter().enumerate() {
        println!(
            "  level {:>2}: n = {:>6}, m = {:>7}, mapping passes = {}",
            i + 1,
            level.graph.n(),
            level.graph.m(),
            level.map_stats.passes
        );
    }
    println!(
        "coarsening time: {:.1} ms ({:.0}% in graph construction)",
        h.stats.total_seconds() * 1e3,
        h.stats.construction_fraction() * 100.0
    );

    // 4. Multilevel bisection, FM-refined.
    let r = fm_bisect(&policy, &g, &opts, &FmConfig::default(), 42);
    println!(
        "FM bisection: cut = {}, imbalance = {:.3}, total {:.1} ms",
        r.cut,
        r.imbalance,
        r.total_seconds() * 1e3
    );

    // 5. The same bisection with spectral refinement.
    let r = spectral_bisect(&policy, &g, &opts, &SpectralConfig::default(), 42);
    println!(
        "spectral bisection: cut = {}, imbalance = {:.3}, total {:.1} ms",
        r.cut,
        r.imbalance,
        r.total_seconds() * 1e3
    );
}

//! Direct k-way boundary refinement — the `parref` frontier round
//! engine and the sequential boundary FM, generalized to move vertices
//! between all `k` labels jointly.
//!
//! Recursive bisection never revisits a cut once a later split changes
//! its context; this module refines the finished k-way labeling as a
//! post-pass (see `crate::kway::kway_partition_cfg`). The bisection
//! machinery carries over with three generalizations:
//!
//! - the mover stamp becomes a `(from, to)` label pair,
//! - the per-vertex gain becomes *best-alternative-part*: with
//!   `w(u, q)` the weight of `u`'s edges into part `q`, a vertex in
//!   part `p` has `gain(u) = max_{q≠p} w(u, q) − w(u, p)`, computed
//!   from a compact per-vertex neighbor-part weight map,
//! - the two-sided balance budget becomes a uniform per-part capacity
//!   (`total/k` scaled by epsilon), with the same lexicographic
//!   `(excess, cut)` accept and reverse move-log rollback.
//!
//! # Round structure and determinism
//!
//! Bisection rounds alternate a single move direction; k-way rounds
//! alternate a *parity class*: even rounds admit only moves with
//! `from < to`, odd rounds only `from > to`, so two neighbors can never
//! swap labels inside one round. Each round is three phases:
//!
//! 1. a parallel **gain** dispatch over the frontier computes each
//!    vertex's best parity-admissible positive-gain target,
//! 2. a **sequential selection** scan claims per-part weight budgets in
//!    frontier order — replacing `parref`'s atomically raced budget
//!    with a deterministic claim, so the mover set is a pure function
//!    of (graph, partition, round) and the engine is bit-identical
//!    across execution policies,
//! 3. a parallel **apply** dispatch flips the movers and accumulates
//!    the interference correction.
//!
//! # Interference algebra
//!
//! Gains are computed against the round-start partition, so
//! simultaneous movers interfere only along mover–mover edges. For an
//! edge `(u, v)` of weight `w` with both endpoints moving
//! (`p → t` labels per endpoint), the correction to
//! `new_cut = cut − Σ gain + corr` is
//!
//! ```text
//! corr(u, v) = w · ([tu≠tv] + [pu≠pv] − [tu≠pv] − [pu≠tv])
//! ```
//!
//! For bisection (`pu = pv`, `tu = tv`) this reduces to the familiar
//! `−2w` per internal mover edge — interference can only help. With
//! `k > 2` the correction can be *positive* (e.g. `a→b` adjacent to
//! `b→c`), so unlike `parref` a round can worsen the cut and the
//! wholesale round rollback is a real path, not just a defensive
//! guard. The apply dispatch sums the ordered-pair terms (each
//! unordered edge contributes twice — the expression is symmetric in
//! `u` and `v`) and halves the total.
//!
//! A per-part vertex count guards every move so the refiner can never
//! empty a part: a labeling with zero empty parts keeps zero empty
//! parts, and degenerate inputs (`n < k`, heavy singleton parts) pass
//! through untouched rather than collapsing.

use crate::fm::seed_covers_boundary;
use mlcg_graph::metrics::edge_cut;
use mlcg_graph::{Csr, VId};
use mlcg_par::atomic::as_atomic_u32;
use mlcg_par::exec::HOST_GRAIN;
use mlcg_par::{parallel_for, profile, Backend, ExecPolicy, TraceCollector};
use std::cell::RefCell;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicI64, AtomicU32, AtomicU64, AtomicU8, Ordering};

/// Direct k-way refinement tuning.
#[derive(Clone, Debug)]
pub struct KwayRefineConfig {
    /// Maximum parity-alternating parallel rounds.
    pub max_rounds: usize,
    /// Maximum passes of the sequential boundary refiner.
    pub max_passes: usize,
    /// Allowed imbalance of any part versus `total/k`.
    pub epsilon: f64,
    /// Grant every part one max-vertex of extra strict slack (the k-way
    /// analogue of [`crate::fm::FmConfig::vertex_slack`]).
    pub vertex_slack: bool,
    /// Raise the strict cap to the entry's heaviest part when that
    /// exceeds the epsilon cap. The refiner then starts feasible by
    /// construction and refines *cut only*: the cut never worsens and no
    /// part ever outgrows `max(epsilon cap, entry max)`, so the
    /// imbalance is never worse than the entry's — the posture a
    /// post-pass over recursive bisection wants, where the recursion's
    /// per-level epsilon compounds past the flat k-way envelope. With
    /// `false`, the epsilon cap is absolute and the refiner additionally
    /// *repairs* entry overages, trading cut for balance under the
    /// lexicographic `(excess, cut)` key.
    pub entry_slack: bool,
    /// Polish with the sequential k-way boundary FM after the parallel
    /// rounds, seeded by the rounds' final frontier.
    pub sequential_polish: bool,
    /// Vertex count at which [`kway_direct_refine`] engages parallel
    /// rounds under a parallel policy. `None` derives
    /// `HOST_GRAIN × workers`, matching
    /// [`crate::parref::ParRefConfig::crossover_frontier`].
    pub crossover_frontier: Option<usize>,
    /// Stop the round loop once the rebuilt frontier drops below this
    /// size and hand the residue to the sequential polish (`0` never
    /// hands off).
    pub handoff_frontier: usize,
}

impl Default for KwayRefineConfig {
    fn default() -> Self {
        KwayRefineConfig {
            max_rounds: 12,
            max_passes: 8,
            epsilon: 0.02,
            vertex_slack: false,
            entry_slack: true,
            sequential_polish: true,
            crossover_frontier: None,
            handoff_frontier: 0,
        }
    }
}

impl KwayRefineConfig {
    /// The size at which [`kway_direct_refine`] switches from the
    /// sequential boundary pass to parallel rounds under `policy`.
    pub fn crossover_threshold(&self, policy: &ExecPolicy) -> usize {
        self.crossover_frontier
            .unwrap_or_else(|| HOST_GRAIN.saturating_mul(policy.threads.max(1)))
    }
}

/// Uniform per-part weight caps: every part shares the same strict and
/// loose limit around the `total/k` target (the k-way analogue of
/// `fm::Balance`, which keys two per-side targets off `frac`).
struct KwayBalance {
    /// Final partitions must keep every part at or below this.
    strict: u64,
    /// During a round or pass, claims may wander one max-vertex past
    /// the strict limit; selection and repair restore strict balance.
    loose: u64,
}

impl KwayBalance {
    /// `floor` is a lower bound on the strict cap — the entry's heaviest
    /// part under [`KwayRefineConfig::entry_slack`], `0` otherwise.
    fn new(g: &Csr, k: usize, cfg: &KwayRefineConfig, floor: u64) -> KwayBalance {
        let total = g.total_vwgt();
        let max_vwgt = g.vwgt().iter().copied().max().unwrap_or(1);
        let target = total as f64 / k as f64;
        // Epsilon slack around the uniform target, but never below the
        // rounded-up share (so exact balance stays reachable on integer
        // weights), plus one max-vertex of slack on request.
        let mut strict = ((target * (1.0 + cfg.epsilon)).floor() as u64).max(target.ceil() as u64);
        if cfg.vertex_slack {
            strict += max_vwgt;
        }
        strict = strict.max(floor);
        KwayBalance {
            strict,
            loose: strict + max_vwgt,
        }
    }

    /// Total weight above the strict cap, summed over parts (0 when
    /// feasible).
    fn excess(&self, wpart: &[u64]) -> u64 {
        wpart.iter().map(|&w| w.saturating_sub(self.strict)).sum()
    }
}

/// Compact per-part weight map, epoch-stamped so clearing between
/// vertices costs O(parts touched), not O(k).
#[derive(Default)]
struct PartScratch {
    wt: Vec<u64>,
    stamp: Vec<u32>,
    touched: Vec<u32>,
    epoch: u32,
}

impl PartScratch {
    fn begin(&mut self, k: usize) {
        if self.wt.len() < k {
            self.wt.resize(k, 0);
            self.stamp.resize(k, 0);
        }
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.touched.clear();
    }

    fn add(&mut self, p: u32, w: u64) {
        let pi = p as usize;
        if self.stamp[pi] != self.epoch {
            self.stamp[pi] = self.epoch;
            self.wt[pi] = 0;
            self.touched.push(p);
        }
        self.wt[pi] += w;
    }

    fn get(&self, p: u32) -> u64 {
        let pi = p as usize;
        if self.stamp[pi] == self.epoch {
            self.wt[pi]
        } else {
            0
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<PartScratch> = RefCell::new(PartScratch::default());
}

/// Reusable per-vertex scratch for [`kway_parallel_refine_rounds`] — the
/// k-way counterpart of [`crate::parref::ParRefWorkspace`], with the
/// mover stamp widened to a `(from, to)` label pair.
#[derive(Default)]
pub struct KwayRefWorkspace {
    /// `moved_stamp[u] == round_epoch` marks `u` as a mover this round;
    /// written only by the sequential selection phase, read by the
    /// parallel apply dispatch.
    moved_stamp: Vec<u32>,
    /// Mover source label (valid while `moved_stamp[u]` is current).
    mover_from: Vec<u32>,
    /// Mover target label (valid while `moved_stamp[u]` is current).
    mover_to: Vec<u32>,
    /// `dedup_stamp[u] == dedup_epoch` marks membership in `frontier`.
    dedup_stamp: Vec<u32>,
    /// Per-frontier-index round verdict: 0 drop (interior), 1 keep
    /// (boundary), 2 mover, 3 candidate awaiting selection.
    code: Vec<AtomicU8>,
    /// Candidate target part per frontier index (valid when code is 3).
    cand_to: Vec<AtomicU32>,
    /// Candidate gain per frontier index (valid when code is 3).
    cand_gain: Vec<AtomicI64>,
    frontier: Vec<u32>,
    next: Vec<u32>,
    /// Every committed `(vertex, previous label)` in order; replaying in
    /// reverse restores the entry partition exactly.
    move_log: Vec<(u32, u32)>,
    round_epoch: u32,
    dedup_epoch: u32,
}

impl KwayRefWorkspace {
    /// An empty workspace; arrays grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, n: usize) {
        if self.moved_stamp.len() < n {
            self.moved_stamp.resize(n, 0);
            self.mover_from.resize(n, 0);
            self.mover_to.resize(n, 0);
            self.dedup_stamp.resize(n, 0);
        }
    }

    fn bump_round(&mut self) -> u32 {
        if self.round_epoch == u32::MAX {
            self.moved_stamp.fill(0);
            self.round_epoch = 0;
        }
        self.round_epoch += 1;
        self.round_epoch
    }

    fn bump_dedup(&mut self) -> u32 {
        if self.dedup_epoch == u32::MAX {
            self.dedup_stamp.fill(0);
            self.dedup_epoch = 0;
        }
        self.dedup_epoch += 1;
        self.dedup_epoch
    }
}

/// Outcome of the k-way parallel rounds at a fixed level.
#[derive(Clone, Debug)]
pub struct KwayRoundsOutcome {
    /// Final weighted edge cut (incrementally tracked; equals
    /// `edge_cut(g, part)`).
    pub cut: u64,
    /// Rounds that ran a gain dispatch (the `kwayref/rounds` counter).
    pub rounds: usize,
    /// Final frontier: a superset of the k-way boundary, valid as a
    /// `seed_frontier` for [`kway_refine_boundary_traced`].
    pub frontier: Vec<u32>,
}

/// Frontier-based parallel k-way refinement rounds — the engine behind
/// [`kway_direct_refine`].
///
/// `part` must hold labels in `0..k`. `seed_frontier`, when given, must
/// cover every vertex with a cut edge (a superset is fine); `None`
/// seeds all of `0..n`. Each round emits a `kwayref/frontier_size`
/// gauge and bumps the `kwayref/rounds` counter; the dispatches are
/// profiled as `par_for/kwayref/gain` and `par_for/kwayref/apply`.
///
/// The whole refinement rolls back — replaying the move log in
/// reverse — if it would end lexicographically worse in `(excess, cut)`
/// than the entry partition, and no move ever empties a part, so entry
/// feasibility and label coverage are preserved.
#[allow(clippy::too_many_arguments)]
pub fn kway_parallel_refine_rounds(
    policy: &ExecPolicy,
    g: &Csr,
    part: &mut [u32],
    k: usize,
    cfg: &KwayRefineConfig,
    seed_frontier: Option<&[u32]>,
    ws: &mut KwayRefWorkspace,
    trace: &TraceCollector,
) -> KwayRoundsOutcome {
    let n = g.n();
    assert_eq!(part.len(), n);
    assert!(k >= 1, "k must be positive");
    if n == 0 || k < 2 {
        return KwayRoundsOutcome {
            cut: 0,
            rounds: 0,
            frontier: Vec::new(),
        };
    }
    let _kernel = profile::kernel("kwayref");

    let mut wpart = vec![0u64; k];
    let mut counts = vec![0usize; k];
    for (u, &p) in part.iter().enumerate() {
        assert!((p as usize) < k, "label {p} out of range for k={k}");
        wpart[p as usize] += g.vwgt()[u];
        counts[p as usize] += 1;
    }
    let floor = if cfg.entry_slack {
        wpart.iter().copied().max().unwrap_or(0)
    } else {
        0
    };
    let bal = KwayBalance::new(g, k, cfg, floor);

    ws.ensure(n);
    ws.move_log.clear();

    // Seed the frontier, deduped by stamp.
    {
        let epoch = ws.bump_dedup();
        ws.frontier.clear();
        match seed_frontier {
            Some(seed) => {
                debug_assert!(
                    seed_covers_boundary(g, part, seed),
                    "seed frontier misses a boundary vertex"
                );
                for &u in seed {
                    let ui = u as usize;
                    assert!(ui < n, "seed frontier vertex {u} out of range");
                    if ws.dedup_stamp[ui] != epoch {
                        ws.dedup_stamp[ui] = epoch;
                        ws.frontier.push(u);
                    }
                }
            }
            None => {
                for u in 0..n as u32 {
                    ws.dedup_stamp[u as usize] = epoch;
                    ws.frontier.push(u);
                }
            }
        }
    }

    // Entry cut from external weight over the frontier (it covers the
    // boundary, so every cut edge is counted at both endpoints).
    let mut ext_total: u64 = 0;
    for &u in &ws.frontier {
        for (v, w) in g.edges(u) {
            if part[u as usize] != part[v as usize] {
                ext_total += w;
            }
        }
    }
    debug_assert_eq!(ext_total % 2, 0, "frontier missed a cut edge endpoint");
    let mut cut = ext_total / 2;
    debug_assert_eq!(cut, edge_cut(g, part));
    let entry_key = (bal.excess(&wpart), cut);

    let mut rounds = 0usize;
    let mut empty_streak = 0usize;
    for round in 0..cfg.max_rounds {
        let flen = ws.frontier.len();
        if flen == 0 {
            break;
        }
        if round > 0 && flen < cfg.handoff_frontier {
            break;
        }
        trace.gauge_usize(|| "kwayref/frontier_size".to_string(), flen);
        trace.counter_add("kwayref/rounds", 1);
        rounds += 1;
        let epoch = ws.bump_round();
        if ws.code.len() < flen {
            ws.code.resize_with(flen, AtomicU8::default);
            ws.cand_to.resize_with(flen, AtomicU32::default);
            ws.cand_gain.resize_with(flen, AtomicI64::default);
        }
        // Parity class: even rounds move to higher labels, odd rounds
        // to lower — no two neighbors can swap inside one round.
        let upward = round % 2 == 0;
        let ext_sum = AtomicU64::new(0);
        {
            // Phase 1: parallel gain pass. `part` is read-only here, so
            // every gain is computed against the round-start partition.
            let _k = profile::kernel("gain");
            let frontier = &ws.frontier;
            let code = &ws.code;
            let cand_to = &ws.cand_to;
            let cand_gain = &ws.cand_gain;
            let part_ro: &[u32] = part;
            parallel_for(policy, flen, |i| {
                SCRATCH.with(|sc| {
                    let mut sc = sc.borrow_mut();
                    sc.begin(k);
                    let u = frontier[i] as usize;
                    let pu = part_ro[u];
                    let mut extw = 0u64;
                    for (v, w) in g.edges(u as VId) {
                        let pv = part_ro[v as usize];
                        sc.add(pv, w);
                        if pv != pu {
                            extw += w;
                        }
                    }
                    ext_sum.fetch_add(extw, Ordering::Relaxed);
                    if extw == 0 {
                        code[i].store(0, Ordering::Relaxed);
                        return;
                    }
                    let own = sc.get(pu);
                    let mut best: Option<(u64, u32)> = None;
                    for &q in &sc.touched {
                        let admissible = if upward { pu < q } else { q < pu };
                        if !admissible {
                            continue;
                        }
                        let wq = sc.get(q);
                        if best.is_none_or(|(bw, bq)| wq > bw || (wq == bw && q < bq)) {
                            best = Some((wq, q));
                        }
                    }
                    match best {
                        Some((wq, q)) if wq > own => {
                            cand_to[i].store(q, Ordering::Relaxed);
                            cand_gain[i].store(wq as i64 - own as i64, Ordering::Relaxed);
                            code[i].store(3, Ordering::Relaxed);
                        }
                        _ => code[i].store(1, Ordering::Relaxed),
                    }
                });
            });
        }
        debug_assert_eq!(
            ext_sum.load(Ordering::Relaxed),
            2 * cut,
            "frontier no longer covers the boundary"
        );

        // Phase 2: sequential deterministic selection. Claims per-part
        // budgets in frontier order against live part weights; the
        // count guard keeps every part non-empty.
        let mut gain_sum = 0i64;
        let mut mover_count = 0usize;
        for i in 0..flen {
            if ws.code[i].load(Ordering::Relaxed) != 3 {
                continue;
            }
            let u = ws.frontier[i] as usize;
            let from = part[u];
            let to = ws.cand_to[i].load(Ordering::Relaxed);
            let vw = g.vwgt()[u];
            if counts[from as usize] <= 1 || wpart[to as usize] + vw > bal.loose {
                ws.code[i].store(1, Ordering::Relaxed);
                continue;
            }
            wpart[from as usize] -= vw;
            wpart[to as usize] += vw;
            counts[from as usize] -= 1;
            counts[to as usize] += 1;
            ws.moved_stamp[u] = epoch;
            ws.mover_from[u] = from;
            ws.mover_to[u] = to;
            ws.code[i].store(2, Ordering::Relaxed);
            gain_sum += ws.cand_gain[i].load(Ordering::Relaxed);
            mover_count += 1;
        }

        if mover_count == 0 {
            rebuild_frontier(g, ws, flen, false);
            empty_streak += 1;
            if empty_streak >= 2 {
                break; // neither parity class has admissible moves left
            }
            continue;
        }
        empty_streak = 0;

        // Phase 3: parallel apply. Flip the movers and sum interference
        // terms over ordered mover–mover edge pairs (each unordered
        // edge contributes twice; halved below). Mover identity and
        // labels come from the stamps written by the selection scan, so
        // the concurrent part[] stores never feed back into this pass.
        let corr = AtomicI64::new(0);
        {
            let _k = profile::kernel("apply");
            let frontier = &ws.frontier;
            let code = &ws.code;
            let moved: &[u32] = &ws.moved_stamp;
            let mfrom: &[u32] = &ws.mover_from;
            let mto: &[u32] = &ws.mover_to;
            let part_atomic = as_atomic_u32(part);
            parallel_for(policy, flen, |i| {
                if code[i].load(Ordering::Relaxed) != 2 {
                    return;
                }
                let u = frontier[i] as usize;
                let (pu, tu) = (mfrom[u], mto[u]);
                part_atomic[u].store(tu, Ordering::Relaxed);
                let mut s = 0i64;
                for (v, w) in g.edges(u as VId) {
                    let vi = v as usize;
                    if moved[vi] == epoch {
                        let (pv, tv) = (mfrom[vi], mto[vi]);
                        let d = i64::from(tu != tv) + i64::from(pu != pv)
                            - i64::from(tu != pv)
                            - i64::from(pu != tv);
                        s += w as i64 * d;
                    }
                }
                if s != 0 {
                    corr.fetch_add(s, Ordering::Relaxed);
                }
            });
        }
        let corr2 = corr.load(Ordering::Relaxed);
        debug_assert_eq!(corr2.rem_euclid(2), 0, "unpaired interference term");
        let new_cut = cut as i64 - gain_sum + corr2 / 2;
        if new_cut < 0 || new_cut as u64 > cut {
            // Positive interference (move chains like a→b next to b→c)
            // made the round a net loss: restore the movers wholesale.
            for i in 0..flen {
                if ws.code[i].load(Ordering::Relaxed) == 2 {
                    let u = ws.frontier[i] as usize;
                    let (from, to) = (ws.mover_from[u], ws.mover_to[u]);
                    part[u] = from;
                    let vw = g.vwgt()[u];
                    wpart[from as usize] += vw;
                    wpart[to as usize] -= vw;
                    counts[from as usize] += 1;
                    counts[to as usize] -= 1;
                }
            }
            trace.counter_add("kwayref/round_rollbacks", 1);
            rebuild_frontier(g, ws, flen, false);
            break;
        }
        cut = new_cut as u64;
        debug_assert_eq!(cut, edge_cut(g, part), "incremental k-way cut drifted");
        rebuild_frontier(g, ws, flen, true);
    }

    // Balance repair to the entry excess, exactly as in the bisection
    // engine: a feasible entry must leave inside the envelope, while
    // pre-existing infeasibility is left for the sequential polish
    // (whose best-prefix selection repairs balance while jointly
    // optimizing the cut).
    if bal.excess(&wpart) > entry_key.0 {
        repair_balance(
            g,
            part,
            &mut wpart,
            &mut counts,
            &bal,
            k,
            entry_key.0,
            &mut cut,
            ws,
        );
    }
    if (bal.excess(&wpart), cut) > entry_key {
        for &(u, from) in ws.move_log.iter().rev() {
            let ui = u as usize;
            let cur = part[ui] as usize;
            part[ui] = from;
            let vw = g.vwgt()[ui];
            wpart[cur] -= vw;
            wpart[from as usize] += vw;
        }
        cut = entry_key.1;
        let epoch = ws.bump_dedup();
        ws.frontier.clear();
        match seed_frontier {
            Some(seed) => {
                for &u in seed {
                    if ws.dedup_stamp[u as usize] != epoch {
                        ws.dedup_stamp[u as usize] = epoch;
                        ws.frontier.push(u);
                    }
                }
            }
            None => {
                for u in 0..n as u32 {
                    ws.dedup_stamp[u as usize] = epoch;
                    ws.frontier.push(u);
                }
            }
        }
    }
    debug_assert_eq!(cut, edge_cut(g, part), "final k-way cut drifted");
    KwayRoundsOutcome {
        cut,
        rounds,
        frontier: ws.frontier.clone(),
    }
}

/// Build the next frontier in `O(frontier + moved · deg)`: boundary
/// members stay, movers stay, and (when the round was `applied`) the
/// movers' neighbors join and the movers are appended to the move log
/// with their source labels.
fn rebuild_frontier(g: &Csr, ws: &mut KwayRefWorkspace, flen: usize, applied: bool) {
    let epoch = ws.bump_dedup();
    let KwayRefWorkspace {
        frontier,
        next,
        dedup_stamp,
        code,
        move_log,
        mover_from,
        ..
    } = ws;
    next.clear();
    for i in 0..flen {
        let u = frontier[i];
        let c = code[i].load(Ordering::Relaxed);
        if c == 0 {
            continue;
        }
        if dedup_stamp[u as usize] != epoch {
            dedup_stamp[u as usize] = epoch;
            next.push(u);
        }
        if c == 2 && applied {
            move_log.push((u, mover_from[u as usize]));
            for (v, _) in g.edges(u) {
                if dedup_stamp[v as usize] != epoch {
                    dedup_stamp[v as usize] = epoch;
                    next.push(v);
                }
            }
        }
    }
    std::mem::swap(frontier, next);
}

/// Sequential greedy k-way balance repair: while the total excess
/// exceeds `target_excess`, move the best-gain vertex off an over-limit
/// part into a target that strictly reduces the excess. Frontier
/// candidates first; a full scan is the fallback for degenerate entries
/// whose over-limit parts have no frontier vertex.
#[allow(clippy::too_many_arguments)]
fn repair_balance(
    g: &Csr,
    part: &mut [u32],
    wpart: &mut [u64],
    counts: &mut [usize],
    bal: &KwayBalance,
    k: usize,
    target_excess: u64,
    cut: &mut u64,
    ws: &mut KwayRefWorkspace,
) {
    let mut sc = PartScratch::default();
    loop {
        let excess = bal.excess(wpart);
        if excess <= target_excess {
            return;
        }
        let mut best: Option<(i64, u32, u32)> = None;
        let mut scan = |candidates: &mut dyn Iterator<Item = u32>,
                        best: &mut Option<(i64, u32, u32)>| {
            for u in candidates {
                let ui = u as usize;
                let p = part[ui] as usize;
                if wpart[p] <= bal.strict || counts[p] <= 1 {
                    continue;
                }
                let vw = g.vwgt()[ui];
                sc.begin(k);
                for (v, w) in g.edges(u) {
                    sc.add(part[v as usize], w);
                }
                let own = sc.get(p as u32) as i64;
                let shed = vw.min(wpart[p] - bal.strict);
                for (q, &wq) in wpart.iter().enumerate() {
                    if q == p {
                        continue;
                    }
                    let grown =
                        (wq + vw).saturating_sub(bal.strict) - wq.saturating_sub(bal.strict);
                    if grown >= shed {
                        continue; // move would not reduce the excess
                    }
                    let gain = sc.get(q as u32) as i64 - own;
                    if best.is_none_or(|(bg, _, _)| gain > bg) {
                        *best = Some((gain, u, q as u32));
                    }
                }
            }
        };
        scan(&mut ws.frontier.iter().copied(), &mut best);
        if best.is_none() {
            scan(&mut (0..g.n() as u32), &mut best);
        }
        let Some((gain, u, to)) = best else {
            return; // no move reduces the excess (infeasible weights)
        };
        let ui = u as usize;
        let from = part[ui] as usize;
        part[ui] = to;
        let vw = g.vwgt()[ui];
        wpart[from] -= vw;
        wpart[to as usize] += vw;
        counts[from] -= 1;
        counts[to as usize] += 1;
        *cut = (*cut as i64 - gain) as u64;
        ws.move_log.push((u, from as u32));
        // Keep the frontier covering the boundary after the flip.
        let epoch = ws.dedup_epoch;
        if ws.dedup_stamp[ui] != epoch {
            ws.dedup_stamp[ui] = epoch;
            ws.frontier.push(u);
        }
        for (v, _) in g.edges(u) {
            if ws.dedup_stamp[v as usize] != epoch {
                ws.dedup_stamp[v as usize] = epoch;
                ws.frontier.push(v);
            }
        }
    }
}

/// Per-vertex state of the sequential k-way refiner: the compact
/// neighbor-part weight maps plus the derived gain/target/ext values
/// the heap is keyed on.
struct SeqState {
    /// `conn[u]` lists `(part, weight)` for every part `u` touches, own
    /// part included; adjusted in O(|conn|) per neighbor move.
    conn: Vec<Vec<(u32, u64)>>,
    gain: Vec<i64>,
    /// Best-alternative target; `k` is the sentinel for "no external
    /// connectivity".
    best_to: Vec<u32>,
    ext: Vec<u64>,
    gain_known: Vec<bool>,
    version: Vec<u32>,
    locked: Vec<bool>,
}

impl SeqState {
    fn new(n: usize, k: usize) -> SeqState {
        SeqState {
            conn: vec![Vec::new(); n],
            gain: vec![0; n],
            best_to: vec![k as u32; n],
            ext: vec![0; n],
            gain_known: vec![false; n],
            version: vec![0; n],
            locked: vec![false; n],
        }
    }

    /// Recompute gain/best_to/ext for `u` from its conn map.
    fn refresh(&mut self, u: usize, pu: u32, k: usize) {
        let mut own = 0u64;
        let mut total = 0u64;
        let mut best: Option<(u64, u32)> = None;
        for &(q, w) in &self.conn[u] {
            total += w;
            if q == pu {
                own = w;
                continue;
            }
            if best.is_none_or(|(bw, bq)| w > bw || (w == bw && q < bq)) {
                best = Some((w, q));
            }
        }
        self.ext[u] = total - own;
        match best {
            Some((w, q)) => {
                self.gain[u] = w as i64 - own as i64;
                self.best_to[u] = q;
            }
            None => {
                self.gain[u] = -(own as i64);
                self.best_to[u] = k as u32;
            }
        }
    }

    /// Rebuild `conn[u]` from the adjacency, then refresh.
    fn build(&mut self, g: &Csr, part: &[u32], u: usize, k: usize, sc: &mut PartScratch) {
        sc.begin(k);
        for (v, w) in g.edges(u as VId) {
            sc.add(part[v as usize], w);
        }
        let list = &mut self.conn[u];
        list.clear();
        for &q in &sc.touched {
            list.push((q, sc.get(q)));
        }
        self.gain_known[u] = true;
        self.refresh(u, part[u], k);
    }

    /// A neighbor of `v` moved `from → to` over an edge of weight `w`:
    /// shift the weight between the two conn entries and refresh.
    fn adjust(&mut self, v: usize, from: u32, to: u32, w: u64, pv: u32, k: usize) {
        {
            let list = &mut self.conn[v];
            if let Some(pos) = list.iter().position(|e| e.0 == from) {
                list[pos].1 -= w;
                if list[pos].1 == 0 {
                    list.swap_remove(pos);
                }
            }
            match list.iter_mut().find(|e| e.0 == to) {
                Some(e) => e.1 += w,
                None => list.push((to, w)),
            }
        }
        self.refresh(v, pv, k);
    }
}

/// Outcome of one sequential k-way boundary refinement.
#[derive(Clone, Debug)]
pub struct KwayRefineOutcome {
    /// Final weighted edge cut.
    pub cut: u64,
    /// Final boundary: every vertex with at least one cut edge.
    pub boundary: Vec<u32>,
}

/// Boundary-driven sequential k-way FM — the polish half of
/// [`kway_direct_refine`], and the whole refiner below the crossover.
///
/// The bisection refiner's structure carries over: passes heap-seed
/// only the frontier, gains stay fresh through the frontier invariant
/// (any neighbor flip re-frontiers a vertex for recomputation), the
/// best `(excess, cut)` prefix is kept and the rest rolled back, and an
/// abort limit of `(2·boundary).max(64)` unproductive moves bounds each
/// pass. The gain becomes best-alternative-part over a compact
/// per-vertex neighbor-part weight map, maintained incrementally as
/// neighbors move. While a part exceeds its strict cap, the pass
/// additionally seeds that part's vertices and admits
/// connectivity-free least-loaded targets, so balance repair works from
/// any start; a per-part vertex count guard never empties a part. Each
/// pass records a `kwayref/pass{N}` span and a `kwayref/boundary_size`
/// gauge; rollbacks feed `kwayref/moves_rolled_back`.
pub fn kway_refine_boundary_traced(
    g: &Csr,
    part: &mut [u32],
    k: usize,
    cfg: &KwayRefineConfig,
    seed_frontier: Option<&[u32]>,
    trace: &TraceCollector,
) -> KwayRefineOutcome {
    let n = g.n();
    assert_eq!(part.len(), n);
    assert!(k >= 1, "k must be positive");
    if n == 0 || k < 2 {
        return KwayRefineOutcome {
            cut: 0,
            boundary: Vec::new(),
        };
    }
    let mut wpart = vec![0u64; k];
    let mut counts = vec![0usize; k];
    for (u, &p) in part.iter().enumerate() {
        assert!((p as usize) < k, "label {p} out of range for k={k}");
        wpart[p as usize] += g.vwgt()[u];
        counts[p as usize] += 1;
    }
    let floor = if cfg.entry_slack {
        wpart.iter().copied().max().unwrap_or(0)
    } else {
        0
    };
    let bal = KwayBalance::new(g, k, cfg, floor);

    let mut st = SeqState::new(n, k);
    let mut sc = PartScratch::default();
    let mut stamp: Vec<u32> = vec![0; n];
    let mut epoch: u32 = 0;

    let mut frontier: Vec<u32> = match seed_frontier {
        Some(seed) => {
            debug_assert!(
                seed_covers_boundary(g, part, seed),
                "seed frontier misses a boundary vertex"
            );
            epoch += 1;
            let mut f = Vec::with_capacity(seed.len());
            for &u in seed {
                let ui = u as usize;
                assert!(ui < n, "seed frontier vertex {u} out of range");
                if stamp[ui] != epoch {
                    stamp[ui] = epoch;
                    f.push(u);
                }
            }
            f
        }
        None => (0..n as u32).collect(),
    };

    // Entry cut from external weight over the boundary-covering frontier.
    let mut ext_total: u64 = 0;
    for &u in &frontier {
        for (v, w) in g.edges(u) {
            if part[u as usize] != part[v as usize] {
                ext_total += w;
            }
        }
    }
    debug_assert_eq!(ext_total % 2, 0, "frontier missed a cut edge endpoint");
    let mut cut = (ext_total / 2) as i64;
    debug_assert_eq!(cut, edge_cut(g, part) as i64);

    for pass in 0..cfg.max_passes {
        let span = trace.span(|| format!("kwayref/pass{pass}"));
        epoch += 1;
        let mut next: Vec<u32> = Vec::new();
        let mut heap: BinaryHeap<(i64, u32, u32)> = BinaryHeap::new();
        let mut boundary_size = 0usize;
        for &fu in &frontier {
            let u = fu as usize;
            st.build(g, part, u, k, &mut sc);
            st.locked[u] = false;
            if st.ext[u] > 0 {
                heap.push((st.gain[u], fu, st.version[u]));
                boundary_size += 1;
                if stamp[u] != epoch {
                    stamp[u] = epoch;
                    next.push(fu);
                }
            }
        }
        trace.gauge_usize(|| "kwayref/boundary_size".to_string(), boundary_size);
        if bal.excess(&wpart) > 0 {
            // Balance-repair fallback: seed every vertex of any
            // over-limit part, interior vertices included.
            for u in 0..n {
                let p = part[u] as usize;
                if wpart[p] > bal.strict && stamp[u] != epoch {
                    stamp[u] = epoch;
                    next.push(u as u32);
                    st.build(g, part, u, k, &mut sc);
                    st.locked[u] = false;
                    heap.push((st.gain[u], u as u32, st.version[u]));
                }
            }
        }

        let mut best_key = (bal.excess(&wpart), cut);
        let mut best_len = 0usize;
        let mut moves: Vec<(u32, u32)> = Vec::new();
        let abort_limit = (2 * boundary_size).max(64);
        let mut since_best = 0usize;

        while let Some((gval, uu, ver)) = heap.pop() {
            let u = uu as usize;
            if st.locked[u] || ver != st.version[u] || gval != st.gain[u] {
                continue; // stale entry
            }
            let from = part[u];
            if counts[from as usize] <= 1 {
                continue; // moving the last vertex would empty the part
            }
            let vw = g.vwgt()[u];
            // Target: the stored best-alternative if budget-feasible,
            // else the best feasible conn entry; while the source part
            // is over its strict cap, also admit a connectivity-free
            // least-loaded target so repair can move interior vertices.
            let stored = st.best_to[u];
            let (to, tgain) = if (stored as usize) < k && wpart[stored as usize] + vw <= bal.loose {
                (stored, st.gain[u])
            } else {
                let mut own = 0u64;
                let mut bestc: Option<(u64, u32)> = None;
                for &(q, w) in &st.conn[u] {
                    if q == from {
                        own = w;
                        continue;
                    }
                    if wpart[q as usize] + vw > bal.loose {
                        continue;
                    }
                    if bestc.is_none_or(|(bw, bq)| w > bw || (w == bw && q < bq)) {
                        bestc = Some((w, q));
                    }
                }
                match bestc {
                    Some((w, q)) => (q, w as i64 - own as i64),
                    None if wpart[from as usize] > bal.strict => {
                        let mut bq: Option<u32> = None;
                        for q in 0..k as u32 {
                            if q == from || wpart[q as usize] + vw > bal.loose {
                                continue;
                            }
                            if bq.is_none_or(|b| wpart[q as usize] < wpart[b as usize]) {
                                bq = Some(q);
                            }
                        }
                        match bq {
                            Some(q) => (q, -(own as i64)),
                            None => continue,
                        }
                    }
                    None => continue,
                }
            };
            // Commit the move.
            st.locked[u] = true;
            part[u] = to;
            wpart[from as usize] -= vw;
            wpart[to as usize] += vw;
            counts[from as usize] -= 1;
            counts[to as usize] += 1;
            cut -= tgain;
            moves.push((uu, from));
            if stamp[u] != epoch {
                stamp[u] = epoch;
                next.push(uu);
            }
            let key = (bal.excess(&wpart), cut);
            if key < best_key {
                best_key = key;
                best_len = moves.len();
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= abort_limit {
                    break;
                }
            }
            // Shift the (u, v) edge weight in every neighbor's conn map
            // and re-frontier them for the next pass.
            for (v, w) in g.edges(u as VId) {
                let vi = v as usize;
                if stamp[vi] != epoch {
                    stamp[vi] = epoch;
                    next.push(v);
                }
                if st.locked[vi] {
                    continue;
                }
                if st.gain_known[vi] {
                    st.adjust(vi, from, to, w, part[vi], k);
                } else {
                    // First touch outside the seeded frontier: full
                    // build (part[u] already flipped, so the fresh map
                    // includes this move).
                    st.build(g, part, vi, k, &mut sc);
                }
                st.version[vi] += 1;
                if st.ext[vi] > 0 {
                    heap.push((st.gain[vi], v, st.version[vi]));
                }
            }
        }
        // Roll back past the best prefix.
        trace.counter_add("kwayref/moves_rolled_back", (moves.len() - best_len) as u64);
        for &(uu, from) in moves[best_len..].iter().rev() {
            let u = uu as usize;
            let cur = part[u];
            part[u] = from;
            let vw = g.vwgt()[u];
            wpart[cur as usize] -= vw;
            wpart[from as usize] += vw;
            counts[cur as usize] -= 1;
            counts[from as usize] += 1;
        }
        cut = best_key.1;
        debug_assert_eq!(cut, edge_cut(g, part) as i64, "incremental cut drifted");
        span.finish();
        frontier = next;
        if best_len == 0 {
            break;
        }
    }
    let boundary: Vec<u32> = frontier
        .iter()
        .copied()
        .filter(|&u| {
            g.edges(u)
                .any(|(v, _)| part[u as usize] != part[v as usize])
        })
        .collect();
    KwayRefineOutcome {
        cut: cut as u64,
        boundary,
    }
}

/// Refine a finished k-way labeling in place; returns the final cut.
///
/// Under a parallel policy on a graph at or above
/// [`KwayRefineConfig::crossover_threshold`], the frontier-based
/// parallel rounds run first (handing off once the frontier shrinks
/// below the threshold), then — when
/// [`KwayRefineConfig::sequential_polish`] is set — the sequential
/// k-way boundary FM polishes from the rounds' final frontier. Below
/// the crossover the sequential refiner runs alone, keeping small and
/// deep-recursion inputs on the dispatch-free fast path.
pub fn kway_direct_refine(
    policy: &ExecPolicy,
    g: &Csr,
    part: &mut [u32],
    k: usize,
    cfg: &KwayRefineConfig,
    trace: &TraceCollector,
) -> u64 {
    let n = g.n();
    assert_eq!(part.len(), n);
    if n == 0 || k < 2 {
        return 0;
    }
    let _mem = trace.heap_scope(|| "kwayref".to_string());
    let threshold = cfg.crossover_threshold(policy);
    if policy.backend != Backend::Serial && n >= threshold {
        let mut rounds_cfg = cfg.clone();
        if rounds_cfg.handoff_frontier == 0 {
            rounds_cfg.handoff_frontier = threshold;
        }
        let mut ws = KwayRefWorkspace::new();
        let out =
            kway_parallel_refine_rounds(policy, g, part, k, &rounds_cfg, None, &mut ws, trace);
        if cfg.sequential_polish {
            kway_refine_boundary_traced(g, part, k, cfg, Some(&out.frontier), trace).cut
        } else {
            out.cut
        }
    } else {
        kway_refine_boundary_traced(g, part, k, cfg, None, trace).cut
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcg_graph::generators as gen;
    use mlcg_par::rng::Xoshiro256pp;

    /// Random k-labeling with per-part vertex counts balanced to within
    /// one (so unit-weight entries are balance-feasible).
    fn balanced_kpart(n: usize, k: usize, seed: u64) -> Vec<u32> {
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut rng = Xoshiro256pp::new(seed);
        for i in (1..n).rev() {
            let j = rng.next_below((i + 1) as u64) as usize;
            order.swap(i, j);
        }
        let mut part = vec![0u32; n];
        for (i, &u) in order.iter().enumerate() {
            part[u as usize] = (i % k) as u32;
        }
        part
    }

    fn strict_bound(g: &Csr, k: usize, epsilon: f64) -> u64 {
        let total = g.total_vwgt();
        let target = total as f64 / k as f64;
        ((target * (1.0 + epsilon)).floor() as u64).max(target.ceil() as u64)
    }

    #[test]
    fn rounds_never_worsen_and_match_edge_cut() {
        let g = gen::grid2d(12, 12);
        for k in [2usize, 3, 5, 8] {
            let part0 = balanced_kpart(g.n(), k, 7 + k as u64);
            let before = edge_cut(&g, &part0);
            let cfg = KwayRefineConfig::default();
            for policy in ExecPolicy::all_test_policies() {
                let mut p = part0.clone();
                let mut ws = KwayRefWorkspace::new();
                let out = kway_parallel_refine_rounds(
                    &policy,
                    &g,
                    &mut p,
                    k,
                    &cfg,
                    None,
                    &mut ws,
                    &TraceCollector::disabled(),
                );
                assert_eq!(out.cut, edge_cut(&g, &p), "{policy}: k={k} cut drifted");
                assert!(
                    out.cut <= before,
                    "{policy}: k={k} worsened {before} -> {}",
                    out.cut
                );
                // Feasible entry (unit weights, counts balanced) must
                // leave the strict envelope intact.
                let bound = strict_bound(&g, k, cfg.epsilon);
                let mut w = vec![0u64; k];
                for (u, &pp) in p.iter().enumerate() {
                    w[pp as usize] += g.vwgt()[u];
                }
                assert!(
                    w.iter().all(|&x| x <= bound),
                    "{policy}: k={k} weights {w:?} exceed {bound}"
                );
            }
        }
    }

    #[test]
    fn rounds_are_deterministic_across_policies() {
        let g = gen::grid2d(16, 16);
        for k in [3usize, 8] {
            let part0 = balanced_kpart(g.n(), k, 21);
            let cfg = KwayRefineConfig::default();
            let mut results: Vec<Vec<u32>> = Vec::new();
            for policy in ExecPolicy::all_test_policies() {
                let mut p = part0.clone();
                let mut ws = KwayRefWorkspace::new();
                kway_parallel_refine_rounds(
                    &policy,
                    &g,
                    &mut p,
                    k,
                    &cfg,
                    None,
                    &mut ws,
                    &TraceCollector::disabled(),
                );
                results.push(p);
            }
            for r in &results[1..] {
                assert_eq!(
                    &results[0], r,
                    "k={k}: selection must make rounds policy-independent"
                );
            }
        }
    }

    #[test]
    fn sequential_refiner_improves_and_keeps_envelope() {
        // 18x18 keeps floor(target·eps) >= 1 for every k here: with zero
        // slack (target·eps < 1) any single move trips the excess key and
        // improvement from a random start is not guaranteed.
        let g = gen::grid2d(18, 18);
        for k in [2usize, 4, 6] {
            let mut part = balanced_kpart(g.n(), k, 3);
            let before = edge_cut(&g, &part);
            let cfg = KwayRefineConfig::default();
            let out = kway_refine_boundary_traced(
                &g,
                &mut part,
                k,
                &cfg,
                None,
                &TraceCollector::disabled(),
            );
            assert_eq!(out.cut, edge_cut(&g, &part), "k={k} cut drifted");
            assert!(out.cut < before, "k={k}: no improvement {before}");
            let bound = strict_bound(&g, k, cfg.epsilon);
            let mut w = vec![0u64; k];
            for (u, &pp) in part.iter().enumerate() {
                w[pp as usize] += g.vwgt()[u];
            }
            assert!(
                w.iter().all(|&x| x <= bound),
                "k={k} weights {w:?} exceed {bound}"
            );
            // Every part still populated.
            let mut used = part.clone();
            used.sort_unstable();
            used.dedup();
            assert_eq!(used.len(), k, "k={k} dropped a label");
        }
    }

    #[test]
    fn never_empties_a_part() {
        // Singleton parts are pinned by the count guard even when the
        // balance budget would admit the merge.
        let g = gen::path(3);
        let mut part = vec![0u32, 1, 2];
        let before = part.clone();
        let cut = kway_direct_refine(
            &ExecPolicy::serial(),
            &g,
            &mut part,
            5,
            &KwayRefineConfig::default(),
            &TraceCollector::disabled(),
        );
        assert_eq!(part, before, "singleton parts must not merge");
        assert_eq!(cut, edge_cut(&g, &part));

        // A heavy center in its own part stays there.
        let mut star = gen::star(9);
        let mut vw = vec![1u64; star.n()];
        vw[0] = 1000;
        star.set_vwgt(vw);
        let mut p: Vec<u32> = (0..star.n() as u32).map(|u| u % 4).collect();
        kway_direct_refine(
            &ExecPolicy::serial(),
            &star,
            &mut p,
            4,
            &KwayRefineConfig::default(),
            &TraceCollector::disabled(),
        );
        let mut used = p.clone();
        used.sort_unstable();
        used.dedup();
        assert_eq!(used.len(), 4, "labels {p:?}");
    }

    #[test]
    fn lexicographic_never_worse_on_random_graphs() {
        // Stress the rollback guards in repair mode (`entry_slack:
        // false`, absolute epsilon cap): arbitrary unbalanced starts on
        // skewed graphs, every policy; the (excess, cut) key must never
        // end worse than the entry and the tracked cut must stay exact.
        for seed in 0..12u64 {
            let (g, _) =
                mlcg_graph::cc::largest_component(&gen::rmat(6, 5, 0.45, 0.22, 0.22, seed));
            let k = 2 + (seed as usize % 7);
            let mut rng = Xoshiro256pp::new(seed ^ 0xabc);
            let part0: Vec<u32> = (0..g.n())
                .map(|_| rng.next_below(k as u64) as u32)
                .collect();
            let cfg = KwayRefineConfig {
                entry_slack: false,
                ..Default::default()
            };
            let bal = KwayBalance::new(&g, k, &cfg, 0);
            let mut w0 = vec![0u64; k];
            for (u, &p) in part0.iter().enumerate() {
                w0[p as usize] += g.vwgt()[u];
            }
            let entry = (bal.excess(&w0), edge_cut(&g, &part0));
            for policy in ExecPolicy::all_test_policies() {
                let mut p = part0.clone();
                let mut ws = KwayRefWorkspace::new();
                let out = kway_parallel_refine_rounds(
                    &policy,
                    &g,
                    &mut p,
                    k,
                    &cfg,
                    None,
                    &mut ws,
                    &TraceCollector::disabled(),
                );
                assert_eq!(out.cut, edge_cut(&g, &p), "seed {seed} {policy}: drifted");
                let mut w = vec![0u64; k];
                for (u, &pp) in p.iter().enumerate() {
                    w[pp as usize] += g.vwgt()[u];
                }
                assert!(
                    (bal.excess(&w), out.cut) <= entry,
                    "seed {seed} {policy}: ended worse than entry"
                );
            }
        }
    }

    #[test]
    fn entry_slack_never_worsens_cut_or_imbalance() {
        // Production posture (`entry_slack: true`, the default): the
        // strict cap is raised to the entry's heaviest part when that
        // exceeds the epsilon cap, so refinement starts feasible, the
        // cut is monotonically non-worsening, and no part ever outgrows
        // max(epsilon cap, entry max).
        for seed in 0..12u64 {
            let (g, _) =
                mlcg_graph::cc::largest_component(&gen::rmat(6, 5, 0.45, 0.22, 0.22, seed));
            let k = 2 + (seed as usize % 7);
            let mut rng = Xoshiro256pp::new(seed ^ 0x517);
            let part0: Vec<u32> = (0..g.n())
                .map(|_| rng.next_below(k as u64) as u32)
                .collect();
            let cfg = KwayRefineConfig::default();
            let mut w0 = vec![0u64; k];
            for (u, &p) in part0.iter().enumerate() {
                w0[p as usize] += g.vwgt()[u];
            }
            let cap = strict_bound(&g, k, cfg.epsilon).max(w0.iter().copied().max().unwrap_or(0));
            let before = edge_cut(&g, &part0);
            for policy in ExecPolicy::all_test_policies() {
                let mut p = part0.clone();
                let cut =
                    kway_direct_refine(&policy, &g, &mut p, k, &cfg, &TraceCollector::disabled());
                assert_eq!(cut, edge_cut(&g, &p), "seed {seed} {policy}: drifted");
                assert!(
                    cut <= before,
                    "seed {seed} {policy}: cut worsened {before} -> {cut}"
                );
                let mut w = vec![0u64; k];
                for (u, &pp) in p.iter().enumerate() {
                    w[pp as usize] += g.vwgt()[u];
                }
                assert!(
                    w.iter().all(|&x| x <= cap),
                    "seed {seed} {policy}: weights {w:?} exceed cap {cap}"
                );
            }
        }
    }

    #[test]
    fn k_below_two_is_a_no_op() {
        let g = gen::grid2d(4, 4);
        let mut part = vec![0u32; g.n()];
        let cut = kway_direct_refine(
            &ExecPolicy::host(),
            &g,
            &mut part,
            1,
            &KwayRefineConfig::default(),
            &TraceCollector::disabled(),
        );
        assert_eq!(cut, 0);
        assert!(part.iter().all(|&p| p == 0));
    }

    #[test]
    fn crossover_engages_rounds_and_counts_them() {
        let g = gen::grid2d(24, 24);
        let mut part = balanced_kpart(g.n(), 4, 5);
        let trace = TraceCollector::enabled();
        let cfg = KwayRefineConfig {
            crossover_frontier: Some(1),
            ..Default::default()
        };
        let cut = kway_direct_refine(&ExecPolicy::host(), &g, &mut part, 4, &cfg, &trace);
        assert_eq!(cut, edge_cut(&g, &part));
        let report = trace.report();
        assert!(
            report.counter("kwayref/rounds") > 0,
            "forced crossover must run parallel rounds"
        );
    }
}

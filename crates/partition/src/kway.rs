//! k-way partitioning by recursive bisection.
//!
//! The paper evaluates bisection only; a downstream user of a multilevel
//! partitioner almost always wants `k` parts. This module recursively
//! applies any bisection routine, splitting the target part count
//! (im)properly for non-powers of two: a 5-way partition first bisects
//! 3:2 by weight, then recurses.
//!
//! Each bisection goes through [`fm_bisect_frac`], whose uncoarsening is
//! the hybrid driver (`fm_uncoarsen_frac_hybrid`): under a parallel
//! policy, coarse levels whose projected frontier crosses the crossover
//! threshold refine with frontier-based parallel rounds
//! (`parallel_refine_rounds`) before the sequential boundary FM polish —
//! so recursive k-way inherits the parallel coarse-level engine on the
//! top-level (largest) subproblems, where it pays, and stays on the
//! sequential fast path for the small deep-recursion pieces.

use crate::fm::{fm_bisect_frac, FmConfig};
use crate::kwayref::{kway_direct_refine, KwayRefineConfig};
use mlcg_coarsen::CoarsenOptions;
use mlcg_graph::metrics::edge_cut;
use mlcg_graph::Csr;
use mlcg_par::{ExecPolicy, Timer, TraceCollector};

/// Outcome of a k-way partition.
#[derive(Clone, Debug)]
pub struct KwayResult {
    /// Part label in `0..k` per vertex.
    pub part: Vec<u32>,
    /// Weighted edge cut across all part boundaries.
    pub cut: u64,
    /// `max_p w(p) / (total / k)`; 1.0 is perfect.
    pub imbalance: f64,
    /// Total wall time.
    pub seconds: f64,
    /// Time spent in the direct k-way refinement post-pass (0 when
    /// disabled or `k < 2`).
    pub refine_seconds: f64,
}

/// Configuration for [`kway_partition_cfg`].
#[derive(Clone, Debug)]
pub struct KwayConfig {
    /// Run direct k-way refinement over the finished labeling, so cuts
    /// recursive bisection froze early — and the edge-ignoring
    /// `direct_kway_split` fallback assignments — get revisited with all
    /// `k` labels in view.
    pub direct_refine: bool,
    /// Tuning for the refinement post-pass. `epsilon` and `vertex_slack`
    /// should normally mirror the bisection `FmConfig` (the flat
    /// [`kway_partition`] wrapper copies them over).
    pub refine: KwayRefineConfig,
}

impl Default for KwayConfig {
    fn default() -> Self {
        KwayConfig {
            direct_refine: true,
            refine: KwayRefineConfig::default(),
        }
    }
}

/// Partition into `k` balanced parts by recursive FM bisection, then
/// direct k-way refinement (see [`kway_partition_cfg`]).
pub fn kway_partition(
    policy: &ExecPolicy,
    g: &Csr,
    k: usize,
    coarsen_opts: &CoarsenOptions,
    fm: &FmConfig,
    seed: u64,
) -> KwayResult {
    let cfg = KwayConfig {
        refine: KwayRefineConfig {
            epsilon: fm.epsilon,
            vertex_slack: fm.vertex_slack,
            ..Default::default()
        },
        ..Default::default()
    };
    kway_partition_cfg(
        policy,
        g,
        k,
        coarsen_opts,
        fm,
        &cfg,
        seed,
        &TraceCollector::disabled(),
    )
}

/// Partition into `k` balanced parts: recursive FM bisection, then —
/// when [`KwayConfig::direct_refine`] is set — one direct k-way
/// refinement pass over the finished labeling.
///
/// The reported cut is the refiner's incrementally maintained value
/// (debug-asserted against, and under `MLCG_VALIDATE` audited as
/// `kway-cut-agree` with, a from-scratch [`edge_cut`] recount); the
/// O(m) recount only runs eagerly when the refinement post-pass is
/// disabled. Each refined partition bumps the `kway/direct_refine`
/// trace counter.
#[allow(clippy::too_many_arguments)]
pub fn kway_partition_cfg(
    policy: &ExecPolicy,
    g: &Csr,
    k: usize,
    coarsen_opts: &CoarsenOptions,
    fm: &FmConfig,
    cfg: &KwayConfig,
    seed: u64,
    trace: &TraceCollector,
) -> KwayResult {
    assert!(k >= 1, "k must be positive");
    let t = Timer::start();
    let mut part = vec![0u32; g.n()];
    recurse(
        policy,
        g,
        k,
        0,
        coarsen_opts,
        fm,
        seed,
        &mut part,
        &(0..g.n() as u32).collect::<Vec<_>>(),
    );
    let (cut, refine_seconds) = if cfg.direct_refine && k >= 2 && g.n() > 0 {
        let rt = Timer::start();
        let cut = kway_direct_refine(policy, g, &mut part, k, &cfg.refine, trace);
        trace.counter_add("kway/direct_refine", 1);
        debug_assert_eq!(cut, edge_cut(g, &part), "refined k-way cut drifted");
        if trace.validate_enabled() {
            let recount = edge_cut(g, &part);
            trace.audit(
                "partition/kway",
                "kway-cut-agree",
                if cut == recount {
                    Ok(())
                } else {
                    Err(format!("incremental cut {cut} != edge_cut {recount}"))
                },
            );
        }
        (cut, rt.seconds())
    } else {
        (edge_cut(g, &part), 0.0)
    };
    let imbalance = kway_imbalance(g, &part, k);
    KwayResult {
        part,
        cut,
        imbalance,
        seconds: t.seconds(),
        refine_seconds,
    }
}

/// `max_p w(p) / (total/k)` for a k-way partition.
///
/// Labels must lie in `0..k` (asserted). Empty parts are tolerated — they
/// are legitimate when `n < k` — and simply never contribute to the max;
/// callers that require every label populated can check
/// [`kway_empty_parts`] or use [`kway_imbalance_checked`].
pub fn kway_imbalance(g: &Csr, part: &[u32], k: usize) -> f64 {
    let mut w = vec![0u64; k];
    for (u, &p) in part.iter().enumerate() {
        assert!(
            (p as usize) < k,
            "part label {p} out of range for k={k} (vertex {u})"
        );
        w[p as usize] += g.vwgt()[u];
    }
    let total: u64 = w.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let ideal = total as f64 / k as f64;
    w.iter().copied().max().unwrap_or(0) as f64 / ideal
}

/// Number of labels in `0..k` with no assigned vertex. Zero for a healthy
/// k-way partition whenever `n >= k`; a positive count flags label dropout
/// upstream (the bug this helper exists to surface).
pub fn kway_empty_parts(part: &[u32], k: usize) -> usize {
    let mut seen = vec![false; k];
    for &p in part {
        assert!((p as usize) < k, "part label {p} out of range for k={k}");
        seen[p as usize] = true;
    }
    seen.iter().filter(|&&s| !s).count()
}

/// [`kway_imbalance`] plus a debug assertion that no part is empty.
///
/// Use from tests and debug builds on graphs with `n >= k`, where an empty
/// part always indicates label dropout rather than a legitimately
/// unpopulated label.
pub fn kway_imbalance_checked(g: &Csr, part: &[u32], k: usize) -> f64 {
    debug_assert_eq!(
        kway_empty_parts(part, k),
        0,
        "k-way label dropout: empty parts with n={} k={k}",
        g.n()
    );
    kway_imbalance(g, part, k)
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    policy: &ExecPolicy,
    g: &Csr,
    k: usize,
    base_label: u32,
    coarsen_opts: &CoarsenOptions,
    fm: &FmConfig,
    seed: u64,
    out: &mut [u32],
    ids: &[u32], // original ids of g's vertices
) {
    if k <= 1 || g.n() <= 1 {
        for &u in ids {
            out[u as usize] = base_label;
        }
        return;
    }
    // Split k into k0 + k1 (k0 >= k1); the bisection targets a k0:k1
    // weight ratio so odd k stays balanced.
    let k0 = k.div_ceil(2);
    let k1 = k / 2;
    // Bias the bisection so side 0 receives k0/k of the weight.
    let r = fm_bisect_frac(policy, g, coarsen_opts, fm, k0 as f64 / k as f64, seed);

    // Degenerate bisection: one side came back empty (heavy vertices or a
    // collapsed coarse hierarchy can defeat the balance constraint). The
    // old code `continue`d past the empty side, silently dropping its
    // whole label range and emitting fewer than k parts. Instead, re-split
    // the non-empty side directly across all k labels.
    let n0 = r.part.iter().filter(|&&s| s == 0).count();
    if n0 == 0 || n0 == g.n() {
        direct_kway_split(g, k, base_label, out, ids);
        return;
    }

    for side in 0..2u32 {
        let sub_k = if side == 0 { k0 } else { k1 };
        let label = if side == 0 {
            base_label
        } else {
            base_label + k0 as u32
        };
        // Extract the side's induced subgraph (largest component plus any
        // stragglers, which are labeled directly).
        let side_ids: Vec<u32> = (0..g.n() as u32)
            .filter(|&u| r.part[u as usize] == side)
            .collect();
        if sub_k <= 1 {
            for &u in &side_ids {
                out[ids[u as usize] as usize] = label;
            }
            continue;
        }
        let (sub, _) = mlcg_graph::cc::induced_subgraph(g, &side_ids);
        let sub_ids: Vec<u32> = side_ids.iter().map(|&u| ids[u as usize]).collect();
        // Recursion merges everything into one label at its `n <= 1` base
        // case, so a side with fewer vertices than target labels can never
        // populate them all that way; a direct split uses as many labels
        // as there are vertices.
        if side_ids.len() < sub_k {
            direct_kway_split(&sub, sub_k, label, out, &sub_ids);
            continue;
        }
        // Disconnected sides are possible; recurse on the whole (possibly
        // disconnected) subgraph only if connected, otherwise fall back to
        // splitting components round-robin through the bisection of the
        // largest one.
        if mlcg_graph::cc::is_connected(&sub) {
            recurse(
                policy,
                &sub,
                sub_k,
                label,
                coarsen_opts,
                fm,
                seed.wrapping_mul(6364136223846793005)
                    .wrapping_add(side as u64 + 1),
                out,
                &sub_ids,
            );
        } else {
            // Assign components greedily to the sub-parts by weight. This
            // never splits a component, so with fewer components than
            // sub-parts some labels would stay empty — fall back to a
            // direct vertex-level split in that case.
            let (comp, ncomp) = mlcg_graph::cc::components(&sub);
            if ncomp < sub_k {
                direct_kway_split(&sub, sub_k, label, out, &sub_ids);
                continue;
            }
            let mut loads = vec![0u64; sub_k];
            let mut comp_part = vec![0u32; ncomp];
            let mut comp_weight = vec![0u64; ncomp];
            for (i, &c) in comp.iter().enumerate() {
                comp_weight[c as usize] += sub.vwgt()[i];
            }
            let mut order: Vec<usize> = (0..ncomp).collect();
            order.sort_by_key(|&c| std::cmp::Reverse(comp_weight[c]));
            for c in order {
                let target = (0..sub_k).min_by_key(|&p| loads[p]).expect("sub_k >= 1");
                comp_part[c] = target as u32;
                loads[target] += comp_weight[c];
            }
            for (i, &c) in comp.iter().enumerate() {
                out[sub_ids[i] as usize] = label + comp_part[c as usize];
            }
        }
    }
}

/// Greedy weight-balanced direct split: assign vertices, heaviest first,
/// to the least-loaded of `k` labels (ties broken toward the lowest
/// label, so empty labels fill before any label doubles up). Ignores
/// edges entirely — this is a label-coverage fallback for cases where
/// recursive bisection cannot populate every label, not a quality path.
fn direct_kway_split(g: &Csr, k: usize, base_label: u32, out: &mut [u32], ids: &[u32]) {
    let mut order: Vec<usize> = (0..g.n()).collect();
    order.sort_by_key(|&u| std::cmp::Reverse((g.vwgt()[u], u)));
    let mut loads = vec![0u64; k];
    for u in order {
        let target = (0..k)
            .min_by_key(|&p| (loads[p], p))
            .expect("k >= 1 in direct split");
        out[ids[u] as usize] = base_label + target as u32;
        loads[target] += g.vwgt()[u];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcg_graph::generators as gen;

    fn run(g: &Csr, k: usize) -> KwayResult {
        kway_partition(
            &ExecPolicy::serial(),
            g,
            k,
            &CoarsenOptions::default(),
            &FmConfig::default(),
            7,
        )
    }

    #[test]
    fn four_way_grid() {
        let g = gen::grid2d(16, 16);
        let r = run(&g, 4);
        // Optimal 4-way cut of a 16x16 grid is 32 (two orthogonal cuts).
        assert!(r.cut <= 64, "4-way cut {}", r.cut);
        assert!(r.imbalance <= 1.15, "imbalance {}", r.imbalance);
        let mut used: Vec<u32> = r.part.clone();
        used.sort_unstable();
        used.dedup();
        assert_eq!(used, vec![0, 1, 2, 3], "all four labels used");
    }

    #[test]
    fn k_equal_one_is_trivial() {
        let g = gen::grid2d(8, 8);
        let r = run(&g, 1);
        assert_eq!(r.cut, 0);
        assert!(r.part.iter().all(|&p| p == 0));
        assert!((r.imbalance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn odd_k_uses_all_labels() {
        let g = gen::grid2d(20, 12);
        let r = run(&g, 5);
        let mut used: Vec<u32> = r.part.clone();
        used.sort_unstable();
        used.dedup();
        assert_eq!(used.len(), 5, "labels {used:?}");
        assert!(r.imbalance <= 1.35, "imbalance {}", r.imbalance);
    }

    #[test]
    fn eight_way_mesh_balance() {
        let g = gen::grid3d(10, 10, 10, gen::Stencil::Star7);
        let r = run(&g, 8);
        assert!(r.imbalance <= 1.2, "imbalance {}", r.imbalance);
        assert_eq!(r.cut, edge_cut(&g, &r.part));
    }

    #[test]
    fn kway_on_skewed_graph() {
        let (g, _) = mlcg_graph::cc::largest_component(&gen::rmat(10, 8, 0.57, 0.19, 0.19, 3));
        let r = run(&g, 4);
        assert!(r.imbalance <= 1.35, "imbalance {}", r.imbalance);
        assert!(r.cut > 0);
    }

    #[test]
    fn heavy_vertex_pair_uses_both_labels() {
        // One vertex carries ~99% of the weight, so no bisection can meet
        // the balance constraint and one side may come back empty. The old
        // code silently emitted a single label; the fallback must still
        // produce both.
        let mut g = mlcg_graph::builder::from_edges_weighted(2, &[(0, 1, 1)]);
        g.set_vwgt(vec![1, 100]);
        let r = run(&g, 2);
        assert_eq!(kway_empty_parts(&r.part, 2), 0, "labels {:?}", r.part);
        assert!(r.part.iter().all(|&p| p < 2));
    }

    #[test]
    fn star_with_heavy_center_uses_all_labels() {
        let mut g = gen::star(9);
        let mut vw = vec![1u64; g.n()];
        vw[0] = 1000;
        g.set_vwgt(vw);
        let r = run(&g, 4);
        assert_eq!(kway_empty_parts(&r.part, 4), 0, "labels {:?}", r.part);
        // With the center pinned in one part the other three split the
        // leaves; imbalance is dominated by the center but must be finite
        // and computed against all 4 parts.
        assert!(r.imbalance.is_finite());
    }

    #[test]
    fn more_parts_than_vertices_is_tolerated() {
        let g = gen::path(3);
        let r = run(&g, 5);
        assert!(r.part.iter().all(|&p| p < 5), "labels {:?}", r.part);
        // Exactly 3 labels can be populated; the other 2 are legitimately
        // empty and kway_imbalance must tolerate them.
        assert_eq!(kway_empty_parts(&r.part, 5), 2, "labels {:?}", r.part);
        assert!(r.imbalance.is_finite() && r.imbalance >= 1.0);
    }

    #[test]
    fn checked_imbalance_matches_on_full_partitions() {
        let g = gen::grid2d(8, 8);
        let r = run(&g, 4);
        assert_eq!(
            kway_imbalance_checked(&g, &r.part, 4),
            kway_imbalance(&g, &r.part, 4)
        );
    }

    /// The three `direct_kway_split` fallback triggers — (a) a
    /// degenerate bisection side (heavy pair), (b) a side with fewer
    /// vertices than its label budget (tiny path), (c) a disconnected
    /// side with fewer components than labels (disjoint triangles) —
    /// must all be followed by the direct refinement post-pass rather
    /// than shipping the edge-ignoring greedy assignment as-is.
    #[test]
    fn fallback_assignments_route_through_direct_refiner() {
        let mut heavy = mlcg_graph::builder::from_edges_weighted(2, &[(0, 1, 1)]);
        heavy.set_vwgt(vec![1, 100]);
        let tiny = gen::path(3);
        let tris = mlcg_graph::builder::from_edges_weighted(
            9,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (3, 4, 1),
                (4, 5, 1),
                (5, 3, 1),
                (6, 7, 1),
                (7, 8, 1),
                (8, 6, 1),
            ],
        );
        for (g, k, empties) in [
            (&heavy, 2usize, Some(0usize)),
            (&tiny, 5, Some(2)),
            (&tris, 8, None),
        ] {
            let policy = ExecPolicy::serial();
            let baseline = kway_partition_cfg(
                &policy,
                g,
                k,
                &CoarsenOptions::default(),
                &FmConfig::default(),
                &KwayConfig {
                    direct_refine: false,
                    ..Default::default()
                },
                7,
                &TraceCollector::disabled(),
            );
            let trace = TraceCollector::enabled();
            let refined = kway_partition_cfg(
                &policy,
                g,
                k,
                &CoarsenOptions::default(),
                &FmConfig::default(),
                &KwayConfig::default(),
                7,
                &trace,
            );
            let report = trace.report();
            assert_eq!(
                report.counter("kway/direct_refine"),
                1,
                "k={k}: refiner post-pass must run on fallback output"
            );
            assert_eq!(refined.cut, edge_cut(g, &refined.part), "k={k}");
            assert!(
                refined.cut <= baseline.cut,
                "k={k}: refined {} worse than raw fallback {}",
                refined.cut,
                baseline.cut
            );
            // Refinement must not introduce label dropout beyond what the
            // recursion itself produced (exact counts pinned where the
            // recursion's outcome is determined by the graph shape).
            let expected = empties.unwrap_or_else(|| kway_empty_parts(&baseline.part, k));
            assert_eq!(
                kway_empty_parts(&refined.part, k),
                expected,
                "k={k} labels {:?}",
                refined.part
            );
        }
    }

    /// Refinement visibly repairs the quality the edge-ignoring fallback
    /// leaves on the table: two disjoint triangles split 2-ways must end
    /// with zero cut (one triangle per part), which the greedy
    /// weight-first split alone does not guarantee.
    #[test]
    fn direct_refine_fixes_the_greedy_split() {
        let g = mlcg_graph::builder::from_edges_weighted(
            6,
            &[
                (0, 1, 1),
                (1, 2, 1),
                (2, 0, 1),
                (3, 4, 1),
                (4, 5, 1),
                (5, 3, 1),
            ],
        );
        let mut part = vec![0u32; g.n()];
        direct_kway_split(&g, 2, 0, &mut part, &(0..6).collect::<Vec<_>>());
        let raw = edge_cut(&g, &part);
        let cut = crate::kwayref::kway_direct_refine(
            &ExecPolicy::serial(),
            &g,
            &mut part,
            2,
            &crate::kwayref::KwayRefineConfig::default(),
            &TraceCollector::disabled(),
        );
        assert_eq!(cut, edge_cut(&g, &part));
        assert_eq!(cut, 0, "triangles should separate (raw fallback cut {raw})");
    }

    #[test]
    fn disabling_direct_refine_recounts_eagerly() {
        let g = gen::grid2d(10, 10);
        let r = kway_partition_cfg(
            &ExecPolicy::serial(),
            &g,
            4,
            &CoarsenOptions::default(),
            &FmConfig::default(),
            &KwayConfig {
                direct_refine: false,
                ..Default::default()
            },
            7,
            &TraceCollector::disabled(),
        );
        assert_eq!(r.cut, edge_cut(&g, &r.part));
        assert_eq!(r.refine_seconds, 0.0);
    }

    #[test]
    fn imbalance_helper() {
        let g = gen::path(8);
        let part = vec![0, 0, 1, 1, 2, 2, 3, 3];
        assert!((kway_imbalance(&g, &part, 4) - 1.0).abs() < 1e-12);
        let lop = vec![0, 0, 0, 0, 0, 1, 2, 3];
        assert!((kway_imbalance(&g, &lop, 4) - 2.5).abs() < 1e-12);
    }
}

#![warn(missing_docs)]
//! # mlcg-partition — multilevel graph bisection
//!
//! The paper's evaluation vehicle: multilevel bisection with either
//! *spectral* refinement (power iteration on the graph Laplacian, stopping
//! at a 1e-10 iterate difference) or sequential *Fiduccia–Mattheyses*
//! refinement, on top of any `mlcg-coarsen` hierarchy.
//!
//! Also provides the *Metis-like* and *mt-Metis-like* baselines the
//! reproduction compares against (DESIGN.md §3.3): the same multilevel
//! driver assembled from HEM / HEM+two-hop coarsening, greedy graph
//! growing initial partitioning, and FM refinement.

pub mod fm;
pub mod ggg;
pub mod kway;
pub mod kwayref;
pub mod metislike;
pub mod parref;
pub mod result;
pub mod spectral;

pub use fm::{
    fm_bisect, fm_bisect_frac, fm_refine_boundary_traced, fm_refine_frac_full_scan,
    fm_uncoarsen_frac_full_scan, fm_uncoarsen_frac_hybrid, FmConfig, FmRefineOutcome,
};
pub use kway::{
    kway_empty_parts, kway_imbalance, kway_imbalance_checked, kway_partition, kway_partition_cfg,
    KwayConfig, KwayResult,
};
pub use kwayref::{
    kway_direct_refine, kway_parallel_refine_rounds, kway_refine_boundary_traced, KwayRefWorkspace,
    KwayRefineConfig, KwayRefineOutcome, KwayRoundsOutcome,
};
pub use metislike::{metis_like, mtmetis_like};
pub use parref::{
    parallel_refine, parallel_refine_rounds, parfm_bisect, rounds_then_polish, ParRefConfig,
    ParRefOutcome, ParRefWorkspace,
};
pub use result::audit_partition;
pub use result::PartitionResult;
pub use spectral::{spectral_bisect, SpectralConfig};

//! The result record shared by every partitioner.

use mlcg_graph::metrics::{edge_cut, imbalance};
use mlcg_graph::Csr;
use mlcg_par::{TraceCollector, TraceReport};

/// Outcome of a bisection run, with the phase breakdown the paper's
/// Table V reports.
#[derive(Clone, Debug)]
pub struct PartitionResult {
    /// Part label (0/1) per vertex of the input graph.
    pub part: Vec<u32>,
    /// Weighted edge cut.
    pub cut: u64,
    /// `max(w0, w1) / (total/2)`; 1.0 is perfectly balanced.
    pub imbalance: f64,
    /// Seconds spent coarsening.
    pub coarsen_seconds: f64,
    /// Seconds spent in initial partitioning + refinement + projection.
    pub refine_seconds: f64,
    /// Coarsening levels used.
    pub levels: usize,
    /// Pipeline trace (spans/counters/gauges/audits); empty unless the run
    /// was driven with an enabled [`mlcg_par::TraceCollector`].
    pub trace: TraceReport,
}

impl PartitionResult {
    /// Assemble from a final partition, measuring cut and balance.
    pub fn new(
        g: &Csr,
        part: Vec<u32>,
        coarsen_seconds: f64,
        refine_seconds: f64,
        levels: usize,
    ) -> Self {
        let cut = edge_cut(g, &part);
        let imb = imbalance(g, &part);
        PartitionResult {
            part,
            cut,
            imbalance: imb,
            coarsen_seconds,
            refine_seconds,
            levels,
            trace: TraceReport::default(),
        }
    }

    /// Attach a pipeline trace snapshot (builder style).
    pub fn with_trace(mut self, trace: TraceReport) -> Self {
        self.trace = trace;
        self
    }

    /// Total wall time.
    pub fn total_seconds(&self) -> f64 {
        self.coarsen_seconds + self.refine_seconds
    }

    /// Fraction of time in coarsening (Table V's `%Coa`).
    pub fn coarsen_fraction(&self) -> f64 {
        let t = self.total_seconds();
        if t == 0.0 {
            0.0
        } else {
            self.coarsen_seconds / t
        }
    }
}

/// Opt-in partition audit: records `partition-valid` (labels cover every
/// vertex and are 0/1) and `partition-balance` (imbalance within
/// `max_imbalance`) under `phase`. No-op unless the collector has
/// validation enabled (`MLCG_VALIDATE=1` or `TraceConfig::validate`).
pub fn audit_partition(
    trace: &TraceCollector,
    phase: &str,
    g: &Csr,
    part: &[u32],
    max_imbalance: f64,
) {
    if !trace.validate_enabled() {
        return;
    }
    let valid = if part.len() != g.n() {
        Err(format!("part length {} != n {}", part.len(), g.n()))
    } else if let Some(u) = part.iter().position(|&p| p > 1) {
        Err(format!("vertex {u} has label {} (want 0/1)", part[u]))
    } else {
        Ok(())
    };
    let structurally_ok = valid.is_ok();
    trace.audit(phase, "partition-valid", valid);
    if structurally_ok && g.n() > 0 {
        let imb = imbalance(g, part);
        let res = if imb <= max_imbalance {
            Ok(())
        } else {
            Err(format!(
                "imbalance {imb:.4} exceeds allowed {max_imbalance:.4}"
            ))
        };
        trace.audit(phase, "partition-balance", res);
    }
}

/// Split vertices by the weighted median of a score vector: sort by score
/// and assign the prefix holding half the total vertex weight to part 0.
/// This is how the spectral method turns a Fiedler vector into a balanced
/// bisection (the paper reports cuts with no imbalance allowed).
pub fn split_weighted_median(g: &Csr, scores: &[f64]) -> Vec<u32> {
    let n = g.n();
    assert_eq!(scores.len(), n);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        scores[a as usize]
            .partial_cmp(&scores[b as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let total: u64 = g.total_vwgt();
    let mut part = vec![1u32; n];
    let mut acc = 0u64;
    for &u in &order {
        if 2 * acc >= total {
            break;
        }
        part[u as usize] = 0;
        acc += g.vwgt()[u as usize];
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcg_graph::generators::{grid2d, path};

    #[test]
    fn median_split_is_balanced() {
        let g = path(10);
        let scores: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let part = split_weighted_median(&g, &scores);
        assert_eq!(part.iter().filter(|&&p| p == 0).count(), 5);
        // Prefix of the score order goes to part 0.
        assert_eq!(&part[..5], &[0, 0, 0, 0, 0]);
    }

    #[test]
    fn median_split_weighted() {
        let mut g = path(4);
        g.set_vwgt(vec![3, 1, 1, 3]);
        let part = split_weighted_median(&g, &[0.0, 1.0, 2.0, 3.0]);
        // Prefix {0} has weight 3 < 4; {0,1} reaches 4 = total/2.
        assert_eq!(part, vec![0, 0, 1, 1]);
    }

    #[test]
    fn result_records_cut_and_balance() {
        let g = grid2d(4, 4);
        let part: Vec<u32> = (0..16).map(|i| u32::from(i % 4 >= 2)).collect();
        let r = PartitionResult::new(&g, part, 0.1, 0.2, 3);
        assert_eq!(r.cut, 4);
        assert!((r.imbalance - 1.0).abs() < 1e-12);
        assert!((r.total_seconds() - 0.3).abs() < 1e-12);
        assert!((r.coarsen_fraction() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn median_split_handles_ties() {
        let g = path(6);
        let part = split_weighted_median(&g, &[1.0; 6]);
        assert_eq!(part.iter().filter(|&&p| p == 0).count(), 3);
    }
}

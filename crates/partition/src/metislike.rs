//! Metis-like and mt-Metis-like baseline partitioners.
//!
//! The paper compares against Metis v5.1.0 and mt-Metis v0.7.2. Those are
//! closed comparator binaries from this reproduction's point of view
//! (DESIGN.md §3.3), so the baselines are assembled from the same recipe
//! the Metis papers describe, using this workspace's own components:
//!
//! - **Metis-like**: *sequential* HEM coarsening, greedy graph growing,
//!   sequential FM refinement;
//! - **mt-Metis-like**: *parallel* HEM + two-hop matching (leaves, twins,
//!   relatives — LaSalle & Karypis' optimization for skewed graphs),
//!   greedy graph growing, sequential FM refinement.

use crate::fm::{fm_bisect, FmConfig};
use crate::result::PartitionResult;
use mlcg_coarsen::{CoarsenOptions, MapMethod};
use mlcg_graph::Csr;
use mlcg_par::ExecPolicy;

/// Metis-like baseline (sequential HEM + GGG + FM).
pub fn metis_like(g: &Csr, seed: u64) -> PartitionResult {
    let opts = CoarsenOptions {
        method: MapMethod::SeqHem,
        seed,
        ..Default::default()
    };
    fm_bisect(&ExecPolicy::serial(), g, &opts, &FmConfig::default(), seed)
}

/// mt-Metis-like baseline (parallel HEM + two-hop matching + GGG + FM).
pub fn mtmetis_like(policy: &ExecPolicy, g: &Csr, seed: u64) -> PartitionResult {
    let opts = CoarsenOptions {
        method: MapMethod::MtMetis,
        seed,
        ..Default::default()
    };
    fm_bisect(policy, g, &opts, &FmConfig::default(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcg_graph::generators as gen;
    use mlcg_graph::metrics::edge_cut;

    #[test]
    fn both_baselines_partition_a_grid() {
        let g = gen::grid2d(16, 8);
        let a = metis_like(&g, 3);
        let b = mtmetis_like(&ExecPolicy::serial(), &g, 3);
        for (name, r) in [("metis-like", &a), ("mtmetis-like", &b)] {
            assert!(r.cut <= 20, "{name} cut {}", r.cut);
            assert!(r.imbalance <= 1.05, "{name} imbalance {}", r.imbalance);
            assert_eq!(r.cut, edge_cut(&g, &r.part), "{name} cut mismatch");
        }
    }

    #[test]
    fn mtmetis_like_survives_star_heavy_graphs() {
        // Plain HEM stalls on stars; two-hop matching must still deliver a
        // hierarchy and a valid bisection.
        let (g, _) = mlcg_graph::cc::largest_component(&gen::rmat(9, 4, 0.65, 0.15, 0.15, 5));
        let r = mtmetis_like(&ExecPolicy::serial(), &g, 7);
        assert!(r.levels >= 1);
        assert_eq!(r.part.len(), g.n());
        assert!(r.imbalance <= 1.1, "imbalance {}", r.imbalance);
    }

    #[test]
    fn baselines_are_deterministic_in_serial() {
        let g = gen::grid2d(10, 10);
        let a = metis_like(&g, 9);
        let b = metis_like(&g, 9);
        assert_eq!(a.part, b.part);
        assert_eq!(a.cut, b.cut);
    }
}

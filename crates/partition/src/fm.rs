//! Sequential Fiduccia–Mattheyses refinement and the FM-based multilevel
//! bisection driver.
//!
//! The paper's FM implementation is sequential ("we are unaware of FM
//! parallelizations for massively multithreaded architectures"); only the
//! coarsening phase is parallel. Each pass greedily moves the
//! best-gain balance-feasible vertex, locking moved vertices, and rolls
//! back to the best prefix — the classic linear-time heuristic, here with
//! a lazy max-heap over weighted gains.
//!
//! Refinement is *boundary-driven*: a pass computes gains and heap-seeds
//! only the frontier (vertices with at least one cut edge, plus anything
//! whose stored gain a move invalidated), so a pass costs
//! `O(boundary + moved · deg)` instead of the `O(n + m)` full rebuild the
//! reference implementation ([`fm_refine_frac_full_scan`]) performs. The
//! multilevel driver seeds each level's frontier from the coarser level's
//! final boundary (see [`mlcg_coarsen::Hierarchy::project_frontier`]), so
//! uncoarsening never rescans interior vertices whose aggregate was
//! interior one level down.

use crate::parref::{parallel_refine_rounds, ParRefConfig, ParRefWorkspace};
use crate::result::{audit_partition, PartitionResult};
use mlcg_coarsen::{coarsen, CoarsenOptions, Hierarchy};
use mlcg_graph::metrics::edge_cut;
use mlcg_graph::{Csr, VId};
use mlcg_par::{Backend, ExecPolicy, TraceCollector};
use std::collections::BinaryHeap;

/// FM tuning parameters.
#[derive(Clone, Debug)]
pub struct FmConfig {
    /// Maximum refinement passes per level.
    pub max_passes: usize,
    /// Allowed imbalance: a move is feasible while the heavier side stays
    /// at or below `(1 + epsilon) · total/2` (always at least `⌈total/2⌉`,
    /// so unit-weight graphs can reach exact balance).
    pub epsilon: f64,
    /// Additionally allow the heavier side one maximum-vertex-weight of
    /// slack. Exact balance is often unreachable on coarse graphs with
    /// heavy aggregates, and forcing it can destroy the cut; the
    /// multilevel driver enables this on every level except the finest
    /// (Metis-style progressive tightening).
    pub vertex_slack: bool,
}

impl Default for FmConfig {
    fn default() -> Self {
        FmConfig {
            max_passes: 8,
            epsilon: 0.02,
            vertex_slack: false,
        }
    }
}

impl FmConfig {
    /// This configuration with [`FmConfig::vertex_slack`] enabled.
    pub fn with_vertex_slack(&self) -> Self {
        FmConfig {
            vertex_slack: true,
            ..self.clone()
        }
    }
}

/// One FM refinement on a bisection; mutates `part`, returns the final cut.
pub fn fm_refine(g: &Csr, part: &mut [u32], cfg: &FmConfig) -> u64 {
    fm_refine_frac(g, part, cfg, 0.5)
}

/// FM refinement targeting part 0 holding `frac` of the total vertex
/// weight (used by recursive k-way partitioning for odd splits).
pub fn fm_refine_frac(g: &Csr, part: &mut [u32], cfg: &FmConfig, frac: f64) -> u64 {
    fm_refine_frac_traced(g, part, cfg, frac, &TraceCollector::disabled())
}

/// [`fm_refine_frac`] with a trace sink: each pass records an `fm/pass{N}`
/// span and an `fm/boundary_size` gauge, and prefix rollbacks feed the
/// `fm/moves_rolled_back` counter. With a disabled collector this is
/// exactly `fm_refine_frac`.
pub fn fm_refine_frac_traced(
    g: &Csr,
    part: &mut [u32],
    cfg: &FmConfig,
    frac: f64,
    trace: &TraceCollector,
) -> u64 {
    fm_refine_boundary_traced(g, part, cfg, frac, None, trace).cut
}

/// Outcome of one boundary-driven refinement.
#[derive(Clone, Debug)]
pub struct FmRefineOutcome {
    /// Final weighted edge cut.
    pub cut: u64,
    /// Final boundary: every vertex with at least one cut edge. The
    /// multilevel driver projects this down one level (every fine vertex
    /// whose aggregate is listed here) to seed the next refinement.
    pub boundary: Vec<u32>,
}

/// Per-side weight limits derived from a balance slack and a target split.
/// Shared with the parallel refiner (`crate::parref`) so both refiners
/// enforce the identical envelope.
pub(crate) struct Balance {
    /// Final partitions must keep each side at or below its strict limit.
    pub(crate) strict: [u64; 2],
    /// During a pass, moves may wander one max-vertex beyond the strict
    /// limit (otherwise a perfectly balanced start could never move
    /// anything); the best-prefix selection restores strict balance.
    pub(crate) loose: [u64; 2],
}

impl Balance {
    pub(crate) fn new(g: &Csr, epsilon: f64, vertex_slack: bool, frac: f64) -> Balance {
        let total: u64 = g.total_vwgt();
        let max_vwgt = g.vwgt().iter().copied().max().unwrap_or(1);
        let t0 = ((total as f64 * frac).round() as u64).min(total);
        let target = [t0, total - t0];
        // Per-side cap: epsilon slack around the side's target, but never
        // below the rounded-up share (so exact balance stays reachable on
        // integer weights), plus one max-vertex of slack on coarse levels.
        let strict_side = |t: u64, share: f64| {
            let mut lim = (((t as f64) * (1.0 + epsilon)).floor() as u64)
                .max((total as f64 * share).ceil() as u64);
            if vertex_slack {
                lim += max_vwgt;
            }
            lim
        };
        let strict = [
            strict_side(target[0], frac),
            strict_side(target[1], 1.0 - frac),
        ];
        Balance {
            strict,
            loose: [strict[0] + max_vwgt, strict[1] + max_vwgt],
        }
    }

    /// How far either side exceeds its strict limit (0 when feasible).
    pub(crate) fn excess(&self, wp: &[u64; 2]) -> u64 {
        wp[0].saturating_sub(self.strict[0]) + wp[1].saturating_sub(self.strict[1])
    }
}

/// Boundary-driven FM refinement — the production refiner.
///
/// Each pass computes gains and heap-seeds only the *frontier*; interior
/// vertices enter the heap lazily, when a committed move re-gains them.
/// The frontier is maintained incrementally: the next pass revisits the
/// current boundary plus every vertex whose stored gain a move (committed
/// *or* rolled back) invalidated, so a pass costs
/// `O(boundary + moved · deg)` rather than `O(n + m)`.
///
/// `seed_frontier`, when given, replaces the first pass's full vertex scan;
/// it must cover every vertex with a cut edge (a superset is fine — extra
/// candidates are filtered out after one gain computation). The multilevel
/// driver obtains it by projecting the coarser level's final boundary.
///
/// One exception needs a wider net: while a side exceeds its strict weight
/// limit, the pass also seeds every vertex of the over-limit side, because
/// balance repair may require moving vertices with no cut edge at all
/// (e.g. a degenerate everything-on-one-side start has an *empty*
/// boundary). Balanced runs never pay this cost.
pub fn fm_refine_boundary_traced(
    g: &Csr,
    part: &mut [u32],
    cfg: &FmConfig,
    frac: f64,
    seed_frontier: Option<&[u32]>,
    trace: &TraceCollector,
) -> FmRefineOutcome {
    let n = g.n();
    assert_eq!(part.len(), n);
    assert!((0.0..=1.0).contains(&frac), "frac must be in [0, 1]");
    if n == 0 {
        return FmRefineOutcome {
            cut: 0,
            boundary: Vec::new(),
        };
    }
    let bal = Balance::new(g, cfg.epsilon, cfg.vertex_slack, frac);

    let mut wpart = [0u64; 2];
    for (u, &p) in part.iter().enumerate() {
        wpart[p as usize] += g.vwgt()[u];
    }

    let mut gain: Vec<i64> = vec![0; n];
    // External (cut-edge) weight per vertex, maintained alongside the
    // gain. Only vertices with `ext > 0` are heap-eligible: moving an
    // interior vertex is pure hill-climbing and re-scans the whole graph
    // one cascade at a time, which is exactly the O(n + m) behaviour this
    // refiner exists to avoid. (The balance-repair fallback below is the
    // one deliberate exception.)
    let mut ext: Vec<u64> = vec![0; n];
    // With a seeded frontier, vertices outside the seed have never had
    // their gain computed; the first touch must be a full recompute, not a
    // delta on the uninitialized value. Once known, a gain is kept fresh
    // by the frontier invariant (any neighbor flip re-frontiers the
    // vertex).
    let mut gain_known: Vec<bool> = vec![false; n];
    let mut version: Vec<u32> = vec![0; n];
    let mut locked: Vec<bool> = vec![false; n];
    // stamp[u] == epoch marks membership in the frontier being built for
    // the *next* pass (and dedups the initial seed at epoch 1).
    let mut stamp: Vec<u32> = vec![0; n];
    let mut epoch: u32 = 0;

    let mut frontier: Vec<u32> = match seed_frontier {
        Some(seed) => {
            debug_assert!(
                seed_covers_boundary(g, part, seed),
                "seed frontier misses a boundary vertex"
            );
            epoch += 1;
            let mut f = Vec::with_capacity(seed.len());
            for &u in seed {
                let ui = u as usize;
                assert!(ui < n, "seed frontier vertex {u} out of range");
                if stamp[ui] != epoch {
                    stamp[ui] = epoch;
                    f.push(u);
                }
            }
            f
        }
        None => (0..n as u32).collect(),
    };

    // Initial cut from the frontier instead of a full O(m) edge scan:
    // both endpoints of every cut edge are boundary vertices and the
    // frontier covers the boundary (asserted above for seeds), so summing
    // external weight over the frontier counts each cut edge exactly
    // twice. With a thin seeded frontier this is the difference between
    // O(m) and O(boundary · deg) per uncoarsening level.
    let mut ext_total: u64 = 0;
    for &u in &frontier {
        for (v, w) in g.edges(u) {
            if part[u as usize] != part[v as usize] {
                ext_total += w;
            }
        }
    }
    debug_assert_eq!(ext_total % 2, 0, "frontier missed a cut edge endpoint");
    let mut cut = (ext_total / 2) as i64;
    debug_assert_eq!(cut, edge_cut(g, part) as i64);

    for pass in 0..cfg.max_passes {
        let span = trace.span(|| format!("fm/pass{pass}"));
        epoch += 1;
        let mut next: Vec<u32> = Vec::new();
        let mut heap: BinaryHeap<(i64, u32, u32)> = BinaryHeap::new();
        // Recompute gains over the frontier; heap-seed only boundary
        // vertices. An interior frontier member keeps its (fresh) gain but
        // can only move after a neighbor's committed move pushes it.
        let mut boundary_size = 0usize;
        for &fu in &frontier {
            let u = fu as usize;
            let mut gsum = 0i64;
            let mut extw = 0u64;
            for (v, w) in g.edges(u as VId) {
                if part[u] == part[v as usize] {
                    gsum -= w as i64;
                } else {
                    gsum += w as i64;
                    extw += w;
                }
            }
            gain[u] = gsum;
            ext[u] = extw;
            gain_known[u] = true;
            locked[u] = false;
            if extw > 0 {
                heap.push((gsum, u as u32, version[u]));
                boundary_size += 1;
                if stamp[u] != epoch {
                    stamp[u] = epoch;
                    next.push(u as u32);
                }
            }
        }
        trace.gauge_usize(|| "fm/boundary_size".to_string(), boundary_size);
        if bal.excess(&wpart) > 0 {
            // Balance-repair fallback: seed every vertex of any over-limit
            // side (the boundary alone may be unable to shed weight — it
            // can even be empty when one side holds the whole graph).
            for u in 0..n {
                let s = part[u] as usize;
                if wpart[s] > bal.strict[s] && stamp[u] != epoch {
                    stamp[u] = epoch;
                    next.push(u as u32);
                    let mut gsum = 0i64;
                    let mut extw = 0u64;
                    for (v, w) in g.edges(u as VId) {
                        if part[u] == part[v as usize] {
                            gsum -= w as i64;
                        } else {
                            gsum += w as i64;
                            extw += w;
                        }
                    }
                    gain[u] = gsum;
                    ext[u] = extw;
                    gain_known[u] = true;
                    locked[u] = false;
                    // Pushed even when interior (ext == 0): shedding
                    // weight off an over-limit side may require moving
                    // vertices with no cut edge at all.
                    heap.push((gsum, u as u32, version[u]));
                }
            }
        }

        // Prefix quality key: (how far either side exceeds its strict
        // limit, cut). The empty prefix is the baseline, so an unbalanced
        // start can also be repaired.
        let mut best_key = (bal.excess(&wpart), cut);
        let mut best_len = 0usize;
        let mut moves: Vec<u32> = Vec::new();
        // Early pass termination: committed moves re-frontier their
        // neighbors, so a pass could otherwise sweep the cut line across
        // the whole graph (and roll it all back) — O(n) churn that defeats
        // the boundary restriction. Abort the move loop once a run of
        // moves proportional to the boundary finds no better prefix;
        // productive sequences reset the counter and keep going.
        let abort_limit = (2 * boundary_size).max(64);
        let mut since_best = 0usize;

        while let Some((gval, u, ver)) = heap.pop() {
            let u = u as usize;
            if locked[u] || ver != version[u] || gval != gain[u] {
                continue; // stale entry
            }
            let from = part[u] as usize;
            let to = 1 - from;
            if wpart[to] + g.vwgt()[u] > bal.loose[to] {
                continue; // balance-infeasible right now
            }
            // Commit the move.
            locked[u] = true;
            part[u] = to as u32;
            wpart[from] -= g.vwgt()[u];
            wpart[to] += g.vwgt()[u];
            cut -= gain[u];
            moves.push(u as u32);
            if stamp[u] != epoch {
                stamp[u] = epoch;
                next.push(u as u32);
            }
            let key = (bal.excess(&wpart), cut);
            if key < best_key {
                best_key = key;
                best_len = moves.len();
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= abort_limit {
                    // Safe to break before this move's neighbor updates:
                    // the move is past the best prefix, so the rollback
                    // below restores part[u] and its neighbors' stored
                    // gains were never touched for either flip. u itself
                    // was stamped into `next` at commit and is recomputed
                    // next pass.
                    break;
                }
            }
            // Update neighbor gains. Every neighbor's stored gain goes
            // stale when u flips (even a locked one, whose update is
            // skipped), so all of them join the next pass's frontier for
            // recomputation — this also covers staleness left behind by
            // the end-of-pass rollback.
            for (v, w) in g.edges(u as VId) {
                let v = v as usize;
                if stamp[v] != epoch {
                    stamp[v] = epoch;
                    next.push(v as u32);
                }
                if locked[v] {
                    continue;
                }
                if gain_known[v] {
                    // u flipped from `from` to `to`, so the (u, v) edge
                    // changed cut status for v as well.
                    if part[v] as usize == from {
                        gain[v] += 2 * w as i64;
                        ext[v] += w;
                    } else {
                        gain[v] -= 2 * w as i64;
                        ext[v] -= w;
                    }
                } else {
                    // First touch of a vertex outside the seeded frontier:
                    // full recompute (part[u] has already flipped, so the
                    // fresh gain includes this move — no delta on top).
                    let mut gsum = 0i64;
                    let mut extw = 0u64;
                    for (x, xw) in g.edges(v as VId) {
                        if part[v] == part[x as usize] {
                            gsum -= xw as i64;
                        } else {
                            gsum += xw as i64;
                            extw += xw;
                        }
                    }
                    gain[v] = gsum;
                    ext[v] = extw;
                    gain_known[v] = true;
                }
                version[v] += 1;
                // Only boundary vertices re-enter the heap; a vertex whose
                // last cut edge just disappeared drops out (its remaining
                // heap entries are stale by the gain change).
                if ext[v] > 0 {
                    heap.push((gain[v], v as u32, version[v]));
                }
            }
        }
        // Roll back past the best prefix.
        trace.counter_add("fm/moves_rolled_back", (moves.len() - best_len) as u64);
        for &u in &moves[best_len..] {
            let u = u as usize;
            let from = part[u] as usize;
            let to = 1 - from;
            part[u] = to as u32;
            wpart[from] -= g.vwgt()[u];
            wpart[to] += g.vwgt()[u];
        }
        cut = best_key.1;
        debug_assert_eq!(cut, edge_cut(g, part) as i64, "incremental cut drifted");
        span.finish();
        frontier = next;
        // A pass made progress iff a non-empty best prefix was kept — the
        // (excess, cut) key strictly improved, whether by lowering the cut
        // or by repairing balance. (The former `cut >= start_cut` exit
        // wrongly stopped after a pass that repaired balance at an equal
        // or higher cut, even though the next pass, starting from the
        // now-balanced partition, can improve the cut further.)
        if best_len == 0 {
            break;
        }
    }
    // By the frontier invariant, the last built frontier covers every
    // vertex that can still have a cut edge.
    let boundary: Vec<u32> = frontier
        .iter()
        .copied()
        .filter(|&u| {
            g.edges(u)
                .any(|(v, _)| part[u as usize] != part[v as usize])
        })
        .collect();
    FmRefineOutcome {
        cut: cut as u64,
        boundary,
    }
}

/// Debug-build check that a seed frontier covers the current boundary.
/// Label-agnostic, so the k-way refiner shares it.
pub(crate) fn seed_covers_boundary(g: &Csr, part: &[u32], seed: &[u32]) -> bool {
    let mut in_seed = vec![false; g.n()];
    for &u in seed {
        if let Some(s) = in_seed.get_mut(u as usize) {
            *s = true;
        }
    }
    (0..g.n()).all(|u| {
        in_seed[u]
            || g.neighbors(u as VId)
                .iter()
                .all(|&v| part[v as usize] == part[u])
    })
}

/// The pre-boundary reference implementation: rebuilds every gain and
/// heap-seeds all `n` vertices on every pass, costing `O(n + m)` per pass.
/// Kept as the baseline for the boundary-equivalence property tests and
/// the `bench_partition` full-scan/boundary comparison; production callers
/// use [`fm_refine_boundary_traced`].
pub fn fm_refine_frac_full_scan(g: &Csr, part: &mut [u32], cfg: &FmConfig, frac: f64) -> u64 {
    let n = g.n();
    assert_eq!(part.len(), n);
    assert!((0.0..=1.0).contains(&frac), "frac must be in [0, 1]");
    if n == 0 {
        return 0;
    }
    let bal = Balance::new(g, cfg.epsilon, cfg.vertex_slack, frac);

    let mut cut = edge_cut(g, part) as i64;
    let mut wpart = [0u64; 2];
    for (u, &p) in part.iter().enumerate() {
        wpart[p as usize] += g.vwgt()[u];
    }

    let mut gain: Vec<i64> = vec![0; n];
    let mut version: Vec<u32> = vec![0; n];
    let mut locked: Vec<bool> = vec![false; n];

    for _pass in 0..cfg.max_passes {
        // (Re)compute gains: external minus internal weight.
        for u in 0..n {
            let mut gsum = 0i64;
            for (v, w) in g.edges(u as VId) {
                if part[u] == part[v as usize] {
                    gsum -= w as i64;
                } else {
                    gsum += w as i64;
                }
            }
            gain[u] = gsum;
            version[u] = 0;
            locked[u] = false;
        }
        let mut heap: BinaryHeap<(i64, u32, u32)> =
            (0..n).map(|u| (gain[u], u as u32, 0u32)).collect();

        let mut best_key = (bal.excess(&wpart), cut);
        let mut best_len = 0usize;
        let mut moves: Vec<u32> = Vec::new();

        while let Some((gval, u, ver)) = heap.pop() {
            let u = u as usize;
            if locked[u] || ver != version[u] || gval != gain[u] {
                continue; // stale entry
            }
            let from = part[u] as usize;
            let to = 1 - from;
            if wpart[to] + g.vwgt()[u] > bal.loose[to] {
                continue; // balance-infeasible right now
            }
            locked[u] = true;
            part[u] = to as u32;
            wpart[from] -= g.vwgt()[u];
            wpart[to] += g.vwgt()[u];
            cut -= gain[u];
            moves.push(u as u32);
            let key = (bal.excess(&wpart), cut);
            if key < best_key {
                best_key = key;
                best_len = moves.len();
            }
            for (v, w) in g.edges(u as VId) {
                let v = v as usize;
                if locked[v] {
                    continue;
                }
                if part[v] as usize == from {
                    gain[v] += 2 * w as i64;
                } else {
                    gain[v] -= 2 * w as i64;
                }
                version[v] += 1;
                heap.push((gain[v], v as u32, version[v]));
            }
        }
        for &u in &moves[best_len..] {
            let u = u as usize;
            let from = part[u] as usize;
            let to = 1 - from;
            part[u] = to as u32;
            wpart[from] -= g.vwgt()[u];
            wpart[to] += g.vwgt()[u];
        }
        cut = best_key.1;
        debug_assert_eq!(cut, edge_cut(g, part) as i64, "incremental cut drifted");
        if best_len == 0 {
            break; // no progress: neither cut nor balance improved
        }
    }
    cut as u64
}

/// Full-scan counterpart of [`fm_uncoarsen_frac`]: the identical
/// multilevel driver, but every level refines with
/// [`fm_refine_frac_full_scan`] (gains rebuilt and the heap re-seeded
/// over all `n` vertices each pass). Kept as the measurement baseline
/// for the boundary-driven refiner — `bench_partition` and the
/// equivalence property tests compare against it on the same hierarchy
/// and seed.
pub fn fm_uncoarsen_frac_full_scan(
    h: &Hierarchy,
    cfg: &FmConfig,
    frac: f64,
    seed: u64,
) -> (Vec<u32>, u64) {
    let coarse_cfg = cfg.with_vertex_slack();
    let coarsest = h.coarsest();
    let mut part = crate::ggg::greedy_graph_growing_frac(coarsest, seed, frac);
    let mut cut = fm_refine_frac_full_scan(coarsest, &mut part, &coarse_cfg, frac);
    for level in (0..h.num_levels()).rev() {
        part = h.interpolate_level(level, &part);
        let level_cfg = if level == 0 { cfg } else { &coarse_cfg };
        cut = fm_refine_frac_full_scan(h.graph_above(level), &mut part, level_cfg, frac);
    }
    (part, cut)
}

/// Multilevel bisection with parallel coarsening, greedy-graph-growing
/// initial partitioning, and sequential FM refinement at every level —
/// the paper's Table VI partitioner.
///
/// ```
/// use mlcg_partition::{fm_bisect, FmConfig};
/// use mlcg_coarsen::CoarsenOptions;
/// use mlcg_par::ExecPolicy;
///
/// let g = mlcg_graph::generators::grid2d(16, 8);
/// let r = fm_bisect(&ExecPolicy::host(), &g, &CoarsenOptions::default(),
///                   &FmConfig::default(), 42);
/// assert!(r.cut >= 8);             // optimal balanced cut of a 16x8 grid
/// assert!(r.imbalance <= 1.05);
/// ```
pub fn fm_bisect(
    policy: &ExecPolicy,
    g: &Csr,
    coarsen_opts: &CoarsenOptions,
    cfg: &FmConfig,
    seed: u64,
) -> PartitionResult {
    fm_bisect_frac(policy, g, coarsen_opts, cfg, 0.5, seed)
}

/// [`fm_bisect`] with part 0 targeting `frac` of the vertex weight
/// (recursive k-way partitioning uses 3:2-style splits for odd k).
pub fn fm_bisect_frac(
    policy: &ExecPolicy,
    g: &Csr,
    coarsen_opts: &CoarsenOptions,
    cfg: &FmConfig,
    frac: f64,
    seed: u64,
) -> PartitionResult {
    let trace = coarsen_opts.trace.clone();
    let span = trace.timed_span(|| "partition/fm/coarsen".to_string());
    let h = coarsen(policy, g, coarsen_opts);
    let coarsen_seconds = span.finish();
    let span = trace.timed_span(|| "partition/fm/refine".to_string());
    let part = fm_uncoarsen_frac_traced(policy, &h, cfg, frac, seed, &trace);
    let refine_seconds = span.finish();
    // Allowed imbalance on the finest level: the target share plus the
    // epsilon slack and at most one vertex of rounding, relative to total/2.
    let total = g.total_vwgt().max(1) as f64;
    let max_vwgt = g.vwgt().iter().copied().max().unwrap_or(1) as f64;
    let cap = 2.0 * frac.max(1.0 - frac) * (1.0 + cfg.epsilon) + 2.0 * max_vwgt / total + 1e-9;
    audit_partition(&trace, "partition/fm", g, &part, cap);
    PartitionResult::new(g, part, coarsen_seconds, refine_seconds, h.num_levels())
        .with_trace(trace.report())
}

/// The uncoarsening half: initial partition on the coarsest graph, then
/// project + FM-refine level by level.
pub fn fm_uncoarsen(h: &Hierarchy, cfg: &FmConfig, seed: u64) -> Vec<u32> {
    fm_uncoarsen_frac(h, cfg, 0.5, seed)
}

/// [`fm_uncoarsen`] with a fractional part-0 weight target.
///
/// Pure sequential path (serial policy), kept signature-stable as the
/// measurement baseline for `bench-fm`/`bench-parref`; the multilevel
/// partitioners go through [`fm_uncoarsen_frac_traced`], which engages
/// parallel rounds on coarse levels under a parallel policy.
pub fn fm_uncoarsen_frac(h: &Hierarchy, cfg: &FmConfig, frac: f64, seed: u64) -> Vec<u32> {
    fm_uncoarsen_frac_traced(
        &ExecPolicy::serial(),
        h,
        cfg,
        frac,
        seed,
        &TraceCollector::disabled(),
    )
}

/// [`fm_uncoarsen_frac`] with an execution policy and a trace sink
/// threaded into every per-level refinement.
///
/// Delegates to [`fm_uncoarsen_frac_hybrid`] with a [`ParRefConfig`]
/// derived from `cfg` (same epsilon, default crossover), so coarse levels
/// whose projected frontier crosses the threshold refine with parallel
/// rounds before the sequential boundary pass.
pub fn fm_uncoarsen_frac_traced(
    policy: &ExecPolicy,
    h: &Hierarchy,
    cfg: &FmConfig,
    frac: f64,
    seed: u64,
    trace: &TraceCollector,
) -> Vec<u32> {
    let parref = ParRefConfig {
        epsilon: cfg.epsilon,
        ..ParRefConfig::default()
    };
    fm_uncoarsen_frac_hybrid(policy, h, cfg, &parref, frac, seed, trace)
}

/// The hybrid uncoarsening driver: initial partition on the coarsest
/// graph, then project + refine level by level, choosing the refiner per
/// level with a crossover heuristic.
///
/// The coarsest level refines from a full scan; every finer level seeds
/// its frontier by projecting the coarser level's final boundary (a fine
/// vertex can be on the boundary only if its aggregate is), so per-level
/// refinement cost tracks the boundary, not the graph.
///
/// Crossover: when the policy is parallel and the projected frontier is at
/// least [`ParRefConfig::crossover_threshold`] (default `HOST_GRAIN` ×
/// workers — a smaller frontier can't amortize waking the pool, per the
/// dispatch-latency findings in DESIGN §8), the level first runs
/// frontier-based parallel rounds ([`parallel_refine_rounds`]) to strip
/// the bulk positive-gain moves in fused dispatches, then the sequential
/// boundary pass polishes from the rounds' final frontier. Below the
/// threshold — always on the finest levels, where the boundary is thin —
/// the level runs the sequential boundary pass alone, keeping the PR 2
/// fast path. One [`ParRefWorkspace`] serves every level.
pub fn fm_uncoarsen_frac_hybrid(
    policy: &ExecPolicy,
    h: &Hierarchy,
    cfg: &FmConfig,
    parref: &ParRefConfig,
    frac: f64,
    seed: u64,
    trace: &TraceCollector,
) -> Vec<u32> {
    let _mem = trace.heap_scope(|| "fm".to_string());
    let coarse_cfg = cfg.with_vertex_slack();
    let coarsest = h.coarsest();
    let mut part = crate::ggg::greedy_graph_growing_frac(coarsest, seed, frac);
    let mut outcome =
        fm_refine_boundary_traced(coarsest, &mut part, &coarse_cfg, frac, None, trace);
    let threshold = parref.crossover_threshold(policy);
    let parallel_ok = policy.backend != Backend::Serial;
    let mut ws = ParRefWorkspace::new();
    for level in (0..h.num_levels()).rev() {
        part = h.interpolate_level(level, &part);
        let frontier = h.project_frontier_ids(level, &outcome.boundary);
        let g = h.graph_above(level);
        // Tighten to the caller's balance on the finest level only.
        let level_cfg = if level == 0 { cfg } else { &coarse_cfg };
        let seed_vec = if parallel_ok && frontier.len() >= threshold {
            let level_parref = ParRefConfig {
                epsilon: level_cfg.epsilon,
                handoff_frontier: threshold,
                ..parref.clone()
            };
            parallel_refine_rounds(
                policy,
                g,
                &mut part,
                &level_parref,
                frac,
                level_cfg.vertex_slack,
                Some(&frontier),
                &mut ws,
                trace,
            )
            .frontier
        } else {
            frontier
        };
        outcome = fm_refine_boundary_traced(g, &mut part, level_cfg, frac, Some(&seed_vec), trace);
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcg_graph::generators as gen;
    use mlcg_graph::metrics::{imbalance, part_weights};
    use mlcg_par::rng::Xoshiro256pp;

    #[test]
    fn fm_never_worsens_and_greatly_improves_alternating_path() {
        let g = gen::path(20);
        // Worst-case alternating partition (cut 19). Flat FM is a local
        // heuristic, so it need not reach the optimum of 1 from an
        // adversarial start — but it must improve drastically and stay
        // balanced.
        let mut part: Vec<u32> = (0..20).map(|i| i % 2).collect();
        let before = edge_cut(&g, &part);
        let after = fm_refine(&g, &mut part, &FmConfig::default());
        assert!(after <= before);
        assert_eq!(after, edge_cut(&g, &part));
        assert!(after <= 5, "cut {after} after refinement of {before}");
        let (w0, w1) = part_weights(&g, &part);
        assert_eq!(w0, w1);
    }

    #[test]
    fn multilevel_fm_finds_the_optimal_path_cut() {
        // The multilevel driver escapes flat FM's local optima: a balanced
        // path bisection cuts exactly one edge.
        let g = gen::path(64);
        let r = fm_bisect(
            &ExecPolicy::serial(),
            &g,
            &CoarsenOptions::default(),
            &FmConfig::default(),
            11,
        );
        assert_eq!(r.cut, 1);
        let (w0, w1) = part_weights(&g, &r.part);
        assert_eq!(w0, w1);
    }

    #[test]
    fn balance_repair_pass_does_not_terminate_refinement() {
        // Regression for the pass-termination bug: the old loop broke
        // whenever a pass failed to strictly reduce the cut, even when the
        // pass had just repaired balance — freezing the cut at its
        // pre-repair value. From the unbalanced start [0,1,1,1,1,0] on a
        // 6-path, pass 1 repairs 2:4 to 3:3 at the unchanged cut of 2;
        // only a second pass can slide the boundary to the optimal cut 1.
        let g = gen::path(6);
        let start = vec![0, 1, 1, 1, 1, 0];
        let cfg = FmConfig {
            max_passes: 8,
            epsilon: 0.0,
            vertex_slack: false,
        };

        let mut part1 = start.clone();
        let cut_one_pass = fm_refine(
            &g,
            &mut part1,
            &FmConfig {
                max_passes: 1,
                ..cfg.clone()
            },
        );

        let mut part = start;
        let cut = fm_refine(&g, &mut part, &cfg);
        let (w0, w1) = part_weights(&g, &part);
        assert_eq!((w0, w1), (3, 3), "balance repaired");
        assert!(
            cut_one_pass > cut,
            "instance must need a second pass: pass-1 cut {cut_one_pass}, final {cut}"
        );
        assert_eq!(cut, 1, "second pass reaches the optimal path cut");
    }

    #[test]
    fn fm_respects_balance_limit() {
        let g = gen::complete(10);
        // FM would love to move everything to one side (cut -> 0); the
        // balance limit must prevent it.
        let mut part: Vec<u32> = (0..10).map(|i| u32::from(i >= 5)).collect();
        fm_refine(
            &g,
            &mut part,
            &FmConfig {
                max_passes: 4,
                epsilon: 0.0,
                vertex_slack: false,
            },
        );
        let (w0, w1) = part_weights(&g, &part);
        assert_eq!(
            w0.max(w1),
            5,
            "epsilon 0 forbids any imbalance on even totals"
        );
    }

    #[test]
    fn fm_improves_random_partitions_on_grid() {
        let g = gen::grid2d(16, 8);
        let mut rng = Xoshiro256pp::new(3);
        let mut part: Vec<u32> = (0..g.n()).map(|_| rng.next_below(2) as u32).collect();
        // Make it balanced first (random may be off by a few).
        let ones: i64 = part.iter().map(|&p| p as i64).sum::<i64>()
            - (g.n() as i64 - part.iter().map(|&p| p as i64).sum::<i64>());
        let mut excess = ones / 2;
        for p in part.iter_mut() {
            if excess > 0 && *p == 1 {
                *p = 0;
                excess -= 1;
            } else if excess < 0 && *p == 0 {
                *p = 1;
                excess += 1;
            }
        }
        let before = edge_cut(&g, &part);
        let after = fm_refine(&g, &mut part, &FmConfig::default());
        assert!(
            after < before / 2,
            "FM should drastically improve random cuts: {before} -> {after}"
        );
    }

    #[test]
    fn fm_bisect_grid_quality() {
        // A 16x8 grid's optimal balanced bisection cuts 8 edges.
        let g = gen::grid2d(16, 8);
        let r = fm_bisect(
            &ExecPolicy::serial(),
            &g,
            &CoarsenOptions::default(),
            &FmConfig::default(),
            7,
        );
        assert!(r.cut <= 16, "grid cut {} far from optimal 8", r.cut);
        assert!(r.imbalance <= 1.05, "imbalance {}", r.imbalance);
        assert_eq!(r.cut, edge_cut(&g, &r.part));
    }

    #[test]
    fn fm_bisect_separates_barbell() {
        // Two cliques joined by one edge: the optimal cut is 1.
        let mut edges = Vec::new();
        for i in 0..10u32 {
            for j in (i + 1)..10 {
                edges.push((i, j));
                edges.push((i + 10, j + 10));
            }
        }
        edges.push((0, 10));
        let g = mlcg_graph::builder::from_edges_unit(20, &edges);
        let r = fm_bisect(
            &ExecPolicy::serial(),
            &g,
            &CoarsenOptions::default(),
            &FmConfig::default(),
            3,
        );
        assert_eq!(r.cut, 1, "FM must find the barbell bridge");
        assert!((imbalance(&g, &r.part) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fm_handles_weighted_coarse_vertices() {
        let mut g = gen::path(6);
        g.set_vwgt(vec![5, 1, 1, 1, 1, 5]);
        let mut part = vec![0, 0, 0, 1, 1, 1];
        let cut = fm_refine(
            &g,
            &mut part,
            &FmConfig {
                max_passes: 4,
                epsilon: 0.1,
                vertex_slack: false,
            },
        );
        assert_eq!(cut, edge_cut(&g, &part));
        let (w0, w1) = part_weights(&g, &part);
        assert!(w0.max(w1) <= 8, "weights {w0}/{w1} exceed the 10% slack");
    }
}

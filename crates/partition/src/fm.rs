//! Sequential Fiduccia–Mattheyses refinement and the FM-based multilevel
//! bisection driver.
//!
//! The paper's FM implementation is sequential ("we are unaware of FM
//! parallelizations for massively multithreaded architectures"); only the
//! coarsening phase is parallel. Each pass greedily moves the
//! best-gain balance-feasible vertex, locking moved vertices, and rolls
//! back to the best prefix — the classic linear-time heuristic, here with
//! a lazy max-heap over weighted gains.

use crate::result::{audit_partition, PartitionResult};
use mlcg_coarsen::{coarsen, CoarsenOptions, Hierarchy};
use mlcg_graph::metrics::edge_cut;
use mlcg_graph::{Csr, VId};
use mlcg_par::{ExecPolicy, TraceCollector};
use std::collections::BinaryHeap;

/// FM tuning parameters.
#[derive(Clone, Debug)]
pub struct FmConfig {
    /// Maximum refinement passes per level.
    pub max_passes: usize,
    /// Allowed imbalance: a move is feasible while the heavier side stays
    /// at or below `(1 + epsilon) · total/2` (always at least `⌈total/2⌉`,
    /// so unit-weight graphs can reach exact balance).
    pub epsilon: f64,
    /// Additionally allow the heavier side one maximum-vertex-weight of
    /// slack. Exact balance is often unreachable on coarse graphs with
    /// heavy aggregates, and forcing it can destroy the cut; the
    /// multilevel driver enables this on every level except the finest
    /// (Metis-style progressive tightening).
    pub vertex_slack: bool,
}

impl Default for FmConfig {
    fn default() -> Self {
        FmConfig {
            max_passes: 8,
            epsilon: 0.02,
            vertex_slack: false,
        }
    }
}

impl FmConfig {
    /// This configuration with [`FmConfig::vertex_slack`] enabled.
    pub fn with_vertex_slack(&self) -> Self {
        FmConfig {
            vertex_slack: true,
            ..self.clone()
        }
    }
}

/// One FM refinement on a bisection; mutates `part`, returns the final cut.
pub fn fm_refine(g: &Csr, part: &mut [u32], cfg: &FmConfig) -> u64 {
    fm_refine_frac(g, part, cfg, 0.5)
}

/// FM refinement targeting part 0 holding `frac` of the total vertex
/// weight (used by recursive k-way partitioning for odd splits).
pub fn fm_refine_frac(g: &Csr, part: &mut [u32], cfg: &FmConfig, frac: f64) -> u64 {
    fm_refine_frac_traced(g, part, cfg, frac, &TraceCollector::disabled())
}

/// [`fm_refine_frac`] with a trace sink: each pass records an `fm/pass{N}`
/// span, and prefix rollbacks feed the `fm/moves_rolled_back` counter.
/// With a disabled collector this is exactly `fm_refine_frac`.
pub fn fm_refine_frac_traced(
    g: &Csr,
    part: &mut [u32],
    cfg: &FmConfig,
    frac: f64,
    trace: &TraceCollector,
) -> u64 {
    let n = g.n();
    assert_eq!(part.len(), n);
    assert!((0.0..=1.0).contains(&frac), "frac must be in [0, 1]");
    if n == 0 {
        return 0;
    }
    let total: u64 = g.total_vwgt();
    let max_vwgt = g.vwgt().iter().copied().max().unwrap_or(1);
    // Final partitions must satisfy the strict per-side limits; during a
    // pass, moves may wander one vertex beyond them (otherwise a perfectly
    // balanced start could never move anything), and the best-prefix
    // selection restores strict balance.
    let t0 = ((total as f64 * frac).round() as u64).min(total);
    let target = [t0, total - t0];
    // Per-side cap: epsilon slack around the side's target, but never
    // below the rounded-up share (so exact balance stays reachable on
    // integer weights), plus one max-vertex of slack on coarse levels.
    let strict_side = |t: u64, share: f64| {
        let mut lim = (((t as f64) * (1.0 + cfg.epsilon)).floor() as u64)
            .max((total as f64 * share).ceil() as u64);
        if cfg.vertex_slack {
            lim += max_vwgt;
        }
        lim
    };
    let strict = [
        strict_side(target[0], frac),
        strict_side(target[1], 1.0 - frac),
    ];
    let loose = [strict[0] + max_vwgt, strict[1] + max_vwgt];

    let mut cut = edge_cut(g, part) as i64;
    let mut wpart = [0u64; 2];
    for (u, &p) in part.iter().enumerate() {
        wpart[p as usize] += g.vwgt()[u];
    }

    let mut gain: Vec<i64> = vec![0; n];
    let mut version: Vec<u32> = vec![0; n];
    let mut locked: Vec<bool> = vec![false; n];

    for pass in 0..cfg.max_passes {
        let span = trace.span(|| format!("fm/pass{pass}"));
        // (Re)compute gains: external minus internal weight.
        for u in 0..n {
            let mut gsum = 0i64;
            for (v, w) in g.edges(u as VId) {
                if part[u] == part[v as usize] {
                    gsum -= w as i64;
                } else {
                    gsum += w as i64;
                }
            }
            gain[u] = gsum;
            version[u] = 0;
            locked[u] = false;
        }
        let mut heap: BinaryHeap<(i64, u32, u32)> =
            (0..n).map(|u| (gain[u], u as u32, 0u32)).collect();

        let start_cut = cut;
        // Prefix quality key: (how far either side exceeds its strict
        // limit, cut). The empty prefix is the baseline, so an unbalanced
        // start can also be repaired.
        let excess =
            |wp: &[u64; 2]| wp[0].saturating_sub(strict[0]) + wp[1].saturating_sub(strict[1]);
        let mut best_key = (excess(&wpart), cut);
        let mut best_len = 0usize;
        let mut moves: Vec<u32> = Vec::new();

        while let Some((gval, u, ver)) = heap.pop() {
            let u = u as usize;
            if locked[u] || ver != version[u] || gval != gain[u] {
                continue; // stale entry
            }
            let from = part[u] as usize;
            let to = 1 - from;
            if wpart[to] + g.vwgt()[u] > loose[to] {
                continue; // balance-infeasible right now
            }
            // Commit the move.
            locked[u] = true;
            part[u] = to as u32;
            wpart[from] -= g.vwgt()[u];
            wpart[to] += g.vwgt()[u];
            cut -= gain[u];
            moves.push(u as u32);
            let key = (excess(&wpart), cut);
            if key < best_key {
                best_key = key;
                best_len = moves.len();
            }
            // Update neighbor gains.
            for (v, w) in g.edges(u as VId) {
                let v = v as usize;
                if locked[v] {
                    continue;
                }
                if part[v] as usize == from {
                    gain[v] += 2 * w as i64;
                } else {
                    gain[v] -= 2 * w as i64;
                }
                version[v] += 1;
                heap.push((gain[v], v as u32, version[v]));
            }
        }
        // Roll back past the best prefix.
        trace.counter_add("fm/moves_rolled_back", (moves.len() - best_len) as u64);
        for &u in &moves[best_len..] {
            let u = u as usize;
            let from = part[u] as usize;
            let to = 1 - from;
            part[u] = to as u32;
            wpart[from] -= g.vwgt()[u];
            wpart[to] += g.vwgt()[u];
        }
        cut = best_key.1;
        debug_assert_eq!(cut, edge_cut(g, part) as i64, "incremental cut drifted");
        span.finish();
        if cut >= start_cut && best_len == 0 {
            break; // no improvement this pass
        }
        if cut >= start_cut {
            break; // balance repaired or equal cut; further passes won't help
        }
    }
    cut as u64
}

/// Multilevel bisection with parallel coarsening, greedy-graph-growing
/// initial partitioning, and sequential FM refinement at every level —
/// the paper's Table VI partitioner.
///
/// ```
/// use mlcg_partition::{fm_bisect, FmConfig};
/// use mlcg_coarsen::CoarsenOptions;
/// use mlcg_par::ExecPolicy;
///
/// let g = mlcg_graph::generators::grid2d(16, 8);
/// let r = fm_bisect(&ExecPolicy::host(), &g, &CoarsenOptions::default(),
///                   &FmConfig::default(), 42);
/// assert!(r.cut >= 8);             // optimal balanced cut of a 16x8 grid
/// assert!(r.imbalance <= 1.05);
/// ```
pub fn fm_bisect(
    policy: &ExecPolicy,
    g: &Csr,
    coarsen_opts: &CoarsenOptions,
    cfg: &FmConfig,
    seed: u64,
) -> PartitionResult {
    fm_bisect_frac(policy, g, coarsen_opts, cfg, 0.5, seed)
}

/// [`fm_bisect`] with part 0 targeting `frac` of the vertex weight
/// (recursive k-way partitioning uses 3:2-style splits for odd k).
pub fn fm_bisect_frac(
    policy: &ExecPolicy,
    g: &Csr,
    coarsen_opts: &CoarsenOptions,
    cfg: &FmConfig,
    frac: f64,
    seed: u64,
) -> PartitionResult {
    let trace = coarsen_opts.trace.clone();
    let span = trace.timed_span(|| "partition/fm/coarsen".to_string());
    let h = coarsen(policy, g, coarsen_opts);
    let coarsen_seconds = span.finish();
    let span = trace.timed_span(|| "partition/fm/refine".to_string());
    let part = fm_uncoarsen_frac_traced(&h, cfg, frac, seed, &trace);
    let refine_seconds = span.finish();
    // Allowed imbalance on the finest level: the target share plus the
    // epsilon slack and at most one vertex of rounding, relative to total/2.
    let total = g.total_vwgt().max(1) as f64;
    let max_vwgt = g.vwgt().iter().copied().max().unwrap_or(1) as f64;
    let cap = 2.0 * frac.max(1.0 - frac) * (1.0 + cfg.epsilon) + 2.0 * max_vwgt / total + 1e-9;
    audit_partition(&trace, "partition/fm", g, &part, cap);
    PartitionResult::new(g, part, coarsen_seconds, refine_seconds, h.num_levels())
        .with_trace(trace.report())
}

/// The uncoarsening half: initial partition on the coarsest graph, then
/// project + FM-refine level by level.
pub fn fm_uncoarsen(h: &Hierarchy, cfg: &FmConfig, seed: u64) -> Vec<u32> {
    fm_uncoarsen_frac(h, cfg, 0.5, seed)
}

/// [`fm_uncoarsen`] with a fractional part-0 weight target.
pub fn fm_uncoarsen_frac(h: &Hierarchy, cfg: &FmConfig, frac: f64, seed: u64) -> Vec<u32> {
    fm_uncoarsen_frac_traced(h, cfg, frac, seed, &TraceCollector::disabled())
}

/// [`fm_uncoarsen_frac`] with a trace sink threaded into every per-level
/// FM refinement (see [`fm_refine_frac_traced`]).
pub fn fm_uncoarsen_frac_traced(
    h: &Hierarchy,
    cfg: &FmConfig,
    frac: f64,
    seed: u64,
    trace: &TraceCollector,
) -> Vec<u32> {
    let coarse_cfg = cfg.with_vertex_slack();
    let coarsest = h.coarsest();
    let mut part = crate::ggg::greedy_graph_growing_frac(coarsest, seed, frac);
    fm_refine_frac_traced(coarsest, &mut part, &coarse_cfg, frac, trace);
    for level in (0..h.num_levels()).rev() {
        part = h.interpolate_level(level, &part);
        // Tighten to the caller's balance on the finest level only.
        let level_cfg = if level == 0 { cfg } else { &coarse_cfg };
        fm_refine_frac_traced(h.graph_above(level), &mut part, level_cfg, frac, trace);
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcg_graph::generators as gen;
    use mlcg_graph::metrics::{imbalance, part_weights};
    use mlcg_par::rng::Xoshiro256pp;

    #[test]
    fn fm_never_worsens_and_greatly_improves_alternating_path() {
        let g = gen::path(20);
        // Worst-case alternating partition (cut 19). Flat FM is a local
        // heuristic, so it need not reach the optimum of 1 from an
        // adversarial start — but it must improve drastically and stay
        // balanced.
        let mut part: Vec<u32> = (0..20).map(|i| i % 2).collect();
        let before = edge_cut(&g, &part);
        let after = fm_refine(&g, &mut part, &FmConfig::default());
        assert!(after <= before);
        assert_eq!(after, edge_cut(&g, &part));
        assert!(after <= 5, "cut {after} after refinement of {before}");
        let (w0, w1) = part_weights(&g, &part);
        assert_eq!(w0, w1);
    }

    #[test]
    fn multilevel_fm_finds_the_optimal_path_cut() {
        // The multilevel driver escapes flat FM's local optima: a balanced
        // path bisection cuts exactly one edge.
        let g = gen::path(64);
        let r = fm_bisect(
            &ExecPolicy::serial(),
            &g,
            &CoarsenOptions::default(),
            &FmConfig::default(),
            11,
        );
        assert_eq!(r.cut, 1);
        let (w0, w1) = part_weights(&g, &r.part);
        assert_eq!(w0, w1);
    }

    #[test]
    fn fm_respects_balance_limit() {
        let g = gen::complete(10);
        // FM would love to move everything to one side (cut -> 0); the
        // balance limit must prevent it.
        let mut part: Vec<u32> = (0..10).map(|i| u32::from(i >= 5)).collect();
        fm_refine(
            &g,
            &mut part,
            &FmConfig {
                max_passes: 4,
                epsilon: 0.0,
                vertex_slack: false,
            },
        );
        let (w0, w1) = part_weights(&g, &part);
        assert_eq!(
            w0.max(w1),
            5,
            "epsilon 0 forbids any imbalance on even totals"
        );
    }

    #[test]
    fn fm_improves_random_partitions_on_grid() {
        let g = gen::grid2d(16, 8);
        let mut rng = Xoshiro256pp::new(3);
        let mut part: Vec<u32> = (0..g.n()).map(|_| rng.next_below(2) as u32).collect();
        // Make it balanced first (random may be off by a few).
        let ones: i64 = part.iter().map(|&p| p as i64).sum::<i64>()
            - (g.n() as i64 - part.iter().map(|&p| p as i64).sum::<i64>());
        let mut excess = ones / 2;
        for p in part.iter_mut() {
            if excess > 0 && *p == 1 {
                *p = 0;
                excess -= 1;
            } else if excess < 0 && *p == 0 {
                *p = 1;
                excess += 1;
            }
        }
        let before = edge_cut(&g, &part);
        let after = fm_refine(&g, &mut part, &FmConfig::default());
        assert!(
            after < before / 2,
            "FM should drastically improve random cuts: {before} -> {after}"
        );
    }

    #[test]
    fn fm_bisect_grid_quality() {
        // A 16x8 grid's optimal balanced bisection cuts 8 edges.
        let g = gen::grid2d(16, 8);
        let r = fm_bisect(
            &ExecPolicy::serial(),
            &g,
            &CoarsenOptions::default(),
            &FmConfig::default(),
            7,
        );
        assert!(r.cut <= 16, "grid cut {} far from optimal 8", r.cut);
        assert!(r.imbalance <= 1.05, "imbalance {}", r.imbalance);
        assert_eq!(r.cut, edge_cut(&g, &r.part));
    }

    #[test]
    fn fm_bisect_separates_barbell() {
        // Two cliques joined by one edge: the optimal cut is 1.
        let mut edges = Vec::new();
        for i in 0..10u32 {
            for j in (i + 1)..10 {
                edges.push((i, j));
                edges.push((i + 10, j + 10));
            }
        }
        edges.push((0, 10));
        let g = mlcg_graph::builder::from_edges_unit(20, &edges);
        let r = fm_bisect(
            &ExecPolicy::serial(),
            &g,
            &CoarsenOptions::default(),
            &FmConfig::default(),
            3,
        );
        assert_eq!(r.cut, 1, "FM must find the barbell bridge");
        assert!((imbalance(&g, &r.part) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fm_handles_weighted_coarse_vertices() {
        let mut g = gen::path(6);
        g.set_vwgt(vec![5, 1, 1, 1, 1, 5]);
        let mut part = vec![0, 0, 0, 1, 1, 1];
        let cut = fm_refine(
            &g,
            &mut part,
            &FmConfig {
                max_passes: 4,
                epsilon: 0.1,
                vertex_slack: false,
            },
        );
        assert_eq!(cut, edge_cut(&g, &part));
        let (w0, w1) = part_weights(&g, &part);
        assert!(w0.max(w1) <= 8, "weights {w0}/{w1} exceed the 10% slack");
    }
}

//! Parallel boundary refinement — the paper's "fully parallel
//! partitioning with FM-based refinement" future-work direction.
//!
//! Classic coarse-grained parallel refinement (in the spirit of
//! mt-Metis): rounds alternate move direction, so every move in a round
//! goes from the same source side. Boundary vertices whose FM gain is
//! positive (computed against the round-start snapshot) move, subject to
//! an atomically claimed weight budget that caps how far the target side
//! may grow. Because simultaneous moves are unidirectional they cannot
//! oscillate; a round whose *actual* cut delta turns out negative is
//! rolled back wholesale. A final sequential FM polish (optional) removes
//! the last few percent, mirroring how production partitioners combine
//! the two.

use crate::fm::{fm_refine, FmConfig};
use crate::ggg::greedy_graph_growing;
use crate::result::PartitionResult;
use mlcg_coarsen::{coarsen, CoarsenOptions, Hierarchy};
use mlcg_graph::metrics::edge_cut;
use mlcg_graph::{Csr, VId};
use mlcg_par::{parallel_for, ExecPolicy, Timer};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Parallel refinement tuning.
#[derive(Clone, Debug)]
pub struct ParRefConfig {
    /// Maximum alternating-direction rounds per level.
    pub max_rounds: usize,
    /// Allowed imbalance of the heavier side vs `total/2`.
    pub epsilon: f64,
    /// Run one sequential FM pass per level after the parallel rounds.
    pub sequential_polish: bool,
}

impl Default for ParRefConfig {
    fn default() -> Self {
        ParRefConfig {
            max_rounds: 12,
            epsilon: 0.02,
            sequential_polish: true,
        }
    }
}

/// One parallel refinement at a fixed level; returns the final cut.
pub fn parallel_refine(policy: &ExecPolicy, g: &Csr, part: &mut [u32], cfg: &ParRefConfig) -> u64 {
    let n = g.n();
    assert_eq!(part.len(), n);
    if n == 0 {
        return 0;
    }
    let total: u64 = g.total_vwgt();
    let max_vwgt = g.vwgt().iter().copied().max().unwrap_or(1);
    let limit =
        ((((total as f64) / 2.0) * (1.0 + cfg.epsilon)).floor() as u64).max(total.div_ceil(2));

    let mut cut = edge_cut(g, part);
    let mut wpart = [0u64; 2];
    for (u, &p) in part.iter().enumerate() {
        wpart[p as usize] += g.vwgt()[u];
    }

    for round in 0..cfg.max_rounds {
        let from = (round % 2) as u32;
        let to = 1 - from;
        // Budget: how much weight the target side may still absorb. One
        // extra max-vertex of slack lets perfectly balanced partitions
        // trade (the opposite round direction restores them).
        let budget = AtomicU64::new((limit + max_vwgt).saturating_sub(wpart[to as usize]));
        let snapshot: Vec<u32> = part.to_vec();
        let moved_flags: Vec<std::sync::atomic::AtomicBool> = (0..n)
            .map(|_| std::sync::atomic::AtomicBool::new(false))
            .collect();
        let gain_sum = AtomicI64::new(0);
        {
            let snap = &snapshot;
            let flags = &moved_flags;
            let budget_ref = &budget;
            let gain_ref = &gain_sum;
            parallel_for(policy, n, |u| {
                if snap[u] != from {
                    return;
                }
                // FM gain against the snapshot.
                let mut gain = 0i64;
                let mut boundary = false;
                for (v, w) in g.edges(u as VId) {
                    if snap[v as usize] == from {
                        gain -= w as i64;
                    } else {
                        gain += w as i64;
                        boundary = true;
                    }
                }
                if !boundary || gain <= 0 {
                    return;
                }
                // Claim weight from the budget.
                let vw = g.vwgt()[u];
                let mut cur = budget_ref.load(Ordering::Relaxed);
                loop {
                    if cur < vw {
                        return;
                    }
                    match budget_ref.compare_exchange_weak(
                        cur,
                        cur - vw,
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(now) => cur = now,
                    }
                }
                flags[u].store(true, Ordering::Release);
                gain_ref.fetch_add(gain, Ordering::Relaxed);
            });
        }
        // Apply the round.
        let mut moved_weight = 0u64;
        let mut any = false;
        for u in 0..n {
            if moved_flags[u].load(Ordering::Acquire) {
                part[u] = to;
                moved_weight += g.vwgt()[u];
                any = true;
            }
        }
        if !any {
            if round % 2 == 1 {
                break; // neither direction has positive-gain moves left
            }
            continue;
        }
        wpart[from as usize] -= moved_weight;
        wpart[to as usize] += moved_weight;
        // Simultaneous same-direction moves can interfere (two adjacent
        // movers each counted the other as an external neighbor); verify
        // and roll back a bad round.
        let new_cut = edge_cut(g, part);
        if new_cut > cut || wpart[to as usize] > limit + max_vwgt {
            for u in 0..n {
                if moved_flags[u].load(Ordering::Relaxed) {
                    part[u] = from;
                }
            }
            wpart[from as usize] += moved_weight;
            wpart[to as usize] -= moved_weight;
        } else {
            cut = new_cut;
        }
    }
    if cfg.sequential_polish {
        let fm = FmConfig {
            max_passes: 2,
            epsilon: cfg.epsilon,
            vertex_slack: false,
        };
        cut = fm_refine(g, part, &fm);
    }
    cut
}

/// Multilevel bisection where *both* coarsening and refinement run under
/// the parallel policy (sequential work only in the optional polish).
pub fn parfm_bisect(
    policy: &ExecPolicy,
    g: &Csr,
    coarsen_opts: &CoarsenOptions,
    cfg: &ParRefConfig,
    seed: u64,
) -> PartitionResult {
    let t = Timer::start();
    let h = coarsen(policy, g, coarsen_opts);
    let coarsen_seconds = t.seconds();
    let t = Timer::start();
    let part = parref_uncoarsen(policy, &h, cfg, seed);
    let refine_seconds = t.seconds();
    PartitionResult::new(g, part, coarsen_seconds, refine_seconds, h.num_levels())
}

fn parref_uncoarsen(policy: &ExecPolicy, h: &Hierarchy, cfg: &ParRefConfig, seed: u64) -> Vec<u32> {
    let coarsest = h.coarsest();
    let mut part = greedy_graph_growing(coarsest, seed);
    let coarse_cfg = ParRefConfig {
        epsilon: cfg.epsilon.max(0.1),
        ..cfg.clone()
    };
    parallel_refine(policy, coarsest, &mut part, &coarse_cfg);
    for level in (0..h.num_levels()).rev() {
        part = h.interpolate_level(level, &part);
        let level_cfg = if level == 0 { cfg } else { &coarse_cfg };
        parallel_refine(policy, h.graph_above(level), &mut part, level_cfg);
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcg_graph::generators as gen;
    use mlcg_graph::metrics::part_weights;
    use mlcg_par::rng::Xoshiro256pp;

    #[test]
    fn never_worsens_the_cut() {
        let g = gen::grid2d(20, 20);
        let mut rng = Xoshiro256pp::new(5);
        for policy in ExecPolicy::all_test_policies() {
            let mut part: Vec<u32> = (0..g.n()).map(|_| rng.next_below(2) as u32).collect();
            // Balance roughly first.
            let ones = part.iter().filter(|&&p| p == 1).count();
            let mut fix = ones as i64 - (g.n() / 2) as i64;
            for p in part.iter_mut() {
                if fix > 0 && *p == 1 {
                    *p = 0;
                    fix -= 1;
                } else if fix < 0 && *p == 0 {
                    *p = 1;
                    fix += 1;
                }
            }
            let before = edge_cut(&g, &part);
            let cfg = ParRefConfig {
                sequential_polish: false,
                ..Default::default()
            };
            let after = parallel_refine(&policy, &g, &mut part, &cfg);
            assert!(after <= before, "{policy}: {before} -> {after}");
            assert_eq!(after, edge_cut(&g, &part));
        }
    }

    #[test]
    fn respects_balance_envelope() {
        let g = gen::complete(16);
        let mut part: Vec<u32> = (0..16).map(|i| u32::from(i >= 8)).collect();
        let cfg = ParRefConfig {
            epsilon: 0.0,
            sequential_polish: true,
            ..Default::default()
        };
        parallel_refine(&ExecPolicy::host(), &g, &mut part, &cfg);
        let (w0, w1) = part_weights(&g, &part);
        assert_eq!(w0.max(w1), 8, "eps 0 requires exact balance on even totals");
    }

    #[test]
    fn parfm_matches_sequential_quality_class_on_grid() {
        let g = gen::grid2d(24, 24);
        let policy = ExecPolicy::host();
        let seq = crate::fm::fm_bisect(
            &policy,
            &g,
            &CoarsenOptions::default(),
            &FmConfig::default(),
            3,
        );
        let par = parfm_bisect(
            &policy,
            &g,
            &CoarsenOptions::default(),
            &Default::default(),
            3,
        );
        assert!(
            par.cut as f64 <= 2.0 * seq.cut as f64,
            "parallel refinement too weak: {} vs {}",
            par.cut,
            seq.cut
        );
        assert!(par.imbalance <= 1.05, "imbalance {}", par.imbalance);
    }

    #[test]
    fn pure_parallel_without_polish_still_reasonable() {
        let g = gen::grid2d(24, 24);
        let policy = ExecPolicy::host();
        let cfg = ParRefConfig {
            sequential_polish: false,
            ..Default::default()
        };
        let r = parfm_bisect(&policy, &g, &CoarsenOptions::default(), &cfg, 9);
        // Optimal is 24; grant generous slack for the purely parallel path.
        assert!(r.cut <= 96, "cut {}", r.cut);
        assert_eq!(r.cut, edge_cut(&g, &r.part));
    }

    #[test]
    fn empty_graph() {
        let g = mlcg_graph::Csr::empty();
        let mut part: Vec<u32> = vec![];
        let cut = parallel_refine(&ExecPolicy::host(), &g, &mut part, &Default::default());
        assert_eq!(cut, 0);
    }
}

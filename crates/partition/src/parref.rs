//! Parallel boundary refinement — the paper's "fully parallel
//! partitioning with FM-based refinement" future-work direction.
//!
//! Classic coarse-grained parallel refinement (in the spirit of
//! mt-Metis): rounds alternate move direction, so every move in a round
//! goes from the same source side. Frontier vertices whose FM gain is
//! positive (computed against the round-start partition, which no thread
//! mutates during the gain pass) move, subject to an atomically claimed
//! weight budget that caps how far the target side may grow.
//!
//! The refiner is *frontier-based*: a round scans only the current
//! frontier — seeded from the projected coarse boundary during
//! uncoarsening, then maintained incrementally (pre-move boundary members
//! stay, movers and their neighbors join) — so a round costs
//! `O(frontier + moved · deg)`, not `O(n + m)`. All per-vertex scratch
//! (mover stamps, dedup stamps, frontier arrays, the move log) lives in a
//! [`ParRefWorkspace`] reused across rounds *and* levels; the round loop
//! allocates nothing proportional to `n`.
//!
//! The cut is tracked incrementally. A round's actual cut delta is
//! derived from the predicted per-move gains plus an interference
//! correction over the movers only: for `S` the set of same-direction
//! movers,
//!
//! ```text
//! new_cut = cut − Σ_{u∈S} gain(u) − 2 · w(S, S)
//! ```
//!
//! because an edge inside `S` is counted as internal (−w) by *both*
//! endpoint gains while its actual cut contribution never changes —
//! simultaneous same-direction movers can only do *better* than their
//! individual predictions. Both terms are nonnegative (only positive
//! gains move), so a round provably never worsens the cut; the wholesale
//! round rollback is kept as a defensive guard on the arithmetic, not as
//! an expected path. No `edge_cut` recount happens anywhere in the round
//! loop (debug builds assert the tracked cut against a recount).
//!
//! Rounds leave at most one `max_vwgt` of balance overshoot (the claimed
//! budget extends one max-vertex past the strict limit so perfectly
//! balanced partitions can trade). A final sequential repair phase moves
//! best-gain vertices off the over-limit side until the excess is back to
//! its entry value — so a feasible entry ends inside the envelope, while
//! pre-existing infeasibility is left for the sequential FM pass that
//! follows in every multilevel driver (its best-prefix selection repairs
//! balance while jointly optimizing the cut, which greedy excess
//! reduction on a dense graph cannot). The whole refinement rolls back to
//! its entry state — replaying the move log — if it would end
//! lexicographically worse in `(excess, cut)` than the entry partition.
//! An optional sequential FM polish (seeded with the final frontier)
//! removes the last few percent, mirroring how production partitioners
//! combine the two.

use crate::fm::{fm_refine_boundary_traced, seed_covers_boundary, Balance, FmConfig};
use crate::ggg::greedy_graph_growing;
use crate::result::PartitionResult;
use mlcg_coarsen::{coarsen, CoarsenOptions, Hierarchy};
use mlcg_graph::metrics::edge_cut;
use mlcg_graph::{Csr, VId};
use mlcg_par::atomic::as_atomic_u32;
use mlcg_par::exec::HOST_GRAIN;
use mlcg_par::{parallel_for, profile, Backend, ExecPolicy, TraceCollector};
use std::sync::atomic::{AtomicI64, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};

/// Parallel refinement tuning.
#[derive(Clone, Debug)]
pub struct ParRefConfig {
    /// Maximum alternating-direction rounds per level.
    pub max_rounds: usize,
    /// Allowed imbalance of the heavier side vs `total/2`.
    pub epsilon: f64,
    /// Run a short sequential FM polish per level after the parallel
    /// rounds, seeded with the rounds' final frontier.
    pub sequential_polish: bool,
    /// Imbalance allowed on coarse levels by [`parfm_bisect`]'s
    /// uncoarsening driver: every level except the finest refines with
    /// `epsilon.max(coarse_epsilon)` so heavy aggregates don't wedge the
    /// balance constraint. The default (0.1) preserves the historical
    /// hardcoded relaxation.
    pub coarse_epsilon: f64,
    /// Frontier size above which the hybrid multilevel driver runs
    /// parallel rounds before the sequential boundary pass. `None`
    /// derives the threshold from the dispatch economics:
    /// `HOST_GRAIN × workers` (a smaller frontier can't amortize waking
    /// the pool — see the PR 4 wakeup findings in DESIGN §8).
    pub crossover_frontier: Option<usize>,
    /// Stop the round loop once the rebuilt frontier drops below this
    /// size and hand the residue to the sequential polish. The hybrid
    /// multilevel driver sets this to its crossover threshold so the
    /// crossover holds *per round*, not just at level entry — once the
    /// frontier has shrunk past the point where a dispatch pays for
    /// itself, further rounds only delay the polish. `0` (the default)
    /// never hands off: the flat [`parallel_refine`] API runs rounds to
    /// convergence.
    pub handoff_frontier: usize,
}

impl Default for ParRefConfig {
    fn default() -> Self {
        ParRefConfig {
            max_rounds: 12,
            epsilon: 0.02,
            sequential_polish: true,
            coarse_epsilon: 0.1,
            crossover_frontier: None,
            handoff_frontier: 0,
        }
    }
}

impl ParRefConfig {
    /// The frontier size at which the hybrid driver switches from the
    /// sequential boundary pass to parallel rounds under `policy`.
    pub fn crossover_threshold(&self, policy: &ExecPolicy) -> usize {
        self.crossover_frontier
            .unwrap_or_else(|| HOST_GRAIN.saturating_mul(policy.threads.max(1)))
    }
}

/// Reusable per-vertex scratch for [`parallel_refine_rounds`], carried
/// across rounds and across uncoarsening levels so the round loop never
/// allocates `O(n)`.
///
/// All stamps are epoch-based: bumping an epoch invalidates every mark
/// without touching memory (arrays are wiped only on the ~never-taken
/// `u32` epoch wraparound).
#[derive(Default)]
pub struct ParRefWorkspace {
    /// `moved_stamp[u] == round_epoch` marks `u` as a mover this round.
    moved_stamp: Vec<AtomicU32>,
    /// `dedup_stamp[u] == dedup_epoch` marks membership in `frontier`.
    dedup_stamp: Vec<u32>,
    /// Per-frontier-index round verdict: 0 drop (interior), 1 keep
    /// (boundary), 2 mover. Sized to the frontier, not the graph.
    code: Vec<AtomicU8>,
    frontier: Vec<u32>,
    next: Vec<u32>,
    /// Every committed flip (rounds and repair), in order; replaying the
    /// flips restores the entry partition exactly.
    move_log: Vec<u32>,
    round_epoch: u32,
    dedup_epoch: u32,
}

impl ParRefWorkspace {
    /// An empty workspace; arrays grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grow the per-vertex arrays to cover `n` vertices (epochs persist,
    /// so previously stamped entries stay invalidated).
    fn ensure(&mut self, n: usize) {
        if self.moved_stamp.len() < n {
            self.moved_stamp.resize_with(n, || AtomicU32::new(0));
            self.dedup_stamp.resize(n, 0);
        }
    }

    fn bump_round(&mut self) -> u32 {
        if self.round_epoch == u32::MAX {
            for s in &self.moved_stamp {
                s.store(0, Ordering::Relaxed);
            }
            self.round_epoch = 0;
        }
        self.round_epoch += 1;
        self.round_epoch
    }

    fn bump_dedup(&mut self) -> u32 {
        if self.dedup_epoch == u32::MAX {
            self.dedup_stamp.fill(0);
            self.dedup_epoch = 0;
        }
        self.dedup_epoch += 1;
        self.dedup_epoch
    }
}

/// Outcome of one frontier-based parallel refinement at a fixed level.
#[derive(Clone, Debug)]
pub struct ParRefOutcome {
    /// Final weighted edge cut (incrementally tracked; equals
    /// `edge_cut(g, part)`).
    pub cut: u64,
    /// Rounds that ran a gain dispatch (the `parref/rounds` counter).
    pub rounds: usize,
    /// Final frontier: a superset of the boundary, valid as a
    /// `seed_frontier` for [`fm_refine_boundary_traced`] or for
    /// projection one level down.
    pub frontier: Vec<u32>,
}

/// Frontier-based parallel refinement rounds at a fixed level — the
/// engine behind [`parallel_refine`] and the hybrid multilevel driver
/// ([`crate::fm::fm_uncoarsen_frac_hybrid`]).
///
/// `seed_frontier`, when given, must cover every vertex with a cut edge
/// (a superset is fine); `None` seeds all of `0..n`. `vertex_slack`
/// mirrors [`FmConfig::vertex_slack`]: coarse levels grant the heavier
/// side one max-vertex of extra slack. Each round emits a
/// `parref/frontier_size` gauge and bumps the `parref/rounds` counter;
/// the fused dispatches are profiled as `par_for/parref/gain` and
/// `par_for/parref/apply`.
#[allow(clippy::too_many_arguments)]
pub fn parallel_refine_rounds(
    policy: &ExecPolicy,
    g: &Csr,
    part: &mut [u32],
    cfg: &ParRefConfig,
    frac: f64,
    vertex_slack: bool,
    seed_frontier: Option<&[u32]>,
    ws: &mut ParRefWorkspace,
    trace: &TraceCollector,
) -> ParRefOutcome {
    let n = g.n();
    assert_eq!(part.len(), n);
    if n == 0 {
        return ParRefOutcome {
            cut: 0,
            rounds: 0,
            frontier: Vec::new(),
        };
    }
    let _kernel = profile::kernel("parref");
    let _mem = trace.heap_scope(|| "parref".to_string());
    let bal = Balance::new(g, cfg.epsilon, vertex_slack, frac);

    let mut wpart = [0u64; 2];
    for (u, &p) in part.iter().enumerate() {
        wpart[p as usize] += g.vwgt()[u];
    }

    ws.ensure(n);
    ws.move_log.clear();

    // Seed the frontier, deduped by stamp.
    {
        let epoch = ws.bump_dedup();
        ws.frontier.clear();
        match seed_frontier {
            Some(seed) => {
                debug_assert!(
                    seed_covers_boundary(g, part, seed),
                    "seed frontier misses a boundary vertex"
                );
                for &u in seed {
                    let ui = u as usize;
                    assert!(ui < n, "seed frontier vertex {u} out of range");
                    if ws.dedup_stamp[ui] != epoch {
                        ws.dedup_stamp[ui] = epoch;
                        ws.frontier.push(u);
                    }
                }
            }
            None => {
                for u in 0..n as u32 {
                    ws.dedup_stamp[u as usize] = epoch;
                    ws.frontier.push(u);
                }
            }
        }
    }

    // Entry cut from external weight over the frontier: the frontier
    // covers the boundary, so each cut edge is counted at both endpoints.
    // This is the only cut derivation in the function — the round loop
    // maintains it incrementally.
    let mut ext_total: u64 = 0;
    for &u in &ws.frontier {
        for (v, w) in g.edges(u) {
            if part[u as usize] != part[v as usize] {
                ext_total += w;
            }
        }
    }
    debug_assert_eq!(ext_total % 2, 0, "frontier missed a cut edge endpoint");
    let mut cut = ext_total / 2;
    debug_assert_eq!(cut, edge_cut(g, part));
    let entry_key = (bal.excess(&wpart), cut);

    let mut rounds = 0usize;
    let mut empty_streak = 0usize;
    for round in 0..cfg.max_rounds {
        let flen = ws.frontier.len();
        if flen == 0 {
            break;
        }
        // Dynamic crossover: a frontier this small no longer pays for a
        // round — leave the residue to the caller's sequential polish.
        if round > 0 && flen < cfg.handoff_frontier {
            break;
        }
        let from = (round % 2) as u32;
        let to = 1 - from;
        trace.gauge_usize(|| "parref/frontier_size".to_string(), flen);
        trace.counter_add("parref/rounds", 1);
        rounds += 1;
        let epoch = ws.bump_round();
        if ws.code.len() < flen {
            ws.code.resize_with(flen, AtomicU8::default);
        }
        // Budget: how much weight the target side may still absorb. One
        // extra max-vertex of slack past the strict limit lets perfectly
        // balanced partitions trade (the opposite round direction — or
        // the final repair phase — restores them).
        let budget = AtomicU64::new(bal.loose[to as usize].saturating_sub(wpart[to as usize]));
        let ext_sum = AtomicU64::new(0);
        let gain_sum = AtomicI64::new(0);
        let mover_count = AtomicUsize::new(0);
        {
            // Fused gain-compute + budget-claim dispatch over the frontier
            // array. `part` is read-only here, so every gain is computed
            // against the round-start partition by construction — no
            // snapshot copy needed.
            let _k = profile::kernel("gain");
            let frontier = &ws.frontier;
            let code = &ws.code;
            let moved = &ws.moved_stamp;
            let part_ro: &[u32] = part;
            parallel_for(policy, flen, |i| {
                let u = frontier[i] as usize;
                let pu = part_ro[u];
                let mut gain = 0i64;
                let mut extw = 0u64;
                for (v, w) in g.edges(u as VId) {
                    if part_ro[v as usize] == pu {
                        gain -= w as i64;
                    } else {
                        gain += w as i64;
                        extw += w;
                    }
                }
                ext_sum.fetch_add(extw, Ordering::Relaxed);
                code[i].store(u8::from(extw > 0), Ordering::Relaxed);
                if pu != from || gain <= 0 {
                    return;
                }
                // Positive gain implies a cut edge, so u is boundary.
                // Claim weight from the budget.
                let vw = g.vwgt()[u];
                let mut cur = budget.load(Ordering::Relaxed);
                loop {
                    if cur < vw {
                        return;
                    }
                    match budget.compare_exchange_weak(
                        cur,
                        cur - vw,
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(now) => cur = now,
                    }
                }
                moved[u].store(epoch, Ordering::Relaxed);
                code[i].store(2, Ordering::Relaxed);
                gain_sum.fetch_add(gain, Ordering::Relaxed);
                mover_count.fetch_add(1, Ordering::Relaxed);
            });
        }
        // The frontier-covers-boundary invariant makes the summed external
        // weight exactly twice the tracked cut, every round.
        debug_assert_eq!(
            ext_sum.load(Ordering::Relaxed),
            2 * cut,
            "frontier no longer covers the boundary"
        );

        if mover_count.load(Ordering::Relaxed) == 0 {
            // Nothing to move in this direction; shrink the frontier to
            // its boundary members and try the other direction once more.
            rebuild_frontier(g, ws, flen, false);
            empty_streak += 1;
            if empty_streak >= 2 {
                break; // neither direction has positive-gain moves left
            }
            continue;
        }
        empty_streak = 0;

        // Fused apply dispatch: flip the movers and accumulate the
        // interference term — for each mover, the weight of its edges to
        // other movers (each mover–mover edge is counted twice, which is
        // exactly the 2·w(S,S) the cut algebra needs). Mover identity
        // comes from the epoch stamps written by the gain pass, so the
        // concurrent part[] stores never feed back into this scan.
        let moved_w = AtomicU64::new(0);
        let interference = AtomicU64::new(0);
        {
            let _k = profile::kernel("apply");
            let frontier = &ws.frontier;
            let code = &ws.code;
            let moved = &ws.moved_stamp;
            let part_atomic = as_atomic_u32(part);
            parallel_for(policy, flen, |i| {
                if code[i].load(Ordering::Relaxed) != 2 {
                    return;
                }
                let u = frontier[i] as usize;
                part_atomic[u].store(to, Ordering::Relaxed);
                moved_w.fetch_add(g.vwgt()[u], Ordering::Relaxed);
                let mut s = 0u64;
                for (v, w) in g.edges(u as VId) {
                    if moved[v as usize].load(Ordering::Relaxed) == epoch {
                        s += w;
                    }
                }
                interference.fetch_add(s, Ordering::Relaxed);
            });
        }
        let moved_weight = moved_w.load(Ordering::Relaxed);
        wpart[from as usize] -= moved_weight;
        wpart[to as usize] += moved_weight;
        // Incremental cut: predicted gains plus the interference
        // correction (see the module docs for the derivation). Both terms
        // are nonnegative, so this can only decrease the cut; the rollback
        // below is a defensive guard, not an expected path.
        let new_cut = cut as i64
            - gain_sum.load(Ordering::Relaxed)
            - interference.load(Ordering::Relaxed) as i64;
        if new_cut < 0 || new_cut as u64 > cut || wpart[to as usize] > bal.loose[to as usize] {
            for i in 0..flen {
                if ws.code[i].load(Ordering::Relaxed) == 2 {
                    part[ws.frontier[i] as usize] = from;
                }
            }
            wpart[from as usize] += moved_weight;
            wpart[to as usize] -= moved_weight;
            rebuild_frontier(g, ws, flen, false);
            break;
        }
        cut = new_cut as u64;
        debug_assert_eq!(cut, edge_cut(g, part), "incremental cut drifted");
        rebuild_frontier(g, ws, flen, true);
    }

    // Balance repair: rounds may leave up to one max-vertex of overshoot
    // past the strict envelope (the budget's trade slack). Move best-gain
    // vertices off the over-limit side until the excess is back down to
    // its entry value — 0 for a feasible entry, so the flat no-polish
    // contract ends inside the envelope. Pre-existing infeasibility (an
    // interpolated partition can exceed the finer level's strict limits,
    // whose vertex slack shrinks with the finer max_vwgt) is deliberately
    // NOT repaired here: greedy excess-reduction on a dense graph moves
    // vertices at ruinous gains, while the sequential FM pass that
    // follows in every multilevel driver repairs balance through its
    // best-prefix selection, jointly optimizing the cut.
    if bal.excess(&wpart) > entry_key.0 {
        repair_balance(g, part, &mut wpart, &bal, entry_key.0, &mut cut, ws);
    }
    // Repair moves can raise the cut; if the end state is lexicographically
    // worse than the entry in (excess, cut), undo everything — replaying
    // the move log restores the entry partition exactly, which by
    // assumption satisfied the better key.
    if (bal.excess(&wpart), cut) > entry_key {
        for &u in ws.move_log.iter().rev() {
            let ui = u as usize;
            let side = part[ui] as usize;
            part[ui] = 1 - part[ui];
            wpart[side] -= g.vwgt()[ui];
            wpart[1 - side] += g.vwgt()[ui];
        }
        cut = entry_key.1;
        let epoch = ws.bump_dedup();
        ws.frontier.clear();
        match seed_frontier {
            Some(seed) => {
                for &u in seed {
                    if ws.dedup_stamp[u as usize] != epoch {
                        ws.dedup_stamp[u as usize] = epoch;
                        ws.frontier.push(u);
                    }
                }
            }
            None => {
                for u in 0..n as u32 {
                    ws.dedup_stamp[u as usize] = epoch;
                    ws.frontier.push(u);
                }
            }
        }
    }
    debug_assert_eq!(cut, edge_cut(g, part), "final cut drifted");
    ParRefOutcome {
        cut,
        rounds,
        frontier: ws.frontier.clone(),
    }
}

/// Build the next frontier in `O(frontier + moved · deg)`: pre-move
/// boundary members stay, movers stay, and (when the round was `applied`)
/// movers' neighbors join and the movers are appended to the move log.
/// Dropped members are interior vertices not adjacent to any mover, whose
/// external weight cannot have changed.
fn rebuild_frontier(g: &Csr, ws: &mut ParRefWorkspace, flen: usize, applied: bool) {
    let epoch = ws.bump_dedup();
    let ParRefWorkspace {
        frontier,
        next,
        dedup_stamp,
        code,
        move_log,
        ..
    } = ws;
    next.clear();
    for i in 0..flen {
        let u = frontier[i];
        let c = code[i].load(Ordering::Relaxed);
        if c == 0 {
            continue;
        }
        if dedup_stamp[u as usize] != epoch {
            dedup_stamp[u as usize] = epoch;
            next.push(u);
        }
        if c == 2 && applied {
            move_log.push(u);
            for (v, _) in g.edges(u) {
                if dedup_stamp[v as usize] != epoch {
                    dedup_stamp[v as usize] = epoch;
                    next.push(v);
                }
            }
        }
    }
    std::mem::swap(frontier, next);
}

/// Sequential greedy balance repair: while the excess exceeds
/// `target_excess`, move the best-gain vertex whose move strictly reduces
/// the excess. Candidates come from the frontier first (it contains the
/// movers that caused any overshoot); a full scan is the fallback for
/// degenerate entries whose over-limit side has no frontier vertex.
/// Every move is logged and the frontier is extended to keep covering
/// the boundary.
fn repair_balance(
    g: &Csr,
    part: &mut [u32],
    wpart: &mut [u64; 2],
    bal: &Balance,
    target_excess: u64,
    cut: &mut u64,
    ws: &mut ParRefWorkspace,
) {
    loop {
        let excess = bal.excess(wpart);
        if excess <= target_excess {
            return;
        }
        let mut best: Option<(i64, u32)> = None;
        let scan = |candidates: &mut dyn Iterator<Item = u32>, best: &mut Option<(i64, u32)>| {
            for u in candidates {
                let ui = u as usize;
                let side = part[ui] as usize;
                if wpart[side] <= bal.strict[side] {
                    continue; // not on an over-limit side
                }
                let vw = g.vwgt()[ui];
                let moved = [
                    wpart[0] - if side == 0 { vw } else { 0 } + if side == 1 { vw } else { 0 },
                    wpart[1] - if side == 1 { vw } else { 0 } + if side == 0 { vw } else { 0 },
                ];
                if bal.excess(&moved) >= excess {
                    continue; // move would not reduce the excess
                }
                let mut gain = 0i64;
                for (v, w) in g.edges(u) {
                    if part[v as usize] as usize == side {
                        gain -= w as i64;
                    } else {
                        gain += w as i64;
                    }
                }
                if best.is_none() || gain > best.unwrap().0 {
                    *best = Some((gain, u));
                }
            }
        };
        scan(&mut ws.frontier.iter().copied(), &mut best);
        if best.is_none() {
            scan(&mut (0..g.n() as u32), &mut best);
        }
        let Some((gain, u)) = best else {
            return; // no move reduces the excess (infeasible weights)
        };
        let ui = u as usize;
        let side = part[ui] as usize;
        part[ui] = 1 - part[ui];
        wpart[side] -= g.vwgt()[ui];
        wpart[1 - side] += g.vwgt()[ui];
        *cut = (*cut as i64 - gain) as u64;
        ws.move_log.push(u);
        // Keep the frontier covering the boundary: the flip can create
        // cut edges at u and its neighbors.
        let epoch = ws.dedup_epoch;
        if ws.dedup_stamp[ui] != epoch {
            ws.dedup_stamp[ui] = epoch;
            ws.frontier.push(u);
        }
        for (v, _) in g.edges(u) {
            if ws.dedup_stamp[v as usize] != epoch {
                ws.dedup_stamp[v as usize] = epoch;
                ws.frontier.push(v);
            }
        }
    }
}

/// One parallel refinement at a fixed level; returns the final cut.
///
/// Runs the frontier-based rounds over the whole vertex set (no seed),
/// repairs the balance envelope, and — when
/// [`ParRefConfig::sequential_polish`] is set — finishes with a short
/// sequential FM pass seeded by the rounds' final frontier.
pub fn parallel_refine(policy: &ExecPolicy, g: &Csr, part: &mut [u32], cfg: &ParRefConfig) -> u64 {
    let mut ws = ParRefWorkspace::new();
    parallel_refine_in(
        policy,
        g,
        part,
        cfg,
        0.5,
        false,
        None,
        &mut ws,
        &TraceCollector::disabled(),
    )
}

/// [`parallel_refine`] with an explicit workspace, balance target, seed
/// frontier, and trace sink — the per-level step of [`parfm_bisect`].
#[allow(clippy::too_many_arguments)]
pub fn parallel_refine_in(
    policy: &ExecPolicy,
    g: &Csr,
    part: &mut [u32],
    cfg: &ParRefConfig,
    frac: f64,
    vertex_slack: bool,
    seed_frontier: Option<&[u32]>,
    ws: &mut ParRefWorkspace,
    trace: &TraceCollector,
) -> u64 {
    let out = parallel_refine_rounds(
        policy,
        g,
        part,
        cfg,
        frac,
        vertex_slack,
        seed_frontier,
        ws,
        trace,
    );
    if cfg.sequential_polish {
        let fm = FmConfig {
            max_passes: 2,
            epsilon: cfg.epsilon,
            vertex_slack,
        };
        fm_refine_boundary_traced(g, part, &fm, frac, Some(&out.frontier), trace).cut
    } else {
        out.cut
    }
}

/// One flat bisection refinement through the crossover: on a parallel
/// policy with a graph at or above [`ParRefConfig::crossover_threshold`],
/// strip the bulk positive gains with the frontier rounds (handing off
/// once the frontier shrinks below the threshold), then polish with the
/// sequential boundary FM seeded by the rounds' final frontier; below
/// the crossover, the sequential FM runs alone. Returns the final cut.
///
/// Shared by the spectral polish and (in k-way form, see
/// [`crate::kwayref::kway_direct_refine`]) the direct k-way refiner.
pub fn rounds_then_polish(
    policy: &ExecPolicy,
    g: &Csr,
    part: &mut [u32],
    fm_cfg: &FmConfig,
    frac: f64,
    trace: &TraceCollector,
) -> u64 {
    let _mem = trace.heap_scope(|| "parref/polish".to_string());
    let mut parref = ParRefConfig {
        epsilon: fm_cfg.epsilon,
        ..ParRefConfig::default()
    };
    let threshold = parref.crossover_threshold(policy);
    parref.handoff_frontier = threshold;
    if policy.backend != Backend::Serial && g.n() >= threshold {
        let mut ws = ParRefWorkspace::new();
        let rounds = parallel_refine_rounds(
            policy,
            g,
            part,
            &parref,
            frac,
            fm_cfg.vertex_slack,
            None,
            &mut ws,
            trace,
        );
        fm_refine_boundary_traced(g, part, fm_cfg, frac, Some(&rounds.frontier), trace).cut
    } else {
        fm_refine_boundary_traced(g, part, fm_cfg, frac, None, trace).cut
    }
}

/// Multilevel bisection where *both* coarsening and refinement run under
/// the parallel policy (sequential work only in the optional polish and
/// the rare balance repair).
pub fn parfm_bisect(
    policy: &ExecPolicy,
    g: &Csr,
    coarsen_opts: &CoarsenOptions,
    cfg: &ParRefConfig,
    seed: u64,
) -> PartitionResult {
    let trace = coarsen_opts.trace.clone();
    let span = trace.timed_span(|| "partition/parref/coarsen".to_string());
    let h = coarsen(policy, g, coarsen_opts);
    let coarsen_seconds = span.finish();
    let span = trace.timed_span(|| "partition/parref/refine".to_string());
    let part = parref_uncoarsen(policy, &h, cfg, seed, &trace);
    let refine_seconds = span.finish();
    PartitionResult::new(g, part, coarsen_seconds, refine_seconds, h.num_levels())
        .with_trace(trace.report())
}

/// The uncoarsening half: initial partition on the coarsest graph, then
/// project + parallel-refine level by level. One workspace serves every
/// level, and each level's frontier is seeded by projecting the coarser
/// level's final boundary (polish on) or frontier (polish off).
fn parref_uncoarsen(
    policy: &ExecPolicy,
    h: &Hierarchy,
    cfg: &ParRefConfig,
    seed: u64,
    trace: &TraceCollector,
) -> Vec<u32> {
    let coarsest = h.coarsest();
    let mut part = greedy_graph_growing(coarsest, seed);
    let coarse_cfg = ParRefConfig {
        epsilon: cfg.epsilon.max(cfg.coarse_epsilon),
        ..cfg.clone()
    };
    let mut ws = ParRefWorkspace::new();
    let mut boundary = refine_level(
        policy,
        coarsest,
        &mut part,
        &coarse_cfg,
        true,
        None,
        &mut ws,
        trace,
    );
    for level in (0..h.num_levels()).rev() {
        part = h.interpolate_level(level, &part);
        let frontier = h.project_frontier_ids(level, &boundary);
        let (level_cfg, slack) = if level == 0 {
            (cfg, false)
        } else {
            (&coarse_cfg, true)
        };
        boundary = refine_level(
            policy,
            h.graph_above(level),
            &mut part,
            level_cfg,
            slack,
            Some(&frontier),
            &mut ws,
            trace,
        );
    }
    part
}

/// One uncoarsening step: parallel rounds, optional seeded polish;
/// returns a boundary-covering vertex set to project to the next level.
#[allow(clippy::too_many_arguments)]
fn refine_level(
    policy: &ExecPolicy,
    g: &Csr,
    part: &mut [u32],
    cfg: &ParRefConfig,
    vertex_slack: bool,
    seed_frontier: Option<&[u32]>,
    ws: &mut ParRefWorkspace,
    trace: &TraceCollector,
) -> Vec<u32> {
    let out = parallel_refine_rounds(
        policy,
        g,
        part,
        cfg,
        0.5,
        vertex_slack,
        seed_frontier,
        ws,
        trace,
    );
    if cfg.sequential_polish {
        let fm = FmConfig {
            max_passes: 2,
            epsilon: cfg.epsilon,
            vertex_slack,
        };
        fm_refine_boundary_traced(g, part, &fm, 0.5, Some(&out.frontier), trace).boundary
    } else {
        out.frontier
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcg_graph::generators as gen;
    use mlcg_graph::metrics::part_weights;
    use mlcg_par::rng::Xoshiro256pp;

    #[test]
    fn never_worsens_the_cut() {
        let g = gen::grid2d(20, 20);
        let mut rng = Xoshiro256pp::new(5);
        for policy in ExecPolicy::all_test_policies() {
            let mut part: Vec<u32> = (0..g.n()).map(|_| rng.next_below(2) as u32).collect();
            // Balance roughly first.
            let ones = part.iter().filter(|&&p| p == 1).count();
            let mut fix = ones as i64 - (g.n() / 2) as i64;
            for p in part.iter_mut() {
                if fix > 0 && *p == 1 {
                    *p = 0;
                    fix -= 1;
                } else if fix < 0 && *p == 0 {
                    *p = 1;
                    fix += 1;
                }
            }
            let before = edge_cut(&g, &part);
            let cfg = ParRefConfig {
                sequential_polish: false,
                ..Default::default()
            };
            let after = parallel_refine(&policy, &g, &mut part, &cfg);
            assert!(after <= before, "{policy}: {before} -> {after}");
            assert_eq!(after, edge_cut(&g, &part));
        }
    }

    #[test]
    fn respects_balance_envelope() {
        let g = gen::complete(16);
        let mut part: Vec<u32> = (0..16).map(|i| u32::from(i >= 8)).collect();
        let cfg = ParRefConfig {
            epsilon: 0.0,
            sequential_polish: true,
            ..Default::default()
        };
        parallel_refine(&ExecPolicy::host(), &g, &mut part, &cfg);
        let (w0, w1) = part_weights(&g, &part);
        assert_eq!(w0.max(w1), 8, "eps 0 requires exact balance on even totals");
    }

    #[test]
    fn no_polish_still_repairs_to_the_envelope() {
        // Regression: the pre-rewrite refiner's budget granted one
        // max-vertex of slack past the limit and never repaired it, so
        // `sequential_polish: false` could return a partition exceeding
        // the epsilon envelope by up to max_vwgt. The repair phase must
        // restore the strict envelope — here eps 0 on an even total, so
        // exact balance — without worsening the cut.
        let g = gen::complete(16);
        for policy in ExecPolicy::all_test_policies() {
            let mut part: Vec<u32> = (0..16).map(|i| u32::from(i >= 8)).collect();
            let before = edge_cut(&g, &part);
            let cfg = ParRefConfig {
                epsilon: 0.0,
                sequential_polish: false,
                ..Default::default()
            };
            let after = parallel_refine(&policy, &g, &mut part, &cfg);
            let (w0, w1) = part_weights(&g, &part);
            assert_eq!(
                w0.max(w1),
                8,
                "{policy}: eps 0, no polish must still end balanced ({w0}/{w1})"
            );
            assert!(
                after <= before,
                "{policy}: cut worsened {before} -> {after}"
            );
            assert_eq!(after, edge_cut(&g, &part));
        }
    }

    #[test]
    fn workspace_reuse_across_graphs_is_clean() {
        // One workspace across differently-sized graphs and repeated
        // levels: stale stamps from earlier runs must never leak.
        let mut ws = ParRefWorkspace::new();
        let trace = TraceCollector::disabled();
        let policy = ExecPolicy::host();
        let cfg = ParRefConfig::default();
        for &(w, h) in &[(20usize, 20usize), (8, 8), (16, 16)] {
            let g = gen::grid2d(w, h);
            let mut rng = Xoshiro256pp::new((w * h) as u64);
            let mut part: Vec<u32> = (0..g.n()).map(|_| rng.next_below(2) as u32).collect();
            let before = edge_cut(&g, &part);
            let out = parallel_refine_rounds(
                &policy, &g, &mut part, &cfg, 0.5, true, None, &mut ws, &trace,
            );
            assert_eq!(out.cut, edge_cut(&g, &part));
            assert!(out.cut <= before);
        }
    }

    #[test]
    fn coarse_epsilon_is_configurable() {
        // The uncoarsening driver must honor ParRefConfig::coarse_epsilon
        // instead of the old hardcoded 0.1 relaxation; a tight
        // coarse_epsilon ends within the finest-level envelope either way,
        // and both settings must produce a valid bisection.
        let g = gen::grid2d(24, 24);
        let policy = ExecPolicy::host();
        for coarse_eps in [0.0, 0.3] {
            let cfg = ParRefConfig {
                coarse_epsilon: coarse_eps,
                ..Default::default()
            };
            let r = parfm_bisect(&policy, &g, &CoarsenOptions::default(), &cfg, 3);
            assert_eq!(r.cut, edge_cut(&g, &r.part));
            assert!(r.imbalance <= 1.05, "imbalance {}", r.imbalance);
        }
    }

    #[test]
    fn parfm_matches_sequential_quality_class_on_grid() {
        let g = gen::grid2d(24, 24);
        let policy = ExecPolicy::host();
        let seq = crate::fm::fm_bisect(
            &policy,
            &g,
            &CoarsenOptions::default(),
            &FmConfig::default(),
            3,
        );
        let par = parfm_bisect(
            &policy,
            &g,
            &CoarsenOptions::default(),
            &Default::default(),
            3,
        );
        assert!(
            par.cut as f64 <= 2.0 * seq.cut as f64,
            "parallel refinement too weak: {} vs {}",
            par.cut,
            seq.cut
        );
        assert!(par.imbalance <= 1.05, "imbalance {}", par.imbalance);
    }

    #[test]
    fn pure_parallel_without_polish_still_reasonable() {
        let g = gen::grid2d(24, 24);
        let policy = ExecPolicy::host();
        let cfg = ParRefConfig {
            sequential_polish: false,
            ..Default::default()
        };
        let r = parfm_bisect(&policy, &g, &CoarsenOptions::default(), &cfg, 9);
        // Optimal is 24; grant generous slack for the purely parallel path.
        assert!(r.cut <= 96, "cut {}", r.cut);
        assert_eq!(r.cut, edge_cut(&g, &r.part));
    }

    #[test]
    fn empty_graph() {
        let g = mlcg_graph::Csr::empty();
        let mut part: Vec<u32> = vec![];
        let cut = parallel_refine(&ExecPolicy::host(), &g, &mut part, &Default::default());
        assert_eq!(cut, 0);
    }
}

//! Greedy graph growing — the initial partitioner used with FM refinement
//! (as in the paper and in Metis).
//!
//! Grow a region from a random seed vertex, repeatedly absorbing the
//! frontier vertex whose move reduces the cut the most (FM gain), until
//! the region holds half the vertex weight. Several restarts keep the best
//! bisection.

use mlcg_graph::metrics::edge_cut;
use mlcg_graph::{Csr, VId};
use mlcg_par::rng::Xoshiro256pp;
use std::collections::BinaryHeap;

/// Number of random restarts.
const RESTARTS: usize = 4;

/// Compute a balanced bisection by greedy region growing; labels are 0 for
/// the grown region and 1 for the remainder.
pub fn greedy_graph_growing(g: &Csr, seed: u64) -> Vec<u32> {
    greedy_graph_growing_frac(g, seed, 0.5)
}

/// [`greedy_graph_growing`] with the grown region targeting `frac` of the
/// total vertex weight.
pub fn greedy_graph_growing_frac(g: &Csr, seed: u64, frac: f64) -> Vec<u32> {
    let n = g.n();
    if n == 0 {
        return vec![];
    }
    assert!((0.0..=1.0).contains(&frac));
    let mut rng = Xoshiro256pp::new(seed);
    let total = g.total_vwgt();
    let t0 = ((total as f64 * frac).round() as u64).min(total);
    // Rank restarts by (imbalance excess, cut): growth can overshoot the
    // target by up to one vertex, so prefer the most balanced low-cut
    // result.
    let mut best: Option<((u64, u64), Vec<u32>)> = None;
    for _ in 0..RESTARTS {
        let start = rng.next_below(n as u64) as u32;
        let part = grow_from(g, start, t0);
        let cut = edge_cut(g, &part);
        let (w0, w1) = mlcg_graph::metrics::part_weights(g, &part);
        let key = (
            w0.saturating_sub(t0).max(w1.saturating_sub(total - t0)),
            cut,
        );
        if best.as_ref().is_none_or(|(bk, _)| key < *bk) {
            best = Some((key, part));
        }
    }
    best.unwrap().1
}

fn grow_from(g: &Csr, start: u32, target: u64) -> Vec<u32> {
    let n = g.n();
    let mut part = vec![1u32; n];
    let mut in_region = vec![false; n];
    let mut gain: Vec<i64> = vec![0; n];
    let mut version: Vec<u32> = vec![0; n];
    let mut heap: BinaryHeap<(i64, u32, u32)> = BinaryHeap::new();
    let mut weight = 0u64;

    let add = |u: u32,
               part: &mut Vec<u32>,
               in_region: &mut Vec<bool>,
               gain: &mut Vec<i64>,
               version: &mut Vec<u32>,
               heap: &mut BinaryHeap<(i64, u32, u32)>,
               weight: &mut u64| {
        part[u as usize] = 0;
        in_region[u as usize] = true;
        *weight += g.vwgt()[u as usize];
        for (v, w) in g.edges(u) {
            let v = v as usize;
            if in_region[v] {
                continue;
            }
            // Gain of absorbing v: edges to the region become internal.
            gain[v] += 2 * w as i64;
            version[v] += 1;
            heap.push((gain[v], v as u32, version[v]));
        }
    };

    // Initialize all gains as -(weighted degree) so the heap ordering is
    // the true FM gain of moving into the region.
    for (u, gslot) in gain.iter_mut().enumerate() {
        *gslot = -(g.weights(u as VId).iter().sum::<u64>() as i64);
    }
    add(
        start,
        &mut part,
        &mut in_region,
        &mut gain,
        &mut version,
        &mut heap,
        &mut weight,
    );

    while weight < target {
        let Some((gval, u, ver)) = heap.pop() else {
            // Frontier exhausted (should not happen on connected graphs
            // before reaching half weight); absorb any remaining vertex.
            if let Some(u) = (0..n as u32).find(|&u| !in_region[u as usize]) {
                add(
                    u,
                    &mut part,
                    &mut in_region,
                    &mut gain,
                    &mut version,
                    &mut heap,
                    &mut weight,
                );
                continue;
            }
            break;
        };
        let u = u as usize;
        if in_region[u] || ver != version[u] || gval != gain[u] {
            continue;
        }
        // Classic GGG: absorb the best-gain frontier vertex outright; the
        // final overshoot is at most one vertex weight and FM repairs it.
        add(
            u as u32,
            &mut part,
            &mut in_region,
            &mut gain,
            &mut version,
            &mut heap,
            &mut weight,
        );
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcg_graph::generators as gen;
    use mlcg_graph::metrics::{imbalance, part_weights};

    #[test]
    fn grows_balanced_region_on_grid() {
        let g = gen::grid2d(10, 10);
        let part = greedy_graph_growing(&g, 5);
        let (w0, w1) = part_weights(&g, &part);
        assert!(w0 >= 45 && w1 >= 45, "weights {w0}/{w1}");
    }

    #[test]
    fn region_is_connected() {
        let g = gen::grid2d(8, 8);
        let part = greedy_graph_growing(&g, 9);
        // Check part-0 connectivity by BFS within the region.
        let seed = (0..g.n()).find(|&u| part[u] == 0).unwrap() as u32;
        let mut seen = vec![false; g.n()];
        let mut q = std::collections::VecDeque::from([seed]);
        seen[seed as usize] = true;
        let mut count = 1;
        while let Some(u) = q.pop_front() {
            for &v in g.neighbors(u) {
                if part[v as usize] == 0 && !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    q.push_back(v);
                }
            }
        }
        assert_eq!(count, part.iter().filter(|&&p| p == 0).count());
    }

    #[test]
    fn weighted_vertices_respected() {
        let mut g = gen::path(6);
        g.set_vwgt(vec![1, 1, 4, 4, 1, 1]);
        let part = greedy_graph_growing(&g, 3);
        let (w0, w1) = part_weights(&g, &part);
        assert!(w0.max(w1) as f64 <= 1.6 * 6.0, "weights {w0}/{w1}");
        let _ = imbalance(&g, &part);
    }

    #[test]
    fn barbell_cut_found() {
        let mut edges = Vec::new();
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                edges.push((i, j));
                edges.push((i + 6, j + 6));
            }
        }
        edges.push((0, 6));
        let g = mlcg_graph::builder::from_edges_unit(12, &edges);
        let part = greedy_graph_growing(&g, 1);
        assert_eq!(edge_cut(&g, &part), 1);
    }

    #[test]
    fn single_vertex_graph() {
        let g = gen::path(1);
        let part = greedy_graph_growing(&g, 1);
        assert_eq!(part.len(), 1);
    }
}

//! Multilevel spectral bisection (the paper's primary case study).
//!
//! The Fiedler vector is computed on the coarsest graph by deflated power
//! iteration, interpolated up one level at a time, and re-refined by
//! further power iterations at each level ("multilevel refinement" with
//! the eigenvector as the solution being projected). The final bisection
//! splits at the weighted median of the finest vector, so the reported
//! cuts allow no imbalance — matching the paper's protocol. The stopping
//! criterion is the iterate 2-norm difference falling below 1e-10.

use crate::result::{audit_partition, split_weighted_median, PartitionResult};
use mlcg_coarsen::{coarsen, CoarsenOptions};
use mlcg_graph::Csr;
use mlcg_par::ExecPolicy;
use mlcg_sparse::fiedler::{fiedler_from_traced, fiedler_vector_traced};

/// Spectral bisection tuning.
#[derive(Clone, Debug)]
pub struct SpectralConfig {
    /// Power-iteration stopping tolerance (paper: 1e-10).
    pub tol: f64,
    /// Iteration cap on the coarsest graph.
    pub coarse_max_iters: usize,
    /// Iteration cap per refinement level (warm-started, so far fewer
    /// iterations are needed than on the coarsest graph).
    pub refine_max_iters: usize,
}

impl Default for SpectralConfig {
    fn default() -> Self {
        SpectralConfig {
            tol: 1e-10,
            coarse_max_iters: 20_000,
            refine_max_iters: 2_000,
        }
    }
}

/// Multilevel spectral bisection.
pub fn spectral_bisect(
    policy: &ExecPolicy,
    g: &Csr,
    coarsen_opts: &CoarsenOptions,
    cfg: &SpectralConfig,
    seed: u64,
) -> PartitionResult {
    let trace = coarsen_opts.trace.clone();
    let span = trace.timed_span(|| "partition/spectral/coarsen".to_string());
    let h = coarsen(policy, g, coarsen_opts);
    let coarsen_seconds = span.finish();

    let span = trace.timed_span(|| "partition/spectral/refine".to_string());
    let coarsest = h.coarsest();
    let mut x = fiedler_vector_traced(
        policy,
        coarsest,
        cfg.tol,
        cfg.coarse_max_iters,
        seed,
        &trace,
        "fiedler/coarsest",
    )
    .vector;
    for level in (0..h.num_levels()).rev() {
        x = h.interpolate_level(level, &x);
        x = fiedler_from_traced(
            policy,
            h.graph_above(level),
            x,
            cfg.tol,
            cfg.refine_max_iters,
            &trace,
            &format!("fiedler/level{level}"),
        )
        .vector;
    }
    let part = split_weighted_median(g, &x);
    let refine_seconds = span.finish();
    // The weighted-median split overshoots total/2 by at most one vertex.
    let max_vwgt = g.vwgt().iter().copied().max().unwrap_or(1) as f64;
    let cap = 1.0 + 2.0 * max_vwgt / g.total_vwgt().max(1) as f64 + 1e-9;
    audit_partition(&trace, "partition/spectral", g, &part, cap);
    PartitionResult::new(g, part, coarsen_seconds, refine_seconds, h.num_levels())
        .with_trace(trace.report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcg_coarsen::MapMethod;
    use mlcg_graph::generators as gen;
    use mlcg_graph::metrics::part_weights;

    fn opts(method: MapMethod) -> CoarsenOptions {
        CoarsenOptions {
            method,
            ..Default::default()
        }
    }

    #[test]
    fn grid_bisection_is_near_optimal_and_balanced() {
        let g = gen::grid2d(16, 8);
        let r = spectral_bisect(
            &ExecPolicy::serial(),
            &g,
            &opts(MapMethod::Hec),
            &SpectralConfig::default(),
            5,
        );
        // Optimal balanced cut of a 16x8 grid is 8 (split the long axis).
        assert!(r.cut <= 16, "spectral grid cut {}", r.cut);
        let (w0, w1) = part_weights(&g, &r.part);
        assert_eq!(w0, 64);
        assert_eq!(w1, 64);
    }

    #[test]
    fn barbell_bridge_found() {
        let mut edges = Vec::new();
        for i in 0..8u32 {
            for j in (i + 1)..8 {
                edges.push((i, j));
                edges.push((i + 8, j + 8));
            }
        }
        edges.push((0, 8));
        let g = mlcg_graph::builder::from_edges_unit(16, &edges);
        let r = spectral_bisect(
            &ExecPolicy::serial(),
            &g,
            &opts(MapMethod::Hec),
            &SpectralConfig::default(),
            3,
        );
        assert_eq!(r.cut, 1);
    }

    #[test]
    fn different_coarseners_give_valid_results() {
        let g = gen::grid2d(12, 12);
        for method in [
            MapMethod::Hec,
            MapMethod::Hem,
            MapMethod::MtMetis,
            MapMethod::Mis2,
        ] {
            let r = spectral_bisect(
                &ExecPolicy::serial(),
                &g,
                &opts(method),
                &SpectralConfig::default(),
                7,
            );
            let (w0, w1) = part_weights(&g, &r.part);
            assert_eq!(w0, w1, "{method:?} imbalanced");
            assert!(r.cut > 0 && r.cut < 144, "{method:?} cut {}", r.cut);
        }
    }

    #[test]
    fn timing_fields_populated() {
        let g = gen::grid2d(20, 20);
        let r = spectral_bisect(
            &ExecPolicy::serial(),
            &g,
            &opts(MapMethod::Hec),
            &SpectralConfig::default(),
            1,
        );
        assert!(r.coarsen_seconds > 0.0);
        assert!(r.refine_seconds > 0.0);
        assert!(r.levels >= 1);
        assert!((0.0..=1.0).contains(&r.coarsen_fraction()));
    }
}

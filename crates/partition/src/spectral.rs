//! Multilevel spectral bisection (the paper's primary case study).
//!
//! The Fiedler vector is computed on the coarsest graph by deflated power
//! iteration, interpolated up one level at a time, and re-refined by
//! further power iterations at each level ("multilevel refinement" with
//! the eigenvector as the solution being projected). The final bisection
//! splits at the weighted median of the finest vector, so the reported
//! cuts allow no imbalance — matching the paper's protocol. The stopping
//! criterion is the iterate 2-norm difference falling below 1e-10.

use crate::fm::FmConfig;
use crate::result::{audit_partition, split_weighted_median, PartitionResult};
use mlcg_coarsen::{coarsen, CoarsenOptions};
use mlcg_graph::Csr;
use mlcg_par::ExecPolicy;
use mlcg_sparse::fiedler::{fiedler_from_traced, fiedler_vector_traced};

/// Spectral bisection tuning.
#[derive(Clone, Debug)]
pub struct SpectralConfig {
    /// Power-iteration stopping tolerance (paper: 1e-10).
    pub tol: f64,
    /// Iteration cap on the coarsest graph.
    pub coarse_max_iters: usize,
    /// Iteration cap per refinement level (warm-started, so far fewer
    /// iterations are needed than on the coarsest graph).
    pub refine_max_iters: usize,
    /// Optional boundary-driven FM post-pass over the median split.
    ///
    /// `None` (the default) keeps the paper's pure-spectral protocol: the
    /// weighted-median split is final and allows no imbalance. `Some`
    /// polishes the split with [`fm_refine_boundary_traced`], trading up
    /// to the configured epsilon of imbalance for a lower cut.
    pub fm_polish: Option<FmConfig>,
}

impl Default for SpectralConfig {
    fn default() -> Self {
        SpectralConfig {
            tol: 1e-10,
            coarse_max_iters: 20_000,
            refine_max_iters: 2_000,
            fm_polish: None,
        }
    }
}

/// Multilevel spectral bisection.
pub fn spectral_bisect(
    policy: &ExecPolicy,
    g: &Csr,
    coarsen_opts: &CoarsenOptions,
    cfg: &SpectralConfig,
    seed: u64,
) -> PartitionResult {
    let trace = coarsen_opts.trace.clone();
    let span = trace.timed_span(|| "partition/spectral/coarsen".to_string());
    let h = coarsen(policy, g, coarsen_opts);
    let coarsen_seconds = span.finish();

    let span = trace.timed_span(|| "partition/spectral/refine".to_string());
    let coarsest = h.coarsest();
    let mut x = fiedler_vector_traced(
        policy,
        coarsest,
        cfg.tol,
        cfg.coarse_max_iters,
        seed,
        &trace,
        "fiedler/coarsest",
    )
    .vector;
    for level in (0..h.num_levels()).rev() {
        x = h.interpolate_level(level, &x);
        x = fiedler_from_traced(
            policy,
            h.graph_above(level),
            x,
            cfg.tol,
            cfg.refine_max_iters,
            &trace,
            &format!("fiedler/level{level}"),
        )
        .vector;
    }
    let mut part = split_weighted_median(g, &x);
    if let Some(fm_cfg) = &cfg.fm_polish {
        // Same crossover as the hybrid FM driver: parallel rounds strip
        // the bulk positive gains on large graphs, then the sequential
        // boundary FM polishes from the rounds' final frontier.
        crate::parref::rounds_then_polish(policy, g, &mut part, fm_cfg, 0.5, &trace);
    }
    let refine_seconds = span.finish();
    // The weighted-median split overshoots total/2 by at most one vertex;
    // an FM polish may additionally spend its configured imbalance budget.
    let max_vwgt = g.vwgt().iter().copied().max().unwrap_or(1) as f64;
    let mut cap = 1.0 + 2.0 * max_vwgt / g.total_vwgt().max(1) as f64 + 1e-9;
    if let Some(fm_cfg) = &cfg.fm_polish {
        cap += fm_cfg.epsilon;
        if fm_cfg.vertex_slack {
            cap += 2.0 * max_vwgt / g.total_vwgt().max(1) as f64;
        }
    }
    audit_partition(&trace, "partition/spectral", g, &part, cap);
    PartitionResult::new(g, part, coarsen_seconds, refine_seconds, h.num_levels())
        .with_trace(trace.report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcg_coarsen::MapMethod;
    use mlcg_graph::generators as gen;
    use mlcg_graph::metrics::part_weights;

    fn opts(method: MapMethod) -> CoarsenOptions {
        CoarsenOptions {
            method,
            ..Default::default()
        }
    }

    #[test]
    fn grid_bisection_is_near_optimal_and_balanced() {
        let g = gen::grid2d(16, 8);
        let r = spectral_bisect(
            &ExecPolicy::serial(),
            &g,
            &opts(MapMethod::Hec),
            &SpectralConfig::default(),
            5,
        );
        // Optimal balanced cut of a 16x8 grid is 8 (split the long axis).
        assert!(r.cut <= 16, "spectral grid cut {}", r.cut);
        let (w0, w1) = part_weights(&g, &r.part);
        assert_eq!(w0, 64);
        assert_eq!(w1, 64);
    }

    #[test]
    fn barbell_bridge_found() {
        let mut edges = Vec::new();
        for i in 0..8u32 {
            for j in (i + 1)..8 {
                edges.push((i, j));
                edges.push((i + 8, j + 8));
            }
        }
        edges.push((0, 8));
        let g = mlcg_graph::builder::from_edges_unit(16, &edges);
        let r = spectral_bisect(
            &ExecPolicy::serial(),
            &g,
            &opts(MapMethod::Hec),
            &SpectralConfig::default(),
            3,
        );
        assert_eq!(r.cut, 1);
    }

    #[test]
    fn different_coarseners_give_valid_results() {
        let g = gen::grid2d(12, 12);
        for method in [
            MapMethod::Hec,
            MapMethod::Hem,
            MapMethod::MtMetis,
            MapMethod::Mis2,
        ] {
            let r = spectral_bisect(
                &ExecPolicy::serial(),
                &g,
                &opts(method),
                &SpectralConfig::default(),
                7,
            );
            let (w0, w1) = part_weights(&g, &r.part);
            assert_eq!(w0, w1, "{method:?} imbalanced");
            assert!(r.cut > 0 && r.cut < 144, "{method:?} cut {}", r.cut);
        }
    }

    #[test]
    fn fm_polish_never_worsens_the_spectral_cut() {
        let g = gen::grid2d(16, 8);
        let plain = spectral_bisect(
            &ExecPolicy::serial(),
            &g,
            &opts(MapMethod::Hec),
            &SpectralConfig::default(),
            5,
        );
        let polished = spectral_bisect(
            &ExecPolicy::serial(),
            &g,
            &opts(MapMethod::Hec),
            &SpectralConfig {
                fm_polish: Some(crate::fm::FmConfig {
                    max_passes: 8,
                    epsilon: 0.0,
                    vertex_slack: false,
                }),
                ..Default::default()
            },
            5,
        );
        assert!(
            polished.cut <= plain.cut,
            "polish worsened cut: {} > {}",
            polished.cut,
            plain.cut
        );
        // epsilon 0 on a unit-weight even-total graph keeps exact balance.
        let (w0, w1) = part_weights(&g, &polished.part);
        assert_eq!(w0, w1);
    }

    #[test]
    fn timing_fields_populated() {
        let g = gen::grid2d(20, 20);
        let r = spectral_bisect(
            &ExecPolicy::serial(),
            &g,
            &opts(MapMethod::Hec),
            &SpectralConfig::default(),
            1,
        );
        assert!(r.coarsen_seconds > 0.0);
        assert!(r.refine_seconds > 0.0);
        assert!(r.levels >= 1);
        assert!((0.0..=1.0).contains(&r.coarsen_fraction()));
    }
}

//! Property-based tests for the frontier-based parallel refiner
//! (`mlcg_partition::parref`): cut monotonicity, incremental-cut
//! correctness, and the balance envelope — with and without the
//! sequential polish — across every test execution policy, plus a
//! multilevel test that the crossover heuristic actually runs parallel
//! rounds on coarse levels (observed through the `parref/rounds` trace
//! counter).
//!
//! Randomized via the dependency-free [`mlcg_par::proplite`] harness; a
//! failing case prints the seed that reproduces it.

use mlcg_coarsen::{coarsen, CoarsenOptions};
use mlcg_graph::cc::largest_component;
use mlcg_graph::metrics::{edge_cut, part_weights};
use mlcg_graph::{generators, Csr};
use mlcg_par::proplite::{run_cases, Gen};
use mlcg_par::{ExecPolicy, TraceCollector};
use mlcg_partition::fm::{fm_uncoarsen_frac_hybrid, FmConfig};
use mlcg_partition::parref::{
    parallel_refine, parallel_refine_rounds, ParRefConfig, ParRefWorkspace,
};

/// A graph from the family the issue names: grid2d, rmat (largest
/// component), path.
fn suite_graph(gen: &mut Gen) -> Csr {
    match gen.usize_in(0, 3) {
        0 => {
            let w = gen.usize_in(4, 13);
            let h = gen.usize_in(4, 13);
            generators::grid2d(w, h)
        }
        1 => largest_component(&generators::rmat(7, 6, 0.45, 0.22, 0.22, gen.u64())).0,
        _ => generators::path(gen.usize_in(8, 80)),
    }
}

fn balanced_random_part(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = mlcg_par::rng::Xoshiro256pp::new(seed);
    let mut part: Vec<u32> = (0..n).map(|_| rng.next_below(2) as u32).collect();
    loop {
        let ones = part.iter().filter(|&&p| p == 1).count();
        if ones.abs_diff(n - ones) <= 1 {
            break;
        }
        let from = u32::from(ones > n - ones);
        let idx = part.iter().position(|&p| p == from).unwrap();
        part[idx] = 1 - from;
    }
    part
}

/// The strict per-side weight cap [`ParRefConfig::epsilon`] promises for a
/// 50/50 split without vertex slack — mirrors `fm::Balance` so the tests
/// pin the public contract, not the implementation.
fn strict_bound(g: &Csr, epsilon: f64) -> u64 {
    let total = g.total_vwgt();
    let t0 = ((total as f64 * 0.5).round() as u64).min(total);
    let side = |t: u64| {
        (((t as f64) * (1.0 + epsilon)).floor() as u64).max((total as f64 * 0.5).ceil() as u64)
    };
    side(t0).max(side(total - t0))
}

#[test]
fn parallel_rounds_never_worsen_and_match_edge_cut() {
    run_cases(24, 0xC1, |gen| {
        let g = suite_graph(gen);
        let seed = gen.u64();
        let part = balanced_random_part(g.n(), seed);
        let before = edge_cut(&g, &part);
        let cfg = ParRefConfig {
            sequential_polish: false,
            ..Default::default()
        };
        for policy in ExecPolicy::all_test_policies() {
            let mut p = part.clone();
            let after = parallel_refine(&policy, &g, &mut p, &cfg);
            assert!(after <= before, "{policy}: worsened {before} -> {after}");
            assert_eq!(after, edge_cut(&g, &p), "{policy}: returned cut drifted");
        }
    });
}

#[test]
fn envelope_holds_without_polish() {
    // Regression territory for the pre-rewrite bug: the budget granted one
    // max-vertex past the strict limit and `sequential_polish: false`
    // shipped the overshoot. From a feasible start, the repair phase (or
    // the rollback-to-entry rule) must restore the strict envelope.
    run_cases(24, 0xC2, |gen| {
        let g = suite_graph(gen);
        let seed = gen.u64();
        let cfg = ParRefConfig {
            sequential_polish: false,
            ..Default::default()
        };
        let bound = strict_bound(&g, cfg.epsilon);
        for policy in ExecPolicy::all_test_policies() {
            let mut p = balanced_random_part(g.n(), seed);
            let before = edge_cut(&g, &p);
            let after = parallel_refine(&policy, &g, &mut p, &cfg);
            let (w0, w1) = part_weights(&g, &p);
            assert!(
                w0.max(w1) <= bound,
                "{policy}: weights {w0}/{w1} exceed strict bound {bound}"
            );
            assert!(after <= before, "{policy}: worsened {before} -> {after}");
            assert_eq!(after, edge_cut(&g, &p));
        }
    });
}

#[test]
fn envelope_holds_with_polish() {
    run_cases(24, 0xC3, |gen| {
        let g = suite_graph(gen);
        let seed = gen.u64();
        let cfg = ParRefConfig::default();
        assert!(cfg.sequential_polish);
        let bound = strict_bound(&g, cfg.epsilon);
        for policy in ExecPolicy::all_test_policies() {
            let mut p = balanced_random_part(g.n(), seed);
            let before = edge_cut(&g, &p);
            let after = parallel_refine(&policy, &g, &mut p, &cfg);
            let (w0, w1) = part_weights(&g, &p);
            assert!(
                w0.max(w1) <= bound,
                "{policy}: weights {w0}/{w1} exceed strict bound {bound}"
            );
            assert!(after <= before, "{policy}: worsened {before} -> {after}");
            assert_eq!(after, edge_cut(&g, &p));
        }
    });
}

#[test]
fn seeded_rounds_accept_any_boundary_covering_frontier() {
    // The engine's seeded entry point (the hybrid driver's path): a seed
    // covering the boundary — here the exact boundary plus random extras —
    // must give the same guarantees as the full-vertex seed.
    run_cases(24, 0xC4, |gen| {
        let g = suite_graph(gen);
        let seed = gen.u64();
        let part0 = balanced_random_part(g.n(), seed);
        let mut frontier: Vec<u32> = (0..g.n() as u32)
            .filter(|&u| {
                g.edges(u)
                    .any(|(v, _)| part0[u as usize] != part0[v as usize])
            })
            .collect();
        // Random interior extras exercise the superset contract.
        let mut rng = mlcg_par::rng::Xoshiro256pp::new(seed ^ 0x5eed);
        for _ in 0..g.n() / 4 {
            frontier.push(rng.next_below(g.n() as u64) as u32);
        }
        let before = edge_cut(&g, &part0);
        let cfg = ParRefConfig {
            sequential_polish: false,
            ..Default::default()
        };
        for policy in ExecPolicy::all_test_policies() {
            let mut p = part0.clone();
            let mut ws = ParRefWorkspace::new();
            let out = parallel_refine_rounds(
                &policy,
                &g,
                &mut p,
                &cfg,
                0.5,
                false,
                Some(&frontier),
                &mut ws,
                &TraceCollector::disabled(),
            );
            assert!(
                out.cut <= before,
                "{policy}: worsened {before} -> {}",
                out.cut
            );
            assert_eq!(out.cut, edge_cut(&g, &p), "{policy}: returned cut drifted");
            // The returned frontier must cover the final boundary (it
            // seeds the polish pass and the next level's projection).
            let mut in_f = vec![false; g.n()];
            for &u in &out.frontier {
                in_f[u as usize] = true;
            }
            for u in 0..g.n() as u32 {
                if g.edges(u).any(|(v, _)| p[u as usize] != p[v as usize]) {
                    assert!(
                        in_f[u as usize],
                        "{policy}: boundary vertex {u} not in frontier"
                    );
                }
            }
        }
    });
}

#[test]
fn crossover_runs_parallel_rounds_on_coarse_levels() {
    // The hybrid multilevel driver must actually engage the parallel
    // engine when the projected frontier crosses the threshold. A forced
    // low threshold makes every level eligible regardless of the host's
    // core count; the `parref/rounds` counter observes the engagement.
    let g = generators::grid2d(64, 64);
    let policy = ExecPolicy::host();
    let trace = TraceCollector::enabled();
    let opts = CoarsenOptions::default();
    let h = coarsen(&policy, &g, &opts);
    let parref = ParRefConfig {
        crossover_frontier: Some(1),
        ..Default::default()
    };
    let part =
        fm_uncoarsen_frac_hybrid(&policy, &h, &FmConfig::default(), &parref, 0.5, 42, &trace);
    let report = trace.report();
    assert!(
        report.counter("parref/rounds") > 0,
        "hybrid driver never ran a parallel round"
    );
    let cut = edge_cut(&g, &part);
    assert!(cut > 0 && cut <= 256, "implausible grid cut {cut}");
    let (w0, w1) = part_weights(&g, &part);
    let bound = strict_bound(&g, 0.02);
    assert!(w0.max(w1) <= bound, "weights {w0}/{w1} exceed {bound}");

    // Below the threshold the driver must stay sequential: a serial-policy
    // run records no parallel rounds.
    let trace_seq = TraceCollector::enabled();
    let h_seq = coarsen(&ExecPolicy::serial(), &g, &opts);
    fm_uncoarsen_frac_hybrid(
        &ExecPolicy::serial(),
        &h_seq,
        &FmConfig::default(),
        &parref,
        0.5,
        42,
        &trace_seq,
    );
    assert_eq!(
        trace_seq.report().counter("parref/rounds"),
        0,
        "serial policy must not take the parallel path"
    );
}

//! Property suite for direct k-way refinement (`mlcg_partition::kwayref`)
//! and its integration into `kway_partition_cfg`.
//!
//! The explicit matrix covers every test execution policy × 3 fixed
//! seeds × {grid2d, rmat, path} × k ∈ {2, 3, 5, 8} and asserts, for each
//! cell: labels in `0..k`, zero empty parts, reported cut equal to a
//! from-scratch `edge_cut`, the per-part balance envelope never worse
//! than the recursive-bisection entry, and a direct-refined cut at or
//! below the recursive-only cut. A proplite-randomized test stresses the
//! refiner alone from arbitrary (unbalanced) labelings, and dedicated
//! tests pin cross-policy determinism and crossover engagement.

use mlcg_coarsen::CoarsenOptions;
use mlcg_graph::cc::largest_component;
use mlcg_graph::metrics::edge_cut;
use mlcg_graph::{generators, Csr};
use mlcg_par::proplite::run_cases;
use mlcg_par::{ExecPolicy, TraceCollector};
use mlcg_partition::fm::FmConfig;
use mlcg_partition::kway::{
    kway_empty_parts, kway_imbalance, kway_partition_cfg, KwayConfig, KwayResult,
};
use mlcg_partition::kwayref::{kway_direct_refine, KwayRefineConfig};

/// The three graph families the issue names, three fixed instances each.
fn suite() -> Vec<(String, Csr)> {
    let mut graphs = Vec::new();
    for (w, h) in [(10usize, 10usize), (13, 9), (16, 16)] {
        graphs.push((format!("grid2d-{w}x{h}"), generators::grid2d(w, h)));
    }
    for seed in [1u64, 2, 3] {
        let g = largest_component(&generators::rmat(7, 6, 0.45, 0.22, 0.22, seed)).0;
        graphs.push((format!("rmat-7-s{seed}"), g));
    }
    for n in [33usize, 40, 64] {
        graphs.push((format!("path-{n}"), generators::path(n)));
    }
    graphs
}

/// Mirror of the refiner's strict per-part cap (`epsilon = 0.02`, no
/// vertex slack) — written out independently so the tests pin the public
/// envelope contract, not the implementation.
fn strict_bound(g: &Csr, k: usize, epsilon: f64) -> u64 {
    let total = g.total_vwgt();
    let target = total as f64 / k as f64;
    ((target * (1.0 + epsilon)).floor() as u64).max(target.ceil() as u64)
}

/// Total weight above the strict cap, summed over parts.
fn excess(g: &Csr, part: &[u32], k: usize, bound: u64) -> u64 {
    let mut w = vec![0u64; k];
    for (u, &p) in part.iter().enumerate() {
        w[p as usize] += g.vwgt()[u];
    }
    w.iter().map(|&x| x.saturating_sub(bound)).sum()
}

/// Weight of the heaviest part.
fn max_part_weight(g: &Csr, part: &[u32], k: usize) -> u64 {
    let mut w = vec![0u64; k];
    for (u, &p) in part.iter().enumerate() {
        w[p as usize] += g.vwgt()[u];
    }
    w.into_iter().max().unwrap_or(0)
}

fn run(policy: &ExecPolicy, g: &Csr, k: usize, direct: bool, seed: u64) -> KwayResult {
    let cfg = KwayConfig {
        direct_refine: direct,
        ..Default::default()
    };
    kway_partition_cfg(
        policy,
        g,
        k,
        &CoarsenOptions::default(),
        &FmConfig::default(),
        &cfg,
        seed,
        &TraceCollector::disabled(),
    )
}

#[test]
fn matrix_direct_refinement_dominates_recursive_bisection() {
    let eps = FmConfig::default().epsilon;
    for (name, g) in suite() {
        for k in [2usize, 3, 5, 8] {
            let bound = strict_bound(&g, k, eps);
            for seed in [3u64, 11, 42] {
                for policy in ExecPolicy::all_test_policies() {
                    let base = run(&policy, &g, k, false, seed);
                    let refined = run(&policy, &g, k, true, seed);
                    let ctx = format!("{name} k={k} seed={seed} {policy}");

                    assert!(
                        refined.part.iter().all(|&p| (p as usize) < k),
                        "{ctx}: label out of range"
                    );
                    assert_eq!(
                        kway_empty_parts(&refined.part, k),
                        0,
                        "{ctx}: empty part (labels {:?})",
                        refined.part
                    );
                    assert_eq!(
                        refined.cut,
                        edge_cut(&g, &refined.part),
                        "{ctx}: reported cut drifted"
                    );
                    assert_eq!(
                        refined.imbalance,
                        kway_imbalance(&g, &refined.part, k),
                        "{ctx}: reported imbalance drifted"
                    );
                    // Quality contract of the entry-slack post-pass: the
                    // direct-refined cut is at or below the recursive
                    // cut, unconditionally, and no part ever outgrows
                    // max(epsilon cap, heaviest recursive part) — so a
                    // balance-feasible recursive entry stays feasible and
                    // an infeasible one (the bisection cascade compounds
                    // its per-level epsilon) never gets worse.
                    assert!(
                        refined.cut <= base.cut,
                        "{ctx}: refined cut {} worse than recursive {}",
                        refined.cut,
                        base.cut
                    );
                    let cap = bound.max(max_part_weight(&g, &base.part, k));
                    assert!(
                        max_part_weight(&g, &refined.part, k) <= cap,
                        "{ctx}: a part outgrew the envelope (cap {cap})"
                    );
                    if excess(&g, &base.part, k, bound) == 0 {
                        assert_eq!(
                            excess(&g, &refined.part, k, bound),
                            0,
                            "{ctx}: envelope violation (bound {bound})"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn refiner_is_sound_from_arbitrary_labelings() {
    // The refiner alone, from random (generally unbalanced) k-labelings,
    // in both balance postures. With entry slack (the default) the cut
    // never ends worse and no part outgrows max(eps cap, entry max);
    // in repair mode (absolute eps cap) the lexicographic (excess, cut)
    // key never ends worse than the entry. Either way the incremental
    // cut stays exact and no part is emptied.
    run_cases(24, 0xD1, |gen| {
        let pick = gen.usize_in(0, 3);
        let g = match pick {
            0 => generators::grid2d(gen.usize_in(4, 13), gen.usize_in(4, 13)),
            1 => largest_component(&generators::rmat(7, 6, 0.45, 0.22, 0.22, gen.u64())).0,
            _ => generators::path(gen.usize_in(8, 80)),
        };
        let k = gen.usize_in(2, 9);
        let seed = gen.u64();
        let mut rng = mlcg_par::rng::Xoshiro256pp::new(seed);
        let part0: Vec<u32> = (0..g.n())
            .map(|_| rng.next_below(k as u64) as u32)
            .collect();
        let bound = strict_bound(&g, k, KwayRefineConfig::default().epsilon);
        let cut0 = edge_cut(&g, &part0);
        let cap = bound.max(max_part_weight(&g, &part0, k));
        let entry = (excess(&g, &part0, k, bound), cut0);
        let empties0 = kway_empty_parts(&part0, k);
        for policy in ExecPolicy::all_test_policies() {
            let cfg = KwayRefineConfig::default();
            let mut p = part0.clone();
            let cut = kway_direct_refine(&policy, &g, &mut p, k, &cfg, &TraceCollector::disabled());
            assert_eq!(cut, edge_cut(&g, &p), "{policy}: incremental cut drifted");
            assert!(cut <= cut0, "{policy}: cut worsened {cut0} -> {cut}");
            assert!(
                max_part_weight(&g, &p, k) <= cap,
                "{policy}: a part outgrew the entry-slack cap {cap}"
            );
            assert!(
                kway_empty_parts(&p, k) <= empties0,
                "{policy}: refinement emptied a part"
            );

            let repair = KwayRefineConfig {
                entry_slack: false,
                ..Default::default()
            };
            let mut p = part0.clone();
            let cut =
                kway_direct_refine(&policy, &g, &mut p, k, &repair, &TraceCollector::disabled());
            assert_eq!(cut, edge_cut(&g, &p), "{policy}: repair-mode cut drifted");
            let key = (excess(&g, &p, k, bound), cut);
            assert!(
                key <= entry,
                "{policy}: repair ended worse than entry ({key:?} > {entry:?})"
            );
            assert!(
                kway_empty_parts(&p, k) <= empties0,
                "{policy}: repair emptied a part"
            );
        }
    });
}

#[test]
fn kway_partition_is_deterministic_across_parallel_policies() {
    // The round engine's sequential selection phase makes the mover set a
    // pure function of (graph, partition, round) — so with the crossover
    // forced on, Host and DeviceSim must agree bit-for-bit.
    let g = generators::grid2d(32, 32);
    for k in [3usize, 8] {
        let cfg = KwayConfig {
            direct_refine: true,
            refine: KwayRefineConfig {
                crossover_frontier: Some(1),
                ..Default::default()
            },
        };
        let mut results: Vec<KwayResult> = Vec::new();
        for policy in [ExecPolicy::host(), ExecPolicy::device_sim()] {
            results.push(kway_partition_cfg(
                &policy,
                &g,
                k,
                &CoarsenOptions::default(),
                &FmConfig::default(),
                &cfg,
                9,
                &TraceCollector::disabled(),
            ));
        }
        assert_eq!(
            results[0].part, results[1].part,
            "k={k}: Host and DeviceSim labelings diverged"
        );
        assert_eq!(results[0].cut, results[1].cut, "k={k}: cuts diverged");
    }
}

#[test]
fn crossover_runs_kway_rounds_under_a_parallel_policy() {
    let g = generators::grid2d(32, 32);
    let cfg = KwayConfig {
        direct_refine: true,
        refine: KwayRefineConfig {
            crossover_frontier: Some(1),
            ..Default::default()
        },
    };
    let trace = TraceCollector::enabled();
    let r = kway_partition_cfg(
        &ExecPolicy::host(),
        &g,
        8,
        &CoarsenOptions::default(),
        &FmConfig::default(),
        &cfg,
        9,
        &trace,
    );
    let report = trace.report();
    assert!(
        report.counter("kwayref/rounds") > 0,
        "forced crossover must run k-way parallel rounds"
    );
    assert_eq!(report.counter("kway/direct_refine"), 1);
    assert_eq!(r.cut, edge_cut(&g, &r.part));

    // A serial policy must stay on the dispatch-free sequential path.
    let trace_seq = TraceCollector::enabled();
    kway_partition_cfg(
        &ExecPolicy::serial(),
        &g,
        8,
        &CoarsenOptions::default(),
        &FmConfig::default(),
        &cfg,
        9,
        &trace_seq,
    );
    assert_eq!(
        trace_seq.report().counter("kwayref/rounds"),
        0,
        "serial policy must not take the parallel path"
    );
}

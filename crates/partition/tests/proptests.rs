//! Property-based tests for the partitioners: refinement invariants,
//! balance envelopes, and k-way label well-formedness on random connected
//! weighted graphs.

use mlcg_coarsen::CoarsenOptions;
use mlcg_graph::builder::from_edges_weighted;
use mlcg_graph::cc::largest_component;
use mlcg_graph::metrics::{edge_cut, part_weights};
use mlcg_graph::Csr;
use mlcg_par::ExecPolicy;
use mlcg_partition::fm::{fm_refine_frac, FmConfig};
use mlcg_partition::ggg::greedy_graph_growing_frac;
use mlcg_partition::kway::{kway_imbalance, kway_partition};
use mlcg_partition::parref::{parallel_refine, ParRefConfig};
use proptest::prelude::*;

fn connected_graph() -> impl Strategy<Value = Csr> {
    (4usize..50, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = mlcg_par::rng::Xoshiro256pp::new(seed);
        let mut edges: Vec<(u32, u32, u64)> = Vec::new();
        for v in 1..n as u32 {
            let u = rng.next_below(v as u64) as u32;
            edges.push((u, v, 1 + rng.next_below(20)));
        }
        for _ in 0..2 * n {
            let a = rng.next_below(n as u64) as u32;
            let b = rng.next_below(n as u64) as u32;
            if a != b {
                edges.push((a, b, 1 + rng.next_below(20)));
            }
        }
        largest_component(&from_edges_weighted(n, &edges)).0
    })
}

fn balanced_random_part(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = mlcg_par::rng::Xoshiro256pp::new(seed);
    let mut part: Vec<u32> = (0..n).map(|_| rng.next_below(2) as u32).collect();
    loop {
        let ones = part.iter().filter(|&&p| p == 1).count();
        if ones.abs_diff(n - ones) <= 1 {
            break;
        }
        let from = u32::from(ones > n - ones);
        let idx = part.iter().position(|&p| p == from).unwrap();
        part[idx] = 1 - from;
    }
    part
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fractional_fm_respects_its_target(
        g in connected_graph(),
        seed in any::<u64>(),
        frac_pct in 30u64..=70,
    ) {
        let frac = frac_pct as f64 / 100.0;
        let mut part = balanced_random_part(g.n(), seed);
        let cfg = FmConfig::default();
        let cut = fm_refine_frac(&g, &mut part, &cfg, frac);
        prop_assert_eq!(cut, edge_cut(&g, &part));
        let total = g.total_vwgt();
        let (w0, w1) = part_weights(&g, &part);
        let max_vwgt = g.vwgt().iter().copied().max().unwrap_or(1);
        // Each side stays within epsilon + rounding + one vertex of its share.
        let bound0 = ((total as f64 * frac * 1.02).ceil() as u64) + max_vwgt;
        let bound1 = ((total as f64 * (1.0 - frac) * 1.02).ceil() as u64) + max_vwgt;
        prop_assert!(w0 <= bound0, "w0 {w0} > {bound0} (frac {frac})");
        prop_assert!(w1 <= bound1, "w1 {w1} > {bound1} (frac {frac})");
    }

    #[test]
    fn ggg_frac_hits_the_target_within_one_vertex(
        g in connected_graph(),
        seed in any::<u64>(),
        frac_pct in 25u64..=75,
    ) {
        let frac = frac_pct as f64 / 100.0;
        let part = greedy_graph_growing_frac(&g, seed, frac);
        let total = g.total_vwgt();
        let t0 = (total as f64 * frac).round() as u64;
        let (w0, _) = part_weights(&g, &part);
        let max_vwgt = g.vwgt().iter().copied().max().unwrap_or(1);
        prop_assert!(w0 >= t0.min(total), "region under target: {w0} < {t0}");
        prop_assert!(w0 <= t0 + max_vwgt, "region overshoot: {w0} > {t0} + {max_vwgt}");
    }

    #[test]
    fn parallel_refine_is_sound(
        g in connected_graph(),
        seed in any::<u64>(),
    ) {
        let mut part = balanced_random_part(g.n(), seed);
        let before = edge_cut(&g, &part);
        let cfg = ParRefConfig { sequential_polish: false, ..Default::default() };
        for policy in ExecPolicy::all_test_policies() {
            let mut p = part.clone();
            let after = parallel_refine(&policy, &g, &mut p, &cfg);
            prop_assert!(after <= before);
            prop_assert_eq!(after, edge_cut(&g, &p));
        }
        let _ = &mut part;
    }

    #[test]
    fn kway_labels_are_complete_and_bounded(
        g in connected_graph(),
        k in 2usize..6,
        seed in any::<u64>(),
    ) {
        let r = kway_partition(
            &ExecPolicy::serial(),
            &g,
            k,
            &CoarsenOptions::default(),
            &FmConfig::default(),
            seed,
        );
        prop_assert_eq!(r.part.len(), g.n());
        prop_assert!(r.part.iter().all(|&p| (p as usize) < k));
        prop_assert_eq!(r.cut, edge_cut(&g, &r.part));
        prop_assert_eq!(r.imbalance, kway_imbalance(&g, &r.part, k));
        // Tiny graphs cannot always fill every label; require it only when
        // there is room.
        if g.n() >= 4 * k {
            let mut used: Vec<u32> = r.part.clone();
            used.sort_unstable();
            used.dedup();
            prop_assert!(used.len() > k / 2, "only {} of {k} labels used", used.len());
        }
    }
}

//! Property-based tests for the partitioners: refinement invariants,
//! balance envelopes, and k-way label well-formedness on random connected
//! weighted graphs.
//!
//! Randomized via the dependency-free [`mlcg_par::proplite`] harness; a
//! failing case prints the seed that reproduces it.

use mlcg_coarsen::CoarsenOptions;
use mlcg_graph::builder::from_edges_weighted;
use mlcg_graph::cc::largest_component;
use mlcg_graph::metrics::{edge_cut, part_weights};
use mlcg_graph::Csr;
use mlcg_par::proplite::{run_cases, Gen};
use mlcg_par::ExecPolicy;
use mlcg_partition::fm::{fm_refine_frac, FmConfig};
use mlcg_partition::ggg::greedy_graph_growing_frac;
use mlcg_partition::kway::{kway_imbalance, kway_partition};
use mlcg_partition::parref::{parallel_refine, ParRefConfig};

fn connected_graph(g: &mut Gen) -> Csr {
    let n = g.usize_in(4, 50);
    let seed = g.u64();
    let mut rng = mlcg_par::rng::Xoshiro256pp::new(seed);
    let mut edges: Vec<(u32, u32, u64)> = Vec::new();
    for v in 1..n as u32 {
        let u = rng.next_below(v as u64) as u32;
        edges.push((u, v, 1 + rng.next_below(20)));
    }
    for _ in 0..2 * n {
        let a = rng.next_below(n as u64) as u32;
        let b = rng.next_below(n as u64) as u32;
        if a != b {
            edges.push((a, b, 1 + rng.next_below(20)));
        }
    }
    largest_component(&from_edges_weighted(n, &edges)).0
}

fn balanced_random_part(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = mlcg_par::rng::Xoshiro256pp::new(seed);
    let mut part: Vec<u32> = (0..n).map(|_| rng.next_below(2) as u32).collect();
    loop {
        let ones = part.iter().filter(|&&p| p == 1).count();
        if ones.abs_diff(n - ones) <= 1 {
            break;
        }
        let from = u32::from(ones > n - ones);
        let idx = part.iter().position(|&p| p == from).unwrap();
        part[idx] = 1 - from;
    }
    part
}

#[test]
fn fractional_fm_respects_its_target() {
    run_cases(32, 0xB1, |gen| {
        let g = connected_graph(gen);
        let seed = gen.u64();
        let frac = gen.usize_in(30, 71) as f64 / 100.0;
        let mut part = balanced_random_part(g.n(), seed);
        let cfg = FmConfig::default();
        let cut = fm_refine_frac(&g, &mut part, &cfg, frac);
        assert_eq!(cut, edge_cut(&g, &part));
        let total = g.total_vwgt();
        let (w0, w1) = part_weights(&g, &part);
        let max_vwgt = g.vwgt().iter().copied().max().unwrap_or(1);
        // Each side stays within epsilon + rounding + one vertex of its share.
        let bound0 = ((total as f64 * frac * 1.02).ceil() as u64) + max_vwgt;
        let bound1 = ((total as f64 * (1.0 - frac) * 1.02).ceil() as u64) + max_vwgt;
        assert!(w0 <= bound0, "w0 {w0} > {bound0} (frac {frac})");
        assert!(w1 <= bound1, "w1 {w1} > {bound1} (frac {frac})");
    });
}

#[test]
fn ggg_frac_hits_the_target_within_one_vertex() {
    run_cases(32, 0xB2, |gen| {
        let g = connected_graph(gen);
        let seed = gen.u64();
        let frac = gen.usize_in(25, 76) as f64 / 100.0;
        let part = greedy_graph_growing_frac(&g, seed, frac);
        let total = g.total_vwgt();
        let t0 = (total as f64 * frac).round() as u64;
        let (w0, _) = part_weights(&g, &part);
        let max_vwgt = g.vwgt().iter().copied().max().unwrap_or(1);
        assert!(w0 >= t0.min(total), "region under target: {w0} < {t0}");
        assert!(
            w0 <= t0 + max_vwgt,
            "region overshoot: {w0} > {t0} + {max_vwgt}"
        );
    });
}

/// A graph from the family the boundary-refinement issue names: grid2d,
/// rmat, path, plus the generic random connected weighted graph. The
/// returned flag marks power-law (rmat) instances, whose dense skewed
/// cores behave differently under boundary-restricted refinement.
fn boundary_suite_graph(gen: &mut Gen) -> (Csr, bool) {
    match gen.usize_in(0, 4) {
        0 => {
            let w = gen.usize_in(4, 13);
            let h = gen.usize_in(4, 13);
            (mlcg_graph::generators::grid2d(w, h), false)
        }
        1 => (
            largest_component(&mlcg_graph::generators::rmat(
                7,
                6,
                0.45,
                0.22,
                0.22,
                gen.u64(),
            ))
            .0,
            true,
        ),
        2 => (mlcg_graph::generators::path(gen.usize_in(8, 80)), false),
        _ => (connected_graph(gen), false),
    }
}

#[test]
fn boundary_fm_is_no_worse_than_full_scan() {
    // The comparison runs through the multilevel driver — the production
    // path — on the same hierarchy, initial partition, and seed, so only
    // the refinement strategy differs. (A *flat* comparison from a random
    // start is not meaningful: exhaustive full-scan FM can hill-climb
    // through interior negative-gain moves that boundary refinement by
    // design never attempts, and either side can win.)
    run_cases(32, 0xB5, |gen| {
        let (g, powerlaw) = boundary_suite_graph(gen);
        let seed = gen.u64();
        let cfg = FmConfig::default();
        let h = mlcg_coarsen::coarsen(&ExecPolicy::serial(), &g, &CoarsenOptions::default());
        let boundary_part = mlcg_partition::fm::fm_uncoarsen_frac(&h, &cfg, 0.5, seed);
        let boundary_cut = edge_cut(&g, &boundary_part);
        let (full_part, full_cut) =
            mlcg_partition::fm::fm_uncoarsen_frac_full_scan(&h, &cfg, 0.5, seed);
        // The full-scan path's incrementally maintained cut must agree
        // with a from-scratch recount (this also backs the internal
        // debug_assert, which release builds compile out).
        assert_eq!(
            full_cut,
            edge_cut(&g, &full_part),
            "incremental cut drifted"
        );
        // Structured instances: boundary refinement matches or beats the
        // full scan outright. Power-law instances get a small slack — the
        // full scan's exhaustive pass moves interior vertices too, and on
        // dense skewed cores that hill-climb occasionally lucks into a
        // slightly lower cut (a few percent), which boundary restriction
        // deliberately trades away for O(boundary) passes.
        let limit = if powerlaw {
            full_cut + (full_cut / 20).max(2)
        } else {
            full_cut
        };
        assert!(
            boundary_cut <= limit,
            "boundary-driven cut {boundary_cut} worse than full-scan {full_cut} (limit {limit})"
        );
    });
}

#[test]
fn boundary_fm_incremental_cut_matches_edge_cut() {
    run_cases(32, 0xB7, |gen| {
        let (g, _) = boundary_suite_graph(gen);
        let seed = gen.u64();
        let mut part = balanced_random_part(g.n(), seed);
        let cut = fm_refine_frac(&g, &mut part, &FmConfig::default(), 0.5);
        assert_eq!(cut, edge_cut(&g, &part), "incremental cut drifted");
    });
}

#[test]
fn boundary_fm_keeps_the_balance_envelope() {
    run_cases(24, 0xB6, |gen| {
        let (g, _) = boundary_suite_graph(gen);
        let seed = gen.u64();
        let mut part = balanced_random_part(g.n(), seed);
        let cfg = FmConfig::default();
        let cut = fm_refine_frac(&g, &mut part, &cfg, 0.5);
        assert_eq!(cut, edge_cut(&g, &part));
        let total = g.total_vwgt();
        let max_vwgt = g.vwgt().iter().copied().max().unwrap_or(1);
        let (w0, w1) = part_weights(&g, &part);
        let bound = ((total as f64 * 0.5 * (1.0 + cfg.epsilon)).ceil() as u64) + max_vwgt;
        assert!(w0.max(w1) <= bound, "weights {w0}/{w1} exceed {bound}");
    });
}

#[test]
fn parallel_refine_is_sound() {
    run_cases(32, 0xB3, |gen| {
        let g = connected_graph(gen);
        let seed = gen.u64();
        let part = balanced_random_part(g.n(), seed);
        let before = edge_cut(&g, &part);
        let cfg = ParRefConfig {
            sequential_polish: false,
            ..Default::default()
        };
        for policy in ExecPolicy::all_test_policies() {
            let mut p = part.clone();
            let after = parallel_refine(&policy, &g, &mut p, &cfg);
            assert!(after <= before, "refinement worsened {before} -> {after}");
            assert_eq!(after, edge_cut(&g, &p));
        }
    });
}

#[test]
fn kway_labels_are_complete_and_bounded() {
    run_cases(32, 0xB4, |gen| {
        let g = connected_graph(gen);
        let k = gen.usize_in(2, 6);
        let seed = gen.u64();
        let r = kway_partition(
            &ExecPolicy::serial(),
            &g,
            k,
            &CoarsenOptions::default(),
            &FmConfig::default(),
            seed,
        );
        assert_eq!(r.part.len(), g.n());
        assert!(r.part.iter().all(|&p| (p as usize) < k));
        assert_eq!(r.cut, edge_cut(&g, &r.part));
        assert_eq!(r.imbalance, kway_imbalance(&g, &r.part, k));
        // Tiny graphs cannot always fill every label; require it only when
        // there is room.
        if g.n() >= 4 * k {
            let mut used: Vec<u32> = r.part.clone();
            used.sort_unstable();
            used.dedup();
            assert!(used.len() > k / 2, "only {} of {k} labels used", used.len());
        }
    });
}

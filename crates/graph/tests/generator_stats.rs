//! Statistical sanity checks for the synthetic corpus generators: each
//! stand-in must exhibit the structural signature (degree distribution,
//! density class, skew) of the paper graph it replaces.

use mlcg_graph::cc::largest_component;
use mlcg_graph::generators as gen;
use mlcg_graph::metrics::DegreeStats;
use mlcg_graph::traverse::{degree_histogram, diameter_lower_bound};

#[test]
fn road_networks_have_large_diameter() {
    // europeOsm's signature: avg degree ~2, diameter in the hundreds.
    let (g, _) = largest_component(&gen::road(40, 40, 4, 0.08, 7));
    let d = diameter_lower_bound(&g, 0);
    assert!(
        d > 80,
        "road diameter lower bound {d} too small for a chain-subdivided grid"
    );
    assert!(g.avg_degree() < 2.6);
}

#[test]
fn small_world_has_small_diameter() {
    let g = gen::small_world(4000, 9, 0.2, 3);
    let d = diameter_lower_bound(&g, 17);
    assert!(d <= 12, "small world diameter {d} not small");
}

#[test]
fn rmat_degree_distribution_is_heavy_tailed() {
    let (g, _) = largest_component(&gen::rmat(13, 10, 0.57, 0.19, 0.19, 9));
    let hist = degree_histogram(&g);
    // Heavy tail: the histogram spans many octaves and high buckets are
    // populated.
    assert!(hist.len() >= 8, "only {} degree octaves", hist.len());
    // Monotone-ish decay from the mode: the top octave holds hubs only.
    let top_total: usize = hist[hist.len().saturating_sub(2)..].iter().sum();
    assert!(
        top_total < g.n() / 100,
        "too many hub-degree vertices: {top_total}"
    );
}

#[test]
fn meshes_are_degree_concentrated() {
    let g = gen::grid3d(12, 12, 12, gen::Stencil::Box27);
    let hist = degree_histogram(&g);
    // Interior degree 26 dominates => almost everything in one octave.
    let modal = *hist.iter().max().unwrap();
    assert!(
        modal as f64 > 0.5 * g.n() as f64,
        "mesh degrees too spread: {hist:?}"
    );
    assert!(!DegreeStats::of(&g).is_skewed());
}

#[test]
fn clique_overlays_have_high_clustering_signature() {
    // Near-clique structure: many triangles per edge. Count triangles on a
    // sample and require a high closure fraction.
    let (g, _) = largest_component(&gen::cliques_overlay(3000, 1200, 14, 5));
    // The popularity tilt makes low ids members of many overlapping
    // cliques (their wedges bridge cliques), so measure closure at
    // low-degree vertices — typical single-clique members.
    let mut wedges = 0u64;
    let mut closed = 0u64;
    for u in 0..g.n() as u32 {
        let nbrs = g.neighbors(u);
        if nbrs.len() > 16 {
            continue;
        }
        for i in 0..nbrs.len() {
            for j in (i + 1)..nbrs.len() {
                wedges += 1;
                if g.find_edge(nbrs[i], nbrs[j]).is_some() {
                    closed += 1;
                }
            }
        }
    }
    let closure = closed as f64 / wedges.max(1) as f64;
    assert!(
        closure > 0.25,
        "clique overlay closure {closure:.3} too low"
    );
}

#[test]
fn ba_tail_exceeds_poisson() {
    let g = gen::ba(8000, 5, 11);
    let stats = DegreeStats::of(&g);
    // A Poisson graph with the same mean would have max degree ~30;
    // preferential attachment grows hubs an order beyond.
    assert!(
        stats.max_degree > 100,
        "BA max degree {} too small",
        stats.max_degree
    );
}

#[test]
fn kmer_paths_have_tiny_average_degree_and_huge_diameter() {
    let (g, _) = largest_component(&gen::kmer_paths(40, 200, 20, 3));
    assert!(g.avg_degree() < 2.3);
    assert!(diameter_lower_bound(&g, 0) > 100);
}

#[test]
fn mycielskian_chromatic_growth_signature() {
    // Mycielski graphs are triangle-free yet dense: density grows while
    // the clique number stays 2 — verified here via the zero-triangle
    // property at increasing iterations plus the density trend.
    let m5 = gen::mycielskian(5);
    let m7 = gen::mycielskian(7);
    assert!(m7.avg_degree() > m5.avg_degree() * 2.0);
    for g in [&m5, &m7] {
        for u in 0..g.n() as u32 {
            for &v in g.neighbors(u) {
                if v > u {
                    for &w in g.neighbors(v) {
                        if w > v {
                            assert!(g.find_edge(w, u).is_none(), "triangle {u}-{v}-{w}");
                        }
                    }
                }
            }
        }
    }
}

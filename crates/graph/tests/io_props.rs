//! Property suite for graph IO and the streaming ingest substrate.
//!
//! Covers: write→read roundtrips for all three formats over the
//! {grid2d, rmat, path} generator families (unit- and random-weighted),
//! streamed ≡ in-memory bit-identity across chunk sizes, merge modes and
//! every test execution policy (both on suite graphs and on
//! proplite-randomized edge multisets with duplicates and self-loops),
//! file ingestion at randomized chunk sizes with staging-bound checks,
//! and malformed-input negatives (truncated size line, id ≥ 2³²,
//! zero weight, asymmetric METIS).

use mlcg_graph::builder::{from_edges_weighted, from_edges_with_mode, EDGE_ITEM_BYTES};
use mlcg_graph::cc::largest_component;
use mlcg_graph::io;
use mlcg_graph::stream::{build_csr, IngestOptions, SliceSource};
use mlcg_graph::{generators, Csr, MergeMode, VId, Weight};
use mlcg_par::proplite::run_cases;
use mlcg_par::ExecPolicy;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("mlcg-io-props-{}-{name}", std::process::id()));
    p
}

/// The three generator families the issue names. Every vertex of each
/// graph has degree ≥ 1 (rmat is reduced to its largest component), so
/// edge-list roundtrips preserve the vertex count.
fn suite() -> Vec<(String, Csr)> {
    vec![
        ("grid2d-12x9".to_string(), generators::grid2d(12, 9)),
        (
            "rmat-7".to_string(),
            largest_component(&generators::rmat(7, 6, 0.45, 0.22, 0.22, 1)).0,
        ),
        ("path-40".to_string(), generators::path(40)),
    ]
}

/// Deterministically re-weight a unit graph so the weighted roundtrip
/// exercises non-trivial weights.
fn reweight(g: &Csr) -> Csr {
    let mut edges: Vec<(VId, VId, Weight)> = Vec::new();
    for u in 0..g.n() as VId {
        for (v, _) in g.edges(u) {
            if v > u {
                edges.push((u, v, (u as u64 * 31 + v as u64 * 17) % 9 + 1));
            }
        }
    }
    from_edges_weighted(g.n(), &edges)
}

/// Each undirected edge once, as the builder's input convention.
fn upper_edges(g: &Csr) -> Vec<(VId, VId, Weight)> {
    let mut edges = Vec::with_capacity(g.m());
    for u in 0..g.n() as VId {
        for (v, w) in g.edges(u) {
            if v > u {
                edges.push((u, v, w));
            }
        }
    }
    edges
}

#[test]
fn roundtrip_matrix_all_formats_and_families() {
    for (name, base) in suite() {
        for (wname, g) in [("unit", base.clone()), ("weighted", reweight(&base))] {
            let ctx = format!("{name}-{wname}");

            let p = tmp(&format!("rt-{ctx}.mtx"));
            io::write_matrix_market(&g, &p).unwrap();
            assert_eq!(io::read_matrix_market(&p).unwrap(), g, "mtx {ctx}");
            std::fs::remove_file(&p).ok();

            let p = tmp(&format!("rt-{ctx}.graph"));
            io::write_metis(&g, &p).unwrap();
            assert_eq!(io::read_metis(&p).unwrap(), g, "metis {ctx}");
            std::fs::remove_file(&p).ok();

            let p = tmp(&format!("rt-{ctx}.txt"));
            io::write_edge_list(&g, &p).unwrap();
            assert_eq!(io::read_edge_list(&p).unwrap(), g, "edge list {ctx}");
            std::fs::remove_file(&p).ok();
        }
    }
}

#[test]
fn streamed_equals_in_memory_on_suite_graphs() {
    for (name, g) in suite() {
        let edges = upper_edges(&g);
        for chunk_edges in [1usize, 64, 1 << 20] {
            for policy in ExecPolicy::all_test_policies() {
                let label = format!("{name} chunk {chunk_edges} policy {policy}");
                let mut src = SliceSource::new(g.n(), &edges);
                let opts = IngestOptions {
                    chunk_edges,
                    policy,
                };
                let (streamed, stats) = build_csr(&mut src, MergeMode::Sum, &opts).unwrap();
                assert_eq!(streamed, g, "{label}");
                assert!(stats.offsets_are_u32, "{label}");
                assert_eq!(
                    stats.peak_staging_bytes,
                    chunk_edges * EDGE_ITEM_BYTES,
                    "staging bounded by chunk, not m: {label}"
                );
            }
        }
    }
}

/// Cross-check of the allocator-backed staging meter: the streamed
/// builder's measured peak heap must equal the predictable budget — the
/// chunk staging buffer plus the finished CSR — within 10%, at several
/// pinned chunkings. Serial policy so every allocation lands on the
/// measuring thread's scope.
#[test]
fn streamed_peak_heap_matches_staging_plus_csr() {
    let g = generators::grid2d(64, 64);
    let edges = upper_edges(&g);
    for chunk_edges in [256usize, 1024, 4096] {
        let opts = IngestOptions {
            chunk_edges,
            policy: ExecPolicy::serial(),
        };
        let ((streamed, stats), mem) = mlcg_par::mem::measure(|| {
            let mut src = SliceSource::new(g.n(), &edges);
            build_csr(&mut src, MergeMode::Sum, &opts).unwrap()
        });
        assert_eq!(streamed, g, "chunk {chunk_edges}");
        assert_eq!(stats.peak_staging_bytes, chunk_edges * EDGE_ITEM_BYTES);
        let expected = (stats.peak_staging_bytes + streamed.heap_bytes()) as f64;
        let ratio = mem.peak_bytes as f64 / expected;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "chunk {chunk_edges}: measured peak {} vs staging+CSR budget {} (ratio {ratio:.3})",
            mem.peak_bytes,
            expected as u64
        );
    }
}

#[test]
fn streamed_equals_in_memory_on_random_multisets() {
    run_cases(20, 0x10_77, |gen| {
        let n = gen.usize_in(1, 300);
        let m = gen.usize_in(0, 2000);
        // Raw multiset: duplicates, self-loops, isolated vertices likely.
        let edges: Vec<(VId, VId, Weight)> = (0..m)
            .map(|_| {
                (
                    gen.below(n as u64) as VId,
                    gen.below(n as u64) as VId,
                    gen.below(9) + 1,
                )
            })
            .collect();
        let chunk_edges = gen.usize_in(1, 2 * m.max(1));
        for mode in [MergeMode::Unit, MergeMode::Sum, MergeMode::Max] {
            let reference = from_edges_with_mode(&ExecPolicy::serial(), n, &edges, mode);
            reference.validate().unwrap();
            for policy in ExecPolicy::all_test_policies() {
                let label = format!("n={n} m={m} chunk={chunk_edges} mode={mode:?} {policy}");
                let mut src = SliceSource::new(n, &edges);
                let opts = IngestOptions {
                    chunk_edges,
                    policy,
                };
                let (streamed, _) = build_csr(&mut src, mode, &opts).unwrap();
                assert_eq!(streamed, reference, "{label}");
            }
        }
    });
}

#[test]
fn file_ingest_streamed_at_random_chunk_sizes() {
    let (name, g) = suite().swap_remove(1); // rmat: the irregular one
    let pm = tmp(&format!("chunked-{name}.mtx"));
    let pg = tmp(&format!("chunked-{name}.graph"));
    let pt = tmp(&format!("chunked-{name}.txt"));
    io::write_matrix_market(&g, &pm).unwrap();
    io::write_metis(&g, &pg).unwrap();
    io::write_edge_list(&g, &pt).unwrap();
    run_cases(12, 0xC4_11, |gen| {
        let opts = IngestOptions {
            chunk_edges: gen.usize_in(1, 2 * g.m()),
            policy: ExecPolicy::serial(),
        };
        for p in [&pm, &pg, &pt] {
            let (got, stats) = io::ingest_auto(p, &opts).unwrap();
            assert_eq!(got, g, "{} chunk {}", p.display(), opts.chunk_edges);
            assert_eq!(
                stats.peak_staging_bytes,
                opts.chunk_edges * EDGE_ITEM_BYTES,
                "staging bound for {}",
                p.display()
            );
            assert!(stats.offsets_are_u32);
        }
    });
    for p in [pm, pg, pt] {
        std::fs::remove_file(&p).ok();
    }
}

#[test]
fn malformed_inputs_rejected() {
    // Truncated Matrix Market size line.
    let p = tmp("neg-trunc.mtx");
    std::fs::write(
        &p,
        "%%MatrixMarket matrix coordinate pattern general\n4 4\n",
    )
    .unwrap();
    assert!(io::read_matrix_market(&p).is_err(), "truncated size line");
    std::fs::remove_file(&p).ok();

    // Matrix Market body shorter than the declared nnz.
    let p = tmp("neg-short.mtx");
    std::fs::write(
        &p,
        "%%MatrixMarket matrix coordinate pattern general\n3 3 3\n1 2\n",
    )
    .unwrap();
    assert!(io::read_matrix_market(&p).is_err(), "missing entries");
    std::fs::remove_file(&p).ok();

    // Edge-list id at/above the u32 id space.
    let p = tmp("neg-hugeid.txt");
    std::fs::write(&p, format!("0 {}\n", u32::MAX as u64)).unwrap();
    assert!(io::read_edge_list(&p).is_err(), "id >= 2^32 - 1");
    std::fs::remove_file(&p).ok();

    // Zero weight: edge list and METIS.
    let p = tmp("neg-zerow.txt");
    std::fs::write(&p, "0 1 0\n").unwrap();
    assert!(io::read_edge_list(&p).is_err(), "edge-list zero weight");
    std::fs::remove_file(&p).ok();

    let p = tmp("neg-zerow.graph");
    std::fs::write(&p, "2 1 001\n2 0\n1 0\n").unwrap();
    assert!(io::read_metis(&p).is_err(), "metis zero weight");
    std::fs::remove_file(&p).ok();

    // METIS: edges present only in the lower triangle.
    let p = tmp("neg-lower.graph");
    std::fs::write(&p, "2 1\n\n1\n").unwrap();
    assert!(io::read_metis(&p).is_err(), "lower-triangle-only metis");
    std::fs::remove_file(&p).ok();
}

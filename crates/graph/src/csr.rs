//! The compressed-sparse-row graph type.

use std::fmt;
use std::ops::Range;

/// Vertex identifier. `u32` bounds the workspace to 4.29 B vertices, which
/// comfortably covers the paper's corpus while halving index memory traffic.
pub type VId = u32;
/// Edge weight. Coarse weights are exact integer sums of fine weights.
pub type Weight = u64;
/// Vertex weight (aggregate size in a multilevel hierarchy).
pub type VWeight = u64;

/// Width-adaptive row-offset array.
///
/// The coarsening kernels are memory-bandwidth bound, so offset width is
/// a measurable cost on every row lookup. Offsets are stored as `u32`
/// whenever every value fits (`2m + 1 < 2³²`, true for anything short of
/// a ~4.29 B-entry adjacency) and as full `usize` otherwise. The width is
/// a pure function of the stored values, so equal graphs always compare
/// equal regardless of how they were built.
#[derive(Clone, PartialEq, Eq)]
pub enum Offsets {
    /// Narrow offsets: every value `< 2³²`. Halves offset-array traffic.
    U32(Vec<u32>),
    /// Full-width offsets for adjacencies with `2³² − 1` entries or more.
    Wide(Vec<usize>),
}

impl Offsets {
    /// Convert a full-width offset array, narrowing to `u32` when every
    /// value fits. This is the only constructor graph code should need;
    /// [`Offsets::wide`] exists for benchmarking the wide path.
    pub fn from_usize(xadj: Vec<usize>) -> Offsets {
        if xadj.iter().all(|&x| x <= u32::MAX as usize) {
            Offsets::U32(xadj.into_iter().map(|x| x as u32).collect())
        } else {
            Offsets::Wide(xadj)
        }
    }

    /// Keep full-width offsets regardless of range (benchmark baseline —
    /// production code paths always narrow via [`Offsets::from_usize`]).
    pub fn wide(xadj: Vec<usize>) -> Offsets {
        Offsets::Wide(xadj)
    }

    /// Force the wide representation in place (no-op if already wide).
    /// Used by `bench-ingest` to measure the u32-vs-usize SpMV gap.
    pub fn widen(&mut self) {
        if let Offsets::U32(v) = self {
            *self = Offsets::Wide(v.iter().map(|&x| x as usize).collect());
        }
    }

    /// Number of stored offsets (`n + 1` for a CSR with `n` rows).
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Offsets::U32(v) => v.len(),
            Offsets::Wide(v) => v.len(),
        }
    }

    /// True when no offsets are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th offset as a `usize`.
    #[inline]
    pub fn get(&self, i: usize) -> usize {
        match self {
            Offsets::U32(v) => v[i] as usize,
            Offsets::Wide(v) => v[i],
        }
    }

    /// The half-open range `offsets[i]..offsets[i + 1]` of row `i`.
    #[inline]
    pub fn range(&self, i: usize) -> Range<usize> {
        match self {
            Offsets::U32(v) => v[i] as usize..v[i + 1] as usize,
            Offsets::Wide(v) => v[i]..v[i + 1],
        }
    }

    /// The final offset (total entry count); `None` when empty.
    #[inline]
    pub fn last(&self) -> Option<usize> {
        match self {
            Offsets::U32(v) => v.last().map(|&x| x as usize),
            Offsets::Wide(v) => v.last().copied(),
        }
    }

    /// Whether the narrow `u32` representation is in use.
    #[inline]
    pub fn is_u32(&self) -> bool {
        matches!(self, Offsets::U32(_))
    }

    /// Heap bytes held by the offset array.
    pub fn bytes(&self) -> usize {
        match self {
            Offsets::U32(v) => v.len() * std::mem::size_of::<u32>(),
            Offsets::Wide(v) => v.len() * std::mem::size_of::<usize>(),
        }
    }

    /// Materialize as a full-width vector (interop / test helper; the
    /// accessors above avoid this copy on hot paths).
    pub fn to_vec(&self) -> Vec<usize> {
        match self {
            Offsets::U32(v) => v.iter().map(|&x| x as usize).collect(),
            Offsets::Wide(v) => v.clone(),
        }
    }

    /// Index of the first adjacent non-monotone pair, if any.
    pub fn first_non_monotone(&self) -> Option<usize> {
        (0..self.len().saturating_sub(1)).find(|&i| self.get(i) > self.get(i + 1))
    }
}

impl fmt::Debug for Offsets {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Offsets::U32(v) => write!(f, "Offsets::U32(len={})", v.len()),
            Offsets::Wide(v) => write!(f, "Offsets::Wide(len={})", v.len()),
        }
    }
}

/// An undirected graph in CSR form.
///
/// Invariants (checked by [`Csr::validate`]):
/// - `xadj` has `n + 1` monotone entries with `xadj[n] == adj.len()`;
/// - every undirected edge `{u, v}` is stored twice (in `u`'s and `v`'s
///   adjacency) with equal positive weight;
/// - no self-loops, no duplicate entries within a vertex's adjacency;
/// - `vwgt` has `n` positive entries.
#[derive(Clone, PartialEq, Eq)]
pub struct Csr {
    xadj: Offsets,
    adj: Vec<VId>,
    wgt: Vec<Weight>,
    vwgt: Vec<VWeight>,
}

impl Csr {
    /// Assemble a graph from raw CSR arrays with unit vertex weights.
    ///
    /// Callers are expected to uphold the type's invariants; `debug_assert`s
    /// and [`Csr::validate`] (used throughout the test suite) check them.
    pub fn from_parts(xadj: Vec<usize>, adj: Vec<VId>, wgt: Vec<Weight>) -> Self {
        let n = xadj.len().saturating_sub(1);
        let vwgt = vec![1; n];
        Self::from_parts_weighted(xadj, adj, wgt, vwgt)
    }

    /// Assemble a graph from raw CSR arrays with explicit vertex weights.
    pub fn from_parts_weighted(
        xadj: Vec<usize>,
        adj: Vec<VId>,
        wgt: Vec<Weight>,
        vwgt: Vec<VWeight>,
    ) -> Self {
        debug_assert!(!xadj.is_empty(), "xadj must have n+1 entries");
        debug_assert_eq!(*xadj.last().unwrap(), adj.len());
        debug_assert_eq!(adj.len(), wgt.len());
        debug_assert_eq!(vwgt.len(), xadj.len() - 1);
        Csr {
            xadj: Offsets::from_usize(xadj),
            adj,
            wgt,
            vwgt,
        }
    }

    /// Assemble a graph from a pre-built offset array (unit vertex weights).
    ///
    /// The builder uses this to hand over narrow offsets directly instead of
    /// materializing a full-width `Vec<usize>` just to have
    /// [`Offsets::from_usize`] throw it away. Callers must uphold the width
    /// rule (`U32` iff every value fits) so structural equality keeps
    /// working; the `debug_assert` checks it.
    pub fn from_offsets(xadj: Offsets, adj: Vec<VId>, wgt: Vec<Weight>) -> Self {
        debug_assert!(!xadj.is_empty(), "xadj must have n+1 entries");
        debug_assert_eq!(xadj.last().unwrap(), adj.len());
        debug_assert_eq!(adj.len(), wgt.len());
        debug_assert!(
            xadj.is_u32() || xadj.last().unwrap() > u32::MAX as usize,
            "width rule violated: narrowable offsets stored wide"
        );
        let n = xadj.len() - 1;
        let vwgt = vec![1; n];
        Csr {
            xadj,
            adj,
            wgt,
            vwgt,
        }
    }

    /// Exact heap bytes of the four CSR arrays (offsets, adjacency, edge
    /// weights, vertex weights), assuming capacity equals length — true for
    /// graphs produced by the builder and generators. This is the
    /// denominator-free "resident graph size" the memory benchmarks report
    /// bytes-per-edge against.
    pub fn heap_bytes(&self) -> usize {
        self.xadj.bytes()
            + self.adj.len() * std::mem::size_of::<VId>()
            + self.wgt.len() * std::mem::size_of::<Weight>()
            + self.vwgt.len() * std::mem::size_of::<VWeight>()
    }

    /// The empty graph.
    pub fn empty() -> Self {
        Csr {
            xadj: Offsets::from_usize(vec![0]),
            adj: vec![],
            wgt: vec![],
            vwgt: vec![],
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of undirected edges `m` (each stored twice internally).
    #[inline]
    pub fn m(&self) -> usize {
        self.adj.len() / 2
    }

    /// Number of directed adjacency entries (`2m`).
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.adj.len()
    }

    /// Graph size measure `2m + n` used by the paper's Fig. 3 normalization.
    #[inline]
    pub fn size(&self) -> usize {
        self.adj.len() + self.n()
    }

    /// The half-open adjacency range of vertex `u` in [`Csr::adj`] /
    /// [`Csr::wgt`]. This is the primitive every other row accessor is
    /// built on; it reads two offsets of whatever width the graph stores.
    #[inline]
    pub fn row_range(&self, u: VId) -> std::ops::Range<usize> {
        self.xadj.range(u as usize)
    }

    /// Degree of vertex `u`.
    #[inline]
    pub fn degree(&self, u: VId) -> usize {
        let r = self.row_range(u);
        r.end - r.start
    }

    /// Neighbors of `u`.
    #[inline]
    pub fn neighbors(&self, u: VId) -> &[VId] {
        &self.adj[self.row_range(u)]
    }

    /// Edge weights aligned with [`Csr::neighbors`].
    #[inline]
    pub fn weights(&self, u: VId) -> &[Weight] {
        &self.wgt[self.row_range(u)]
    }

    /// Iterate `(neighbor, weight)` pairs of `u`.
    #[inline]
    pub fn edges(&self, u: VId) -> impl Iterator<Item = (VId, Weight)> + '_ {
        let r = self.row_range(u);
        self.adj[r.clone()]
            .iter()
            .copied()
            .zip(self.wgt[r].iter().copied())
    }

    /// The width-adaptive row-offset array (`n + 1` entries).
    #[inline]
    pub fn offsets(&self) -> &Offsets {
        &self.xadj
    }

    /// Whether the offsets use the narrow `u32` representation
    /// (`2m + 1 < 2³²`).
    #[inline]
    pub fn offsets_are_u32(&self) -> bool {
        self.xadj.is_u32()
    }

    /// Materialize the offsets as a full-width vector. Interop/test
    /// helper — hot paths use [`Csr::row_range`] / [`Csr::degree`] /
    /// [`Csr::edges`] so the narrow representation stays narrow.
    pub fn xadj_vec(&self) -> Vec<usize> {
        self.xadj.to_vec()
    }

    /// Flat adjacency array (`2m` entries).
    #[inline]
    pub fn adj(&self) -> &[VId] {
        &self.adj
    }

    /// Flat edge-weight array (`2m` entries).
    #[inline]
    pub fn wgt(&self) -> &[Weight] {
        &self.wgt
    }

    /// Vertex weights (`n` entries).
    #[inline]
    pub fn vwgt(&self) -> &[VWeight] {
        &self.vwgt
    }

    /// Replace the vertex weights (used when lifting aggregates).
    pub fn set_vwgt(&mut self, vwgt: Vec<VWeight>) {
        assert_eq!(vwgt.len(), self.n());
        self.vwgt = vwgt;
    }

    /// Total vertex weight.
    pub fn total_vwgt(&self) -> VWeight {
        self.vwgt.iter().sum()
    }

    /// Sum of all edge weights, counting each undirected edge once.
    pub fn total_edge_weight(&self) -> Weight {
        self.wgt.iter().sum::<Weight>() / 2
    }

    /// Maximum vertex degree Δ.
    pub fn max_degree(&self) -> usize {
        (0..self.n() as VId)
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// Average degree `2m / n`.
    pub fn avg_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            self.adj.len() as f64 / self.n() as f64
        }
    }

    /// Degree-skew ratio `Δ / (2m/n)` — the paper's regular/skewed split key.
    pub fn skew_ratio(&self) -> f64 {
        let avg = self.avg_degree();
        if avg == 0.0 {
            0.0
        } else {
            self.max_degree() as f64 / avg
        }
    }

    /// Check all structural invariants; returns a description of the first
    /// violation found.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n();
        if self.xadj.get(0) != 0 {
            return Err("xadj[0] != 0".into());
        }
        if self.xadj.first_non_monotone().is_some() {
            return Err("xadj not monotone".into());
        }
        if self.xadj.last().unwrap() != self.adj.len() {
            return Err("xadj[n] != adj.len()".into());
        }
        if self.adj.len() != self.wgt.len() {
            return Err("adj/wgt length mismatch".into());
        }
        if self.vwgt.len() != n {
            return Err("vwgt length mismatch".into());
        }
        if !self.adj.len().is_multiple_of(2) {
            return Err("odd number of directed entries".into());
        }
        for u in 0..n as VId {
            let mut prev: Option<VId> = None;
            for (v, w) in self.edges(u) {
                if v as usize >= n {
                    return Err(format!("edge target {v} out of range at vertex {u}"));
                }
                if v == u {
                    return Err(format!("self-loop at vertex {u}"));
                }
                if w == 0 {
                    return Err(format!("zero edge weight on ({u},{v})"));
                }
                if let Some(p) = prev {
                    if v <= p {
                        return Err(format!("adjacency of {u} not strictly sorted"));
                    }
                }
                prev = Some(v);
            }
        }
        if self.vwgt.contains(&0) {
            return Err("zero vertex weight".into());
        }
        // Symmetry with matching weights: adjacency is sorted, so use binary
        // search from the far endpoint.
        for u in 0..n as VId {
            for (v, w) in self.edges(u) {
                match self.find_edge(v, u) {
                    Some(w2) if w2 == w => {}
                    Some(w2) => return Err(format!("asymmetric weight on ({u},{v}): {w} vs {w2}")),
                    None => return Err(format!("missing reverse edge ({v},{u})")),
                }
            }
        }
        Ok(())
    }

    /// Weight of edge `(u, v)` if present. Adjacency must be sorted (it is
    /// for all graphs built by this workspace).
    pub fn find_edge(&self, u: VId, v: VId) -> Option<Weight> {
        let nbrs = self.neighbors(u);
        nbrs.binary_search(&v).ok().map(|i| self.weights(u)[i])
    }

    /// A human-readable one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "n={} m={} avg_deg={:.1} max_deg={} skew={:.1}",
            self.n(),
            self.m(),
            self.avg_degree(),
            self.max_degree(),
            self.skew_ratio()
        )
    }
}

impl fmt::Debug for Csr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Csr({})", self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges_unit;

    fn triangle() -> Csr {
        from_edges_unit(3, &[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn triangle_basics() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.total_edge_weight(), 3);
        assert_eq!(g.size(), 9);
        g.validate().unwrap();
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        g.validate().unwrap();
    }

    #[test]
    fn find_edge_present_and_absent() {
        let g = triangle();
        assert_eq!(g.find_edge(0, 1), Some(1));
        assert_eq!(g.find_edge(1, 0), Some(1));
        let g2 = from_edges_unit(4, &[(0, 1), (2, 3)]);
        assert_eq!(g2.find_edge(0, 3), None);
    }

    #[test]
    fn skew_ratio_star() {
        // A star: hub degree n-1, leaves degree 1.
        let n = 11u32;
        let edges: Vec<(VId, VId)> = (1..n).map(|v| (0, v)).collect();
        let g = from_edges_unit(n as usize, &edges);
        assert_eq!(g.max_degree(), 10);
        assert!((g.avg_degree() - 20.0 / 11.0).abs() < 1e-12);
        assert!(g.skew_ratio() > 5.0);
    }

    #[test]
    fn validate_catches_self_loop() {
        let g = Csr::from_parts(vec![0, 1], vec![0], vec![1]);
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_catches_asymmetry() {
        // Edge 0->1 present, 1->0 missing.
        let g = Csr::from_parts(vec![0, 1, 1], vec![1], vec![1]);
        assert!(g.validate().unwrap_err().contains("odd number"));
    }

    #[test]
    fn validate_catches_weight_mismatch() {
        let g = Csr::from_parts(vec![0, 1, 2], vec![1, 0], vec![2, 3]);
        assert!(g.validate().unwrap_err().contains("asymmetric weight"));
    }

    #[test]
    fn row_range_matches_neighbors() {
        let g = triangle();
        for u in 0..3u32 {
            let r = g.row_range(u);
            assert_eq!(r.end - r.start, g.degree(u));
            assert_eq!(&g.adj()[r], g.neighbors(u));
        }
    }

    #[test]
    fn offsets_narrow_on_small_graphs() {
        let g = triangle();
        assert!(g.offsets_are_u32(), "2m + 1 < 2^32 must select u32");
        assert_eq!(g.xadj_vec(), vec![0, 2, 4, 6]);
        assert_eq!(g.offsets().bytes(), 4 * 4);
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    fn offsets_width_selection_rule() {
        // Representable max stays narrow; one past it goes wide. (Content
        // rule only — these are not valid CSR offsets.)
        let narrow = Offsets::from_usize(vec![0, u32::MAX as usize]);
        assert!(narrow.is_u32());
        assert_eq!(narrow.get(1), u32::MAX as usize);
        let wide = Offsets::from_usize(vec![0, u32::MAX as usize + 1]);
        assert!(!wide.is_u32());
        assert_eq!(wide.get(1), u32::MAX as usize + 1);
    }

    #[test]
    fn widen_preserves_values() {
        let g = triangle();
        let mut o = g.offsets().clone();
        o.widen();
        assert!(!o.is_u32());
        assert_eq!(o.to_vec(), g.xadj_vec());
        assert_eq!(o.range(1), g.row_range(1));
        o.widen(); // idempotent
        assert!(!o.is_u32());
    }

    #[test]
    fn non_monotone_offsets_detected() {
        let o = Offsets::from_usize(vec![0, 3, 2, 4]);
        assert_eq!(o.first_non_monotone(), Some(1));
        assert_eq!(
            Offsets::from_usize(vec![0, 1, 4]).first_non_monotone(),
            None
        );
    }

    #[test]
    fn vertex_weights_roundtrip() {
        let mut g = triangle();
        assert_eq!(g.total_vwgt(), 3);
        g.set_vwgt(vec![2, 3, 4]);
        assert_eq!(g.total_vwgt(), 9);
        g.validate().unwrap();
    }
}

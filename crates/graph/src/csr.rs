//! The compressed-sparse-row graph type.

use std::fmt;

/// Vertex identifier. `u32` bounds the workspace to 4.29 B vertices, which
/// comfortably covers the paper's corpus while halving index memory traffic.
pub type VId = u32;
/// Edge weight. Coarse weights are exact integer sums of fine weights.
pub type Weight = u64;
/// Vertex weight (aggregate size in a multilevel hierarchy).
pub type VWeight = u64;

/// An undirected graph in CSR form.
///
/// Invariants (checked by [`Csr::validate`]):
/// - `xadj` has `n + 1` monotone entries with `xadj[n] == adj.len()`;
/// - every undirected edge `{u, v}` is stored twice (in `u`'s and `v`'s
///   adjacency) with equal positive weight;
/// - no self-loops, no duplicate entries within a vertex's adjacency;
/// - `vwgt` has `n` positive entries.
#[derive(Clone, PartialEq, Eq)]
pub struct Csr {
    xadj: Vec<usize>,
    adj: Vec<VId>,
    wgt: Vec<Weight>,
    vwgt: Vec<VWeight>,
}

impl Csr {
    /// Assemble a graph from raw CSR arrays with unit vertex weights.
    ///
    /// Callers are expected to uphold the type's invariants; `debug_assert`s
    /// and [`Csr::validate`] (used throughout the test suite) check them.
    pub fn from_parts(xadj: Vec<usize>, adj: Vec<VId>, wgt: Vec<Weight>) -> Self {
        let n = xadj.len().saturating_sub(1);
        let vwgt = vec![1; n];
        Self::from_parts_weighted(xadj, adj, wgt, vwgt)
    }

    /// Assemble a graph from raw CSR arrays with explicit vertex weights.
    pub fn from_parts_weighted(
        xadj: Vec<usize>,
        adj: Vec<VId>,
        wgt: Vec<Weight>,
        vwgt: Vec<VWeight>,
    ) -> Self {
        debug_assert!(!xadj.is_empty(), "xadj must have n+1 entries");
        debug_assert_eq!(*xadj.last().unwrap(), adj.len());
        debug_assert_eq!(adj.len(), wgt.len());
        debug_assert_eq!(vwgt.len(), xadj.len() - 1);
        Csr {
            xadj,
            adj,
            wgt,
            vwgt,
        }
    }

    /// The empty graph.
    pub fn empty() -> Self {
        Csr {
            xadj: vec![0],
            adj: vec![],
            wgt: vec![],
            vwgt: vec![],
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of undirected edges `m` (each stored twice internally).
    #[inline]
    pub fn m(&self) -> usize {
        self.adj.len() / 2
    }

    /// Number of directed adjacency entries (`2m`).
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.adj.len()
    }

    /// Graph size measure `2m + n` used by the paper's Fig. 3 normalization.
    #[inline]
    pub fn size(&self) -> usize {
        self.adj.len() + self.n()
    }

    /// Degree of vertex `u`.
    #[inline]
    pub fn degree(&self, u: VId) -> usize {
        self.xadj[u as usize + 1] - self.xadj[u as usize]
    }

    /// Neighbors of `u`.
    #[inline]
    pub fn neighbors(&self, u: VId) -> &[VId] {
        &self.adj[self.xadj[u as usize]..self.xadj[u as usize + 1]]
    }

    /// Edge weights aligned with [`Csr::neighbors`].
    #[inline]
    pub fn weights(&self, u: VId) -> &[Weight] {
        &self.wgt[self.xadj[u as usize]..self.xadj[u as usize + 1]]
    }

    /// Iterate `(neighbor, weight)` pairs of `u`.
    #[inline]
    pub fn edges(&self, u: VId) -> impl Iterator<Item = (VId, Weight)> + '_ {
        self.neighbors(u)
            .iter()
            .copied()
            .zip(self.weights(u).iter().copied())
    }

    /// Row offset array (`n + 1` entries).
    #[inline]
    pub fn xadj(&self) -> &[usize] {
        &self.xadj
    }

    /// Flat adjacency array (`2m` entries).
    #[inline]
    pub fn adj(&self) -> &[VId] {
        &self.adj
    }

    /// Flat edge-weight array (`2m` entries).
    #[inline]
    pub fn wgt(&self) -> &[Weight] {
        &self.wgt
    }

    /// Vertex weights (`n` entries).
    #[inline]
    pub fn vwgt(&self) -> &[VWeight] {
        &self.vwgt
    }

    /// Replace the vertex weights (used when lifting aggregates).
    pub fn set_vwgt(&mut self, vwgt: Vec<VWeight>) {
        assert_eq!(vwgt.len(), self.n());
        self.vwgt = vwgt;
    }

    /// Total vertex weight.
    pub fn total_vwgt(&self) -> VWeight {
        self.vwgt.iter().sum()
    }

    /// Sum of all edge weights, counting each undirected edge once.
    pub fn total_edge_weight(&self) -> Weight {
        self.wgt.iter().sum::<Weight>() / 2
    }

    /// Maximum vertex degree Δ.
    pub fn max_degree(&self) -> usize {
        (0..self.n() as VId)
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// Average degree `2m / n`.
    pub fn avg_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            self.adj.len() as f64 / self.n() as f64
        }
    }

    /// Degree-skew ratio `Δ / (2m/n)` — the paper's regular/skewed split key.
    pub fn skew_ratio(&self) -> f64 {
        let avg = self.avg_degree();
        if avg == 0.0 {
            0.0
        } else {
            self.max_degree() as f64 / avg
        }
    }

    /// Check all structural invariants; returns a description of the first
    /// violation found.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n();
        if *self.xadj.first().unwrap() != 0 {
            return Err("xadj[0] != 0".into());
        }
        if self.xadj.windows(2).any(|w| w[0] > w[1]) {
            return Err("xadj not monotone".into());
        }
        if *self.xadj.last().unwrap() != self.adj.len() {
            return Err("xadj[n] != adj.len()".into());
        }
        if self.adj.len() != self.wgt.len() {
            return Err("adj/wgt length mismatch".into());
        }
        if self.vwgt.len() != n {
            return Err("vwgt length mismatch".into());
        }
        if !self.adj.len().is_multiple_of(2) {
            return Err("odd number of directed entries".into());
        }
        for u in 0..n as VId {
            let mut prev: Option<VId> = None;
            for (v, w) in self.edges(u) {
                if v as usize >= n {
                    return Err(format!("edge target {v} out of range at vertex {u}"));
                }
                if v == u {
                    return Err(format!("self-loop at vertex {u}"));
                }
                if w == 0 {
                    return Err(format!("zero edge weight on ({u},{v})"));
                }
                if let Some(p) = prev {
                    if v <= p {
                        return Err(format!("adjacency of {u} not strictly sorted"));
                    }
                }
                prev = Some(v);
            }
        }
        if self.vwgt.contains(&0) {
            return Err("zero vertex weight".into());
        }
        // Symmetry with matching weights: adjacency is sorted, so use binary
        // search from the far endpoint.
        for u in 0..n as VId {
            for (v, w) in self.edges(u) {
                match self.find_edge(v, u) {
                    Some(w2) if w2 == w => {}
                    Some(w2) => return Err(format!("asymmetric weight on ({u},{v}): {w} vs {w2}")),
                    None => return Err(format!("missing reverse edge ({v},{u})")),
                }
            }
        }
        Ok(())
    }

    /// Weight of edge `(u, v)` if present. Adjacency must be sorted (it is
    /// for all graphs built by this workspace).
    pub fn find_edge(&self, u: VId, v: VId) -> Option<Weight> {
        let nbrs = self.neighbors(u);
        nbrs.binary_search(&v).ok().map(|i| self.weights(u)[i])
    }

    /// A human-readable one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "n={} m={} avg_deg={:.1} max_deg={} skew={:.1}",
            self.n(),
            self.m(),
            self.avg_degree(),
            self.max_degree(),
            self.skew_ratio()
        )
    }
}

impl fmt::Debug for Csr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Csr({})", self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges_unit;

    fn triangle() -> Csr {
        from_edges_unit(3, &[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn triangle_basics() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.total_edge_weight(), 3);
        assert_eq!(g.size(), 9);
        g.validate().unwrap();
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        g.validate().unwrap();
    }

    #[test]
    fn find_edge_present_and_absent() {
        let g = triangle();
        assert_eq!(g.find_edge(0, 1), Some(1));
        assert_eq!(g.find_edge(1, 0), Some(1));
        let g2 = from_edges_unit(4, &[(0, 1), (2, 3)]);
        assert_eq!(g2.find_edge(0, 3), None);
    }

    #[test]
    fn skew_ratio_star() {
        // A star: hub degree n-1, leaves degree 1.
        let n = 11u32;
        let edges: Vec<(VId, VId)> = (1..n).map(|v| (0, v)).collect();
        let g = from_edges_unit(n as usize, &edges);
        assert_eq!(g.max_degree(), 10);
        assert!((g.avg_degree() - 20.0 / 11.0).abs() < 1e-12);
        assert!(g.skew_ratio() > 5.0);
    }

    #[test]
    fn validate_catches_self_loop() {
        let g = Csr::from_parts(vec![0, 1], vec![0], vec![1]);
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_catches_asymmetry() {
        // Edge 0->1 present, 1->0 missing.
        let g = Csr::from_parts(vec![0, 1, 1], vec![1], vec![1]);
        assert!(g.validate().unwrap_err().contains("odd number"));
    }

    #[test]
    fn validate_catches_weight_mismatch() {
        let g = Csr::from_parts(vec![0, 1, 2], vec![1, 0], vec![2, 3]);
        assert!(g.validate().unwrap_err().contains("asymmetric weight"));
    }

    #[test]
    fn vertex_weights_roundtrip() {
        let mut g = triangle();
        assert_eq!(g.total_vwgt(), 3);
        g.set_vwgt(vec![2, 3, 4]);
        assert_eq!(g.total_vwgt(), 9);
        g.validate().unwrap();
    }
}

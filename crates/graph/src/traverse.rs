//! Traversal utilities: BFS distances, eccentricity/diameter estimation,
//! and degree histograms — used by the harness for corpus
//! characterization and by tests as structural oracles.

use crate::csr::{Csr, VId};
use std::collections::VecDeque;

/// BFS hop distances from `source` (`usize::MAX` for unreachable).
pub fn bfs_distances(g: &Csr, source: VId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.n()];
    let mut q = VecDeque::new();
    dist[source as usize] = 0;
    q.push_back(source);
    while let Some(u) = q.pop_front() {
        let d = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == usize::MAX {
                dist[v as usize] = d + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// Eccentricity of a vertex (max finite BFS distance).
pub fn eccentricity(g: &Csr, source: VId) -> usize {
    bfs_distances(g, source)
        .into_iter()
        .filter(|&d| d != usize::MAX)
        .max()
        .unwrap_or(0)
}

/// Lower bound on the diameter by the double-sweep heuristic: BFS from
/// `seed`, then BFS again from the farthest vertex found. Exact on trees.
pub fn diameter_lower_bound(g: &Csr, seed: VId) -> usize {
    if g.n() == 0 {
        return 0;
    }
    let d1 = bfs_distances(g, seed);
    let far = d1
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != usize::MAX)
        .max_by_key(|&(_, &d)| d)
        .map(|(u, _)| u as VId)
        .unwrap_or(seed);
    eccentricity(g, far)
}

/// Degree histogram in power-of-two buckets: entry `i` counts vertices
/// with degree in `[2^i, 2^(i+1))`; entry 0 also counts degree-0 and 1.
pub fn degree_histogram(g: &Csr) -> Vec<usize> {
    let mut hist: Vec<usize> = Vec::new();
    for u in 0..g.n() as VId {
        let d = g.degree(u);
        let bucket = if d <= 1 {
            0
        } else {
            (usize::BITS - d.leading_zeros()) as usize - 1
        };
        if bucket >= hist.len() {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators as gen;

    #[test]
    fn path_distances() {
        let g = gen::path(6);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(bfs_distances(&g, 3), vec![3, 2, 1, 0, 1, 2]);
        assert_eq!(eccentricity(&g, 0), 5);
        assert_eq!(eccentricity(&g, 3), 3);
    }

    #[test]
    fn unreachable_is_max() {
        let g = crate::builder::from_edges_unit(4, &[(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], usize::MAX);
        assert_eq!(d[3], usize::MAX);
    }

    #[test]
    fn double_sweep_exact_on_path() {
        let g = gen::path(40);
        // Start from the middle: single BFS sees 20, double sweep sees 39.
        assert_eq!(diameter_lower_bound(&g, 20), 39);
    }

    #[test]
    fn grid_diameter_bound() {
        let g = gen::grid2d(8, 5);
        let lb = diameter_lower_bound(&g, 17);
        assert!(lb >= 7 + 4, "grid diameter lb {lb}");
        assert!(lb <= 11);
    }

    #[test]
    fn histogram_buckets() {
        let g = gen::star(10); // hub degree 9, leaves degree 1
        let h = degree_histogram(&g);
        assert_eq!(h[0], 9, "nine degree-1 leaves");
        assert_eq!(h[3], 1, "hub in bucket [8,16)");
        assert_eq!(h.iter().sum::<usize>(), 10);
    }
}

//! Connected components and largest-component extraction.
//!
//! The paper preprocesses every input graph by extracting the largest
//! connected component and relabeling vertex identifiers; the coarsening
//! algorithms then assume connectivity (HEC's heavy neighbor "always
//! exists"). We use a sequential union–find with path halving and union by
//! size — linear in practice and robust for any topology.

use crate::csr::{Csr, VId, Weight};

/// Union–find over `0..n`.
pub struct Dsu {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl Dsu {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let g = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = g;
            x = g;
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns false if already joined.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        true
    }
}

/// Parallel connected components in the Shiloach–Vishkin style: repeated
/// min-label hooking followed by pointer jumping, running under the given
/// execution policy. Returns contiguous labels and the component count;
/// agrees exactly with [`components`] up to label permutation (asserted
/// by the test suite).
pub fn components_par(policy: &mlcg_par::ExecPolicy, g: &Csr) -> (Vec<u32>, usize) {
    use mlcg_par::atomic::as_atomic_u32;
    use std::sync::atomic::Ordering;

    let n = g.n();
    if n == 0 {
        return (vec![], 0);
    }
    let mut parent: Vec<u32> = (0..n as u32).collect();
    loop {
        // Hook: point each root at the smallest neighboring root.
        let mut changed = false;
        {
            let p_at = as_atomic_u32(&mut parent);
            let changed_flag = std::sync::atomic::AtomicBool::new(false);
            mlcg_par::parallel_for(policy, n, |u| {
                let pu = p_at[u].load(Ordering::Relaxed);
                for &v in g.neighbors(u as VId) {
                    let pv = p_at[v as usize].load(Ordering::Relaxed);
                    if pv < pu {
                        // Atomic min-hook onto u's current root.
                        let mut cur = p_at[pu as usize].load(Ordering::Relaxed);
                        while pv < cur {
                            match p_at[pu as usize].compare_exchange_weak(
                                cur,
                                pv,
                                Ordering::AcqRel,
                                Ordering::Relaxed,
                            ) {
                                Ok(_) => {
                                    changed_flag.store(true, Ordering::Relaxed);
                                    break;
                                }
                                Err(now) => cur = now,
                            }
                        }
                    }
                }
            });
            changed = changed_flag.load(Ordering::Relaxed) || changed;
        }
        // Jump: full path compression.
        {
            let snapshot = parent.clone();
            let base = parent.as_mut_ptr() as usize;
            let snap = &snapshot;
            mlcg_par::parallel_for(policy, n, move |u| {
                let mut r = snap[u] as usize;
                while snap[r] as usize != r {
                    r = snap[r] as usize;
                }
                // SAFETY: disjoint writes per index.
                unsafe {
                    (base as *mut u32).add(u).write(r as u32);
                }
            });
        }
        if !changed {
            break;
        }
    }
    // Compact labels.
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    for u in 0..n {
        let r = parent[u] as usize;
        if label[r] == u32::MAX {
            label[r] = next;
            next += 1;
        }
        label[u] = label[r];
    }
    (label, next as usize)
}

/// Component labels (contiguous from 0) and the component count.
pub fn components(g: &Csr) -> (Vec<u32>, usize) {
    let n = g.n();
    let mut dsu = Dsu::new(n);
    for u in 0..n as VId {
        for &v in g.neighbors(u) {
            if v > u {
                dsu.union(u, v);
            }
        }
    }
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    for u in 0..n as u32 {
        let r = dsu.find(u) as usize;
        if label[r] == u32::MAX {
            label[r] = next;
            next += 1;
        }
        label[u as usize] = label[r];
    }
    (label, next as usize)
}

/// True if the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Csr) -> bool {
    g.n() <= 1 || components(g).1 == 1
}

/// Extract the subgraph induced by `ids` (strictly ascending, so the
/// relabeled adjacency stays sorted), relabeling vertex `ids[i]` to `i`.
/// Vertex and edge weights carry over. Returns the subgraph and the
/// old→new id map (`u32::MAX` for dropped vertices).
pub fn induced_subgraph(g: &Csr, ids: &[u32]) -> (Csr, Vec<u32>) {
    assert!(
        ids.windows(2).all(|w| w[0] < w[1]),
        "induced_subgraph: ids must be ascending"
    );
    let mut newid = vec![u32::MAX; g.n()];
    for (i, &u) in ids.iter().enumerate() {
        newid[u as usize] = i as u32;
    }
    let nc = ids.len();
    let mut xadj = vec![0usize; nc + 1];
    for (i, &u) in ids.iter().enumerate() {
        xadj[i + 1] = g
            .neighbors(u)
            .iter()
            .filter(|&&v| newid[v as usize] != u32::MAX)
            .count();
    }
    for i in 0..nc {
        xadj[i + 1] += xadj[i];
    }
    let mut adj: Vec<VId> = Vec::with_capacity(xadj[nc]);
    let mut wgt: Vec<Weight> = Vec::with_capacity(xadj[nc]);
    let mut vwgt = Vec::with_capacity(nc);
    for &u in ids {
        for (v, w) in g.edges(u) {
            if newid[v as usize] != u32::MAX {
                adj.push(newid[v as usize]);
                wgt.push(w);
            }
        }
        vwgt.push(g.vwgt()[u as usize]);
    }
    (Csr::from_parts_weighted(xadj, adj, wgt, vwgt), newid)
}

/// Extract the largest connected component, relabeling vertices to
/// `0..n_c` in order of their original identifiers. Vertex and edge weights
/// are carried over. Returns the subgraph and the old→new id map
/// (`u32::MAX` for dropped vertices).
pub fn largest_component(g: &Csr) -> (Csr, Vec<u32>) {
    let n = g.n();
    if n == 0 {
        return (Csr::empty(), vec![]);
    }
    let (label, ncomp) = components(g);
    if ncomp == 1 {
        return (g.clone(), (0..n as u32).collect());
    }
    let mut sizes = vec![0usize; ncomp];
    for &l in &label {
        sizes[l as usize] += 1;
    }
    let biggest = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, &s)| s)
        .map(|(i, _)| i as u32)
        .unwrap();

    let ids: Vec<u32> = (0..n as u32)
        .filter(|&u| label[u as usize] == biggest)
        .collect();
    induced_subgraph(g, &ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges_unit;

    #[test]
    fn single_component() {
        let g = from_edges_unit(4, &[(0, 1), (1, 2), (2, 3)]);
        let (label, k) = components(&g);
        assert_eq!(k, 1);
        assert!(label.iter().all(|&l| l == 0));
        assert!(is_connected(&g));
    }

    #[test]
    fn two_components_and_isolated() {
        let g = from_edges_unit(5, &[(0, 1), (2, 3)]);
        let (label, k) = components(&g);
        assert_eq!(k, 3); // {0,1}, {2,3}, {4}
        assert_eq!(label[0], label[1]);
        assert_eq!(label[2], label[3]);
        assert_ne!(label[0], label[2]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn largest_component_extraction() {
        // Component A: path 0-1-2 (3 vertices); component B: edge 3-4.
        let g = from_edges_unit(5, &[(0, 1), (1, 2), (3, 4)]);
        let (lcc, map) = largest_component(&g);
        lcc.validate().unwrap();
        assert_eq!(lcc.n(), 3);
        assert_eq!(lcc.m(), 2);
        assert_eq!(map[3], u32::MAX);
        assert_eq!(map[4], u32::MAX);
        assert_eq!(map[0], 0);
        assert!(is_connected(&lcc));
    }

    #[test]
    fn connected_graph_passthrough() {
        let g = from_edges_unit(3, &[(0, 1), (1, 2)]);
        let (lcc, map) = largest_component(&g);
        assert_eq!(lcc, g);
        assert_eq!(map, vec![0, 1, 2]);
    }

    #[test]
    fn weights_survive_extraction() {
        let g = crate::builder::from_edges_weighted(4, &[(0, 1, 9), (2, 3, 1), (1, 0, 1)]);
        // component {0,1} has total weight 10 on its edge; {2,3} has 1.
        let (lcc, _) = largest_component(&g);
        // Both components have 2 vertices; ties broken by first max — either
        // is acceptable, but weights must be intact.
        assert_eq!(lcc.n(), 2);
        let w = lcc.find_edge(0, 1).unwrap();
        assert!(w == 10 || w == 1);
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(is_connected(&Csr::empty()));
        let (lcc, map) = largest_component(&Csr::empty());
        assert_eq!(lcc.n(), 0);
        assert!(map.is_empty());
    }

    #[test]
    fn parallel_components_match_sequential() {
        use crate::generators as gen;
        let graphs = vec![
            from_edges_unit(1, &[]),
            from_edges_unit(7, &[(0, 1), (2, 3), (3, 4)]),
            gen::grid2d(15, 15),
            gen::kmer_paths(20, 30, 5, 3),
            {
                let (g, _) = crate::cc::largest_component(&gen::rmat(9, 6, 0.57, 0.19, 0.19, 5));
                g
            },
        ];
        for g in &graphs {
            let (seq, k_seq) = components(g);
            for policy in mlcg_par::ExecPolicy::all_test_policies() {
                let (par, k_par) = components_par(&policy, g);
                assert_eq!(k_seq, k_par, "component count");
                // Same partition up to label permutation.
                let mut fwd = vec![u32::MAX; k_seq];
                for (u, (&a, &b)) in seq.iter().zip(&par).enumerate() {
                    if fwd[a as usize] == u32::MAX {
                        fwd[a as usize] = b;
                    }
                    assert_eq!(fwd[a as usize], b, "vertex {u} split differently");
                }
            }
        }
    }

    #[test]
    fn parallel_components_on_long_chain() {
        // Pointer jumping must collapse a long path in few rounds.
        let g = crate::generators::path(5000);
        let (label, k) = components_par(&mlcg_par::ExecPolicy::host(), &g);
        assert_eq!(k, 1);
        assert!(label.iter().all(|&l| l == 0));
    }

    #[test]
    fn dsu_union_find_basics() {
        let mut d = Dsu::new(4);
        assert!(d.union(0, 1));
        assert!(!d.union(1, 0));
        assert!(d.union(2, 3));
        assert_ne!(d.find(0), d.find(2));
        assert!(d.union(0, 3));
        assert_eq!(d.find(1), d.find(2));
    }
}

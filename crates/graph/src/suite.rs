//! The 20-graph evaluation corpus (Table I stand-ins).
//!
//! One synthetic stand-in per paper graph, preserving its structural role,
//! application domain, and regular/skewed classification (DESIGN.md §4).
//! Sizes default to laptop scale; `scale` doubles the vertex count per
//! increment so the same corpus drives the weak-scaling experiment.
//!
//! As in the paper, every graph is preprocessed: symmetrized, deduplicated,
//! self-loop-free, largest connected component extracted, ids relabeled.

use crate::cc::largest_component;
use crate::csr::Csr;
use crate::generators as gen;

/// Regular (low degree skew) vs skewed-degree group, per Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Group {
    /// `Δ / (2m/n)` ≤ ~6: meshes, geometric graphs, roads.
    Regular,
    /// High skew: web, social, Kronecker, biology networks.
    Skewed,
}

/// A corpus entry: preprocessed graph plus its Table I metadata.
pub struct NamedGraph {
    /// Corpus name (paper graph name with a `-sim` suffix where the
    /// generator is a stand-in rather than the exact construction).
    pub name: &'static str,
    /// Application domain tag from Table I.
    pub domain: &'static str,
    /// Regular or skewed-degree group.
    pub group: Group,
    /// The preprocessed graph.
    pub graph: Csr,
}

/// Names of the regular-group corpus graphs, in Table I order.
pub const REGULAR: [&str; 10] = [
    "hv15r-sim",
    "rgg",
    "nlpkkt-sim",
    "europe-osm-sim",
    "cubecoup-sim",
    "delaunay",
    "flan-sim",
    "mlgeer-sim",
    "cage-sim",
    "channel-sim",
];

/// Names of the skewed-group corpus graphs, in Table I order.
pub const SKEWED: [&str; 10] = [
    "ic04-sim",
    "orkut-sim",
    "vas-stokes-sim",
    "kmer-sim",
    "kron",
    "products-sim",
    "hollywood-sim",
    "mycielskian",
    "citation-sim",
    "ppa-sim",
];

fn dim2(base: usize, scale: u32) -> usize {
    // Doubling n per scale increment means each 2-D side grows by sqrt(2).
    ((base as f64) * 2f64.powf(scale as f64 / 2.0)).round() as usize
}

fn dim3(base: usize, scale: u32) -> usize {
    ((base as f64) * 2f64.powf(scale as f64 / 3.0)).round() as usize
}

fn count(base: usize, scale: u32) -> usize {
    base << scale
}

/// Generate one corpus graph by name (preprocessed). Returns `None` for
/// unknown names. `scale = 0` is the default laptop size; each increment
/// doubles the vertex count.
pub fn by_name(name: &str, scale: u32, seed: u64) -> Option<Csr> {
    let g = match name {
        // ---- regular group ----
        "hv15r-sim" => gen::grid3d(
            dim3(12, scale),
            dim3(12, scale),
            dim3(12, scale),
            gen::Stencil::Box125,
        ),
        "rgg" => gen::rgg(count(60_000, scale), 15.0, seed ^ 0x1),
        "nlpkkt-sim" => gen::grid3d(
            dim3(28, scale),
            dim3(28, scale),
            dim3(28, scale),
            gen::Stencil::Box27,
        ),
        "europe-osm-sim" => gen::road(dim2(110, scale), dim2(110, scale), 4, 0.08, seed ^ 0x2),
        "cubecoup-sim" => gen::grid3d(
            dim3(24, scale),
            dim3(24, scale),
            dim3(24, scale),
            gen::Stencil::Box27,
        ),
        "delaunay" => gen::delaunay_like(dim2(220, scale), dim2(220, scale), seed ^ 0x3),
        "flan-sim" => gen::grid3d(
            dim3(22, scale),
            dim3(22, scale),
            dim3(22, scale),
            gen::Stencil::Box27,
        ),
        "mlgeer-sim" => gen::grid3d(
            dim3(16, scale),
            dim3(16, scale),
            dim3(16, scale),
            gen::Stencil::Box125,
        ),
        "cage-sim" => gen::banded(count(40_000, scale), 30, 16, seed ^ 0x4),
        "channel-sim" => gen::grid3d(
            dim3(36, scale),
            dim3(36, scale),
            dim3(36, scale),
            gen::Stencil::Star7,
        ),
        // ---- skewed group ----
        "ic04-sim" => gen::copying(count(40_000, scale), 12, 0.75, seed ^ 0x5),
        "orkut-sim" => gen::rmat(16 + scale, 12, 0.45, 0.22, 0.22, seed ^ 0x6),
        "vas-stokes-sim" => gen::with_hubs(
            &gen::grid3d(
                dim3(24, scale),
                dim3(24, scale),
                dim3(24, scale),
                gen::Stencil::Box27,
            ),
            60,
            2000,
            seed ^ 0x7,
        ),
        "kmer-sim" => gen::with_hubs(
            &gen::kmer_paths(count(600, scale), 100, count(400, scale), seed ^ 0x8),
            10,
            60,
            seed ^ 0x9,
        ),
        "kron" => gen::rmat(16 + scale, 14, 0.57, 0.19, 0.19, seed ^ 0xa),
        "products-sim" => gen::ba(count(50_000, scale), 6, seed ^ 0xb),
        "hollywood-sim" => {
            gen::cliques_overlay(count(30_000, scale), count(8_000, scale), 20, seed ^ 0xc)
        }
        "mycielskian" => gen::mycielskian(12 + scale),
        "citation-sim" => gen::copying(count(45_000, scale), 8, 0.6, seed ^ 0xd),
        "ppa-sim" => gen::with_hubs(
            &gen::small_world(count(20_000, scale), 18, 0.3, seed ^ 0xe),
            40,
            1500,
            seed ^ 0xf,
        ),
        _ => return None,
    };
    let (lcc, _) = largest_component(&g);
    Some(lcc)
}

fn domain_of(name: &str) -> &'static str {
    match name {
        "hv15r-sim" => "cfd",
        "rgg" | "delaunay" | "kron" | "mycielskian" => "syn",
        "nlpkkt-sim" => "opt",
        "europe-osm-sim" => "road",
        "cubecoup-sim" | "flan-sim" => "fem",
        "mlgeer-sim" | "channel-sim" => "sim",
        "cage-sim" | "kmer-sim" | "ppa-sim" => "bio",
        "ic04-sim" => "www",
        "orkut-sim" | "hollywood-sim" => "soc",
        "vas-stokes-sim" => "vlsi",
        "products-sim" => "ecom",
        "citation-sim" => "cit",
        _ => "?",
    }
}

/// Generate the full 20-graph corpus.
pub fn suite(scale: u32, seed: u64) -> Vec<NamedGraph> {
    let mut out = Vec::with_capacity(20);
    for (group, names) in [(Group::Regular, &REGULAR), (Group::Skewed, &SKEWED)] {
        for &name in names.iter() {
            let graph = by_name(name, scale, seed).expect("known corpus name");
            out.push(NamedGraph {
                name,
                domain: domain_of(name),
                group,
                graph,
            });
        }
    }
    out
}

/// A small fast subset of the corpus (one regular, one skewed) for tests.
pub fn mini_suite(seed: u64) -> Vec<NamedGraph> {
    vec![
        NamedGraph {
            name: "delaunay",
            domain: "syn",
            group: Group::Regular,
            graph: {
                let (g, _) = largest_component(&gen::delaunay_like(40, 40, seed));
                g
            },
        },
        NamedGraph {
            name: "kron",
            domain: "syn",
            group: Group::Skewed,
            graph: {
                let (g, _) = largest_component(&gen::rmat(10, 8, 0.57, 0.19, 0.19, seed));
                g
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::is_connected;
    use crate::metrics::DegreeStats;

    #[test]
    fn every_corpus_graph_is_valid_and_connected() {
        // Scale 0 suite is a few million edges total; validate a cheap
        // sample of entries here (the full suite runs in integration tests).
        for name in ["rgg", "europe-osm-sim", "kron", "mycielskian", "kmer-sim"] {
            let g = by_name(name, 0, 42).unwrap();
            g.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(is_connected(&g), "{name} not connected");
            assert!(g.n() > 1000, "{name} too small: {}", g.n());
        }
    }

    #[test]
    fn group_classification_matches_skew() {
        for name in ["delaunay", "channel-sim"] {
            let g = by_name(name, 0, 42).unwrap();
            assert!(!DegreeStats::of(&g).is_skewed(), "{name} should be regular");
        }
        for name in ["kron", "ppa-sim", "hollywood-sim"] {
            let g = by_name(name, 0, 42).unwrap();
            assert!(DegreeStats::of(&g).is_skewed(), "{name} should be skewed");
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("not-a-graph", 0, 1).is_none());
    }

    #[test]
    fn mini_suite_valid() {
        for ng in mini_suite(7) {
            ng.graph.validate().unwrap();
            assert!(is_connected(&ng.graph));
        }
    }

    #[test]
    fn scale_grows_vertex_count() {
        let g0 = by_name("delaunay", 0, 1).unwrap();
        let g1 = by_name("delaunay", 1, 1).unwrap();
        let ratio = g1.n() as f64 / g0.n() as f64;
        assert!(
            ratio > 1.6 && ratio < 2.4,
            "scale+1 should roughly double n: {ratio}"
        );
    }
}

#![warn(missing_docs)]
//! # mlcg-graph — CSR graph substrate
//!
//! The paper evaluates on undirected, connected, positively-weighted graphs
//! stored in compressed sparse row (CSR) format, preprocessed from
//! SuiteSparse matrices and OGB networks (largest connected component
//! extracted, identifiers relabeled). This crate provides the whole
//! substrate:
//!
//! - [`Csr`]: the CSR graph type with vertex weights (aggregate sizes in the
//!   multilevel hierarchy) and edge weights;
//! - [`builder`]: parallel edge-list → CSR construction with symmetrization,
//!   deduplication and self-loop removal;
//! - [`cc`]: connected components, largest-component extraction, relabeling;
//! - [`generators`] and [`suite`]: seeded synthetic generators standing in
//!   for the paper's 20-graph corpus (see DESIGN.md §4);
//! - [`io`]: Matrix Market / METIS / DOT readers and writers;
//! - [`stream`]: chunked, memory-bounded two-pass ingestion for graphs
//!   whose edge lists should never be fully materialized;
//! - [`metrics`]: degree statistics, skew ratio, edge cut, balance.

pub mod builder;
pub mod cc;
pub mod csr;
pub mod demo;
pub mod generators;
pub mod io;
pub mod metrics;
pub mod stream;
pub mod suite;
pub mod traverse;

pub use builder::MergeMode;
pub use csr::{Csr, Offsets, VId, VWeight, Weight};
pub use metrics::DegreeStats;

//! Seeded synthetic graph generators.
//!
//! These stand in for the paper's SuiteSparse/OGB corpus (DESIGN.md §3.2):
//! each generator reproduces the *structural role* of one or more corpus
//! graphs — mesh-like regularity, road-network sparsity, power-law skew,
//! near-clique overlap, exact Mycielski construction — at laptop scale.
//!
//! All generators are deterministic for a fixed seed and return a valid
//! [`Csr`](crate::Csr) (symmetrized, deduplicated, loop-free). Callers that
//! need connectivity apply [`cc::largest_component`](crate::cc) afterwards,
//! as the paper's preprocessing does.

pub mod geometric;
pub mod mesh;
pub mod powerlaw;
pub mod special;

pub use geometric::{delaunay_like, rgg};
pub use mesh::{banded, grid2d, grid3d, road, Stencil};
pub use powerlaw::{ba, cliques_overlay, copying, rmat, small_world, with_hubs};
pub use special::{complete, cycle, kmer_paths, mycielskian, path, star};

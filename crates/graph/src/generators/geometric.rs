//! Geometric generators: random geometric graphs (rgg24-like) and a
//! Delaunay-style triangulated point set (delaunay24-like).

use crate::builder::from_edges_unit;
use crate::csr::{Csr, VId};
use mlcg_par::rng::Xoshiro256pp;

/// 2-D random geometric graph: `n` uniform points in the unit square,
/// connecting pairs within radius `r` chosen to hit `target_avg_deg`.
///
/// Uses a uniform grid of cell size `r` so expected work is `O(n · deg)`.
pub fn rgg(n: usize, target_avg_deg: f64, seed: u64) -> Csr {
    assert!(n > 0);
    let mut rng = Xoshiro256pp::new(seed);
    // Expected neighbors within radius r: n * pi * r^2.
    let r = (target_avg_deg / (std::f64::consts::PI * n as f64)).sqrt();
    let px: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
    let py: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();

    let cells = ((1.0 / r).floor() as usize).max(1);
    let cell_of = |x: f64| ((x * cells as f64) as usize).min(cells - 1);
    // Bucket points by cell via counting sort.
    let mut count = vec![0usize; cells * cells + 1];
    for i in 0..n {
        count[cell_of(px[i]) * cells + cell_of(py[i]) + 1] += 1;
    }
    for i in 0..cells * cells {
        count[i + 1] += count[i];
    }
    let mut bucket = vec![0u32; n];
    let mut cursor = count.clone();
    for i in 0..n {
        let c = cell_of(px[i]) * cells + cell_of(py[i]);
        bucket[cursor[c]] = i as u32;
        cursor[c] += 1;
    }

    let r2 = r * r;
    let mut edges: Vec<(VId, VId)> = Vec::with_capacity((n as f64 * target_avg_deg / 2.0) as usize);
    for cx in 0..cells {
        for cy in 0..cells {
            let c = cx * cells + cy;
            for bi in count[c]..count[c + 1] {
                let i = bucket[bi] as usize;
                // Scan the 3x3 cell neighborhood; dedupe by id ordering.
                for dx in -1i64..=1 {
                    for dy in -1i64..=1 {
                        let (nx, ny) = (cx as i64 + dx, cy as i64 + dy);
                        if nx < 0 || ny < 0 || nx >= cells as i64 || ny >= cells as i64 {
                            continue;
                        }
                        let nc = nx as usize * cells + ny as usize;
                        for &bv in &bucket[count[nc]..count[nc + 1]] {
                            let j = bv as usize;
                            if j <= i {
                                continue;
                            }
                            let (ddx, ddy) = (px[i] - px[j], py[i] - py[j]);
                            if ddx * ddx + ddy * ddy <= r2 {
                                edges.push((i as VId, j as VId));
                            }
                        }
                    }
                }
            }
        }
    }
    from_edges_unit(n, &edges)
}

/// Delaunay-style planar triangulation of a jittered `w × h` point grid:
/// each quad cell gets both rectangle sides and one randomly chosen
/// diagonal. Degrees range 2–8 with skew like a true Delaunay mesh.
pub fn delaunay_like(w: usize, h: usize, seed: u64) -> Csr {
    assert!(w >= 2 && h >= 2);
    let mut rng = Xoshiro256pp::new(seed);
    let n = w * h;
    let id = |x: usize, y: usize| (y * w + x) as VId;
    let mut edges = Vec::with_capacity(3 * n);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < h {
                edges.push((id(x, y), id(x, y + 1)));
            }
            if x + 1 < w && y + 1 < h {
                // Triangulate the cell with one of its two diagonals.
                if rng.next_f64() < 0.5 {
                    edges.push((id(x, y), id(x + 1, y + 1)));
                } else {
                    edges.push((id(x + 1, y), id(x, y + 1)));
                }
            }
        }
    }
    from_edges_unit(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::largest_component;

    #[test]
    fn rgg_hits_target_degree_roughly() {
        let g = rgg(5000, 12.0, 11);
        g.validate().unwrap();
        let (lcc, _) = largest_component(&g);
        let avg = lcc.avg_degree();
        assert!(
            avg > 6.0 && avg < 20.0,
            "avg degree {avg} far from target 12"
        );
        // Geometric graphs are low-skew.
        assert!(lcc.skew_ratio() < 5.0);
    }

    #[test]
    fn rgg_deterministic() {
        assert_eq!(rgg(1000, 8.0, 5), rgg(1000, 8.0, 5));
        assert_ne!(rgg(1000, 8.0, 5), rgg(1000, 8.0, 6));
    }

    #[test]
    fn delaunay_is_planar_scale_and_connected() {
        let g = delaunay_like(40, 30, 3);
        g.validate().unwrap();
        assert!(crate::cc::is_connected(&g));
        // Planar: m <= 3n - 6.
        assert!(g.m() <= 3 * g.n() - 6);
        assert!(g.avg_degree() > 3.0 && g.avg_degree() < 6.0);
    }

    #[test]
    fn delaunay_degree_bounded() {
        let g = delaunay_like(25, 25, 9);
        assert!(g.max_degree() <= 8);
    }
}

//! Exact constructions and adversarial shapes: Mycielski graphs, k-mer
//! path unions, and the usual utility graphs (path/cycle/star/complete).

use crate::builder::from_edges_unit;
use crate::csr::{Csr, VId};
use mlcg_par::rng::Xoshiro256pp;

/// Iterated Mycielski construction starting from `K2`. `mycielskian(2)` is
/// `K2` itself; each further step maps `G(V, E)` with `|V| = n` to a graph
/// on `2n + 1` vertices: copies `u_i` adjacent to `N(v_i)`, plus an apex
/// `w` adjacent to every `u_i`. This reproduces the paper's mycielskian17
/// family *exactly* (at lower iteration counts): triangle-free, extremely
/// dense, skew ≈ 48.
pub fn mycielskian(iterations: u32) -> Csr {
    assert!(
        iterations >= 2,
        "mycielskian is defined from M2 = K2 upward"
    );
    let mut edges: Vec<(VId, VId)> = vec![(0, 1)];
    let mut n: usize = 2;
    for _ in 2..iterations {
        let mut next_edges = Vec::with_capacity(3 * edges.len() + n);
        // Original edges.
        next_edges.extend_from_slice(&edges);
        // u_i (ids n..2n) adjacent to N(v_i): for each edge (a, b) add
        // (u_a, b) and (a, u_b).
        for &(a, b) in &edges {
            next_edges.push((a + n as VId, b));
            next_edges.push((a, b + n as VId));
        }
        // Apex w (id 2n) adjacent to all u_i.
        let w = 2 * n as VId;
        for i in 0..n as VId {
            next_edges.push((i + n as VId, w));
        }
        edges = next_edges;
        n = 2 * n + 1;
    }
    from_edges_unit(n, &edges)
}

/// k-mer / assembly-graph stand-in: `n_paths` long simple paths of length
/// around `path_len`, plus `n_merges` random cross links merging them.
/// Reproduces kmer_U1a's signature: avg degree ≈ 2, enormous vertex count
/// relative to edges, and rare higher-degree branch points.
pub fn kmer_paths(n_paths: usize, path_len: usize, n_merges: usize, seed: u64) -> Csr {
    let mut rng = Xoshiro256pp::new(seed);
    let n = n_paths * path_len;
    let mut edges: Vec<(VId, VId)> = Vec::with_capacity(n + n_merges);
    for p in 0..n_paths {
        let base = (p * path_len) as VId;
        for i in 0..(path_len - 1) as VId {
            edges.push((base + i, base + i + 1));
        }
    }
    for _ in 0..n_merges {
        let a = rng.next_below(n as u64) as VId;
        let b = rng.next_below(n as u64) as VId;
        edges.push((a, b));
    }
    from_edges_unit(n, &edges)
}

/// Simple path on `n` vertices.
pub fn path(n: usize) -> Csr {
    let edges: Vec<(VId, VId)> = (0..n.saturating_sub(1) as VId)
        .map(|i| (i, i + 1))
        .collect();
    from_edges_unit(n, &edges)
}

/// Cycle on `n` vertices.
pub fn cycle(n: usize) -> Csr {
    assert!(n >= 3);
    let edges: Vec<(VId, VId)> = (0..n as VId).map(|i| (i, (i + 1) % n as VId)).collect();
    from_edges_unit(n, &edges)
}

/// Star with `n - 1` leaves around hub 0 — the extreme leaf-matching case.
pub fn star(n: usize) -> Csr {
    assert!(n >= 2);
    let edges: Vec<(VId, VId)> = (1..n as VId).map(|v| (0, v)).collect();
    from_edges_unit(n, &edges)
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Csr {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n as VId {
        for j in (i + 1)..n as VId {
            edges.push((i, j));
        }
    }
    from_edges_unit(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mycielskian_sizes() {
        // n(k): 2, 5, 11, 23, 47 ... = 3*2^(k-1) - 1.
        for (k, expect_n) in [(2u32, 2usize), (3, 5), (4, 11), (5, 23), (6, 47)] {
            let g = mycielskian(k);
            g.validate().unwrap();
            assert_eq!(g.n(), expect_n, "k={k}");
            assert!(crate::cc::is_connected(&g));
        }
        // m(k+1) = 3 m(k) + n(k): 1, 5, 20, 71, 236, ...
        assert_eq!(mycielskian(3).m(), 5); // M3 is the 5-cycle
        assert_eq!(mycielskian(4).m(), 20); // the Grötzsch graph
        assert_eq!(mycielskian(5).m(), 71);
    }

    #[test]
    fn mycielskian_is_triangle_free() {
        let g = mycielskian(5);
        for u in 0..g.n() as VId {
            for &v in g.neighbors(u) {
                for &w in g.neighbors(v) {
                    if w != u {
                        assert!(
                            g.find_edge(w, u).is_none(),
                            "triangle {u}-{v}-{w} in Mycielski graph"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn kmer_is_sparse() {
        let g = kmer_paths(50, 100, 30, 3);
        g.validate().unwrap();
        assert_eq!(g.n(), 5000);
        assert!(g.avg_degree() < 2.2);
    }

    #[test]
    fn utility_graphs() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(cycle(5).m(), 5);
        assert_eq!(star(5).m(), 4);
        assert_eq!(complete(5).m(), 10);
        for g in [path(5), cycle(5), star(5), complete(5)] {
            g.validate().unwrap();
        }
    }

    #[test]
    fn star_hub_degree() {
        let g = star(100);
        assert_eq!(g.degree(0), 99);
        assert!(g.neighbors(1) == [0]);
    }
}

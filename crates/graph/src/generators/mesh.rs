//! Mesh-like regular generators: 2-D/3-D grids with selectable stencils,
//! road networks (subdivided perturbed grids), and banded matrices.
//!
//! These model the paper's *regular* group: FEM matrices (CubeCoup,
//! Flan1565, MLGeer, HV15R), optimization stencils (nlpkkt160, channel050),
//! road networks (europeOsm), and banded bio matrices (cage15).

use crate::builder::from_edges_unit;
use crate::csr::{Csr, VId};
use mlcg_par::rng::Xoshiro256pp;

/// Neighborhood shape for [`grid3d`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stencil {
    /// 6 face neighbors (7-point stencil) — channel/MLGeer-like.
    Star7,
    /// 26 box neighbors (27-point stencil) — nlpkkt/CubeCoup/Flan-like.
    Box27,
    /// 124 radius-2 box neighbors — HV15R-like wide coupling (avg deg ≈ 120).
    Box125,
}

/// 2-D grid with 4-point connectivity, `w × h` vertices.
pub fn grid2d(w: usize, h: usize) -> Csr {
    let n = w * h;
    let mut edges = Vec::with_capacity(2 * n);
    for y in 0..h {
        for x in 0..w {
            let u = (y * w + x) as VId;
            if x + 1 < w {
                edges.push((u, u + 1));
            }
            if y + 1 < h {
                edges.push((u, u + w as VId));
            }
        }
    }
    from_edges_unit(n, &edges)
}

/// 3-D grid `nx × ny × nz` with the given stencil.
pub fn grid3d(nx: usize, ny: usize, nz: usize, stencil: Stencil) -> Csr {
    let n = nx * ny * nz;
    let radius: isize = match stencil {
        Stencil::Star7 | Stencil::Box27 => 1,
        Stencil::Box125 => 2,
    };
    let star = stencil == Stencil::Star7;
    let id = |x: usize, y: usize, z: usize| (z * ny * nx + y * nx + x) as VId;
    let mut edges = Vec::new();
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let u = id(x, y, z);
                for dz in -radius..=radius {
                    for dy in -radius..=radius {
                        for dx in -radius..=radius {
                            if (dx, dy, dz) == (0, 0, 0) {
                                continue;
                            }
                            if star && (dx.abs() + dy.abs() + dz.abs()) != 1 {
                                continue;
                            }
                            let (px, py, pz) = (x as isize + dx, y as isize + dy, z as isize + dz);
                            if px < 0
                                || py < 0
                                || pz < 0
                                || px >= nx as isize
                                || py >= ny as isize
                                || pz >= nz as isize
                            {
                                continue;
                            }
                            let v = id(px as usize, py as usize, pz as usize);
                            if v > u {
                                edges.push((u, v));
                            }
                        }
                    }
                }
            }
        }
    }
    from_edges_unit(n, &edges)
}

/// Road-network-like generator: a `w × h` grid whose edges are subdivided
/// into chains of `subdiv` intermediate degree-2 vertices, with a fraction
/// `drop` of grid edges removed. Average degree lands near 2.1 like
/// europeOsm; the removed edges create irregular junction spacing.
pub fn road(w: usize, h: usize, subdiv: usize, drop: f64, seed: u64) -> Csr {
    let mut rng = Xoshiro256pp::new(seed);
    let base = w * h;
    let mut edges: Vec<(VId, VId)> = Vec::new();
    let mut next = base as VId;
    let mut grid_edges = Vec::new();
    for y in 0..h {
        for x in 0..w {
            let u = (y * w + x) as VId;
            if x + 1 < w {
                grid_edges.push((u, u + 1));
            }
            if y + 1 < h {
                grid_edges.push((u, u + w as VId));
            }
        }
    }
    for (u, v) in grid_edges {
        if rng.next_f64() < drop {
            continue;
        }
        // Subdivide u—v into a chain through `k` fresh vertices, where k
        // varies so junction spacing is irregular.
        let k = if subdiv == 0 {
            0
        } else {
            rng.next_below(2 * subdiv as u64 + 1) as usize
        };
        let mut prev = u;
        for _ in 0..k {
            edges.push((prev, next));
            prev = next;
            next += 1;
        }
        edges.push((prev, v));
    }
    from_edges_unit(next as usize, &edges)
}

/// Banded graph: vertex `i` connects to `i ± d` for `deg/2` random distinct
/// offsets `d ∈ 1..=band`. Models cage-like banded bio matrices.
pub fn banded(n: usize, band: usize, deg: usize, seed: u64) -> Csr {
    let mut rng = Xoshiro256pp::new(seed);
    let mut edges = Vec::with_capacity(n * deg / 2);
    for i in 0..n {
        // Always keep the chain so the graph stays connected.
        if i + 1 < n {
            edges.push((i as VId, (i + 1) as VId));
        }
        for _ in 0..deg / 2 {
            let d = 1 + rng.next_below(band as u64) as usize;
            if i + d < n {
                edges.push((i as VId, (i + d) as VId));
            }
        }
    }
    from_edges_unit(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::is_connected;

    #[test]
    fn grid2d_counts() {
        let g = grid2d(4, 3);
        g.validate().unwrap();
        assert_eq!(g.n(), 12);
        // Horizontal: 3*3 = 9, vertical: 4*2 = 8.
        assert_eq!(g.m(), 17);
        assert!(is_connected(&g));
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn grid3d_star7_interior_degree() {
        let g = grid3d(5, 5, 5, Stencil::Star7);
        g.validate().unwrap();
        assert_eq!(g.n(), 125);
        // Interior vertex (2,2,2) has all 6 face neighbors.
        assert_eq!(g.max_degree(), 6);
        assert!(is_connected(&g));
    }

    #[test]
    fn grid3d_box27_interior_degree() {
        let g = grid3d(5, 5, 5, Stencil::Box27);
        g.validate().unwrap();
        assert_eq!(g.max_degree(), 26);
        // Regular: skew near 1.
        assert!(g.skew_ratio() < 2.0);
    }

    #[test]
    fn grid3d_box125_is_wide() {
        let g = grid3d(6, 6, 6, Stencil::Box125);
        g.validate().unwrap();
        assert_eq!(g.max_degree(), 124);
    }

    #[test]
    fn road_is_sparse_and_mostly_degree_two() {
        let g = road(20, 20, 3, 0.1, 7);
        g.validate().unwrap();
        let (lcc, _) = crate::cc::largest_component(&g);
        assert!(lcc.avg_degree() < 2.6, "avg degree {}", lcc.avg_degree());
        assert!(lcc.n() > 400, "chains should add many vertices");
        assert!(lcc.max_degree() <= 4);
    }

    #[test]
    fn banded_connected_and_banded() {
        let g = banded(500, 20, 10, 3);
        g.validate().unwrap();
        assert!(is_connected(&g));
        for u in 0..g.n() as VId {
            for &v in g.neighbors(u) {
                assert!((v as i64 - u as i64).unsigned_abs() <= 20);
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(road(10, 10, 2, 0.1, 42), road(10, 10, 2, 0.1, 42));
        assert_eq!(banded(100, 5, 4, 1), banded(100, 5, 4, 1));
        assert_ne!(banded(100, 5, 4, 1), banded(100, 5, 4, 2));
    }
}

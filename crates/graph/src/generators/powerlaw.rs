//! Skewed-degree generators: RMAT/Kronecker, preferential attachment,
//! copying models, clique overlays, small worlds, and hub injection.
//!
//! These model the paper's *skewed* group: kron21 (stochastic Kronecker),
//! Orkut/hollywood09 (social, near-cliques), ic04/citation (web/citation
//! copying structure), ogbn-products (co-purchase), ppa (dense with hubs),
//! and vas_stokes_4M (stencil rows plus a few extremely dense rows).

use crate::builder::from_edges_unit;
use crate::csr::{Csr, VId};
use mlcg_par::rng::Xoshiro256pp;

/// RMAT / stochastic-Kronecker generator (Graph500 style) with parameter
/// noise. `n = 2^scale` vertices and `edge_factor * n` sampled edges
/// (duplicates and loops are discarded by the builder, so the final count
/// is somewhat lower — as with real Kronecker graphs).
pub fn rmat(scale: u32, edge_factor: usize, a: f64, b: f64, c: f64, seed: u64) -> Csr {
    let n = 1usize << scale;
    let d = 1.0 - a - b - c;
    assert!(d >= 0.0, "rmat: probabilities must sum to <= 1");
    let mut rng = Xoshiro256pp::new(seed);
    let m = edge_factor * n;
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r = rng.next_f64();
            if r < a {
                // upper-left: no bits set
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        edges.push((u as VId, v as VId));
    }
    from_edges_unit(n, &edges)
}

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m_attach` existing vertices sampled proportionally to degree (via the
/// repeated-endpoint trick).
pub fn ba(n: usize, m_attach: usize, seed: u64) -> Csr {
    assert!(n > m_attach && m_attach >= 1);
    let mut rng = Xoshiro256pp::new(seed);
    let mut edges: Vec<(VId, VId)> = Vec::with_capacity(n * m_attach);
    // Flat list of edge endpoints: sampling uniformly from it is sampling
    // vertices proportionally to degree.
    let mut endpoints: Vec<VId> = Vec::with_capacity(2 * n * m_attach);
    // Seed clique over the first m_attach + 1 vertices.
    for i in 0..=m_attach {
        for j in 0..i {
            edges.push((j as VId, i as VId));
            endpoints.push(j as VId);
            endpoints.push(i as VId);
        }
    }
    for u in (m_attach + 1)..n {
        for _ in 0..m_attach {
            let t = endpoints[rng.next_below(endpoints.len() as u64) as usize];
            edges.push((t, u as VId));
            endpoints.push(t);
            endpoints.push(u as VId);
        }
    }
    from_edges_unit(n, &edges)
}

/// Copying model (web-crawl / citation structure): each new vertex picks a
/// random prototype and copies each of the prototype's links with
/// probability `p_copy`, otherwise linking to a uniform random vertex;
/// `out_deg` links are created per vertex. Produces power-law in-degrees
/// and many near-duplicate neighborhoods (twins — important for two-hop
/// matching).
pub fn copying(n: usize, out_deg: usize, p_copy: f64, seed: u64) -> Csr {
    assert!(n > out_deg + 1);
    let mut rng = Xoshiro256pp::new(seed);
    // Store each vertex's out-links for prototype copying.
    let mut out: Vec<Vec<VId>> = Vec::with_capacity(n);
    let mut edges: Vec<(VId, VId)> = Vec::new();
    let seedn = out_deg + 1;
    for i in 0..seedn {
        let links: Vec<VId> = (0..seedn as VId).filter(|&j| j as usize != i).collect();
        for &j in &links {
            if (j as usize) > i {
                edges.push((i as VId, j));
            }
        }
        out.push(links);
    }
    for u in seedn..n {
        let proto = rng.next_below(u as u64) as usize;
        let mut links = Vec::with_capacity(out_deg);
        for k in 0..out_deg {
            let target = if rng.next_f64() < p_copy && k < out[proto].len() {
                out[proto][k]
            } else {
                rng.next_below(u as u64) as VId
            };
            links.push(target);
            edges.push((u as VId, target));
        }
        out.push(links);
    }
    from_edges_unit(n, &edges)
}

/// Clique-overlay ("movie") model for co-star / co-author structure:
/// `n_cliques` groups, each a clique over `2..=max_clique` members drawn
/// from a Zipf-tilted popularity distribution. hollywood09-like: strong
/// local density, heavy skew, large near-cliques that stress two-hop
/// matching exactly as the paper observed on Orkut/kron21.
pub fn cliques_overlay(n: usize, n_cliques: usize, max_clique: usize, seed: u64) -> Csr {
    let mut rng = Xoshiro256pp::new(seed);
    let mut edges: Vec<(VId, VId)> = Vec::new();
    let mut members: Vec<VId> = Vec::new();
    for _ in 0..n_cliques {
        let k = 2 + rng.next_below((max_clique - 1) as u64) as usize;
        members.clear();
        for _ in 0..k {
            // Zipf-ish popularity: square a uniform to bias to low ids.
            let r = rng.next_f64();
            let v = ((r * r) * n as f64) as usize;
            members.push(v.min(n - 1) as VId);
        }
        members.sort_unstable();
        members.dedup();
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                edges.push((members[i], members[j]));
            }
        }
    }
    from_edges_unit(n, &edges)
}

/// Watts–Strogatz small world: ring lattice of degree `2k`, each edge
/// rewired with probability `p`. ppa-like base (dense, low diameter).
pub fn small_world(n: usize, k: usize, p: f64, seed: u64) -> Csr {
    assert!(n > 2 * k + 1);
    let mut rng = Xoshiro256pp::new(seed);
    let mut edges = Vec::with_capacity(n * k);
    for u in 0..n {
        for d in 1..=k {
            let v = (u + d) % n;
            if rng.next_f64() < p {
                let w = rng.next_below(n as u64) as usize;
                edges.push((u as VId, w as VId));
            } else {
                edges.push((u as VId, v as VId));
            }
        }
    }
    from_edges_unit(n, &edges)
}

/// Inject `n_hubs` high-degree vertices into an existing graph: each hub
/// gains `hub_deg` random extra neighbors. vas-stokes-like (regular rows
/// plus a few extremely dense rows).
pub fn with_hubs(g: &Csr, n_hubs: usize, hub_deg: usize, seed: u64) -> Csr {
    let mut rng = Xoshiro256pp::new(seed);
    let n = g.n();
    let mut edges: Vec<(VId, VId)> = Vec::with_capacity(g.m() + n_hubs * hub_deg);
    for u in 0..n as VId {
        for &v in g.neighbors(u) {
            if v > u {
                edges.push((u, v));
            }
        }
    }
    for _ in 0..n_hubs {
        let hub = rng.next_below(n as u64) as VId;
        for _ in 0..hub_deg {
            let v = rng.next_below(n as u64) as VId;
            edges.push((hub, v));
        }
    }
    from_edges_unit(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::largest_component;
    use crate::metrics::DegreeStats;

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(12, 8, 0.57, 0.19, 0.19, 21);
        g.validate().unwrap();
        let (lcc, _) = largest_component(&g);
        let s = DegreeStats::of(&lcc);
        assert!(s.is_skewed(), "rmat skew ratio {}", s.skew);
        assert!(
            s.skew > 15.0,
            "kron-like graphs should be strongly skewed: {}",
            s.skew
        );
    }

    #[test]
    fn ba_powerlaw_hubs() {
        let g = ba(3000, 4, 7);
        g.validate().unwrap();
        assert!(crate::cc::is_connected(&g));
        assert!(
            g.max_degree() > 40,
            "BA should grow hubs: {}",
            g.max_degree()
        );
        // m is close to n * m_attach (a few duplicate samples collapse).
        assert!(
            g.m() >= 3000 * 4 - 300 && g.m() <= 3000 * 4 + 10,
            "m = {}",
            g.m()
        );
    }

    #[test]
    fn copying_has_twins_and_skew() {
        let g = copying(4000, 6, 0.7, 13);
        g.validate().unwrap();
        let (lcc, _) = largest_component(&g);
        assert!(DegreeStats::of(&lcc).skew > 5.0);
    }

    #[test]
    fn cliques_overlay_dense_neighborhoods() {
        let g = cliques_overlay(2000, 800, 20, 5);
        g.validate().unwrap();
        let (lcc, _) = largest_component(&g);
        assert!(lcc.n() > 100);
        assert!(DegreeStats::of(&lcc).is_skewed());
    }

    #[test]
    fn small_world_regularish() {
        let g = small_world(2000, 5, 0.1, 9);
        g.validate().unwrap();
        assert!(crate::cc::is_connected(&g));
        let s = DegreeStats::of(&g);
        assert!((s.avg_degree - 10.0).abs() < 1.0);
    }

    #[test]
    fn hubs_raise_max_degree() {
        let base = small_world(2000, 5, 0.05, 3);
        let g = with_hubs(&base, 3, 500, 4);
        g.validate().unwrap();
        assert!(g.max_degree() > 200, "hub degree {}", g.max_degree());
        assert!(DegreeStats::of(&g).is_skewed());
    }

    #[test]
    fn generators_deterministic() {
        assert_eq!(
            rmat(8, 4, 0.57, 0.19, 0.19, 1),
            rmat(8, 4, 0.57, 0.19, 0.19, 1)
        );
        assert_eq!(ba(500, 3, 2), ba(500, 3, 2));
        assert_eq!(copying(500, 4, 0.5, 3), copying(500, 4, 0.5, 3));
    }
}

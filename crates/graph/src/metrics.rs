//! Graph and partition metrics reported throughout the paper's tables.

use crate::csr::{Csr, VId, Weight};
use mlcg_par::{parallel_reduce_sum, ExecPolicy};

/// Degree statistics matching the columns of the paper's Table I.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Vertex count `n`.
    pub n: usize,
    /// Undirected edge count `m`.
    pub m: usize,
    /// Maximum degree Δ.
    pub max_degree: usize,
    /// Average degree `2m / n`.
    pub avg_degree: f64,
    /// Skew ratio `Δ / (2m/n)` — the regular/skewed group split key.
    pub skew: f64,
}

impl DegreeStats {
    /// Compute the statistics for a graph.
    pub fn of(g: &Csr) -> Self {
        DegreeStats {
            n: g.n(),
            m: g.m(),
            max_degree: g.max_degree(),
            avg_degree: g.avg_degree(),
            skew: g.skew_ratio(),
        }
    }

    /// The paper classifies graphs with `skew > ~7` as skewed-degree; every
    /// regular-group graph in Table I has skew ≤ 6.1 and every skewed-group
    /// graph has skew ≥ 17.
    pub fn is_skewed(&self) -> bool {
        self.skew > 7.0
    }
}

/// Sum of weights of edges whose endpoints lie in different parts.
///
/// `part[u]` is the part of vertex `u` (any integer labels).
pub fn edge_cut(g: &Csr, part: &[u32]) -> Weight {
    assert_eq!(part.len(), g.n(), "edge_cut: partition length mismatch");
    let policy = ExecPolicy::host();
    parallel_reduce_sum(&policy, g.n(), |u| {
        let mut c = 0u64;
        for (v, w) in g.edges(u as VId) {
            if part[u] != part[v as usize] {
                c += w;
            }
        }
        c
    }) / 2
}

/// Number of boundary vertices: vertices with at least one neighbor in a
/// different part.
pub fn boundary_size(g: &Csr, part: &[u32]) -> usize {
    assert_eq!(part.len(), g.n());
    (0..g.n())
        .filter(|&u| {
            g.neighbors(u as VId)
                .iter()
                .any(|&v| part[v as usize] != part[u])
        })
        .count()
}

/// Total communication volume of a k-way partition: for each vertex, the
/// number of *distinct remote parts* among its neighbors — the standard
/// proxy for halo-exchange traffic in distributed graph computations.
pub fn communication_volume(g: &Csr, part: &[u32]) -> usize {
    assert_eq!(part.len(), g.n());
    let policy = ExecPolicy::host();
    parallel_reduce_sum(&policy, g.n(), |u| {
        let mut remotes: Vec<u32> = g
            .neighbors(u as VId)
            .iter()
            .map(|&v| part[v as usize])
            .filter(|&p| p != part[u])
            .collect();
        remotes.sort_unstable();
        remotes.dedup();
        remotes.len() as u64
    }) as usize
}

/// Vertex-weight totals per part for a 2-way partition: `(w0, w1)`.
pub fn part_weights(g: &Csr, part: &[u32]) -> (u64, u64) {
    assert_eq!(part.len(), g.n());
    let mut w = [0u64; 2];
    for (u, &p) in part.iter().enumerate() {
        assert!(p < 2, "part_weights: bisection labels must be 0/1");
        w[p as usize] += g.vwgt()[u];
    }
    (w[0], w[1])
}

/// Imbalance of a bisection: `max(w0, w1) / (total / 2)`. 1.0 is perfect.
pub fn imbalance(g: &Csr, part: &[u32]) -> f64 {
    let (w0, w1) = part_weights(g, part);
    let total = (w0 + w1) as f64;
    if total == 0.0 {
        return 1.0;
    }
    w0.max(w1) as f64 / (total / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{from_edges_unit, from_edges_weighted};

    #[test]
    fn stats_of_cycle() {
        let n = 10u32;
        let edges: Vec<(VId, VId)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = from_edges_unit(n as usize, &edges);
        let s = DegreeStats::of(&g);
        assert_eq!(s.n, 10);
        assert_eq!(s.m, 10);
        assert_eq!(s.max_degree, 2);
        assert!((s.avg_degree - 2.0).abs() < 1e-12);
        assert!((s.skew - 1.0).abs() < 1e-12);
        assert!(!s.is_skewed());
    }

    #[test]
    fn star_is_skewed() {
        let edges: Vec<(VId, VId)> = (1..100).map(|v| (0, v)).collect();
        let g = from_edges_unit(100, &edges);
        assert!(DegreeStats::of(&g).is_skewed());
    }

    #[test]
    fn cut_of_path_bisection() {
        // Path 0-1-2-3 split in the middle: cut = 1.
        let g = from_edges_unit(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(edge_cut(&g, &[0, 0, 1, 1]), 1);
        assert_eq!(edge_cut(&g, &[0, 1, 0, 1]), 3);
        assert_eq!(edge_cut(&g, &[0, 0, 0, 0]), 0);
    }

    #[test]
    fn weighted_cut() {
        let g = from_edges_weighted(3, &[(0, 1, 5), (1, 2, 7)]);
        assert_eq!(edge_cut(&g, &[0, 0, 1]), 7);
        assert_eq!(edge_cut(&g, &[0, 1, 1]), 5);
    }

    #[test]
    fn boundary_and_volume_on_split_path() {
        // Path 0-1-2-3 split in the middle: vertices 1 and 2 are boundary,
        // each with one distinct remote part.
        let g = from_edges_unit(4, &[(0, 1), (1, 2), (2, 3)]);
        let part = [0, 0, 1, 1];
        assert_eq!(boundary_size(&g, &part), 2);
        assert_eq!(communication_volume(&g, &part), 2);
        assert_eq!(boundary_size(&g, &[0, 0, 0, 0]), 0);
        assert_eq!(communication_volume(&g, &[0, 0, 0, 0]), 0);
    }

    #[test]
    fn volume_counts_distinct_parts_once() {
        // Star hub with leaves in three different parts: hub contributes 3
        // (not its degree), each leaf contributes 1.
        let edges: Vec<(VId, VId)> = (1..7).map(|v| (0, v)).collect();
        let g = from_edges_unit(7, &edges);
        let part = [0, 1, 1, 2, 2, 3, 3];
        assert_eq!(communication_volume(&g, &part), 3 + 6);
        assert_eq!(boundary_size(&g, &part), 7);
    }

    #[test]
    fn balance_metrics() {
        let mut g = from_edges_unit(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(part_weights(&g, &[0, 0, 1, 1]), (2, 2));
        assert!((imbalance(&g, &[0, 0, 1, 1]) - 1.0).abs() < 1e-12);
        assert!((imbalance(&g, &[0, 0, 0, 1]) - 1.5).abs() < 1e-12);
        g.set_vwgt(vec![3, 1, 1, 3]);
        assert_eq!(part_weights(&g, &[0, 0, 1, 1]), (4, 4));
    }
}

//! Parallel edge-list → CSR construction.
//!
//! Generators and file readers produce each undirected edge once, possibly
//! with duplicates and self-loops (RMAT in particular emits both). The
//! builder symmetrizes, drops self-loops, merges duplicates, and sorts each
//! adjacency — producing a graph that satisfies every [`Csr`] invariant.

use crate::csr::{Csr, VId, Weight};
use mlcg_par::atomic::as_atomic_usize;
use mlcg_par::scan::exclusive_scan;
use mlcg_par::sort::insertion_sort_pairs;
use mlcg_par::{parallel_for, ExecPolicy};
use std::sync::atomic::Ordering;

/// Build an unweighted (all weights 1) undirected graph from an edge list.
/// Duplicate edges collapse to a single unit-weight edge; self-loops drop.
pub fn from_edges_unit(n: usize, edges: &[(VId, VId)]) -> Csr {
    let weighted: Vec<(VId, VId, Weight)> = edges.iter().map(|&(u, v)| (u, v, 1)).collect();
    build(&ExecPolicy::serial(), n, &weighted, MergeMode::Unit)
}

/// Build a weighted undirected graph; duplicate edges have weights summed.
pub fn from_edges_weighted(n: usize, edges: &[(VId, VId, Weight)]) -> Csr {
    build(&ExecPolicy::serial(), n, edges, MergeMode::Sum)
}

/// Parallel variant of [`from_edges_unit`].
pub fn from_edges_unit_par(policy: &ExecPolicy, n: usize, edges: &[(VId, VId)]) -> Csr {
    let weighted: Vec<(VId, VId, Weight)> = edges.iter().map(|&(u, v)| (u, v, 1)).collect();
    build(policy, n, &weighted, MergeMode::Unit)
}

/// Parallel variant of [`from_edges_weighted`].
pub fn from_edges_weighted_par(policy: &ExecPolicy, n: usize, edges: &[(VId, VId, Weight)]) -> Csr {
    build(policy, n, edges, MergeMode::Sum)
}

/// How duplicate edges are merged.
#[derive(Clone, Copy, PartialEq, Eq)]
enum MergeMode {
    /// Keep weight 1 no matter how many copies appear (unweighted input).
    Unit,
    /// Sum the weights of all copies.
    Sum,
}

fn build(policy: &ExecPolicy, n: usize, edges: &[(VId, VId, Weight)], mode: MergeMode) -> Csr {
    assert!(n <= u32::MAX as usize, "vertex count exceeds u32 id space");
    for &(u, v, w) in edges.iter().take(64) {
        // Cheap spot check; full bounds are asserted during counting below.
        debug_assert!(
            (u as usize) < n && (v as usize) < n && w > 0,
            "edge ({u},{v},{w}) out of range for n={n}"
        );
    }

    // 1. Count directed entries per vertex (both endpoints, skip loops).
    let mut counts = vec![0usize; n + 1];
    {
        let view = as_atomic_usize(&mut counts[..n]);
        parallel_for(policy, edges.len(), |i| {
            let (u, v, _) = edges[i];
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge endpoint out of range"
            );
            if u != v {
                view[u as usize].fetch_add(1, Ordering::Relaxed);
                view[v as usize].fetch_add(1, Ordering::Relaxed);
            }
        });
    }

    // 2. Offsets.
    let total = exclusive_scan(policy, &mut counts);
    let mut xadj = counts; // counts is now the offset array (n+1 entries)
    xadj[n] = total;

    // 3. Scatter both directions using atomic per-vertex cursors.
    let mut adj: Vec<VId> = vec![0; total];
    let mut wgt: Vec<Weight> = vec![0; total];
    {
        let mut cursors = xadj[..n].to_vec();
        let cur = as_atomic_usize(&mut cursors);
        let adj_base = adj.as_mut_ptr() as usize;
        let wgt_base = wgt.as_mut_ptr() as usize;
        parallel_for(policy, edges.len(), move |i| {
            let (u, v, w) = edges[i];
            if u == v {
                return;
            }
            // SAFETY: cursor slots are globally unique, so each write target
            // is claimed exactly once.
            unsafe {
                let a = adj_base as *mut VId;
                let x = wgt_base as *mut Weight;
                let pu = cur[u as usize].fetch_add(1, Ordering::Relaxed);
                a.add(pu).write(v);
                x.add(pu).write(w);
                let pv = cur[v as usize].fetch_add(1, Ordering::Relaxed);
                a.add(pv).write(u);
                x.add(pv).write(w);
            }
        });
    }

    // 4. Sort each adjacency and merge duplicates in place, recording the
    //    deduplicated degree.
    let mut new_deg = vec![0usize; n + 1];
    {
        let adj_base = adj.as_mut_ptr() as usize;
        let wgt_base = wgt.as_mut_ptr() as usize;
        let deg_base = new_deg.as_mut_ptr() as usize;
        let xadj_ref = &xadj;
        parallel_for(policy, n, move |u| {
            let s = xadj_ref[u];
            let e = xadj_ref[u + 1];
            // SAFETY: vertex segments are disjoint.
            let (a, x) = unsafe {
                (
                    std::slice::from_raw_parts_mut((adj_base as *mut VId).add(s), e - s),
                    std::slice::from_raw_parts_mut((wgt_base as *mut Weight).add(s), e - s),
                )
            };
            sort_pairs(a, x);
            let mut out = 0usize;
            let mut i = 0usize;
            while i < a.len() {
                let v = a[i];
                let mut w = x[i];
                i += 1;
                while i < a.len() && a[i] == v {
                    if mode == MergeMode::Sum {
                        w += x[i];
                    }
                    i += 1;
                }
                a[out] = v;
                x[out] = w;
                out += 1;
            }
            unsafe {
                (deg_base as *mut usize).add(u).write(out);
            }
        });
    }

    // 5. Compact into the final arrays.
    let new_total = exclusive_scan(policy, &mut new_deg);
    let mut fadj: Vec<VId> = vec![0; new_total];
    let mut fwgt: Vec<Weight> = vec![0; new_total];
    {
        let fadj_base = fadj.as_mut_ptr() as usize;
        let fwgt_base = fwgt.as_mut_ptr() as usize;
        let (xadj_ref, deg_ref, adj_ref, wgt_ref) = (&xadj, &new_deg, &adj, &wgt);
        parallel_for(policy, n, move |u| {
            let src = xadj_ref[u];
            let dst = deg_ref[u];
            let len = deg_ref[u + 1] - dst;
            // SAFETY: destination segments are disjoint.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    adj_ref.as_ptr().add(src),
                    (fadj_base as *mut VId).add(dst),
                    len,
                );
                std::ptr::copy_nonoverlapping(
                    wgt_ref.as_ptr().add(src),
                    (fwgt_base as *mut Weight).add(dst),
                    len,
                );
            }
        });
    }
    let mut fxadj = new_deg;
    fxadj[n] = new_total;
    Csr::from_parts(fxadj, fadj, fwgt)
}

fn sort_pairs(a: &mut [VId], x: &mut [Weight]) {
    if a.len() <= 24 {
        insertion_sort_pairs(a, x);
    } else {
        let mut idx: Vec<u32> = (0..a.len() as u32).collect();
        idx.sort_unstable_by_key(|&i| a[i as usize]);
        let na: Vec<VId> = idx.iter().map(|&i| a[i as usize]).collect();
        let nx: Vec<Weight> = idx.iter().map(|&i| x[i as usize]).collect();
        a.copy_from_slice(&na);
        x.copy_from_slice(&nx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_loop_removal() {
        // Duplicates (0,1)x3, a reversed duplicate (1,0), and a self loop.
        let g = from_edges_unit(3, &[(0, 1), (0, 1), (1, 0), (0, 1), (2, 2), (1, 2)]);
        g.validate().unwrap();
        assert_eq!(g.m(), 2);
        assert_eq!(g.find_edge(0, 1), Some(1), "unit mode collapses duplicates");
        assert_eq!(g.find_edge(1, 2), Some(1));
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn weighted_duplicates_sum() {
        let g = from_edges_weighted(2, &[(0, 1, 3), (1, 0, 4)]);
        g.validate().unwrap();
        assert_eq!(g.find_edge(0, 1), Some(7));
    }

    #[test]
    fn parallel_matches_serial() {
        let mut rng = mlcg_par::rng::Xoshiro256pp::new(5);
        let n = 2000usize;
        let edges: Vec<(VId, VId)> = (0..30_000)
            .map(|_| {
                (
                    rng.next_below(n as u64) as VId,
                    rng.next_below(n as u64) as VId,
                )
            })
            .collect();
        let serial = from_edges_unit(n, &edges);
        for policy in ExecPolicy::all_test_policies() {
            let par = from_edges_unit_par(&policy, n, &edges);
            assert_eq!(serial, par, "policy {policy}");
        }
        serial.validate().unwrap();
    }

    #[test]
    fn isolated_vertices_allowed() {
        let g = from_edges_unit(5, &[(0, 1)]);
        g.validate().unwrap();
        assert_eq!(g.n(), 5);
        assert_eq!(g.degree(4), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_endpoint_panics() {
        from_edges_unit(2, &[(0, 5)]);
    }

    #[test]
    fn empty_edge_list() {
        let g = from_edges_unit(3, &[]);
        g.validate().unwrap();
        assert_eq!(g.m(), 0);
        assert_eq!(g.n(), 3);
    }

    #[test]
    fn adjacency_is_sorted() {
        let g = from_edges_unit(6, &[(0, 5), (0, 2), (0, 4), (0, 1), (0, 3)]);
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4, 5]);
    }
}

//! Parallel edge-list → CSR construction.
//!
//! Generators and file readers produce each undirected edge once, possibly
//! with duplicates and self-loops (RMAT in particular emits both). The
//! builder symmetrizes, drops self-loops, merges duplicates, and sorts each
//! adjacency — producing a graph that satisfies every [`Csr`] invariant.
//!
//! The construction is organised as a two-pass chunked protocol
//! ([`StreamCsrBuilder`]): pass 1 counts directed entries per vertex over
//! any sequence of edge chunks, pass 2 replays the same chunks and scatters
//! into the final arrays through atomic per-vertex cursors. The in-memory
//! entry points below feed the whole slice as one chunk, and
//! [`crate::stream`] feeds file readers chunk-by-chunk — both paths run the
//! identical count/scatter/sort/merge phases, so a streamed build is
//! bit-identical to an in-memory build of the same edge multiset (the merge
//! operators are commutative and associative, and every adjacency is sorted
//! before merging, so chunk boundaries and scheduling cannot show through).

use crate::csr::{Csr, VId, Weight};
use mlcg_par::atomic::as_atomic_usize;
use mlcg_par::scan::exclusive_scan;
use mlcg_par::sort::insertion_sort_pairs;
use mlcg_par::{parallel_for, ExecPolicy};
use std::sync::atomic::Ordering;

/// Build an unweighted (all weights 1) undirected graph from an edge list.
/// Duplicate edges collapse to a single unit-weight edge; self-loops drop.
pub fn from_edges_unit(n: usize, edges: &[(VId, VId)]) -> Csr {
    let weighted: Vec<(VId, VId, Weight)> = edges.iter().map(|&(u, v)| (u, v, 1)).collect();
    build(&ExecPolicy::serial(), n, &weighted, MergeMode::Unit)
}

/// Build a weighted undirected graph; duplicate edges have weights summed.
pub fn from_edges_weighted(n: usize, edges: &[(VId, VId, Weight)]) -> Csr {
    build(&ExecPolicy::serial(), n, edges, MergeMode::Sum)
}

/// Parallel variant of [`from_edges_unit`].
pub fn from_edges_unit_par(policy: &ExecPolicy, n: usize, edges: &[(VId, VId)]) -> Csr {
    let weighted: Vec<(VId, VId, Weight)> = edges.iter().map(|&(u, v)| (u, v, 1)).collect();
    build(policy, n, &weighted, MergeMode::Unit)
}

/// Parallel variant of [`from_edges_weighted`].
pub fn from_edges_weighted_par(policy: &ExecPolicy, n: usize, edges: &[(VId, VId, Weight)]) -> Csr {
    build(policy, n, edges, MergeMode::Sum)
}

/// In-memory build with an explicit duplicate-merge mode. The reference
/// semantics the streamed path is property-tested against.
pub fn from_edges_with_mode(
    policy: &ExecPolicy,
    n: usize,
    edges: &[(VId, VId, Weight)],
    mode: MergeMode,
) -> Csr {
    build(policy, n, edges, mode)
}

/// How duplicate edges are merged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeMode {
    /// Keep weight 1 no matter how many copies appear (unweighted input).
    Unit,
    /// Sum the weights of all copies.
    Sum,
    /// Keep the maximum weight across copies. This is the correct merge for
    /// Matrix Market `general` files that store both triangles of a
    /// symmetric matrix: the `(i,j,w)` / `(j,i,w)` pair must collapse to
    /// `w`, not `2w`.
    Max,
}

/// Bytes of one staged edge item — the unit "auxiliary bytes" are measured
/// in. `(u32, u32, u64)` packs to 16 bytes.
pub const EDGE_ITEM_BYTES: usize = std::mem::size_of::<(VId, VId, Weight)>();

/// Tracks the staging memory a build holds for raw edge items — the part of
/// a build's footprint that the streaming path bounds by the chunk size.
/// The O(n) count/cursor arrays and the output CSR itself are *not* staging:
/// both paths need them and neither can avoid them.
#[derive(Default, Debug)]
pub struct StagingMeter {
    cur: usize,
    peak: usize,
}

impl StagingMeter {
    /// Record `bytes` of live staging.
    pub fn charge(&mut self, bytes: usize) {
        self.cur += bytes;
        self.peak = self.peak.max(self.cur);
    }

    /// Record that `bytes` of staging were released.
    pub fn release(&mut self, bytes: usize) {
        self.cur = self.cur.saturating_sub(bytes);
    }

    /// High-water mark of live staging bytes.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

enum Phase {
    Counting,
    Scattering { cursors: Vec<usize> },
}

/// Two-pass chunked CSR builder.
///
/// Protocol: construct with the exact vertex count, feed every edge chunk
/// through [`count_chunk`](Self::count_chunk), call
/// [`begin_scatter`](Self::begin_scatter), replay the *same* edge multiset
/// through [`scatter_chunk`](Self::scatter_chunk) (any chunking, any
/// order), then [`finish`](Self::finish). Feeding different edges in the
/// two passes is detected: scatter panics if a vertex receives more entries
/// than counted, and `finish` panics if any vertex received fewer.
pub struct StreamCsrBuilder {
    n: usize,
    mode: MergeMode,
    /// Counting: directed-entry counts (n+1). Scattering: offsets (n+1).
    xadj: Vec<usize>,
    adj: Vec<VId>,
    wgt: Vec<Weight>,
    phase: Phase,
    staging: StagingMeter,
}

impl StreamCsrBuilder {
    /// Start a build for a graph with exactly `n` vertices.
    pub fn new(n: usize, mode: MergeMode) -> Self {
        assert!(n <= u32::MAX as usize, "vertex count exceeds u32 id space");
        StreamCsrBuilder {
            n,
            mode,
            xadj: vec![0usize; n + 1],
            adj: Vec::new(),
            wgt: Vec::new(),
            phase: Phase::Counting,
            staging: StagingMeter::default(),
        }
    }

    /// Account staging bytes held by the caller (chunk buffers, edge
    /// slices) against this build's high-water mark.
    pub fn charge_staging(&mut self, bytes: usize) {
        self.staging.charge(bytes);
    }

    /// Release previously charged staging bytes.
    pub fn release_staging(&mut self, bytes: usize) {
        self.staging.release(bytes);
    }

    /// High-water mark of staged edge bytes so far.
    pub fn peak_staging_bytes(&self) -> usize {
        self.staging.peak()
    }

    /// Pass 1: count the directed entries contributed by one edge chunk
    /// (both endpoints, self-loops skipped).
    pub fn count_chunk(&mut self, policy: &ExecPolicy, chunk: &[(VId, VId, Weight)]) {
        assert!(
            matches!(self.phase, Phase::Counting),
            "count_chunk after begin_scatter"
        );
        let n = self.n;
        for &(u, v, w) in chunk.iter().take(64) {
            // Cheap spot check; full bounds are asserted during counting.
            debug_assert!(
                (u as usize) < n && (v as usize) < n && w > 0,
                "edge ({u},{v},{w}) out of range for n={n}"
            );
        }
        let view = as_atomic_usize(&mut self.xadj[..n]);
        parallel_for(policy, chunk.len(), |i| {
            let (u, v, _) = chunk[i];
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge endpoint out of range"
            );
            if u != v {
                view[u as usize].fetch_add(1, Ordering::Relaxed);
                view[v as usize].fetch_add(1, Ordering::Relaxed);
            }
        });
    }

    /// Turn the counts into offsets and allocate the staging adjacency.
    pub fn begin_scatter(&mut self, policy: &ExecPolicy) {
        assert!(
            matches!(self.phase, Phase::Counting),
            "begin_scatter called twice"
        );
        let total = exclusive_scan(policy, &mut self.xadj);
        self.xadj[self.n] = total;
        self.adj = vec![0; total];
        self.wgt = vec![0; total];
        let cursors = self.xadj[..self.n].to_vec();
        self.phase = Phase::Scattering { cursors };
    }

    /// Pass 2: scatter one edge chunk (both directions) through atomic
    /// per-vertex cursors.
    pub fn scatter_chunk(&mut self, policy: &ExecPolicy, chunk: &[(VId, VId, Weight)]) {
        let n = self.n;
        let Phase::Scattering { cursors } = &mut self.phase else {
            panic!("scatter_chunk before begin_scatter");
        };
        let cur = as_atomic_usize(cursors);
        let xadj_ref = &self.xadj;
        let adj_base = self.adj.as_mut_ptr() as usize;
        let wgt_base = self.wgt.as_mut_ptr() as usize;
        parallel_for(policy, chunk.len(), move |i| {
            let (u, v, w) = chunk[i];
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge endpoint out of range"
            );
            if u == v {
                return;
            }
            // SAFETY: cursor slots are globally unique (fetch_add), and the
            // bounds asserts guarantee each claimed slot lies inside the
            // vertex's counted segment — a source that yields more edges in
            // pass 2 than pass 1 panics instead of writing out of bounds.
            unsafe {
                let a = adj_base as *mut VId;
                let x = wgt_base as *mut Weight;
                let pu = cur[u as usize].fetch_add(1, Ordering::Relaxed);
                assert!(
                    pu < xadj_ref[u as usize + 1],
                    "edge source changed between passes (vertex {u} overfull)"
                );
                a.add(pu).write(v);
                x.add(pu).write(w);
                let pv = cur[v as usize].fetch_add(1, Ordering::Relaxed);
                assert!(
                    pv < xadj_ref[v as usize + 1],
                    "edge source changed between passes (vertex {v} overfull)"
                );
                a.add(pv).write(u);
                x.add(pv).write(w);
            }
        });
    }

    /// Sort each adjacency, merge duplicates according to the mode, compact
    /// and produce the final [`Csr`] plus the staging high-water mark.
    pub fn finish(self, policy: &ExecPolicy) -> (Csr, usize) {
        let StreamCsrBuilder {
            n,
            mode,
            xadj,
            mut adj,
            mut wgt,
            phase,
            staging,
        } = self;
        let Phase::Scattering { cursors } = phase else {
            panic!("finish before begin_scatter");
        };
        for u in 0..n {
            assert!(
                cursors[u] == xadj[u + 1],
                "edge source changed between passes (vertex {u} underfull)"
            );
        }
        drop(cursors);

        // Sort each adjacency and merge duplicates in place, recording the
        // deduplicated degree.
        let mut new_deg = vec![0usize; n + 1];
        {
            let adj_base = adj.as_mut_ptr() as usize;
            let wgt_base = wgt.as_mut_ptr() as usize;
            let deg_base = new_deg.as_mut_ptr() as usize;
            let xadj_ref = &xadj;
            parallel_for(policy, n, move |u| {
                let s = xadj_ref[u];
                let e = xadj_ref[u + 1];
                // SAFETY: vertex segments are disjoint.
                let (a, x) = unsafe {
                    (
                        std::slice::from_raw_parts_mut((adj_base as *mut VId).add(s), e - s),
                        std::slice::from_raw_parts_mut((wgt_base as *mut Weight).add(s), e - s),
                    )
                };
                sort_pairs(a, x);
                let mut out = 0usize;
                let mut i = 0usize;
                while i < a.len() {
                    let v = a[i];
                    // Unit mode pins the weight outright so the result is
                    // deterministic even if the input mixes weights.
                    let mut w = if mode == MergeMode::Unit { 1 } else { x[i] };
                    i += 1;
                    while i < a.len() && a[i] == v {
                        match mode {
                            MergeMode::Sum => w += x[i],
                            MergeMode::Max => w = w.max(x[i]),
                            MergeMode::Unit => {}
                        }
                        i += 1;
                    }
                    a[out] = v;
                    x[out] = w;
                    out += 1;
                }
                unsafe {
                    (deg_base as *mut usize).add(u).write(out);
                }
            });
        }

        // Compact into the final arrays.
        let new_total = exclusive_scan(policy, &mut new_deg);
        let mut fadj: Vec<VId> = vec![0; new_total];
        let mut fwgt: Vec<Weight> = vec![0; new_total];
        {
            let fadj_base = fadj.as_mut_ptr() as usize;
            let fwgt_base = fwgt.as_mut_ptr() as usize;
            let (xadj_ref, deg_ref, adj_ref, wgt_ref) = (&xadj, &new_deg, &adj, &wgt);
            parallel_for(policy, n, move |u| {
                let src = xadj_ref[u];
                let dst = deg_ref[u];
                let len = deg_ref[u + 1] - dst;
                // SAFETY: destination segments are disjoint.
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        adj_ref.as_ptr().add(src),
                        (fadj_base as *mut VId).add(dst),
                        len,
                    );
                    std::ptr::copy_nonoverlapping(
                        wgt_ref.as_ptr().add(src),
                        (fwgt_base as *mut Weight).add(dst),
                        len,
                    );
                }
            });
        }
        let mut fxadj = new_deg;
        fxadj[n] = new_total;
        (Csr::from_parts(fxadj, fadj, fwgt), staging.peak())
    }
}

fn build(policy: &ExecPolicy, n: usize, edges: &[(VId, VId, Weight)], mode: MergeMode) -> Csr {
    let mut b = StreamCsrBuilder::new(n, mode);
    // The whole edge list is staged at once — this is what the streaming
    // path avoids.
    b.charge_staging(edges.len() * EDGE_ITEM_BYTES);
    b.count_chunk(policy, edges);
    b.begin_scatter(policy);
    b.scatter_chunk(policy, edges);
    b.finish(policy).0
}

fn sort_pairs(a: &mut [VId], x: &mut [Weight]) {
    if a.len() <= 24 {
        insertion_sort_pairs(a, x);
    } else {
        let mut idx: Vec<u32> = (0..a.len() as u32).collect();
        idx.sort_unstable_by_key(|&i| a[i as usize]);
        let na: Vec<VId> = idx.iter().map(|&i| a[i as usize]).collect();
        let nx: Vec<Weight> = idx.iter().map(|&i| x[i as usize]).collect();
        a.copy_from_slice(&na);
        x.copy_from_slice(&nx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_loop_removal() {
        // Duplicates (0,1)x3, a reversed duplicate (1,0), and a self loop.
        let g = from_edges_unit(3, &[(0, 1), (0, 1), (1, 0), (0, 1), (2, 2), (1, 2)]);
        g.validate().unwrap();
        assert_eq!(g.m(), 2);
        assert_eq!(g.find_edge(0, 1), Some(1), "unit mode collapses duplicates");
        assert_eq!(g.find_edge(1, 2), Some(1));
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn weighted_duplicates_sum() {
        let g = from_edges_weighted(2, &[(0, 1, 3), (1, 0, 4)]);
        g.validate().unwrap();
        assert_eq!(g.find_edge(0, 1), Some(7));
    }

    #[test]
    fn max_merge_keeps_single_weight() {
        // The Matrix Market general-file shape: both triangles present.
        let policy = ExecPolicy::serial();
        let g = from_edges_with_mode(&policy, 2, &[(0, 1, 5), (1, 0, 5)], MergeMode::Max);
        g.validate().unwrap();
        assert_eq!(g.find_edge(0, 1), Some(5), "max merge must not double");
    }

    #[test]
    fn parallel_matches_serial() {
        let mut rng = mlcg_par::rng::Xoshiro256pp::new(5);
        let n = 2000usize;
        let edges: Vec<(VId, VId)> = (0..30_000)
            .map(|_| {
                (
                    rng.next_below(n as u64) as VId,
                    rng.next_below(n as u64) as VId,
                )
            })
            .collect();
        let serial = from_edges_unit(n, &edges);
        for policy in ExecPolicy::all_test_policies() {
            let par = from_edges_unit_par(&policy, n, &edges);
            assert_eq!(serial, par, "policy {policy}");
        }
        serial.validate().unwrap();
    }

    #[test]
    fn chunked_feed_matches_single_chunk() {
        let mut rng = mlcg_par::rng::Xoshiro256pp::new(9);
        let n = 500usize;
        let edges: Vec<(VId, VId, Weight)> = (0..5_000)
            .map(|_| {
                (
                    rng.next_below(n as u64) as VId,
                    rng.next_below(n as u64) as VId,
                    rng.next_below(9) + 1,
                )
            })
            .collect();
        let policy = ExecPolicy::serial();
        let whole = from_edges_weighted(n, &edges);
        for chunk in [1usize, 7, 64, 4096] {
            let mut b = StreamCsrBuilder::new(n, MergeMode::Sum);
            for c in edges.chunks(chunk) {
                b.count_chunk(&policy, c);
            }
            b.begin_scatter(&policy);
            // Replay in reverse chunk order: the result must not care.
            for c in edges.chunks(chunk).rev() {
                b.scatter_chunk(&policy, c);
            }
            let (g, _) = b.finish(&policy);
            assert_eq!(g, whole, "chunk size {chunk}");
        }
    }

    #[test]
    #[should_panic(expected = "changed between passes")]
    fn pass_mismatch_detected() {
        let policy = ExecPolicy::serial();
        let mut b = StreamCsrBuilder::new(3, MergeMode::Sum);
        b.count_chunk(&policy, &[(0, 1, 1)]);
        b.begin_scatter(&policy);
        b.scatter_chunk(&policy, &[(0, 1, 1), (1, 2, 1)]);
    }

    #[test]
    fn staging_meter_tracks_peak() {
        let mut m = StagingMeter::default();
        m.charge(100);
        m.charge(50);
        m.release(100);
        m.charge(20);
        assert_eq!(m.peak(), 150);
    }

    #[test]
    fn isolated_vertices_allowed() {
        let g = from_edges_unit(5, &[(0, 1)]);
        g.validate().unwrap();
        assert_eq!(g.n(), 5);
        assert_eq!(g.degree(4), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_endpoint_panics() {
        from_edges_unit(2, &[(0, 5)]);
    }

    #[test]
    fn empty_edge_list() {
        let g = from_edges_unit(3, &[]);
        g.validate().unwrap();
        assert_eq!(g.m(), 0);
        assert_eq!(g.n(), 3);
    }

    #[test]
    fn adjacency_is_sorted() {
        let g = from_edges_unit(6, &[(0, 5), (0, 2), (0, 4), (0, 1), (0, 3)]);
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4, 5]);
    }
}

//! Parallel edge-list → CSR construction.
//!
//! Generators and file readers produce each undirected edge once, possibly
//! with duplicates and self-loops (RMAT in particular emits both). The
//! builder symmetrizes, drops self-loops, merges duplicates, and sorts each
//! adjacency — producing a graph that satisfies every [`Csr`] invariant.
//!
//! The construction is organised as a two-pass chunked protocol
//! ([`StreamCsrBuilder`]): pass 1 counts directed entries per vertex over
//! any sequence of edge chunks, pass 2 replays the same chunks and scatters
//! into the final arrays through atomic per-vertex cursors. The in-memory
//! entry points below feed the whole slice as one chunk, and
//! [`crate::stream`] feeds file readers chunk-by-chunk — both paths run the
//! identical count/scatter/sort/merge phases, so a streamed build is
//! bit-identical to an in-memory build of the same edge multiset (the merge
//! operators are commutative and associative, and every adjacency is sorted
//! before merging, so chunk boundaries and scheduling cannot show through).
//!
//! The builder's transient footprint is kept close to the output graph's
//! own size: scatter cursors and deduplicated-degree counts use `u32` words
//! whenever the entry count fits (mirroring [`Offsets`]' width rule), and
//! duplicate compaction runs in place instead of into a second copy of the
//! adjacency. The heap-telemetry suite (`bench-ingest` with tracing)
//! cross-checks the whole-build peak against `staging + Csr::heap_bytes()`.

use crate::csr::{Csr, Offsets, VId, Weight};
use mlcg_par::atomic::{as_atomic_u32, as_atomic_usize};
use mlcg_par::scan::{exclusive_scan, ScanElem};
use mlcg_par::sort::insertion_sort_pairs;
use mlcg_par::{parallel_for, ExecPolicy};
use std::sync::atomic::Ordering;

/// Build an unweighted (all weights 1) undirected graph from an edge list.
/// Duplicate edges collapse to a single unit-weight edge; self-loops drop.
pub fn from_edges_unit(n: usize, edges: &[(VId, VId)]) -> Csr {
    let weighted: Vec<(VId, VId, Weight)> = edges.iter().map(|&(u, v)| (u, v, 1)).collect();
    build(&ExecPolicy::serial(), n, &weighted, MergeMode::Unit)
}

/// Build a weighted undirected graph; duplicate edges have weights summed.
pub fn from_edges_weighted(n: usize, edges: &[(VId, VId, Weight)]) -> Csr {
    build(&ExecPolicy::serial(), n, edges, MergeMode::Sum)
}

/// Parallel variant of [`from_edges_unit`].
pub fn from_edges_unit_par(policy: &ExecPolicy, n: usize, edges: &[(VId, VId)]) -> Csr {
    let weighted: Vec<(VId, VId, Weight)> = edges.iter().map(|&(u, v)| (u, v, 1)).collect();
    build(policy, n, &weighted, MergeMode::Unit)
}

/// Parallel variant of [`from_edges_weighted`].
pub fn from_edges_weighted_par(policy: &ExecPolicy, n: usize, edges: &[(VId, VId, Weight)]) -> Csr {
    build(policy, n, edges, MergeMode::Sum)
}

/// In-memory build with an explicit duplicate-merge mode. The reference
/// semantics the streamed path is property-tested against.
pub fn from_edges_with_mode(
    policy: &ExecPolicy,
    n: usize,
    edges: &[(VId, VId, Weight)],
    mode: MergeMode,
) -> Csr {
    build(policy, n, edges, mode)
}

/// How duplicate edges are merged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeMode {
    /// Keep weight 1 no matter how many copies appear (unweighted input).
    Unit,
    /// Sum the weights of all copies.
    Sum,
    /// Keep the maximum weight across copies. This is the correct merge for
    /// Matrix Market `general` files that store both triangles of a
    /// symmetric matrix: the `(i,j,w)` / `(j,i,w)` pair must collapse to
    /// `w`, not `2w`.
    Max,
}

/// Bytes of one staged edge item — the unit "auxiliary bytes" are measured
/// in. `(u32, u32, u64)` packs to 16 bytes.
pub const EDGE_ITEM_BYTES: usize = std::mem::size_of::<(VId, VId, Weight)>();

/// Scatter-phase per-vertex write cursors. The narrow arm is used whenever
/// the total entry count fits in `u32` (the same rule [`Offsets`] applies),
/// halving the cursor array — on a graph whose offsets narrow, the wide
/// cursors would otherwise be the largest transient the builder holds.
enum Cursors {
    Narrow(Vec<u32>),
    Wide(Vec<usize>),
}

enum Phase {
    Counting,
    Scattering { cursors: Cursors },
}

/// Two-pass chunked CSR builder.
///
/// Protocol: construct with the exact vertex count, feed every edge chunk
/// through [`count_chunk`](Self::count_chunk), call
/// [`begin_scatter`](Self::begin_scatter), replay the *same* edge multiset
/// through [`scatter_chunk`](Self::scatter_chunk) (any chunking, any
/// order), then [`finish`](Self::finish). Feeding different edges in the
/// two passes is detected: scatter panics if a vertex receives more entries
/// than counted, and `finish` panics if any vertex received fewer.
pub struct StreamCsrBuilder {
    n: usize,
    mode: MergeMode,
    /// Counting: directed-entry counts (n+1). Scattering: offsets (n+1).
    xadj: Vec<usize>,
    adj: Vec<VId>,
    wgt: Vec<Weight>,
    phase: Phase,
}

impl StreamCsrBuilder {
    /// Start a build for a graph with exactly `n` vertices.
    pub fn new(n: usize, mode: MergeMode) -> Self {
        assert!(n <= u32::MAX as usize, "vertex count exceeds u32 id space");
        StreamCsrBuilder {
            n,
            mode,
            xadj: vec![0usize; n + 1],
            adj: Vec::new(),
            wgt: Vec::new(),
            phase: Phase::Counting,
        }
    }

    /// Pass 1: count the directed entries contributed by one edge chunk
    /// (both endpoints, self-loops skipped).
    pub fn count_chunk(&mut self, policy: &ExecPolicy, chunk: &[(VId, VId, Weight)]) {
        assert!(
            matches!(self.phase, Phase::Counting),
            "count_chunk after begin_scatter"
        );
        let n = self.n;
        for &(u, v, w) in chunk.iter().take(64) {
            // Cheap spot check; full bounds are asserted during counting.
            debug_assert!(
                (u as usize) < n && (v as usize) < n && w > 0,
                "edge ({u},{v},{w}) out of range for n={n}"
            );
        }
        let view = as_atomic_usize(&mut self.xadj[..n]);
        parallel_for(policy, chunk.len(), |i| {
            let (u, v, _) = chunk[i];
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge endpoint out of range"
            );
            if u != v {
                view[u as usize].fetch_add(1, Ordering::Relaxed);
                view[v as usize].fetch_add(1, Ordering::Relaxed);
            }
        });
    }

    /// Turn the counts into offsets and allocate the staging adjacency.
    pub fn begin_scatter(&mut self, policy: &ExecPolicy) {
        assert!(
            matches!(self.phase, Phase::Counting),
            "begin_scatter called twice"
        );
        let total = exclusive_scan(policy, &mut self.xadj);
        self.xadj[self.n] = total;
        self.adj = vec![0; total];
        self.wgt = vec![0; total];
        let cursors = if total <= u32::MAX as usize {
            Cursors::Narrow(self.xadj[..self.n].iter().map(|&x| x as u32).collect())
        } else {
            Cursors::Wide(self.xadj[..self.n].to_vec())
        };
        self.phase = Phase::Scattering { cursors };
    }

    /// Pass 2: scatter one edge chunk (both directions) through atomic
    /// per-vertex cursors.
    pub fn scatter_chunk(&mut self, policy: &ExecPolicy, chunk: &[(VId, VId, Weight)]) {
        let n = self.n;
        let Phase::Scattering { cursors } = &mut self.phase else {
            panic!("scatter_chunk before begin_scatter");
        };
        let xadj = &self.xadj;
        let adj_base = self.adj.as_mut_ptr() as usize;
        let wgt_base = self.wgt.as_mut_ptr() as usize;
        // A narrow cursor cannot wrap: legitimate claims are bounded by the
        // total (≤ u32::MAX by construction), and a torn source drives at
        // most one out-of-bounds claim per racing thread before the bounds
        // assert panics.
        match cursors {
            Cursors::Narrow(c) => {
                let cur = as_atomic_u32(c);
                scatter_with(policy, chunk, n, xadj, adj_base, wgt_base, |u| {
                    cur[u].fetch_add(1, Ordering::Relaxed) as usize
                });
            }
            Cursors::Wide(c) => {
                let cur = as_atomic_usize(c);
                scatter_with(policy, chunk, n, xadj, adj_base, wgt_base, |u| {
                    cur[u].fetch_add(1, Ordering::Relaxed)
                });
            }
        }
    }

    /// Sort each adjacency, merge duplicates according to the mode, compact
    /// in place and produce the final [`Csr`].
    pub fn finish(self, policy: &ExecPolicy) -> Csr {
        let StreamCsrBuilder {
            n,
            mode,
            xadj,
            adj,
            wgt,
            phase,
        } = self;
        let Phase::Scattering { cursors } = phase else {
            panic!("finish before begin_scatter");
        };
        match &cursors {
            Cursors::Narrow(c) => {
                for u in 0..n {
                    assert!(
                        c[u] as usize == xadj[u + 1],
                        "edge source changed between passes (vertex {u} underfull)"
                    );
                }
            }
            Cursors::Wide(c) => {
                for u in 0..n {
                    assert!(
                        c[u] == xadj[u + 1],
                        "edge source changed between passes (vertex {u} underfull)"
                    );
                }
            }
        }
        drop(cursors);

        // Deduplicated degrees (and the offsets scanned from them) are kept
        // at the width the final graph will use, so the finish phase never
        // materializes a full-width offset array that Offsets::from_usize
        // would immediately discard.
        let total = xadj[n];
        if total <= u32::MAX as usize {
            let (off, adj, wgt) = finish_arrays::<u32>(policy, n, xadj, adj, wgt, mode);
            Csr::from_offsets(Offsets::U32(off), adj, wgt)
        } else {
            let (off, adj, wgt) = finish_arrays::<usize>(policy, n, xadj, adj, wgt, mode);
            Csr::from_offsets(Offsets::from_usize(off), adj, wgt)
        }
    }
}

/// Integer word used for deduplicated degrees/offsets — `u32` when the
/// entry count fits, matching the final [`Offsets`] width.
trait DegWord: ScanElem {
    fn from_usize(x: usize) -> Self;
    fn to_usize(self) -> usize;
}

impl DegWord for u32 {
    fn from_usize(x: usize) -> Self {
        x as u32
    }
    fn to_usize(self) -> usize {
        self as usize
    }
}

impl DegWord for usize {
    fn from_usize(x: usize) -> Self {
        x
    }
    fn to_usize(self) -> usize {
        self
    }
}

/// Scatter one chunk through a width-specific `claim` (atomic fetch-add on
/// the matching cursor array). Monomorphized per width — no per-edge
/// dispatch.
fn scatter_with(
    policy: &ExecPolicy,
    chunk: &[(VId, VId, Weight)],
    n: usize,
    xadj: &[usize],
    adj_base: usize,
    wgt_base: usize,
    claim: impl Fn(usize) -> usize + Sync,
) {
    parallel_for(policy, chunk.len(), move |i| {
        let (u, v, w) = chunk[i];
        assert!(
            (u as usize) < n && (v as usize) < n,
            "edge endpoint out of range"
        );
        if u == v {
            return;
        }
        // SAFETY: cursor slots are globally unique (fetch_add), and the
        // bounds asserts guarantee each claimed slot lies inside the
        // vertex's counted segment — a source that yields more edges in
        // pass 2 than pass 1 panics instead of writing out of bounds.
        unsafe {
            let a = adj_base as *mut VId;
            let x = wgt_base as *mut Weight;
            let pu = claim(u as usize);
            assert!(
                pu < xadj[u as usize + 1],
                "edge source changed between passes (vertex {u} overfull)"
            );
            a.add(pu).write(v);
            x.add(pu).write(w);
            let pv = claim(v as usize);
            assert!(
                pv < xadj[v as usize + 1],
                "edge source changed between passes (vertex {v} overfull)"
            );
            a.add(pv).write(u);
            x.add(pv).write(w);
        }
    });
}

/// Sort/merge every adjacency in place and compact out the dropped
/// duplicates, returning `(scanned offsets, adj, wgt)` with the offsets at
/// width `D`.
fn finish_arrays<D: DegWord>(
    policy: &ExecPolicy,
    n: usize,
    xadj: Vec<usize>,
    mut adj: Vec<VId>,
    mut wgt: Vec<Weight>,
    mode: MergeMode,
) -> (Vec<D>, Vec<VId>, Vec<Weight>) {
    let total = xadj[n];

    // Sort each adjacency and merge duplicates in place, recording the
    // deduplicated degree.
    let mut new_deg: Vec<D> = vec![D::default(); n + 1];
    {
        let adj_base = adj.as_mut_ptr() as usize;
        let wgt_base = wgt.as_mut_ptr() as usize;
        let deg_base = new_deg.as_mut_ptr() as usize;
        let xadj_ref = &xadj;
        parallel_for(policy, n, move |u| {
            let s = xadj_ref[u];
            let e = xadj_ref[u + 1];
            // SAFETY: vertex segments are disjoint.
            let (a, x) = unsafe {
                (
                    std::slice::from_raw_parts_mut((adj_base as *mut VId).add(s), e - s),
                    std::slice::from_raw_parts_mut((wgt_base as *mut Weight).add(s), e - s),
                )
            };
            sort_pairs(a, x);
            let mut out = 0usize;
            let mut i = 0usize;
            while i < a.len() {
                let v = a[i];
                // Unit mode pins the weight outright so the result is
                // deterministic even if the input mixes weights.
                let mut w = if mode == MergeMode::Unit { 1 } else { x[i] };
                i += 1;
                while i < a.len() && a[i] == v {
                    match mode {
                        MergeMode::Sum => w += x[i],
                        MergeMode::Max => w = w.max(x[i]),
                        MergeMode::Unit => {}
                    }
                    i += 1;
                }
                a[out] = v;
                x[out] = w;
                out += 1;
            }
            unsafe {
                (deg_base as *mut D).add(u).write(D::from_usize(out));
            }
        });
    }

    let new_total = exclusive_scan(policy, &mut new_deg).to_usize();
    new_deg[n] = D::from_usize(new_total);

    // Compact the surviving entries to the front — in place, so the build
    // never holds a second copy of the adjacency. Every destination lies
    // at-or-left-of its source, but a vertex's destination range can
    // overlap an *earlier* vertex's source range, so the moves must run in
    // vertex order: a parallel schedule could overwrite entries a lagging
    // earlier vertex still has to read. The sweep is one bandwidth-bound
    // pass and only runs when duplicates or self-loops were actually
    // dropped.
    if new_total < total {
        for u in 0..n {
            let src = xadj[u];
            let dst = new_deg[u].to_usize();
            let len = new_deg[u + 1].to_usize() - dst;
            if len == 0 || dst == src {
                continue;
            }
            adj.copy_within(src..src + len, dst);
            wgt.copy_within(src..src + len, dst);
        }
        adj.truncate(new_total);
        wgt.truncate(new_total);
        adj.shrink_to_fit();
        wgt.shrink_to_fit();
    }
    drop(xadj);
    (new_deg, adj, wgt)
}

fn build(policy: &ExecPolicy, n: usize, edges: &[(VId, VId, Weight)], mode: MergeMode) -> Csr {
    let mut b = StreamCsrBuilder::new(n, mode);
    b.count_chunk(policy, edges);
    b.begin_scatter(policy);
    b.scatter_chunk(policy, edges);
    b.finish(policy)
}

fn sort_pairs(a: &mut [VId], x: &mut [Weight]) {
    if a.len() <= 24 {
        insertion_sort_pairs(a, x);
    } else {
        let mut idx: Vec<u32> = (0..a.len() as u32).collect();
        idx.sort_unstable_by_key(|&i| a[i as usize]);
        let na: Vec<VId> = idx.iter().map(|&i| a[i as usize]).collect();
        let nx: Vec<Weight> = idx.iter().map(|&i| x[i as usize]).collect();
        a.copy_from_slice(&na);
        x.copy_from_slice(&nx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_loop_removal() {
        // Duplicates (0,1)x3, a reversed duplicate (1,0), and a self loop.
        let g = from_edges_unit(3, &[(0, 1), (0, 1), (1, 0), (0, 1), (2, 2), (1, 2)]);
        g.validate().unwrap();
        assert_eq!(g.m(), 2);
        assert_eq!(g.find_edge(0, 1), Some(1), "unit mode collapses duplicates");
        assert_eq!(g.find_edge(1, 2), Some(1));
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn weighted_duplicates_sum() {
        let g = from_edges_weighted(2, &[(0, 1, 3), (1, 0, 4)]);
        g.validate().unwrap();
        assert_eq!(g.find_edge(0, 1), Some(7));
    }

    #[test]
    fn max_merge_keeps_single_weight() {
        // The Matrix Market general-file shape: both triangles present.
        let policy = ExecPolicy::serial();
        let g = from_edges_with_mode(&policy, 2, &[(0, 1, 5), (1, 0, 5)], MergeMode::Max);
        g.validate().unwrap();
        assert_eq!(g.find_edge(0, 1), Some(5), "max merge must not double");
    }

    #[test]
    fn parallel_matches_serial() {
        let mut rng = mlcg_par::rng::Xoshiro256pp::new(5);
        let n = 2000usize;
        let edges: Vec<(VId, VId)> = (0..30_000)
            .map(|_| {
                (
                    rng.next_below(n as u64) as VId,
                    rng.next_below(n as u64) as VId,
                )
            })
            .collect();
        let serial = from_edges_unit(n, &edges);
        for policy in ExecPolicy::all_test_policies() {
            let par = from_edges_unit_par(&policy, n, &edges);
            assert_eq!(serial, par, "policy {policy}");
        }
        serial.validate().unwrap();
    }

    #[test]
    fn chunked_feed_matches_single_chunk() {
        let mut rng = mlcg_par::rng::Xoshiro256pp::new(9);
        let n = 500usize;
        let edges: Vec<(VId, VId, Weight)> = (0..5_000)
            .map(|_| {
                (
                    rng.next_below(n as u64) as VId,
                    rng.next_below(n as u64) as VId,
                    rng.next_below(9) + 1,
                )
            })
            .collect();
        let policy = ExecPolicy::serial();
        let whole = from_edges_weighted(n, &edges);
        for chunk in [1usize, 7, 64, 4096] {
            let mut b = StreamCsrBuilder::new(n, MergeMode::Sum);
            for c in edges.chunks(chunk) {
                b.count_chunk(&policy, c);
            }
            b.begin_scatter(&policy);
            // Replay in reverse chunk order: the result must not care.
            for c in edges.chunks(chunk).rev() {
                b.scatter_chunk(&policy, c);
            }
            let g = b.finish(&policy);
            assert_eq!(g, whole, "chunk size {chunk}");
        }
    }

    #[test]
    #[should_panic(expected = "changed between passes")]
    fn pass_mismatch_detected() {
        let policy = ExecPolicy::serial();
        let mut b = StreamCsrBuilder::new(3, MergeMode::Sum);
        b.count_chunk(&policy, &[(0, 1, 1)]);
        b.begin_scatter(&policy);
        b.scatter_chunk(&policy, &[(0, 1, 1), (1, 2, 1)]);
    }

    #[test]
    fn isolated_vertices_allowed() {
        let g = from_edges_unit(5, &[(0, 1)]);
        g.validate().unwrap();
        assert_eq!(g.n(), 5);
        assert_eq!(g.degree(4), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_endpoint_panics() {
        from_edges_unit(2, &[(0, 5)]);
    }

    #[test]
    fn empty_edge_list() {
        let g = from_edges_unit(3, &[]);
        g.validate().unwrap();
        assert_eq!(g.m(), 0);
        assert_eq!(g.n(), 3);
    }

    #[test]
    fn adjacency_is_sorted() {
        let g = from_edges_unit(6, &[(0, 5), (0, 2), (0, 4), (0, 1), (0, 3)]);
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4, 5]);
    }
}

//! Chunked, memory-bounded edge ingestion.
//!
//! An [`EdgeSource`] yields a graph's edge multiset a bounded chunk at a
//! time and can be rewound, which is exactly what the two-pass
//! [`StreamCsrBuilder`](crate::builder::StreamCsrBuilder) protocol needs:
//! pass 1 streams every chunk through the degree counter, the source is
//! reset, and pass 2 streams the same chunks through the scatter phase. At
//! no point does more than one chunk of raw edges live in memory, so the
//! auxiliary footprint of a build is `chunk_edges ×
//! `[`crate::builder::EDGE_ITEM_BYTES`]` bytes regardless of the graph's
//! total edge count.
//!
//! The result is bit-identical to handing the whole edge list to the
//! in-memory builder: both run the same count/scatter/sort/merge phases,
//! and the merge operators are chunking- and order-invariant.

use crate::builder::{MergeMode, StreamCsrBuilder};
use crate::csr::{Csr, VId, Weight};
use mlcg_par::ExecPolicy;
use std::io;

/// A rewindable, chunk-at-a-time producer of weighted edges.
///
/// Sources must yield the same edge multiset on every pass (chunk
/// boundaries may differ); the builder panics if the two passes disagree.
/// Self-loops may be yielded — the builder drops them — and duplicates are
/// merged according to the build's [`MergeMode`].
pub trait EdgeSource {
    /// Exact number of vertices; every yielded endpoint must be `< n`.
    fn n(&self) -> usize;

    /// Rewind to the first edge. Called once before each pass.
    fn reset(&mut self) -> io::Result<()>;

    /// Clear `out` and fill it with up to `max` edges. Returns the number
    /// of edges produced; `0` signals end of stream.
    fn next_chunk(&mut self, out: &mut Vec<(VId, VId, Weight)>, max: usize) -> io::Result<usize>;
}

/// Knobs for a streamed build.
pub struct IngestOptions {
    /// Edges held in memory at once. The auxiliary footprint of a build is
    /// `chunk_edges × EDGE_ITEM_BYTES` bytes (16 MiB at the default).
    pub chunk_edges: usize,
    /// Execution policy for the parallel count/scatter/sort phases.
    pub policy: ExecPolicy,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            chunk_edges: 1 << 20,
            policy: ExecPolicy::host(),
        }
    }
}

/// What a streamed build observed.
#[derive(Clone, Debug)]
pub struct IngestStats {
    /// Vertices in the produced graph.
    pub n: usize,
    /// Undirected edges after symmetrize/dedup/loop-drop.
    pub m: usize,
    /// Directed CSR entries (`2m`).
    pub directed_entries: usize,
    /// Raw edges yielded by the source in one pass.
    pub edges_streamed: u64,
    /// Chunks the source was split into (one pass).
    pub chunks: u64,
    /// High-water mark of staged edge bytes (chunk buffer).
    pub peak_staging_bytes: usize,
    /// Whether the final offsets engaged the narrow `u32` representation.
    pub offsets_are_u32: bool,
}

/// Stream `src` through the two-pass builder and produce a [`Csr`]
/// bit-identical to the in-memory build of the same edge multiset.
pub fn build_csr(
    src: &mut dyn EdgeSource,
    mode: MergeMode,
    opts: &IngestOptions,
) -> io::Result<(Csr, IngestStats)> {
    assert!(opts.chunk_edges > 0, "chunk_edges must be positive");
    let mut b = StreamCsrBuilder::new(src.n(), mode);
    // The chunk buffer is the build's only staging; its footprint is
    // measured by the tracking allocator rather than computed, so the
    // reported number is what the process actually held (sources never
    // grow the buffer past its capacity — `next_chunk` is bounded by
    // `max`, and the debug assert below catches an overfilling source).
    let (mut buf, staging) =
        mlcg_par::mem::measure(|| Vec::<(VId, VId, Weight)>::with_capacity(opts.chunk_edges));
    let peak_staging_bytes = staging.peak_bytes as usize;

    let (mut edges_streamed, mut chunks) = (0u64, 0u64);
    src.reset()?;
    loop {
        let k = src.next_chunk(&mut buf, opts.chunk_edges)?;
        if k == 0 {
            break;
        }
        debug_assert!(
            buf.len() == k && k <= opts.chunk_edges,
            "source overfilled chunk"
        );
        edges_streamed += k as u64;
        chunks += 1;
        b.count_chunk(&opts.policy, &buf);
    }

    b.begin_scatter(&opts.policy);
    src.reset()?;
    loop {
        let k = src.next_chunk(&mut buf, opts.chunk_edges)?;
        if k == 0 {
            break;
        }
        b.scatter_chunk(&opts.policy, &buf);
    }

    // Release the staging buffer before the sort/merge/compact phase so the
    // build's true high-water mark is the scatter arrays, not scatter plus a
    // dead chunk buffer.
    drop(buf);
    let g = b.finish(&opts.policy);
    let stats = IngestStats {
        n: g.n(),
        m: g.m(),
        directed_entries: g.num_entries(),
        edges_streamed,
        chunks,
        peak_staging_bytes,
        offsets_are_u32: g.offsets_are_u32(),
    };
    Ok((g, stats))
}

/// An in-memory slice as an [`EdgeSource`] — the reference source for
/// property tests and for benchmarking the streaming overhead in
/// isolation from file IO.
pub struct SliceSource<'a> {
    n: usize,
    edges: &'a [(VId, VId, Weight)],
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// Wrap a slice of edges over `n` vertices.
    pub fn new(n: usize, edges: &'a [(VId, VId, Weight)]) -> Self {
        SliceSource { n, edges, pos: 0 }
    }
}

impl EdgeSource for SliceSource<'_> {
    fn n(&self) -> usize {
        self.n
    }

    fn reset(&mut self) -> io::Result<()> {
        self.pos = 0;
        Ok(())
    }

    fn next_chunk(&mut self, out: &mut Vec<(VId, VId, Weight)>, max: usize) -> io::Result<usize> {
        out.clear();
        let k = max.min(self.edges.len() - self.pos);
        out.extend_from_slice(&self.edges[self.pos..self.pos + k]);
        self.pos += k;
        Ok(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{from_edges_with_mode, EDGE_ITEM_BYTES};

    fn random_edges(n: usize, m: usize, seed: u64) -> Vec<(VId, VId, Weight)> {
        let mut rng = mlcg_par::rng::Xoshiro256pp::new(seed);
        (0..m)
            .map(|_| {
                (
                    rng.next_below(n as u64) as VId,
                    rng.next_below(n as u64) as VId,
                    rng.next_below(9) + 1,
                )
            })
            .collect()
    }

    #[test]
    fn streamed_equals_in_memory_across_chunkings() {
        let n = 300;
        let edges = random_edges(n, 4000, 3);
        for mode in [MergeMode::Unit, MergeMode::Sum, MergeMode::Max] {
            let reference = from_edges_with_mode(&ExecPolicy::serial(), n, &edges, mode);
            for chunk_edges in [1usize, 3, 64, 100_000] {
                let mut src = SliceSource::new(n, &edges);
                let opts = IngestOptions {
                    chunk_edges,
                    policy: ExecPolicy::serial(),
                };
                let (g, stats) = build_csr(&mut src, mode, &opts).unwrap();
                assert_eq!(g, reference, "mode {mode:?} chunk {chunk_edges}");
                assert_eq!(stats.edges_streamed, 4000);
                assert_eq!(stats.chunks, 4000u64.div_ceil(chunk_edges as u64));
                assert_eq!(
                    stats.peak_staging_bytes,
                    chunk_edges * EDGE_ITEM_BYTES,
                    "staging must be bounded by the chunk, not total m"
                );
            }
        }
    }

    #[test]
    fn stats_describe_final_graph() {
        let edges = [(0, 1, 2), (1, 0, 3), (2, 2, 9), (1, 2, 1)];
        let mut src = SliceSource::new(3, &edges);
        let opts = IngestOptions {
            chunk_edges: 2,
            policy: ExecPolicy::serial(),
        };
        let (g, stats) = build_csr(&mut src, MergeMode::Sum, &opts).unwrap();
        g.validate().unwrap();
        assert_eq!(stats.n, 3);
        assert_eq!(stats.m, 2, "loop dropped, duplicate merged");
        assert_eq!(stats.directed_entries, 4);
        assert_eq!(stats.edges_streamed, 4);
        assert!(stats.offsets_are_u32);
        assert_eq!(g.find_edge(0, 1), Some(5));
    }

    #[test]
    fn empty_source_yields_edgeless_graph() {
        let mut src = SliceSource::new(4, &[]);
        let (g, stats) = build_csr(&mut src, MergeMode::Unit, &IngestOptions::default()).unwrap();
        g.validate().unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 0);
        assert_eq!(stats.chunks, 0);
    }
}

//! The small weighted illustration graph used by the Fig. 1 / Fig. 2
//! reproductions.
//!
//! The paper's Fig. 1 shows one level of coarsening by each method on a
//! small weighted graph. We use a 16-vertex graph with two mesh-like
//! clusters, a hub, and a pendant chain, with varied edge weights so HEC,
//! HEM, two-hop, GOSH and MIS2 all produce visibly different aggregates,
//! and so HEC's create/inherit/skip edge classification (Fig. 2) is
//! non-trivial.

use crate::builder::from_edges_weighted;
use crate::csr::Csr;

/// The 16-vertex illustration graph.
pub fn fig1_graph() -> Csr {
    // Cluster A (0..5): a weighted wheel. Cluster B (6..11): a grid patch.
    // Vertex 12: hub bridging both. 13-14-15: pendant chain off vertex 12.
    let edges = [
        // cluster A
        (0u32, 1u32, 9u64),
        (1, 2, 7),
        (2, 3, 8),
        (3, 4, 6),
        (4, 0, 5),
        (0, 5, 4),
        (1, 5, 3),
        (2, 5, 2),
        (3, 5, 2),
        (4, 5, 3),
        // cluster B
        (6, 7, 8),
        (7, 8, 9),
        (6, 9, 7),
        (7, 10, 6),
        (8, 11, 8),
        (9, 10, 9),
        (10, 11, 7),
        (6, 10, 2),
        // hub 12 bridges the clusters with light edges
        (12, 0, 1),
        (12, 2, 1),
        (12, 6, 1),
        (12, 9, 1),
        (12, 4, 1),
        // pendant chain
        (12, 13, 2),
        (13, 14, 5),
        (14, 15, 4),
    ];
    let g = from_edges_weighted(16, &edges);
    debug_assert!(g.validate().is_ok());
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::is_connected;

    #[test]
    fn fig1_graph_shape() {
        let g = fig1_graph();
        g.validate().unwrap();
        assert_eq!(g.n(), 16);
        assert_eq!(g.m(), 26);
        assert!(is_connected(&g));
        // The hub has degree 6; the chain tail has degree 1.
        assert_eq!(g.degree(12), 6);
        assert_eq!(g.degree(15), 1);
    }

    #[test]
    fn weights_are_varied() {
        let g = fig1_graph();
        let mut distinct: Vec<u64> = g.wgt().to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(
            distinct.len() >= 5,
            "need varied weights for interesting heavy edges"
        );
    }
}

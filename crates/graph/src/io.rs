//! Graph file I/O: Matrix Market, METIS, and DOT.
//!
//! The paper's corpus comes from the SuiteSparse collection (Matrix Market
//! files) and OGB; these readers let a user of this library run the same
//! pipelines on real downloaded data. DOT export is used by the Fig. 1/2
//! reproductions.

use crate::builder::from_edges_weighted;
use crate::csr::{Csr, VId, Weight};
use std::io::{self, BufRead, BufWriter, Write as _};
use std::path::Path;

/// Read an undirected graph from a Matrix Market file.
///
/// Accepts `matrix coordinate (pattern|integer|real) (general|symmetric)`.
/// Real weights are rounded to positive integers (minimum 1); the matrix is
/// symmetrized; diagonal entries are dropped.
pub fn read_matrix_market(path: &Path) -> io::Result<Csr> {
    let file = std::fs::File::open(path)?;
    let mut lines = io::BufReader::new(file).lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty file"))??;
    let h = header.to_ascii_lowercase();
    if !h.starts_with("%%matrixmarket matrix coordinate") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported MatrixMarket header: {header}"),
        ));
    }
    let pattern = h.contains("pattern");

    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        if line.starts_with('%') || line.trim().is_empty() {
            continue;
        }
        size_line = Some(line);
        break;
    }
    let size_line =
        size_line.ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing size line"))?;
    let mut it = size_line.split_whitespace();
    let rows: usize = parse(it.next())?;
    let cols: usize = parse(it.next())?;
    let nnz: usize = parse(it.next())?;
    let n = rows.max(cols);

    let mut edges: Vec<(VId, VId, Weight)> = Vec::with_capacity(nnz);
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: usize = parse(it.next())?;
        let j: usize = parse(it.next())?;
        if i == 0 || j == 0 || i > n || j > n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad entry: {t}"),
            ));
        }
        let w: Weight = if pattern {
            1
        } else {
            let raw: f64 = parse(it.next())?;
            (raw.abs().round() as u64).max(1)
        };
        if i != j {
            edges.push(((i - 1) as VId, (j - 1) as VId, w));
        }
    }
    // Duplicate (i,j)+(j,i) pairs in `general` files collapse in the builder
    // (weights summed); `symmetric` files store each edge once.
    Ok(from_edges_weighted(n, &edges))
}

/// Write a graph as `matrix coordinate integer symmetric` Matrix Market.
pub fn write_matrix_market(g: &Csr, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "%%MatrixMarket matrix coordinate integer symmetric")?;
    writeln!(w, "{} {} {}", g.n(), g.n(), g.m())?;
    for u in 0..g.n() as VId {
        for (v, wt) in g.edges(u) {
            if v < u {
                // Lower triangle only (row >= col), 1-based.
                writeln!(w, "{} {} {}", u + 1, v + 1, wt)?;
            }
        }
    }
    Ok(())
}

/// Read a METIS `.graph` file (optionally with edge weights, fmt `1` or
/// `001`; vertex weights are not supported).
pub fn read_metis(path: &Path) -> io::Result<Csr> {
    let file = std::fs::File::open(path)?;
    let mut lines = io::BufReader::new(file).lines();
    let header = loop {
        match lines.next() {
            Some(Ok(l)) if l.trim().is_empty() || l.starts_with('%') => continue,
            Some(Ok(l)) => break l,
            Some(Err(e)) => return Err(e),
            None => return Err(io::Error::new(io::ErrorKind::InvalidData, "empty file")),
        }
    };
    let mut it = header.split_whitespace();
    let n: usize = parse(it.next())?;
    let _m: usize = parse(it.next())?;
    let fmt = it.next().unwrap_or("0");
    let has_ewgt = fmt.ends_with('1');

    let mut edges: Vec<(VId, VId, Weight)> = Vec::new();
    let mut u = 0usize;
    for line in lines {
        let line = line?;
        if line.starts_with('%') {
            continue;
        }
        if u >= n {
            if !line.trim().is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "too many vertex lines",
                ));
            }
            continue;
        }
        let mut it = line.split_whitespace();
        while let Some(tok) = it.next() {
            let v: usize = tok
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad adjacency"))?;
            let w: Weight = if has_ewgt { parse(it.next())? } else { 1 };
            if v == 0 || v > n {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "vertex id out of range",
                ));
            }
            if v - 1 > u {
                // Keep each undirected edge once; the builder symmetrizes.
                edges.push((u as VId, (v - 1) as VId, w));
            }
        }
        u += 1;
    }
    if u != n {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected {n} vertex lines, found {u}"),
        ));
    }
    Ok(from_edges_weighted(n, &edges))
}

/// Write a graph in METIS format with edge weights (`fmt 001`).
pub fn write_metis(g: &Csr, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "{} {} 001", g.n(), g.m())?;
    for u in 0..g.n() as VId {
        let mut first = true;
        for (v, wt) in g.edges(u) {
            if !first {
                write!(w, " ")?;
            }
            write!(w, "{} {}", v + 1, wt)?;
            first = false;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Read a whitespace-separated edge list: one `u v [w]` triple per line,
/// 0-based ids, `#` or `%` comments. The vertex count is one past the
/// largest id seen.
pub fn read_edge_list(path: &Path) -> io::Result<Csr> {
    let file = std::fs::File::open(path)?;
    let mut edges: Vec<(VId, VId, Weight)> = Vec::new();
    let mut max_id = 0u32;
    for line in io::BufReader::new(file).lines() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let u: u32 = parse(it.next())?;
        let v: u32 = parse(it.next())?;
        let w: Weight = match it.next() {
            Some(tok) => tok
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad weight"))?,
            None => 1,
        };
        max_id = max_id.max(u).max(v);
        if u != v {
            edges.push((u, v, w));
        }
    }
    if edges.is_empty() {
        return Ok(Csr::empty());
    }
    Ok(from_edges_weighted(max_id as usize + 1, &edges))
}

/// Write a graph as a `u v w` edge list (each undirected edge once).
pub fn write_edge_list(g: &Csr, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "# {} vertices, {} edges", g.n(), g.m())?;
    for u in 0..g.n() as VId {
        for (v, wt) in g.edges(u) {
            if v > u {
                writeln!(w, "{u} {v} {wt}")?;
            }
        }
    }
    Ok(())
}

/// Infer a reader from the file extension: `.mtx` (Matrix Market),
/// `.graph`/`.metis` (METIS), anything else as an edge list.
pub fn read_auto(path: &Path) -> io::Result<Csr> {
    match path.extension().and_then(|e| e.to_str()) {
        Some("mtx") => read_matrix_market(path),
        Some("graph") | Some("metis") => read_metis(path),
        _ => read_edge_list(path),
    }
}

/// Render a graph in Graphviz DOT, optionally coloring vertices by an
/// aggregate/partition label. Intended for small illustration graphs.
pub fn to_dot(g: &Csr, labels: Option<&[u32]>) -> String {
    const PALETTE: [&str; 10] = [
        "#66c2a5", "#fc8d62", "#8da0cb", "#e78ac3", "#a6d854", "#ffd92f", "#e5c494", "#b3b3b3",
        "#1f78b4", "#33a02c",
    ];
    let mut s = String::from("graph G {\n  node [style=filled];\n");
    for u in 0..g.n() as VId {
        if let Some(lab) = labels {
            let color = PALETTE[lab[u as usize] as usize % PALETTE.len()];
            s.push_str(&format!(
                "  {u} [fillcolor=\"{color}\" label=\"{u}\\na{}\"];\n",
                lab[u as usize]
            ));
        } else {
            s.push_str(&format!("  {u};\n"));
        }
    }
    for u in 0..g.n() as VId {
        for (v, w) in g.edges(u) {
            if v > u {
                s.push_str(&format!("  {u} -- {v} [label=\"{w}\"];\n"));
            }
        }
    }
    s.push_str("}\n");
    s
}

fn parse<T: std::str::FromStr>(tok: Option<&str>) -> io::Result<T> {
    tok.ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing field"))?
        .parse::<T>()
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "unparsable field"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{delaunay_like, rmat};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mlcg-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn matrix_market_roundtrip() {
        let g = delaunay_like(12, 12, 3);
        let p = tmp("mm.mtx");
        write_matrix_market(&g, &p).unwrap();
        let g2 = read_matrix_market(&p).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn metis_roundtrip_weighted() {
        let g =
            crate::builder::from_edges_weighted(4, &[(0, 1, 5), (1, 2, 2), (2, 3, 9), (0, 3, 1)]);
        let p = tmp("g.graph");
        write_metis(&g, &p).unwrap();
        let g2 = read_metis(&p).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn metis_roundtrip_large() {
        let g = rmat(9, 6, 0.57, 0.19, 0.19, 4);
        let p = tmp("rmat.graph");
        write_metis(&g, &p).unwrap();
        let g2 = read_metis(&p).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn mm_pattern_general_symmetrizes() {
        let p = tmp("pat.mtx");
        std::fs::write(
            &p,
            "%%MatrixMarket matrix coordinate pattern general\n% comment\n3 3 4\n1 2\n2 1\n2 3\n1 1\n",
        )
        .unwrap();
        let g = read_matrix_market(&p).unwrap();
        g.validate().unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2); // (1,2) dedup'd, (1,1) dropped
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bad_header_rejected() {
        let p = tmp("bad.mtx");
        std::fs::write(&p, "%%MatrixMarket matrix array real general\n1 1\n1.0\n").unwrap();
        assert!(read_matrix_market(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn edge_list_roundtrip() {
        let g =
            crate::builder::from_edges_weighted(5, &[(0, 1, 3), (1, 2, 1), (3, 4, 9), (0, 4, 2)]);
        let p = tmp("el.txt");
        write_edge_list(&g, &p).unwrap();
        let g2 = read_edge_list(&p).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn edge_list_default_weight_and_comments() {
        let p = tmp("el2.txt");
        std::fs::write(&p, "# comment\n0 1\n% another\n1 2 5\n2 2\n").unwrap();
        let g = read_edge_list(&p).unwrap();
        g.validate().unwrap();
        assert_eq!(g.find_edge(0, 1), Some(1));
        assert_eq!(g.find_edge(1, 2), Some(5));
        assert_eq!(g.m(), 2); // self loop dropped
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn read_auto_dispatches_on_extension() {
        let g = crate::generators::path(5);
        let p1 = tmp("auto.graph");
        write_metis(&g, &p1).unwrap();
        assert_eq!(read_auto(&p1).unwrap(), g);
        let p2 = tmp("auto.mtx");
        write_matrix_market(&g, &p2).unwrap();
        assert_eq!(read_auto(&p2).unwrap(), g);
        let p3 = tmp("auto.txt");
        write_edge_list(&g, &p3).unwrap();
        assert_eq!(read_auto(&p3).unwrap(), g);
        for p in [p1, p2, p3] {
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn dot_contains_edges_and_colors() {
        let g = crate::generators::path(3);
        let dot = to_dot(&g, Some(&[0, 0, 1]));
        assert!(dot.contains("0 -- 1"));
        assert!(dot.contains("1 -- 2"));
        assert!(dot.contains("fillcolor"));
    }
}

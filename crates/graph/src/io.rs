//! Graph file I/O: Matrix Market, METIS, and DOT.
//!
//! The paper's corpus comes from the SuiteSparse collection (Matrix Market
//! files) and OGB; these readers let a user of this library run the same
//! pipelines on real downloaded data. DOT export is used by the Fig. 1/2
//! reproductions.
//!
//! Every reader is a [`stream::EdgeSource`]: the file is parsed a bounded
//! chunk of edges at a time and fed through the two-pass
//! [`StreamCsrBuilder`](crate::builder::StreamCsrBuilder), so ingesting a
//! graph never materializes its full edge list. The `read_*` convenience
//! wrappers keep their original signatures; [`ingest_auto`] exposes the
//! chunk-size knob and the [`stream::IngestStats`] telemetry.

use crate::builder::MergeMode;
use crate::csr::{Csr, VId, Weight};
use crate::stream::{self, EdgeSource, IngestOptions, IngestStats};
use std::collections::VecDeque;
use std::io::{self, BufRead, BufWriter, Write as _};
use std::path::{Path, PathBuf};

type FileLines = io::Lines<io::BufReader<std::fs::File>>;
type Edge = (VId, VId, Weight);

// ---------------------------------------------------------------------------
// Matrix Market
// ---------------------------------------------------------------------------

/// Streaming [`EdgeSource`] over a Matrix Market coordinate file.
///
/// Accepts `matrix coordinate (pattern|integer|real) (general|symmetric)`.
/// Real weights are rounded to positive integers (minimum 1); diagonal
/// entries are dropped by the builder. Entries are canonicalized to
/// `(min, max)` so that `general` files storing both triangles collapse the
/// `(i,j,w)` / `(j,i,w)` pair under a max-merge to `w` — not the doubled
/// `2w` a sum-merge would produce. The entry count is checked against the
/// header's `nnz` at end of file.
pub struct MatrixMarketSource {
    path: PathBuf,
    n: usize,
    nnz: usize,
    pattern: bool,
    lines: FileLines,
    seen: usize,
    done: bool,
}

impl MatrixMarketSource {
    /// Open and parse the header and size line.
    pub fn open(path: &Path) -> io::Result<Self> {
        let (n, nnz, pattern, lines) = Self::open_past_header(path)?;
        Ok(MatrixMarketSource {
            path: path.to_path_buf(),
            n,
            nnz,
            pattern,
            lines,
            seen: 0,
            done: false,
        })
    }

    fn open_past_header(path: &Path) -> io::Result<(usize, usize, bool, FileLines)> {
        let file = std::fs::File::open(path)?;
        let mut lines = io::BufReader::new(file).lines();
        let header = lines
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty file"))??;
        let h = header.to_ascii_lowercase();
        if !h.starts_with("%%matrixmarket matrix coordinate") {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported MatrixMarket header: {header}"),
            ));
        }
        let pattern = h.contains("pattern");

        let mut size_line = None;
        for line in lines.by_ref() {
            let line = line?;
            if line.starts_with('%') || line.trim().is_empty() {
                continue;
            }
            size_line = Some(line);
            break;
        }
        let size_line = size_line
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing size line"))?;
        let mut it = size_line.split_whitespace();
        let rows: usize = parse(it.next())?;
        let cols: usize = parse(it.next())?;
        let nnz: usize = parse(it.next())?;
        Ok((rows.max(cols), nnz, pattern, lines))
    }
}

impl EdgeSource for MatrixMarketSource {
    fn n(&self) -> usize {
        self.n
    }

    fn reset(&mut self) -> io::Result<()> {
        let (n, nnz, pattern, lines) = Self::open_past_header(&self.path)?;
        debug_assert!(n == self.n && nnz == self.nnz && pattern == self.pattern);
        self.lines = lines;
        self.seen = 0;
        self.done = false;
        Ok(())
    }

    fn next_chunk(&mut self, out: &mut Vec<Edge>, max: usize) -> io::Result<usize> {
        out.clear();
        if self.done {
            return Ok(0);
        }
        while out.len() < max {
            let Some(line) = self.lines.next() else {
                self.done = true;
                if self.seen != self.nnz {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "entry count mismatch: header says {}, found {}",
                            self.nnz, self.seen
                        ),
                    ));
                }
                break;
            };
            let line = line?;
            let t = line.trim();
            if t.is_empty() || t.starts_with('%') {
                continue;
            }
            let mut it = t.split_whitespace();
            let i: usize = parse(it.next())?;
            let j: usize = parse(it.next())?;
            if i == 0 || j == 0 || i > self.n || j > self.n {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad entry: {t}"),
                ));
            }
            let w: Weight = if self.pattern {
                1
            } else {
                let raw: f64 = parse(it.next())?;
                (raw.abs().round() as u64).max(1)
            };
            self.seen += 1;
            // Canonical (min, max): a general file's mirrored pair becomes
            // an exact duplicate, which the max-merge collapses without
            // doubling. Diagonals pass through; the builder drops them.
            let (a, b) = if i <= j { (i, j) } else { (j, i) };
            out.push(((a - 1) as VId, (b - 1) as VId, w));
        }
        Ok(out.len())
    }
}

/// Read an undirected graph from a Matrix Market file (streamed).
pub fn read_matrix_market(path: &Path) -> io::Result<Csr> {
    let mut src = MatrixMarketSource::open(path)?;
    Ok(stream::build_csr(&mut src, MergeMode::Max, &IngestOptions::default())?.0)
}

/// Write a graph as `matrix coordinate integer symmetric` Matrix Market.
pub fn write_matrix_market(g: &Csr, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "%%MatrixMarket matrix coordinate integer symmetric")?;
    writeln!(w, "{} {} {}", g.n(), g.n(), g.m())?;
    for u in 0..g.n() as VId {
        for (v, wt) in g.edges(u) {
            if v < u {
                // Lower triangle only (row >= col), 1-based.
                writeln!(w, "{} {} {}", u + 1, v + 1, wt)?;
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// METIS
// ---------------------------------------------------------------------------

/// Streaming [`EdgeSource`] over a METIS `.graph` file.
///
/// Supports `fmt` `0`/`00`/`000` (unweighted) and `1`/`01`/`001` (edge
/// weights); vertex-weight formats are rejected. Each undirected edge must
/// appear in both endpoints' adjacency lines, so a well-formed file holds
/// exactly `2m` entries — the source counts every parsed entry and errors
/// on a header mismatch instead of silently dropping the unpaired half.
pub struct MetisSource {
    path: PathBuf,
    n: usize,
    m_header: usize,
    has_ewgt: bool,
    lines: FileLines,
    /// Next vertex line to parse (0-based).
    u: usize,
    /// Entries with `v - 1 > u` (each edge's copy in its lower endpoint's
    /// line); must end at `m_header`.
    upper_entries: usize,
    /// Entries with `v - 1 < u` (the mirrored copies); must also end at
    /// `m_header`.
    lower_entries: usize,
    /// Edges from a partially-emitted vertex line.
    pending: VecDeque<Edge>,
    done: bool,
}

impl MetisSource {
    /// Open and parse the header line.
    pub fn open(path: &Path) -> io::Result<Self> {
        let (n, m_header, has_ewgt, lines) = Self::open_past_header(path)?;
        Ok(MetisSource {
            path: path.to_path_buf(),
            n,
            m_header,
            has_ewgt,
            lines,
            u: 0,
            upper_entries: 0,
            lower_entries: 0,
            pending: VecDeque::new(),
            done: false,
        })
    }

    /// The edge count the header declares.
    pub fn m_header(&self) -> usize {
        self.m_header
    }

    fn open_past_header(path: &Path) -> io::Result<(usize, usize, bool, FileLines)> {
        let file = std::fs::File::open(path)?;
        let mut lines = io::BufReader::new(file).lines();
        let header = loop {
            match lines.next() {
                Some(Ok(l)) if l.trim().is_empty() || l.starts_with('%') => continue,
                Some(Ok(l)) => break l,
                Some(Err(e)) => return Err(e),
                None => return Err(io::Error::new(io::ErrorKind::InvalidData, "empty file")),
            }
        };
        let mut it = header.split_whitespace();
        let n: usize = parse(it.next())?;
        let m: usize = parse(it.next())?;
        let fmt = it.next().unwrap_or("0");
        let has_ewgt = match fmt {
            "0" | "00" | "000" => false,
            "1" | "01" | "001" => true,
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unsupported METIS fmt {fmt} (vertex weights not supported)"),
                ))
            }
        };
        Ok((n, m, has_ewgt, lines))
    }
}

impl EdgeSource for MetisSource {
    fn n(&self) -> usize {
        self.n
    }

    fn reset(&mut self) -> io::Result<()> {
        let (n, m, has_ewgt, lines) = Self::open_past_header(&self.path)?;
        debug_assert!(n == self.n && m == self.m_header && has_ewgt == self.has_ewgt);
        self.lines = lines;
        self.u = 0;
        self.upper_entries = 0;
        self.lower_entries = 0;
        self.pending.clear();
        self.done = false;
        Ok(())
    }

    fn next_chunk(&mut self, out: &mut Vec<Edge>, max: usize) -> io::Result<usize> {
        out.clear();
        while out.len() < max {
            if let Some(e) = self.pending.pop_front() {
                out.push(e);
                continue;
            }
            if self.done {
                break;
            }
            let Some(line) = self.lines.next() else {
                self.done = true;
                if self.u != self.n {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("expected {} vertex lines, found {}", self.n, self.u),
                    ));
                }
                if self.upper_entries != self.m_header || self.lower_entries != self.m_header {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "adjacency entry count mismatch: {} upper / {} lower triangle \
                             entries, header declares m = {}; asymmetric or mis-declared file",
                            self.upper_entries, self.lower_entries, self.m_header
                        ),
                    ));
                }
                break;
            };
            let line = line?;
            if line.starts_with('%') {
                continue;
            }
            if self.u >= self.n {
                if !line.trim().is_empty() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "too many vertex lines",
                    ));
                }
                continue;
            }
            let u = self.u as VId;
            let mut it = line.split_whitespace();
            while let Some(tok) = it.next() {
                let v: usize = tok
                    .parse()
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad adjacency"))?;
                let w: Weight = if self.has_ewgt { parse(it.next())? } else { 1 };
                if v == 0 || v > self.n {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "vertex id out of range",
                    ));
                }
                if w == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "zero edge weight",
                    ));
                }
                if v - 1 == self.u {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("self loop on vertex {} (METIS forbids them)", v),
                    ));
                }
                if v - 1 > self.u {
                    self.upper_entries += 1;
                    // Keep each undirected edge once (the builder
                    // symmetrizes); the mirrored lower-triangle copy is
                    // only counted, below.
                    let e = (u, (v - 1) as VId, w);
                    if out.len() < max {
                        out.push(e);
                    } else {
                        self.pending.push_back(e);
                    }
                } else {
                    self.lower_entries += 1;
                }
            }
            self.u += 1;
        }
        Ok(out.len())
    }
}

/// Read a METIS `.graph` file (streamed; optionally with edge weights, fmt
/// `1` or `001`; vertex weights are not supported). Errors if the built
/// graph's edge count disagrees with the header — malformed files that
/// list an edge twice on one side and never on the other are rejected
/// rather than silently mangled.
pub fn read_metis(path: &Path) -> io::Result<Csr> {
    let mut src = MetisSource::open(path)?;
    let m_header = src.m_header();
    let (g, _) = stream::build_csr(&mut src, MergeMode::Sum, &IngestOptions::default())?;
    if g.m() != m_header {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "graph has {} edges after dedup but header declares {m_header}",
                g.m()
            ),
        ));
    }
    Ok(g)
}

/// Write a graph in METIS format with edge weights (`fmt 001`).
pub fn write_metis(g: &Csr, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "{} {} 001", g.n(), g.m())?;
    for u in 0..g.n() as VId {
        let mut first = true;
        for (v, wt) in g.edges(u) {
            if !first {
                write!(w, " ")?;
            }
            write!(w, "{} {}", v + 1, wt)?;
            first = false;
        }
        writeln!(w)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Edge list
// ---------------------------------------------------------------------------

/// Streaming [`EdgeSource`] over a whitespace-separated edge list: one
/// `u v [w]` triple per line, 0-based ids, `#` or `%` comments.
///
/// Opening performs a sizing pass that determines `n = max_id + 1` and
/// validates every line (ids must be `< u32::MAX`, explicit weights must
/// be positive), so the two builder passes are the second and third reads
/// of the file. Self-loop ids count toward `n` even though the loops
/// themselves are dropped — a file containing only `7 7` produces an
/// 8-vertex edgeless graph, not an empty one.
pub struct EdgeListSource {
    path: PathBuf,
    n: usize,
    lines: FileLines,
    done: bool,
}

impl EdgeListSource {
    /// Open and size the file (first of three passes).
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = std::fs::File::open(path)?;
        let mut max_id = 0u64;
        let mut seen_any = false;
        for line in io::BufReader::new(file).lines() {
            let line = line?;
            if let Some((u, v, _)) = parse_edge_list_line(&line)? {
                max_id = max_id.max(u).max(v);
                seen_any = true;
            }
        }
        let n = if seen_any { max_id as usize + 1 } else { 0 };
        let lines = io::BufReader::new(std::fs::File::open(path)?).lines();
        Ok(EdgeListSource {
            path: path.to_path_buf(),
            n,
            lines,
            done: false,
        })
    }
}

impl EdgeSource for EdgeListSource {
    fn n(&self) -> usize {
        self.n
    }

    fn reset(&mut self) -> io::Result<()> {
        self.lines = io::BufReader::new(std::fs::File::open(&self.path)?).lines();
        self.done = false;
        Ok(())
    }

    fn next_chunk(&mut self, out: &mut Vec<Edge>, max: usize) -> io::Result<usize> {
        out.clear();
        if self.done {
            return Ok(0);
        }
        while out.len() < max {
            let Some(line) = self.lines.next() else {
                self.done = true;
                break;
            };
            let line = line?;
            if let Some((u, v, w)) = parse_edge_list_line(&line)? {
                // Self-loops pass through; the builder drops them but their
                // endpoints already grew `n` during the sizing pass.
                out.push((u as VId, v as VId, w));
            }
        }
        Ok(out.len())
    }
}

/// Parse one edge-list line; `Ok(None)` for comments and blanks.
fn parse_edge_list_line(line: &str) -> io::Result<Option<(u64, u64, Weight)>> {
    let t = line.trim();
    if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
        return Ok(None);
    }
    let mut it = t.split_whitespace();
    let u: u64 = parse(it.next())?;
    let v: u64 = parse(it.next())?;
    if u >= u32::MAX as u64 || v >= u32::MAX as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("vertex id exceeds supported u32 id space: {t}"),
        ));
    }
    let w: Weight = match it.next() {
        Some(tok) => tok
            .parse()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad weight"))?,
        None => 1,
    };
    if w == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("zero edge weight: {t}"),
        ));
    }
    Ok(Some((u, v, w)))
}

/// Read a whitespace-separated edge list (streamed): one `u v [w]` triple
/// per line, 0-based ids, `#` or `%` comments. The vertex count is one
/// past the largest id seen — including ids seen only in self-loops or
/// duplicate lines.
pub fn read_edge_list(path: &Path) -> io::Result<Csr> {
    let mut src = EdgeListSource::open(path)?;
    Ok(stream::build_csr(&mut src, MergeMode::Sum, &IngestOptions::default())?.0)
}

/// Write a graph as a `u v w` edge list (each undirected edge once).
pub fn write_edge_list(g: &Csr, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "# {} vertices, {} edges", g.n(), g.m())?;
    for u in 0..g.n() as VId {
        for (v, wt) in g.edges(u) {
            if v > u {
                writeln!(w, "{u} {v} {wt}")?;
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// Infer a reader from the file extension: `.mtx` (Matrix Market),
/// `.graph`/`.metis` (METIS), anything else as an edge list.
pub fn read_auto(path: &Path) -> io::Result<Csr> {
    ingest_auto(path, &IngestOptions::default()).map(|(g, _)| g)
}

/// [`read_auto`] with explicit streaming options, returning the ingest
/// telemetry (chunk count, peak staging bytes, offset width) alongside the
/// graph.
pub fn ingest_auto(path: &Path, opts: &IngestOptions) -> io::Result<(Csr, IngestStats)> {
    match path.extension().and_then(|e| e.to_str()) {
        Some("mtx") => {
            let mut src = MatrixMarketSource::open(path)?;
            stream::build_csr(&mut src, MergeMode::Max, opts)
        }
        Some("graph") | Some("metis") => {
            let mut src = MetisSource::open(path)?;
            let m_header = src.m_header();
            let (g, stats) = stream::build_csr(&mut src, MergeMode::Sum, opts)?;
            if g.m() != m_header {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "graph has {} edges after dedup but header declares {m_header}",
                        g.m()
                    ),
                ));
            }
            Ok((g, stats))
        }
        _ => {
            let mut src = EdgeListSource::open(path)?;
            stream::build_csr(&mut src, MergeMode::Sum, opts)
        }
    }
}

/// Render a graph in Graphviz DOT, optionally coloring vertices by an
/// aggregate/partition label. Intended for small illustration graphs.
pub fn to_dot(g: &Csr, labels: Option<&[u32]>) -> String {
    const PALETTE: [&str; 10] = [
        "#66c2a5", "#fc8d62", "#8da0cb", "#e78ac3", "#a6d854", "#ffd92f", "#e5c494", "#b3b3b3",
        "#1f78b4", "#33a02c",
    ];
    let mut s = String::from("graph G {\n  node [style=filled];\n");
    for u in 0..g.n() as VId {
        if let Some(lab) = labels {
            let color = PALETTE[lab[u as usize] as usize % PALETTE.len()];
            s.push_str(&format!(
                "  {u} [fillcolor=\"{color}\" label=\"{u}\\na{}\"];\n",
                lab[u as usize]
            ));
        } else {
            s.push_str(&format!("  {u};\n"));
        }
    }
    for u in 0..g.n() as VId {
        for (v, w) in g.edges(u) {
            if v > u {
                s.push_str(&format!("  {u} -- {v} [label=\"{w}\"];\n"));
            }
        }
    }
    s.push_str("}\n");
    s
}

fn parse<T: std::str::FromStr>(tok: Option<&str>) -> io::Result<T> {
    tok.ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing field"))?
        .parse::<T>()
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "unparsable field"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{delaunay_like, rmat};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mlcg-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn matrix_market_roundtrip() {
        let g = delaunay_like(12, 12, 3);
        let p = tmp("mm.mtx");
        write_matrix_market(&g, &p).unwrap();
        let g2 = read_matrix_market(&p).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn metis_roundtrip_weighted() {
        let g =
            crate::builder::from_edges_weighted(4, &[(0, 1, 5), (1, 2, 2), (2, 3, 9), (0, 3, 1)]);
        let p = tmp("g.graph");
        write_metis(&g, &p).unwrap();
        let g2 = read_metis(&p).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn metis_roundtrip_large() {
        let g = rmat(9, 6, 0.57, 0.19, 0.19, 4);
        let p = tmp("rmat.graph");
        write_metis(&g, &p).unwrap();
        let g2 = read_metis(&p).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn mm_pattern_general_symmetrizes() {
        let p = tmp("pat.mtx");
        std::fs::write(
            &p,
            "%%MatrixMarket matrix coordinate pattern general\n% comment\n3 3 4\n1 2\n2 1\n2 3\n1 1\n",
        )
        .unwrap();
        let g = read_matrix_market(&p).unwrap();
        g.validate().unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2); // (1,2) dedup'd, (1,1) dropped
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn mm_general_both_triangles_not_doubled() {
        // Regression: a general file storing both (i,j,w) and (j,i,w) must
        // produce weight w, not 2w.
        let p = tmp("gen.mtx");
        std::fs::write(
            &p,
            "%%MatrixMarket matrix coordinate integer general\n3 3 5\n1 2 5\n2 1 5\n2 3 7\n3 2 7\n1 3 2\n",
        )
        .unwrap();
        let g = read_matrix_market(&p).unwrap();
        g.validate().unwrap();
        assert_eq!(g.m(), 3);
        assert_eq!(g.find_edge(0, 1), Some(5), "mirrored pair must not double");
        assert_eq!(g.find_edge(1, 2), Some(7));
        assert_eq!(g.find_edge(0, 2), Some(2), "one-triangle entry unchanged");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn mm_entry_count_mismatch_rejected() {
        let p = tmp("short.mtx");
        std::fs::write(
            &p,
            "%%MatrixMarket matrix coordinate pattern general\n3 3 4\n1 2\n2 3\n",
        )
        .unwrap();
        let err = read_matrix_market(&p).unwrap_err();
        assert!(err.to_string().contains("entry count mismatch"), "{err}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn mm_truncated_size_line_rejected() {
        let p = tmp("trunc.mtx");
        std::fs::write(
            &p,
            "%%MatrixMarket matrix coordinate pattern general\n3 3\n",
        )
        .unwrap();
        assert!(read_matrix_market(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bad_header_rejected() {
        let p = tmp("bad.mtx");
        std::fs::write(&p, "%%MatrixMarket matrix array real general\n1 1\n1.0\n").unwrap();
        assert!(read_matrix_market(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn metis_entry_count_mismatch_rejected() {
        // Header claims 2 edges but only one (mirrored) edge is present.
        let p = tmp("badcount.graph");
        std::fs::write(&p, "3 2\n2\n1\n\n").unwrap();
        let err = read_metis(&p).unwrap_err();
        assert!(err.to_string().contains("entry count"), "{err}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn metis_lower_triangle_only_rejected() {
        // Regression: edge listed only on the higher endpoint's line used
        // to be silently dropped by the v-1 > u filter.
        let p = tmp("lower.graph");
        std::fs::write(&p, "2 1\n\n1\n").unwrap();
        let err = read_metis(&p).unwrap_err();
        assert!(err.to_string().contains("entry count"), "{err}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn metis_double_listed_edge_rejected() {
        // Entries total 2m, but one side lists the edge twice and the
        // mirror never appears — caught by the post-build m check.
        let p = tmp("dup.graph");
        std::fs::write(&p, "3 1\n2 2\n\n\n").unwrap();
        assert!(read_metis(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn metis_vertex_weight_fmt_rejected() {
        let p = tmp("vwgt.graph");
        std::fs::write(&p, "2 1 011\n1 2\n1 1\n").unwrap();
        let err = read_metis(&p).unwrap_err();
        assert!(err.to_string().contains("fmt"), "{err}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn edge_list_roundtrip() {
        let g =
            crate::builder::from_edges_weighted(5, &[(0, 1, 3), (1, 2, 1), (3, 4, 9), (0, 4, 2)]);
        let p = tmp("el.txt");
        write_edge_list(&g, &p).unwrap();
        let g2 = read_edge_list(&p).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn edge_list_default_weight_and_comments() {
        let p = tmp("el2.txt");
        std::fs::write(&p, "# comment\n0 1\n% another\n1 2 5\n2 2\n").unwrap();
        let g = read_edge_list(&p).unwrap();
        g.validate().unwrap();
        assert_eq!(g.find_edge(0, 1), Some(1));
        assert_eq!(g.find_edge(1, 2), Some(5));
        assert_eq!(g.m(), 2); // self loop dropped
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn edge_list_self_loops_only_keeps_vertex_count() {
        // Regression: a file of self-loops used to come back as the empty
        // graph, losing every vertex the ids implied.
        let p = tmp("loops.txt");
        std::fs::write(&p, "# loops only\n7 7\n2 2 9\n").unwrap();
        let g = read_edge_list(&p).unwrap();
        g.validate().unwrap();
        assert_eq!(g.n(), 8, "max id 7 implies 8 vertices");
        assert_eq!(g.m(), 0);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn edge_list_comments_only_is_empty() {
        let p = tmp("comments.txt");
        std::fs::write(&p, "# nothing\n% here\n").unwrap();
        let g = read_edge_list(&p).unwrap();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn edge_list_huge_id_rejected() {
        let p = tmp("huge.txt");
        std::fs::write(&p, format!("0 {}\n", u32::MAX as u64 + 7)).unwrap();
        let err = read_edge_list(&p).unwrap_err();
        assert!(err.to_string().contains("id space"), "{err}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn edge_list_zero_weight_rejected() {
        let p = tmp("zerow.txt");
        std::fs::write(&p, "0 1 0\n").unwrap();
        let err = read_edge_list(&p).unwrap_err();
        assert!(err.to_string().contains("zero edge weight"), "{err}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn read_auto_dispatches_on_extension() {
        let g = crate::generators::path(5);
        let p1 = tmp("auto.graph");
        write_metis(&g, &p1).unwrap();
        assert_eq!(read_auto(&p1).unwrap(), g);
        let p2 = tmp("auto.mtx");
        write_matrix_market(&g, &p2).unwrap();
        assert_eq!(read_auto(&p2).unwrap(), g);
        let p3 = tmp("auto.txt");
        write_edge_list(&g, &p3).unwrap();
        assert_eq!(read_auto(&p3).unwrap(), g);
        for p in [p1, p2, p3] {
            std::fs::remove_file(&p).ok();
        }
    }

    #[test]
    fn ingest_auto_reports_stats() {
        let g = rmat(8, 6, 0.45, 0.25, 0.2, 11);
        let p = tmp("stats.mtx");
        write_matrix_market(&g, &p).unwrap();
        let opts = IngestOptions {
            chunk_edges: 64,
            policy: mlcg_par::ExecPolicy::serial(),
        };
        let (g2, stats) = ingest_auto(&p, &opts).unwrap();
        assert_eq!(g, g2, "streamed read must equal the written graph");
        assert_eq!(stats.m, g.m());
        assert_eq!(stats.edges_streamed, g.m() as u64);
        assert_eq!(stats.chunks, (g.m() as u64).div_ceil(64));
        assert!(stats.offsets_are_u32);
        assert_eq!(
            stats.peak_staging_bytes,
            64 * crate::builder::EDGE_ITEM_BYTES
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn dot_contains_edges_and_colors() {
        let g = crate::generators::path(3);
        let dot = to_dot(&g, Some(&[0, 0, 1]));
        assert!(dot.contains("0 -- 1"));
        assert!(dot.contains("1 -- 2"));
        assert!(dot.contains("fillcolor"));
    }
}

//! Numerical-identity tests for the sparse substrate: algebraic laws that
//! must hold exactly (structure) or to floating-point tolerance (values).

use mlcg_graph::builder::from_edges_weighted;
use mlcg_par::rng::Xoshiro256pp;
use mlcg_par::ExecPolicy;
use mlcg_sparse::{spgemm, spmv, transpose, CsrMatrix};

fn random_matrix(rows: usize, cols: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
    let mut rng = Xoshiro256pp::new(seed);
    let mut row_ptr = vec![0usize];
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    for _ in 0..rows {
        let mut cs: Vec<u32> = (0..nnz_per_row)
            .map(|_| rng.next_below(cols as u64) as u32)
            .collect();
        cs.sort_unstable();
        cs.dedup();
        for &c in &cs {
            col_idx.push(c);
            values.push(rng.next_f64() * 4.0 - 2.0);
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix {
        n_rows: rows,
        n_cols: cols,
        row_ptr: mlcg_graph::Offsets::from_usize(row_ptr),
        col_idx,
        values,
    }
}

fn assert_close(a: &CsrMatrix, b: &CsrMatrix, tol: f64) {
    let (da, db) = (a.to_dense(), b.to_dense());
    assert_eq!(da.len(), db.len());
    for (ra, rb) in da.iter().zip(&db) {
        for (x, y) in ra.iter().zip(rb) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }
}

#[test]
fn spgemm_is_associative() {
    let policy = ExecPolicy::serial();
    let a = random_matrix(18, 14, 4, 1);
    let b = random_matrix(14, 16, 4, 2);
    let c = random_matrix(16, 12, 4, 3);
    let left = spgemm(&policy, &spgemm(&policy, &a, &b), &c);
    let right = spgemm(&policy, &a, &spgemm(&policy, &b, &c));
    assert_close(&left, &right, 1e-10);
}

#[test]
fn transpose_reverses_products() {
    // (A·B)ᵀ = Bᵀ·Aᵀ.
    let policy = ExecPolicy::serial();
    let a = random_matrix(15, 11, 3, 5);
    let b = random_matrix(11, 13, 3, 6);
    let lhs = transpose(&spgemm(&policy, &a, &b));
    let rhs = spgemm(&policy, &transpose(&b), &transpose(&a));
    assert_close(&lhs, &rhs, 1e-12);
}

#[test]
fn spmv_agrees_with_spgemm_on_a_column() {
    // A·x computed by SpMV equals A·X where X is x as an n×1 matrix.
    let policy = ExecPolicy::serial();
    let a = random_matrix(20, 17, 4, 7);
    let mut rng = Xoshiro256pp::new(8);
    let x: Vec<f64> = (0..17).map(|_| rng.next_f64()).collect();
    let xm = CsrMatrix {
        n_rows: 17,
        n_cols: 1,
        row_ptr: mlcg_graph::Offsets::from_usize((0..=17).collect()),
        col_idx: vec![0; 17],
        values: x.clone(),
    };
    let prod = spgemm(&policy, &a, &xm);
    let mut y = vec![0.0; 20];
    spmv(&policy, &a, &x, &mut y);
    for (i, &yi) in y.iter().enumerate() {
        let (cols, vals) = prod.row(i);
        let from_gemm = if cols.is_empty() { 0.0 } else { vals[0] };
        assert!((yi - from_gemm).abs() < 1e-12);
    }
}

#[test]
fn laplacian_quadratic_form_is_nonnegative() {
    // xᵀ L x = Σ_{(u,v)∈E} w(u,v) (x_u − x_v)² ≥ 0 for arbitrary x.
    let g = from_edges_weighted(
        8,
        &[
            (0, 1, 3),
            (1, 2, 1),
            (2, 3, 5),
            (3, 4, 2),
            (4, 5, 7),
            (5, 6, 1),
            (6, 7, 2),
            (0, 7, 4),
            (2, 6, 9),
        ],
    );
    let l = CsrMatrix::laplacian(&g);
    let policy = ExecPolicy::serial();
    let mut rng = Xoshiro256pp::new(11);
    for _ in 0..20 {
        let x: Vec<f64> = (0..8).map(|_| rng.next_f64() * 10.0 - 5.0).collect();
        let mut lx = vec![0.0; 8];
        spmv(&policy, &l, &x, &mut lx);
        let quad: f64 = x.iter().zip(&lx).map(|(a, b)| a * b).sum();
        assert!(quad >= -1e-9, "negative quadratic form {quad}");
        // Cross-check against the edge-sum formula.
        let mut edge_sum = 0.0;
        for u in 0..8u32 {
            for (v, w) in g.edges(u) {
                if v > u {
                    edge_sum += w as f64 * (x[u as usize] - x[v as usize]).powi(2);
                }
            }
        }
        assert!((quad - edge_sum).abs() < 1e-9, "{quad} vs {edge_sum}");
    }
}

#[test]
fn laplacian_annihilates_constants() {
    let g = from_edges_weighted(6, &[(0, 1, 2), (1, 2, 3), (2, 3, 4), (3, 4, 5), (4, 5, 6)]);
    let l = CsrMatrix::laplacian(&g);
    let mut y = vec![0.0; 6];
    spmv(&ExecPolicy::serial(), &l, &[3.5; 6], &mut y);
    assert!(y.iter().all(|v| v.abs() < 1e-12), "L·1 must vanish: {y:?}");
}

#[test]
fn prolongation_preserves_column_sums() {
    // Each column of P has exactly one 1, so 1ᵀP = counts and P·1_c = 1_n.
    let mapping = vec![0u32, 1, 0, 2, 1, 2, 2, 0];
    let p = CsrMatrix::prolongation(&mapping, 3);
    let mut ones = vec![0.0; 8];
    // Pᵀ x with x = 1_{nc}: every fine vertex receives exactly 1.
    let pt = transpose(&p);
    spmv(&ExecPolicy::serial(), &pt, &[1.0; 3], &mut ones);
    assert!(ones.iter().all(|&v| (v - 1.0).abs() < 1e-12));
}

//! Parallel sparse matrix–matrix multiplication (SpGEMM).
//!
//! A miniature of the Kokkos Kernels design the paper calls twice for the
//! `P·A·Pᵀ` construction path: a *symbolic* phase computes the exact number
//! of nonzeros per output row, then a *numeric* phase fills values using a
//! per-row sparse accumulator (here a stamped dense marker reused across
//! the rows of a chunk, which plays the role of Kokkos Kernels' local
//! hashmap accumulator). Output rows are sorted by column.

use crate::matrix::CsrMatrix;
use mlcg_par::scan::exclusive_scan;
use mlcg_par::sort::insertion_sort_pairs;
use mlcg_par::{parallel_for_chunks, profile, ExecPolicy};

/// `C = A · B`, exact (no numerically cancelled zeros are dropped).
pub fn spgemm(policy: &ExecPolicy, a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    assert_eq!(a.n_cols, b.n_rows, "spgemm: inner dimension mismatch");
    let n = a.n_rows;
    let m = b.n_cols;
    let _k = profile::kernel("spgemm");

    // --- symbolic: exact nnz per output row ---
    let mut row_nnz = vec![0usize; n + 1];
    {
        let _k = profile::kernel("symbolic");
        let base = row_nnz.as_mut_ptr() as usize;
        parallel_for_chunks(policy, n, move |range| {
            // Stamped dense marker, shared by all rows of this chunk.
            let mut marker = vec![u32::MAX; m];
            for i in range {
                let stamp = i as u32;
                let mut cnt = 0usize;
                let (acols, _) = a.row(i);
                for &k in acols {
                    let (bcols, _) = b.row(k as usize);
                    for &c in bcols {
                        if marker[c as usize] != stamp {
                            marker[c as usize] = stamp;
                            cnt += 1;
                        }
                    }
                }
                // SAFETY: one write per row, rows disjoint across chunks.
                unsafe {
                    (base as *mut usize).add(i).write(cnt);
                }
            }
        });
    }
    let nnz = exclusive_scan(policy, &mut row_nnz);
    let row_ptr = row_nnz;

    // --- numeric: fill with a stamped accumulator, then sort each row ---
    let mut col_idx = vec![0u32; nnz];
    let mut values = vec![0.0f64; nnz];
    {
        let _k = profile::kernel("numeric");
        let col_base = col_idx.as_mut_ptr() as usize;
        let val_base = values.as_mut_ptr() as usize;
        let row_ptr_ref = &row_ptr;
        parallel_for_chunks(policy, n, move |range| {
            let mut marker = vec![u32::MAX; m];
            let mut pos = vec![0u32; m];
            for i in range {
                let stamp = i as u32;
                let start = row_ptr_ref[i];
                let mut len = 0usize;
                // SAFETY: each row writes only its own [start, start+len)
                // output range; rows are disjoint.
                let (ccols, cvals) = unsafe {
                    let end = row_ptr_ref[i + 1];
                    (
                        std::slice::from_raw_parts_mut(
                            (col_base as *mut u32).add(start),
                            end - start,
                        ),
                        std::slice::from_raw_parts_mut(
                            (val_base as *mut f64).add(start),
                            end - start,
                        ),
                    )
                };
                let (acols, avals) = a.row(i);
                for (&k, &av) in acols.iter().zip(avals) {
                    let (bcols, bvals) = b.row(k as usize);
                    for (&c, &bv) in bcols.iter().zip(bvals) {
                        let cu = c as usize;
                        if marker[cu] != stamp {
                            marker[cu] = stamp;
                            pos[cu] = len as u32;
                            ccols[len] = c;
                            cvals[len] = av * bv;
                            len += 1;
                        } else {
                            cvals[pos[cu] as usize] += av * bv;
                        }
                    }
                }
                debug_assert_eq!(len, ccols.len(), "symbolic/numeric nnz mismatch");
                sort_row(ccols, cvals);
            }
        });
    }
    CsrMatrix {
        n_rows: n,
        n_cols: m,
        row_ptr: mlcg_graph::Offsets::from_usize(row_ptr),
        col_idx,
        values,
    }
}

fn sort_row(cols: &mut [u32], vals: &mut [f64]) {
    if cols.len() <= 24 {
        insertion_sort_pairs(cols, vals);
    } else {
        let mut idx: Vec<u32> = (0..cols.len() as u32).collect();
        idx.sort_unstable_by_key(|&i| cols[i as usize]);
        let nc: Vec<u32> = idx.iter().map(|&i| cols[i as usize]).collect();
        let nv: Vec<f64> = idx.iter().map(|&i| vals[i as usize]).collect();
        cols.copy_from_slice(&nc);
        vals.copy_from_slice(&nv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::transpose;
    use mlcg_graph::builder::from_edges_weighted;
    use mlcg_graph::generators::rmat;
    use mlcg_par::rng::Xoshiro256pp;

    fn dense_mul(a: &[Vec<f64>], b: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let (n, k, m) = (a.len(), b.len(), b[0].len());
        let mut c = vec![vec![0.0; m]; n];
        for i in 0..n {
            for l in 0..k {
                if a[i][l] != 0.0 {
                    for j in 0..m {
                        c[i][j] += a[i][l] * b[l][j];
                    }
                }
            }
        }
        c
    }

    fn random_matrix(rows: usize, cols: usize, nnz_per_row: usize, seed: u64) -> CsrMatrix {
        let mut rng = Xoshiro256pp::new(seed);
        let mut row_ptr = vec![0usize];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for _ in 0..rows {
            let mut cs: Vec<u32> = (0..nnz_per_row)
                .map(|_| rng.next_below(cols as u64) as u32)
                .collect();
            cs.sort_unstable();
            cs.dedup();
            for &c in &cs {
                col_idx.push(c);
                values.push((rng.next_below(9) + 1) as f64);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            n_rows: rows,
            n_cols: cols,
            row_ptr: mlcg_graph::Offsets::from_usize(row_ptr),
            col_idx,
            values,
        }
    }

    #[test]
    fn matches_dense_reference() {
        for policy in ExecPolicy::all_test_policies() {
            let a = random_matrix(30, 20, 5, 1);
            let b = random_matrix(20, 25, 4, 2);
            let c = spgemm(&policy, &a, &b);
            c.validate().unwrap();
            let expect = dense_mul(&a.to_dense(), &b.to_dense());
            assert_eq!(c.to_dense(), expect, "policy {policy}");
        }
    }

    #[test]
    fn identity_is_neutral() {
        let policy = ExecPolicy::serial();
        let a = random_matrix(15, 15, 4, 3);
        let i = CsrMatrix::identity(15);
        assert_eq!(spgemm(&policy, &a, &i).to_dense(), a.to_dense());
        assert_eq!(spgemm(&policy, &i, &a).to_dense(), a.to_dense());
    }

    #[test]
    fn rows_are_sorted_and_deduplicated() {
        let policy = ExecPolicy::serial();
        let a = random_matrix(40, 30, 8, 5);
        let c = spgemm(&policy, &a, &transpose(&a));
        for i in 0..c.n_rows {
            let (cols, _) = c.row(i);
            assert!(
                cols.windows(2).all(|w| w[0] < w[1]),
                "row {i} unsorted or duplicated"
            );
        }
    }

    #[test]
    fn pap_t_collapses_aggregates() {
        // Path 0-1-2-3 with mapping {0,1}->0, {2,3}->1: PAP^T must be
        // [[2w01, w12], [w12, 2w23]] counting internal edges on the diagonal.
        let g = from_edges_weighted(4, &[(0, 1, 5), (1, 2, 3), (2, 3, 7)]);
        let a = CsrMatrix::from_graph(&g);
        let p = CsrMatrix::prolongation(&[0, 0, 1, 1], 2);
        let policy = ExecPolicy::serial();
        let pa = spgemm(&policy, &p, &a);
        let papt = spgemm(&policy, &pa, &transpose(&p));
        let d = papt.to_dense();
        assert_eq!(d[0], vec![10.0, 3.0]);
        assert_eq!(d[1], vec![3.0, 14.0]);
    }

    #[test]
    fn larger_graph_pap_t_preserves_total_weight() {
        let g = rmat(8, 6, 0.5, 0.2, 0.2, 9);
        let a = CsrMatrix::from_graph(&g);
        let n = g.n();
        // Arbitrary contiguous mapping into n/3 aggregates.
        let nc = n.div_ceil(3);
        let mapping: Vec<u32> = (0..n).map(|u| (u / 3) as u32).collect();
        let p = CsrMatrix::prolongation(&mapping, nc);
        let policy = ExecPolicy::host();
        let pa = spgemm(&policy, &p, &a);
        let papt = spgemm(&policy, &pa, &transpose(&p));
        let total_in: f64 = a.values.iter().sum();
        let total_out: f64 = papt.values.iter().sum();
        assert!(
            (total_in - total_out).abs() < 1e-9,
            "PAP^T must conserve total weight"
        );
    }
}

//! Parallel SpMV, transpose, and small dense-vector helpers.

use crate::matrix::CsrMatrix;
use mlcg_par::{parallel_for, profile, ExecPolicy};

/// Parallel sparse matrix–vector product `y = A·x`.
pub fn spmv(policy: &ExecPolicy, a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.n_cols, "spmv: x length");
    assert_eq!(y.len(), a.n_rows, "spmv: y length");
    let _k = profile::kernel("spmv");
    let y_base = y.as_mut_ptr() as usize;
    parallel_for(policy, a.n_rows, move |i| {
        let (cols, vals) = a.row(i);
        let mut acc = 0.0;
        for (&c, &v) in cols.iter().zip(vals) {
            acc += v * x[c as usize];
        }
        // SAFETY: one write per row index; rows are disjoint across the
        // parallel iteration.
        unsafe {
            (y_base as *mut f64).add(i).write(acc);
        }
    });
}

/// Transpose by counting sort over columns. Output rows are sorted when the
/// input rows are (counting sort is stable in row order).
pub fn transpose(a: &CsrMatrix) -> CsrMatrix {
    let mut row_ptr = vec![0usize; a.n_cols + 1];
    for &c in &a.col_idx {
        row_ptr[c as usize + 1] += 1;
    }
    for i in 0..a.n_cols {
        row_ptr[i + 1] += row_ptr[i];
    }
    let mut col_idx = vec![0u32; a.nnz()];
    let mut values = vec![0.0; a.nnz()];
    let mut cursor = row_ptr.clone();
    for i in 0..a.n_rows {
        let (cols, vals) = a.row(i);
        for (&c, &v) in cols.iter().zip(vals) {
            let p = cursor[c as usize];
            col_idx[p] = i as u32;
            values[p] = v;
            cursor[c as usize] += 1;
        }
    }
    CsrMatrix {
        n_rows: a.n_cols,
        n_cols: a.n_rows,
        row_ptr: mlcg_graph::Offsets::from_usize(row_ptr),
        col_idx,
        values,
    }
}

/// Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    x.iter().map(|&v| v * v).sum::<f64>().sqrt()
}

/// Dot product.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(&a, &b)| a * b).sum()
}

/// Scale `x` in place so its 2-norm is 1; returns the original norm.
/// Zero vectors are left unchanged.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        let inv = 1.0 / n;
        for v in x.iter_mut() {
            *v *= inv;
        }
    }
    n
}

/// Remove the component of `x` along the (unnormalized) all-ones vector:
/// `x -= mean(x)`.
pub fn deflate_constant(x: &mut [f64]) {
    if x.is_empty() {
        return;
    }
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    for v in x.iter_mut() {
        *v -= mean;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcg_graph::builder::from_edges_weighted;

    #[test]
    fn spmv_matches_dense() {
        let g = from_edges_weighted(4, &[(0, 1, 2), (1, 2, 3), (2, 3, 1), (0, 3, 5)]);
        let a = CsrMatrix::from_graph(&g);
        let x = vec![1.0, -2.0, 0.5, 3.0];
        let mut y = vec![0.0; 4];
        for policy in ExecPolicy::all_test_policies() {
            spmv(&policy, &a, &x, &mut y);
            let d = a.to_dense();
            for i in 0..4 {
                let expect: f64 = (0..4).map(|j| d[i][j] * x[j]).sum();
                assert!((y[i] - expect).abs() < 1e-12, "row {i} policy {policy}");
            }
        }
    }

    #[test]
    fn transpose_involution_and_shape() {
        let p = CsrMatrix::prolongation(&[0, 1, 0, 2, 1, 2, 2], 3);
        let pt = transpose(&p);
        assert_eq!(pt.n_rows, 7);
        assert_eq!(pt.n_cols, 3);
        let ptt = transpose(&pt);
        assert_eq!(ptt.to_dense(), p.to_dense());
    }

    #[test]
    fn transpose_of_symmetric_graph_is_identity_op() {
        let g = from_edges_weighted(5, &[(0, 1, 2), (1, 2, 3), (3, 4, 7), (0, 4, 1)]);
        let a = CsrMatrix::from_graph(&g);
        let at = transpose(&a);
        assert_eq!(a.to_dense(), at.to_dense());
    }

    #[test]
    fn vector_helpers() {
        let mut x = vec![3.0, 4.0];
        assert!((norm2(&x) - 5.0).abs() < 1e-12);
        assert!((dot(&x, &x) - 25.0).abs() < 1e-12);
        let n = normalize(&mut x);
        assert!((n - 5.0).abs() < 1e-12);
        assert!((norm2(&x) - 1.0).abs() < 1e-12);

        let mut z = vec![1.0, 2.0, 3.0];
        deflate_constant(&mut z);
        assert!(z.iter().sum::<f64>().abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut x = vec![0.0, 0.0];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, vec![0.0, 0.0]);
    }
}

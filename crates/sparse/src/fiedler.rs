//! Fiedler vector via deflated power iteration.
//!
//! The paper's spectral refinement computes the eigenvector of the second
//! smallest Laplacian eigenvalue with power iteration, stopping when "the
//! difference of the 2-norm of the iterates" drops below 1e-10. We iterate
//! on the shifted operator `B = σI − L` (so the target eigenvector becomes
//! dominant once the constant vector is deflated) and stop when
//! `‖x_{k+1} − x_k‖₂ < tol` between normalized iterates, with an iteration
//! cap reported to the caller.

use crate::matrix::CsrMatrix;
use crate::ops::{deflate_constant, norm2, normalize, spmv};
use mlcg_graph::Csr;
use mlcg_par::rng::Xoshiro256pp;
use mlcg_par::{ExecPolicy, TraceCollector};

/// Outcome of a power iteration run.
#[derive(Clone, Debug)]
pub struct PowerIterResult {
    /// The (normalized, mean-free) Fiedler estimate.
    pub vector: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the tolerance was met before the iteration cap.
    pub converged: bool,
    /// Rayleigh-quotient estimate of the Fiedler value λ₂.
    pub lambda2: f64,
}

/// Compute the Fiedler vector of a connected weighted graph from a random
/// start (seeded).
pub fn fiedler_vector(
    policy: &ExecPolicy,
    g: &Csr,
    tol: f64,
    max_iters: usize,
    seed: u64,
) -> PowerIterResult {
    let n = g.n();
    let mut rng = Xoshiro256pp::new(seed);
    let x0: Vec<f64> = (0..n).map(|_| rng.next_f64() - 0.5).collect();
    fiedler_from(policy, g, x0, tol, max_iters)
}

/// Compute the Fiedler vector starting from a given guess — the multilevel
/// spectral method seeds each level with the interpolated coarse vector.
pub fn fiedler_from(
    policy: &ExecPolicy,
    g: &Csr,
    mut x: Vec<f64>,
    tol: f64,
    max_iters: usize,
) -> PowerIterResult {
    let n = g.n();
    assert_eq!(x.len(), n);
    if n == 0 {
        return PowerIterResult {
            vector: x,
            iterations: 0,
            converged: true,
            lambda2: 0.0,
        };
    }
    let (b, sigma) = CsrMatrix::shifted_laplacian(g);
    deflate_constant(&mut x);
    if normalize(&mut x) == 0.0 {
        // Degenerate start (e.g. constant guess): fall back to a fixed ramp.
        x = (0..n).map(|i| i as f64 - (n as f64 - 1.0) / 2.0).collect();
        normalize(&mut x);
    }
    let mut y = vec![0.0; n];
    let mut iterations = 0;
    let mut converged = false;
    let mut mu = 0.0; // dominant eigenvalue estimate of B
    while iterations < max_iters {
        spmv(policy, &b, &x, &mut y);
        deflate_constant(&mut y);
        mu = normalize(&mut y);
        if mu == 0.0 {
            // x was (numerically) in the deflated null space; re-randomize.
            let mut rng = Xoshiro256pp::new(iterations as u64 + 1);
            y.iter_mut().for_each(|v| *v = rng.next_f64() - 0.5);
            deflate_constant(&mut y);
            normalize(&mut y);
        }
        iterations += 1;
        // Eigenvectors are sign-ambiguous; compare up to sign.
        let diff_pos: f64 = x
            .iter()
            .zip(&y)
            .map(|(a, c)| (a - c) * (a - c))
            .sum::<f64>();
        let diff_neg: f64 = x
            .iter()
            .zip(&y)
            .map(|(a, c)| (a + c) * (a + c))
            .sum::<f64>();
        let diff = diff_pos.min(diff_neg).sqrt();
        std::mem::swap(&mut x, &mut y);
        if diff < tol {
            converged = true;
            break;
        }
    }
    PowerIterResult {
        vector: x,
        iterations,
        converged,
        lambda2: sigma - mu,
    }
}

/// [`fiedler_vector`] with a trace sink: records a span named `phase`, the
/// `fiedler/power_iterations` counter, and a `mem/<phase>/{peak,net}_bytes`
/// heap-gauge pair. With a disabled collector this is exactly
/// [`fiedler_vector`].
pub fn fiedler_vector_traced(
    policy: &ExecPolicy,
    g: &Csr,
    tol: f64,
    max_iters: usize,
    seed: u64,
    trace: &TraceCollector,
    phase: &str,
) -> PowerIterResult {
    let mem = trace.heap_scope(|| phase.to_string());
    let span = trace.span(|| phase.to_string());
    let r = fiedler_vector(policy, g, tol, max_iters, seed);
    trace.counter_add("fiedler/power_iterations", r.iterations as u64);
    span.finish();
    drop(mem);
    r
}

/// [`fiedler_from`] with a trace sink; see [`fiedler_vector_traced`].
pub fn fiedler_from_traced(
    policy: &ExecPolicy,
    g: &Csr,
    x: Vec<f64>,
    tol: f64,
    max_iters: usize,
    trace: &TraceCollector,
    phase: &str,
) -> PowerIterResult {
    let mem = trace.heap_scope(|| phase.to_string());
    let span = trace.span(|| phase.to_string());
    let r = fiedler_from(policy, g, x, tol, max_iters);
    trace.counter_add("fiedler/power_iterations", r.iterations as u64);
    span.finish();
    drop(mem);
    r
}

/// Residual `‖L·x − λ₂·x‖₂` — a convergence quality check used in tests and
/// the experiment harness.
pub fn residual(policy: &ExecPolicy, g: &Csr, r: &PowerIterResult) -> f64 {
    let l = CsrMatrix::laplacian(g);
    let mut lx = vec![0.0; g.n()];
    spmv(policy, &l, &r.vector, &mut lx);
    for (i, v) in lx.iter_mut().enumerate() {
        *v -= r.lambda2 * r.vector[i];
    }
    norm2(&lx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcg_graph::builder::from_edges_unit;
    use mlcg_graph::generators::{cycle, grid2d, path};
    use mlcg_graph::VId;

    const TOL: f64 = 1e-10;

    #[test]
    fn path_fiedler_is_monotone() {
        // The Fiedler vector of a path is a discrete cosine: strictly
        // monotone along the path.
        let g = path(20);
        let r = fiedler_vector(&ExecPolicy::serial(), &g, TOL, 20_000, 7);
        assert!(r.converged, "iterations: {}", r.iterations);
        let v = &r.vector;
        let increasing = v.windows(2).all(|w| w[0] < w[1]);
        let decreasing = v.windows(2).all(|w| w[0] > w[1]);
        assert!(increasing || decreasing, "not monotone: {v:?}");
    }

    #[test]
    fn path_lambda2_matches_closed_form() {
        // λ₂ of the path P_n is 2(1 − cos(π/n)) = 4 sin²(π/2n).
        let n = 16;
        let g = path(n);
        let r = fiedler_vector(&ExecPolicy::serial(), &g, TOL, 50_000, 3);
        let expect = 2.0 * (1.0 - (std::f64::consts::PI / n as f64).cos());
        assert!(r.converged);
        assert!(
            (r.lambda2 - expect).abs() < 1e-6,
            "λ₂ {} vs {expect}",
            r.lambda2
        );
    }

    #[test]
    fn cycle_lambda2() {
        // λ₂ of the cycle C_n is 2(1 − cos(2π/n)).
        let n = 12;
        let g = cycle(n);
        let r = fiedler_vector(&ExecPolicy::serial(), &g, TOL, 50_000, 5);
        let expect = 2.0 * (1.0 - (2.0 * std::f64::consts::PI / n as f64).cos());
        assert!(
            (r.lambda2 - expect).abs() < 1e-5,
            "λ₂ {} vs {expect}",
            r.lambda2
        );
    }

    #[test]
    fn grid_fiedler_splits_long_axis() {
        // On an 8x4 grid, signing by the Fiedler vector should separate the
        // two 4x4 halves along the long axis.
        let g = grid2d(8, 4);
        let r = fiedler_vector(&ExecPolicy::host(), &g, TOL, 100_000, 11);
        assert!(r.converged);
        let v = &r.vector;
        // All vertices in column x share a sign that flips between x<4 and x>=4.
        let sign = |x: usize, y: usize| v[y * 8 + x] >= 0.0;
        let left = sign(0, 0);
        for y in 0..4 {
            for x in 0..2 {
                assert_eq!(sign(x, y), left, "({x},{y})");
            }
            for x in 6..8 {
                assert_eq!(sign(x, y), !left, "({x},{y})");
            }
        }
    }

    #[test]
    fn residual_is_small_after_convergence() {
        let g = grid2d(6, 6);
        let p = ExecPolicy::serial();
        let r = fiedler_vector(&p, &g, TOL, 100_000, 13);
        assert!(r.converged);
        assert!(
            residual(&p, &g, &r) < 1e-6,
            "residual {}",
            residual(&p, &g, &r)
        );
    }

    #[test]
    fn warm_start_converges_faster() {
        let g = grid2d(10, 10);
        let p = ExecPolicy::serial();
        let cold = fiedler_vector(&p, &g, 1e-8, 100_000, 17);
        let warm = fiedler_from(&p, &g, cold.vector.clone(), 1e-8, 100_000);
        assert!(warm.converged);
        assert!(
            warm.iterations <= cold.iterations / 4 + 2,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn weighted_barbell_cuts_the_bridge() {
        // Two triangles joined by a light bridge: the Fiedler sign must
        // separate the triangles.
        let g = from_edges_unit(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        let r = fiedler_vector(&ExecPolicy::serial(), &g, TOL, 50_000, 19);
        let v = &r.vector;
        for i in 0..3 {
            for j in 3..6 {
                assert!(
                    (v[i] >= 0.0) != (v[j as usize] >= 0.0)
                        || v[i].abs() < 1e-9
                        || v[j as usize].abs() < 1e-9,
                    "triangles not separated: {v:?}"
                );
            }
        }
        let _ = 0 as VId;
    }
}

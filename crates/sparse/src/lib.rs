#![warn(missing_docs)]
//! # mlcg-sparse — sparse linear-algebra substrate
//!
//! The reproduction's stand-in for the Kokkos Kernels routines the paper
//! uses: parallel SpMV (the inner loop of spectral refinement's power
//! iteration) and hash-accumulator SpGEMM (the `P·A·Pᵀ` coarse-graph
//! construction path). Also provides graph↔matrix conversion, transpose,
//! Laplacians, and the deflated power iteration that computes the Fiedler
//! vector with the paper's 1e-10 iterate-difference stopping criterion.

pub mod fiedler;
pub mod matrix;
pub mod ops;
pub mod spgemm;

pub use fiedler::{fiedler_vector, PowerIterResult};
pub use matrix::CsrMatrix;
pub use ops::{spmv, transpose};
pub use spgemm::spgemm;

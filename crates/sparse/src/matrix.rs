//! CSR sparse matrix over `f64`.

use mlcg_graph::{Csr, Offsets, VId};

/// A general (possibly rectangular) sparse matrix in CSR form.
///
/// Row offsets share the graph crate's width-adaptive [`Offsets`]: `u32`
/// whenever every offset fits (always, short of ~4.29 B nonzeros), full
/// `usize` otherwise — SpMV is bandwidth bound, so the narrow offsets are
/// a measurable win (`bench-ingest` tracks the gap).
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    /// Number of rows.
    pub n_rows: usize,
    /// Number of columns.
    pub n_cols: usize,
    /// Width-adaptive row offsets, `n_rows + 1` entries.
    pub row_ptr: Offsets,
    /// Column indices, `nnz` entries (sorted within each row for matrices
    /// produced by this crate).
    pub col_idx: Vec<u32>,
    /// Nonzero values aligned with `col_idx`.
    pub values: Vec<f64>,
}

impl CsrMatrix {
    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The columns/values of one row.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let r = self.row_ptr.range(i);
        (&self.col_idx[r.clone()], &self.values[r])
    }

    /// Force full-width row offsets (benchmark baseline for the
    /// u32-vs-usize SpMV comparison; production paths stay adaptive).
    pub fn widen_offsets(&mut self) {
        self.row_ptr.widen();
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            n_rows: n,
            n_cols: n,
            row_ptr: Offsets::from_usize((0..=n).collect()),
            col_idx: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Adjacency matrix of a weighted graph (weights cast to `f64`). The
    /// graph's offsets are cloned width-preserving — no widening copy.
    pub fn from_graph(g: &Csr) -> Self {
        CsrMatrix {
            n_rows: g.n(),
            n_cols: g.n(),
            row_ptr: g.offsets().clone(),
            col_idx: g.adj().to_vec(),
            values: g.wgt().iter().map(|&w| w as f64).collect(),
        }
    }

    /// Graph Laplacian `L = D − A` (includes the diagonal).
    pub fn laplacian(g: &Csr) -> Self {
        let n = g.n();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(g.num_entries() + n);
        let mut values = Vec::with_capacity(g.num_entries() + n);
        row_ptr.push(0);
        for u in 0..n as VId {
            let deg_w: f64 = g.weights(u).iter().map(|&w| w as f64).sum();
            let mut placed_diag = false;
            for (v, w) in g.edges(u) {
                if !placed_diag && v > u {
                    col_idx.push(u);
                    values.push(deg_w);
                    placed_diag = true;
                }
                col_idx.push(v);
                values.push(-(w as f64));
            }
            if !placed_diag {
                col_idx.push(u);
                values.push(deg_w);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            n_rows: n,
            n_cols: n,
            row_ptr: Offsets::from_usize(row_ptr),
            col_idx,
            values,
        }
    }

    /// The shifted operator `σI − L` whose dominant eigenvector (after
    /// deflating the constant vector) is the Fiedler vector. `σ` is the
    /// Gershgorin bound `max_u 2·deg_w(u)` plus one.
    pub fn shifted_laplacian(g: &Csr) -> (Self, f64) {
        let mut l = Self::laplacian(g);
        let sigma = 1.0
            + (0..g.n() as VId)
                .map(|u| 2.0 * g.weights(u).iter().map(|&w| w as f64).sum::<f64>())
                .fold(0.0f64, f64::max);
        // σI − L: negate everything and add σ on the diagonal.
        for i in 0..l.n_rows {
            for k in l.row_ptr.range(i) {
                l.values[k] = -l.values[k];
                if l.col_idx[k] as usize == i {
                    l.values[k] += sigma;
                }
            }
        }
        (l, sigma)
    }

    /// The prolongation matrix `P` of a fine-to-coarse mapping: `n_c × n`
    /// with `P[map[u], u] = 1`. Rows are built by counting sort, so columns
    /// are sorted within each row.
    pub fn prolongation(mapping: &[u32], n_coarse: usize) -> Self {
        let n = mapping.len();
        let mut row_ptr = vec![0usize; n_coarse + 1];
        for &m in mapping {
            debug_assert!((m as usize) < n_coarse, "mapping label out of range");
            row_ptr[m as usize + 1] += 1;
        }
        for i in 0..n_coarse {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0u32; n];
        let mut cursor = row_ptr.clone();
        for (u, &m) in mapping.iter().enumerate() {
            col_idx[cursor[m as usize]] = u as u32;
            cursor[m as usize] += 1;
        }
        CsrMatrix {
            n_rows: n_coarse,
            n_cols: n,
            row_ptr: Offsets::from_usize(row_ptr),
            col_idx,
            values: vec![1.0; n],
        }
    }

    /// Dense form, for small test matrices.
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.n_cols]; self.n_rows];
        for (i, drow) in d.iter_mut().enumerate() {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                drow[c as usize] += v;
            }
        }
        d
    }

    /// Structural sanity checks (offsets monotone, indices in range).
    pub fn validate(&self) -> Result<(), String> {
        if self.row_ptr.len() != self.n_rows + 1 {
            return Err("row_ptr length".into());
        }
        if self.row_ptr.get(0) != 0 || self.row_ptr.last().unwrap() != self.col_idx.len() {
            return Err("row_ptr ends".into());
        }
        if self.row_ptr.first_non_monotone().is_some() {
            return Err("row_ptr not monotone".into());
        }
        if self.col_idx.len() != self.values.len() {
            return Err("col/val length mismatch".into());
        }
        if self.col_idx.iter().any(|&c| c as usize >= self.n_cols) {
            return Err("column index out of range".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcg_graph::builder::from_edges_weighted;

    #[test]
    fn identity_dense() {
        let i3 = CsrMatrix::identity(3);
        i3.validate().unwrap();
        assert_eq!(
            i3.to_dense(),
            vec![
                vec![1.0, 0.0, 0.0],
                vec![0.0, 1.0, 0.0],
                vec![0.0, 0.0, 1.0]
            ]
        );
    }

    #[test]
    fn laplacian_of_weighted_path() {
        // 0 -5- 1 -2- 2
        let g = from_edges_weighted(3, &[(0, 1, 5), (1, 2, 2)]);
        let l = CsrMatrix::laplacian(&g);
        l.validate().unwrap();
        let d = l.to_dense();
        assert_eq!(d[0], vec![5.0, -5.0, 0.0]);
        assert_eq!(d[1], vec![-5.0, 7.0, -2.0]);
        assert_eq!(d[2], vec![0.0, -2.0, 2.0]);
        // Rows sum to zero.
        for row in &d {
            assert!(row.iter().sum::<f64>().abs() < 1e-12);
        }
    }

    #[test]
    fn shifted_laplacian_is_psd_diagonal_dominant() {
        let g = from_edges_weighted(4, &[(0, 1, 1), (1, 2, 3), (2, 3, 1), (0, 3, 2)]);
        let (m, sigma) = CsrMatrix::shifted_laplacian(&g);
        let d = m.to_dense();
        for (i, row) in d.iter().enumerate() {
            let off: f64 = row
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &v)| v.abs())
                .sum();
            assert!(
                row[i] >= off,
                "row {i} not diagonally dominant (sigma {sigma})"
            );
            assert!(row[i] > 0.0);
        }
    }

    #[test]
    fn prolongation_rows_partition_columns() {
        let p = CsrMatrix::prolongation(&[0, 1, 0, 2, 1], 3);
        p.validate().unwrap();
        assert_eq!(p.n_rows, 3);
        assert_eq!(p.n_cols, 5);
        assert_eq!(p.row(0).0, &[0, 2]);
        assert_eq!(p.row(1).0, &[1, 4]);
        assert_eq!(p.row(2).0, &[3]);
        assert_eq!(p.nnz(), 5);
    }

    #[test]
    fn from_graph_matches_adjacency() {
        let g = from_edges_weighted(3, &[(0, 1, 4), (1, 2, 6)]);
        let a = CsrMatrix::from_graph(&g);
        let d = a.to_dense();
        assert_eq!(d[0][1], 4.0);
        assert_eq!(d[1][0], 4.0);
        assert_eq!(d[1][2], 6.0);
        assert_eq!(d[0][0], 0.0);
    }
}

//! Structured tracing and metrics — the pipeline observability layer.
//!
//! This module grows [`crate::timer`] into a thread-safe, hierarchical
//! trace subsystem used by every phase of the coarsening / construction /
//! refinement pipeline:
//!
//! - **spans** — named, slash-separated phase timings such as
//!   `mapping/hec/level3` or `construct/hash/level3`, recorded with their
//!   start offset so a timeline can be reconstructed;
//! - **counters** — monotonically aggregated event counts (edges scanned,
//!   hash collisions, conflicts re-matched, FM moves rolled back,
//!   power-iteration steps);
//! - **gauges** — point-in-time values, one record per observation
//!   (per-level `nv`, `ne`, compression ratio, matched fraction, maximum
//!   coarse degree);
//! - **audits** — pass/fail records from the opt-in invariant-audit mode
//!   (see [`TraceConfig::validate`] / `MLCG_VALIDATE`), so a corrupted
//!   level is attributed to the phase that produced it.
//!
//! A [`TraceCollector`] is cheap to clone (an `Arc`) and cheap when
//! disabled: every recording entry point starts with a single branch on an
//! `Option` and allocates nothing. Span paths are built lazily through
//! closures so disabled runs never pay for `format!`.
//!
//! Snapshots are taken as [`TraceReport`]s, which render either as
//! JSON-lines (one object per record, for machine consumption) or as a
//! human-readable aggregated tree table.

use crate::profile::{DispatchRecord, HIST_BUCKETS};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Configuration for a [`TraceCollector`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record spans, counters and gauges.
    pub enabled: bool,
    /// Run the opt-in invariant audits between phases and record their
    /// outcomes (audit records are kept even when `enabled` is false).
    pub validate: bool,
}

impl TraceConfig {
    /// Read `MLCG_TRACE` / `MLCG_VALIDATE` from the environment (any
    /// non-empty value other than `0` turns a flag on). Read freshly on
    /// every call so tests can toggle the variables.
    pub fn from_env() -> Self {
        fn on(var: &str) -> bool {
            std::env::var(var)
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false)
        }
        TraceConfig {
            enabled: on("MLCG_TRACE"),
            validate: on("MLCG_VALIDATE"),
        }
    }
}

/// One completed span: a named phase with start offset and duration.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Slash-separated phase path, e.g. `mapping/hec/level3`.
    pub path: String,
    /// Seconds from the collector's creation to the span's start.
    pub start_seconds: f64,
    /// Span duration in seconds.
    pub seconds: f64,
    /// Net heap bytes the span left behind (allocations minus frees charged
    /// to it — see [`crate::mem`] for the attribution rules). Negative when
    /// the span freed more than it allocated.
    pub heap_delta_bytes: i64,
    /// High-water mark of the span's net heap above its entry point.
    pub heap_peak_bytes: u64,
}

/// One sample of process-wide live heap bytes, taken at span boundaries
/// and profiled dispatches. These back the Chrome-trace memory counter
/// track.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemSample {
    /// Seconds from the collector's creation.
    pub at_seconds: f64,
    /// [`crate::mem::live_bytes`] at that moment.
    pub live_bytes: u64,
}

/// One gauge observation.
#[derive(Clone, Debug, PartialEq)]
pub struct GaugeRecord {
    /// Slash-separated gauge path, e.g. `level/3/nv`.
    pub path: String,
    /// Observed value.
    pub value: f64,
}

/// One invariant-audit outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditRecord {
    /// The pipeline phase the audited artifact came from, e.g.
    /// `construct/level1`.
    pub phase: String,
    /// Which invariant was checked, e.g. `csr-wellformed`.
    pub check: String,
    /// Whether the invariant held.
    pub passed: bool,
    /// Failure description (empty on success).
    pub detail: String,
}

#[derive(Default)]
struct State {
    spans: Vec<SpanRecord>,
    counters: BTreeMap<String, u64>,
    gauges: Vec<GaugeRecord>,
    audits: Vec<AuditRecord>,
    dispatches: Vec<DispatchRecord>,
    mem_samples: Vec<MemSample>,
}

/// Record the current live-heap level at instant `at` (used at span
/// boundaries and dispatch completion so the memory counter track follows
/// the pipeline's actual shape).
fn push_mem_sample(inner: &Inner, at: Instant) {
    let at_seconds = at.duration_since(inner.epoch).as_secs_f64();
    let live_bytes = crate::mem::live_bytes() as u64;
    let mut st = inner.state.lock().unwrap();
    st.mem_samples.push(MemSample {
        at_seconds,
        live_bytes,
    });
}

struct Inner {
    epoch: Instant,
    trace_enabled: bool,
    validate: bool,
    state: Mutex<State>,
}

/// A thread-safe trace sink. Clones share the same underlying buffer.
///
/// The disabled collector ([`TraceCollector::disabled`], also the
/// `Default`) is a `None` — every operation on it is one branch and no
/// allocation, so it can be threaded through hot paths unconditionally.
#[derive(Clone, Default)]
pub struct TraceCollector {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for TraceCollector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => write!(f, "TraceCollector(disabled)"),
            Some(i) => write!(
                f,
                "TraceCollector(enabled={}, validate={})",
                i.trace_enabled, i.validate
            ),
        }
    }
}

impl TraceCollector {
    /// The no-op collector.
    pub fn disabled() -> Self {
        TraceCollector { inner: None }
    }

    /// A collector recording spans/counters/gauges (audits off).
    pub fn enabled() -> Self {
        Self::with_config(TraceConfig {
            enabled: true,
            validate: false,
        })
    }

    /// A collector recording everything, audits included.
    pub fn enabled_with_validation() -> Self {
        Self::with_config(TraceConfig {
            enabled: true,
            validate: true,
        })
    }

    /// Build from an explicit configuration. A fully-off configuration
    /// yields the disabled collector.
    pub fn with_config(cfg: TraceConfig) -> Self {
        if !cfg.enabled && !cfg.validate {
            return Self::disabled();
        }
        TraceCollector {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                trace_enabled: cfg.enabled,
                validate: cfg.validate,
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// Build from `MLCG_TRACE` / `MLCG_VALIDATE` (see
    /// [`TraceConfig::from_env`]).
    pub fn from_env() -> Self {
        Self::with_config(TraceConfig::from_env())
    }

    /// True when spans/counters/gauges are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        matches!(&self.inner, Some(i) if i.trace_enabled)
    }

    /// True when the invariant-audit mode is on.
    #[inline]
    pub fn validate_enabled(&self) -> bool {
        matches!(&self.inner, Some(i) if i.validate)
    }

    /// Open a span; the path closure is only invoked when recording. The
    /// span records itself when [`Span::finish`]ed (or dropped).
    #[inline]
    pub fn span(&self, path: impl FnOnce() -> String) -> Span {
        match &self.inner {
            Some(i) if i.trace_enabled => {
                let now = Instant::now();
                push_mem_sample(i, now);
                Span {
                    rec: Some((Arc::clone(i), path(), now)),
                    mem: Some(crate::mem::scope()),
                }
            }
            _ => Span {
                rec: None,
                mem: None,
            },
        }
    }

    /// Open a span that *always* measures wall time: [`TimedSpan::finish`]
    /// returns the elapsed seconds even on a disabled collector (used by
    /// drivers that report phase seconds through their own result structs).
    #[inline]
    pub fn timed_span(&self, path: impl FnOnce() -> String) -> TimedSpan {
        let start = Instant::now();
        let (rec, mem) = match &self.inner {
            Some(i) if i.trace_enabled => {
                push_mem_sample(i, start);
                (Some((Arc::clone(i), path())), Some(crate::mem::scope()))
            }
            _ => (None, None),
        };
        TimedSpan { start, rec, mem }
    }

    /// Add `delta` to the monotonically aggregated counter at `path`.
    #[inline]
    pub fn counter_add(&self, path: &str, delta: u64) {
        if let Some(i) = &self.inner {
            if i.trace_enabled && delta > 0 {
                let mut st = i.state.lock().unwrap();
                *st.counters.entry(path.to_string()).or_insert(0) += delta;
            }
        }
    }

    /// Record a gauge observation; the path closure is only invoked when
    /// recording.
    #[inline]
    pub fn gauge(&self, path: impl FnOnce() -> String, value: f64) {
        if let Some(i) = &self.inner {
            if i.trace_enabled {
                let mut st = i.state.lock().unwrap();
                st.gauges.push(GaugeRecord {
                    path: path(),
                    value,
                });
            }
        }
    }

    /// Record a gauge observation of an integer size — convenience for
    /// per-pass set sizes such as `fm/boundary_size`, where the observed
    /// value is a count rather than a ratio.
    #[inline]
    pub fn gauge_usize(&self, path: impl FnOnce() -> String, value: usize) {
        self.gauge(path, value as f64);
    }

    /// Record an invariant-audit outcome (kept whenever `validate` is on,
    /// independent of `enabled`).
    pub fn audit(&self, phase: &str, check: &str, result: Result<(), String>) {
        if let Some(i) = &self.inner {
            if i.validate {
                let (passed, detail) = match result {
                    Ok(()) => (true, String::new()),
                    Err(e) => (false, e),
                };
                if !passed {
                    eprintln!("mlcg audit FAILED [{phase}] {check}: {detail}");
                }
                let mut st = i.state.lock().unwrap();
                st.audits.push(AuditRecord {
                    phase: phase.to_string(),
                    check: check.to_string(),
                    passed,
                    detail,
                });
            }
        }
    }

    /// The collector's epoch instant (timestamps are offsets from it), or
    /// `None` on the disabled collector. Used by the dispatch profiler to
    /// keep worker timelines on the same clock as spans.
    pub(crate) fn epoch_instant(&self) -> Option<Instant> {
        self.inner.as_ref().map(|i| i.epoch)
    }

    /// Record one profiled dispatch (see [`crate::profile`]): stores the
    /// record for report rendering / Chrome export and derives
    /// `dispatch/<kernel>/imbalance` and `dispatch/<kernel>/wakeup_us`
    /// gauges plus `dispatch/<kernel>/{dispatches,chunks,items}` counters.
    pub(crate) fn record_dispatch(&self, rec: DispatchRecord) {
        if let Some(i) = &self.inner {
            if i.trace_enabled {
                let mut st = i.state.lock().unwrap();
                st.gauges.push(GaugeRecord {
                    path: format!("dispatch/{}/imbalance", rec.kernel),
                    value: rec.imbalance(),
                });
                if rec.lanes.len() > 1 {
                    // Worst worker wakeup (publish → first claim); inline
                    // and single-lane records have no workers to wake.
                    st.gauges.push(GaugeRecord {
                        path: format!("dispatch/{}/wakeup_us", rec.kernel),
                        value: rec.wakeup_seconds_max() * 1e6,
                    });
                }
                *st.counters
                    .entry(format!("dispatch/{}/dispatches", rec.kernel))
                    .or_insert(0) += 1;
                *st.counters
                    .entry(format!("dispatch/{}/chunks", rec.kernel))
                    .or_insert(0) += rec.chunks();
                *st.counters
                    .entry(format!("dispatch/{}/items", rec.kernel))
                    .or_insert(0) += rec.items();
                if rec.heap_peak_bytes > 0 {
                    st.gauges.push(GaugeRecord {
                        path: format!("mem/{}/peak_bytes", rec.kernel),
                        value: rec.heap_peak_bytes as f64,
                    });
                }
                st.mem_samples.push(MemSample {
                    at_seconds: rec.start_seconds + rec.seconds,
                    live_bytes: crate::mem::live_bytes() as u64,
                });
                st.dispatches.push(rec);
            }
        }
    }

    /// Open a heap-attribution scope for a pipeline phase. When the
    /// collector is recording, the guard opens a [`crate::mem`] scope and,
    /// on drop, records `mem/<phase>/peak_bytes` and `mem/<phase>/net_bytes`
    /// gauges from what the scope observed. On a disabled collector this is
    /// one branch and nothing else. The path closure is only invoked when
    /// recording.
    #[inline]
    pub fn heap_scope(&self, phase: impl FnOnce() -> String) -> HeapScope {
        match &self.inner {
            Some(i) if i.trace_enabled => HeapScope {
                rec: Some((Arc::clone(i), phase(), crate::mem::scope())),
            },
            _ => HeapScope { rec: None },
        }
    }

    /// Snapshot everything recorded so far. On a recording collector the
    /// snapshot's gauges additionally carry `mem/live_bytes` and
    /// `mem/peak_bytes` — the process-wide heap level and high-water mark at
    /// the moment the report was taken.
    pub fn report(&self) -> TraceReport {
        match &self.inner {
            None => TraceReport::default(),
            Some(i) => {
                let st = i.state.lock().unwrap();
                let mut rep = TraceReport {
                    spans: st.spans.clone(),
                    counters: st.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
                    gauges: st.gauges.clone(),
                    audits: st.audits.clone(),
                    dispatches: st.dispatches.clone(),
                    mem_samples: st.mem_samples.clone(),
                };
                drop(st);
                if i.trace_enabled {
                    rep.gauges.push(GaugeRecord {
                        path: "mem/live_bytes".to_string(),
                        value: crate::mem::live_bytes() as f64,
                    });
                    rep.gauges.push(GaugeRecord {
                        path: "mem/peak_bytes".to_string(),
                        value: crate::mem::peak_bytes() as f64,
                    });
                }
                rep
            }
        }
    }
}

/// Guard for a recorded phase; see [`TraceCollector::span`].
///
/// Holds a [`crate::mem`] attribution scope while open, so it is not
/// `Send`: a span must finish on the thread that opened it.
#[must_use = "a span records on finish/drop; binding to _ ends it immediately"]
pub struct Span {
    rec: Option<(Arc<Inner>, String, Instant)>,
    mem: Option<crate::mem::ScopeGuard>,
}

impl Span {
    /// End the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        // Close the heap scope first so the record push below is charged to
        // the enclosing scope, not to this span.
        let heap = self.mem.take().map(|g| g.finish()).unwrap_or_default();
        if let Some((inner, path, started)) = self.rec.take() {
            let seconds = started.elapsed().as_secs_f64();
            let start_seconds = started.duration_since(inner.epoch).as_secs_f64();
            let live_bytes = crate::mem::live_bytes() as u64;
            let mut st = inner.state.lock().unwrap();
            st.spans.push(SpanRecord {
                path,
                start_seconds,
                seconds,
                heap_delta_bytes: heap.net_bytes,
                heap_peak_bytes: heap.peak_bytes,
            });
            st.mem_samples.push(MemSample {
                at_seconds: start_seconds + seconds,
                live_bytes,
            });
        }
    }
}

/// Guard for a phase whose duration the caller also wants; see
/// [`TraceCollector::timed_span`].
#[must_use = "a timed span records on finish; binding to _ ends it immediately"]
pub struct TimedSpan {
    start: Instant,
    rec: Option<(Arc<Inner>, String)>,
    mem: Option<crate::mem::ScopeGuard>,
}

impl TimedSpan {
    /// End the span, record it if tracing is on, and return elapsed seconds.
    pub fn finish(mut self) -> f64 {
        let seconds = self.start.elapsed().as_secs_f64();
        self.record(seconds);
        seconds
    }

    fn record(&mut self, seconds: f64) {
        let heap = self.mem.take().map(|g| g.finish()).unwrap_or_default();
        if let Some((inner, path)) = self.rec.take() {
            let start_seconds = self.start.duration_since(inner.epoch).as_secs_f64();
            let live_bytes = crate::mem::live_bytes() as u64;
            let mut st = inner.state.lock().unwrap();
            st.spans.push(SpanRecord {
                path,
                start_seconds,
                seconds,
                heap_delta_bytes: heap.net_bytes,
                heap_peak_bytes: heap.peak_bytes,
            });
            st.mem_samples.push(MemSample {
                at_seconds: start_seconds + seconds,
                live_bytes,
            });
        }
    }
}

impl Drop for TimedSpan {
    fn drop(&mut self) {
        if self.rec.is_some() || self.mem.is_some() {
            let seconds = self.start.elapsed().as_secs_f64();
            self.record(seconds);
        }
    }
}

/// Guard for a phase-level heap scope; see [`TraceCollector::heap_scope`].
/// Not `Send` (the underlying [`crate::mem::ScopeGuard`] must close on its
/// opening thread).
#[must_use = "a heap scope records on drop; binding to _ ends it immediately"]
pub struct HeapScope {
    rec: Option<(Arc<Inner>, String, crate::mem::ScopeGuard)>,
}

impl Drop for HeapScope {
    fn drop(&mut self) {
        if let Some((inner, phase, guard)) = self.rec.take() {
            let stats = guard.finish();
            let mut st = inner.state.lock().unwrap();
            st.gauges.push(GaugeRecord {
                path: format!("mem/{phase}/peak_bytes"),
                value: stats.peak_bytes as f64,
            });
            st.gauges.push(GaugeRecord {
                path: format!("mem/{phase}/net_bytes"),
                value: stats.net_bytes as f64,
            });
        }
    }
}

/// An immutable snapshot of a [`TraceCollector`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceReport {
    /// Completed spans, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Aggregated counters, sorted by path.
    pub counters: Vec<(String, u64)>,
    /// Gauge observations, in recording order.
    pub gauges: Vec<GaugeRecord>,
    /// Invariant-audit outcomes, in recording order.
    pub audits: Vec<AuditRecord>,
    /// Profiled dispatches, in completion order (see [`crate::profile`]).
    pub dispatches: Vec<DispatchRecord>,
    /// Live-heap samples taken at span boundaries and dispatch completions,
    /// in recording order (timestamps need not be monotone across threads).
    pub mem_samples: Vec<MemSample>,
}

impl TraceReport {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.audits.is_empty()
            && self.dispatches.is_empty()
            && self.mem_samples.is_empty()
    }

    /// Total seconds of spans whose path equals `prefix` or starts with
    /// `prefix` followed by `/`.
    pub fn span_seconds(&self, prefix: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| {
                s.path == prefix
                    || (s.path.starts_with(prefix)
                        && s.path.as_bytes().get(prefix.len()) == Some(&b'/'))
            })
            .map(|s| s.seconds)
            .sum()
    }

    /// Value of the counter at `path` (0 when absent).
    pub fn counter(&self, path: &str) -> u64 {
        self.counters
            .iter()
            .find(|(p, _)| p == path)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// The last gauge observation at `path`, if any.
    ///
    /// Duplicate-path semantics are *last-write-wins*: per-pass and
    /// per-dispatch gauges (`fm/boundary_size`,
    /// `dispatch/<kernel>/imbalance`) legitimately emit the same path many
    /// times, and this accessor returns the most recent observation. Use
    /// [`TraceReport::gauges`] for the full series.
    pub fn gauge(&self, path: &str) -> Option<f64> {
        self.gauges
            .iter()
            .rev()
            .find(|g| g.path == path)
            .map(|g| g.value)
    }

    /// Every gauge observation at `path`, in recording order — the
    /// per-level / per-pass / per-dispatch series behind a repeated path.
    pub fn gauges(&self, path: &str) -> Vec<f64> {
        self.gauges
            .iter()
            .filter(|g| g.path == path)
            .map(|g| g.value)
            .collect()
    }

    /// Audit records that failed.
    pub fn failed_audits(&self) -> Vec<&AuditRecord> {
        self.audits.iter().filter(|a| !a.passed).collect()
    }

    /// The first failed audit, if any — the phase that produced the first
    /// corrupted artifact.
    pub fn first_failed_audit(&self) -> Option<&AuditRecord> {
        self.audits.iter().find(|a| !a.passed)
    }

    /// Serialize as JSON-lines: one object per span, counter, gauge and
    /// audit record.
    pub fn write_jsonl<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        for s in &self.spans {
            writeln!(
                w,
                r#"{{"type":"span","path":{},"start_seconds":{},"seconds":{},"heap_delta_bytes":{},"heap_peak_bytes":{}}}"#,
                json_str(&s.path),
                json_f64(s.start_seconds),
                json_f64(s.seconds),
                s.heap_delta_bytes,
                s.heap_peak_bytes
            )?;
        }
        for m in &self.mem_samples {
            writeln!(
                w,
                r#"{{"type":"mem","at_seconds":{},"live_bytes":{}}}"#,
                json_f64(m.at_seconds),
                m.live_bytes
            )?;
        }
        for (path, value) in &self.counters {
            writeln!(
                w,
                r#"{{"type":"counter","path":{},"value":{value}}}"#,
                json_str(path)
            )?;
        }
        for g in &self.gauges {
            writeln!(
                w,
                r#"{{"type":"gauge","path":{},"value":{}}}"#,
                json_str(&g.path),
                json_f64(g.value)
            )?;
        }
        for a in &self.audits {
            writeln!(
                w,
                r#"{{"type":"audit","phase":{},"check":{},"passed":{},"detail":{}}}"#,
                json_str(&a.phase),
                json_str(&a.check),
                a.passed,
                json_str(&a.detail)
            )?;
        }
        for d in &self.dispatches {
            let lanes: Vec<String> = d
                .lanes
                .iter()
                .map(|l| {
                    format!(
                        r#"{{"start_seconds":{},"busy_seconds":{},"chunks":{},"items":{},"wakeup_seconds":{}}}"#,
                        json_f64(l.start_seconds),
                        json_f64(l.busy_seconds),
                        l.chunks,
                        l.items,
                        json_f64(l.wakeup_seconds)
                    )
                })
                .collect();
            let hist: Vec<String> = d.chunk_hist.iter().map(|c| c.to_string()).collect();
            writeln!(
                w,
                r#"{{"type":"dispatch","kernel":{},"backend":{},"n":{},"chunk":{},"threads":{},"start_seconds":{},"seconds":{},"imbalance":{},"heap_delta_bytes":{},"heap_peak_bytes":{},"lanes":[{}],"chunk_hist_log2us":[{}]}}"#,
                json_str(&d.kernel),
                json_str(d.backend),
                d.n,
                d.chunk,
                d.threads,
                json_f64(d.start_seconds),
                json_f64(d.seconds),
                json_f64(d.imbalance()),
                d.heap_delta_bytes,
                d.heap_peak_bytes,
                lanes.join(","),
                hist.join(",")
            )?;
        }
        Ok(())
    }

    /// [`TraceReport::write_jsonl`] into a `String`.
    pub fn to_jsonl_string(&self) -> String {
        let mut buf = Vec::new();
        self.write_jsonl(&mut buf)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(buf).expect("jsonl output is ASCII-escaped UTF-8")
    }

    /// Render an aggregated, human-readable tree table: spans grouped by
    /// path (summing durations over repeats such as per-pass spans), then
    /// counters, gauges and audit outcomes.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("spans (path, calls, total seconds, heap net/peak):\n");
            // Aggregate per full path, then roll subtree totals up into
            // every ancestor prefix so interior nodes get their own rows.
            // (direct calls, direct seconds, subtree seconds, heap net sum,
            // heap peak max) per node; BTreeMap order is lexicographic,
            // which is tree order. Heap figures stay *direct* (no ancestor
            // roll-up): span scopes are already inclusive of their nested
            // children, so rolling up would double-count.
            let mut nodes: BTreeMap<String, (usize, f64, f64, i64, u64)> = BTreeMap::new();
            for s in &self.spans {
                let mut pos = 0;
                while let Some(i) = s.path[pos..].find('/') {
                    let e = nodes
                        .entry(s.path[..pos + i].to_string())
                        .or_insert((0, 0.0, 0.0, 0, 0));
                    e.2 += s.seconds;
                    pos += i + 1;
                }
                let e = nodes.entry(s.path.clone()).or_insert((0, 0.0, 0.0, 0, 0));
                e.0 += 1;
                e.1 += s.seconds;
                e.2 += s.seconds;
                e.3 += s.heap_delta_bytes;
                e.4 = e.4.max(s.heap_peak_bytes);
            }
            for (path, &(calls, _, total, heap_net, heap_peak)) in &nodes {
                let depth = path.matches('/').count();
                let leaf = path.rsplit('/').next().unwrap_or(path);
                let name = format!("{}{leaf}", "  ".repeat(depth));
                let heap = if calls > 0 && (heap_net != 0 || heap_peak != 0) {
                    format!(
                        "  heap {} pk {}",
                        crate::mem::fmt_bytes_signed(heap_net),
                        crate::mem::fmt_bytes(heap_peak)
                    )
                } else {
                    String::new()
                };
                if calls > 0 {
                    out.push_str(&format!("  {name: <30} x{calls: <4} {total:.6}s{heap}\n"));
                } else {
                    out.push_str(&format!("  {name: <30}       {total:.6}s\n"));
                }
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (path, value) in &self.counters {
                out.push_str(&format!("  {path: <40} {value}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for g in &self.gauges {
                out.push_str(&format!("  {: <40} {}\n", g.path, g.value));
            }
        }
        if !self.dispatches.is_empty() {
            out.push_str(
                "dispatches (kernel@backend, count, items, chunks, busy s, worst imbalance, worst wakeup, typical chunk):\n",
            );
            // (count, items, chunks, busy seconds, worst imbalance, worst
            // wakeup, merged chunk-duration histogram) per kernel@backend —
            // the per-policy view shows whether the configured grain
            // produces chunks big enough to amortize the claim but small
            // enough to balance, and whether workers arrived fast enough to
            // matter (the wakeup column).
            type DispatchAgg = (u64, u64, u64, f64, f64, f64, [u64; HIST_BUCKETS]);
            let mut aggs: BTreeMap<String, DispatchAgg> = BTreeMap::new();
            for d in &self.dispatches {
                let e = aggs
                    .entry(format!("{}@{}", d.kernel, d.backend))
                    .or_insert((0, 0, 0, 0.0, 0.0, 0.0, [0u64; HIST_BUCKETS]));
                e.0 += 1;
                e.1 += d.items();
                e.2 += d.chunks();
                e.3 += d.lanes.iter().map(|l| l.busy_seconds).sum::<f64>();
                e.4 = e.4.max(d.imbalance());
                e.5 = e.5.max(d.wakeup_seconds_max());
                for (b, &c) in d.chunk_hist.iter().enumerate() {
                    e.6[b] += c as u64;
                }
            }
            for (key, (count, items, chunks, busy, worst, wakeup, hist)) in &aggs {
                let modal = hist
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &c)| c)
                    .map(|(b, _)| b)
                    .unwrap_or(0);
                let typical = if hist.iter().all(|&c| c == 0) {
                    "-".to_string()
                } else if modal == 0 {
                    "<=1us".to_string()
                } else {
                    format!("~{}us", 1u64 << modal)
                };
                out.push_str(&format!(
                    "  {key: <44} x{count: <5} {items: >10} items {chunks: >7} chunks {busy: >9.4}s imb {worst:.2} wake {: >7.1}us {typical}\n",
                    wakeup * 1e6
                ));
            }
        }
        if !self.audits.is_empty() {
            let failed = self.failed_audits().len();
            out.push_str(&format!(
                "audits: {} run, {} failed\n",
                self.audits.len(),
                failed
            ));
            for a in self.audits.iter().filter(|a| !a.passed) {
                out.push_str(&format!("  FAIL [{}] {}: {}\n", a.phase, a.check, a.detail));
            }
        }
        out
    }

    /// Render as Chrome trace-event JSON (the `{"traceEvents":[...]}` form
    /// understood by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)).
    ///
    /// The layout maps the pipeline onto one process (`pid` 0):
    ///
    /// - `tid` 0 (**pipeline**) carries the hierarchical spans as balanced
    ///   `B`/`E` pairs;
    /// - `tid` 1.. (**worker `w`**) carry one `X` (complete) event per
    ///   profiled-dispatch lane, spanning that participant's busy window
    ///   with `chunks`/`items`/`backend`/`wakeup_us` in `args`;
    /// - counters, gauges and audits appear as global instant (`i`) events;
    /// - live-heap samples form a process-level `C` (counter) track named
    ///   `heap/live_bytes`, and every profiled dispatch with heap
    ///   attribution emits a `mem/<kernel>/peak_bytes` instant at its
    ///   completion timestamp.
    ///
    /// Timestamps are integer microseconds from the collector's epoch.
    /// Events are emitted sorted by `(ts, kind)` with `B` before `E` at
    /// equal timestamps, so the per-tid open-span depth never goes
    /// negative and every `B` has a matching `E`.
    pub fn to_chrome_trace(&self) -> String {
        let us = |s: f64| -> u64 {
            if s.is_finite() && s > 0.0 {
                (s * 1e6).round() as u64
            } else {
                0
            }
        };
        // (ts, kind-rank, tiebreak, json). kind-rank keeps metadata first
        // and B before E at equal timestamps; the tiebreak opens
        // longer-running spans first / closes shorter ones first so nested
        // same-timestamp spans keep their nesting.
        let mut events: Vec<(u64, u8, u64, String)> = Vec::new();
        events.push((
            0,
            0,
            0,
            r#"{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"mlcg"}}"#
                .to_string(),
        ));
        events.push((
            0,
            0,
            1,
            r#"{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"pipeline"}}"#
                .to_string(),
        ));
        let max_lanes = self
            .dispatches
            .iter()
            .map(|d| d.lanes.len())
            .max()
            .unwrap_or(0);
        for w in 0..max_lanes {
            events.push((
                0,
                0,
                2 + w as u64,
                format!(
                    r#"{{"name":"thread_name","ph":"M","pid":0,"tid":{},"args":{{"name":"worker {w}"}}}}"#,
                    w + 1
                ),
            ));
        }
        for s in &self.spans {
            let b = us(s.start_seconds);
            let dur = us(s.seconds);
            events.push((
                b,
                1,
                u64::MAX - dur,
                format!(
                    r#"{{"name":{},"cat":"span","ph":"B","ts":{b},"pid":0,"tid":0}}"#,
                    json_str(&s.path)
                ),
            ));
            events.push((
                b + dur,
                2,
                dur,
                format!(
                    r#"{{"name":{},"cat":"span","ph":"E","ts":{},"pid":0,"tid":0,"args":{{"heap_delta_bytes":{},"heap_peak_bytes":{}}}}}"#,
                    json_str(&s.path),
                    b + dur,
                    s.heap_delta_bytes,
                    s.heap_peak_bytes
                ),
            ));
        }
        // Process-level memory counter track: live-heap samples render as a
        // filled area chart in Perfetto / chrome://tracing.
        for m in &self.mem_samples {
            let ts = us(m.at_seconds);
            events.push((
                ts,
                3,
                0,
                format!(
                    r#"{{"name":"heap/live_bytes","cat":"mem","ph":"C","ts":{ts},"pid":0,"tid":0,"args":{{"bytes":{}}}}}"#,
                    m.live_bytes
                ),
            ));
        }
        // Per-kernel heap high-water instants at each dispatch's completion.
        for d in &self.dispatches {
            if d.heap_peak_bytes > 0 {
                let ts = us(d.start_seconds + d.seconds);
                events.push((
                    ts,
                    3,
                    0,
                    format!(
                        r#"{{"name":{},"cat":"mem","ph":"i","ts":{ts},"pid":0,"tid":0,"s":"p","args":{{"peak_bytes":{}}}}}"#,
                        json_str(&format!("mem/{}/peak_bytes", d.kernel)),
                        d.heap_peak_bytes
                    ),
                ));
            }
        }
        for d in &self.dispatches {
            for (w, lane) in d.lanes.iter().enumerate() {
                events.push((
                    us(lane.start_seconds),
                    1,
                    0,
                    format!(
                        r#"{{"name":{},"cat":"dispatch","ph":"X","ts":{},"dur":{},"pid":0,"tid":{},"args":{{"backend":{},"chunks":{},"items":{},"wakeup_us":{}}}}}"#,
                        json_str(&d.kernel),
                        us(lane.start_seconds),
                        us(lane.busy_seconds),
                        w + 1,
                        json_str(d.backend),
                        lane.chunks,
                        lane.items,
                        json_f64(lane.wakeup_seconds * 1e6)
                    ),
                ));
            }
        }
        for (path, value) in &self.counters {
            events.push((
                0,
                3,
                0,
                format!(
                    r#"{{"name":{},"cat":"counter","ph":"i","ts":0,"pid":0,"tid":0,"s":"g","args":{{"value":{value}}}}}"#,
                    json_str(path)
                ),
            ));
        }
        for g in &self.gauges {
            events.push((
                0,
                3,
                0,
                format!(
                    r#"{{"name":{},"cat":"gauge","ph":"i","ts":0,"pid":0,"tid":0,"s":"g","args":{{"value":{}}}}}"#,
                    json_str(&g.path),
                    json_f64(g.value)
                ),
            ));
        }
        for a in &self.audits {
            events.push((
                0,
                3,
                0,
                format!(
                    r#"{{"name":{},"cat":"audit","ph":"i","ts":0,"pid":0,"tid":0,"s":"g","args":{{"passed":{},"detail":{}}}}}"#,
                    json_str(&format!("{}/{}", a.phase, a.check)),
                    a.passed,
                    json_str(&a.detail)
                ),
            ));
        }
        events.sort_by_key(|e| (e.0, e.1, e.2));
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, (_, _, _, json)) in events.iter().enumerate() {
            out.push_str(json);
            if i + 1 < events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// [`TraceReport::to_chrome_trace`] into a writer.
    pub fn write_chrome_trace<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        w.write_all(self.to_chrome_trace().as_bytes())
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON has no NaN/Infinity; map them to null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Keep full round-trip precision.
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_records_nothing() {
        let t = TraceCollector::disabled();
        assert!(!t.is_enabled());
        assert!(!t.validate_enabled());
        let sp = t.span(|| panic!("path closure must not run when disabled"));
        sp.finish();
        t.counter_add("x", 3);
        t.gauge(|| panic!("gauge path must not run when disabled"), 1.0);
        t.audit("phase", "check", Err("ignored".into()));
        assert!(t.report().is_empty());
    }

    #[test]
    fn timed_span_measures_even_when_disabled() {
        let t = TraceCollector::disabled();
        let sp = t.timed_span(|| unreachable!());
        std::thread::sleep(std::time::Duration::from_millis(2));
        let secs = sp.finish();
        assert!(secs >= 0.001);
        assert!(t.report().spans.is_empty());
    }

    #[test]
    fn spans_counters_gauges_round_trip() {
        let t = TraceCollector::enabled();
        {
            let sp = t.span(|| "mapping/hec/level0".to_string());
            t.counter_add("mapping/conflicts_rematched", 2);
            t.counter_add("mapping/conflicts_rematched", 3);
            t.gauge(|| "level/0/nv".to_string(), 128.0);
            sp.finish();
        }
        let secs = t
            .timed_span(|| "construct/hash/level0".to_string())
            .finish();
        assert!(secs >= 0.0);
        let r = t.report();
        assert_eq!(r.spans.len(), 2);
        assert_eq!(r.counter("mapping/conflicts_rematched"), 5);
        assert_eq!(r.gauge("level/0/nv"), Some(128.0));
        assert!(r.span_seconds("mapping") >= 0.0);
        assert_eq!(
            r.span_seconds("mapp"),
            0.0,
            "prefix must match path segments"
        );
        assert!(r.span_seconds("construct") > 0.0 || r.span_seconds("construct") == 0.0);
    }

    #[test]
    fn audits_recorded_without_tracing() {
        let t = TraceCollector::with_config(TraceConfig {
            enabled: false,
            validate: true,
        });
        assert!(!t.is_enabled());
        assert!(t.validate_enabled());
        t.audit("mapping/level1", "surjective", Ok(()));
        t.audit(
            "construct/level2",
            "csr-wellformed",
            Err("xadj not monotone".into()),
        );
        let r = t.report();
        assert_eq!(r.audits.len(), 2);
        let failed = r.first_failed_audit().unwrap();
        assert_eq!(failed.phase, "construct/level2");
        assert_eq!(failed.check, "csr-wellformed");
        // Spans are not recorded in validate-only mode.
        t.span(|| "x".to_string()).finish();
        assert!(t.report().spans.is_empty());
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let t = TraceCollector::enabled_with_validation();
        t.span(|| "mapping/hec/level0".to_string()).finish();
        t.counter_add("edges_scanned", 42);
        t.gauge(|| "level/0/compression".to_string(), 2.5);
        t.audit("construct/level0", "conservation", Ok(()));
        let text = t.report().to_jsonl_string();
        let lines: Vec<&str> = text.lines().collect();
        // 1 span + 2 mem samples (span open/close) + 1 counter + 1 gauge
        // + 2 report-time mem gauges + 1 audit.
        assert_eq!(lines.len(), 8);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains(r#""type":"#), "{line}");
        }
        assert!(text.contains(r#""type":"span""#));
        assert!(text.contains(r#""type":"counter""#));
        assert!(text.contains(r#""type":"gauge""#));
        assert!(text.contains(r#""type":"audit""#));
        assert!(text.contains(r#""type":"mem""#));
        assert!(text.contains(r#""heap_peak_bytes":"#));
        assert!(text.contains(r#""path":"mem/peak_bytes""#));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn tree_rendering_mentions_phases_and_failures() {
        let t = TraceCollector::enabled_with_validation();
        t.span(|| "mapping/hec/level0".to_string()).finish();
        t.span(|| "mapping/hec/level1".to_string()).finish();
        t.counter_add("fm/moves_rolled_back", 7);
        t.audit(
            "mapping/level1",
            "bounds",
            Err("label 9 out of range".into()),
        );
        let tree = t.report().render_tree();
        assert!(tree.contains("level0"));
        assert!(tree.contains("fm/moves_rolled_back"));
        assert!(tree.contains("FAIL [mapping/level1] bounds"));
    }

    #[test]
    fn clones_share_state_across_threads() {
        let t = TraceCollector::enabled();
        let mut handles = Vec::new();
        for k in 0..4 {
            let tc = t.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    tc.counter_add("shared", 1);
                }
                tc.span(move || format!("thread/{k}")).finish();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let r = t.report();
        assert_eq!(r.counter("shared"), 400);
        assert_eq!(r.spans.len(), 4);
    }

    #[test]
    fn gauge_is_last_write_wins_and_gauges_returns_the_series() {
        let t = TraceCollector::enabled();
        t.gauge(|| "fm/boundary_size".to_string(), 10.0);
        t.gauge(|| "fm/boundary_size".to_string(), 7.0);
        t.gauge(|| "fm/boundary_size".to_string(), 3.0);
        t.gauge(|| "other".to_string(), 99.0);
        let r = t.report();
        assert_eq!(r.gauge("fm/boundary_size"), Some(3.0));
        assert_eq!(r.gauges("fm/boundary_size"), vec![10.0, 7.0, 3.0]);
        assert_eq!(r.gauge("missing"), None);
        assert!(r.gauges("missing").is_empty());
    }

    #[test]
    fn chrome_trace_has_balanced_span_pairs_and_lane_events() {
        use crate::profile::{DispatchRecord, WorkerLane, HIST_BUCKETS};
        let t = TraceCollector::enabled();
        t.span(|| "mapping/hec/level0".to_string()).finish();
        t.counter_add("edges_scanned", 42);
        t.gauge(|| "level/0/nv".to_string(), 128.0);
        let mut r = t.report();
        r.dispatches.push(DispatchRecord {
            kernel: "par_for/hec_match".to_string(),
            backend: "host",
            n: 1000,
            chunk: 100,
            threads: 2,
            start_seconds: 0.001,
            seconds: 0.002,
            lanes: vec![
                WorkerLane {
                    start_seconds: 0.001,
                    busy_seconds: 0.002,
                    chunks: 5,
                    items: 500,
                    wakeup_seconds: 0.0,
                },
                WorkerLane {
                    start_seconds: 0.001,
                    busy_seconds: 0.0015,
                    chunks: 5,
                    items: 500,
                    wakeup_seconds: 3e-6,
                },
            ],
            chunk_hist: [0; HIST_BUCKETS],
            heap_delta_bytes: 512,
            heap_peak_bytes: 2048,
        });
        let json = r.to_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(
            json.matches(r#""ph":"B""#).count(),
            json.matches(r#""ph":"E""#).count(),
            "every B span event needs a matching E"
        );
        assert_eq!(
            json.matches(r#""ph":"X""#).count(),
            2,
            "one complete event per dispatch lane"
        );
        assert!(json.contains(r#""name":"par_for/hec_match""#));
        assert!(json.contains(r#""name":"worker 1""#));
        assert!(
            json.contains(r#""wakeup_us":"#),
            "lane events carry the wakeup latency:\n{json}"
        );
        assert!(json.contains(r#""cat":"counter""#));
        assert!(json.contains(r#""cat":"gauge""#));
        assert!(
            json.contains(r#""ph":"C""#),
            "span boundaries must sample the memory counter track:\n{json}"
        );
        assert!(
            json.contains(r#""name":"mem/par_for/hec_match/peak_bytes""#),
            "dispatch heap peaks must emit per-kernel instants:\n{json}"
        );
    }

    #[test]
    fn tree_rendering_summarizes_dispatches() {
        use crate::profile::{DispatchRecord, WorkerLane, HIST_BUCKETS};
        let mut r = TraceReport::default();
        let mut hist = [0u32; HIST_BUCKETS];
        hist[3] = 7;
        r.dispatches.push(DispatchRecord {
            kernel: "par_blocks/scan/block_sums".to_string(),
            backend: "device-sim",
            n: 4096,
            chunk: 0,
            threads: 4,
            start_seconds: 0.0,
            seconds: 0.004,
            lanes: vec![WorkerLane {
                start_seconds: 0.0,
                busy_seconds: 0.004,
                chunks: 7,
                items: 4096,
                wakeup_seconds: 0.0,
            }],
            chunk_hist: hist,
            heap_delta_bytes: 0,
            heap_peak_bytes: 0,
        });
        let tree = r.render_tree();
        assert!(tree.contains("par_blocks/scan/block_sums@device-sim"));
        assert!(
            tree.contains("~8us"),
            "modal histogram bucket 3 is ~8us:\n{tree}"
        );
    }

    #[test]
    fn config_from_env_reads_fresh() {
        // Neither variable is set by default in the test environment; the
        // env-driven negative tests in the integration suite exercise the
        // set path.
        let cfg = TraceConfig::from_env();
        let _ = cfg.enabled;
    }
}

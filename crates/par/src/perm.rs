//! Sort-based parallel random permutation (`ParGenPerm` in the paper's
//! Algorithm 4): assign each index an independent pseudo-random key and sort
//! by it. Deterministic for a fixed seed regardless of thread count.

use crate::rng::hash_index;
use crate::sort::par_radix_sort_pairs;
use crate::{parallel_for, profile, ExecPolicy};
use std::sync::atomic::Ordering;

/// A uniformly random permutation of `0..n` (as `u32` labels).
pub fn random_permutation(policy: &ExecPolicy, n: usize, seed: u64) -> Vec<u32> {
    let mut keys = Vec::new();
    let mut out = Vec::new();
    random_permutation_in(policy, n, seed, &mut keys, &mut out);
    out
}

/// [`random_permutation`] into caller-owned buffers: `keys` is sort
/// scratch, `out` receives the permutation. Both keep their capacity, so a
/// level loop pays the generation allocations once.
pub fn random_permutation_in(
    policy: &ExecPolicy,
    n: usize,
    seed: u64,
    keys: &mut Vec<u64>,
    out: &mut Vec<u32>,
) {
    assert!(
        n <= u32::MAX as usize,
        "random_permutation: n exceeds u32 range"
    );
    let _k = profile::kernel("gen_perm");
    keys.clear();
    keys.resize(n, 0);
    {
        let _k = profile::kernel("keys");
        let base = keys.as_mut_ptr() as usize;
        parallel_for(policy, n, move |i| {
            // SAFETY: index-disjoint writes.
            unsafe {
                (base as *mut u64).add(i).write(hash_index(seed, i as u64));
            }
        });
    }
    out.clear();
    out.resize(n, 0);
    {
        let _k = profile::kernel("ids");
        let base = out.as_mut_ptr() as usize;
        parallel_for(policy, n, move |i| {
            // SAFETY: index-disjoint writes.
            unsafe {
                (base as *mut u32).add(i).write(i as u32);
            }
        });
    }
    par_radix_sort_pairs(policy, keys, out);
}

/// Inverse of a permutation: `out[p[i]] = i`.
pub fn invert_permutation(policy: &ExecPolicy, p: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    invert_permutation_in(policy, p, &mut out);
    out
}

/// [`invert_permutation`] into a caller-owned buffer.
pub fn invert_permutation_in(policy: &ExecPolicy, p: &[u32], out: &mut Vec<u32>) {
    let _k = profile::kernel("invert_perm");
    let n = p.len();
    out.clear();
    out.resize(n, 0);
    {
        let view = crate::atomic::as_atomic_u32(out);
        parallel_for(policy, n, |i| {
            view[p[i] as usize].store(i as u32, Ordering::Relaxed);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(p: &[u32]) -> bool {
        let mut seen = vec![false; p.len()];
        for &x in p {
            if (x as usize) >= p.len() || seen[x as usize] {
                return false;
            }
            seen[x as usize] = true;
        }
        true
    }

    #[test]
    fn produces_valid_permutations() {
        for policy in ExecPolicy::all_test_policies() {
            for n in [0usize, 1, 2, 100, 40_000] {
                let p = random_permutation(&policy, n, 123);
                assert_eq!(p.len(), n);
                assert!(is_permutation(&p), "n={n} policy={policy}");
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed_across_policies() {
        let a = random_permutation(&ExecPolicy::serial(), 10_000, 99);
        for policy in ExecPolicy::all_test_policies() {
            let b = random_permutation(&policy, 10_000, 99);
            assert_eq!(a, b, "permutation must not depend on the policy");
        }
    }

    #[test]
    fn different_seeds_give_different_orders() {
        let a = random_permutation(&ExecPolicy::serial(), 1000, 1);
        let b = random_permutation(&ExecPolicy::serial(), 1000, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn permutation_is_unbiased_at_position_zero() {
        // Over many seeds, the first element should be roughly uniform.
        let n = 16usize;
        let trials = 4000;
        let mut counts = vec![0usize; n];
        for seed in 0..trials {
            let p = random_permutation(&ExecPolicy::serial(), n, seed);
            counts[p[0] as usize] += 1;
        }
        let expect = trials as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > expect * 0.5 && (c as f64) < expect * 1.5,
                "position-0 value {i} count {c} vs expected {expect}"
            );
        }
    }

    #[test]
    fn inverse_round_trips() {
        for policy in ExecPolicy::all_test_policies() {
            let p = random_permutation(&policy, 5000, 7);
            let inv = invert_permutation(&policy, &p);
            for i in 0..p.len() {
                assert_eq!(inv[p[i] as usize], i as u32);
                assert_eq!(p[inv[i] as usize], i as u32);
            }
        }
    }
}

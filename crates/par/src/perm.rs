//! Sort-based parallel random permutation (`ParGenPerm` in the paper's
//! Algorithm 4): assign each index an independent pseudo-random key and sort
//! by it. Deterministic for a fixed seed regardless of thread count.

use crate::rng::hash_index;
use crate::sort::par_radix_sort_pairs;
use crate::{parallel_for, profile, ExecPolicy};
use std::sync::atomic::Ordering;

/// A uniformly random permutation of `0..n` (as `u32` labels).
pub fn random_permutation(policy: &ExecPolicy, n: usize, seed: u64) -> Vec<u32> {
    assert!(
        n <= u32::MAX as usize,
        "random_permutation: n exceeds u32 range"
    );
    let _k = profile::kernel("gen_perm");
    let mut keys: Vec<u64> = vec![0; n];
    {
        let _k = profile::kernel("keys");
        let base = keys.as_mut_ptr() as usize;
        parallel_for(policy, n, move |i| {
            // SAFETY: index-disjoint writes into the freshly allocated buffer.
            unsafe {
                (base as *mut u64).add(i).write(hash_index(seed, i as u64));
            }
        });
    }
    let mut vals: Vec<u32> = vec![0; n];
    {
        let _k = profile::kernel("ids");
        let base = vals.as_mut_ptr() as usize;
        parallel_for(policy, n, move |i| {
            // SAFETY: index-disjoint writes.
            unsafe {
                (base as *mut u32).add(i).write(i as u32);
            }
        });
    }
    par_radix_sort_pairs(policy, &mut keys, &mut vals);
    vals
}

/// Inverse of a permutation: `out[p[i]] = i`.
pub fn invert_permutation(policy: &ExecPolicy, p: &[u32]) -> Vec<u32> {
    let _k = profile::kernel("invert_perm");
    let n = p.len();
    let mut out = vec![0u32; n];
    {
        let view = crate::atomic::as_atomic_u32(&mut out);
        parallel_for(policy, n, |i| {
            view[p[i] as usize].store(i as u32, Ordering::Relaxed);
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(p: &[u32]) -> bool {
        let mut seen = vec![false; p.len()];
        for &x in p {
            if (x as usize) >= p.len() || seen[x as usize] {
                return false;
            }
            seen[x as usize] = true;
        }
        true
    }

    #[test]
    fn produces_valid_permutations() {
        for policy in ExecPolicy::all_test_policies() {
            for n in [0usize, 1, 2, 100, 40_000] {
                let p = random_permutation(&policy, n, 123);
                assert_eq!(p.len(), n);
                assert!(is_permutation(&p), "n={n} policy={policy}");
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed_across_policies() {
        let a = random_permutation(&ExecPolicy::serial(), 10_000, 99);
        for policy in ExecPolicy::all_test_policies() {
            let b = random_permutation(&policy, 10_000, 99);
            assert_eq!(a, b, "permutation must not depend on the policy");
        }
    }

    #[test]
    fn different_seeds_give_different_orders() {
        let a = random_permutation(&ExecPolicy::serial(), 1000, 1);
        let b = random_permutation(&ExecPolicy::serial(), 1000, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn permutation_is_unbiased_at_position_zero() {
        // Over many seeds, the first element should be roughly uniform.
        let n = 16usize;
        let trials = 4000;
        let mut counts = vec![0usize; n];
        for seed in 0..trials {
            let p = random_permutation(&ExecPolicy::serial(), n, seed);
            counts[p[0] as usize] += 1;
        }
        let expect = trials as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > expect * 0.5 && (c as f64) < expect * 1.5,
                "position-0 value {i} count {c} vs expected {expect}"
            );
        }
    }

    #[test]
    fn inverse_round_trips() {
        for policy in ExecPolicy::all_test_policies() {
            let p = random_permutation(&policy, 5000, 7);
            let inv = invert_permutation(&policy, &p);
            for i in 0..p.len() {
                assert_eq!(inv[p[i] as usize], i as u32);
                assert_eq!(p[inv[i] as usize], i as u32);
            }
        }
    }
}

//! Parallel and per-segment sorts.
//!
//! Two families, mirroring the paper's per-architecture kernel choices:
//!
//! - [`par_radix_sort_pairs`]: a parallel least-significant-digit radix sort
//!   on `u64` keys with an arbitrary `Copy` payload. This is the host-side
//!   workhorse (the paper uses radix sort on the CPU) and also backs the
//!   sort-based parallel random permutation and the global-sort construction
//!   baseline.
//! - [`bitonic_sort_pairs`] / [`seg_sort_pairs`]: small fixed-network and
//!   hybrid sorts for per-vertex adjacency segments, standing in for the
//!   team-level bitonic sorts the paper uses on the GPU.

use crate::scan::exclusive_scan;
use crate::{parallel_for_blocks, profile, ExecPolicy};

const RADIX_BITS: usize = 8;
const RADIX: usize = 1 << RADIX_BITS;
const SEQ_SORT_CUTOFF: usize = 1 << 14;

/// Static per-pass profiler labels (`64 / RADIX_BITS` passes at most), so
/// labelling a pass never allocates.
const PASS_LABELS: [&str; 8] = [
    "pass0", "pass1", "pass2", "pass3", "pass4", "pass5", "pass6", "pass7",
];

/// Stable parallel LSD radix sort of `(keys, vals)` pairs by key.
///
/// Only as many 8-bit digit passes as the maximum key needs are performed.
pub fn par_radix_sort_pairs<V: Copy + Default + Send + Sync>(
    policy: &ExecPolicy,
    keys: &mut Vec<u64>,
    vals: &mut Vec<V>,
) {
    let n = keys.len();
    assert_eq!(n, vals.len(), "par_radix_sort_pairs: length mismatch");
    if n <= 1 {
        return;
    }
    if n < SEQ_SORT_CUTOFF || policy.effective_threads(n) <= 1 {
        seq_sort_pairs(keys, vals);
        return;
    }

    let max_key = crate::reduce::parallel_reduce_max(policy, n, |i| keys[i]);
    let passes = ((64 - max_key.leading_zeros() as usize).max(1)).div_ceil(RADIX_BITS);

    let threads = policy.effective_threads(n);
    let nblocks = (threads * 4).min(n);
    let block = n.div_ceil(nblocks);
    let nblocks = n.div_ceil(block);

    let mut kbuf: Vec<u64> = vec![0; n];
    let mut vbuf: Vec<V> = vec![V::default(); n];
    // counts[v * nblocks + b]: occurrences of digit v in block b. Laid out
    // digit-major so the exclusive scan directly yields stable scatter bases.
    let mut counts: Vec<usize> = vec![0; RADIX * nblocks];

    // Label every pass for the dispatch profiler; the block loops size
    // their team by the pair count (`parallel_for_blocks`) — a plain
    // `parallel_for` over the few dozen blocks would fall below the policy
    // grain and run each pass inline.
    let _k = profile::kernel("radix_sort");
    let mut src_is_orig = true;
    for pass in 0..passes {
        let _k = profile::kernel(PASS_LABELS[pass.min(PASS_LABELS.len() - 1)]);
        let shift = pass * RADIX_BITS;
        counts.iter_mut().for_each(|c| *c = 0);
        {
            let _k = profile::kernel("count");
            let (src_k, _src_v, _dst_k, _dst_v) =
                buffers(&mut *keys, &mut *vals, &mut kbuf, &mut vbuf, src_is_orig);
            let counts_base = counts.as_mut_ptr() as usize;
            parallel_for_blocks(policy, n, nblocks, move |b| {
                let start = b * block;
                let end = ((b + 1) * block).min(n);
                // SAFETY: each block writes a disjoint column of `counts`.
                let cp = counts_base as *mut usize;
                for &k in &src_k[start..end] {
                    let d = ((k >> shift) as usize) & (RADIX - 1);
                    unsafe {
                        *cp.add(d * nblocks + b) += 1;
                    }
                }
            });
        }
        exclusive_scan(&ExecPolicy::serial(), &mut counts);
        {
            let _k = profile::kernel("scatter");
            let (src_k, src_v, dst_k, dst_v) =
                buffers(&mut *keys, &mut *vals, &mut kbuf, &mut vbuf, src_is_orig);
            let dst_k_base = dst_k.as_mut_ptr() as usize;
            let dst_v_base = dst_v.as_mut_ptr() as usize;
            let counts_ref = &counts;
            parallel_for_blocks(policy, n, nblocks, move |b| {
                let start = b * block;
                let end = ((b + 1) * block).min(n);
                let mut cursors = [0usize; RADIX];
                for (d, cur) in cursors.iter_mut().enumerate() {
                    *cur = counts_ref[d * nblocks + b];
                }
                // SAFETY: scatter targets are globally unique by construction
                // of the per-(digit, block) cursor ranges.
                unsafe {
                    let kd = dst_k_base as *mut u64;
                    let vd = dst_v_base as *mut V;
                    for i in start..end {
                        let k = src_k[i];
                        let d = ((k >> shift) as usize) & (RADIX - 1);
                        let pos = cursors[d];
                        cursors[d] += 1;
                        kd.add(pos).write(k);
                        vd.add(pos).write(src_v[i]);
                    }
                }
            });
        }
        src_is_orig = !src_is_orig;
    }
    if !src_is_orig {
        // Result currently lives in the scratch buffers.
        std::mem::swap(keys, &mut kbuf);
        std::mem::swap(vals, &mut vbuf);
    }
}

/// Split (keys, vals, kbuf, vbuf) into (src_k, src_v, dst_k, dst_v).
#[allow(clippy::type_complexity)]
fn buffers<'a, V>(
    keys: &'a mut [u64],
    vals: &'a mut [V],
    kbuf: &'a mut [u64],
    vbuf: &'a mut [V],
    src_is_orig: bool,
) -> (&'a [u64], &'a [V], &'a mut [u64], &'a mut [V]) {
    if src_is_orig {
        (keys, vals, kbuf, vbuf)
    } else {
        (kbuf, vbuf, keys, vals)
    }
}

/// Sequential fallback: sort pairs by key, stable.
///
/// The permutation is materialized with `usize` indices, so any slice the
/// address space can hold sorts correctly. (This path is reachable with
/// arbitrarily large `n` via `par_radix_sort_pairs` on a single-thread
/// policy; the previous `u32` index vector would have truncated beyond
/// 2^32 entries and permuted garbage.)
pub fn seq_sort_pairs<V: Copy>(keys: &mut [u64], vals: &mut [V]) {
    let mut idx: Vec<usize> = (0..keys.len()).collect();
    idx.sort_by_key(|&i| keys[i]);
    apply_permutation(&idx, keys, vals);
}

fn apply_permutation<V: Copy>(idx: &[usize], keys: &mut [u64], vals: &mut [V]) {
    let ks: Vec<u64> = idx.iter().map(|&i| keys[i]).collect();
    let vs: Vec<V> = idx.iter().map(|&i| vals[i]).collect();
    keys.copy_from_slice(&ks);
    vals.copy_from_slice(&vs);
}

/// In-place insertion sort of `(keys, vals)` pairs by key — the base case
/// for per-vertex segments.
pub fn insertion_sort_pairs<K: Copy + Ord, V: Copy>(keys: &mut [K], vals: &mut [V]) {
    for i in 1..keys.len() {
        let (k, v) = (keys[i], vals[i]);
        let mut j = i;
        while j > 0 && keys[j - 1] > k {
            keys[j] = keys[j - 1];
            vals[j] = vals[j - 1];
            j -= 1;
        }
        keys[j] = k;
        vals[j] = v;
    }
}

/// Bitonic sort of `(keys, vals)` pairs by key, using caller-provided
/// scratch so per-vertex calls do not allocate. This is the device-sim dedup
/// sort: the network shape matches what a GPU team-level bitonic sort runs.
///
/// The scratch slices must each hold at least `keys.len().next_power_of_two()`
/// elements.
pub fn bitonic_sort_pairs<V: Copy + Default>(
    keys: &mut [u32],
    vals: &mut [V],
    scratch_k: &mut Vec<u32>,
    scratch_v: &mut Vec<V>,
) {
    let n = keys.len();
    debug_assert_eq!(n, vals.len());
    if n <= 1 {
        return;
    }
    let m = n.next_power_of_two();
    scratch_k.clear();
    scratch_k.extend_from_slice(keys);
    scratch_k.resize(m, u32::MAX); // +inf padding sinks to the tail
    scratch_v.clear();
    scratch_v.extend_from_slice(vals);
    scratch_v.resize(m, V::default());

    let sk = &mut scratch_k[..m];
    let sv = &mut scratch_v[..m];
    let mut k = 2;
    while k <= m {
        let mut j = k / 2;
        while j >= 1 {
            for i in 0..m {
                let l = i ^ j;
                if l > i {
                    let ascending = (i & k) == 0;
                    if (sk[i] > sk[l]) == ascending {
                        sk.swap(i, l);
                        sv.swap(i, l);
                    }
                }
            }
            j /= 2;
        }
        k *= 2;
    }
    keys.copy_from_slice(&sk[..n]);
    vals.copy_from_slice(&sv[..n]);
}

/// Insertion sort for tiny inputs, index-based std sort otherwise.
///
/// Indexes with `usize`, so it is safe at any length (the former `u32`
/// index vector would silently wrap past 2^32 entries).
pub fn insertion_or_std_sort<V: Copy>(keys: &mut [u32], vals: &mut [V]) {
    if keys.len() <= 16 {
        insertion_sort_pairs(keys, vals);
    } else {
        let mut idx: Vec<usize> = (0..keys.len()).collect();
        idx.sort_unstable_by_key(|&i| keys[i]);
        let ks: Vec<u32> = idx.iter().map(|&i| keys[i]).collect();
        let vs: Vec<V> = idx.iter().map(|&i| vals[i]).collect();
        keys.copy_from_slice(&ks);
        vals.copy_from_slice(&vs);
    }
}

/// Hybrid per-segment sort: insertion sort for tiny segments, otherwise
/// bitonic on the device policy or pattern-defeating std sort on the host.
///
/// The host path indexes through the caller's `u32` scratch, so segments
/// are bounded at `u32::MAX` entries (asserted). Per-vertex adjacency
/// segments — the only callers — are orders of magnitude below this.
pub fn seg_sort_pairs<V: Copy + Default>(
    device: bool,
    keys: &mut [u32],
    vals: &mut [V],
    scratch_k: &mut Vec<u32>,
    scratch_v: &mut Vec<V>,
) {
    let n = keys.len();
    assert!(
        n <= u32::MAX as usize,
        "seg_sort_pairs: segment of {n} entries exceeds the u32 index bound"
    );
    if n <= 16 {
        insertion_sort_pairs(keys, vals);
    } else if device {
        bitonic_sort_pairs(keys, vals, scratch_k, scratch_v);
    } else {
        // Host path: index sort + permute, reusing the caller's scratch so
        // per-segment calls are allocation-free. Values are permuted via
        // the sorted index order; keys are then sorted directly — safe
        // because equal keys are interchangeable for every caller (either
        // keys are unique, or equal-key runs are merged downstream).
        scratch_k.clear();
        scratch_k.extend(0..n as u32);
        scratch_k.sort_unstable_by_key(|&i| keys[i as usize]);
        scratch_v.clear();
        scratch_v.extend(scratch_k.iter().map(|&i| vals[i as usize]));
        vals.copy_from_slice(&scratch_v[..n]);
        keys.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    fn random_pairs(n: usize, seed: u64) -> (Vec<u64>, Vec<u32>) {
        let mut rng = Xoshiro256pp::new(seed);
        let keys: Vec<u64> = (0..n).map(|_| rng.next_below(1 << 40)).collect();
        let vals: Vec<u32> = (0..n as u32).collect();
        (keys, vals)
    }

    fn check_sorted_and_consistent(orig_keys: &[u64], keys: &[u64], vals: &[u32]) {
        assert!(keys.windows(2).all(|w| w[0] <= w[1]), "keys not sorted");
        // Every (key, val) pair must come from the input.
        for (&k, &v) in keys.iter().zip(vals) {
            assert_eq!(orig_keys[v as usize], k, "payload decoupled from key");
        }
        let mut seen: Vec<u32> = vals.to_vec();
        seen.sort_unstable();
        assert_eq!(
            seen,
            (0..vals.len() as u32).collect::<Vec<_>>(),
            "vals not a permutation"
        );
    }

    #[test]
    fn radix_sort_matches_reference() {
        for policy in ExecPolicy::all_test_policies() {
            for n in [0usize, 1, 2, 100, 5000, 70_000] {
                let (orig_keys, orig_vals) = random_pairs(n, 42 + n as u64);
                let mut keys = orig_keys.clone();
                let mut vals = orig_vals.clone();
                par_radix_sort_pairs(&policy, &mut keys, &mut vals);
                check_sorted_and_consistent(&orig_keys, &keys, &vals);
            }
        }
    }

    #[test]
    fn radix_sort_is_stable() {
        // Many duplicate keys; payload carries the original index.
        let policy = ExecPolicy {
            backend: crate::Backend::Host,
            threads: 4,
            grain: 16,
        };
        let n = 50_000;
        let mut rng = Xoshiro256pp::new(7);
        let mut keys: Vec<u64> = (0..n).map(|_| rng.next_below(8)).collect();
        let mut vals: Vec<u32> = (0..n as u32).collect();
        par_radix_sort_pairs(&policy, &mut keys, &mut vals);
        for w in keys.windows(2).zip(vals.windows(2)) {
            let (kw, vw) = w;
            if kw[0] == kw[1] {
                assert!(vw[0] < vw[1], "stability violated");
            }
        }
    }

    #[test]
    fn radix_sort_handles_max_keys() {
        let policy = ExecPolicy::host();
        let mut keys = vec![u64::MAX, 0, u64::MAX - 1, 5];
        let mut vals = vec![0u32, 1, 2, 3];
        par_radix_sort_pairs(&policy, &mut keys, &mut vals);
        assert_eq!(keys, vec![0, 5, u64::MAX - 1, u64::MAX]);
        assert_eq!(vals, vec![1, 3, 2, 0]);
    }

    #[test]
    fn insertion_sort_small() {
        let mut keys = vec![5u32, 3, 9, 1, 3];
        let mut vals = vec![50u64, 30, 90, 10, 31];
        insertion_sort_pairs(&mut keys, &mut vals);
        assert_eq!(keys, vec![1, 3, 3, 5, 9]);
        assert_eq!(vals, vec![10, 30, 31, 50, 90]);
    }

    #[test]
    fn bitonic_sorts_all_lengths() {
        let mut sk = Vec::new();
        let mut sv = Vec::new();
        let mut rng = Xoshiro256pp::new(3);
        for n in 0..130usize {
            let mut keys: Vec<u32> = (0..n).map(|_| rng.next_below(1000) as u32).collect();
            let mut vals: Vec<u64> = keys.iter().map(|&k| k as u64 * 10).collect();
            let mut expect = keys.clone();
            expect.sort_unstable();
            bitonic_sort_pairs(&mut keys, &mut vals, &mut sk, &mut sv);
            assert_eq!(keys, expect, "n={n}");
            assert!(
                keys.iter().zip(&vals).all(|(&k, &v)| v == k as u64 * 10),
                "n={n}"
            );
        }
    }

    #[test]
    fn seg_sort_both_flavours() {
        let mut sk = Vec::new();
        let mut sv = Vec::new();
        for device in [false, true] {
            let mut rng = Xoshiro256pp::new(17);
            for n in [0usize, 3, 16, 17, 64, 100] {
                let mut keys: Vec<u32> = (0..n).map(|_| rng.next_below(50) as u32).collect();
                let mut vals: Vec<u64> = keys.iter().map(|&k| k as u64).collect();
                let mut expect = keys.clone();
                expect.sort_unstable();
                seg_sort_pairs(device, &mut keys, &mut vals, &mut sk, &mut sv);
                assert_eq!(keys, expect, "device={device} n={n}");
                assert!(keys.iter().zip(&vals).all(|(&k, &v)| v == k as u64));
            }
        }
    }
}

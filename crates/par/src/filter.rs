//! Order-stable parallel compaction: keep the elements of an index
//! sequence that satisfy a predicate, preserving their order.
//!
//! The sequential equivalent is `Vec::retain`, which sits on the critical
//! path of every mapping pass (Algorithm 4's requeue of unresolved
//! vertices). The parallel form decomposes the input into *fixed* blocks —
//! one per dispatch slot, claimed through [`parallel_for_weighted`] so the
//! profiler tags it `par_for` — counts survivors per block, exclusive-scans
//! the (tiny) per-block counts sequentially, and scatters each block's
//! survivors to its precomputed offset. Fixed blocks make the output
//! independent of the schedule: every element's destination is a function
//! of the input alone, so the result is bit-identical to `retain` under
//! every policy and thread count.

use crate::{parallel_for_weighted, pool, profile, ExecPolicy};

/// Block count for the two passes: a few blocks per effective thread keeps
/// the tail balanced without making the sequential scan over block counts
/// noticeable.
fn block_count(policy: &ExecPolicy, n: usize) -> usize {
    (policy.effective_threads(n) * 4).clamp(1, n.max(1))
}

/// Core of the compaction: `get(i)` materializes element `i` of the
/// conceptual source sequence of length `n`.
fn filter_impl<G, P>(
    policy: &ExecPolicy,
    n: usize,
    get: G,
    pred: P,
    counts: &mut Vec<usize>,
    dst: &mut Vec<u32>,
) where
    G: Fn(usize) -> u32 + Sync,
    P: Fn(u32) -> bool + Sync,
{
    let _k = profile::kernel("compact");
    dst.clear();
    if n == 0 {
        return;
    }
    if policy.effective_threads(n) <= 1 || pool::in_worker() {
        dst.extend((0..n).map(&get).filter(|&u| pred(u)));
        return;
    }
    let nblocks = block_count(policy, n);
    let block = n.div_ceil(nblocks);
    counts.clear();
    counts.resize(nblocks, 0);
    {
        let base = counts.as_mut_ptr() as usize;
        let (get_ref, pred_ref) = (&get, &pred);
        parallel_for_weighted(policy, n, nblocks, move |b| {
            let lo = b * block;
            let hi = ((b + 1) * block).min(n);
            let c = (lo..hi).filter(|&i| pred_ref(get_ref(i))).count();
            // SAFETY: one write per block index.
            unsafe {
                (base as *mut usize).add(b).write(c);
            }
        });
    }
    // Exclusive scan of the per-block counts: nblocks is O(threads), so
    // sequential is both simplest and fastest.
    let mut total = 0usize;
    for c in counts.iter_mut() {
        let x = *c;
        *c = total;
        total += x;
    }
    dst.resize(total, 0);
    {
        let base = dst.as_mut_ptr() as usize;
        let counts_ref = &counts[..];
        let (get_ref, pred_ref) = (&get, &pred);
        parallel_for_weighted(policy, n, nblocks, move |b| {
            let lo = b * block;
            let hi = ((b + 1) * block).min(n);
            let mut at = counts_ref[b];
            for i in lo..hi {
                let u = get_ref(i);
                if pred_ref(u) {
                    // SAFETY: blocks write disjoint output ranges
                    // [counts[b], counts[b+1]).
                    unsafe {
                        (base as *mut u32).add(at).write(u);
                    }
                    at += 1;
                }
            }
        });
    }
}

/// Write the elements of `src` satisfying `pred` into `dst`, in order —
/// the allocation-free form. `counts` is per-block scratch; both buffers
/// keep their capacity across calls.
pub fn filter_indices_in<P>(
    policy: &ExecPolicy,
    src: &[u32],
    pred: P,
    counts: &mut Vec<usize>,
    dst: &mut Vec<u32>,
) where
    P: Fn(u32) -> bool + Sync,
{
    filter_impl(policy, src.len(), |i| src[i], pred, counts, dst);
}

/// [`filter_indices_in`] over the implicit sequence `0..n` (candidate
/// selection over all vertex ids without materializing them first).
pub fn filter_range_in<P>(
    policy: &ExecPolicy,
    n: usize,
    pred: P,
    counts: &mut Vec<usize>,
    dst: &mut Vec<u32>,
) where
    P: Fn(u32) -> bool + Sync,
{
    assert!(n <= u32::MAX as usize, "filter_range_in: n exceeds u32");
    filter_impl(policy, n, |i| i as u32, pred, counts, dst);
}

/// Allocating convenience form of [`filter_indices_in`].
pub fn filter_indices<P>(policy: &ExecPolicy, src: &[u32], pred: P) -> Vec<u32>
where
    P: Fn(u32) -> bool + Sync,
{
    let mut counts = Vec::new();
    let mut dst = Vec::new();
    filter_indices_in(policy, src, pred, &mut counts, &mut dst);
    dst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::hash_index;

    #[test]
    fn matches_retain_across_policies_and_sizes() {
        for policy in ExecPolicy::all_test_policies() {
            for n in [0usize, 1, 2, 7, 100, 4097, 100_000] {
                let src: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(2654435761)).collect();
                let pred = |u: u32| !hash_index(9, u as u64).is_multiple_of(3);
                let mut expect = src.clone();
                expect.retain(|&u| pred(u));
                let got = filter_indices(&policy, &src, pred);
                assert_eq!(got, expect, "n={n} policy={policy}");
            }
        }
    }

    #[test]
    fn range_form_matches_explicit_sequence() {
        for policy in ExecPolicy::all_test_policies() {
            let n = 50_000usize;
            let pred = |u: u32| u % 7 < 3;
            let explicit: Vec<u32> = (0..n as u32).collect();
            let a = filter_indices(&policy, &explicit, pred);
            let mut counts = Vec::new();
            let mut b = Vec::new();
            filter_range_in(&policy, n, pred, &mut counts, &mut b);
            assert_eq!(a, b, "{policy}");
        }
    }

    #[test]
    fn buffers_are_reused_without_stale_output() {
        let policy = ExecPolicy::host();
        let mut counts = Vec::new();
        let mut dst = Vec::new();
        let big: Vec<u32> = (0..10_000).collect();
        filter_indices_in(&policy, &big, |_| true, &mut counts, &mut dst);
        assert_eq!(dst.len(), big.len());
        // A later, smaller, sparser call through the same buffers.
        let small: Vec<u32> = (0..100).collect();
        filter_indices_in(&policy, &small, |u| u < 10, &mut counts, &mut dst);
        assert_eq!(dst, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn all_and_none() {
        let policy = ExecPolicy::device_sim();
        let src: Vec<u32> = (0..33_000).collect();
        assert_eq!(filter_indices(&policy, &src, |_| true), src);
        assert!(filter_indices(&policy, &src, |_| false).is_empty());
    }
}

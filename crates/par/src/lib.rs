#![warn(missing_docs)]
//! # mlcg-par — performance-portable parallel primitives
//!
//! This crate is the reproduction's substitute for the Kokkos programming
//! model used by the paper. It provides:
//!
//! - an [`ExecPolicy`] describing *where and how* a kernel runs: a serial
//!   backend, a `Host` backend (dynamic chunking, as on a multicore CPU),
//!   and a `DeviceSim` backend (flat fine-grained scheduling emulating a
//!   GPU's massively-threaded execution on CPU threads);
//! - parallel primitives over index ranges: [`parallel_for`],
//!   [`parallel_reduce`], [`scan::exclusive_scan`] and friends;
//! - parallel sorts ([`sort::par_radix_sort_pairs`], a bitonic sort used by
//!   the device-sim deduplication path) and a sort-based parallel random
//!   permutation ([`perm::random_permutation`]), mirroring the paper's
//!   `ParGenPerm`;
//! - deterministic, seedable RNG ([`rng::SplitMix64`], [`rng::Xoshiro256pp`]);
//! - safe atomic views over `&mut [u32]` / `&mut [u64]` slices
//!   ([`atomic::as_atomic_u32`]) so lock-free kernels such as the paper's
//!   Algorithm 4 can be written against plain buffers.
//!
//! All primitives take an explicit [`ExecPolicy`]; nothing consults global
//! mutable state except the lazily-created global worker pool, whose size can
//! be pinned with the `MLCG_THREADS` environment variable before first use.
//! The pool wakes workers through a spin-then-park broadcast path (workers
//! busy-poll an epoch word for a bounded window before parking on a
//! condvar), so sub-millisecond dispatches round-trip without syscalls when
//! the pool is hot; the window is tunable with `MLCG_SPIN_US` (`0` = always
//! park, the right setting for CI or oversubscribed machines). See
//! [`pool`] and DESIGN.md §2b.

pub mod atomic;
pub mod exec;
pub mod filter;
pub mod mem;
pub mod perm;
pub mod pool;
pub mod profile;
pub mod proplite;
pub mod reduce;
pub mod rng;
pub mod scan;
pub mod sort;
pub mod timer;
pub mod trace;

pub use exec::{Backend, ExecPolicy};
pub use pool::ThreadPool;
pub use profile::{DispatchRecord, WorkerLane};
pub use reduce::{
    parallel_count, parallel_reduce, parallel_reduce_max, parallel_reduce_min, parallel_reduce_sum,
};
pub use timer::Timer;
pub use trace::{TraceCollector, TraceConfig, TraceReport};

/// Workspace-wide allocation-tracking allocator — every binary linking this
/// crate gets heap telemetry (see [`mem`]). The untraced cost is a handful
/// of relaxed atomics per allocation, gated in `bench_primitives`.
#[global_allocator]
static GLOBAL_ALLOC: mem::TrackingAllocator = mem::TrackingAllocator;

use std::ops::Range;

/// Run `f(i)` for every `i in 0..n` under the given execution policy.
///
/// The closure must be safe to call concurrently for distinct indices.
/// Iteration order is unspecified for parallel backends.
///
/// ```
/// use mlcg_par::{parallel_for, ExecPolicy};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let total = AtomicU64::new(0);
/// parallel_for(&ExecPolicy::host(), 1000, |i| {
///     total.fetch_add(i as u64, Ordering::Relaxed);
/// });
/// assert_eq!(total.into_inner(), 999 * 1000 / 2);
/// ```
pub fn parallel_for<F>(policy: &ExecPolicy, n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    parallel_for_chunks(policy, n, |r| {
        for i in r {
            f(i);
        }
    });
}

/// Run `f(range)` over disjoint chunks covering `0..n` under the policy.
///
/// This is the building block for all other primitives: the policy decides
/// chunk granularity and scheduling (dynamic claiming for `Host`, fine
/// interleaved claiming for `DeviceSim`, a single chunk for `Serial`).
pub fn parallel_for_chunks<F>(policy: &ExecPolicy, n: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    parallel_for_chunks_op(policy, n, "par_for", f);
}

/// Shared implementation behind [`parallel_for_chunks`] and
/// [`parallel_reduce`]: `op` tags the dispatch for the profiler (e.g.
/// `par_for`, `par_reduce`), composed with any [`profile::kernel`] labels
/// the caller pushed. With no profiling session installed, the extra cost
/// over the pre-profiler code is a single relaxed load and branch.
pub(crate) fn parallel_for_chunks_op<F>(policy: &ExecPolicy, n: usize, op: &'static str, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if n == 0 {
        return;
    }
    let threads = policy.effective_threads(n);
    if threads <= 1 || pool::in_worker() {
        // Nested regions (inside a worker) fold into the parent dispatch's
        // busy time; top-level inline regions are recorded as one-lane
        // dispatches so small-corpus runs still report every kernel.
        if pool::in_worker() {
            f(0..n);
        } else {
            match profile::session() {
                None => f(0..n),
                Some(s) => s.run_inline(op, n, || f(0..n)),
            }
        }
        return;
    }
    let chunk = policy.chunk_size(n, threads);
    let body = |_wid: usize, claim: &dyn Fn(usize) -> usize| {
        // Each participant claims chunks until the range is exhausted.
        loop {
            let start = claim(chunk);
            if start >= n {
                break;
            }
            let end = (start + chunk).min(n);
            f(start..end);
        }
    };
    match profile::session() {
        None => pool::global().dispatch(threads, &body),
        Some(s) => s.run_dispatch(op, policy.backend.name(), n, chunk, threads, &body),
    }
}

/// Run `f(b)` for every block `b in 0..nblocks`, sizing the worker team by
/// `items` — the amount of *underlying* work — rather than by `nblocks`.
///
/// Blocked kernels (the two-phase scan, the radix-sort passes) decompose
/// `items` elements into a few dozen fixed blocks and want one team member
/// per block's worth of work; routing the block loop through
/// [`parallel_for`] would size the team by the tiny block *count* and run
/// the whole loop inline. Blocks are claimed one at a time for dynamic
/// balancing. Under the profiler this dispatch reports *blocks* as its work
/// units.
pub fn parallel_for_blocks<F>(policy: &ExecPolicy, items: usize, nblocks: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if nblocks == 0 {
        return;
    }
    let threads = policy.effective_threads(items).min(nblocks);
    if threads <= 1 || pool::in_worker() {
        let run = || {
            for b in 0..nblocks {
                f(b);
            }
        };
        if pool::in_worker() {
            run();
        } else {
            match profile::session() {
                None => run(),
                Some(s) => s.run_inline("par_blocks", nblocks, run),
            }
        }
        return;
    }
    let body = |_wid: usize, claim: &dyn Fn(usize) -> usize| loop {
        let b = claim(1);
        if b >= nblocks {
            break;
        }
        f(b);
    };
    match profile::session() {
        None => pool::global().dispatch(threads, &body),
        Some(s) => s.run_dispatch(
            "par_blocks",
            policy.backend.name(),
            nblocks,
            1,
            threads,
            &body,
        ),
    }
}

/// Fold disjoint chunks of `0..n` into **per-participant** accumulators
/// and return them for the caller to merge.
///
/// This is the contention-free counterpart of atomic histogramming: each
/// team member creates one accumulator with `init` (typically a dense
/// count array) and folds every chunk it claims into it, so the hot loop
/// touches only thread-private memory. The caller merges the returned
/// accumulators — usually with a [`parallel_for`] over the histogram
/// domain. Unlike [`parallel_reduce`], which materializes one partial per
/// *chunk*, this creates one accumulator per *participant* — the right
/// shape when the accumulator itself is large (an `n_coarse`-sized count
/// array must not be reallocated per chunk).
///
/// `init` runs on the participant's own thread (so allocations land
/// there) and may be called for a participant that ends up claiming no
/// chunks; such untouched accumulators are still returned. The fold order
/// of chunks within an accumulator and the order of accumulators in the
/// result are unspecified — merges must be commutative for deterministic
/// output (integer sums are).
///
/// Under the profiler the dispatch is tagged `par_for`, composing with
/// any [`profile::kernel`] labels the caller pushed.
///
/// ```
/// use mlcg_par::{parallel_fold_chunks, ExecPolicy};
///
/// // Histogram of i % 5 without atomics.
/// let parts = parallel_fold_chunks(
///     &ExecPolicy::host(),
///     10_000,
///     || vec![0u32; 5],
///     |h, r| {
///         for i in r {
///             h[i % 5] += 1;
///         }
///     },
/// );
/// let mut total = vec![0u32; 5];
/// for p in parts {
///     for (t, v) in total.iter_mut().zip(p) {
///         *t += v;
///     }
/// }
/// assert_eq!(total, vec![2000; 5]);
/// ```
pub fn parallel_fold_chunks<S, I, F>(policy: &ExecPolicy, n: usize, init: I, fold: F) -> Vec<S>
where
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, Range<usize>) + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = policy.effective_threads(n);
    if threads <= 1 || pool::in_worker() {
        let run = || {
            let mut s = init();
            fold(&mut s, 0..n);
            s
        };
        let s = if pool::in_worker() {
            run()
        } else {
            match profile::session() {
                None => run(),
                Some(sess) => sess.run_inline("par_for", n, run),
            }
        };
        return vec![s];
    }
    let chunk = policy.chunk_size(n, threads);
    let out = std::sync::Mutex::new(Vec::with_capacity(threads));
    let body = |_wid: usize, claim: &dyn Fn(usize) -> usize| {
        let mut s = init();
        loop {
            let start = claim(chunk);
            if start >= n {
                break;
            }
            let end = (start + chunk).min(n);
            fold(&mut s, start..end);
        }
        out.lock().unwrap().push(s);
    };
    match profile::session() {
        None => pool::global().dispatch(threads, &body),
        Some(s) => s.run_dispatch("par_for", policy.backend.name(), n, chunk, threads, &body),
    }
    out.into_inner().unwrap()
}

/// Run `f(i)` for every `i in 0..k` where each index is a *large*
/// independent task, sizing the worker team by `items` — the amount of
/// underlying work — rather than by the tiny task count.
///
/// The stitch/merge passes of sharded kernels iterate over a handful of
/// per-worker partial results that each cover many elements; routing them
/// through [`parallel_for`] would size the team by `k` and run the whole
/// loop inline. Indices are claimed one at a time for dynamic balancing.
/// Under the profiler the dispatch is tagged `par_for` (it is the same
/// index-space shape, just weighted), composing with any
/// [`profile::kernel`] labels.
pub fn parallel_for_weighted<F>(policy: &ExecPolicy, items: usize, k: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if k == 0 {
        return;
    }
    let threads = policy.effective_threads(items).min(k);
    if threads <= 1 || pool::in_worker() {
        let run = || {
            for i in 0..k {
                f(i);
            }
        };
        if pool::in_worker() {
            run();
        } else {
            match profile::session() {
                None => run(),
                Some(s) => s.run_inline("par_for", k, run),
            }
        }
        return;
    }
    let body = |_wid: usize, claim: &dyn Fn(usize) -> usize| loop {
        let i = claim(1);
        if i >= k {
            break;
        }
        f(i);
    };
    match profile::session() {
        None => pool::global().dispatch(threads, &body),
        Some(s) => s.run_dispatch("par_for", policy.backend.name(), k, 1, threads, &body),
    }
}

/// Fill `dst` with copies of `value` in parallel.
pub fn parallel_fill<T: Copy + Send + Sync>(policy: &ExecPolicy, dst: &mut [T], value: T) {
    let base = dst.as_mut_ptr() as usize;
    let n = dst.len();
    parallel_for_chunks(policy, n, move |r| {
        // SAFETY: chunks are disjoint, so each element is written by exactly
        // one participant; `base` outlives the call because `dst` is borrowed
        // mutably for the duration.
        unsafe {
            let p = (base as *mut T).add(r.start);
            for i in 0..r.len() {
                p.add(i).write(value);
            }
        }
    });
}

/// Copy `src` into `dst` in parallel. Panics if lengths differ.
pub fn parallel_copy<T: Copy + Send + Sync>(policy: &ExecPolicy, dst: &mut [T], src: &[T]) {
    assert_eq!(dst.len(), src.len(), "parallel_copy: length mismatch");
    let base = dst.as_mut_ptr() as usize;
    parallel_for_chunks(policy, src.len(), move |r| {
        // SAFETY: disjoint chunks; see `parallel_fill`.
        unsafe {
            let p = (base as *mut T).add(r.start);
            for (i, v) in src[r.clone()].iter().enumerate() {
                p.add(i).write(*v);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_visits_every_index_once() {
        for policy in ExecPolicy::all_test_policies() {
            let n = 10_007;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            parallel_for(&policy, n, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "policy {policy:?} missed or duplicated an index"
            );
        }
    }

    #[test]
    fn for_zero_len_is_noop() {
        for policy in ExecPolicy::all_test_policies() {
            parallel_for(&policy, 0, |_| panic!("must not be called"));
        }
    }

    #[test]
    fn chunks_cover_range_disjointly() {
        for policy in ExecPolicy::all_test_policies() {
            let n = 65_537;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            parallel_for_chunks(&policy, n, |r| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn fill_and_copy() {
        for policy in ExecPolicy::all_test_policies() {
            let mut v = vec![0u32; 12_345];
            parallel_fill(&policy, &mut v, 7);
            assert!(v.iter().all(|&x| x == 7));
            let src: Vec<u32> = (0..12_345).collect();
            parallel_copy(&policy, &mut v, &src);
            assert_eq!(v, src);
        }
    }

    #[test]
    fn fold_chunks_histograms_exactly() {
        for policy in ExecPolicy::all_test_policies() {
            let n = 40_123;
            let parts = parallel_fold_chunks(
                &policy,
                n,
                || vec![0u64; 7],
                |h, r| {
                    for i in r {
                        h[i % 7] += 1;
                    }
                },
            );
            let mut total = vec![0u64; 7];
            for p in &parts {
                for (t, v) in total.iter_mut().zip(p) {
                    *t += v;
                }
            }
            let expect: Vec<u64> = (0..7).map(|k| ((n - k - 1) / 7 + 1) as u64).collect();
            assert_eq!(total, expect, "policy {policy:?}");
        }
    }

    #[test]
    fn fold_chunks_zero_len_returns_nothing() {
        for policy in ExecPolicy::all_test_policies() {
            let parts =
                parallel_fold_chunks(&policy, 0, || 0u32, |_, _| panic!("must not be called"));
            assert!(parts.is_empty());
        }
    }

    #[test]
    fn fold_chunks_nested_runs_inline() {
        let policy = ExecPolicy::host();
        let total = AtomicUsize::new(0);
        parallel_for(&policy, 16, |_| {
            let parts = parallel_fold_chunks(&policy, 100, || 0usize, |s, r| *s += r.len());
            assert_eq!(parts.iter().sum::<usize>(), 100);
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn for_weighted_visits_every_index_once() {
        for policy in ExecPolicy::all_test_policies() {
            let k = 13;
            let hits: Vec<AtomicUsize> = (0..k).map(|_| AtomicUsize::new(0)).collect();
            // items large enough to engage a real team under every policy.
            parallel_for_weighted(&policy, 1 << 16, k, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn nested_parallel_for_runs_inline() {
        let policy = ExecPolicy::host();
        let total = AtomicUsize::new(0);
        parallel_for(&policy, 64, |_| {
            // A nested call from within a worker must not deadlock.
            parallel_for(&policy, 8, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 64 * 8);
    }
}

//! A small persistent worker pool with a low-latency broadcast wakeup path.
//!
//! Job delivery is a shared broadcast *slot* plus an epoch word: the
//! dispatcher publishes one `(Job, epoch)` pair for the whole team instead
//! of pushing per-worker channel messages, and workers run a
//! **spin-then-park** loop on the epoch word — a bounded busy-poll window
//! (`MLCG_SPIN_US`, see [`spin_us`]) before falling back to a Condvar park.
//! A dispatch that lands while workers are still spinning is picked up
//! without any lock or syscall on either side, and completion is an atomic
//! countdown the dispatcher spin-then-blocks on — so a sub-millisecond
//! dispatch round-trips entirely in user space when the pool is hot. See
//! DESIGN.md §2b for the slot handshake, the epoch rules, and the
//! memory-ordering argument.
//!
//! Participants pull work by claiming chunk start offsets from a shared
//! atomic counter. Submitting threads serialize on the slot: concurrent
//! [`ThreadPool::dispatch`] calls from different threads run one after the
//! other (each still executes on all its participants). While a dispatch
//! runs, *every* participant — including the dispatching thread — counts as
//! [`in_worker`], so nested parallel primitives execute inline; this
//! mirrors Kokkos, where a kernel body cannot launch another global kernel.
//! Calling `dispatch` itself from inside a job body is not supported (the
//! submitter lock is held for the duration of the dispatch).

use crate::profile::{DispatchObs, LaneTally};
use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Spin window
// ---------------------------------------------------------------------------

/// Sentinel for "not yet resolved from the environment".
const SPIN_UNSET: u64 = u64::MAX;

/// Default spin window (microseconds) on machines with ≥ 2 hardware
/// threads. Single-core machines default to 0 (always park): a spinning
/// waiter there only steals the one hardware thread from the participant
/// that has the work.
pub const DEFAULT_SPIN_US: u64 = 50;

static SPIN_US: AtomicU64 = AtomicU64::new(SPIN_UNSET);

/// The current spin window in microseconds: how long a worker busy-polls
/// the epoch word for the next job (and the dispatcher busy-polls the
/// completion countdown) before parking on a Condvar.
///
/// Resolved on first use from `MLCG_SPIN_US` (`0` = always park — the
/// right setting for CI and oversubscribed machines), defaulting to
/// [`DEFAULT_SPIN_US`] on multicore hosts and `0` on single-core ones.
pub fn spin_us() -> u64 {
    let v = SPIN_US.load(Ordering::Relaxed);
    if v != SPIN_UNSET {
        return v;
    }
    let parsed = match std::env::var("MLCG_SPIN_US") {
        Ok(s) => match s.parse::<u64>() {
            Ok(us) => Some(us.min(SPIN_UNSET - 1)),
            Err(_) => {
                eprintln!(
                    "mlcg: ignoring invalid MLCG_SPIN_US={s:?} \
                     (expected a microsecond count); using the default spin window"
                );
                None
            }
        },
        Err(std::env::VarError::NotPresent) => None,
        Err(std::env::VarError::NotUnicode(_)) => {
            eprintln!("mlcg: ignoring non-unicode MLCG_SPIN_US; using the default spin window");
            None
        }
    };
    let us = parsed.unwrap_or_else(|| {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores >= 2 {
            DEFAULT_SPIN_US
        } else {
            0
        }
    });
    // First resolver wins; racing threads converge on the stored value.
    match SPIN_US.compare_exchange(SPIN_UNSET, us, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => us,
        Err(current) => current,
    }
}

/// Override the spin window at runtime (microseconds; `0` = always park).
///
/// The knob is process-global and read freshly on every wait, so it takes
/// effect for subsequent dispatches on every pool. Intended for benches and
/// tests that compare the spin and pure-park paths in one process;
/// production runs should set `MLCG_SPIN_US` instead.
pub fn set_spin_us(us: u64) {
    SPIN_US.store(us.min(SPIN_UNSET - 1), Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Epoch word
// ---------------------------------------------------------------------------

/// Low bits of the epoch word carry the published job's participant count.
const THREADS_BITS: u32 = 16;
const THREADS_MASK: u64 = (1 << THREADS_BITS) - 1;
/// The pre-first-publish word every worker starts from (sequence 0).
const INIT_WORD: u64 = 0;

/// Pack a publish sequence number and a participant count into one word.
/// The sequence strictly increases from 1, so any word change is a new job
/// (48 bits of sequence outlive any realistic run).
fn pack(seq: u64, threads: usize) -> u64 {
    (seq << THREADS_BITS) | threads as u64
}

fn unpack_threads(word: u64) -> usize {
    (word & THREADS_MASK) as usize
}

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True when called from inside a pool participant executing a job — worker
/// threads always, and the dispatching thread while it runs its own share.
pub fn in_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

/// The work item given to each participant: `run(worker_id, claim)` where
/// `claim(chunk)` atomically grabs the next chunk start offset.
pub type JobFn<'a> = dyn Fn(usize, &dyn Fn(usize) -> usize) + Sync + 'a;

struct Job {
    // Type-erased pointer to the caller's `&JobFn`; valid until the
    // dispatcher's completion wait returns, which is before the borrow ends.
    func: *const JobFn<'static>,
    next: AtomicUsize,
    // Per-participant profiling slots, present while a `profile` session is
    // installed; `None` keeps the unprofiled path at one branch.
    obs: Option<Arc<DispatchObs>>,
    // First panic payload from any participant; resumed on the dispatching
    // thread after the job completes, so a panicking closure cannot kill a
    // worker thread and poison later dispatches.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    /// When the dispatcher made the job visible; the profiler measures each
    /// worker's wakeup latency (publish → first claim) against this.
    published: Instant,
    /// Pool workers (the caller excluded) still running the job body. The
    /// dispatcher spin-then-blocks on this reaching zero — the atomic
    /// replacement for the old Mutex+Condvar `WaitGroup`.
    remaining: AtomicUsize,
    /// True once the dispatcher gave up spinning and parked on `done_cv`;
    /// lets the last worker skip the lock+notify when the dispatcher is hot.
    waiter: AtomicBool,
    done_m: Mutex<()>,
    done_cv: Condvar,
}
// SAFETY: `func` points at a `Sync` closure and is only dereferenced while
// the submitting stack frame (which owns the closure) is blocked in the
// dispatch; all other fields are Sync.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    fn new(func: *const JobFn<'static>, obs: Option<Arc<DispatchObs>>, workers: usize) -> Job {
        Job {
            func,
            next: AtomicUsize::new(0),
            obs,
            panic: Mutex::new(None),
            published: Instant::now(),
            remaining: AtomicUsize::new(workers),
            waiter: AtomicBool::new(false),
            done_m: Mutex::new(()),
            done_cv: Condvar::new(),
        }
    }

    /// Worker-side completion: decrement the countdown and, only when this
    /// was the last worker *and* the dispatcher actually parked, take the
    /// lock and wake it. SeqCst on the countdown and the `waiter` flag makes
    /// the store-load pairs race-free; see DESIGN.md §2b.
    fn finish_worker(&self) {
        if self.remaining.fetch_sub(1, Ordering::SeqCst) == 1 && self.waiter.load(Ordering::SeqCst)
        {
            let _g = self.done_m.lock().unwrap_or_else(|e| e.into_inner());
            self.done_cv.notify_one();
        }
    }

    /// Dispatcher-side completion wait: spin for the configured window, then
    /// park on `done_cv` until the countdown reaches zero.
    fn wait_workers(&self) {
        if self.remaining.load(Ordering::Acquire) == 0 {
            return;
        }
        let spin = spin_us();
        if spin > 0 {
            let window = Duration::from_micros(spin);
            let start = Instant::now();
            let mut polls = 0u32;
            loop {
                backoff(&mut polls);
                if self.remaining.load(Ordering::Acquire) == 0 {
                    return;
                }
                if start.elapsed() >= window {
                    break;
                }
            }
        }
        let mut g = self.done_m.lock().unwrap_or_else(|e| e.into_inner());
        self.waiter.store(true, Ordering::SeqCst);
        while self.remaining.load(Ordering::SeqCst) > 0 {
            g = self.done_cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// How many tight polls a spinner issues before each further poll yields the
/// CPU instead. On an idle multicore the tight phase is where the fast path
/// lands (sub-µs publish→observe); past it, `yield_now` keeps a bounded
/// window from burning a core some other runnable thread — possibly the one
/// with the work — needs (the crossbeam/Kokkos backoff idiom). Without the
/// yields, an oversubscribed 4-participant team serializes at
/// participants × window per dispatch.
const TIGHT_POLLS: u32 = 64;

fn backoff(polls: &mut u32) {
    if *polls < TIGHT_POLLS {
        *polls += 1;
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// State shared between the dispatcher and the worker threads.
struct Shared {
    /// `(seq << 16) | threads`: the epoch word. `seq` increments on every
    /// publish; `threads` is the published job's participant count (workers
    /// with `wid < threads` take part). The publisher stores the slot
    /// first, then this word, so any observer of a new word sees the job.
    word: AtomicU64,
    /// The published job. Written only by the (serialized) dispatcher while
    /// no worker can read it — before bumping `word`, and again after the
    /// job's countdown reached zero; read only by targeted workers between
    /// those two points.
    slot: UnsafeCell<Option<Arc<Job>>>,
    /// Workers currently parked on `sleep_cv` (modified under `sleep_m`);
    /// lets a publish skip the lock+notify entirely when every worker is
    /// still inside its spin window.
    sleepers: AtomicUsize,
    sleep_m: Mutex<()>,
    sleep_cv: Condvar,
    /// Set by `ThreadPool::drop`; workers exit their wait loop.
    shutdown: AtomicBool,
}

// SAFETY: `slot` accesses follow the epoch handshake documented on the
// field — writes are exclusive to the serialized dispatcher at points where
// no worker holds a reference; reads happen only between a publish and the
// matching countdown decrement. Every other field is Sync already.
unsafe impl Send for Shared {}
unsafe impl Sync for Shared {}

impl Shared {
    /// Block until the epoch word differs from `last` (a new job) — bounded
    /// spin first, Condvar park after. Returns `None` on shutdown.
    fn wait_for_publish(&self, last: u64) -> Option<u64> {
        // Spin phase: poll the word for the configured window (tight polls
        // first, yielding polls after; see `backoff`).
        let spin = spin_us();
        if spin > 0 {
            let window = Duration::from_micros(spin);
            let start = Instant::now();
            let mut polls = 0u32;
            loop {
                let word = self.word.load(Ordering::Acquire);
                if word != last {
                    return Some(word);
                }
                if self.shutdown.load(Ordering::Acquire) {
                    return None;
                }
                if start.elapsed() >= window {
                    break;
                }
                backoff(&mut polls);
            }
        }
        // Park phase. The sleeper count is bumped under the lock *before*
        // re-checking the word; paired with the publisher's word-store →
        // sleeper-load order this cannot miss a wakeup (DESIGN.md §2b).
        let mut g = self.sleep_m.lock().unwrap_or_else(|e| e.into_inner());
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let out = loop {
            let word = self.word.load(Ordering::SeqCst);
            if word != last {
                break Some(word);
            }
            if self.shutdown.load(Ordering::SeqCst) {
                break None;
            }
            g = self.sleep_cv.wait(g).unwrap_or_else(|e| e.into_inner());
        };
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
        out
    }
}

fn worker_loop(shared: &Shared, wid: usize) {
    IN_WORKER.with(|w| w.set(true));
    let mut last = INIT_WORD;
    loop {
        let mut word = shared.word.load(Ordering::Acquire);
        if word == last {
            match shared.wait_for_publish(last) {
                Some(w) => word = w,
                None => return,
            }
        }
        last = word;
        if wid < unpack_threads(word) {
            // SAFETY: a targeted worker reads the slot only between the
            // publish that set `word` and its own countdown decrement in
            // `finish_worker`; the dispatcher neither clears nor reuses the
            // slot inside that window.
            let job = unsafe { (*shared.slot.get()).clone() }
                .expect("publish protocol violated: epoch advanced with an empty job slot");
            run_job(&job, wid);
            job.finish_worker();
        }
    }
}

/// A persistent pool of worker threads executing broadcast jobs.
pub struct ThreadPool {
    shared: Arc<Shared>,
    /// Serializes submitters on the broadcast slot; holds the publish
    /// sequence counter.
    submit: Mutex<u64>,
    /// Total participants (worker threads + the calling thread).
    workers: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn a pool with `workers` total participants (including callers of
    /// [`ThreadPool::dispatch`]); `workers - 1` OS threads are created.
    pub fn new(workers: usize) -> Self {
        let workers = workers.clamp(1, THREADS_MASK as usize);
        let shared = Arc::new(Shared {
            word: AtomicU64::new(INIT_WORD),
            slot: UnsafeCell::new(None),
            sleepers: AtomicUsize::new(0),
            sleep_m: Mutex::new(()),
            sleep_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let mut handles = Vec::with_capacity(workers - 1);
        for wid in 1..workers {
            let sh = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("mlcg-worker-{wid}"))
                    .spawn(move || worker_loop(&sh, wid))
                    .expect("failed to spawn pool worker"),
            );
        }
        ThreadPool {
            shared,
            submit: Mutex::new(0),
            workers,
            handles,
        }
    }

    /// Total participant count (worker threads + the calling thread).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `f(worker_id, claim)` on `threads` participants and wait for all
    /// of them. `claim(chunk)` returns monotonically increasing chunk start
    /// offsets; participants stop when the returned offset passes their
    /// range bound.
    ///
    /// A panic inside `f` is caught on the participant that raised it (so
    /// the worker thread and the pool stay usable) and resumed here, on the
    /// dispatching thread, once every participant has finished.
    pub fn dispatch(&self, threads: usize, f: &JobFn<'_>) {
        self.dispatch_observed(threads, f, None);
    }

    /// [`ThreadPool::dispatch`] with optional per-participant profiling
    /// observation (installed by `profile::SessionInner::run_dispatch`).
    pub(crate) fn dispatch_observed(
        &self,
        threads: usize,
        f: &JobFn<'_>,
        obs: Option<Arc<DispatchObs>>,
    ) {
        let threads = threads.clamp(1, self.workers);
        // SAFETY: we erase the closure's lifetime; the completion wait below
        // blocks until every worker has finished calling the closure, so the
        // borrow outlives all uses.
        let func: *const JobFn<'static> = unsafe {
            std::mem::transmute::<*const JobFn<'_>, *const JobFn<'static>>(f as *const _)
        };
        let payload = if threads == 1 {
            // Degenerate team: run on the caller without touching the slot
            // (and without waking non-participants).
            let job = Job::new(func, obs, 0);
            run_caller(&job);
            let mut slot = job.panic.lock().unwrap_or_else(|e| e.into_inner());
            slot.take()
        } else {
            let mut seq = self.submit.lock().unwrap_or_else(|e| e.into_inner());
            *seq += 1;
            let job = Arc::new(Job::new(func, obs, threads - 1));
            // Publish: slot first, then the epoch word. Spinning workers
            // see the word change; parked workers need the Condvar
            // broadcast, skipped entirely when nobody is parked.
            unsafe { *self.shared.slot.get() = Some(Arc::clone(&job)) };
            self.shared
                .word
                .store(pack(*seq, threads), Ordering::SeqCst);
            if self.shared.sleepers.load(Ordering::SeqCst) > 0 {
                let _g = self
                    .shared
                    .sleep_m
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                self.shared.sleep_cv.notify_all();
            }
            run_caller(&job);
            job.wait_workers();
            // Every targeted worker has decremented the countdown, so none
            // can still touch the slot: reclaim the Arc before the next
            // submitter publishes.
            unsafe { *self.shared.slot.get() = None };
            let payload = job.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
            drop(seq);
            payload
        };
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // `&mut self` proves no dispatch is in flight: workers are spinning
        // or parked. Flag shutdown, wake the parked ones, join everyone.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _g = self
                .shared
                .sleep_m
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            self.shared.sleep_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Run the job as participant 0 on the dispatching thread, marked
/// `in_worker` for the duration so nested parallel primitives execute
/// inline on every lane uniformly.
fn run_caller(job: &Job) {
    let prev = IN_WORKER.with(|w| w.replace(true));
    run_job(job, 0);
    IN_WORKER.with(|w| w.set(prev));
}

fn run_job(job: &Job, wid: usize) {
    // SAFETY: see `Job::func`.
    let f = unsafe { &*job.func };
    // AssertUnwindSafe: on panic the payload is resumed on the dispatching
    // thread, which observes the same torn shared state an unwind through
    // `dispatch` would have exposed before panics were contained.
    let result = match &job.obs {
        None => {
            let claim = |chunk: usize| job.next.fetch_add(chunk.max(1), Ordering::Relaxed);
            catch_unwind(AssertUnwindSafe(|| f(wid, &claim)))
        }
        Some(obs) => {
            let started = Instant::now();
            let tally = LaneTally::new();
            let n = obs.n();
            let claim = |chunk: usize| {
                let start = job.next.fetch_add(chunk.max(1), Ordering::Relaxed);
                tally.on_claim(start, chunk.max(1), n);
                start
            };
            let result = catch_unwind(AssertUnwindSafe(|| f(wid, &claim)));
            obs.commit(wid, started, job.published, tally);
            result
        }
    };
    if let Err(payload) = result {
        let mut slot = job.panic.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(payload);
        }
        drop(slot);
        // Park the claimer far past any real range bound so sibling
        // participants drain their claim loops quickly. (Halfway up the
        // usize range: subsequent fetch_adds stay astronomically large
        // instead of wrapping.)
        job.next.store(usize::MAX / 2, Ordering::Relaxed);
    }
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
static CONFIGURED: OnceLock<usize> = OnceLock::new();

/// The participant count the global pool has (or will have): `MLCG_THREADS`
/// if set, otherwise `max(available_parallelism, 4)` — the floor keeps the
/// device-sim policy meaningfully multithreaded even on single-core CI
/// machines, where extra workers are merely time-sliced.
///
/// Reading this does **not** instantiate the pool: policy constructors
/// (`ExecPolicy::host()` and friends) size their teams from it, so building
/// a policy for a region that then runs serially never spawns a thread.
pub fn configured_workers() -> usize {
    *CONFIGURED.get_or_init(|| {
        // A set-but-invalid MLCG_THREADS used to fall back silently; warn
        // once (this init runs once) so a typo'd `MLCG_THREADS=abc` is not
        // mistaken for a pinned pool size. The effective count is also
        // surfaced as a `pool/workers` gauge when a profiling session is
        // installed.
        let pinned = match std::env::var("MLCG_THREADS") {
            Ok(s) => match s.parse::<usize>() {
                Ok(n) if n > 0 => Some(n),
                _ => {
                    eprintln!(
                        "mlcg: ignoring invalid MLCG_THREADS={s:?} \
                         (expected a positive integer); using the default pool size"
                    );
                    None
                }
            },
            Err(std::env::VarError::NotPresent) => None,
            Err(std::env::VarError::NotUnicode(_)) => {
                eprintln!("mlcg: ignoring non-unicode MLCG_THREADS; using the default pool size");
                None
            }
        };
        pinned.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(4)
        })
    })
}

/// The lazily-created global pool, sized by [`configured_workers`].
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| ThreadPool::new(configured_workers()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn dispatch_runs_all_participants() {
        let pool = ThreadPool::new(4);
        let ran = AtomicUsize::new(0);
        pool.dispatch(4, &|_wid, _claim| {
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn claim_is_monotone_and_covers() {
        let pool = ThreadPool::new(4);
        let n = 100_000usize;
        let seen = AtomicUsize::new(0);
        pool.dispatch(4, &|_wid, claim| loop {
            let s = claim(64);
            if s >= n {
                break;
            }
            let e = (s + 64).min(n);
            seen.fetch_add(e - s, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), n);
    }

    #[test]
    fn sequential_dispatches_reuse_workers() {
        let pool = ThreadPool::new(3);
        for round in 0..50 {
            let count = AtomicUsize::new(0);
            pool.dispatch(3, &|_w, _c| {
                count.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(count.load(Ordering::SeqCst), 3, "round {round}");
        }
    }

    #[test]
    fn narrow_teams_skip_untargeted_workers() {
        // threads < pool size: exactly `threads` participants run, and
        // untargeted workers skipping an epoch must not desync later
        // full-width dispatches.
        let pool = ThreadPool::new(4);
        for round in 0..20 {
            for threads in [2usize, 3, 1, 4] {
                let count = AtomicUsize::new(0);
                pool.dispatch(threads, &|_w, _c| {
                    count.fetch_add(1, Ordering::SeqCst);
                });
                assert_eq!(
                    count.load(Ordering::SeqCst),
                    threads,
                    "round {round} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn single_thread_dispatch_runs_on_caller() {
        let pool = ThreadPool::new(4);
        let ran = AtomicUsize::new(0);
        let caller = std::thread::current().id();
        pool.dispatch(1, &|wid, _c| {
            assert_eq!(wid, 0);
            assert_eq!(std::thread::current().id(), caller);
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn caller_counts_as_in_worker_during_dispatch() {
        let pool = ThreadPool::new(2);
        assert!(!in_worker());
        let saw = AtomicUsize::new(0);
        pool.dispatch(2, &|_w, _c| {
            if in_worker() {
                saw.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(saw.load(Ordering::SeqCst), 2, "both lanes are in_worker");
        assert!(!in_worker(), "flag restored after dispatch");
    }

    #[test]
    fn concurrent_dispatch_from_many_threads() {
        let pool = std::sync::Arc::new(ThreadPool::new(4));
        let total = std::sync::Arc::new(AtomicUsize::new(0));
        let mut handles = vec![];
        for _ in 0..8 {
            let pool = std::sync::Arc::clone(&pool);
            let total = std::sync::Arc::clone(&total);
            handles.push(std::thread::spawn(move || {
                for _ in 0..20 {
                    pool.dispatch(4, &|_w, _c| {
                        total.fetch_add(1, Ordering::Relaxed);
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 8 * 20 * 4);
    }

    #[test]
    fn global_pool_has_at_least_four_workers() {
        assert!(global().workers() >= 1);
        assert_eq!(global().workers(), configured_workers());
    }

    #[test]
    fn epoch_word_packs_seq_and_threads() {
        let w = pack(7, 4);
        assert_eq!(unpack_threads(w), 4);
        assert_ne!(pack(7, 4), pack(8, 4));
        assert_ne!(pack(7, 4), pack(7, 3));
        assert_ne!(pack(1, 0), INIT_WORD);
    }

    #[test]
    fn dropping_a_pool_joins_its_workers() {
        // Parked and freshly-spun workers must both observe shutdown; a
        // hang here is the regression.
        for _ in 0..5 {
            let pool = ThreadPool::new(4);
            let ran = AtomicUsize::new(0);
            pool.dispatch(4, &|_w, _c| {
                ran.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(ran.load(Ordering::SeqCst), 4);
            drop(pool);
        }
        // And a pool never dispatched on.
        drop(ThreadPool::new(3));
    }

    #[test]
    fn panicking_job_does_not_poison_the_pool() {
        let pool = ThreadPool::new(4);
        let n = 10_000usize;
        // The panic must surface on the dispatching thread with its payload.
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.dispatch(4, &|_wid, claim| loop {
                let s = claim(64);
                if s >= n {
                    break;
                }
                if s >= n / 2 {
                    panic!("boom at {s}");
                }
            });
        }))
        .expect_err("dispatch must propagate the worker panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "?".into());
        assert!(msg.starts_with("boom at"), "payload lost: {msg}");
        // Every subsequent dispatch must still run on all participants —
        // the worker that panicked used to die, making the next dispatch
        // die on `send(...)` with no hint of the original panic.
        for round in 0..20 {
            let count = AtomicUsize::new(0);
            pool.dispatch(4, &|_w, _c| {
                count.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(count.load(Ordering::SeqCst), 4, "round {round}");
        }
    }
}

//! A small persistent worker pool.
//!
//! The pool broadcasts one job to `k-1` workers; the calling thread is the
//! `k`-th participant. Jobs pull work by claiming chunk start offsets from a
//! shared atomic counter, so completion is detected per-job with a
//! [`WaitGroup`] — concurrent submissions from different threads simply
//! interleave in each worker's queue.
//!
//! Nested parallelism from inside a worker is executed inline by the caller
//! (see [`in_worker`]); this mirrors Kokkos, where a kernel body cannot
//! launch another global kernel.

use crate::profile::{DispatchObs, LaneTally};
use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// A dependency-free waitgroup: every clone registers a participant, every
/// drop deregisters one, and [`WaitGroup::wait`] blocks until all *other*
/// clones are dropped (the crossbeam `WaitGroup` contract the pool was
/// originally written against).
struct WgInner {
    count: Mutex<usize>,
    done: Condvar,
}

pub(crate) struct WaitGroup(Arc<WgInner>);

impl WaitGroup {
    pub(crate) fn new() -> Self {
        WaitGroup(Arc::new(WgInner {
            count: Mutex::new(1),
            done: Condvar::new(),
        }))
    }

    /// Drop this handle and block until every other clone is dropped.
    pub(crate) fn wait(self) {
        let inner = Arc::clone(&self.0);
        drop(self); // deregister ourselves first
        let mut count = inner.count.lock().unwrap();
        while *count > 0 {
            count = inner.done.wait(count).unwrap();
        }
    }
}

impl Clone for WaitGroup {
    fn clone(&self) -> Self {
        *self.0.count.lock().unwrap() += 1;
        WaitGroup(Arc::clone(&self.0))
    }
}

impl Drop for WaitGroup {
    fn drop(&mut self) {
        let mut count = self.0.count.lock().unwrap();
        *count -= 1;
        if *count == 0 {
            self.0.done.notify_all();
        }
    }
}

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True when called from inside a pool worker executing a job.
pub fn in_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

/// The work item given to each participant: `run(worker_id, claim)` where
/// `claim(chunk)` atomically grabs the next chunk start offset.
pub type JobFn<'a> = dyn Fn(usize, &dyn Fn(usize) -> usize) + Sync + 'a;

struct Job {
    // Type-erased pointer to the caller's `&JobFn`; valid until the caller's
    // WaitGroup::wait() returns, which is before the borrow ends.
    func: *const JobFn<'static>,
    next: AtomicUsize,
    // Per-participant profiling slots, present while a `profile` session is
    // installed; `None` keeps the unprofiled path at one branch.
    obs: Option<Arc<DispatchObs>>,
    // First panic payload from any participant; resumed on the dispatching
    // thread after the job completes, so a panicking closure cannot kill a
    // worker thread and poison later dispatches.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}
// SAFETY: `func` points at a `Sync` closure and is only dereferenced while
// the submitting stack frame (which owns the closure) is blocked in `wait()`.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

struct Msg {
    job: Arc<Job>,
    // Held only so its drop signals job completion to the submitter.
    _wg: WaitGroup,
}

/// A persistent pool of worker threads executing broadcast jobs.
pub struct ThreadPool {
    senders: Vec<Sender<Msg>>,
}

impl ThreadPool {
    /// Spawn a pool with `workers` total participants (including callers of
    /// [`ThreadPool::dispatch`]); `workers - 1` OS threads are created.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let mut senders = Vec::with_capacity(workers - 1);
        for wid in 1..workers {
            let (tx, rx) = channel::<Msg>();
            senders.push(tx);
            std::thread::Builder::new()
                .name(format!("mlcg-worker-{wid}"))
                .spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    while let Ok(msg) = rx.recv() {
                        run_job(&msg.job, wid);
                        drop(msg); // drops the WaitGroup clone, signalling done
                    }
                })
                .expect("failed to spawn pool worker");
        }
        ThreadPool { senders }
    }

    /// Total participant count (worker threads + the calling thread).
    pub fn workers(&self) -> usize {
        self.senders.len() + 1
    }

    /// Run `f(worker_id, claim)` on `threads` participants and wait for all
    /// of them. `claim(chunk)` returns monotonically increasing chunk start
    /// offsets; participants stop when the returned offset passes their
    /// range bound.
    ///
    /// A panic inside `f` is caught on the participant that raised it (so
    /// the worker thread and the pool stay usable) and resumed here, on the
    /// dispatching thread, once every participant has finished.
    pub fn dispatch(&self, threads: usize, f: &JobFn<'_>) {
        self.dispatch_observed(threads, f, None);
    }

    /// [`ThreadPool::dispatch`] with optional per-participant profiling
    /// observation (installed by `profile::SessionInner::run_dispatch`).
    pub(crate) fn dispatch_observed(
        &self,
        threads: usize,
        f: &JobFn<'_>,
        obs: Option<Arc<DispatchObs>>,
    ) {
        let threads = threads.clamp(1, self.workers());
        // SAFETY: we erase the closure's lifetime; `wg.wait()` below blocks
        // until every worker has dropped its message (and thus finished
        // calling the closure), so the borrow outlives all uses.
        let func: *const JobFn<'static> = unsafe {
            std::mem::transmute::<*const JobFn<'_>, *const JobFn<'static>>(f as *const _)
        };
        let job = Arc::new(Job {
            func,
            next: AtomicUsize::new(0),
            obs,
            panic: Mutex::new(None),
        });
        let wg = WaitGroup::new();
        for tx in &self.senders[..threads - 1] {
            tx.send(Msg {
                job: Arc::clone(&job),
                _wg: wg.clone(),
            })
            .expect("pool worker exited unexpectedly");
        }
        run_job(&job, 0); // the caller is participant 0
        wg.wait();
        let payload = job.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

fn run_job(job: &Job, wid: usize) {
    // SAFETY: see `Job::func`.
    let f = unsafe { &*job.func };
    // AssertUnwindSafe: on panic the payload is resumed on the dispatching
    // thread, which observes the same torn shared state an unwind through
    // `dispatch` would have exposed before panics were contained.
    let result = match &job.obs {
        None => {
            let claim = |chunk: usize| job.next.fetch_add(chunk.max(1), Ordering::Relaxed);
            catch_unwind(AssertUnwindSafe(|| f(wid, &claim)))
        }
        Some(obs) => {
            let started = Instant::now();
            let tally = LaneTally::new();
            let n = obs.n();
            let claim = |chunk: usize| {
                let start = job.next.fetch_add(chunk.max(1), Ordering::Relaxed);
                tally.on_claim(start, chunk.max(1), n);
                start
            };
            let result = catch_unwind(AssertUnwindSafe(|| f(wid, &claim)));
            obs.commit(wid, started, tally);
            result
        }
    };
    if let Err(payload) = result {
        let mut slot = job.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
        // Park the claimer far past any real range bound so sibling
        // participants drain their claim loops quickly. (Halfway up the
        // usize range: subsequent fetch_adds stay astronomically large
        // instead of wrapping.)
        job.next.store(usize::MAX / 2, Ordering::Relaxed);
    }
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The lazily-created global pool.
///
/// Its size is `MLCG_THREADS` if set, otherwise
/// `max(available_parallelism, 4)` — the floor keeps the device-sim policy
/// meaningfully multithreaded even on single-core CI machines, where extra
/// workers are merely time-sliced.
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| {
        // A set-but-invalid MLCG_THREADS used to fall back silently; warn
        // once (this init runs once) so a typo'd `MLCG_THREADS=abc` is not
        // mistaken for a pinned pool size. The effective count is also
        // surfaced as a `pool/workers` gauge when a profiling session is
        // installed.
        let pinned = match std::env::var("MLCG_THREADS") {
            Ok(s) => match s.parse::<usize>() {
                Ok(n) if n > 0 => Some(n),
                _ => {
                    eprintln!(
                        "mlcg: ignoring invalid MLCG_THREADS={s:?} \
                         (expected a positive integer); using the default pool size"
                    );
                    None
                }
            },
            Err(std::env::VarError::NotPresent) => None,
            Err(std::env::VarError::NotUnicode(_)) => {
                eprintln!("mlcg: ignoring non-unicode MLCG_THREADS; using the default pool size");
                None
            }
        };
        let n = pinned.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(4)
        });
        ThreadPool::new(n)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn dispatch_runs_all_participants() {
        let pool = ThreadPool::new(4);
        let ran = AtomicUsize::new(0);
        pool.dispatch(4, &|_wid, _claim| {
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn claim_is_monotone_and_covers() {
        let pool = ThreadPool::new(4);
        let n = 100_000usize;
        let seen = AtomicUsize::new(0);
        pool.dispatch(4, &|_wid, claim| loop {
            let s = claim(64);
            if s >= n {
                break;
            }
            let e = (s + 64).min(n);
            seen.fetch_add(e - s, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), n);
    }

    #[test]
    fn sequential_dispatches_reuse_workers() {
        let pool = ThreadPool::new(3);
        for round in 0..50 {
            let count = AtomicUsize::new(0);
            pool.dispatch(3, &|_w, _c| {
                count.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(count.load(Ordering::SeqCst), 3, "round {round}");
        }
    }

    #[test]
    fn concurrent_dispatch_from_many_threads() {
        let pool = std::sync::Arc::new(ThreadPool::new(4));
        let total = std::sync::Arc::new(AtomicUsize::new(0));
        let mut handles = vec![];
        for _ in 0..8 {
            let pool = std::sync::Arc::clone(&pool);
            let total = std::sync::Arc::clone(&total);
            handles.push(std::thread::spawn(move || {
                for _ in 0..20 {
                    pool.dispatch(4, &|_w, _c| {
                        total.fetch_add(1, Ordering::Relaxed);
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 8 * 20 * 4);
    }

    #[test]
    fn global_pool_has_at_least_four_workers() {
        assert!(global().workers() >= 1);
    }

    #[test]
    fn panicking_job_does_not_poison_the_pool() {
        let pool = ThreadPool::new(4);
        let n = 10_000usize;
        // The panic must surface on the dispatching thread with its payload.
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.dispatch(4, &|_wid, claim| loop {
                let s = claim(64);
                if s >= n {
                    break;
                }
                if s >= n / 2 {
                    panic!("boom at {s}");
                }
            });
        }))
        .expect_err("dispatch must propagate the worker panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "?".into());
        assert!(msg.starts_with("boom at"), "payload lost: {msg}");
        // Every subsequent dispatch must still run on all participants —
        // the worker that panicked used to die, making the next dispatch
        // die on `send(...)` with no hint of the original panic.
        for round in 0..20 {
            let count = AtomicUsize::new(0);
            pool.dispatch(4, &|_w, _c| {
                count.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(count.load(Ordering::SeqCst), 4, "round {round}");
        }
    }
}

//! Deterministic, seedable random number generation.
//!
//! Every randomized routine in the workspace threads an explicit `u64` seed
//! through these generators so experiments are reproducible run-to-run.
//! [`SplitMix64`] is used to key independent streams (one per index, as in
//! the sort-based parallel permutation); [`Xoshiro256pp`] is the sequential
//! workhorse generator.

/// SplitMix64: tiny, statistically solid, and usable as a stateless hash
/// (`splitmix64(seed ^ i)` yields an independent-looking stream per `i`).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        mix(self.state)
    }
}

/// The SplitMix64 output function as a pure hash: good avalanche, cheap.
#[inline]
pub fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Hash an index into a pseudo-random u64 under a seed; the parallel
/// permutation and all per-element random draws use this.
#[inline]
pub fn hash_index(seed: u64, i: u64) -> u64 {
    mix(seed
        ^ i.wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(0x2545F4914F6CDD1D))
}

/// xoshiro256++ — fast general-purpose generator for sequential use.
#[derive(Clone, Debug)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seed via SplitMix64 as recommended by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // Guard against the all-zero state (probability 2^-256, but cheap).
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        Xoshiro256pp { s }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. Uses Lemire's multiply-shift method
    /// with rejection to remove modulo bias.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below: bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits scaled into [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, s: &mut [T]) {
        for i in (1..s.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            s.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn hash_index_streams_do_not_collide_trivially() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(hash_index(7, i)), "collision at {i}");
        }
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut rng = Xoshiro256pp::new(3);
        let mut hit = [false; 10];
        for _ in 0..10_000 {
            let v = rng.next_below(10);
            assert!(v < 10);
            hit[v as usize] = true;
        }
        assert!(hit.iter().all(|&h| h), "all residues should appear");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256pp::new(9);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256pp::new(11);
        let mut v: Vec<u32> = (0..1000).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..1000).collect::<Vec<_>>(),
            "astronomically unlikely identity"
        );
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = Xoshiro256pp::new(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}

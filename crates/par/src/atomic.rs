//! Atomic views over plain integer slices.
//!
//! The paper's lock-free kernels (Algorithm 4's CAS on `C`, the atomic
//! degree counters of Algorithm 6) operate on ordinary device arrays. In
//! Rust we obtain the same thing safely by reinterpreting an exclusively
//! borrowed `&mut [u32]` as `&[AtomicU32]` for the duration of a parallel
//! region: `AtomicU32` is guaranteed to have the same size and bit validity
//! as `u32`, and the exclusive borrow guarantees no non-atomic access can
//! race with the atomic one.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// View an exclusively borrowed `u32` slice as atomics.
pub fn as_atomic_u32(s: &mut [u32]) -> &[AtomicU32] {
    // SAFETY: AtomicU32 has the same size, alignment and bit validity as u32
    // (documented std guarantee), and the &mut borrow makes this the only
    // access path while the returned view is alive.
    unsafe { &*(s as *mut [u32] as *const [AtomicU32]) }
}

/// View an exclusively borrowed `u64` slice as atomics.
pub fn as_atomic_u64(s: &mut [u64]) -> &[AtomicU64] {
    // SAFETY: as in `as_atomic_u32`.
    unsafe { &*(s as *mut [u64] as *const [AtomicU64]) }
}

/// View an exclusively borrowed `usize` slice as atomics.
pub fn as_atomic_usize(s: &mut [usize]) -> &[AtomicUsize] {
    // SAFETY: as in `as_atomic_u32`.
    unsafe { &*(s as *mut [usize] as *const [AtomicUsize]) }
}

/// `AtomicCAS(a, expected, desired)` as written in the paper's pseudocode:
/// returns the *previous* value (so "== expected" means the CAS won).
#[inline]
pub fn cas_u32(a: &AtomicU32, expected: u32, desired: u32) -> u32 {
    match a.compare_exchange(expected, desired, Ordering::AcqRel, Ordering::Acquire) {
        Ok(prev) => prev,
        Err(prev) => prev,
    }
}

/// Atomic fetch-min on a `u64` cell; returns true if this call lowered it.
#[inline]
pub fn fetch_min_u64(a: &AtomicU64, v: u64) -> bool {
    let mut cur = a.load(Ordering::Relaxed);
    while v < cur {
        match a.compare_exchange_weak(cur, v, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

/// Atomic fetch-max on a `u64` cell; returns true if this call raised it.
#[inline]
pub fn fetch_max_u64(a: &AtomicU64, v: u64) -> bool {
    let mut cur = a.load(Ordering::Relaxed);
    while v > cur {
        match a.compare_exchange_weak(cur, v, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parallel_for, ExecPolicy};

    #[test]
    fn atomic_view_increments() {
        let mut v = vec![0u32; 64];
        {
            let a = as_atomic_u32(&mut v);
            let policy = ExecPolicy::all_test_policies().pop().unwrap();
            parallel_for(&policy, 64 * 100, |i| {
                a[i % 64].fetch_add(1, Ordering::Relaxed);
            });
        }
        assert!(v.iter().all(|&x| x == 100));
    }

    #[test]
    fn cas_returns_previous_value() {
        let a = AtomicU32::new(0);
        assert_eq!(cas_u32(&a, 0, 5), 0); // won
        assert_eq!(cas_u32(&a, 0, 9), 5); // lost, observes 5
        assert_eq!(a.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn fetch_min_max() {
        let a = AtomicU64::new(10);
        assert!(fetch_min_u64(&a, 3));
        assert!(!fetch_min_u64(&a, 7));
        assert_eq!(a.load(Ordering::SeqCst), 3);
        assert!(fetch_max_u64(&a, 99));
        assert!(!fetch_max_u64(&a, 4));
        assert_eq!(a.load(Ordering::SeqCst), 99);
    }

    #[test]
    fn concurrent_cas_only_one_winner_per_slot() {
        let mut v = vec![0u32; 1];
        let wins = std::sync::atomic::AtomicUsize::new(0);
        {
            let a = as_atomic_u32(&mut v);
            let policy = ExecPolicy {
                backend: crate::Backend::Host,
                threads: 4,
                grain: 1,
            };
            parallel_for(&policy, 1000, |i| {
                if cas_u32(&a[0], 0, i as u32 + 1) == 0 {
                    wins.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        assert_eq!(wins.load(Ordering::Relaxed), 1);
        assert_ne!(v[0], 0);
    }
}

//! A minimal, dependency-free property-testing harness.
//!
//! The workspace's property tests were originally written against
//! `proptest`; this module replaces it with a deterministic, seedable
//! case runner so the suite builds in fully offline environments. Each
//! case gets its own [`Gen`] derived from `hash_index(base_seed, case)`,
//! so a failing case prints a seed that reproduces it exactly with
//! [`case`].
//!
//! ```
//! use mlcg_par::proplite::run_cases;
//!
//! run_cases(16, 42, |g| {
//!     let v = g.vec_u64(100, 1000);
//!     let doubled: Vec<u64> = v.iter().map(|x| 2 * x).collect();
//!     assert!(doubled.iter().zip(&v).all(|(d, x)| d == &(2 * x)));
//! });
//! ```

use crate::rng::{hash_index, Xoshiro256pp};

/// Per-case random input generator.
pub struct Gen {
    rng: Xoshiro256pp,
    /// The seed that reproduces this case via [`case`].
    pub seed: u64,
}

impl Gen {
    /// A generator for one explicit case seed.
    pub fn new(seed: u64) -> Self {
        Gen {
            rng: Xoshiro256pp::new(seed),
            seed,
        }
    }

    /// A uniform `u64`.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// A uniform `u64` below `bound` (`0` when `bound == 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.rng.next_below(bound)
        }
    }

    /// A uniform `usize` in `lo..hi` (`lo` when the range is empty).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            lo
        } else {
            lo + self.below((hi - lo) as u64) as usize
        }
    }

    /// A vector of up to `max_len` values below `max_val` (uniform length,
    /// including empty).
    pub fn vec_u64(&mut self, max_len: usize, max_val: u64) -> Vec<u64> {
        let len = self.usize_in(0, max_len + 1);
        (0..len).map(|_| self.below(max_val)).collect()
    }

    /// A vector of up to `max_len` fully random `u64`s.
    pub fn vec_u64_any(&mut self, max_len: usize) -> Vec<u64> {
        let len = self.usize_in(0, max_len + 1);
        (0..len).map(|_| self.u64()).collect()
    }

    /// A vector of up to `max_len` fully random `u32`s.
    pub fn vec_u32_any(&mut self, max_len: usize) -> Vec<u32> {
        let len = self.usize_in(0, max_len + 1);
        (0..len).map(|_| self.u64() as u32).collect()
    }
}

/// Run `cases` independent cases of the property `f`. A panic inside `f`
/// is annotated with the case seed before being re-raised, so failures
/// reproduce with `f(&mut Gen::new(seed))`.
pub fn run_cases(cases: usize, base_seed: u64, mut f: impl FnMut(&mut Gen)) {
    for case in 0..cases {
        let seed = hash_index(base_seed, case as u64);
        let mut g = Gen::new(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            f(&mut g);
        }));
        if let Err(payload) = result {
            eprintln!("proplite: case {case}/{cases} failed; reproduce with Gen::new({seed:#x})");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Run one explicit case (the reproduction entry point printed on failure).
pub fn case(seed: u64, f: impl FnOnce(&mut Gen)) {
    f(&mut Gen::new(seed));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut first: Vec<u64> = Vec::new();
        run_cases(8, 7, |g| first.push(g.u64()));
        let mut second: Vec<u64> = Vec::new();
        run_cases(8, 7, |g| second.push(g.u64()));
        assert_eq!(first, second);
    }

    #[test]
    fn ranges_are_respected() {
        run_cases(32, 1, |g| {
            assert!(g.below(10) < 10);
            let x = g.usize_in(5, 9);
            assert!((5..9).contains(&x));
            assert_eq!(g.usize_in(3, 3), 3);
            assert!(g.vec_u64(50, 7).iter().all(|&v| v < 7));
            assert!(g.vec_u64(50, 7).len() <= 50);
        });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_propagate() {
        run_cases(4, 2, |g| {
            if g.seed != 0 {
                panic!("boom");
            }
        });
    }
}

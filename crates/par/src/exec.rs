//! Execution policies: the reproduction's stand-in for Kokkos execution
//! spaces.
//!
//! The paper runs identical kernels on an NVIDIA Turing GPU (CUDA back-end)
//! and a 32-core CPU (OpenMP back-end), choosing per-architecture kernel
//! variants where it matters (bitonic vs radix deduplication sorts, chunked
//! vs flat scheduling). We model that split with three backends that all
//! execute on CPU threads:
//!
//! - [`Backend::Serial`] — reference sequential execution, no pool involved.
//! - [`Backend::Host`] — multicore-style: coarse chunks claimed dynamically.
//! - [`Backend::DeviceSim`] — GPU-style: many fine-grained chunks claimed
//!   from a flat pool, emulating tens of thousands of lightweight threads.
//!   Downstream crates additionally select GPU-flavoured kernels (bitonic
//!   dedup sort) when they see this backend.

use std::fmt;

/// Default minimum work per chunk for [`ExecPolicy::host`]. Retuned against
/// the spin-then-park pool's measured empty-dispatch round-trip (DESIGN §8
/// records the methodology and numbers): with a dispatch costing a few µs
/// and memory-bound loop bodies near 1 ns/item, a region of `2 × grain`
/// items amortizes the dispatch comfortably. The old channel-based pool
/// needed 4096.
pub const HOST_GRAIN: usize = 2048;

/// Default minimum work per chunk for [`ExecPolicy::device_sim`]; finer
/// than [`HOST_GRAIN`] because the flat-grid backend exists to exercise
/// many-chunk scheduling, not to win throughput. Was 1024 before the
/// dispatch path got cheap.
pub const DEVICE_GRAIN: usize = 512;

/// Which execution back-end a kernel runs on. See the module docs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backend {
    /// Sequential in the calling thread.
    Serial,
    /// Multicore CPU style: dynamic scheduling, coarse chunks.
    Host,
    /// Simulated GPU style: flat scheduling, fine chunks, GPU kernel variants.
    DeviceSim,
}

impl Backend {
    /// Short stable name, used by the dispatch profiler's records.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Serial => "serial",
            Backend::Host => "host",
            Backend::DeviceSim => "device-sim",
        }
    }
}

/// A complete description of how parallel primitives should execute.
#[derive(Clone, Debug)]
pub struct ExecPolicy {
    /// Scheduling/kernel-selection flavour.
    pub backend: Backend,
    /// Number of participating workers (including the calling thread).
    pub threads: usize,
    /// Minimum work per chunk; prevents tiny ranges from paying dispatch
    /// overhead. A parallel region with fewer than `grain` items runs inline.
    pub grain: usize,
}

impl ExecPolicy {
    /// Sequential reference policy.
    pub fn serial() -> Self {
        ExecPolicy {
            backend: Backend::Serial,
            threads: 1,
            grain: usize::MAX,
        }
    }

    /// Multicore policy using all pool workers. Reads the *configured*
    /// pool size ([`crate::pool::configured_workers`]), so building the
    /// policy never instantiates the pool — a region that then runs inline
    /// spawns no threads.
    pub fn host() -> Self {
        ExecPolicy {
            backend: Backend::Host,
            threads: crate::pool::configured_workers(),
            grain: HOST_GRAIN,
        }
    }

    /// Multicore policy with an explicit worker count.
    pub fn host_with_threads(threads: usize) -> Self {
        ExecPolicy {
            backend: Backend::Host,
            threads: threads.max(1),
            grain: HOST_GRAIN,
        }
    }

    /// Simulated-GPU policy: every pool worker participates and chunks are
    /// fine-grained, so scheduling resembles a flat GPU grid. Like
    /// [`ExecPolicy::host`], sizing reads the configured pool size without
    /// instantiating the pool.
    pub fn device_sim() -> Self {
        ExecPolicy {
            backend: Backend::DeviceSim,
            threads: crate::pool::configured_workers(),
            grain: DEVICE_GRAIN,
        }
    }

    /// True when downstream code should pick GPU-flavoured kernel variants.
    pub fn is_device(&self) -> bool {
        self.backend == Backend::DeviceSim
    }

    /// Workers that will actually participate for a region of `n` items.
    pub fn effective_threads(&self, n: usize) -> usize {
        if self.backend == Backend::Serial || n < self.grain.saturating_mul(2) {
            1
        } else {
            self.threads.max(1)
        }
    }

    /// Chunk size used by the dynamic claimer for a region of `n` items.
    pub fn chunk_size(&self, n: usize, threads: usize) -> usize {
        let n = n.max(1);
        match self.backend {
            Backend::Serial => n,
            // Coarse: aim for ~8 chunks per worker so dynamic scheduling can
            // balance, but never below a cache-friendly floor.
            Backend::Host => (n / (threads * 8).max(1)).clamp(1024.min(n), n),
            // Fine: many small chunks, emulating a flat GPU grid. The floor
            // keeps per-chunk dispatch overhead tolerable on real CPUs.
            Backend::DeviceSim => (n / (threads * 64).max(1)).clamp(256.min(n), n),
        }
    }

    /// The set of policies exercised by unit and property tests.
    pub fn all_test_policies() -> Vec<ExecPolicy> {
        vec![
            ExecPolicy::serial(),
            // Small grains force the parallel paths even on tiny test inputs.
            ExecPolicy {
                backend: Backend::Host,
                threads: crate::pool::configured_workers(),
                grain: 16,
            },
            ExecPolicy {
                backend: Backend::DeviceSim,
                threads: crate::pool::configured_workers(),
                grain: 16,
            },
        ]
    }
}

impl fmt::Display for ExecPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.backend {
            Backend::Serial => write!(f, "serial"),
            Backend::Host => write!(f, "host(t={})", self.threads),
            Backend::DeviceSim => write!(f, "device-sim(t={})", self.threads),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_is_single_threaded() {
        let p = ExecPolicy::serial();
        assert_eq!(p.effective_threads(1 << 20), 1);
    }

    #[test]
    fn small_ranges_run_inline() {
        let p = ExecPolicy::host();
        assert!(p.effective_threads(HOST_GRAIN * 2 - 1) == 1);
        assert!(p.effective_threads(1 << 20) >= 1);
    }

    #[test]
    fn chunk_sizes_are_sane() {
        let host = ExecPolicy::host_with_threads(8);
        let n = 1 << 20;
        let c = host.chunk_size(n, 8);
        assert!(c >= 1024 && c <= n);
        let dev = ExecPolicy {
            backend: Backend::DeviceSim,
            threads: 8,
            grain: 16,
        };
        let cd = dev.chunk_size(n, 8);
        assert!(
            cd >= 256 && cd <= c,
            "device chunks should be finer: {cd} vs {c}"
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", ExecPolicy::serial()), "serial");
        assert!(format!("{}", ExecPolicy::host_with_threads(4)).starts_with("host"));
        assert!(format!("{}", ExecPolicy::device_sim()).starts_with("device-sim"));
    }
}

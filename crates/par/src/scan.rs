//! Parallel prefix sums (scans).
//!
//! Classic two-phase blocked scan: per-block sums in parallel, a short
//! sequential scan over the block sums, then a parallel fix-up pass. Used by
//! the coarse-graph construction (`ParPrefixSums` in the paper's
//! Algorithm 6) to turn degree counts into CSR row offsets.

use crate::{parallel_for_blocks, profile, ExecPolicy};
use std::ops::AddAssign;

/// Trait bound for scannable element types.
pub trait ScanElem: Copy + Default + AddAssign + Send + Sync {}
impl<T: Copy + Default + AddAssign + Send + Sync> ScanElem for T {}

/// In-place *exclusive* prefix sum; returns the grand total.
///
/// `[3,1,4,1]` becomes `[0,3,4,8]` and `9` is returned.
pub fn exclusive_scan<T: ScanElem>(policy: &ExecPolicy, data: &mut [T]) -> T {
    scan_impl(policy, data, false)
}

/// In-place *inclusive* prefix sum; returns the grand total.
///
/// `[3,1,4,1]` becomes `[3,4,8,9]` and `9` is returned.
pub fn inclusive_scan<T: ScanElem>(policy: &ExecPolicy, data: &mut [T]) -> T {
    scan_impl(policy, data, true)
}

fn scan_impl<T: ScanElem>(policy: &ExecPolicy, data: &mut [T], inclusive: bool) -> T {
    let n = data.len();
    if n == 0 {
        return T::default();
    }
    let threads = policy.effective_threads(n);
    if threads <= 1 {
        return seq_scan(data, inclusive);
    }

    // Fixed block decomposition (independent of the dynamic claimer) so the
    // fix-up pass knows each block's offset. The block loops go through
    // `parallel_for_blocks`, which sizes the team by the *element* count —
    // a plain `parallel_for` over the few dozen blocks would fall below the
    // policy grain and run the whole scan inline.
    let nblocks = (threads * 4).min(n);
    let block = n.div_ceil(nblocks);
    let nblocks = n.div_ceil(block);

    let _k = profile::kernel("scan");
    let mut sums: Vec<T> = vec![T::default(); nblocks];
    {
        let _k = profile::kernel("block_sums");
        let base = data.as_ptr() as usize;
        let sums_base = sums.as_mut_ptr() as usize;
        parallel_for_blocks(policy, n, nblocks, move |b| {
            let start = b * block;
            let end = ((b + 1) * block).min(n);
            let mut acc = T::default();
            // SAFETY: blocks are disjoint; reads of `data`, one write per block.
            unsafe {
                let d = base as *const T;
                for i in start..end {
                    acc += *d.add(i);
                }
                (sums_base as *mut T).add(b).write(acc);
            }
        });
    }
    let total = seq_scan(&mut sums, false);
    {
        let _k = profile::kernel("fixup");
        let base = data.as_mut_ptr() as usize;
        let sums_ref = &sums;
        parallel_for_blocks(policy, n, nblocks, move |b| {
            let start = b * block;
            let end = ((b + 1) * block).min(n);
            let mut acc = sums_ref[b];
            // SAFETY: blocks are disjoint read-modify-writes.
            unsafe {
                let d = base as *mut T;
                for i in start..end {
                    let v = *d.add(i);
                    if inclusive {
                        acc += v;
                        d.add(i).write(acc);
                    } else {
                        d.add(i).write(acc);
                        acc += v;
                    }
                }
            }
        });
    }
    total
}

fn seq_scan<T: ScanElem>(data: &mut [T], inclusive: bool) -> T {
    let mut acc = T::default();
    for v in data.iter_mut() {
        let x = *v;
        if inclusive {
            acc += x;
            *v = acc;
        } else {
            *v = acc;
            acc += x;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_exclusive(v: &[u64]) -> (Vec<u64>, u64) {
        let mut out = Vec::with_capacity(v.len());
        let mut acc = 0;
        for &x in v {
            out.push(acc);
            acc += x;
        }
        (out, acc)
    }

    #[test]
    fn exclusive_matches_reference() {
        for policy in ExecPolicy::all_test_policies() {
            for n in [0usize, 1, 2, 7, 1000, 65_537] {
                let v: Vec<u64> = (0..n as u64).map(|i| (i * 7) % 13).collect();
                let (expect, total) = reference_exclusive(&v);
                let mut data = v.clone();
                let t = exclusive_scan(&policy, &mut data);
                assert_eq!(t, total, "total mismatch n={n} policy={policy}");
                assert_eq!(data, expect, "scan mismatch n={n} policy={policy}");
            }
        }
    }

    #[test]
    fn inclusive_matches_reference() {
        for policy in ExecPolicy::all_test_policies() {
            let v: Vec<u32> = (0..50_000u32).map(|i| i % 5).collect();
            let mut expect = v.clone();
            let mut acc = 0u32;
            for e in expect.iter_mut() {
                acc += *e;
                *e = acc;
            }
            let mut data = v.clone();
            let t = inclusive_scan(&policy, &mut data);
            assert_eq!(t, acc);
            assert_eq!(data, expect);
        }
    }

    #[test]
    fn scan_usize_offsets_for_csr() {
        // The coarse-graph-construction use case: degrees -> row offsets.
        let policy = ExecPolicy::host();
        let degrees = vec![2usize, 0, 3, 1, 4];
        let mut offsets = degrees.clone();
        let total = exclusive_scan(&policy, &mut offsets);
        assert_eq!(offsets, vec![0, 2, 2, 5, 6]);
        assert_eq!(total, 10);
    }
}

//! Parallel-runtime profiler: per-worker dispatch metrics.
//!
//! [`crate::trace`] times *phases*; this module measures how well an
//! individual `parallel_for` / `parallel_reduce` / `parallel_scan` dispatch
//! balances work across pool participants — the evidence a parallel
//! coarse-level refinement design needs before anyone writes it. For every
//! pool dispatch executed while a session is installed, each participant
//! records:
//!
//! - **busy seconds** — wall time spent inside the job body;
//! - **chunks claimed** — how many chunk offsets it won from the shared
//!   atomic claimer;
//! - **items processed** — claimed chunk sizes clipped to the range bound;
//! - **wakeup latency** — seconds from the dispatcher publishing the job to
//!   this participant's first claim, i.e. how long the pool's spin-then-park
//!   wakeup path (see [`crate::pool`]) took to get the lane working;
//! - a **log2-bucketed histogram** of chunk durations (microsecond buckets),
//!   aggregated per dispatch, so chunk-size policy effectiveness per
//!   [`Backend`](crate::Backend) can be judged from a report.
//!
//! Dispatch sites are labelled by kernel name: a caller pushes a label with
//! [`kernel`] (`let _k = profile::kernel("hec_match");`) and every dispatch
//! under that scope is attributed to `par_for/hec_match` (the primitive
//! prefixes its own tag; nested labels join with `/`, so the radix sort's
//! per-pass loops show up as e.g. `par_blocks/gen_perm/radix_sort/pass0`).
//!
//! A session is installed with [`install`], recording into an *enabled*
//! [`TraceCollector`]: each dispatch appends a
//! [`DispatchRecord`] to the collector (rendered by the trace report and the
//! Chrome-trace exporter) plus `dispatch/<kernel>/imbalance` (`max_busy /
//! mean_busy` over participants) and `dispatch/<kernel>/wakeup_us` (worst
//! worker wakeup latency) gauges and
//! `dispatch/<kernel>/{dispatches,chunks,items}` counters.
//!
//! When no session is installed the per-dispatch cost is a single relaxed
//! atomic load and branch, and label guards are a thread-local push/pop —
//! verified alongside the disabled-trace span cost in `bench_primitives`.

use crate::trace::TraceCollector;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of log2 microsecond buckets in a chunk-duration histogram.
/// Bucket `k` counts chunks lasting `[2^k, 2^(k+1))` microseconds; bucket 0
/// also absorbs sub-microsecond chunks and the last bucket is unbounded.
pub const HIST_BUCKETS: usize = 24;

/// Per-participant tallies for one dispatch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkerLane {
    /// Seconds from the profiling collector's epoch to this participant's
    /// first activity in the dispatch.
    pub start_seconds: f64,
    /// Wall seconds the participant spent inside the job body.
    pub busy_seconds: f64,
    /// Chunk offsets this participant claimed within the range.
    pub chunks: u64,
    /// Work units processed (claimed chunk sizes clipped to the range).
    pub items: u64,
    /// Seconds from job publication to this participant's first claim — its
    /// wakeup latency. ~0 for the dispatching thread (lane 0) and for
    /// inline records; for pool workers it measures the spin-then-park
    /// wakeup path end to end.
    pub wakeup_seconds: f64,
}

/// One profiled dispatch: the kernel label, the scheduling parameters the
/// [`ExecPolicy`](crate::ExecPolicy) chose, and per-participant tallies.
#[derive(Clone, Debug, PartialEq)]
pub struct DispatchRecord {
    /// Kernel path, e.g. `par_for/hec_match` (primitive tag + label stack).
    pub kernel: String,
    /// Backend the policy selected (`host`, `device-sim`, `serial`), or
    /// `inline` for a region executed on the calling thread.
    pub backend: &'static str,
    /// Number of claimable work units in the range (items for `par_for`,
    /// blocks for `par_blocks`).
    pub n: usize,
    /// Chunk size handed to the dynamic claimer.
    pub chunk: usize,
    /// Participants requested (including the dispatching thread).
    pub threads: usize,
    /// Seconds from the profiling collector's epoch to dispatch start.
    pub start_seconds: f64,
    /// Wall seconds from dispatch start to the last participant finishing.
    pub seconds: f64,
    /// Per-participant tallies, indexed by participant id (0 = caller).
    pub lanes: Vec<WorkerLane>,
    /// Log2-bucketed chunk-duration histogram, merged over participants
    /// (microsecond buckets; see [`HIST_BUCKETS`]).
    pub chunk_hist: [u32; HIST_BUCKETS],
    /// Net heap bytes charged to the dispatch on the dispatching thread
    /// (lane 0's share of the work; pool workers are unattributed — see
    /// [`crate::mem`]).
    pub heap_delta_bytes: i64,
    /// High-water mark of the dispatch's net heap above its entry point.
    pub heap_peak_bytes: u64,
}

impl DispatchRecord {
    /// Load imbalance: `max_busy / mean_busy` over all participants.
    /// 1.0 is a perfectly balanced dispatch; returns 1.0 when nothing ran.
    pub fn imbalance(&self) -> f64 {
        let max = self
            .lanes
            .iter()
            .map(|l| l.busy_seconds)
            .fold(0.0, f64::max);
        let mean =
            self.lanes.iter().map(|l| l.busy_seconds).sum::<f64>() / self.lanes.len().max(1) as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }

    /// Total work units processed across participants.
    pub fn items(&self) -> u64 {
        self.lanes.iter().map(|l| l.items).sum()
    }

    /// Total chunks claimed across participants.
    pub fn chunks(&self) -> u64 {
        self.lanes.iter().map(|l| l.chunks).sum()
    }

    /// Worst wakeup latency over the pool-worker lanes (lane 0 — the
    /// dispatching thread — is excluded: it needs no wakeup). 0.0 for
    /// inline and single-lane records.
    pub fn wakeup_seconds_max(&self) -> f64 {
        self.lanes
            .iter()
            .skip(1)
            .map(|l| l.wakeup_seconds)
            .fold(0.0, f64::max)
    }
}

/// Histogram bucket for a chunk duration in seconds.
pub(crate) fn bucket_of_seconds(s: f64) -> usize {
    let us = (s * 1e6) as u64;
    if us <= 1 {
        0
    } else {
        (63 - us.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

// ---------------------------------------------------------------------------
// Kernel labels
// ---------------------------------------------------------------------------

thread_local! {
    static KERNELS: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Scope guard for a kernel label; see [`kernel`].
#[must_use = "binding to _ pops the kernel label immediately"]
pub struct KernelGuard {
    _priv: (),
}

/// Push a kernel label for the current thread. Dispatches issued while the
/// guard lives are attributed to `<primitive>/<label>` (nested labels join
/// with `/`). Labels are static so pushing costs a thread-local Vec push
/// whether or not a session is installed.
pub fn kernel(label: &'static str) -> KernelGuard {
    KERNELS.with(|k| k.borrow_mut().push(label));
    KernelGuard { _priv: () }
}

impl Drop for KernelGuard {
    fn drop(&mut self) {
        KERNELS.with(|k| {
            k.borrow_mut().pop();
        });
    }
}

/// The full kernel path for a dispatch issued by primitive `op` right now.
pub(crate) fn kernel_path(op: &str) -> String {
    KERNELS.with(|k| {
        let k = k.borrow();
        if k.is_empty() {
            op.to_string()
        } else {
            let mut path = String::with_capacity(op.len() + 8 * k.len());
            path.push_str(op);
            for label in k.iter() {
                path.push('/');
                path.push_str(label);
            }
            path
        }
    })
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

pub(crate) struct SessionInner {
    trace: TraceCollector,
    epoch: Instant,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static SESSION: Mutex<Option<Arc<SessionInner>>> = Mutex::new(None);

/// Uninstalls the profiling session (restoring any previous one) on drop.
#[must_use = "binding to _ uninstalls the profiler immediately"]
pub struct ProfileGuard {
    installed: bool,
    prev: Option<Arc<SessionInner>>,
}

/// Install a profiling session recording into `trace`. Returns a guard that
/// uninstalls (restoring any previously installed session) on drop.
///
/// A disabled collector installs nothing — the guard is a no-op and the
/// per-dispatch cost everywhere stays one branch. On install, the effective
/// pool size is surfaced as a `pool/workers` gauge.
pub fn install(trace: &TraceCollector) -> ProfileGuard {
    let Some(epoch) = trace.epoch_instant() else {
        return ProfileGuard {
            installed: false,
            prev: None,
        };
    };
    if !trace.is_enabled() {
        return ProfileGuard {
            installed: false,
            prev: None,
        };
    }
    trace.gauge(
        || "pool/workers".to_string(),
        // The configured size, not `global().workers()`: installing a
        // profiler must not force pool creation for a run that stays serial.
        crate::pool::configured_workers() as f64,
    );
    let inner = Arc::new(SessionInner {
        trace: trace.clone(),
        epoch,
    });
    let prev = SESSION.lock().unwrap().replace(inner);
    ACTIVE.store(true, Ordering::Release);
    ProfileGuard {
        installed: true,
        prev,
    }
}

impl Drop for ProfileGuard {
    fn drop(&mut self) {
        if self.installed {
            let prev = self.prev.take();
            ACTIVE.store(prev.is_some(), Ordering::Release);
            *SESSION.lock().unwrap() = prev;
        }
    }
}

/// True when a profiling session is installed (one relaxed load).
#[inline]
pub fn profiling() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// The installed session, if any. The disabled path is one relaxed atomic
/// load and a branch.
#[inline]
pub(crate) fn session() -> Option<Arc<SessionInner>> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    SESSION.lock().unwrap().clone()
}

impl SessionInner {
    /// Record a region executed inline on the calling thread as a
    /// single-lane dispatch.
    pub(crate) fn run_inline<R>(&self, op: &str, n: usize, f: impl FnOnce() -> R) -> R {
        let kernel = kernel_path(op);
        let mem_scope = crate::mem::scope();
        let started = Instant::now();
        let out = f();
        let seconds = started.elapsed().as_secs_f64();
        let heap = mem_scope.finish();
        let start_seconds = started.duration_since(self.epoch).as_secs_f64();
        let mut chunk_hist = [0u32; HIST_BUCKETS];
        chunk_hist[bucket_of_seconds(seconds)] = 1;
        self.trace.record_dispatch(DispatchRecord {
            kernel,
            backend: "inline",
            n,
            chunk: n,
            threads: 1,
            start_seconds,
            seconds,
            lanes: vec![WorkerLane {
                start_seconds,
                busy_seconds: seconds,
                chunks: 1,
                items: n as u64,
                wakeup_seconds: 0.0,
            }],
            chunk_hist,
            heap_delta_bytes: heap.net_bytes,
            heap_peak_bytes: heap.peak_bytes,
        });
        out
    }

    /// Dispatch `body` on the global pool with per-participant observation
    /// and record the resulting [`DispatchRecord`].
    pub(crate) fn run_dispatch(
        &self,
        op: &str,
        backend: &'static str,
        n: usize,
        chunk: usize,
        threads: usize,
        body: &crate::pool::JobFn<'_>,
    ) {
        let kernel = kernel_path(op);
        let obs = Arc::new(DispatchObs::new(n, threads, self.epoch));
        let mem_scope = crate::mem::scope();
        let started = Instant::now();
        crate::pool::global().dispatch_observed(threads, body, Some(Arc::clone(&obs)));
        let seconds = started.elapsed().as_secs_f64();
        let heap = mem_scope.finish();
        let start_seconds = started.duration_since(self.epoch).as_secs_f64();
        let (lanes, chunk_hist) = obs.collect();
        self.trace.record_dispatch(DispatchRecord {
            kernel,
            backend,
            n,
            chunk,
            threads,
            start_seconds,
            seconds,
            lanes,
            chunk_hist,
            heap_delta_bytes: heap.net_bytes,
            heap_peak_bytes: heap.peak_bytes,
        });
    }
}

// ---------------------------------------------------------------------------
// Per-dispatch observation (written by pool participants)
// ---------------------------------------------------------------------------

/// Shared per-dispatch observation buffer: one slot per participant, each
/// written exactly once when the participant finishes its job body.
pub(crate) struct DispatchObs {
    n: usize,
    epoch: Instant,
    lanes: Vec<Mutex<(WorkerLane, [u32; HIST_BUCKETS])>>,
}

impl DispatchObs {
    pub(crate) fn new(n: usize, threads: usize, epoch: Instant) -> Self {
        DispatchObs {
            n,
            epoch,
            lanes: (0..threads)
                .map(|_| Mutex::new(Default::default()))
                .collect(),
        }
    }

    /// The claimable-unit bound of the dispatch range.
    pub(crate) fn n(&self) -> usize {
        self.n
    }

    /// Write participant `wid`'s tallies. `published` is when the
    /// dispatcher made the job visible; the lane's wakeup latency runs from
    /// there to its first claim (or to body entry if it never claimed).
    pub(crate) fn commit(
        &self,
        wid: usize,
        started: Instant,
        published: Instant,
        tally: LaneTally,
    ) {
        let end = Instant::now();
        let mut hist = tally.hist.into_inner();
        if let Some(open) = tally.open.get() {
            hist[bucket_of_seconds(end.duration_since(open).as_secs_f64())] += 1;
        }
        let awake = tally.first_claim.get().unwrap_or(started);
        let lane = WorkerLane {
            start_seconds: started.duration_since(self.epoch).as_secs_f64(),
            busy_seconds: end.duration_since(started).as_secs_f64(),
            chunks: tally.chunks.get(),
            items: tally.items.get(),
            // `saturating_duration_since`: lane 0 enters the body a hair
            // before `published` is even read back on some clocks.
            wakeup_seconds: awake.saturating_duration_since(published).as_secs_f64(),
        };
        if let Some(slot) = self.lanes.get(wid) {
            *slot.lock().unwrap() = (lane, hist);
        }
    }

    /// Merge the per-participant slots into (lanes, chunk histogram).
    fn collect(&self) -> (Vec<WorkerLane>, [u32; HIST_BUCKETS]) {
        let mut lanes = Vec::with_capacity(self.lanes.len());
        let mut hist = [0u32; HIST_BUCKETS];
        for slot in &self.lanes {
            let (lane, h) = slot.lock().unwrap().clone();
            for (acc, v) in hist.iter_mut().zip(h.iter()) {
                *acc += v;
            }
            lanes.push(lane);
        }
        (lanes, hist)
    }
}

/// Thread-local tallies a participant accumulates through its claim loop.
/// `Cell`-based so the shared `&dyn Fn` claim closure can update it.
pub(crate) struct LaneTally {
    chunks: Cell<u64>,
    items: Cell<u64>,
    /// Time of the very first claim, in- or out-of-range — the earliest
    /// proof the participant woke up and reached the claim loop.
    first_claim: Cell<Option<Instant>>,
    /// Start time of the chunk currently being processed, if any.
    open: Cell<Option<Instant>>,
    hist: RefCell<[u32; HIST_BUCKETS]>,
}

impl LaneTally {
    pub(crate) fn new() -> Self {
        LaneTally {
            chunks: Cell::new(0),
            items: Cell::new(0),
            first_claim: Cell::new(None),
            open: Cell::new(None),
            hist: RefCell::new([0; HIST_BUCKETS]),
        }
    }

    /// Observe one claim: `start` is the offset the claimer returned,
    /// `chunk` the requested size, `n` the range bound. A claim closes the
    /// previously open chunk (its duration is claim-to-claim) and, when
    /// in-range, opens the next.
    pub(crate) fn on_claim(&self, start: usize, chunk: usize, n: usize) {
        let now = Instant::now();
        if self.first_claim.get().is_none() {
            self.first_claim.set(Some(now));
        }
        if let Some(open) = self.open.take() {
            self.hist.borrow_mut()[bucket_of_seconds(now.duration_since(open).as_secs_f64())] += 1;
        }
        if start < n {
            self.chunks.set(self.chunks.get() + 1);
            self.items
                .set(self.items.get() + chunk.min(n - start) as u64);
            self.open.set(Some(now));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_log2_microseconds() {
        assert_eq!(bucket_of_seconds(0.0), 0);
        assert_eq!(bucket_of_seconds(1e-6), 0);
        assert_eq!(bucket_of_seconds(2e-6), 1);
        assert_eq!(bucket_of_seconds(3e-6), 1);
        assert_eq!(bucket_of_seconds(4e-6), 2);
        assert_eq!(bucket_of_seconds(1e-3), 9); // 1000us -> bucket 9 (512..1024? no: 2^9=512, 2^10=1024 -> 1000 in bucket 9)
        assert_eq!(bucket_of_seconds(1e6), HIST_BUCKETS - 1);
    }

    #[test]
    fn kernel_paths_compose() {
        assert_eq!(kernel_path("par_for"), "par_for");
        let _a = kernel("hec_match");
        assert_eq!(kernel_path("par_for"), "par_for/hec_match");
        {
            let _b = kernel("pass0");
            assert_eq!(kernel_path("par_blocks"), "par_blocks/hec_match/pass0");
        }
        assert_eq!(kernel_path("par_for"), "par_for/hec_match");
    }

    #[test]
    fn imbalance_of_even_lanes_is_one() {
        let rec = DispatchRecord {
            kernel: "par_for/x".into(),
            backend: "host",
            n: 100,
            chunk: 10,
            threads: 2,
            start_seconds: 0.0,
            seconds: 1.0,
            lanes: vec![
                WorkerLane {
                    start_seconds: 0.0,
                    busy_seconds: 1.0,
                    chunks: 5,
                    items: 50,
                    wakeup_seconds: 0.0,
                },
                WorkerLane {
                    start_seconds: 0.0,
                    busy_seconds: 1.0,
                    chunks: 5,
                    items: 50,
                    wakeup_seconds: 2e-6,
                },
            ],
            chunk_hist: [0; HIST_BUCKETS],
            heap_delta_bytes: 0,
            heap_peak_bytes: 0,
        };
        assert!((rec.imbalance() - 1.0).abs() < 1e-12);
        assert_eq!(rec.items(), 100);
        assert_eq!(rec.chunks(), 10);
        // Lane 0 (the caller) is excluded from the wakeup rollup.
        assert!((rec.wakeup_seconds_max() - 2e-6).abs() < 1e-18);
        let skew = DispatchRecord {
            lanes: vec![
                WorkerLane {
                    busy_seconds: 3.0,
                    ..Default::default()
                },
                WorkerLane {
                    busy_seconds: 1.0,
                    ..Default::default()
                },
            ],
            ..rec
        };
        assert!((skew.imbalance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn install_on_disabled_collector_is_noop() {
        let t = TraceCollector::disabled();
        let g = install(&t);
        assert!(!profiling());
        drop(g);
    }
}

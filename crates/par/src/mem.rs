//! Heap telemetry: an allocation-tracking global allocator with scoped
//! attribution.
//!
//! [`TrackingAllocator`] wraps [`std::alloc::System`] and keeps four
//! process-global relaxed-atomic tallies: live bytes, peak live bytes, and
//! allocation/deallocation event counts. It is installed as the workspace's
//! `#[global_allocator]` in `lib.rs`, so every crate that links `mlcg_par`
//! (the whole workspace) is measured.
//!
//! On top of the global tallies sits a *scope* mechanism for attribution:
//! [`scope`] pushes a frame onto a thread-local fixed-capacity stack, and
//! every allocation or deallocation performed by that thread while the
//! frame is open is charged to the innermost frame. Closing a frame
//! ([`ScopeGuard::finish`]) returns its [`ScopeStats`] and folds the totals
//! into the parent frame, so accounting is *inclusive*: a parent sees
//! everything its children allocated. The trace spans in
//! [`crate::trace`] and the dispatch profiler in [`crate::profile`] open
//! scopes automatically when a collector is recording, which is how spans
//! and kernels get `heap_delta_bytes` / `heap_peak_bytes` attribution.
//!
//! Attribution rules (also documented in DESIGN §8):
//!
//! - Bytes are attributed to the scope stack of the **allocating thread**.
//!   Worker-pool threads never open scopes, so bytes they allocate count
//!   toward the global tallies but not toward any scope. Phase-level scopes
//!   are opened on the dispatching thread, which also participates in
//!   dispatched work, so single-threaded phases are exact and parallel
//!   phases attribute the dispatching lane's share.
//! - A deallocation is charged to the scope that is open when the memory is
//!   **freed**, not the one that allocated it. This makes `net_bytes`
//!   meaningful per phase (a phase that frees a predecessor's buffers shows
//!   a negative net) and keeps the allocator hook O(1) — no per-pointer
//!   origin map, no extra allocation inside the allocator.
//! - `peak_bytes` of a scope is the high-water mark of that scope's net
//!   bytes *above its entry point* — i.e. the extra heap the scope needed,
//!   independent of how much was already live when it opened.
//!
//! Cost: with no scope open anywhere in the process (the default), each
//! allocation performs two relaxed atomic RMWs plus two relaxed loads
//! (peak check and open-scope check — the thread-local stack is never
//! touched); deallocation two RMWs plus one load. The ratio versus raw
//! `System` is gated in `bench_primitives`. A growing `realloc` counts as an allocation event
//! for the grown bytes, a shrinking one as a deallocation event.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::{Cell, UnsafeCell};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
/// Scopes currently open across all threads. The allocator hooks consult
/// this with one relaxed load before touching thread-local state, so the
/// scope machinery costs nothing process-wide while no one is measuring
/// (a thread that opened a scope sees its own increment by program
/// order, so relaxed is enough for correct self-attribution).
static OPEN_SCOPES: AtomicUsize = AtomicUsize::new(0);

/// Bytes currently allocated and not yet freed, process-wide.
pub fn live_bytes() -> usize {
    LIVE.load(Relaxed)
}

/// High-water mark of [`live_bytes`] since process start.
pub fn peak_bytes() -> usize {
    PEAK.load(Relaxed)
}

/// Allocation events since process start (growing reallocs included).
pub fn alloc_count() -> u64 {
    ALLOCS.load(Relaxed)
}

/// Deallocation events since process start (shrinking reallocs included).
pub fn dealloc_count() -> u64 {
    DEALLOCS.load(Relaxed)
}

/// Render a byte count for humans: `741B`, `1.4KiB`, `16.0MiB`, `2.1GiB`.
pub fn fmt_bytes(b: u64) -> String {
    const KIB: f64 = 1024.0;
    let bf = b as f64;
    if bf >= KIB * KIB * KIB {
        format!("{:.1}GiB", bf / (KIB * KIB * KIB))
    } else if bf >= KIB * KIB {
        format!("{:.1}MiB", bf / (KIB * KIB))
    } else if bf >= KIB {
        format!("{:.1}KiB", bf / KIB)
    } else {
        format!("{b}B")
    }
}

/// [`fmt_bytes`] with an explicit sign, for net deltas.
pub fn fmt_bytes_signed(b: i64) -> String {
    if b < 0 {
        format!("-{}", fmt_bytes(b.unsigned_abs()))
    } else {
        format!("+{}", fmt_bytes(b as u64))
    }
}

/// Maximum nesting depth of attribution scopes per thread. Pushes beyond
/// this yield inert guards that report zero stats; the repo's deepest real
/// nesting (trace spans × profiler dispatches) is well under ten.
const MAX_DEPTH: usize = 128;

#[derive(Clone, Copy)]
struct Frame {
    alloc_bytes: u64,
    dealloc_bytes: u64,
    net: i64,
    net_peak: i64,
}

const EMPTY_FRAME: Frame = Frame {
    alloc_bytes: 0,
    dealloc_bytes: 0,
    net: 0,
    net_peak: 0,
};

/// Per-thread scope stack. Fixed capacity and no `Drop` impl, so the
/// thread-local is const-initialised (no lazy-init branch in the allocator
/// hot path) and never allocates — the allocator hooks must not re-enter
/// the allocator.
struct ScopeStack {
    depth: Cell<usize>,
    frames: UnsafeCell<[Frame; MAX_DEPTH]>,
}

thread_local! {
    static SCOPES: ScopeStack = const {
        ScopeStack {
            depth: Cell::new(0),
            frames: UnsafeCell::new([EMPTY_FRAME; MAX_DEPTH]),
        }
    };
}

#[inline]
fn scope_charge(net_delta: i64, alloc_b: u64, dealloc_b: u64) {
    if OPEN_SCOPES.load(Relaxed) == 0 {
        return;
    }
    // try_with: allocations during TLS teardown must not panic.
    let _ = SCOPES.try_with(|s| {
        let d = s.depth.get();
        if d == 0 {
            return;
        }
        // SAFETY: frames are only touched from this thread, and nothing in
        // this function allocates, so there is no reentrant aliasing.
        let f = unsafe { &mut (*s.frames.get())[d - 1] };
        f.alloc_bytes += alloc_b;
        f.dealloc_bytes += dealloc_b;
        f.net += net_delta;
        if f.net > f.net_peak {
            f.net_peak = f.net;
        }
    });
}

#[inline]
fn on_alloc(size: usize) {
    let new_live = LIVE.fetch_add(size, Relaxed) + size;
    // fetch_max is a CAS loop on most targets; a relaxed load + branch
    // skips it entirely in the steady state (live below peak), which is
    // where the disabled-path overhead gate lives.
    if new_live > PEAK.load(Relaxed) {
        PEAK.fetch_max(new_live, Relaxed);
    }
    ALLOCS.fetch_add(1, Relaxed);
    scope_charge(size as i64, size as u64, 0);
}

#[inline]
fn on_dealloc(size: usize) {
    LIVE.fetch_sub(size, Relaxed);
    DEALLOCS.fetch_add(1, Relaxed);
    scope_charge(-(size as i64), 0, size as u64);
}

/// Allocation-tracking wrapper over [`System`]. Installed as the
/// workspace-wide `#[global_allocator]` in `lib.rs`.
pub struct TrackingAllocator;

// SAFETY: defers all allocation to `System` and only adds bookkeeping that
// never allocates, unwinds, or observes the returned memory.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            if new_size >= layout.size() {
                on_alloc(new_size - layout.size());
            } else {
                on_dealloc(layout.size() - new_size);
            }
        }
        p
    }
}

/// What one closed scope observed. All byte figures cover the owning
/// thread's allocator traffic while the scope (or any nested child) was
/// innermost — see the module docs for the attribution rules.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScopeStats {
    /// Bytes allocated while the scope was open (inclusive of children).
    pub alloc_bytes: u64,
    /// Bytes freed while the scope was open (inclusive of children).
    pub dealloc_bytes: u64,
    /// `alloc_bytes - dealloc_bytes` as a signed quantity: what the scope
    /// left behind (negative if it freed more than it allocated).
    pub net_bytes: i64,
    /// High-water mark of net bytes above the scope's entry point — the
    /// extra heap the scope needed at its hungriest moment.
    pub peak_bytes: u64,
}

/// Guard for one attribution scope; close with [`finish`](Self::finish) to
/// get the [`ScopeStats`], or let it drop to discard them. Not `Send`:
/// frames live on the opening thread's stack and must close there.
pub struct ScopeGuard {
    /// Stack depth after our push; 0 marks an inert guard (overflow or TLS
    /// teardown).
    depth: usize,
    _not_send: PhantomData<*const ()>,
}

/// Open an attribution scope on the current thread.
pub fn scope() -> ScopeGuard {
    let depth = SCOPES
        .try_with(|s| {
            let d = s.depth.get();
            if d >= MAX_DEPTH {
                return 0;
            }
            // SAFETY: single-threaded access, no allocation here.
            unsafe {
                (*s.frames.get())[d] = EMPTY_FRAME;
            }
            s.depth.set(d + 1);
            OPEN_SCOPES.fetch_add(1, Relaxed);
            d + 1
        })
        .unwrap_or(0);
    ScopeGuard {
        depth,
        _not_send: PhantomData,
    }
}

/// Run `f` inside a fresh scope and return its result plus the stats.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, ScopeStats) {
    let g = scope();
    let r = f();
    (r, g.finish())
}

/// Pop the innermost frame, folding its totals into the parent so parent
/// accounting stays inclusive.
fn pop_frame(s: &ScopeStack) -> ScopeStats {
    let d = s.depth.get();
    debug_assert!(d > 0);
    // SAFETY: single-threaded access, no allocation here.
    let f = unsafe { (*s.frames.get())[d - 1] };
    s.depth.set(d - 1);
    OPEN_SCOPES.fetch_sub(1, Relaxed);
    if d >= 2 {
        let parent = unsafe { &mut (*s.frames.get())[d - 2] };
        // The child's high-water, re-based onto the parent's current net
        // (the parent's own net cannot move while a child is innermost).
        let candidate = parent.net + f.net_peak;
        if candidate > parent.net_peak {
            parent.net_peak = candidate;
        }
        parent.net += f.net;
        parent.alloc_bytes += f.alloc_bytes;
        parent.dealloc_bytes += f.dealloc_bytes;
    }
    ScopeStats {
        alloc_bytes: f.alloc_bytes,
        dealloc_bytes: f.dealloc_bytes,
        net_bytes: f.net,
        peak_bytes: f.net_peak.max(0) as u64,
    }
}

impl ScopeGuard {
    /// Close the scope and return what it observed.
    pub fn finish(mut self) -> ScopeStats {
        self.pop()
    }

    fn pop(&mut self) -> ScopeStats {
        if self.depth == 0 {
            return ScopeStats::default();
        }
        let depth = std::mem::replace(&mut self.depth, 0);
        SCOPES
            .try_with(|s| {
                if s.depth.get() < depth {
                    // An outer guard already popped past us (non-LIFO drop);
                    // our frame was folded into it.
                    return ScopeStats::default();
                }
                debug_assert_eq!(s.depth.get(), depth, "mem scopes should close LIFO");
                while s.depth.get() > depth {
                    let _ = pop_frame(s);
                }
                pop_frame(s)
            })
            .unwrap_or_default()
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let _ = self.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_tallies_move_and_peak_dominates_live() {
        let a0 = alloc_count();
        let v: Vec<u8> = Vec::with_capacity(4096);
        assert!(alloc_count() > a0, "allocation must bump the event count");
        assert!(peak_bytes() >= live_bytes());
        assert!(live_bytes() >= v.capacity());
        drop(v);
    }

    #[test]
    fn scope_sees_exact_vec_alloc() {
        let (v, st) = measure(|| Vec::<u8>::with_capacity(1024));
        assert_eq!(st.alloc_bytes, 1024);
        assert_eq!(st.net_bytes, 1024);
        assert_eq!(st.peak_bytes, 1024);
        let (_, st2) = measure(move || drop(v));
        assert_eq!(st2.dealloc_bytes, 1024);
        assert_eq!(st2.net_bytes, -1024);
        assert_eq!(st2.peak_bytes, 0, "a pure free never raises the high-water");
    }

    #[test]
    fn nested_scopes_are_inclusive() {
        let ((), outer) = measure(|| {
            let keep: Vec<u8> = Vec::with_capacity(100);
            let ((), inner) = measure(|| {
                let tmp: Vec<u8> = Vec::with_capacity(1000);
                drop(tmp);
            });
            assert_eq!(inner.alloc_bytes, 1000);
            assert_eq!(inner.dealloc_bytes, 1000);
            assert_eq!(inner.net_bytes, 0);
            assert_eq!(inner.peak_bytes, 1000);
            drop(keep);
        });
        assert_eq!(outer.alloc_bytes, 1100, "parent accounting is inclusive");
        assert_eq!(outer.dealloc_bytes, 1100);
        assert_eq!(outer.net_bytes, 0);
        // Child's 1000-byte burst sat on top of the parent's live 100.
        assert_eq!(outer.peak_bytes, 1100);
    }

    #[test]
    fn peak_is_high_water_not_final_net() {
        let ((), st) = measure(|| {
            let a: Vec<u8> = Vec::with_capacity(5000);
            drop(a);
            let b: Vec<u8> = Vec::with_capacity(10);
            drop(b);
        });
        assert_eq!(st.net_bytes, 0);
        assert_eq!(st.peak_bytes, 5000);
    }

    #[test]
    fn realloc_tracks_grow_and_shrink() {
        let ((), st) = measure(|| {
            let mut v: Vec<u8> = Vec::with_capacity(100);
            v.reserve_exact(400); // grow 100 -> 400
            v.shrink_to(200); // shrink 400 -> 200
            drop(v);
        });
        assert_eq!(st.net_bytes, 0);
        assert!(st.peak_bytes >= 400);
        assert!(st.alloc_bytes >= 400);
    }

    #[test]
    fn sibling_scopes_fold_into_parent_sequentially() {
        let ((), outer) = measure(|| {
            let (va, a) = measure(|| Vec::<u8>::with_capacity(300));
            let (vb, b) = measure(|| Vec::<u8>::with_capacity(200));
            assert_eq!(a.net_bytes, 300);
            assert_eq!(b.net_bytes, 200);
            drop(va);
            drop(vb);
        });
        // Both vecs escaped their scopes and were freed by the parent: the
        // siblings' nets fold in, and the combined high-water is 500.
        assert_eq!(outer.net_bytes, 0);
        assert_eq!(outer.alloc_bytes, 500);
        assert_eq!(outer.peak_bytes, 500);
    }

    #[test]
    fn unscoped_allocations_do_not_panic() {
        // No scope open on this thread: the fast path must just count.
        let v: Vec<u64> = (0..64).collect();
        assert_eq!(v.len(), 64);
    }

    #[test]
    fn worker_thread_allocations_stay_unattributed() {
        let ((), st) = measure(|| {
            std::thread::spawn(|| {
                let big: Vec<u8> = Vec::with_capacity(1 << 20);
                std::hint::black_box(&big);
            })
            .join()
            .unwrap();
        });
        // The spawned thread had no scope; only join/spawn bookkeeping from
        // this thread lands here — far less than the 1 MiB buffer.
        assert!(st.alloc_bytes < 1 << 19, "got {}", st.alloc_bytes);
    }
}

//! Wall-clock timing helpers used by the benchmark harness.

use std::time::Instant;

/// A simple wall-clock stopwatch.
#[derive(Debug)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Start timing now.
    pub fn start() -> Self {
        Timer {
            start: Instant::now(),
        }
    }

    /// Seconds elapsed since start.
    pub fn seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Reset the stopwatch and return the seconds elapsed before the reset.
    pub fn lap(&mut self) -> f64 {
        let s = self.seconds();
        self.start = Instant::now();
        s
    }
}

/// Time a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Timer::start();
    let r = f();
    (r, t.seconds())
}

/// Median of a sample (the paper reports medians of 10 runs).
pub fn median(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        0.5 * (samples[n / 2 - 1] + samples[n / 2])
    }
}

/// Geometric mean of positive samples (used throughout the paper's tables).
pub fn geomean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = samples.iter().map(|&x| x.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / samples.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_measures_something() {
        let (v, secs) = timed(|| {
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(v > 0);
        assert!(secs >= 0.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&mut []).is_nan());
    }

    #[test]
    fn geomean_basics() {
        let g = geomean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn lap_resets() {
        let mut t = Timer::start();
        let first = t.lap();
        let second = t.seconds();
        assert!(first >= 0.0 && second >= 0.0);
    }
}

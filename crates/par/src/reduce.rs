//! Parallel reductions.

use crate::{parallel_for_chunks_op, ExecPolicy};
use std::sync::Mutex;

/// Reduce `map(i)` over `0..n` with an associative, commutative `combine`
/// and its `identity`.
pub fn parallel_reduce<T, M, C>(policy: &ExecPolicy, n: usize, identity: T, map: M, combine: C) -> T
where
    T: Clone + Send + Sync,
    M: Fn(usize) -> T + Sync,
    C: Fn(T, T) -> T + Sync + Send,
{
    let partials: Mutex<Vec<T>> = Mutex::new(Vec::new());
    // Tagged `par_reduce` so the dispatch profiler distinguishes reductions
    // from plain parallel-for sweeps at the same call site.
    parallel_for_chunks_op(policy, n, "par_reduce", |r| {
        let mut acc = identity.clone();
        for i in r {
            acc = combine(acc, map(i));
        }
        partials.lock().unwrap().push(acc);
    });
    partials
        .into_inner()
        .unwrap()
        .into_iter()
        .fold(identity, combine)
}

/// Sum of `map(i)` over `0..n` as `u64`.
pub fn parallel_reduce_sum<M>(policy: &ExecPolicy, n: usize, map: M) -> u64
where
    M: Fn(usize) -> u64 + Sync,
{
    parallel_reduce(policy, n, 0u64, map, |a, b| a + b)
}

/// Maximum of `map(i)` over `0..n` (`0` for the empty range).
pub fn parallel_reduce_max<M>(policy: &ExecPolicy, n: usize, map: M) -> u64
where
    M: Fn(usize) -> u64 + Sync,
{
    parallel_reduce(policy, n, 0u64, map, u64::max)
}

/// Minimum of `map(i)` over `0..n` (`u64::MAX` for the empty range).
pub fn parallel_reduce_min<M>(policy: &ExecPolicy, n: usize, map: M) -> u64
where
    M: Fn(usize) -> u64 + Sync,
{
    parallel_reduce(policy, n, u64::MAX, map, u64::min)
}

/// Count indices in `0..n` satisfying `pred`.
pub fn parallel_count<P>(policy: &ExecPolicy, n: usize, pred: P) -> usize
where
    P: Fn(usize) -> bool + Sync,
{
    parallel_reduce(policy, n, 0usize, |i| usize::from(pred(i)), |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_matches_formula() {
        for policy in ExecPolicy::all_test_policies() {
            let n = 100_001u64;
            let s = parallel_reduce_sum(&policy, n as usize, |i| i as u64);
            assert_eq!(s, n * (n - 1) / 2, "policy {policy}");
        }
    }

    #[test]
    fn max_and_min() {
        let v: Vec<u64> = (0..50_000)
            .map(|i| (i * 2654435761u64) % 1_000_003)
            .collect();
        let expect_max = *v.iter().max().unwrap();
        let expect_min = *v.iter().min().unwrap();
        for policy in ExecPolicy::all_test_policies() {
            assert_eq!(parallel_reduce_max(&policy, v.len(), |i| v[i]), expect_max);
            assert_eq!(parallel_reduce_min(&policy, v.len(), |i| v[i]), expect_min);
        }
    }

    #[test]
    fn empty_reductions_yield_identity() {
        let p = ExecPolicy::host();
        assert_eq!(parallel_reduce_sum(&p, 0, |_| 1), 0);
        assert_eq!(parallel_reduce_max(&p, 0, |_| 1), 0);
        assert_eq!(parallel_reduce_min(&p, 0, |_| 1), u64::MAX);
    }

    #[test]
    fn count_predicate() {
        for policy in ExecPolicy::all_test_policies() {
            let c = parallel_count(&policy, 30_000, |i| i % 3 == 0);
            assert_eq!(c, 10_000);
        }
    }

    #[test]
    fn custom_monoid_f64_sum() {
        let policy = ExecPolicy::host();
        let s = parallel_reduce(
            &policy,
            10_000,
            0.0f64,
            |i| 1.0 / (1 + i) as f64,
            |a, b| a + b,
        );
        let seq: f64 = (0..10_000).map(|i| 1.0 / (1 + i) as f64).sum();
        assert!((s - seq).abs() < 1e-9);
    }
}

//! Integration tests for the dispatch profiler: per-worker tallies must
//! account for every work unit of a dispatch, and the Chrome-trace export
//! must be schema-valid (parseable JSON, balanced B/E span pairs, monotone
//! timestamps).
//!
//! The profiling session is process-global, so every test that installs one
//! serializes on [`session_lock`] and uses unique kernel labels.

use mlcg_par::profile;
use mlcg_par::{parallel_for, Backend, ExecPolicy, TraceCollector, TraceReport};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

fn session_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    // A panicking sibling test must not wedge the rest of the suite.
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run one labelled `parallel_for` under a fresh profiling session and
/// return the report.
fn traced_parallel_for(label: &'static str, backend: Backend, n: usize) -> TraceReport {
    let policy = ExecPolicy {
        backend,
        threads: mlcg_par::pool::global().workers(),
        grain: 16,
    };
    let trace = TraceCollector::enabled();
    {
        let _p = profile::install(&trace);
        let _k = profile::kernel(label);
        let touched = AtomicU64::new(0);
        parallel_for(&policy, n, |_i| {
            touched.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(touched.load(Ordering::Relaxed), n as u64);
    }
    trace.report()
}

fn check_dispatch_accounts_for_all_work(backend: Backend, label: &'static str) {
    let n = 50_000usize;
    let report = traced_parallel_for(label, backend, n);
    let kernel = format!("par_for/{label}");
    let rec = report
        .dispatches
        .iter()
        .find(|d| d.kernel == kernel)
        .unwrap_or_else(|| panic!("no dispatch recorded for {kernel}"));

    assert_eq!(rec.backend, backend.name());
    assert_eq!(rec.n, n);
    assert_eq!(rec.threads, rec.lanes.len(), "one lane per participant");
    assert!(rec.threads >= 2, "grain 16 must force the parallel path");

    // Every work unit is attributed to exactly one lane.
    let items: u64 = rec.lanes.iter().map(|l| l.items).sum();
    assert_eq!(items, n as u64, "lane items must sum to the range bound");
    assert_eq!(rec.items(), n as u64);

    // Chunk accounting: claims per lane sum to the dispatch total, and the
    // duration histogram holds one entry per claimed chunk.
    let chunks: u64 = rec.lanes.iter().map(|l| l.chunks).sum();
    assert_eq!(rec.chunks(), chunks);
    assert!(chunks >= 1);
    let hist_total: u64 = rec.chunk_hist.iter().map(|&c| c as u64).sum();
    assert_eq!(hist_total, chunks, "one histogram entry per claimed chunk");

    // Timing sanity: the dispatch took nonzero wall time, no lane was busy
    // longer than the dispatch, and imbalance is a valid max/mean ratio.
    assert!(rec.seconds > 0.0);
    for lane in &rec.lanes {
        assert!(lane.busy_seconds >= 0.0);
        assert!(lane.busy_seconds <= rec.seconds * 1.5 + 1e-3);
    }
    assert!(rec.imbalance() >= 1.0 - 1e-9);

    // Wakeup accounting: lane 0 is the dispatching thread (no wakeup), and
    // no lane can wake up before it was published or after the dispatch
    // finished.
    for lane in &rec.lanes {
        assert!(lane.wakeup_seconds >= 0.0);
        assert!(lane.wakeup_seconds <= rec.seconds * 1.5 + 1e-3);
    }
    assert!(rec.wakeup_seconds_max() >= 0.0);

    // The derived gauges and counters the report exposes for this kernel.
    let g = report
        .gauge(&format!("dispatch/{kernel}/imbalance"))
        .expect("imbalance gauge");
    assert!((g - rec.imbalance()).abs() < 1e-9);
    let wake = report
        .gauge(&format!("dispatch/{kernel}/wakeup_us"))
        .expect("wakeup gauge");
    assert!((wake - rec.wakeup_seconds_max() * 1e6).abs() < 1e-6);
    assert_eq!(
        report.counter(&format!("dispatch/{kernel}/items")),
        n as u64
    );
    assert_eq!(report.counter(&format!("dispatch/{kernel}/chunks")), chunks);
    assert_eq!(report.counter(&format!("dispatch/{kernel}/dispatches")), 1);

    // Installing the session surfaced the pool size.
    assert_eq!(
        report.gauge("pool/workers"),
        Some(mlcg_par::pool::global().workers() as f64)
    );
}

#[test]
fn host_dispatch_tallies_sum_to_dispatch_totals() {
    let _g = session_lock();
    check_dispatch_accounts_for_all_work(Backend::Host, "itest_host");
}

#[test]
fn device_sim_dispatch_tallies_sum_to_dispatch_totals() {
    let _g = session_lock();
    check_dispatch_accounts_for_all_work(Backend::DeviceSim, "itest_dev");
}

// ---------------------------------------------------------------------------
// Chrome-trace schema validation
// ---------------------------------------------------------------------------

/// Minimal JSON value for schema checking (no external crates).
#[derive(Debug)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Recursive-descent JSON parser; panics (failing the test) on malformed
/// input, which is exactly the schema check we want.
fn parse_json(src: &str) -> Json {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos);
    skip_ws(bytes, &mut pos);
    assert_eq!(pos, bytes.len(), "trailing content after JSON document");
    v
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) {
    skip_ws(b, pos);
    assert!(
        *pos < b.len() && b[*pos] == c,
        "expected {:?} at byte {}",
        c as char,
        *pos
    );
    *pos += 1;
}

fn parse_value(b: &[u8], pos: &mut usize) -> Json {
    skip_ws(b, pos);
    assert!(*pos < b.len(), "unexpected end of JSON");
    match b[*pos] {
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b[*pos] == b'}' {
                *pos += 1;
                return Json::Obj(fields);
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos);
                expect(b, pos, b':');
                fields.push((key, parse_value(b, pos)));
                skip_ws(b, pos);
                match b[*pos] {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Json::Obj(fields);
                    }
                    c => panic!("expected ',' or '}}', got {:?}", c as char),
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b[*pos] == b']' {
                *pos += 1;
                return Json::Arr(items);
            }
            loop {
                items.push(parse_value(b, pos));
                skip_ws(b, pos);
                match b[*pos] {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Json::Arr(items);
                    }
                    c => panic!("expected ',' or ']', got {:?}", c as char),
                }
            }
        }
        b'"' => Json::Str(parse_string(b, pos)),
        b't' => {
            assert_eq!(&b[*pos..*pos + 4], b"true");
            *pos += 4;
            Json::Bool(true)
        }
        b'f' => {
            assert_eq!(&b[*pos..*pos + 5], b"false");
            *pos += 5;
            Json::Bool(false)
        }
        b'n' => {
            assert_eq!(&b[*pos..*pos + 4], b"null");
            *pos += 4;
            Json::Null
        }
        _ => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&b[start..*pos]).unwrap();
            Json::Num(s.parse().unwrap_or_else(|_| panic!("bad number {s:?}")))
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> String {
    assert_eq!(b[*pos], b'"', "expected string at byte {}", *pos);
    *pos += 1;
    let mut out = String::new();
    loop {
        assert!(*pos < b.len(), "unterminated string");
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return out;
            }
            b'\\' => {
                *pos += 1;
                match b[*pos] {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = std::str::from_utf8(&b[*pos + 1..*pos + 5]).unwrap();
                        let cp = u32::from_str_radix(hex, 16).unwrap();
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    c => panic!("bad escape \\{:?}", c as char),
                }
                *pos += 1;
            }
            c => {
                // Multi-byte UTF-8 sequences pass through verbatim.
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                out.push_str(std::str::from_utf8(&b[*pos..*pos + len]).unwrap());
                *pos += len;
            }
        }
    }
}

#[test]
fn mini_json_parser_round_trips_scalars() {
    let doc = parse_json(r#"{"a": [true, false, null, -1.5e2], "b": "xA"}"#);
    match doc.get("a") {
        Some(Json::Arr(items)) => {
            assert!(matches!(items[0], Json::Bool(true)));
            assert!(matches!(items[1], Json::Bool(false)));
            assert!(matches!(items[2], Json::Null));
            assert_eq!(items[3].as_f64(), Some(-150.0));
        }
        other => panic!("expected array, got {other:?}"),
    }
    assert_eq!(doc.get("b").and_then(Json::as_str), Some("xA"));
}

#[test]
fn chrome_trace_export_is_schema_valid() {
    let _g = session_lock();
    let trace = TraceCollector::enabled();
    {
        let _p = profile::install(&trace);
        let outer = trace.span(|| "test/pipeline".to_string());
        {
            let inner = trace.span(|| "test/pipeline/map".to_string());
            let _k = profile::kernel("itest_chrome");
            let policy = ExecPolicy {
                backend: Backend::Host,
                threads: mlcg_par::pool::global().workers(),
                grain: 16,
            };
            let sink = AtomicU64::new(0);
            parallel_for(&policy, 20_000, |i| {
                sink.fetch_add(i as u64, Ordering::Relaxed);
            });
            inner.finish();
        }
        trace.counter_add("test/edges", 123);
        trace.gauge(|| "test/ratio".to_string(), 0.5);
        outer.finish();
    }
    let report = trace.report();
    assert!(!report.dispatches.is_empty(), "dispatch must be recorded");
    let doc = parse_json(&report.to_chrome_trace());

    let events = match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert!(!events.is_empty());

    // Timestamps are emitted sorted; per-tid B/E pairs balance with the
    // open-span depth never dipping negative.
    let mut last_ts = f64::NEG_INFINITY;
    let mut depth: std::collections::HashMap<u64, i64> = std::collections::HashMap::new();
    let mut begins = 0u64;
    let mut ends = 0u64;
    let mut lane_events = 0u64;
    let mut mem_counter_events = 0u64;
    let mut mem_counter_max = 0.0f64;
    let mut phases_seen = std::collections::HashSet::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("event phase");
        phases_seen.insert(ph.to_string());
        assert!(ev.get("pid").is_some(), "every event carries a pid");
        let tid = ev.get("tid").and_then(Json::as_f64).expect("event tid") as u64;
        if ph != "M" {
            let ts = ev.get("ts").and_then(Json::as_f64).expect("event ts");
            assert!(ts >= 0.0);
            assert!(ts >= last_ts, "timestamps must be nondecreasing");
            last_ts = ts;
        }
        match ph {
            "B" => {
                begins += 1;
                *depth.entry(tid).or_insert(0) += 1;
            }
            "E" => {
                ends += 1;
                let d = depth.entry(tid).or_insert(0);
                *d -= 1;
                assert!(*d >= 0, "E without matching B on tid {tid}");
            }
            "X" => {
                lane_events += 1;
                assert!(tid >= 1, "lane events live on worker tids");
                assert!(ev.get("dur").and_then(Json::as_f64).unwrap_or(-1.0) >= 0.0);
                let wake = ev
                    .get("args")
                    .and_then(|a| a.get("wakeup_us"))
                    .and_then(Json::as_f64)
                    .expect("lane events carry wakeup_us");
                assert!(wake >= 0.0);
            }
            "C" => {
                let name = ev.get("name").and_then(Json::as_str).expect("counter name");
                assert_eq!(name, "heap/live_bytes", "only the memory counter track");
                let bytes = ev
                    .get("args")
                    .and_then(|a| a.get("bytes"))
                    .and_then(Json::as_f64)
                    .expect("counter events carry args.bytes");
                assert!(bytes >= 0.0);
                mem_counter_events += 1;
                mem_counter_max = mem_counter_max.max(bytes);
            }
            "M" | "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert_eq!(begins, ends, "B/E events must balance");
    assert!(begins >= 2, "both spans must be exported");
    assert!(depth.values().all(|&d| d == 0), "every span must close");
    assert!(lane_events >= 2, "per-worker lanes must be exported");
    for ph in ["M", "B", "E", "X", "i", "C"] {
        assert!(phases_seen.contains(ph), "missing phase {ph:?}");
    }

    // Memory counter track: at least one sample per span boundary (the two
    // spans give four), timestamps already checked monotone above, and no
    // live-heap sample can exceed the report's final process peak gauge.
    assert!(
        mem_counter_events >= 4,
        "span boundaries must sample the memory counter track"
    );
    let peak = report
        .gauge("mem/peak_bytes")
        .expect("recording reports carry the mem/peak_bytes gauge");
    assert!(
        mem_counter_max <= peak,
        "live samples ({mem_counter_max}) must not exceed the peak gauge ({peak})"
    );
    assert!(peak > 0.0);
}

#[test]
fn profiling_is_off_outside_installed_sessions() {
    let _g = session_lock();
    assert!(!profile::profiling());
    let trace = TraceCollector::enabled();
    {
        let _p = profile::install(&trace);
        assert!(profile::profiling());
    }
    assert!(!profile::profiling());
}

//! Property-based tests for the parallel substrate: each primitive must
//! agree exactly with its obvious sequential reference under every
//! execution policy (`Serial`, `Host`, `DeviceSim`).
//!
//! Randomized via the dependency-free [`mlcg_par::proplite`] harness; a
//! failing case prints the seed that reproduces it.

use mlcg_par::perm::{invert_permutation, random_permutation};
use mlcg_par::proplite::run_cases;
use mlcg_par::scan::{exclusive_scan, inclusive_scan};
use mlcg_par::sort::{bitonic_sort_pairs, insertion_sort_pairs, par_radix_sort_pairs};
use mlcg_par::{
    parallel_count, parallel_fill, parallel_reduce_max, parallel_reduce_min, parallel_reduce_sum,
    ExecPolicy,
};

#[test]
fn reduce_sum_matches_iterator() {
    run_cases(64, 0xA1, |g| {
        let values = g.vec_u64(2000, 1000);
        let expect: u64 = values.iter().sum();
        for policy in ExecPolicy::all_test_policies() {
            assert_eq!(
                parallel_reduce_sum(&policy, values.len(), |i| values[i]),
                expect
            );
        }
    });
}

#[test]
fn reduce_extrema_match() {
    run_cases(64, 0xA2, |g| {
        let mut values = g.vec_u64(2000, u64::MAX / 2);
        if values.is_empty() {
            values.push(g.below(u64::MAX / 2));
        }
        let max = *values.iter().max().unwrap();
        let min = *values.iter().min().unwrap();
        for policy in ExecPolicy::all_test_policies() {
            assert_eq!(
                parallel_reduce_max(&policy, values.len(), |i| values[i]),
                max
            );
            assert_eq!(
                parallel_reduce_min(&policy, values.len(), |i| values[i]),
                min
            );
        }
    });
}

#[test]
fn count_matches_filter() {
    run_cases(64, 0xA3, |g| {
        let values: Vec<u32> = g.vec_u64(2000, 10).into_iter().map(|v| v as u32).collect();
        let expect = values.iter().filter(|&&v| v.is_multiple_of(3)).count();
        for policy in ExecPolicy::all_test_policies() {
            assert_eq!(
                parallel_count(&policy, values.len(), |i| values[i].is_multiple_of(3)),
                expect
            );
        }
    });
}

#[test]
fn scans_match_reference() {
    run_cases(64, 0xA4, |g| {
        let values = g.vec_u64(3000, 100);
        let mut excl_ref = Vec::with_capacity(values.len());
        let mut incl_ref = Vec::with_capacity(values.len());
        let mut acc = 0u64;
        for &v in &values {
            excl_ref.push(acc);
            acc += v;
            incl_ref.push(acc);
        }
        for policy in ExecPolicy::all_test_policies() {
            let mut a = values.clone();
            let t = exclusive_scan(&policy, &mut a);
            assert_eq!(t, acc);
            assert_eq!(a, excl_ref);
            let mut b = values.clone();
            let t = inclusive_scan(&policy, &mut b);
            assert_eq!(t, acc);
            assert_eq!(b, incl_ref);
        }
    });
}

#[test]
fn radix_sort_matches_std() {
    run_cases(64, 0xA5, |g| {
        let keys = g.vec_u64_any(3000);
        let mut expect = keys.clone();
        expect.sort_unstable();
        for policy in ExecPolicy::all_test_policies() {
            let mut k = keys.clone();
            let mut v: Vec<u32> = (0..keys.len() as u32).collect();
            par_radix_sort_pairs(&policy, &mut k, &mut v);
            assert_eq!(k, expect);
            // Payloads still pair with their original keys.
            for (i, &payload) in v.iter().enumerate() {
                assert_eq!(keys[payload as usize], k[i]);
            }
        }
    });
}

#[test]
fn bitonic_matches_std() {
    run_cases(64, 0xA6, |g| {
        let keys = g.vec_u32_any(200);
        let mut expect = keys.clone();
        expect.sort_unstable();
        let mut k = keys.clone();
        let mut v: Vec<u64> = keys.iter().map(|&x| x as u64).collect();
        let (mut sk, mut sv) = (Vec::new(), Vec::new());
        bitonic_sort_pairs(&mut k, &mut v, &mut sk, &mut sv);
        assert_eq!(k, expect);
        for (&key, &val) in k.iter().zip(&v) {
            assert_eq!(val, key as u64);
        }
    });
}

#[test]
fn insertion_sort_matches_std() {
    run_cases(64, 0xA7, |g| {
        let keys = g.vec_u32_any(64);
        let mut expect = keys.clone();
        expect.sort_unstable();
        let mut k = keys.clone();
        let mut v: Vec<u8> = vec![0; k.len()];
        insertion_sort_pairs(&mut k, &mut v);
        assert_eq!(k, expect);
    });
}

#[test]
fn permutations_are_valid_and_invertible() {
    run_cases(48, 0xA8, |g| {
        let n = g.usize_in(0, 5000);
        let seed = g.u64();
        for policy in ExecPolicy::all_test_policies() {
            let p = random_permutation(&policy, n, seed);
            let mut seen = vec![false; n];
            for &x in &p {
                assert!(!seen[x as usize], "duplicate entry in permutation");
                seen[x as usize] = true;
            }
            let inv = invert_permutation(&policy, &p);
            for i in 0..n {
                assert_eq!(inv[p[i] as usize] as usize, i);
            }
        }
    });
}

#[test]
fn fill_writes_everything() {
    run_cases(48, 0xA9, |g| {
        let n = g.usize_in(0, 5000);
        let value = g.u64() as u32;
        for policy in ExecPolicy::all_test_policies() {
            let mut buf = vec![!value; n];
            parallel_fill(&policy, &mut buf, value);
            assert!(buf.iter().all(|&x| x == value));
        }
    });
}

//! Property-based tests for the parallel substrate: each primitive must
//! agree exactly with its obvious sequential reference under every
//! execution policy.

use mlcg_par::perm::{invert_permutation, random_permutation};
use mlcg_par::scan::{exclusive_scan, inclusive_scan};
use mlcg_par::sort::{bitonic_sort_pairs, insertion_sort_pairs, par_radix_sort_pairs};
use mlcg_par::{
    parallel_count, parallel_fill, parallel_reduce_max, parallel_reduce_min, parallel_reduce_sum,
    ExecPolicy,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reduce_sum_matches_iterator(values in proptest::collection::vec(0u64..1000, 0..2000)) {
        let expect: u64 = values.iter().sum();
        for policy in ExecPolicy::all_test_policies() {
            prop_assert_eq!(parallel_reduce_sum(&policy, values.len(), |i| values[i]), expect);
        }
    }

    #[test]
    fn reduce_extrema_match(values in proptest::collection::vec(0u64..u64::MAX/2, 1..2000)) {
        let max = *values.iter().max().unwrap();
        let min = *values.iter().min().unwrap();
        for policy in ExecPolicy::all_test_policies() {
            prop_assert_eq!(parallel_reduce_max(&policy, values.len(), |i| values[i]), max);
            prop_assert_eq!(parallel_reduce_min(&policy, values.len(), |i| values[i]), min);
        }
    }

    #[test]
    fn count_matches_filter(values in proptest::collection::vec(0u32..10, 0..2000)) {
        let expect = values.iter().filter(|&&v| v % 3 == 0).count();
        for policy in ExecPolicy::all_test_policies() {
            prop_assert_eq!(parallel_count(&policy, values.len(), |i| values[i] % 3 == 0), expect);
        }
    }

    #[test]
    fn scans_match_reference(values in proptest::collection::vec(0u64..100, 0..3000)) {
        let mut excl_ref = Vec::with_capacity(values.len());
        let mut incl_ref = Vec::with_capacity(values.len());
        let mut acc = 0u64;
        for &v in &values {
            excl_ref.push(acc);
            acc += v;
            incl_ref.push(acc);
        }
        for policy in ExecPolicy::all_test_policies() {
            let mut a = values.clone();
            let t = exclusive_scan(&policy, &mut a);
            prop_assert_eq!(t, acc);
            prop_assert_eq!(&a, &excl_ref);
            let mut b = values.clone();
            let t = inclusive_scan(&policy, &mut b);
            prop_assert_eq!(t, acc);
            prop_assert_eq!(&b, &incl_ref);
        }
    }

    #[test]
    fn radix_sort_matches_std(keys in proptest::collection::vec(any::<u64>(), 0..3000)) {
        let mut expect = keys.clone();
        expect.sort_unstable();
        for policy in ExecPolicy::all_test_policies() {
            let mut k = keys.clone();
            let mut v: Vec<u32> = (0..keys.len() as u32).collect();
            par_radix_sort_pairs(&policy, &mut k, &mut v);
            prop_assert_eq!(&k, &expect);
            // Payloads still pair with their original keys.
            for (i, &payload) in v.iter().enumerate() {
                prop_assert_eq!(keys[payload as usize], k[i]);
            }
        }
    }

    #[test]
    fn bitonic_matches_std(keys in proptest::collection::vec(any::<u32>(), 0..200)) {
        let mut expect = keys.clone();
        expect.sort_unstable();
        let mut k = keys.clone();
        let mut v: Vec<u64> = keys.iter().map(|&x| x as u64).collect();
        let (mut sk, mut sv) = (Vec::new(), Vec::new());
        bitonic_sort_pairs(&mut k, &mut v, &mut sk, &mut sv);
        prop_assert_eq!(&k, &expect);
        for (&key, &val) in k.iter().zip(&v) {
            prop_assert_eq!(val, key as u64);
        }
    }

    #[test]
    fn insertion_sort_matches_std(keys in proptest::collection::vec(any::<u32>(), 0..64)) {
        let mut expect = keys.clone();
        expect.sort_unstable();
        let mut k = keys.clone();
        let mut v: Vec<u8> = vec![0; k.len()];
        insertion_sort_pairs(&mut k, &mut v);
        prop_assert_eq!(k, expect);
    }

    #[test]
    fn permutations_are_valid_and_invertible(n in 0usize..5000, seed in any::<u64>()) {
        for policy in ExecPolicy::all_test_policies() {
            let p = random_permutation(&policy, n, seed);
            let mut seen = vec![false; n];
            for &x in &p {
                prop_assert!(!seen[x as usize]);
                seen[x as usize] = true;
            }
            let inv = invert_permutation(&policy, &p);
            for i in 0..n {
                prop_assert_eq!(inv[p[i] as usize] as usize, i);
            }
        }
    }

    #[test]
    fn fill_writes_everything(n in 0usize..5000, value in any::<u32>()) {
        for policy in ExecPolicy::all_test_policies() {
            let mut buf = vec![!value; n];
            parallel_fill(&policy, &mut buf, value);
            prop_assert!(buf.iter().all(|&x| x == value));
        }
    }
}

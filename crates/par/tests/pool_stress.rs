//! Stress tests for the spin-then-park dispatch path.
//!
//! The pool's fast path is a race by construction: the dispatcher publishes
//! an epoch word that workers may observe while spinning, while parking, or
//! while already parked — and the inter-dispatch gap decides which. These
//! tests drive dispatch storms whose gaps *straddle* the spin window so
//! every publish/park interleaving gets exercised, and re-run the pool's
//! behavioral contracts with the window forced to zero (the pure-park path
//! CI machines use via `MLCG_SPIN_US=0`).
//!
//! The spin window is a process-global knob, so tests that change it
//! serialize on a mutex and restore the entry value before releasing it.

use mlcg_par::pool::{set_spin_us, spin_us, ThreadPool};
use mlcg_par::rng::SplitMix64;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Serialize tests that touch the global spin window; restores the previous
/// window on drop.
fn spin_guard(us: u64) -> impl Drop {
    static LOCK: Mutex<()> = Mutex::new(());
    struct Guard {
        prev: u64,
        _g: MutexGuard<'static, ()>,
    }
    impl Drop for Guard {
        fn drop(&mut self) {
            set_spin_us(self.prev);
        }
    }
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = spin_us();
    set_spin_us(us);
    Guard { prev, _g: g }
}

/// 8 submitting threads hammer one 4-participant pool with randomized
/// inter-dispatch sleeps centered on the spin window, so publishes land on
/// spinning, parking, and parked workers in every order. Team widths vary
/// per dispatch to also cover untargeted workers skipping epochs.
fn storm(spin_window_us: u64) {
    let _spin = spin_guard(spin_window_us);
    let pool = Arc::new(ThreadPool::new(4));
    let total = Arc::new(AtomicUsize::new(0));
    let mut expected = 0usize;
    let mut handles = Vec::new();
    for submitter in 0..8u64 {
        let pool = Arc::clone(&pool);
        let total = Arc::clone(&total);
        // Per-submitter expected participant count is deterministic from
        // the seed, so the main thread can sum it without communication.
        let mut rng = SplitMix64::new(0x5707 + submitter);
        for _ in 0..30 {
            expected += (rng.next_u64() % 4 + 1) as usize;
            rng.next_u64(); // the sleep draw, mirrored below
        }
        let mut rng = SplitMix64::new(0x5707 + submitter);
        handles.push(std::thread::spawn(move || {
            for round in 0..30 {
                let threads = (rng.next_u64() % 4 + 1) as usize;
                let ran = AtomicUsize::new(0);
                pool.dispatch(threads, &|_w, claim| {
                    ran.fetch_add(1, Ordering::SeqCst);
                    // A short claim loop so lanes do real shared-counter work.
                    loop {
                        if claim(8) >= 64 {
                            break;
                        }
                    }
                });
                assert_eq!(
                    ran.load(Ordering::SeqCst),
                    threads,
                    "submitter {submitter} round {round}"
                );
                total.fetch_add(threads, Ordering::Relaxed);
                // Sleep 0..~2.4x the spin window (always 0..120µs when the
                // window is 0) so wakeups hit workers mid-spin, mid-park
                // transition, and fully parked.
                let us = rng.next_u64() % (spin_window_us.max(50) * 12 / 5);
                if us > 0 {
                    std::thread::sleep(Duration::from_micros(us));
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(total.load(Ordering::Relaxed), expected);
}

#[test]
fn storm_straddling_default_spin_window() {
    storm(50);
}

#[test]
fn storm_with_tiny_spin_window() {
    // A 5µs window makes "publish lands exactly as the worker gives up
    // spinning and takes the sleep lock" the common case.
    storm(5);
}

#[test]
fn storm_pure_park() {
    storm(0);
}

/// The full behavioral contract suite under `spin = 0`: every wait parks,
/// so this is exactly what `MLCG_SPIN_US=0` (CI smoke) exercises, minus the
/// env plumbing.
#[test]
fn pure_park_passes_the_pool_contract_suite() {
    let _spin = spin_guard(0);
    let pool = ThreadPool::new(4);

    // All participants run, repeatedly (worker reuse).
    for round in 0..50 {
        let count = AtomicUsize::new(0);
        pool.dispatch(4, &|_w, _c| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 4, "round {round}");
    }

    // Claims cover the range exactly once.
    let n = 100_000usize;
    let seen = AtomicUsize::new(0);
    pool.dispatch(4, &|_w, claim| loop {
        let s = claim(64);
        if s >= n {
            break;
        }
        seen.fetch_add((s + 64).min(n) - s, Ordering::Relaxed);
    });
    assert_eq!(seen.load(Ordering::Relaxed), n);

    // Panic containment: payload resumes on the dispatcher, pool survives.
    let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
        pool.dispatch(4, &|wid, _c| {
            if wid == 0 {
                panic!("parked boom");
            }
        });
    }))
    .expect_err("panic must propagate");
    assert_eq!(err.downcast_ref::<&str>(), Some(&"parked boom"));
    let count = AtomicUsize::new(0);
    pool.dispatch(4, &|_w, _c| {
        count.fetch_add(1, Ordering::SeqCst);
    });
    assert_eq!(count.load(Ordering::SeqCst), 4, "pool usable after panic");

    // Concurrent submitters serialize correctly with every wait parked.
    let pool = Arc::new(pool);
    let total = Arc::new(AtomicUsize::new(0));
    let mut handles = vec![];
    for _ in 0..8 {
        let pool = Arc::clone(&pool);
        let total = Arc::clone(&total);
        handles.push(std::thread::spawn(move || {
            for _ in 0..20 {
                pool.dispatch(4, &|_w, _c| {
                    total.fetch_add(1, Ordering::Relaxed);
                });
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(total.load(Ordering::Relaxed), 8 * 20 * 4);
}

/// Dropping pools whose workers are mid-spin or parked must join cleanly —
/// run across windows so shutdown lands in both wait phases.
#[test]
fn drop_joins_across_spin_windows() {
    for window in [0u64, 5, 200] {
        let _spin = spin_guard(window);
        for _ in 0..3 {
            let pool = ThreadPool::new(4);
            let ran = AtomicUsize::new(0);
            pool.dispatch(4, &|_w, _c| {
                ran.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(ran.load(Ordering::SeqCst), 4, "window {window}");
            // Workers are somewhere between spinning and parked right now;
            // drop must not hang or leak either way.
        }
    }
}

#[test]
fn set_spin_us_round_trips() {
    let _spin = spin_guard(17);
    assert_eq!(spin_us(), 17);
    set_spin_us(0);
    assert_eq!(spin_us(), 0);
}

#![warn(missing_docs)]
//! # mlcg-coarsen — multilevel graph coarsening
//!
//! The paper's primary contribution, reproduced in full: parallel
//! fine-to-coarse *mapping* algorithms and parallel *coarse-graph
//! construction* strategies, composed by a multilevel driver.
//!
//! ## Mapping algorithms ([`mapping`])
//!
//! | Method | Paper reference | Notes |
//! |---|---|---|
//! | [`MapMethod::Hec`] | Algorithm 4 | lock-free multi-pass CAS parallelization of Heavy Edge Coarsening |
//! | [`MapMethod::Hec2`] | Algorithm 9 (ext. report) | race-free two-array variant, no 2-cycle collapse |
//! | [`MapMethod::Hec3`] | Algorithm 5 | pseudoforest view: root marking + pointer jumping |
//! | [`MapMethod::Hem`] | Algorithm 10 (ext.) | multi-pass heavy-edge *matching*, H recomputed per pass |
//! | [`MapMethod::MtMetis`] | Algorithms 11–13 (ext.) | HEM plus two-hop matching: leaves, twins, relatives |
//! | [`MapMethod::Gosh`] | Algorithm 15 (ext.) | degree-ordered MIS-style aggregation with a high-degree guard |
//! | [`MapMethod::GoshHec`] | Algorithm 16 (ext.) | new GOSH+HEC hybrid: weighted heavy neighbors, skips high-degree adjacencies |
//! | [`MapMethod::Mis2`] | Algorithm 14 (ext.) | Bell et al. distance-2 maximal independent set aggregation |
//! | [`MapMethod::Suitor`] | future work (§V) | Suitor approximate weighted matching; [`mapping::suitor::b_suitor`] generalizes to b-matching |
//! | [`MapMethod::SeqHec`] / [`MapMethod::SeqHem`] | Algorithms 3 / 2 | sequential references |
//!
//! ## Construction strategies ([`construct`])
//!
//! Vertex-centric construction (Algorithm 6) with sort-based or hash-based
//! per-vertex deduplication and the paper's degree-based deduplication
//! optimization for skewed graphs; SpGEMM `P·A·Pᵀ` construction; and the
//! global-sort baseline.
//!
//! ## Driver ([`multilevel`])
//!
//! Algorithm 1: coarsen to a 50-vertex cutoff, discarding a final graph
//! that collapses below 10 vertices, recording per-level phase timings.

pub mod ace;
pub mod audit;
pub mod construct;
pub mod mapping;
pub mod multilevel;

pub use ace::{ace_coarsen, AceLevel, AceOptions};
pub use audit::audit_hierarchy;
pub use construct::{
    construct_coarse_graph, construct_coarse_graph_in, ConstructMethod, ConstructOptions,
    ConstructWorkspace,
};
pub use mapping::{find_mapping, find_mapping_in, MapMethod, MapStats, MapWorkspace, Mapping};
pub use multilevel::{coarsen, CoarsenOptions, CoarsenStats, Hierarchy, Level};

//! Vertex-centric parallel coarse-graph construction — the paper's
//! Algorithm 6, rebuilt around contention-free counting and scatter.
//!
//! Pipeline (numbering follows the paper):
//! (1)+(2) *fused counting*: the bounds pass `C'` exists only to drive the
//! degree-based deduplication tie-break, so when the skew optimization is
//! off the pipeline runs a single counting traversal; when it is on, the
//! bounds pass doubles as a gather of every adjacency slot's coarse id
//! into `cmap`, so the count and scatter passes read coarse ids
//! sequentially instead of re-chasing `map[adj[e]]`. Counting itself uses
//! per-participant dense histograms merged by a parallel reduction
//! ([`counted_pass`]) instead of global atomic `fetch_add`s — hub
//! aggregates in skewed graphs no longer serialize every worker on one
//! cache line. (3) prefix-scan the counts into offsets `R`. (4) scatter
//! adjacencies and weights into `F`/`X`: ordinary rows bump a shared
//! cursor as before, but *hub* rows (raw count ≥
//! [`HUB_SHARD_MIN_ENTRIES`]) are staged per participant and stitched
//! into disjoint sub-ranges afterwards, so no cursor is contended.
//! (5) per-segment deduplication (sort / hash / hybrid) with pooled
//! scratch. (6) assembly — direct, or via the transpose expansion when
//! the optimization kept a single copy of each edge.
//!
//! Every count, offset, and cursor in the pipeline is bounded by the fine
//! adjacency length, so the whole pipeline is monomorphized over
//! [`CountWord`]: `u32` arrays whenever the adjacency fits 32 bits
//! (mirroring the CSR [`Offsets`] width rule), halving counting traffic,
//! and the scanned degrees become the output offsets without a widening
//! copy.
//!
//! All level-lived scratch (`cprime`, `cnt`, cursors, `cmap`, `F`, `X`,
//! histogram/dedup/staging pools) lives in
//! [`ConstructWorkspace`](super::ConstructWorkspace) and is reused across
//! hierarchy levels by the multilevel driver.

use super::{ConstructOptions, ConstructWorkspace};
use crate::mapping::Mapping;
use mlcg_graph::{Csr, Offsets, VId, Weight};
use mlcg_par::scan::exclusive_scan;
use mlcg_par::sort::seg_sort_pairs;
use mlcg_par::{
    parallel_fold_chunks, parallel_for, parallel_for_chunks, parallel_for_weighted, pool, profile,
    ExecPolicy, TraceCollector,
};
use std::ops::Range;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Per-vertex deduplication flavour (step 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dedup {
    /// Sort the segment, then merge runs in place.
    Sort,
    /// Per-vertex open-addressing hash table accumulating weights.
    Hash,
    /// Per-vertex choice: hash long segments (where duplication dominates),
    /// sort short ones — the paper's future-work hybrid.
    Hybrid,
}

/// Segment length above which [`Dedup::Hybrid`] switches to hashing: long
/// segments come from aggregates with many incident fine edges, exactly
/// where the duplication factor grows. Chosen by a {32, 64, 128, 256,
/// 512} sweep of median hybrid-construct time on rmat-15 LCC and
/// grid-512 with SeqHec mappings — 256 was fastest on both families
/// (rmat 0.0203 s vs 0.0223 s at the old 128; grid 0.0242 s vs 0.0283 s),
/// and at 512 the dedup kernel's modal chunk duration doubled as long
/// hub segments fell back to sorting. Methodology in DESIGN §8.
pub const HYBRID_HASH_CUTOFF: usize = 256;

/// Raw (pre-dedup) row size at which a coarse vertex counts as a *hub*
/// during the scatter: its entries are staged per participant and
/// stitched into disjoint sub-ranges instead of contending on one atomic
/// cursor. Rows this large dominate their chunk regardless, so the extra
/// staging copy is noise next to the serialization it removes.
pub const HUB_SHARD_MIN_ENTRIES: usize = 2048;

/// Per-participant histograms are used for counting when the combined
/// histogram footprint (`n_coarse × participants` words) stays within a
/// small multiple of the traversal size itself; beyond that the memory
/// (and the merge reduction) would outgrow the pass it serves, so
/// counting falls back to atomics.
pub(crate) fn use_histograms(threads: usize, nc: usize, n: usize) -> bool {
    threads > 1 && nc.saturating_mul(threads) <= (4 * n).max(1 << 16)
}

/// Counting word for the pipeline's count/offset/cursor arrays: `u32`
/// when the bounding quantity (the fine adjacency length) fits, `usize`
/// otherwise — the same rule [`Offsets`] applies to CSR offsets.
pub(crate) trait CountWord:
    Copy + Default + Ord + Send + Sync + std::ops::AddAssign + mlcg_par::scan::ScanElem + 'static
{
    /// Atomic counterpart used by the cursor path and the count fallback.
    type Atomic: Sync;
    /// Reinterpret an exclusively borrowed slice as atomics.
    fn as_atomic(s: &mut [Self]) -> &[Self::Atomic];
    /// Relaxed fetch-add; returns the previous value.
    fn fetch_add(a: &Self::Atomic, v: usize) -> usize;
    fn from_usize(x: usize) -> Self;
    fn to_usize(self) -> usize;
    /// This width's buffer set inside the level-reused workspace.
    fn bufs(ws: &mut ConstructWorkspace) -> &mut WordBufs<Self>;
    /// Wrap a scanned offset vector as width-adaptive CSR offsets.
    fn into_offsets(v: Vec<Self>) -> Offsets;
}

impl CountWord for u32 {
    type Atomic = AtomicU32;
    fn as_atomic(s: &mut [Self]) -> &[AtomicU32] {
        mlcg_par::atomic::as_atomic_u32(s)
    }
    fn fetch_add(a: &AtomicU32, v: usize) -> usize {
        a.fetch_add(v as u32, Ordering::Relaxed) as usize
    }
    fn from_usize(x: usize) -> Self {
        x as u32
    }
    fn to_usize(self) -> usize {
        self as usize
    }
    fn bufs(ws: &mut ConstructWorkspace) -> &mut WordBufs<u32> {
        &mut ws.narrow
    }
    fn into_offsets(v: Vec<u32>) -> Offsets {
        Offsets::U32(v)
    }
}

impl CountWord for usize {
    type Atomic = AtomicUsize;
    fn as_atomic(s: &mut [Self]) -> &[AtomicUsize] {
        mlcg_par::atomic::as_atomic_usize(s)
    }
    fn fetch_add(a: &AtomicUsize, v: usize) -> usize {
        a.fetch_add(v, Ordering::Relaxed)
    }
    fn from_usize(x: usize) -> Self {
        x
    }
    fn to_usize(self) -> usize {
        self
    }
    fn bufs(ws: &mut ConstructWorkspace) -> &mut WordBufs<usize> {
        &mut ws.wide
    }
    fn into_offsets(v: Vec<usize>) -> Offsets {
        Offsets::from_usize(v)
    }
}

/// Per-width buffers of the level-reused workspace (see
/// [`ConstructWorkspace`]). Buffers are `clear()`+`resize()`d per use, so
/// capacity persists across levels.
pub(crate) struct WordBufs<W> {
    /// Step-1 coarse-degree upper bounds (skew path only).
    pub(crate) cprime: Vec<W>,
    /// Step-2 counts, scanned in place into the offsets `R` (`nc + 1`).
    pub(crate) cnt: Vec<W>,
    /// Scatter cursors for non-hub rows (and the transpose expansion).
    pub(crate) cursors: Vec<W>,
    /// Transpose-assembly kept-degree scratch.
    pub(crate) deg: Vec<W>,
    /// Per-participant counting histograms, reused across passes/levels.
    pub(crate) hist_pool: Vec<Vec<W>>,
}

impl<W> Default for WordBufs<W> {
    fn default() -> Self {
        WordBufs {
            cprime: Vec::new(),
            cnt: Vec::new(),
            cursors: Vec::new(),
            deg: Vec::new(),
            hist_pool: Vec::new(),
        }
    }
}

/// Pooled per-participant dedup scratch: sort padding buffers and the
/// open-addressing arena, plus a locally accumulated collision count
/// flushed once per pass (the probe loop stays free of shared traffic).
#[derive(Default)]
pub(crate) struct DedupScratch {
    sk: Vec<u32>,
    sv: Vec<Weight>,
    table_k: Vec<u32>,
    table_v: Vec<Weight>,
    collisions: u64,
}

/// Per-participant staging for hub-sharded scatter: entries destined for
/// hub rows (`(hub slot, coarse neighbor, weight)`), plus per-hub counts
/// used to stitch disjoint sub-ranges afterwards.
#[derive(Default)]
pub(crate) struct ScatterStage {
    entries: Vec<(u32, VId, Weight)>,
    counts: Vec<usize>,
}

/// Parallel counting into `out[..nc]` (`out` is sized `nc + 1` so it can
/// be prefix-scanned in place afterwards). `traverse` must call
/// `bump(index, by)` for every counted entry of every position in its
/// range. Strategy: direct writes when serial; per-participant dense
/// histograms (pooled in `pool`) merged by a parallel reduction when the
/// [`use_histograms`] budget allows; atomic `fetch_add` otherwise.
fn counted_pass<W, T>(
    policy: &ExecPolicy,
    n: usize,
    nc: usize,
    out: &mut Vec<W>,
    hist_pool: &mut Vec<Vec<W>>,
    traverse: T,
) where
    W: CountWord,
    T: Fn(&mut dyn FnMut(usize, usize), Range<usize>) + Sync,
{
    out.clear();
    out.resize(nc + 1, W::default());
    let threads = policy.effective_threads(n);
    if threads <= 1 || pool::in_worker() {
        let slice = &mut out[..];
        let mut bump = |cu: usize, by: usize| slice[cu] += W::from_usize(by);
        traverse(&mut bump, 0..n);
        return;
    }
    if use_histograms(threads, nc, n) {
        let pool_m = Mutex::new(std::mem::take(hist_pool));
        let parts = parallel_fold_chunks(
            policy,
            n,
            || {
                let mut h = pool_m.lock().unwrap().pop().unwrap_or_default();
                h.clear();
                h.resize(nc, W::default());
                h
            },
            |h, range| {
                let hs: &mut [W] = h;
                let mut bump = |cu: usize, by: usize| hs[cu] += W::from_usize(by);
                traverse(&mut bump, range);
            },
        );
        {
            let out_base = out.as_mut_ptr() as usize;
            let parts_ref = &parts;
            parallel_for_chunks(policy, nc, move |range| {
                for cu in range {
                    let mut s = W::default();
                    for p in parts_ref {
                        s += p[cu];
                    }
                    // SAFETY: disjoint writes per coarse vertex.
                    unsafe { (out_base as *mut W).add(cu).write(s) };
                }
            });
        }
        let mut back = pool_m.into_inner().unwrap();
        back.extend(parts);
        *hist_pool = back;
    } else {
        let view = W::as_atomic(&mut out[..nc]);
        parallel_for_chunks(policy, n, |range| {
            let mut bump = |cu: usize, by: usize| {
                W::fetch_add(&view[cu], by);
            };
            traverse(&mut bump, range);
        });
    }
}

/// Run Algorithm 6. The trace sink receives `construct/hash_collisions`
/// from the hash-dedup paths and the per-strategy `construct/edges_scanned`
/// accounting; `ws` supplies (and receives back) the level-reused scratch.
pub fn construct(
    policy: &ExecPolicy,
    g: &Csr,
    mapping: &Mapping,
    dedup: Dedup,
    opts: &ConstructOptions,
    trace: &TraceCollector,
    ws: &mut ConstructWorkspace,
) -> Csr {
    // Counts, offsets, and cursors are all bounded by the fine adjacency
    // length, so the narrow pipeline is exact whenever it fits 32 bits.
    if g.adj().len() < u32::MAX as usize {
        construct_impl::<u32>(policy, g, mapping, dedup, opts, trace, ws)
    } else {
        construct_impl::<usize>(policy, g, mapping, dedup, opts, trace, ws)
    }
}

fn construct_impl<W: CountWord>(
    policy: &ExecPolicy,
    g: &Csr,
    mapping: &Mapping,
    dedup: Dedup,
    opts: &ConstructOptions,
    trace: &TraceCollector,
    ws: &mut ConstructWorkspace,
) -> Csr {
    let n = g.n();
    let nc = mapping.n_coarse;
    let map = &mapping.map;
    let adj = g.adj();
    let wgt = g.wgt();
    let xadj = g.offsets();
    let use_opt = g.skew_ratio() > opts.degree_dedup_skew_threshold;
    let _k = profile::kernel("construct");

    // The skew-optimized path traverses the full adjacency three times
    // (fused bounds+gather, count, scatter); the plain path twice — the
    // standalone bounds pass was fused away.
    trace.counter_add(
        "construct/edges_scanned",
        (if use_opt { 3 } else { 2 }) * adj.len() as u64,
    );

    // Borrow the level-reused buffers for the duration of the build; they
    // are restored before returning so later levels reuse the capacity.
    let WordBufs {
        mut cprime,
        mut cnt,
        mut cursors,
        mut deg,
        mut hist_pool,
    } = std::mem::take(W::bufs(ws));
    let mut cmap = std::mem::take(&mut ws.cmap);
    let mut f = std::mem::take(&mut ws.f);
    let mut x = std::mem::take(&mut ws.x);
    let mut dedup_pool = std::mem::take(&mut ws.dedup_pool);
    let mut stage_pool = std::mem::take(&mut ws.stage_pool);

    // Steps 1+2, fused. Without the skew optimization the bounds pass is
    // gone entirely (it existed only to drive `keep`). With it, the
    // bounds pass also gathers each adjacency slot's coarse id into
    // `cmap`, so the count and scatter passes below stream coarse ids
    // sequentially instead of re-chasing two random indirections.
    if use_opt {
        let _k = profile::kernel("bounds");
        cmap.clear();
        cmap.resize(adj.len(), 0);
        let cmap_base = cmap.as_mut_ptr() as usize;
        counted_pass(
            policy,
            n,
            nc,
            &mut cprime,
            &mut hist_pool,
            |bump: &mut dyn FnMut(usize, usize), range: Range<usize>| {
                for u in range {
                    let cu = map[u] as usize;
                    for e in xadj.range(u) {
                        let cv = map[adj[e] as usize];
                        // SAFETY: each adjacency slot has one owning row.
                        unsafe { (cmap_base as *mut u32).add(e).write(cv) };
                        if cv as usize != cu {
                            bump(cu, 1);
                        }
                    }
                }
            },
        );
    }
    // `keep`: with the optimization, store each fine edge only at the end
    // whose aggregate has the smaller estimated degree (aggregate-id ties).
    let cprime_ref: &[W] = &cprime;
    let keep = move |cu: usize, cv: usize| -> bool {
        if !use_opt {
            return true;
        }
        (cprime_ref[cu], cu) < (cprime_ref[cv], cv)
    };
    // Coarse id of the adjacency slot `e`: gathered on the opt path,
    // mapped on the fly otherwise.
    let cmap_ref: &[u32] = &cmap;
    let cid = move |e: usize| -> usize {
        if use_opt {
            cmap_ref[e] as usize
        } else {
            map[adj[e] as usize] as usize
        }
    };

    // Step 2: kept-entry counts per coarse vertex.
    {
        let _k = profile::kernel("count");
        counted_pass(
            policy,
            n,
            nc,
            &mut cnt,
            &mut hist_pool,
            |bump: &mut dyn FnMut(usize, usize), range: Range<usize>| {
                for u in range {
                    let cu = map[u] as usize;
                    for e in xadj.range(u) {
                        let cv = cid(e);
                        if cu != cv && keep(cu, cv) {
                            bump(cu, 1);
                        }
                    }
                }
            },
        );
    }

    // Hub detection on the raw counts, before the scan rewrites them into
    // offsets. Sharding only matters when workers can actually collide.
    let threads = policy.effective_threads(n);
    let mut hubs: Vec<u32> = Vec::new();
    if threads > 1 && !pool::in_worker() {
        for (cu, c) in cnt.iter().enumerate().take(nc) {
            if c.to_usize() >= HUB_SHARD_MIN_ENTRIES {
                hubs.push(cu as u32);
            }
        }
    }

    // Step 3: offsets R (in place; `cnt` is the offsets from here on).
    let total = exclusive_scan(policy, &mut cnt).to_usize();

    // Step 4: scatter adjacencies and weights into F and X. Ordinary rows
    // bump a shared cursor; hub rows are staged per participant.
    f.clear();
    f.resize(total, 0);
    x.clear();
    x.resize(total, 0);
    let nhubs = hubs.len();
    let stages: Vec<ScatterStage>;
    {
        let _k = profile::kernel("scatter");
        cursors.clear();
        cursors.extend_from_slice(&cnt[..nc]);
        let cur = W::as_atomic(&mut cursors);
        let f_base = f.as_mut_ptr() as usize;
        let x_base = x.as_mut_ptr() as usize;
        let hubs_ref: &[u32] = &hubs;
        let pool_m = Mutex::new(std::mem::take(&mut stage_pool));
        stages = parallel_fold_chunks(
            policy,
            n,
            || {
                let mut st = pool_m.lock().unwrap().pop().unwrap_or_default();
                st.entries.clear();
                st.counts.clear();
                st.counts.resize(nhubs, 0);
                st
            },
            |st, range| {
                for u in range {
                    let cu = map[u] as usize;
                    match hubs_ref.binary_search(&(cu as u32)) {
                        // Hub row: stage locally, stitched below.
                        Ok(h) => {
                            for e in xadj.range(u) {
                                let cv = cid(e);
                                if cu != cv && keep(cu, cv) {
                                    st.entries.push((h as u32, cv as VId, wgt[e]));
                                    st.counts[h] += 1;
                                }
                            }
                        }
                        // Ordinary row: bump the shared cursor.
                        Err(_) => {
                            for e in xadj.range(u) {
                                let cv = cid(e);
                                if cu != cv && keep(cu, cv) {
                                    let l = W::fetch_add(&cur[cu], 1);
                                    // SAFETY: cursor slots are globally unique.
                                    unsafe {
                                        (f_base as *mut VId).add(l).write(cv as VId);
                                        (x_base as *mut Weight).add(l).write(wgt[e]);
                                    }
                                }
                            }
                        }
                    }
                }
            },
        );
        stage_pool = pool_m.into_inner().unwrap();
    }

    // Stitch: copy each participant's staged hub entries into its own
    // disjoint sub-range of the hub's row — the sub-ranges tile each row
    // exactly, so there is not a single atomic in the pass.
    if nhubs > 0 {
        let _k = profile::kernel("stitch");
        let nw = stages.len();
        // starts[w * nhubs + h]: where participant w's entries for hub h
        // land — r[hub] plus everything staged by earlier participants.
        // The matrix is participants × hubs, tiny; computing it serially
        // costs less than one dispatch.
        let mut starts = vec![0usize; nw * nhubs];
        for (h, &hub) in hubs.iter().enumerate() {
            let mut at = cnt[hub as usize].to_usize();
            for (w, st) in stages.iter().enumerate() {
                starts[w * nhubs + h] = at;
                at += st.counts[h];
            }
            debug_assert_eq!(
                at,
                cnt[hub as usize + 1].to_usize(),
                "hub sub-ranges must tile the row exactly"
            );
        }
        let total_staged: usize = stages.iter().map(|s| s.entries.len()).sum();
        let f_base = f.as_mut_ptr() as usize;
        let x_base = x.as_mut_ptr() as usize;
        let stages_ref: &[ScatterStage] = &stages;
        let starts_ref: &[usize] = &starts;
        parallel_for_weighted(policy, total_staged, nw, move |w| {
            let mut at: Vec<usize> = starts_ref[w * nhubs..(w + 1) * nhubs].to_vec();
            for &(h, cv, wt) in &stages_ref[w].entries {
                let p = at[h as usize];
                at[h as usize] = p + 1;
                // SAFETY: every (participant, hub) sub-range is disjoint.
                unsafe {
                    (f_base as *mut VId).add(p).write(cv);
                    (x_base as *mut Weight).add(p).write(wt);
                }
            }
        });
    }
    for st in stages {
        stage_pool.push(st);
    }

    // Step 5: per-coarse-vertex deduplication; deg[cu] = deduped count,
    // with the survivors compacted to the front of each segment. The
    // direct path's degrees become the output offsets, so they live in a
    // fresh allocation; the transpose path's are workspace scratch.
    let mut deg_out: Vec<W> = if use_opt {
        Vec::new()
    } else {
        vec![W::default(); nc + 1]
    };
    if use_opt {
        deg.clear();
        deg.resize(nc + 1, W::default());
    }
    {
        let deg_slice: &mut [W] = if use_opt { &mut deg } else { &mut deg_out };
        let _k = profile::kernel("dedup");
        let f_base = f.as_mut_ptr() as usize;
        let x_base = x.as_mut_ptr() as usize;
        let deg_base = deg_slice.as_mut_ptr() as usize;
        let r_ref: &[W] = &cnt;
        let device = policy.is_device();
        let pool_m = Mutex::new(std::mem::take(&mut dedup_pool));
        let used = parallel_fold_chunks(
            policy,
            nc,
            || pool_m.lock().unwrap().pop().unwrap_or_default(),
            |sc: &mut DedupScratch, range| {
                for cu in range {
                    let (s, e) = (r_ref[cu].to_usize(), r_ref[cu + 1].to_usize());
                    // SAFETY: coarse-vertex segments are disjoint.
                    let (keys, vals) = unsafe {
                        (
                            std::slice::from_raw_parts_mut((f_base as *mut VId).add(s), e - s),
                            std::slice::from_raw_parts_mut((x_base as *mut Weight).add(s), e - s),
                        )
                    };
                    let k = match dedup {
                        Dedup::Sort => dedup_sort(device, keys, vals, &mut sc.sk, &mut sc.sv),
                        Dedup::Hash => dedup_hash(
                            keys,
                            vals,
                            &mut sc.table_k,
                            &mut sc.table_v,
                            &mut sc.collisions,
                        ),
                        Dedup::Hybrid => {
                            if keys.len() > HYBRID_HASH_CUTOFF {
                                dedup_hash(
                                    keys,
                                    vals,
                                    &mut sc.table_k,
                                    &mut sc.table_v,
                                    &mut sc.collisions,
                                )
                            } else {
                                dedup_sort(device, keys, vals, &mut sc.sk, &mut sc.sv)
                            }
                        }
                    };
                    // SAFETY: one write per coarse vertex.
                    unsafe { (deg_base as *mut W).add(cu).write(W::from_usize(k)) };
                }
            },
        );
        let mut coll = 0u64;
        let mut back = pool_m.into_inner().unwrap();
        for mut sc in used {
            coll += sc.collisions;
            sc.collisions = 0;
            back.push(sc);
        }
        dedup_pool = back;
        trace.counter_add("construct/hash_collisions", coll);
    }

    // Step 6: final assembly.
    let result = if use_opt {
        assemble_with_transpose::<W>(
            policy,
            nc,
            &cnt,
            &f,
            &x,
            &deg,
            &mut cursors,
            &mut hist_pool,
            &mut dedup_pool,
        )
    } else {
        assemble_direct::<W>(policy, nc, &cnt, &f, &x, deg_out)
    };

    let bufs = W::bufs(ws);
    bufs.cprime = cprime;
    bufs.cnt = cnt;
    bufs.cursors = cursors;
    bufs.deg = deg;
    bufs.hist_pool = hist_pool;
    ws.cmap = cmap;
    ws.f = f;
    ws.x = x;
    ws.dedup_pool = dedup_pool;
    ws.stage_pool = stage_pool;
    result
}

/// Sort the segment and merge equal-neighbor runs; returns the deduped
/// length. Weights of duplicates are summed.
fn dedup_sort(
    device: bool,
    keys: &mut [u32],
    vals: &mut [Weight],
    sk: &mut Vec<u32>,
    sv: &mut Vec<Weight>,
) -> usize {
    seg_sort_pairs(device, keys, vals, sk, sv);
    let mut out = 0usize;
    let mut i = 0usize;
    while i < keys.len() {
        let v = keys[i];
        let mut w = vals[i];
        i += 1;
        while i < keys.len() && keys[i] == v {
            w += vals[i];
            i += 1;
        }
        keys[out] = v;
        vals[out] = w;
        out += 1;
    }
    out
}

/// Open-addressing accumulate-by-key; the compacted survivors are then
/// sorted so the output CSR keeps sorted adjacency (the dominant cost —
/// deduplicating the full segment — is still hashing). `collisions` counts
/// probe steps past an occupied slot holding a *different* key.
fn dedup_hash(
    keys: &mut [u32],
    vals: &mut [Weight],
    table_k: &mut Vec<u32>,
    table_v: &mut Vec<Weight>,
    collisions: &mut u64,
) -> usize {
    const EMPTY: u32 = u32::MAX;
    let len = keys.len();
    if len <= 1 {
        return len;
    }
    let cap = (2 * len).next_power_of_two();
    table_k.clear();
    table_k.resize(cap, EMPTY);
    table_v.clear();
    table_v.resize(cap, 0);
    let mask = cap - 1;
    let mut distinct = 0usize;
    for i in 0..len {
        let key = keys[i];
        let mut slot = (mlcg_par::rng::mix(key as u64) as usize) & mask;
        loop {
            if table_k[slot] == EMPTY {
                table_k[slot] = key;
                table_v[slot] = vals[i];
                distinct += 1;
                break;
            }
            if table_k[slot] == key {
                table_v[slot] += vals[i];
                break;
            }
            *collisions += 1;
            slot = (slot + 1) & mask;
        }
    }
    let mut out = 0usize;
    for slot in 0..cap {
        if table_k[slot] != EMPTY {
            keys[out] = table_k[slot];
            vals[out] = table_v[slot];
            out += 1;
        }
    }
    debug_assert_eq!(out, distinct);
    mlcg_par::sort::insertion_or_std_sort(&mut keys[..out], &mut vals[..out]);
    out
}

/// Both copies of every fine edge were kept: the deduped segments *are*
/// the coarse rows; compact them. The scanned degrees become the output
/// offsets without a widening copy (`U32` when the pipeline ran narrow).
fn assemble_direct<W: CountWord>(
    policy: &ExecPolicy,
    nc: usize,
    r: &[W],
    f: &[VId],
    x: &[Weight],
    mut deg: Vec<W>,
) -> Csr {
    let _k = profile::kernel("assemble");
    let m2 = exclusive_scan(policy, &mut deg).to_usize();
    let mut adj: Vec<VId> = vec![0; m2];
    let mut wgt: Vec<Weight> = vec![0; m2];
    {
        let adj_base = adj.as_mut_ptr() as usize;
        let wgt_base = wgt.as_mut_ptr() as usize;
        let deg_ref: &[W] = &deg;
        parallel_for(policy, nc, move |cu| {
            let src = r[cu].to_usize();
            let dst = deg_ref[cu].to_usize();
            let len = deg_ref[cu + 1].to_usize() - dst;
            // SAFETY: destination rows are disjoint.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    f.as_ptr().add(src),
                    (adj_base as *mut VId).add(dst),
                    len,
                );
                std::ptr::copy_nonoverlapping(
                    x.as_ptr().add(src),
                    (wgt_base as *mut Weight).add(dst),
                    len,
                );
            }
        });
    }
    Csr::from_offsets(W::into_offsets(deg), adj, wgt)
}

/// The optimization kept each coarse edge exactly once; emit both `⟨u,v⟩`
/// and `⟨v,u⟩` (`GraphConsWithTrans`), then sort each final row. The
/// both-direction count reuses the contention-free [`counted_pass`].
#[allow(clippy::too_many_arguments)]
fn assemble_with_transpose<W: CountWord>(
    policy: &ExecPolicy,
    nc: usize,
    r: &[W],
    f: &[VId],
    x: &[Weight],
    deg: &[W],
    cursors: &mut Vec<W>,
    hist_pool: &mut Vec<Vec<W>>,
    dedup_pool: &mut Vec<DedupScratch>,
) -> Csr {
    let _k = profile::kernel("assemble_t");
    // Count both directions.
    let mut deg2: Vec<W> = Vec::new();
    counted_pass(
        policy,
        nc,
        nc,
        &mut deg2,
        hist_pool,
        |bump: &mut dyn FnMut(usize, usize), range: Range<usize>| {
            for cu in range {
                let s = r[cu].to_usize();
                let k = deg[cu].to_usize();
                bump(cu, k);
                for &cv in &f[s..s + k] {
                    bump(cv as usize, 1);
                }
            }
        },
    );
    let m2 = exclusive_scan(policy, &mut deg2).to_usize();
    let mut adj: Vec<VId> = vec![0; m2];
    let mut wgt: Vec<Weight> = vec![0; m2];
    {
        cursors.clear();
        cursors.extend_from_slice(&deg2[..nc]);
        let cur = W::as_atomic(cursors);
        let adj_base = adj.as_mut_ptr() as usize;
        let wgt_base = wgt.as_mut_ptr() as usize;
        parallel_for(policy, nc, move |cu| {
            let s = r[cu].to_usize();
            let k = deg[cu].to_usize();
            for i in 0..k {
                let (cv, w) = (f[s + i] as usize, x[s + i]);
                // SAFETY: cursor slots are globally unique.
                unsafe {
                    let p = W::fetch_add(&cur[cu], 1);
                    (adj_base as *mut VId).add(p).write(cv as VId);
                    (wgt_base as *mut Weight).add(p).write(w);
                    let q = W::fetch_add(&cur[cv], 1);
                    (adj_base as *mut VId).add(q).write(cu as VId);
                    (wgt_base as *mut Weight).add(q).write(w);
                }
            }
        });
    }
    // Sort each final row (entries are unique by construction); the
    // pooled dedup scratch supplies the padding buffers.
    {
        let adj_base = adj.as_mut_ptr() as usize;
        let wgt_base = wgt.as_mut_ptr() as usize;
        let deg2_ref: &[W] = &deg2;
        let device = policy.is_device();
        let pool_m = Mutex::new(std::mem::take(dedup_pool));
        let used = parallel_fold_chunks(
            policy,
            nc,
            || pool_m.lock().unwrap().pop().unwrap_or_default(),
            |sc: &mut DedupScratch, range| {
                for cu in range {
                    let (s, e) = (deg2_ref[cu].to_usize(), deg2_ref[cu + 1].to_usize());
                    // SAFETY: rows are disjoint.
                    let (keys, vals) = unsafe {
                        (
                            std::slice::from_raw_parts_mut((adj_base as *mut VId).add(s), e - s),
                            std::slice::from_raw_parts_mut((wgt_base as *mut Weight).add(s), e - s),
                        )
                    };
                    seg_sort_pairs(device, keys, vals, &mut sc.sk, &mut sc.sv);
                }
            },
        );
        let mut back = pool_m.into_inner().unwrap();
        back.extend(used);
        *dedup_pool = back;
    }
    Csr::from_offsets(W::into_offsets(deg2), adj, wgt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::testkit;
    use crate::mapping::Mapping;
    use mlcg_graph::builder::from_edges_weighted;
    use mlcg_graph::generators as gen;

    fn manual_mapping(map: Vec<u32>) -> Mapping {
        let n_coarse = (*map.iter().max().unwrap() + 1) as usize;
        let m = Mapping { map, n_coarse };
        m.validate().unwrap();
        m
    }

    /// Shadows `super::construct` with the untraced, fresh-workspace form
    /// the tests use.
    fn construct(
        policy: &ExecPolicy,
        g: &Csr,
        mapping: &Mapping,
        dedup: Dedup,
        opts: &ConstructOptions,
    ) -> Csr {
        super::construct(
            policy,
            g,
            mapping,
            dedup,
            opts,
            &TraceCollector::disabled(),
            &mut ConstructWorkspace::new(),
        )
    }

    #[test]
    fn tiny_known_coarse_graph() {
        // Path 0-1-2-3 with weights 5,3,7; aggregates {0,1} and {2,3}.
        let g = from_edges_weighted(4, &[(0, 1, 5), (1, 2, 3), (2, 3, 7)]);
        let mapping = manual_mapping(vec![0, 0, 1, 1]);
        for dedup in [Dedup::Sort, Dedup::Hash] {
            let c = construct(
                &ExecPolicy::serial(),
                &g,
                &mapping,
                dedup,
                &ConstructOptions::default(),
            );
            assert_eq!(c.n(), 2);
            assert_eq!(c.m(), 1);
            assert_eq!(c.find_edge(0, 1), Some(3), "{dedup:?}");
        }
    }

    #[test]
    fn parallel_weight_merge() {
        // Two aggregates joined by multiple fine edges: weights must sum.
        let g = from_edges_weighted(
            6,
            &[
                (0, 3, 1),
                (1, 4, 2),
                (2, 5, 4),
                (0, 1, 9),
                (1, 2, 9),
                (3, 4, 9),
                (4, 5, 9),
            ],
        );
        let mapping = manual_mapping(vec![0, 0, 0, 1, 1, 1]);
        let c = construct(
            &ExecPolicy::serial(),
            &g,
            &mapping,
            Dedup::Sort,
            &ConstructOptions::default(),
        );
        assert_eq!(c.find_edge(0, 1), Some(7), "1+2+4 parallel fine edges");
    }

    #[test]
    fn all_methods_agree_on_battery() {
        for (name, g) in crate::mapping::testkit::battery() {
            if g.n() < 2 {
                continue;
            }
            let mapping = testkit::mapped(&g, 5);
            if mapping.n_coarse < 1 {
                continue;
            }
            testkit::cross_check(&g, &mapping);
            let _ = name;
        }
    }

    #[test]
    fn identity_mapping_reproduces_graph() {
        let g = gen::grid2d(8, 8);
        let mapping = manual_mapping((0..g.n() as u32).collect());
        for threshold in [0.0, f64::INFINITY] {
            let c = construct(
                &ExecPolicy::serial(),
                &g,
                &mapping,
                Dedup::Sort,
                &ConstructOptions {
                    method: super::super::ConstructMethod::Sort,
                    degree_dedup_skew_threshold: threshold,
                },
            );
            assert_eq!(c.offsets(), g.offsets());
            assert_eq!(c.adj(), g.adj());
            assert_eq!(c.wgt(), g.wgt());
        }
    }

    #[test]
    fn collapse_to_single_vertex_yields_empty_graph() {
        let g = gen::complete(6);
        let mapping = manual_mapping(vec![0; 6]);
        let c = construct(
            &ExecPolicy::serial(),
            &g,
            &mapping,
            Dedup::Hash,
            &ConstructOptions::default(),
        );
        assert_eq!(c.n(), 1);
        assert_eq!(c.m(), 0);
        c.validate().unwrap();
    }

    #[test]
    fn device_policy_produces_same_graph() {
        let (g, _) = mlcg_graph::cc::largest_component(&gen::rmat(9, 8, 0.57, 0.19, 0.19, 3));
        let mapping = testkit::mapped(&g, 7);
        let serial = construct(
            &ExecPolicy::serial(),
            &g,
            &mapping,
            Dedup::Sort,
            &ConstructOptions::default(),
        );
        for policy in ExecPolicy::all_test_policies() {
            for dedup in [Dedup::Sort, Dedup::Hash] {
                let c = construct(&policy, &g, &mapping, dedup, &ConstructOptions::default());
                assert_eq!(c, serial, "{policy} {dedup:?}");
            }
        }
    }

    #[test]
    fn skewed_graph_triggers_opt_and_matches_plain() {
        let g = gen::star(200); // skew >> 10 triggers the optimization
        let mapping = manual_mapping(
            (0..200u32)
                .map(|u| if u == 0 { 0 } else { 1 + (u - 1) / 4 })
                .collect(),
        );
        let opt = construct(
            &ExecPolicy::serial(),
            &g,
            &mapping,
            Dedup::Sort,
            &ConstructOptions {
                method: super::super::ConstructMethod::Sort,
                degree_dedup_skew_threshold: 10.0,
            },
        );
        let plain = construct(
            &ExecPolicy::serial(),
            &g,
            &mapping,
            Dedup::Sort,
            &ConstructOptions {
                method: super::super::ConstructMethod::Sort,
                degree_dedup_skew_threshold: f64::INFINITY,
            },
        );
        assert_eq!(opt, plain);
        opt.validate().unwrap();
    }

    #[test]
    fn hub_sharded_scatter_matches_serial() {
        // A star big enough that the hub aggregate's raw count crosses
        // HUB_SHARD_MIN_ENTRIES under every parallel policy, in both the
        // plain (both copies) and skew-optimized (single copy) paths.
        let n = 4 * HUB_SHARD_MIN_ENTRIES;
        let g = gen::star(n);
        let mapping = manual_mapping(
            (0..n as u32)
                .map(|u| if u == 0 { 0 } else { 1 + (u - 1) / 8 })
                .collect(),
        );
        for threshold in [10.0, f64::INFINITY] {
            let opts = ConstructOptions {
                method: super::super::ConstructMethod::Sort,
                degree_dedup_skew_threshold: threshold,
            };
            let serial = construct(&ExecPolicy::serial(), &g, &mapping, Dedup::Sort, &opts);
            serial.validate().unwrap();
            for policy in ExecPolicy::all_test_policies() {
                for dedup in [Dedup::Sort, Dedup::Hash, Dedup::Hybrid] {
                    let c = construct(&policy, &g, &mapping, dedup, &opts);
                    assert_eq!(c, serial, "{policy} {dedup:?} thr={threshold}");
                }
            }
        }
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        // Run two *different* graphs through one workspace, interleaved
        // with fresh-workspace builds: reuse must never leak state.
        let (g1, _) = mlcg_graph::cc::largest_component(&gen::rmat(9, 8, 0.57, 0.19, 0.19, 3));
        let g2 = gen::grid2d(20, 20);
        let mut ws = ConstructWorkspace::new();
        for g in [&g1, &g2, &g1] {
            let mapping = testkit::mapped(g, 7);
            let opts = ConstructOptions::default();
            for dedup in [Dedup::Sort, Dedup::Hash, Dedup::Hybrid] {
                let fresh = construct(&ExecPolicy::host(), g, &mapping, dedup, &opts);
                let reused = super::construct(
                    &ExecPolicy::host(),
                    g,
                    &mapping,
                    dedup,
                    &opts,
                    &TraceCollector::disabled(),
                    &mut ws,
                );
                assert_eq!(fresh, reused, "{dedup:?}");
            }
        }
    }
}

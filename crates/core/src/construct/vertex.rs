//! Vertex-centric parallel coarse-graph construction — the paper's
//! Algorithm 6.
//!
//! Six steps: (1) estimate coarse-degree upper bounds `C'`; (2) count the
//! adjacency entries each coarse vertex will receive, optionally keeping
//! each undirected fine edge only at the endpoint whose aggregate has the
//! *smaller* upper-bound degree (the degree-based deduplication
//! optimization for skewed graphs — ties broken by aggregate identifier so
//! the choice is consistent per aggregate pair); (3) prefix-sum the counts
//! into offsets `R`; (4) scatter adjacencies and weights into the
//! intermediate CSR arrays `F`/`X`; (5) deduplicate each coarse vertex's
//! segment (`DedupWithWts`) by sorting (bitonic under the device-sim
//! policy, pdq/insertion on the host) or by per-vertex hash tables; (6)
//! assemble the final CSR — directly when both edge copies were kept, or
//! via the transpose expansion (`GraphConsWithTrans`) when the
//! optimization kept a single copy.

use super::ConstructOptions;
use crate::mapping::Mapping;
use mlcg_graph::{Csr, VId, Weight};
use mlcg_par::atomic::as_atomic_usize;
use mlcg_par::scan::exclusive_scan;
use mlcg_par::sort::seg_sort_pairs;
use mlcg_par::{parallel_for, parallel_for_chunks, profile, ExecPolicy, TraceCollector};
use std::sync::atomic::Ordering;

/// Per-vertex deduplication flavour (step 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dedup {
    /// Sort the segment, then merge runs in place.
    Sort,
    /// Per-vertex open-addressing hash table accumulating weights.
    Hash,
    /// Per-vertex choice: hash long segments (where duplication dominates),
    /// sort short ones — the paper's future-work hybrid.
    Hybrid,
}

/// Segment length above which [`Dedup::Hybrid`] switches to hashing: long
/// segments come from aggregates with many incident fine edges, exactly
/// where the duplication factor grows.
pub const HYBRID_HASH_CUTOFF: usize = 128;

/// Run Algorithm 6. The trace sink receives the `construct/hash_collisions`
/// counter from the hash-dedup paths (aggregated per worker chunk, so the
/// probing loop itself stays free of shared-state traffic).
pub fn construct(
    policy: &ExecPolicy,
    g: &Csr,
    mapping: &Mapping,
    dedup: Dedup,
    opts: &ConstructOptions,
    trace: &TraceCollector,
) -> Csr {
    let n = g.n();
    let nc = mapping.n_coarse;
    let map = &mapping.map;
    let use_opt = g.skew_ratio() > opts.degree_dedup_skew_threshold;
    let _k = profile::kernel("construct");

    // Step 1: coarse-degree upper bounds C'.
    let mut cprime = vec![0usize; nc];
    {
        let _k = profile::kernel("bounds");
        let view = as_atomic_usize(&mut cprime);
        parallel_for(policy, n, |u| {
            let cu = map[u] as usize;
            for &v in g.neighbors(u as VId) {
                if map[v as usize] as usize != cu {
                    view[cu].fetch_add(1, Ordering::Relaxed);
                }
            }
        });
    }
    // `keep`: with the optimization, store each fine edge only at the end
    // whose aggregate has the smaller estimated degree (aggregate-id ties).
    let cprime_ref = &cprime;
    let keep = move |cu: usize, cv: usize| -> bool {
        if !use_opt {
            return true;
        }
        (cprime_ref[cu], cu) < (cprime_ref[cv], cv)
    };

    // Step 2: kept-entry counts per coarse vertex.
    let mut cnt = vec![0usize; nc + 1];
    {
        let _k = profile::kernel("count");
        let view = as_atomic_usize(&mut cnt[..nc]);
        parallel_for(policy, n, |u| {
            let cu = map[u] as usize;
            for &v in g.neighbors(u as VId) {
                let cv = map[v as usize] as usize;
                if cu != cv && keep(cu, cv) {
                    view[cu].fetch_add(1, Ordering::Relaxed);
                }
            }
        });
    }
    // Step 3: offsets R.
    let total = exclusive_scan(policy, &mut cnt);
    let r = cnt; // nc + 1 offsets

    // Step 4: scatter adjacencies and weights into F and X.
    let mut f: Vec<u32> = vec![0; total];
    let mut x: Vec<Weight> = vec![0; total];
    {
        let _k = profile::kernel("scatter");
        let mut cursors = r[..nc].to_vec();
        let cur = as_atomic_usize(&mut cursors);
        let f_base = f.as_mut_ptr() as usize;
        let x_base = x.as_mut_ptr() as usize;
        parallel_for(policy, n, move |u| {
            let cu = map[u] as usize;
            for (v, w) in g.edges(u as VId) {
                let cv = map[v as usize] as usize;
                if cu != cv && keep(cu, cv) {
                    let l = cur[cu].fetch_add(1, Ordering::Relaxed);
                    // SAFETY: cursor slots are globally unique.
                    unsafe {
                        (f_base as *mut u32).add(l).write(cv as u32);
                        (x_base as *mut Weight).add(l).write(w);
                    }
                }
            }
        });
    }

    // Step 5: per-coarse-vertex deduplication; deg[cu] = deduped count,
    // with the survivors compacted to the front of each segment.
    let mut deg = vec![0usize; nc + 1];
    {
        let _k = profile::kernel("dedup");
        let f_base = f.as_mut_ptr() as usize;
        let x_base = x.as_mut_ptr() as usize;
        let deg_base = deg.as_mut_ptr() as usize;
        let r_ref = &r;
        let device = policy.is_device();
        parallel_for_chunks(policy, nc, move |range| {
            // Reusable per-chunk scratch (bitonic padding / hash tables).
            let mut sk: Vec<u32> = Vec::new();
            let mut sv: Vec<Weight> = Vec::new();
            let mut table_k: Vec<u32> = Vec::new();
            let mut table_v: Vec<Weight> = Vec::new();
            // Collisions are accumulated locally and flushed once per chunk
            // so the probe loop has no shared-state traffic.
            let mut collisions = 0u64;
            for cu in range {
                let (s, e) = (r_ref[cu], r_ref[cu + 1]);
                // SAFETY: coarse-vertex segments are disjoint.
                let (keys, vals) = unsafe {
                    (
                        std::slice::from_raw_parts_mut((f_base as *mut u32).add(s), e - s),
                        std::slice::from_raw_parts_mut((x_base as *mut Weight).add(s), e - s),
                    )
                };
                let k = match dedup {
                    Dedup::Sort => dedup_sort(device, keys, vals, &mut sk, &mut sv),
                    Dedup::Hash => {
                        dedup_hash(keys, vals, &mut table_k, &mut table_v, &mut collisions)
                    }
                    Dedup::Hybrid => {
                        if keys.len() > HYBRID_HASH_CUTOFF {
                            dedup_hash(keys, vals, &mut table_k, &mut table_v, &mut collisions)
                        } else {
                            dedup_sort(device, keys, vals, &mut sk, &mut sv)
                        }
                    }
                };
                // SAFETY: one write per coarse vertex.
                unsafe {
                    (deg_base as *mut usize).add(cu).write(k);
                }
            }
            trace.counter_add("construct/hash_collisions", collisions);
        });
    }

    // Step 6: final assembly.
    if use_opt {
        assemble_with_transpose(policy, nc, &r, &f, &x, deg)
    } else {
        assemble_direct(policy, nc, &r, &f, &x, deg)
    }
}

/// Sort the segment and merge equal-neighbor runs; returns the deduped
/// length. Weights of duplicates are summed.
fn dedup_sort(
    device: bool,
    keys: &mut [u32],
    vals: &mut [Weight],
    sk: &mut Vec<u32>,
    sv: &mut Vec<Weight>,
) -> usize {
    seg_sort_pairs(device, keys, vals, sk, sv);
    let mut out = 0usize;
    let mut i = 0usize;
    while i < keys.len() {
        let v = keys[i];
        let mut w = vals[i];
        i += 1;
        while i < keys.len() && keys[i] == v {
            w += vals[i];
            i += 1;
        }
        keys[out] = v;
        vals[out] = w;
        out += 1;
    }
    out
}

/// Open-addressing accumulate-by-key; the compacted survivors are then
/// sorted so the output CSR keeps sorted adjacency (the dominant cost —
/// deduplicating the full segment — is still hashing). `collisions` counts
/// probe steps past an occupied slot holding a *different* key.
fn dedup_hash(
    keys: &mut [u32],
    vals: &mut [Weight],
    table_k: &mut Vec<u32>,
    table_v: &mut Vec<Weight>,
    collisions: &mut u64,
) -> usize {
    const EMPTY: u32 = u32::MAX;
    let len = keys.len();
    if len <= 1 {
        return len;
    }
    let cap = (2 * len).next_power_of_two();
    table_k.clear();
    table_k.resize(cap, EMPTY);
    table_v.clear();
    table_v.resize(cap, 0);
    let mask = cap - 1;
    let mut distinct = 0usize;
    for i in 0..len {
        let key = keys[i];
        let mut slot = (mlcg_par::rng::mix(key as u64) as usize) & mask;
        loop {
            if table_k[slot] == EMPTY {
                table_k[slot] = key;
                table_v[slot] = vals[i];
                distinct += 1;
                break;
            }
            if table_k[slot] == key {
                table_v[slot] += vals[i];
                break;
            }
            *collisions += 1;
            slot = (slot + 1) & mask;
        }
    }
    let mut out = 0usize;
    for slot in 0..cap {
        if table_k[slot] != EMPTY {
            keys[out] = table_k[slot];
            vals[out] = table_v[slot];
            out += 1;
        }
    }
    debug_assert_eq!(out, distinct);
    mlcg_par::sort::insertion_or_std_sort(&mut keys[..out], &mut vals[..out]);
    out
}

/// Both copies of every fine edge were kept: the deduped segments *are*
/// the coarse rows; compact them.
fn assemble_direct(
    policy: &ExecPolicy,
    nc: usize,
    r: &[usize],
    f: &[u32],
    x: &[Weight],
    mut deg: Vec<usize>,
) -> Csr {
    let _k = profile::kernel("assemble");
    let m2 = exclusive_scan(policy, &mut deg);
    let xadj = deg;
    let mut adj: Vec<u32> = vec![0; m2];
    let mut wgt: Vec<Weight> = vec![0; m2];
    {
        let adj_base = adj.as_mut_ptr() as usize;
        let wgt_base = wgt.as_mut_ptr() as usize;
        let xadj_ref = &xadj;
        parallel_for(policy, nc, move |cu| {
            let src = r[cu];
            let dst = xadj_ref[cu];
            let len = xadj_ref[cu + 1] - dst;
            // SAFETY: destination rows are disjoint.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    f.as_ptr().add(src),
                    (adj_base as *mut u32).add(dst),
                    len,
                );
                std::ptr::copy_nonoverlapping(
                    x.as_ptr().add(src),
                    (wgt_base as *mut Weight).add(dst),
                    len,
                );
            }
        });
    }
    Csr::from_parts(xadj, adj, wgt)
}

/// The optimization kept each coarse edge exactly once; emit both `⟨u,v⟩`
/// and `⟨v,u⟩` (`GraphConsWithTrans`), then sort each final row.
fn assemble_with_transpose(
    policy: &ExecPolicy,
    nc: usize,
    r: &[usize],
    f: &[u32],
    x: &[Weight],
    deg: Vec<usize>,
) -> Csr {
    let _k = profile::kernel("assemble_t");
    // Count both directions.
    let mut deg2 = vec![0usize; nc + 1];
    {
        let view = as_atomic_usize(&mut deg2[..nc]);
        let deg_ref = &deg;
        parallel_for(policy, nc, |cu| {
            let s = r[cu];
            let k = deg_ref[cu];
            view[cu].fetch_add(k, Ordering::Relaxed);
            for &cv in &f[s..s + k] {
                view[cv as usize].fetch_add(1, Ordering::Relaxed);
            }
        });
    }
    let m2 = exclusive_scan(policy, &mut deg2);
    let xadj = deg2;
    let mut adj: Vec<u32> = vec![0; m2];
    let mut wgt: Vec<Weight> = vec![0; m2];
    {
        let mut cursors = xadj[..nc].to_vec();
        let cur = as_atomic_usize(&mut cursors);
        let adj_base = adj.as_mut_ptr() as usize;
        let wgt_base = wgt.as_mut_ptr() as usize;
        let deg_ref = &deg;
        parallel_for(policy, nc, move |cu| {
            let s = r[cu];
            let k = deg_ref[cu];
            for i in 0..k {
                let (cv, w) = (f[s + i] as usize, x[s + i]);
                // SAFETY: cursor slots are globally unique.
                unsafe {
                    let p = cur[cu].fetch_add(1, Ordering::Relaxed);
                    (adj_base as *mut u32).add(p).write(cv as u32);
                    (wgt_base as *mut Weight).add(p).write(w);
                    let q = cur[cv].fetch_add(1, Ordering::Relaxed);
                    (adj_base as *mut u32).add(q).write(cu as u32);
                    (wgt_base as *mut Weight).add(q).write(w);
                }
            }
        });
    }
    // Sort each final row (entries are unique by construction).
    {
        let adj_base = adj.as_mut_ptr() as usize;
        let wgt_base = wgt.as_mut_ptr() as usize;
        let xadj_ref = &xadj;
        let device = policy.is_device();
        parallel_for_chunks(policy, nc, move |range| {
            let mut sk: Vec<u32> = Vec::new();
            let mut sv: Vec<Weight> = Vec::new();
            for cu in range {
                let (s, e) = (xadj_ref[cu], xadj_ref[cu + 1]);
                // SAFETY: rows are disjoint.
                let (keys, vals) = unsafe {
                    (
                        std::slice::from_raw_parts_mut((adj_base as *mut u32).add(s), e - s),
                        std::slice::from_raw_parts_mut((wgt_base as *mut Weight).add(s), e - s),
                    )
                };
                seg_sort_pairs(device, keys, vals, &mut sk, &mut sv);
            }
        });
    }
    Csr::from_parts(xadj, adj, wgt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::testkit;
    use crate::mapping::Mapping;
    use mlcg_graph::builder::from_edges_weighted;
    use mlcg_graph::generators as gen;

    fn manual_mapping(map: Vec<u32>) -> Mapping {
        let n_coarse = (*map.iter().max().unwrap() + 1) as usize;
        let m = Mapping { map, n_coarse };
        m.validate().unwrap();
        m
    }

    /// Shadows `super::construct` with the untraced form the tests use.
    fn construct(
        policy: &ExecPolicy,
        g: &Csr,
        mapping: &Mapping,
        dedup: Dedup,
        opts: &ConstructOptions,
    ) -> Csr {
        super::construct(policy, g, mapping, dedup, opts, &TraceCollector::disabled())
    }

    #[test]
    fn tiny_known_coarse_graph() {
        // Path 0-1-2-3 with weights 5,3,7; aggregates {0,1} and {2,3}.
        let g = from_edges_weighted(4, &[(0, 1, 5), (1, 2, 3), (2, 3, 7)]);
        let mapping = manual_mapping(vec![0, 0, 1, 1]);
        for dedup in [Dedup::Sort, Dedup::Hash] {
            let c = construct(
                &ExecPolicy::serial(),
                &g,
                &mapping,
                dedup,
                &ConstructOptions::default(),
            );
            assert_eq!(c.n(), 2);
            assert_eq!(c.m(), 1);
            assert_eq!(c.find_edge(0, 1), Some(3), "{dedup:?}");
        }
    }

    #[test]
    fn parallel_weight_merge() {
        // Two aggregates joined by multiple fine edges: weights must sum.
        let g = from_edges_weighted(
            6,
            &[
                (0, 3, 1),
                (1, 4, 2),
                (2, 5, 4),
                (0, 1, 9),
                (1, 2, 9),
                (3, 4, 9),
                (4, 5, 9),
            ],
        );
        let mapping = manual_mapping(vec![0, 0, 0, 1, 1, 1]);
        let c = construct(
            &ExecPolicy::serial(),
            &g,
            &mapping,
            Dedup::Sort,
            &ConstructOptions::default(),
        );
        assert_eq!(c.find_edge(0, 1), Some(7), "1+2+4 parallel fine edges");
    }

    #[test]
    fn all_methods_agree_on_battery() {
        for (name, g) in crate::mapping::testkit::battery() {
            if g.n() < 2 {
                continue;
            }
            let mapping = testkit::mapped(&g, 5);
            if mapping.n_coarse < 1 {
                continue;
            }
            testkit::cross_check(&g, &mapping);
            let _ = name;
        }
    }

    #[test]
    fn identity_mapping_reproduces_graph() {
        let g = gen::grid2d(8, 8);
        let mapping = manual_mapping((0..g.n() as u32).collect());
        for threshold in [0.0, f64::INFINITY] {
            let c = construct(
                &ExecPolicy::serial(),
                &g,
                &mapping,
                Dedup::Sort,
                &ConstructOptions {
                    method: super::super::ConstructMethod::Sort,
                    degree_dedup_skew_threshold: threshold,
                },
            );
            assert_eq!(c.offsets(), g.offsets());
            assert_eq!(c.adj(), g.adj());
            assert_eq!(c.wgt(), g.wgt());
        }
    }

    #[test]
    fn collapse_to_single_vertex_yields_empty_graph() {
        let g = gen::complete(6);
        let mapping = manual_mapping(vec![0; 6]);
        let c = construct(
            &ExecPolicy::serial(),
            &g,
            &mapping,
            Dedup::Hash,
            &ConstructOptions::default(),
        );
        assert_eq!(c.n(), 1);
        assert_eq!(c.m(), 0);
        c.validate().unwrap();
    }

    #[test]
    fn device_policy_produces_same_graph() {
        let (g, _) = mlcg_graph::cc::largest_component(&gen::rmat(9, 8, 0.57, 0.19, 0.19, 3));
        let mapping = testkit::mapped(&g, 7);
        let serial = construct(
            &ExecPolicy::serial(),
            &g,
            &mapping,
            Dedup::Sort,
            &ConstructOptions::default(),
        );
        for policy in ExecPolicy::all_test_policies() {
            for dedup in [Dedup::Sort, Dedup::Hash] {
                let c = construct(&policy, &g, &mapping, dedup, &ConstructOptions::default());
                assert_eq!(c, serial, "{policy} {dedup:?}");
            }
        }
    }

    #[test]
    fn skewed_graph_triggers_opt_and_matches_plain() {
        let g = gen::star(200); // skew >> 10 triggers the optimization
        let mapping = manual_mapping(
            (0..200u32)
                .map(|u| if u == 0 { 0 } else { 1 + (u - 1) / 4 })
                .collect(),
        );
        let opt = construct(
            &ExecPolicy::serial(),
            &g,
            &mapping,
            Dedup::Sort,
            &ConstructOptions {
                method: super::super::ConstructMethod::Sort,
                degree_dedup_skew_threshold: 10.0,
            },
        );
        let plain = construct(
            &ExecPolicy::serial(),
            &g,
            &mapping,
            Dedup::Sort,
            &ConstructOptions {
                method: super::super::ConstructMethod::Sort,
                degree_dedup_skew_threshold: f64::INFINITY,
            },
        );
        assert_eq!(opt, plain);
        opt.validate().unwrap();
    }
}

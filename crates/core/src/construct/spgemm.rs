//! SpGEMM-based coarse-graph construction: `A_c = P · A · Pᵀ` via two
//! sparse matrix products (the paper's linear-algebra viewpoint, calling
//! the Kokkos Kernels SpGEMM twice — here our [`mlcg_sparse`] substrate).

use crate::mapping::Mapping;
use mlcg_graph::{Csr, Weight};
use mlcg_par::{ExecPolicy, TraceCollector};
use mlcg_sparse::{spgemm, transpose, CsrMatrix};

/// Build the coarse graph through the `P·A·Pᵀ` triple product, dropping the
/// diagonal (intra-aggregate weight).
pub fn construct(policy: &ExecPolicy, g: &Csr, mapping: &Mapping) -> Csr {
    construct_traced(policy, g, mapping, &TraceCollector::disabled())
}

/// [`construct`] with a trace sink: the two sparse products (the dominant
/// transient of this strategy — `P·A` is as large as the fine matrix) are
/// wrapped in a heap scope recorded as `mem/spgemm/{peak,net}_bytes`.
pub fn construct_traced(
    policy: &ExecPolicy,
    g: &Csr,
    mapping: &Mapping,
    trace: &TraceCollector,
) -> Csr {
    let mem = trace.heap_scope(|| "spgemm".to_string());
    let a = CsrMatrix::from_graph(g);
    let p = CsrMatrix::prolongation(&mapping.map, mapping.n_coarse);
    let pa = spgemm(policy, &p, &a);
    // Each product scans its right operand's rows once per phase
    // (symbolic + numeric): 2·nnz(A) for P·A, then 2·nnz(P·A) for
    // (P·A)·Pᵀ — this strategy reads strictly more than the adjacency.
    trace.counter_add("construct/edges_scanned", 2 * (a.nnz() + pa.nnz()) as u64);
    let papt = spgemm(policy, &pa, &transpose(&p));
    drop((pa, a, p));
    drop(mem);

    // Convert back to an integer-weighted graph, dropping the diagonal.
    // Values are sums of integer fine weights, so rounding is exact.
    let nc = mapping.n_coarse;
    let mut xadj = Vec::with_capacity(nc + 1);
    let mut adj: Vec<u32> = Vec::with_capacity(papt.nnz());
    let mut wgt: Vec<Weight> = Vec::with_capacity(papt.nnz());
    xadj.push(0);
    for i in 0..nc {
        let (cols, vals) = papt.row(i);
        for (&c, &v) in cols.iter().zip(vals) {
            if c as usize != i {
                adj.push(c);
                wgt.push(v.round() as Weight);
            }
        }
        xadj.push(adj.len());
    }
    Csr::from_parts(xadj, adj, wgt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{construct_coarse_graph, ConstructMethod, ConstructOptions};
    use crate::mapping::Mapping;
    use mlcg_graph::builder::from_edges_weighted;

    #[test]
    fn matches_vertex_centric_on_small_case() {
        let g = from_edges_weighted(5, &[(0, 1, 2), (1, 2, 3), (2, 3, 4), (3, 4, 5), (0, 4, 6)]);
        let mapping = Mapping {
            map: vec![0, 0, 1, 1, 2],
            n_coarse: 3,
        };
        let policy = ExecPolicy::serial();
        let via_spgemm = construct_coarse_graph(
            &policy,
            &g,
            &mapping,
            &ConstructOptions::with_method(ConstructMethod::Spgemm),
        );
        let via_sort = construct_coarse_graph(
            &policy,
            &g,
            &mapping,
            &ConstructOptions::with_method(ConstructMethod::Sort),
        );
        assert_eq!(via_spgemm, via_sort);
        via_spgemm.validate().unwrap();
        // {0,1}-{2,3} edge: fine (1,2) w=3. {2,3}-{4}: (3,4) w=5. {0,1}-{4}: (0,4) w=6.
        assert_eq!(via_spgemm.find_edge(0, 1), Some(3));
        assert_eq!(via_spgemm.find_edge(1, 2), Some(5));
        assert_eq!(via_spgemm.find_edge(0, 2), Some(6));
    }

    #[test]
    fn diagonal_is_dropped() {
        let g = from_edges_weighted(3, &[(0, 1, 4), (1, 2, 1)]);
        let mapping = Mapping {
            map: vec![0, 0, 1],
            n_coarse: 2,
        };
        let c = construct(&ExecPolicy::serial(), &g, &mapping);
        c.validate().unwrap(); // validate() rejects self-loops
        assert_eq!(c.find_edge(0, 1), Some(1));
    }
}

//! Coarse-graph construction (`ConstructCoarseGraph` in Algorithm 1).
//!
//! Given the fine graph and a mapping, build the weighted coarse graph:
//! coarse edge `{A, B}` carries the sum of fine edge weights between
//! aggregates `A` and `B`; intra-aggregate edges disappear (no self-loops);
//! coarse vertex weights are sums of member vertex weights.
//!
//! Three strategies, as in the paper:
//! - [`ConstructMethod::Sort`] / [`ConstructMethod::Hash`]: the
//!   vertex-centric Algorithm 6 with sort-based or hash-based per-vertex
//!   deduplication, optionally using the degree-based deduplication
//!   optimization for skewed graphs ([`vertex`]);
//! - [`ConstructMethod::Spgemm`]: `P·A·Pᵀ` via two SpGEMM calls
//!   ([`spgemm`]);
//! - [`ConstructMethod::GlobalSort`]: the global sort-and-reduce baseline
//!   ([`global_sort`]).
//!
//! All strategies produce identical graphs (asserted by the test suite),
//! with or without a shared [`ConstructWorkspace`] — the `_in` entry
//! points reuse one workspace across hierarchy levels so constructions
//! after the first stop re-allocating their full scratch envelope.

pub mod global_sort;
pub mod spgemm;
pub mod vertex;

use crate::mapping::Mapping;
use mlcg_graph::{Csr, VId, VWeight, Weight};
use mlcg_par::{
    parallel_fold_chunks, parallel_for, parallel_for_chunks, profile, ExecPolicy, TraceCollector,
};
use std::sync::atomic::Ordering;
use std::sync::Mutex;

/// Which construction strategy to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConstructMethod {
    /// Vertex-centric with per-vertex sort-based dedup (the paper's GPU
    /// default; bitonic sorts under the device-sim policy).
    Sort,
    /// Vertex-centric with per-vertex hash-table dedup (the paper's CPU
    /// winner).
    Hash,
    /// `P·A·Pᵀ` through the SpGEMM substrate.
    Spgemm,
    /// Global sort of all edge triples (baseline).
    GlobalSort,
    /// Vertex-centric with a per-vertex *hybrid* dedup: hash for long,
    /// duplication-heavy segments, sort otherwise — one of the paper's
    /// stated future-work optimizations, implemented here.
    Hybrid,
}

impl ConstructMethod {
    /// All methods, in the order the paper's tables report them.
    pub const ALL: [ConstructMethod; 5] = [
        ConstructMethod::Sort,
        ConstructMethod::Hash,
        ConstructMethod::Spgemm,
        ConstructMethod::GlobalSort,
        ConstructMethod::Hybrid,
    ];

    /// Stable lowercase name used by the benchmark harness.
    pub fn name(&self) -> &'static str {
        match self {
            ConstructMethod::Sort => "sort",
            ConstructMethod::Hash => "hash",
            ConstructMethod::Spgemm => "spgemm",
            ConstructMethod::GlobalSort => "global-sort",
            ConstructMethod::Hybrid => "hybrid",
        }
    }

    /// Parse a harness name.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "sort" => ConstructMethod::Sort,
            "hash" => ConstructMethod::Hash,
            "spgemm" => ConstructMethod::Spgemm,
            "global-sort" => ConstructMethod::GlobalSort,
            "hybrid" => ConstructMethod::Hybrid,
            _ => return None,
        })
    }
}

/// Construction tuning knobs.
#[derive(Clone, Debug)]
pub struct ConstructOptions {
    /// Strategy to use.
    pub method: ConstructMethod,
    /// Enable the degree-based deduplication optimization when the fine
    /// graph's `Δ / avg-degree` exceeds this (the paper invokes it
    /// selectively for skewed graphs). `f64::INFINITY` disables it.
    pub degree_dedup_skew_threshold: f64,
}

impl Default for ConstructOptions {
    fn default() -> Self {
        ConstructOptions {
            method: ConstructMethod::Sort,
            degree_dedup_skew_threshold: 10.0,
        }
    }
}

impl ConstructOptions {
    /// Options for a specific method with default thresholds.
    pub fn with_method(method: ConstructMethod) -> Self {
        ConstructOptions {
            method,
            ..Default::default()
        }
    }
}

/// Level-reused scratch for coarse-graph construction.
///
/// One instance is threaded through the multilevel driver so every
/// hierarchy level after the first reuses the previous level's arrays
/// instead of re-allocating the full construction envelope (the heap
/// telemetry of `mem/construct/peak_bytes` showed construction paying its
/// peak again on every level). Lifetime rules:
///
/// - buffers are `clear()`+`resize()`d at every use, so a workspace can be
///   shared across graphs of *any* size and across strategies — contents
///   never survive a call, only capacity does;
/// - capacity only grows; the driver drops the workspace with the
///   hierarchy, so the high-water envelope is one level's, not one per
///   level;
/// - a workspace is `!Sync` by design (exclusive `&mut` access) — one per
///   concurrent coarsening.
///
/// Narrow (`u32`) and wide (`usize`) counting buffers are kept separately
/// because the vertex pipeline monomorphizes over the count width (the
/// adjacency-fits-32-bits rule); only the set matching the current graph
/// is touched per level.
#[derive(Default)]
pub struct ConstructWorkspace {
    pub(crate) narrow: vertex::WordBufs<u32>,
    pub(crate) wide: vertex::WordBufs<usize>,
    /// Adjacency-slot coarse-id mirror for the skew-optimized path.
    pub(crate) cmap: Vec<u32>,
    /// Intermediate scattered adjacencies (Algorithm 6's `F`).
    pub(crate) f: Vec<VId>,
    /// Intermediate scattered weights (Algorithm 6's `X`).
    pub(crate) x: Vec<Weight>,
    /// Pooled per-participant dedup scratch (sort padding, hash arenas).
    pub(crate) dedup_pool: Vec<vertex::DedupScratch>,
    /// Pooled per-participant hub staging buffers.
    pub(crate) stage_pool: Vec<vertex::ScatterStage>,
    /// Pooled per-participant vertex-weight accumulators.
    pub(crate) vwgt_pool: Vec<Vec<VWeight>>,
    /// Global-sort strategy scratch (packed triples, head flags).
    pub(crate) gsort: global_sort::Scratch,
}

impl ConstructWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Build the coarse graph. The mapping must be validated (contiguous
/// labels) and the fine graph must satisfy the [`Csr`] invariants.
///
/// ```
/// use mlcg_coarsen::{construct_coarse_graph, ConstructOptions, Mapping};
/// use mlcg_par::ExecPolicy;
///
/// // Path 0-1-2-3 with aggregates {0,1} and {2,3}.
/// let g = mlcg_graph::builder::from_edges_weighted(4, &[(0, 1, 5), (1, 2, 3), (2, 3, 7)]);
/// let mapping = Mapping { map: vec![0, 0, 1, 1], n_coarse: 2 };
/// let c = construct_coarse_graph(&ExecPolicy::serial(), &g, &mapping, &ConstructOptions::default());
/// assert_eq!(c.find_edge(0, 1), Some(3)); // the 1-2 fine edge survives
/// assert_eq!(c.vwgt(), &[2, 2]);          // aggregate sizes
/// ```
pub fn construct_coarse_graph(
    policy: &ExecPolicy,
    g: &Csr,
    mapping: &Mapping,
    opts: &ConstructOptions,
) -> Csr {
    construct_coarse_graph_traced(policy, g, mapping, opts, &TraceCollector::disabled())
}

/// [`construct_coarse_graph`] reusing a caller-held [`ConstructWorkspace`].
pub fn construct_coarse_graph_in(
    policy: &ExecPolicy,
    g: &Csr,
    mapping: &Mapping,
    opts: &ConstructOptions,
    ws: &mut ConstructWorkspace,
) -> Csr {
    construct_coarse_graph_traced_in(policy, g, mapping, opts, &TraceCollector::disabled(), ws)
}

/// [`construct_coarse_graph`] with a trace sink: the vertex-centric paths
/// report hash-probe collisions and per-strategy edges scanned as pipeline
/// counters. With a disabled collector this is exactly
/// `construct_coarse_graph`.
pub fn construct_coarse_graph_traced(
    policy: &ExecPolicy,
    g: &Csr,
    mapping: &Mapping,
    opts: &ConstructOptions,
    trace: &TraceCollector,
) -> Csr {
    construct_coarse_graph_traced_in(
        policy,
        g,
        mapping,
        opts,
        trace,
        &mut ConstructWorkspace::new(),
    )
}

/// The full-featured entry point: trace sink plus level-reused workspace.
pub fn construct_coarse_graph_traced_in(
    policy: &ExecPolicy,
    g: &Csr,
    mapping: &Mapping,
    opts: &ConstructOptions,
    trace: &TraceCollector,
    ws: &mut ConstructWorkspace,
) -> Csr {
    debug_assert!(mapping.validate().is_ok());
    let _mem = trace.heap_scope(|| "construct".to_string());
    let mut coarse = match opts.method {
        ConstructMethod::Sort => {
            vertex::construct(policy, g, mapping, vertex::Dedup::Sort, opts, trace, ws)
        }
        ConstructMethod::Hash => {
            vertex::construct(policy, g, mapping, vertex::Dedup::Hash, opts, trace, ws)
        }
        ConstructMethod::Spgemm => spgemm::construct_traced(policy, g, mapping, trace),
        ConstructMethod::GlobalSort => {
            global_sort::construct(policy, g, mapping, trace, &mut ws.gsort)
        }
        ConstructMethod::Hybrid => {
            vertex::construct(policy, g, mapping, vertex::Dedup::Hybrid, opts, trace, ws)
        }
    };
    coarse.set_vwgt(aggregate_vertex_weights_in(policy, g, mapping, ws));
    coarse
}

/// Coarse vertex weights: sums of member fine vertex weights.
pub fn aggregate_vertex_weights(policy: &ExecPolicy, g: &Csr, mapping: &Mapping) -> Vec<VWeight> {
    aggregate_vertex_weights_in(policy, g, mapping, &mut ConstructWorkspace::new())
}

/// [`aggregate_vertex_weights`] with pooled accumulators: per-participant
/// dense accumulation merged by a parallel reduction over the coarse-id
/// domain, so hub aggregates never serialize workers on one atomic slot.
/// Falls back to [`aggregate_vertex_weights_atomic`] when the combined
/// accumulator footprint would outgrow the pass (same budget rule as the
/// construction counting passes).
pub fn aggregate_vertex_weights_in(
    policy: &ExecPolicy,
    g: &Csr,
    mapping: &Mapping,
    ws: &mut ConstructWorkspace,
) -> Vec<VWeight> {
    let _k = profile::kernel("agg_vwgt");
    let n = g.n();
    let nc = mapping.n_coarse;
    let map = &mapping.map;
    let threads = policy.effective_threads(n);
    if threads <= 1 || mlcg_par::pool::in_worker() {
        let mut vwgt = vec![0u64; nc];
        for u in 0..n {
            vwgt[map[u] as usize] += g.vwgt()[u];
        }
        return vwgt;
    }
    if !vertex::use_histograms(threads, nc, n) {
        return aggregate_vertex_weights_atomic(policy, g, mapping);
    }
    let mut vwgt = vec![0u64; nc];
    let pool_m = Mutex::new(std::mem::take(&mut ws.vwgt_pool));
    let parts = parallel_fold_chunks(
        policy,
        n,
        || {
            let mut h = pool_m.lock().unwrap().pop().unwrap_or_default();
            h.clear();
            h.resize(nc, 0);
            h
        },
        |h, range| {
            for u in range {
                h[map[u] as usize] += g.vwgt()[u];
            }
        },
    );
    {
        let base = vwgt.as_mut_ptr() as usize;
        let parts_ref = &parts;
        parallel_for_chunks(policy, nc, move |range| {
            for c in range {
                let mut s = 0u64;
                for p in parts_ref {
                    s += p[c];
                }
                // SAFETY: disjoint writes per coarse vertex.
                unsafe { (base as *mut u64).add(c).write(s) };
            }
        });
    }
    let mut back = pool_m.into_inner().unwrap();
    back.extend(parts);
    ws.vwgt_pool = back;
    vwgt
}

/// The pre-sharding formulation: one atomic `fetch_add` per fine vertex
/// into the destination aggregate's slot. Retained as the fallback for
/// huge `n_coarse × workers` products and as the contention baseline in
/// the `bench_primitives` microbenchmarks.
pub fn aggregate_vertex_weights_atomic(
    policy: &ExecPolicy,
    g: &Csr,
    mapping: &Mapping,
) -> Vec<VWeight> {
    let _k = profile::kernel("agg_vwgt");
    let mut vwgt = vec![0u64; mapping.n_coarse];
    {
        let view = mlcg_par::atomic::as_atomic_u64(&mut vwgt);
        let map = &mapping.map;
        parallel_for(policy, g.n(), |u| {
            view[map[u] as usize].fetch_add(g.vwgt()[u], Ordering::Relaxed);
        });
    }
    vwgt
}

/// Total weight of intra-aggregate fine edges (dropped during coarsening);
/// used by the conservation tests: coarse total + intra = fine total.
pub fn intra_aggregate_weight(policy: &ExecPolicy, g: &Csr, mapping: &Mapping) -> u64 {
    mlcg_par::parallel_reduce_sum(policy, g.n(), |u| {
        let mut acc = 0;
        for (v, w) in g.edges(u as u32) {
            if mapping.map[u] == mapping.map[v as usize] {
                acc += w;
            }
        }
        acc
    }) / 2
}

/// Cross-strategy checking helpers, shared by the unit tests and the
/// `construct_props` property suite (hence compiled unconditionally).
#[doc(hidden)]
pub mod testkit {
    use super::*;
    use crate::mapping::{find_mapping, MapMethod};

    /// Construct with every method × skew threshold × policy, both with a
    /// fresh workspace and through one shared (level-reused) workspace,
    /// and assert every result is bit-identical and satisfies
    /// conservation + CSR invariants. Returns the reference graph.
    pub fn cross_check_policies(g: &Csr, mapping: &Mapping, policies: &[ExecPolicy]) -> Csr {
        let mut results: Vec<(String, Csr)> = Vec::new();
        let mut ws = ConstructWorkspace::new();
        for method in ConstructMethod::ALL {
            // Exercise both the optimized and plain dedup paths.
            for threshold in [0.0, f64::INFINITY] {
                let opts = ConstructOptions {
                    method,
                    degree_dedup_skew_threshold: threshold,
                };
                for policy in policies {
                    let name = format!("{method:?}/thr={threshold}/{policy}");
                    let c = construct_coarse_graph(policy, g, mapping, &opts);
                    let reused = construct_coarse_graph_in(policy, g, mapping, &opts, &mut ws);
                    assert_eq!(c, reused, "{name}: workspace reuse changed the graph");
                    c.validate()
                        .unwrap_or_else(|e| panic!("{name}: invalid coarse graph: {e}"));
                    assert_eq!(c.n(), mapping.n_coarse);
                    assert_eq!(
                        c.total_edge_weight() + intra_aggregate_weight(policy, g, mapping),
                        g.total_edge_weight(),
                        "{name}: weight not conserved"
                    );
                    assert_eq!(c.total_vwgt(), g.total_vwgt(), "{name}: vertex weight");
                    results.push((name, c));
                }
            }
        }
        for (name, c) in &results[1..] {
            assert_eq!(c, &results[0].1, "{name} disagrees with {}", results[0].0);
        }
        results.swap_remove(0).1
    }

    /// [`cross_check_policies`] under the serial policy only.
    pub fn cross_check(g: &Csr, mapping: &Mapping) {
        cross_check_policies(g, mapping, &[ExecPolicy::serial()]);
    }

    /// A graph + mapping pair from a real mapping algorithm.
    pub fn mapped(g: &Csr, seed: u64) -> Mapping {
        find_mapping(&ExecPolicy::serial(), g, MapMethod::SeqHec, seed).0
    }
}

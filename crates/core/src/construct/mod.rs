//! Coarse-graph construction (`ConstructCoarseGraph` in Algorithm 1).
//!
//! Given the fine graph and a mapping, build the weighted coarse graph:
//! coarse edge `{A, B}` carries the sum of fine edge weights between
//! aggregates `A` and `B`; intra-aggregate edges disappear (no self-loops);
//! coarse vertex weights are sums of member vertex weights.
//!
//! Three strategies, as in the paper:
//! - [`ConstructMethod::Sort`] / [`ConstructMethod::Hash`]: the
//!   vertex-centric Algorithm 6 with sort-based or hash-based per-vertex
//!   deduplication, optionally using the degree-based deduplication
//!   optimization for skewed graphs ([`vertex`]);
//! - [`ConstructMethod::Spgemm`]: `P·A·Pᵀ` via two SpGEMM calls
//!   ([`spgemm`]);
//! - [`ConstructMethod::GlobalSort`]: the global sort-and-reduce baseline
//!   ([`global_sort`]).
//!
//! All strategies produce identical graphs (asserted by the test suite).

pub mod global_sort;
pub mod spgemm;
pub mod vertex;

use crate::mapping::Mapping;
use mlcg_graph::{Csr, VWeight};
use mlcg_par::atomic::as_atomic_u64;
use mlcg_par::{parallel_for, profile, ExecPolicy, TraceCollector};
use std::sync::atomic::Ordering;

/// Which construction strategy to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConstructMethod {
    /// Vertex-centric with per-vertex sort-based dedup (the paper's GPU
    /// default; bitonic sorts under the device-sim policy).
    Sort,
    /// Vertex-centric with per-vertex hash-table dedup (the paper's CPU
    /// winner).
    Hash,
    /// `P·A·Pᵀ` through the SpGEMM substrate.
    Spgemm,
    /// Global sort of all edge triples (baseline).
    GlobalSort,
    /// Vertex-centric with a per-vertex *hybrid* dedup: hash for long,
    /// duplication-heavy segments, sort otherwise — one of the paper's
    /// stated future-work optimizations, implemented here.
    Hybrid,
}

impl ConstructMethod {
    /// All methods, in the order the paper's tables report them.
    pub const ALL: [ConstructMethod; 5] = [
        ConstructMethod::Sort,
        ConstructMethod::Hash,
        ConstructMethod::Spgemm,
        ConstructMethod::GlobalSort,
        ConstructMethod::Hybrid,
    ];

    /// Stable lowercase name used by the benchmark harness.
    pub fn name(&self) -> &'static str {
        match self {
            ConstructMethod::Sort => "sort",
            ConstructMethod::Hash => "hash",
            ConstructMethod::Spgemm => "spgemm",
            ConstructMethod::GlobalSort => "global-sort",
            ConstructMethod::Hybrid => "hybrid",
        }
    }

    /// Parse a harness name.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "sort" => ConstructMethod::Sort,
            "hash" => ConstructMethod::Hash,
            "spgemm" => ConstructMethod::Spgemm,
            "global-sort" => ConstructMethod::GlobalSort,
            "hybrid" => ConstructMethod::Hybrid,
            _ => return None,
        })
    }
}

/// Construction tuning knobs.
#[derive(Clone, Debug)]
pub struct ConstructOptions {
    /// Strategy to use.
    pub method: ConstructMethod,
    /// Enable the degree-based deduplication optimization when the fine
    /// graph's `Δ / avg-degree` exceeds this (the paper invokes it
    /// selectively for skewed graphs). `f64::INFINITY` disables it.
    pub degree_dedup_skew_threshold: f64,
}

impl Default for ConstructOptions {
    fn default() -> Self {
        ConstructOptions {
            method: ConstructMethod::Sort,
            degree_dedup_skew_threshold: 10.0,
        }
    }
}

impl ConstructOptions {
    /// Options for a specific method with default thresholds.
    pub fn with_method(method: ConstructMethod) -> Self {
        ConstructOptions {
            method,
            ..Default::default()
        }
    }
}

/// Build the coarse graph. The mapping must be validated (contiguous
/// labels) and the fine graph must satisfy the [`Csr`] invariants.
///
/// ```
/// use mlcg_coarsen::{construct_coarse_graph, ConstructOptions, Mapping};
/// use mlcg_par::ExecPolicy;
///
/// // Path 0-1-2-3 with aggregates {0,1} and {2,3}.
/// let g = mlcg_graph::builder::from_edges_weighted(4, &[(0, 1, 5), (1, 2, 3), (2, 3, 7)]);
/// let mapping = Mapping { map: vec![0, 0, 1, 1], n_coarse: 2 };
/// let c = construct_coarse_graph(&ExecPolicy::serial(), &g, &mapping, &ConstructOptions::default());
/// assert_eq!(c.find_edge(0, 1), Some(3)); // the 1-2 fine edge survives
/// assert_eq!(c.vwgt(), &[2, 2]);          // aggregate sizes
/// ```
pub fn construct_coarse_graph(
    policy: &ExecPolicy,
    g: &Csr,
    mapping: &Mapping,
    opts: &ConstructOptions,
) -> Csr {
    construct_coarse_graph_traced(policy, g, mapping, opts, &TraceCollector::disabled())
}

/// [`construct_coarse_graph`] with a trace sink: the vertex-centric paths
/// report hash-probe collisions and edges scanned as pipeline counters.
/// With a disabled collector this is exactly `construct_coarse_graph`.
pub fn construct_coarse_graph_traced(
    policy: &ExecPolicy,
    g: &Csr,
    mapping: &Mapping,
    opts: &ConstructOptions,
    trace: &TraceCollector,
) -> Csr {
    debug_assert!(mapping.validate().is_ok());
    let _mem = trace.heap_scope(|| "construct".to_string());
    let mut coarse = match opts.method {
        ConstructMethod::Sort => {
            vertex::construct(policy, g, mapping, vertex::Dedup::Sort, opts, trace)
        }
        ConstructMethod::Hash => {
            vertex::construct(policy, g, mapping, vertex::Dedup::Hash, opts, trace)
        }
        ConstructMethod::Spgemm => spgemm::construct_traced(policy, g, mapping, trace),
        ConstructMethod::GlobalSort => global_sort::construct(policy, g, mapping),
        ConstructMethod::Hybrid => {
            vertex::construct(policy, g, mapping, vertex::Dedup::Hybrid, opts, trace)
        }
    };
    // Every strategy reads the full fine adjacency at least once.
    trace.counter_add("construct/edges_scanned", g.adj().len() as u64);
    coarse.set_vwgt(aggregate_vertex_weights(policy, g, mapping));
    coarse
}

/// Coarse vertex weights: sums of member fine vertex weights.
pub fn aggregate_vertex_weights(policy: &ExecPolicy, g: &Csr, mapping: &Mapping) -> Vec<VWeight> {
    let _k = profile::kernel("agg_vwgt");
    let mut vwgt = vec![0u64; mapping.n_coarse];
    {
        let view = as_atomic_u64(&mut vwgt);
        let map = &mapping.map;
        parallel_for(policy, g.n(), |u| {
            view[map[u] as usize].fetch_add(g.vwgt()[u], Ordering::Relaxed);
        });
    }
    vwgt
}

/// Total weight of intra-aggregate fine edges (dropped during coarsening);
/// used by the conservation tests: coarse total + intra = fine total.
pub fn intra_aggregate_weight(policy: &ExecPolicy, g: &Csr, mapping: &Mapping) -> u64 {
    mlcg_par::parallel_reduce_sum(policy, g.n(), |u| {
        let mut acc = 0;
        for (v, w) in g.edges(u as u32) {
            if mapping.map[u] == mapping.map[v as usize] {
                acc += w;
            }
        }
        acc
    }) / 2
}

#[cfg(test)]
pub(crate) mod testkit {
    use super::*;
    use crate::mapping::{find_mapping, MapMethod};

    /// Construct with every method and assert they agree exactly and
    /// satisfy conservation + CSR invariants.
    pub fn cross_check(g: &Csr, mapping: &Mapping) {
        let policy = ExecPolicy::serial();
        let mut results = Vec::new();
        for method in ConstructMethod::ALL {
            // Exercise both the optimized and plain dedup paths.
            for threshold in [0.0, f64::INFINITY] {
                let opts = ConstructOptions {
                    method,
                    degree_dedup_skew_threshold: threshold,
                };
                let c = construct_coarse_graph(&policy, g, mapping, &opts);
                c.validate().unwrap_or_else(|e| {
                    panic!("{:?} (thr {threshold}): invalid coarse graph: {e}", method)
                });
                assert_eq!(c.n(), mapping.n_coarse);
                assert_eq!(
                    c.total_edge_weight() + intra_aggregate_weight(&policy, g, mapping),
                    g.total_edge_weight(),
                    "{method:?}: weight not conserved"
                );
                assert_eq!(c.total_vwgt(), g.total_vwgt(), "{method:?}: vertex weight");
                results.push((format!("{method:?}/{threshold}"), c));
            }
        }
        for (name, c) in &results[1..] {
            assert_eq!(c, &results[0].1, "{name} disagrees with {}", results[0].0);
        }
    }

    /// A graph + mapping pair from a real mapping algorithm.
    pub fn mapped(g: &Csr, seed: u64) -> Mapping {
        find_mapping(&ExecPolicy::serial(), g, MapMethod::SeqHec, seed).0
    }
}

//! Global sort-based coarse-graph construction — the baseline the paper
//! compares against (and finds uncompetitive): pack every inter-aggregate
//! directed entry into a `(M[u], M[v])` key, sort all `2m'` triples
//! globally, and reduce equal-key runs by summing weights.

use crate::mapping::Mapping;
use mlcg_graph::{Csr, VId, Weight};
use mlcg_par::atomic::as_atomic_usize;
use mlcg_par::scan::exclusive_scan;
use mlcg_par::sort::par_radix_sort_pairs;
use mlcg_par::{parallel_for, profile, ExecPolicy, TraceCollector};
use std::sync::atomic::Ordering;

/// Level-reused scratch for the global-sort strategy: the packed triple
/// arrays and head flags are the strategy's dominant transients (`2m'`
/// entries each), so reusing their capacity across hierarchy levels
/// removes the bulk of its per-level allocation. Contents never survive a
/// call; only capacity does.
#[derive(Default)]
pub struct Scratch {
    offsets: Vec<usize>,
    keys: Vec<u64>,
    vals: Vec<Weight>,
    head: Vec<usize>,
}

/// Build the coarse graph by a global sort-and-reduce.
pub fn construct(
    policy: &ExecPolicy,
    g: &Csr,
    mapping: &Mapping,
    trace: &TraceCollector,
    ws: &mut Scratch,
) -> Csr {
    let n = g.n();
    let nc = mapping.n_coarse;
    let map = &mapping.map;
    assert!(nc <= u32::MAX as usize);
    let _k = profile::kernel("gsort_construct");
    // Two full-adjacency traversals: the per-vertex count and the pack.
    trace.counter_add("construct/edges_scanned", 2 * g.adj().len() as u64);

    // Count inter-aggregate directed entries per fine vertex, then scatter
    // the packed triples.
    let offsets = &mut ws.offsets;
    offsets.clear();
    offsets.resize(n + 1, 0);
    {
        let base = offsets.as_mut_ptr() as usize;
        parallel_for(policy, n, move |u| {
            let cu = map[u];
            let c = g
                .neighbors(u as VId)
                .iter()
                .filter(|&&v| map[v as usize] != cu)
                .count();
            // SAFETY: disjoint writes per index.
            unsafe {
                (base as *mut usize).add(u).write(c);
            }
        });
    }
    let total = exclusive_scan(policy, offsets);
    let keys = &mut ws.keys;
    let vals = &mut ws.vals;
    keys.clear();
    keys.resize(total, 0);
    vals.clear();
    vals.resize(total, 0);
    {
        let _k = profile::kernel("pack");
        let k_base = keys.as_mut_ptr() as usize;
        let v_base = vals.as_mut_ptr() as usize;
        let off: &[usize] = offsets;
        parallel_for(policy, n, move |u| {
            let cu = map[u];
            let mut p = off[u];
            for (v, w) in g.edges(u as VId) {
                let cv = map[v as usize];
                if cv != cu {
                    // SAFETY: each vertex writes its own offset range.
                    unsafe {
                        (k_base as *mut u64)
                            .add(p)
                            .write(((cu as u64) << 32) | cv as u64);
                        (v_base as *mut Weight).add(p).write(w);
                    }
                    p += 1;
                }
            }
        });
    }

    par_radix_sort_pairs(policy, keys, vals);

    // Head flags -> run index per entry -> unique-run count.
    let head = &mut ws.head;
    head.clear();
    head.resize(total + 1, 0);
    {
        let _k = profile::kernel("head_flags");
        let base = head.as_mut_ptr() as usize;
        let keys_ref: &[u64] = keys;
        parallel_for(policy, total, move |i| {
            let h = usize::from(i == 0 || keys_ref[i] != keys_ref[i - 1]);
            // SAFETY: disjoint writes per index.
            unsafe {
                (base as *mut usize).add(i).write(h);
            }
        });
    }
    // Inclusive scan: head[i] becomes (#heads in 0..=i), so the run index
    // of entry i is head[i] - 1.
    let m2 = mlcg_par::scan::inclusive_scan(policy, &mut head[..total]);
    let run_of: &[usize] = head;

    // Reduce weights per run and record each run's key.
    let mut adj: Vec<u32> = vec![0; m2];
    let mut wgt: Vec<Weight> = vec![0; m2];
    let mut row_count = vec![0usize; nc + 1];
    {
        let _k = profile::kernel("reduce_runs");
        let adj_base = adj.as_mut_ptr() as usize;
        let wgt_at = mlcg_par::atomic::as_atomic_u64(&mut wgt);
        let rc = as_atomic_usize(&mut row_count[..nc]);
        let (keys_ref, vals_ref): (&[u64], &[Weight]) = (keys, vals);
        parallel_for(policy, total, move |i| {
            let r = run_of[i] - 1;
            wgt_at[r].fetch_add(vals_ref[i], Ordering::Relaxed);
            if i == 0 || keys_ref[i] != keys_ref[i - 1] {
                let cu = (keys_ref[i] >> 32) as usize;
                let cv = (keys_ref[i] & 0xFFFF_FFFF) as u32;
                rc[cu].fetch_add(1, Ordering::Relaxed);
                // SAFETY: one head per run.
                unsafe {
                    (adj_base as *mut u32).add(r).write(cv);
                }
            }
        });
    }
    // Runs are sorted by (cu, cv), so row offsets follow from run counts.
    exclusive_scan(policy, &mut row_count);
    let mut xadj = row_count;
    xadj[nc] = m2;
    Csr::from_parts(xadj, adj, wgt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{construct_coarse_graph, ConstructMethod, ConstructOptions};
    use mlcg_graph::builder::from_edges_weighted;

    #[test]
    fn agrees_with_sort_construction() {
        let g = from_edges_weighted(
            6,
            &[
                (0, 1, 2),
                (1, 2, 3),
                (2, 3, 4),
                (3, 4, 5),
                (4, 5, 6),
                (0, 5, 7),
                (1, 4, 8),
            ],
        );
        let mapping = crate::mapping::Mapping {
            map: vec![0, 0, 1, 1, 2, 2],
            n_coarse: 3,
        };
        let policy = ExecPolicy::serial();
        let a = construct_coarse_graph(
            &policy,
            &g,
            &mapping,
            &ConstructOptions::with_method(ConstructMethod::GlobalSort),
        );
        let b = construct_coarse_graph(
            &policy,
            &g,
            &mapping,
            &ConstructOptions::with_method(ConstructMethod::Sort),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn empty_coarse_edge_set() {
        let g = from_edges_weighted(2, &[(0, 1, 3)]);
        let mapping = crate::mapping::Mapping {
            map: vec![0, 0],
            n_coarse: 1,
        };
        let c = construct(
            &ExecPolicy::serial(),
            &g,
            &mapping,
            &TraceCollector::disabled(),
            &mut Scratch::default(),
        );
        assert_eq!(c.n(), 1);
        assert_eq!(c.m(), 0);
    }
}

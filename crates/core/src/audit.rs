//! Opt-in invariant audits for the coarsening pipeline.
//!
//! When validation is on (`MLCG_VALIDATE=1` or
//! [`TraceConfig::validate`](mlcg_par::TraceConfig)), the multilevel
//! driver runs these cheap structural checks between phases and records
//! their outcomes as trace events, so a corrupted artifact is attributed
//! to the phase that produced it — `mapping/level3` vs
//! `construct/level3` — instead of surfacing as a confusing failure many
//! phases later.
//!
//! Checks:
//! - **`mapping-complete`** — mapping length matches the fine graph, no
//!   `UNMAPPED` entries, labels in bounds and surjective onto
//!   `0..n_coarse` ([`Mapping::validate`]);
//! - **`csr-wellformed`** — coarse CSR invariants: monotone `xadj`,
//!   neighbor ids in range, symmetry, no self-loops
//!   ([`Csr::validate`]);
//! - **`vertex-weight-conservation`** — coarse total vertex weight equals
//!   the fine total (aggregation only moves weight);
//! - **`edge-weight-conservation`** — coarse total edge weight plus the
//!   dropped intra-aggregate weight equals the fine total.
//!
//! [`audit_hierarchy`] re-runs the full set over an existing
//! [`Hierarchy`], which is how corruption introduced *after* coarsening
//! (or a hierarchy loaded from elsewhere) is pinned to a phase name.

use crate::construct::intra_aggregate_weight;
use crate::mapping::Mapping;
use crate::multilevel::Hierarchy;
use mlcg_graph::Csr;
use mlcg_par::{ExecPolicy, TraceCollector};

/// Audit one mapping phase: completeness, bounds and surjectivity.
/// Records one `mapping-complete` event under `phase`; no-op unless the
/// collector has validation on.
pub fn audit_mapping(trace: &TraceCollector, phase: &str, fine_n: usize, mapping: &Mapping) {
    if !trace.validate_enabled() {
        return;
    }
    let result = if mapping.map.len() != fine_n {
        Err(format!(
            "mapping length {} != fine n {}",
            mapping.map.len(),
            fine_n
        ))
    } else {
        mapping.validate()
    };
    trace.audit(phase, "mapping-complete", result);
}

/// Audit one construction phase: CSR well-formedness plus vertex- and
/// edge-weight conservation against the fine graph. Records up to three
/// events under `phase`; no-op unless the collector has validation on.
pub fn audit_coarse_graph(
    policy: &ExecPolicy,
    trace: &TraceCollector,
    phase: &str,
    fine: &Csr,
    mapping: &Mapping,
    coarse: &Csr,
) {
    if !trace.validate_enabled() {
        return;
    }
    trace.audit(phase, "csr-wellformed", coarse.validate());

    let (cv, fv) = (coarse.total_vwgt(), fine.total_vwgt());
    trace.audit(
        phase,
        "vertex-weight-conservation",
        if cv == fv {
            Ok(())
        } else {
            Err(format!("coarse vwgt {cv} != fine vwgt {fv}"))
        },
    );

    // Only meaningful when the mapping and the fine graph are themselves
    // sound; a broken mapping (or, in [`audit_hierarchy`] re-runs, a
    // corrupted fine graph) already failed its own audit and would make
    // intra_aggregate_weight panic on out-of-range labels or offsets.
    if mapping.validate().is_ok() && mapping.map.len() == fine.n() && fine.validate().is_ok() {
        let intra = intra_aggregate_weight(policy, fine, mapping);
        let (ce, fe) = (coarse.total_edge_weight(), fine.total_edge_weight());
        trace.audit(
            phase,
            "edge-weight-conservation",
            if ce + intra == fe {
                Ok(())
            } else {
                Err(format!("coarse {ce} + intra {intra} != fine {fe}"))
            },
        );
    }
}

/// Re-run every per-phase audit over an existing hierarchy, pinning any
/// corruption to `mapping/level{i}` or `construct/level{i}`. No-op unless
/// the collector has validation on.
pub fn audit_hierarchy(policy: &ExecPolicy, trace: &TraceCollector, h: &Hierarchy) {
    if !trace.validate_enabled() {
        return;
    }
    let mut fine = &h.fine;
    for (i, level) in h.levels.iter().enumerate() {
        audit_mapping(
            trace,
            &format!("mapping/level{i}"),
            fine.n(),
            &level.mapping,
        );
        audit_coarse_graph(
            policy,
            trace,
            &format!("construct/level{i}"),
            fine,
            &level.mapping,
            &level.graph,
        );
        fine = &level.graph;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multilevel::{coarsen, CoarsenOptions};
    use mlcg_graph::generators as gen;

    fn validating() -> TraceCollector {
        TraceCollector::with_config(mlcg_par::TraceConfig {
            enabled: false,
            validate: true,
        })
    }

    #[test]
    fn healthy_hierarchy_passes_every_audit() {
        let g = gen::grid2d(20, 20);
        let policy = ExecPolicy::serial();
        let h = coarsen(&policy, &g, &CoarsenOptions::default());
        let trace = validating();
        audit_hierarchy(&policy, &trace, &h);
        let report = trace.report();
        assert!(!report.audits.is_empty());
        assert!(
            report.failed_audits().is_empty(),
            "{:?}",
            report.failed_audits()
        );
    }

    #[test]
    fn corrupted_mapping_is_pinned_to_its_level() {
        let g = gen::grid2d(16, 16);
        let policy = ExecPolicy::serial();
        let mut h = coarsen(&policy, &g, &CoarsenOptions::default());
        assert!(h.num_levels() >= 2);
        h.levels[1].mapping.map[0] = u32::MAX; // UNMAPPED sentinel
        let trace = validating();
        audit_hierarchy(&policy, &trace, &h);
        let failed = trace.report().first_failed_audit().cloned().unwrap();
        assert_eq!(failed.phase, "mapping/level1");
        assert_eq!(failed.check, "mapping-complete");
    }

    #[test]
    fn disabled_collector_skips_audits() {
        let g = gen::grid2d(8, 8);
        let policy = ExecPolicy::serial();
        let mut h = coarsen(&policy, &g, &CoarsenOptions::default());
        if !h.levels.is_empty() {
            h.levels[0].mapping.map[0] = u32::MAX;
        }
        let trace = TraceCollector::disabled();
        audit_hierarchy(&policy, &trace, &h);
        assert!(trace.report().is_empty());
    }
}

//! ACE-style *weighted aggregation* coarsening.
//!
//! The paper implemented the ACE coarsening strategy (Koren, Carmel &
//! Harel's algebraic-multigrid drawing scheme; Algorithm 8 of the
//! extended report) but excluded it from results because "ACE coarsening
//! quickly makes the coarse graphs dense, and changes to preserve
//! sparsity are left for future work". This module provides both pieces:
//! the weighted-aggregation coarsener *and* the sparsity controls
//! (bounded interpolation fan-in plus a drop tolerance on the triple
//! product).
//!
//! Unlike the strict aggregation schemes, ACE maps fine vertices to
//! *several* coarse vertices with fractional weights: a coarse seed set
//! `C` is selected greedily (a vertex is skipped if it is already
//! strongly connected to the current seeds), the interpolation matrix
//! `P[u, c] ∝ w(u, c)` distributes each non-seed vertex over its coarse
//! neighbors (capped at `max_fanin` heaviest), and the coarse operator is
//! `Pᵀ·A·P` with entries below `drop_tol · max_entry(row)` discarded.

use mlcg_graph::{Csr, VId};
use mlcg_par::perm::random_permutation;
use mlcg_par::ExecPolicy;
use mlcg_sparse::{spgemm, transpose, CsrMatrix};

/// ACE coarsening parameters.
#[derive(Clone, Debug)]
pub struct AceOptions {
    /// A visited vertex becomes a seed unless at least this fraction of
    /// its weighted degree already points at seeds.
    pub strong_threshold: f64,
    /// Maximum number of coarse neighbors a fine vertex interpolates from
    /// (sparsity control #1).
    pub max_fanin: usize,
    /// Relative drop tolerance applied per coarse row after the triple
    /// product (sparsity control #2). 0.0 keeps everything.
    pub drop_tol: f64,
    /// Random seed for the visit order.
    pub seed: u64,
}

impl Default for AceOptions {
    fn default() -> Self {
        AceOptions {
            strong_threshold: 0.5,
            max_fanin: 3,
            drop_tol: 0.01,
            seed: 0xace,
        }
    }
}

/// Result of one ACE coarsening level.
#[derive(Clone, Debug)]
pub struct AceLevel {
    /// Interpolation matrix `P` (`n × n_c`), rows summing to 1.
    pub p: CsrMatrix,
    /// The coarse operator `Pᵀ·A·P` (symmetric, may carry a diagonal).
    pub coarse: CsrMatrix,
    /// Indices of the fine vertices chosen as coarse seeds.
    pub seeds: Vec<u32>,
}

/// Run one level of ACE weighted aggregation.
pub fn ace_coarsen(policy: &ExecPolicy, g: &Csr, opts: &AceOptions) -> AceLevel {
    let n = g.n();
    assert!(n > 0, "ACE requires a non-empty graph");
    // --- seed selection (sequential greedy, as in ACE) ---
    let order = random_permutation(&ExecPolicy::serial(), n, opts.seed);
    let mut is_seed = vec![false; n];
    let mut seeds: Vec<u32> = Vec::new();
    for &u in &order {
        let wd: f64 = g.weights(u).iter().map(|&w| w as f64).sum();
        let to_seeds: f64 = g
            .edges(u)
            .filter(|&(v, _)| is_seed[v as usize])
            .map(|(_, w)| w as f64)
            .sum();
        if wd == 0.0 || to_seeds < opts.strong_threshold * wd {
            is_seed[u as usize] = true;
            seeds.push(u);
        }
    }
    seeds.sort_unstable();
    let nc = seeds.len();
    let mut seed_index = vec![u32::MAX; n];
    for (i, &s) in seeds.iter().enumerate() {
        seed_index[s as usize] = i as u32;
    }

    // --- interpolation matrix ---
    let mut row_ptr = vec![0usize; n + 1];
    let mut col_idx: Vec<u32> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    for u in 0..n as VId {
        if seed_index[u as usize] != u32::MAX {
            col_idx.push(seed_index[u as usize]);
            values.push(1.0);
        } else {
            // Heaviest `max_fanin` coarse neighbors, weights normalized.
            let mut cands: Vec<(u64, u32)> = g
                .edges(u)
                .filter(|&(v, _)| seed_index[v as usize] != u32::MAX)
                .map(|(v, w)| (w, seed_index[v as usize]))
                .collect();
            // Greedy seed selection guarantees strong connectivity to C,
            // so cands is nonempty for threshold >= any positive value.
            assert!(
                !cands.is_empty(),
                "non-seed vertex {u} has no coarse neighbor (disconnected input?)"
            );
            cands.sort_unstable_by(|a, b| b.cmp(a));
            cands.truncate(opts.max_fanin);
            cands.sort_unstable_by_key(|&(_, c)| c);
            let total: f64 = cands.iter().map(|&(w, _)| w as f64).sum();
            for (w, c) in cands {
                col_idx.push(c);
                values.push(w as f64 / total);
            }
        }
        row_ptr[u as usize + 1] = col_idx.len();
    }
    let p = CsrMatrix {
        n_rows: n,
        n_cols: nc,
        row_ptr: mlcg_graph::Offsets::from_usize(row_ptr),
        col_idx,
        values,
    };

    // --- coarse operator with drop tolerance ---
    let a = CsrMatrix::from_graph(g);
    let pt = transpose(&p);
    let pta = spgemm(policy, &pt, &a);
    let mut coarse = spgemm(policy, &pta, &p);
    if opts.drop_tol > 0.0 {
        coarse = drop_small(&coarse, opts.drop_tol);
    }
    AceLevel { p, coarse, seeds }
}

/// Drop entries below `tol · row_max` (keeping the diagonal), rebuilding
/// the CSR arrays.
fn drop_small(a: &CsrMatrix, tol: f64) -> CsrMatrix {
    let mut row_ptr = Vec::with_capacity(a.n_rows + 1);
    let mut col_idx = Vec::with_capacity(a.nnz());
    let mut values = Vec::with_capacity(a.nnz());
    row_ptr.push(0);
    for i in 0..a.n_rows {
        let (cols, vals) = a.row(i);
        let row_max = vals.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        for (&c, &v) in cols.iter().zip(vals) {
            if c as usize == i || v.abs() >= tol * row_max {
                col_idx.push(c);
                values.push(v);
            }
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix {
        n_rows: a.n_rows,
        n_cols: a.n_cols,
        row_ptr: mlcg_graph::Offsets::from_usize(row_ptr),
        col_idx,
        values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcg_graph::generators as gen;

    fn opts() -> AceOptions {
        AceOptions::default()
    }

    #[test]
    fn interpolation_rows_sum_to_one() {
        let g = gen::grid2d(12, 12);
        let lvl = ace_coarsen(&ExecPolicy::serial(), &g, &opts());
        lvl.p.validate().unwrap();
        for u in 0..g.n() {
            let (_, vals) = lvl.p.row(u);
            let s: f64 = vals.iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "row {u} sums to {s}");
        }
    }

    #[test]
    fn coarse_is_smaller_and_symmetric() {
        let g = gen::grid2d(16, 16);
        let lvl = ace_coarsen(&ExecPolicy::serial(), &g, &opts());
        assert!(
            lvl.seeds.len() < g.n(),
            "no coarsening: {} seeds",
            lvl.seeds.len()
        );
        assert!(lvl.seeds.len() > g.n() / 20, "absurdly aggressive");
        // Pᵀ A P with drop_tol 0 is exactly symmetric; with a tolerance it
        // stays numerically symmetric because drops are row-relative on a
        // symmetric matrix.
        let c = &lvl.coarse;
        let ct = transpose(c);
        for i in 0..c.n_rows {
            let (c1, v1) = c.row(i);
            let (c2, v2) = ct.row(i);
            assert_eq!(c1, c2, "row {i} pattern asymmetric");
            for (a, b) in v1.iter().zip(v2) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn fanin_cap_limits_p_density() {
        let g = gen::complete(20);
        let o = AceOptions {
            max_fanin: 2,
            ..opts()
        };
        let lvl = ace_coarsen(&ExecPolicy::serial(), &g, &o);
        for u in 0..g.n() {
            assert!(lvl.p.row(u).0.len() <= 2, "fan-in exceeded at {u}");
        }
    }

    #[test]
    fn drop_tolerance_controls_density() {
        let (g, _) = mlcg_graph::cc::largest_component(&gen::rmat(9, 8, 0.57, 0.19, 0.19, 3));
        let dense = ace_coarsen(
            &ExecPolicy::serial(),
            &g,
            &AceOptions {
                drop_tol: 0.0,
                ..opts()
            },
        );
        let sparse = ace_coarsen(
            &ExecPolicy::serial(),
            &g,
            &AceOptions {
                drop_tol: 0.05,
                ..opts()
            },
        );
        assert_eq!(dense.seeds, sparse.seeds, "same seeds, different drops");
        assert!(
            sparse.coarse.nnz() < dense.coarse.nnz(),
            "drop tolerance must shed entries: {} vs {}",
            sparse.coarse.nnz(),
            dense.coarse.nnz()
        );
    }

    #[test]
    fn seeds_dominate_the_graph() {
        // Every non-seed is strongly connected to the seed set by
        // construction (at least `strong_threshold` of its weighted degree).
        let g = gen::delaunay_like(15, 15, 3);
        let lvl = ace_coarsen(&ExecPolicy::serial(), &g, &opts());
        let mut is_seed = vec![false; g.n()];
        for &s in &lvl.seeds {
            is_seed[s as usize] = true;
        }
        for u in 0..g.n() as u32 {
            if is_seed[u as usize] {
                continue;
            }
            let wd: f64 = g.weights(u).iter().map(|&w| w as f64).sum();
            let to_seeds: f64 = g
                .edges(u)
                .filter(|&(v, _)| is_seed[v as usize])
                .map(|(_, w)| w as f64)
                .sum();
            assert!(
                to_seeds >= 0.5 * wd - 1e-9,
                "vertex {u} weakly connected to seeds ({to_seeds}/{wd})"
            );
        }
    }

    #[test]
    fn every_non_seed_interpolates_from_a_neighbor_seed() {
        // The threshold guarantees at least one coarse neighbor, so P has
        // no zero rows and no chained interpolation.
        let g = gen::path(20);
        let lvl = ace_coarsen(&ExecPolicy::serial(), &g, &opts());
        for u in 0..g.n() {
            assert!(!lvl.p.row(u).0.is_empty(), "empty interpolation row {u}");
        }
        // And a path cannot go three consecutive non-seeds under 0.5.
        let mut is_seed = vec![false; g.n()];
        for &s in &lvl.seeds {
            is_seed[s as usize] = true;
        }
        for w in is_seed.windows(3) {
            assert!(w.iter().any(|&s| s), "three adjacent non-seeds");
        }
    }
}

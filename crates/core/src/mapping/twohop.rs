//! mt-Metis-style two-hop matching (the paper's Algorithms 11–13, here for
//! both CPU and the device-sim policy).
//!
//! After HEM, if the unmatched fraction exceeds a threshold (we use the
//! mt-Metis engagement ratio of 0.25), vertices that share a neighbor are
//! matched even though they are not adjacent, in three escalating classes:
//!
//! 1. **leaves** — degree-1 vertices hanging off the same vertex;
//! 2. **twins** — vertices with identical adjacency lists (degree-capped);
//! 3. **relatives** — any two unmatched vertices adjacent to the same
//!    intermediary (skipping very high-degree intermediaries).
//!
//! Each later class runs only if the previous classes left the unmatched
//! ratio above the threshold, mirroring mt-Metis.

use super::hem::{finalize_singletons, hem_raw_in};
use super::util::relabel_in;
use super::workspace::MapWorkspace;
use super::{MapStats, Mapping, UNMAPPED};
use mlcg_graph::{Csr, VId};
use mlcg_par::atomic::as_atomic_u32;
use mlcg_par::filter::filter_range_in;
use mlcg_par::rng::mix;
use mlcg_par::sort::par_radix_sort_pairs;
use mlcg_par::{parallel_count, parallel_for, profile, ExecPolicy};
use std::sync::atomic::Ordering;

/// Tuning knobs for the two-hop stages (defaults follow mt-Metis).
#[derive(Clone, Debug)]
pub struct TwoHopConfig {
    /// Engage two-hop stages while `unmatched / n` exceeds this.
    pub unmatched_ratio: f64,
    /// Twins are only sought among vertices of at most this degree.
    pub twin_degree_cap: usize,
    /// Relatives skip intermediaries with more neighbors than this.
    pub relative_degree_cap: usize,
}

impl Default for TwoHopConfig {
    fn default() -> Self {
        TwoHopConfig {
            unmatched_ratio: 0.25,
            twin_degree_cap: 64,
            relative_degree_cap: 1024,
        }
    }
}

/// Engage two-hop stages while `unmatched / n` exceeds this (mt-Metis').
pub const UNMATCHED_RATIO: f64 = 0.25;
/// Twins are only sought among vertices of at most this degree.
pub const TWIN_DEGREE_CAP: usize = 64;
/// Relatives skip intermediaries with more neighbors than this.
pub const RELATIVE_DEGREE_CAP: usize = 1024;

const FREE: u32 = u32::MAX;

/// HEM followed by threshold-gated leaf, twin, and relative matching,
/// with the default mt-Metis thresholds.
pub fn mtmetis(policy: &ExecPolicy, g: &Csr, seed: u64) -> (Mapping, MapStats) {
    mtmetis_with(policy, g, seed, &TwoHopConfig::default())
}

/// [`mtmetis`] through a level-reused workspace.
pub fn mtmetis_in(
    policy: &ExecPolicy,
    g: &Csr,
    seed: u64,
    ws: &mut MapWorkspace,
) -> (Mapping, MapStats) {
    mtmetis_with_in(policy, g, seed, &TwoHopConfig::default(), ws)
}

/// [`mtmetis`] with explicit thresholds.
pub fn mtmetis_with(
    policy: &ExecPolicy,
    g: &Csr,
    seed: u64,
    cfg: &TwoHopConfig,
) -> (Mapping, MapStats) {
    mtmetis_with_in(policy, g, seed, cfg, &mut MapWorkspace::new())
}

/// [`mtmetis_with`] through a level-reused workspace.
pub fn mtmetis_with_in(
    policy: &ExecPolicy,
    g: &Csr,
    seed: u64,
    cfg: &TwoHopConfig,
    ws: &mut MapWorkspace,
) -> (Mapping, MapStats) {
    let n = g.n();
    let (mut raw, mut stats) = hem_raw_in(policy, g, seed, ws);
    if n > 1 {
        let unmatched = |m: &[u32]| parallel_count(policy, n, |u| m[u] == UNMAPPED);
        if unmatched(&raw) as f64 > cfg.unmatched_ratio * n as f64 {
            match_leaves(policy, g, &mut raw);
            stats.passes += 1;
            if unmatched(&raw) as f64 > cfg.unmatched_ratio * n as f64 {
                match_twins_capped_in(policy, g, &mut raw, cfg.twin_degree_cap, ws);
                stats.passes += 1;
                if unmatched(&raw) as f64 > cfg.unmatched_ratio * n as f64 {
                    match_relatives_capped_in(policy, g, &mut raw, cfg.relative_degree_cap, ws);
                    stats.passes += 1;
                }
            }
        }
    }
    (relabel_in(policy, finalize_singletons(raw), ws), stats)
}

/// Pair unmatched degree-1 vertices that hang off the same vertex
/// (Algorithm 11). A leaf has exactly one incident vertex, so iterating
/// over intermediaries partitions the candidates — no claiming needed.
pub fn match_leaves(policy: &ExecPolicy, g: &Csr, m: &mut [u32]) {
    let _k = profile::kernel("leaves");
    let n = g.n();
    let m_at = as_atomic_u32(m);
    parallel_for(policy, n, |h| {
        let mut prev: Option<u32> = None;
        for &v in g.neighbors(h as VId) {
            // A leaf's single incident vertex is `h`, so only this
            // iteration can write these slots — relaxed atomics suffice.
            if m_at[v as usize].load(Ordering::Relaxed) != UNMAPPED || g.degree(v) != 1 {
                continue;
            }
            match prev.take() {
                None => prev = Some(v),
                Some(a) => {
                    let label = a.min(v);
                    m_at[a as usize].store(label, Ordering::Relaxed);
                    m_at[v as usize].store(label, Ordering::Relaxed);
                }
            }
        }
    });
}

/// Pair unmatched vertices with *identical* adjacency lists
/// (Algorithm 12). Candidates are hashed by adjacency, sorted by hash, and
/// equal-hash runs are verified and paired.
pub fn match_twins(policy: &ExecPolicy, g: &Csr, m: &mut [u32]) {
    match_twins_capped(policy, g, m, TWIN_DEGREE_CAP)
}

/// [`match_twins`] with an explicit degree cap.
pub fn match_twins_capped(policy: &ExecPolicy, g: &Csr, m: &mut [u32], cap: usize) {
    match_twins_capped_in(policy, g, m, cap, &mut MapWorkspace::new())
}

/// [`match_twins_capped`] through a level-reused workspace: the candidate
/// list is gathered with a parallel compaction into `ws.qscratch` and the
/// adjacency hashes live in `ws.perm_keys`.
pub(crate) fn match_twins_capped_in(
    policy: &ExecPolicy,
    g: &Csr,
    m: &mut [u32],
    cap: usize,
    ws: &mut MapWorkspace,
) {
    let _k = profile::kernel("twins");
    let n = g.n();
    filter_range_in(
        policy,
        n,
        |u| m[u as usize] == UNMAPPED && (2..=cap).contains(&g.degree(u)),
        &mut ws.fcounts,
        &mut ws.qscratch,
    );
    let candidates = &mut ws.qscratch;
    if candidates.len() < 2 {
        return;
    }
    let keys = &mut ws.perm_keys;
    keys.clear();
    keys.resize(candidates.len(), 0);
    {
        let base = keys.as_mut_ptr() as usize;
        let cand = &*candidates;
        parallel_for(policy, cand.len(), move |i| {
            let u = cand[i];
            let mut acc = 0xcbf29ce484222325u64 ^ g.degree(u) as u64;
            for &v in g.neighbors(u) {
                acc = mix(acc ^ v as u64);
            }
            // SAFETY: disjoint writes per candidate.
            unsafe {
                (base as *mut u64).add(i).write(acc);
            }
        });
    }
    par_radix_sort_pairs(policy, keys, candidates);
    // Sequential pairing within equal-hash runs (runs are tiny).
    let mut i = 0;
    while i < candidates.len() {
        let mut j = i + 1;
        while j < candidates.len() && keys[j] == keys[i] {
            j += 1;
        }
        let run = &candidates[i..j];
        let mut used = vec![false; run.len()];
        for a_idx in 0..run.len() {
            if used[a_idx] || m[run[a_idx] as usize] != UNMAPPED {
                continue;
            }
            for b_idx in (a_idx + 1)..run.len() {
                if used[b_idx] || m[run[b_idx] as usize] != UNMAPPED {
                    continue;
                }
                let (a, b) = (run[a_idx], run[b_idx]);
                if g.neighbors(a) == g.neighbors(b) {
                    let label = a.min(b);
                    m[a as usize] = label;
                    m[b as usize] = label;
                    used[a_idx] = true;
                    used[b_idx] = true;
                    break;
                }
            }
        }
        i = j;
    }
}

/// Pair any two unmatched vertices adjacent to the same intermediary
/// (Algorithm 13). A vertex may appear under several intermediaries, so
/// ownership is claimed with a CAS array before the (sequential per
/// intermediary) pairing.
pub fn match_relatives(policy: &ExecPolicy, g: &Csr, m: &mut [u32]) {
    match_relatives_capped(policy, g, m, RELATIVE_DEGREE_CAP)
}

/// [`match_relatives`] with an explicit intermediary degree cap.
pub fn match_relatives_capped(policy: &ExecPolicy, g: &Csr, m: &mut [u32], cap: usize) {
    match_relatives_capped_in(policy, g, m, cap, &mut MapWorkspace::new())
}

/// [`match_relatives_capped`] with the claim array pooled in `ws.own`.
pub(crate) fn match_relatives_capped_in(
    policy: &ExecPolicy,
    g: &Csr,
    m: &mut [u32],
    cap: usize,
    ws: &mut MapWorkspace,
) {
    let _k = profile::kernel("relatives");
    let n = g.n();
    MapWorkspace::filled(&mut ws.own, n, FREE);
    let c_at = as_atomic_u32(&mut ws.own);
    let m_at = as_atomic_u32(m);
    parallel_for(policy, n, |h| {
        if g.degree(h as VId) > cap {
            return;
        }
        let mut prev: Option<u32> = None;
        for &v in g.neighbors(h as VId) {
            if m_at[v as usize].load(Ordering::Acquire) != UNMAPPED {
                continue;
            }
            if c_at[v as usize]
                .compare_exchange(FREE, h as u32, Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
            {
                continue; // claimed under another intermediary
            }
            match prev.take() {
                None => prev = Some(v),
                Some(a) => {
                    // Both slots are exclusively claimed via `c`.
                    let label = a.min(v);
                    m_at[a as usize].store(label, Ordering::Release);
                    m_at[v as usize].store(label, Ordering::Release);
                }
            }
        }
        if let Some(a) = prev {
            c_at[a as usize].store(FREE, Ordering::Release);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{testkit, MapMethod};
    use mlcg_graph::builder::from_edges_unit;
    use mlcg_graph::generators as gen;

    #[test]
    fn battery() {
        testkit::run_battery(MapMethod::MtMetis);
    }

    #[test]
    fn still_a_matching() {
        for (name, g) in testkit::battery() {
            let (m, _) = mtmetis(&ExecPolicy::serial(), &g, 5);
            let max = m.aggregate_sizes().into_iter().max().unwrap_or(0);
            assert!(
                max <= 2,
                "{name}: two-hop matching still pairs, got size {max}"
            );
        }
    }

    #[test]
    fn leaves_fix_the_star_stall() {
        let g = gen::star(41); // hub + 40 leaves
        let (hem_m, _) = super::super::hem::hem(&ExecPolicy::serial(), &g, 3);
        let (th_m, _) = mtmetis(&ExecPolicy::serial(), &g, 3);
        assert!(
            th_m.n_coarse < hem_m.n_coarse / 2 + 2,
            "two-hop {} vs HEM {}",
            th_m.n_coarse,
            hem_m.n_coarse
        );
        // Hub pairs with one leaf (HEM), remaining 39 leaves pair among
        // themselves (19 pairs + 1 leftover singleton) = 21 aggregates.
        assert_eq!(th_m.n_coarse, 21);
    }

    #[test]
    fn leaf_pairs_share_their_intermediary() {
        let g = gen::star(20);
        let mut m = vec![UNMAPPED; g.n()];
        m[0] = 0; // pretend the hub is matched so only leaves remain
        match_leaves(&ExecPolicy::serial(), &g, &mut m);
        let mut pair_count = 0;
        let mut groups = std::collections::HashMap::new();
        for (u, &l) in m.iter().enumerate().skip(1) {
            if l != UNMAPPED {
                *groups.entry(l).or_insert(0) += 1;
                let _ = u;
            }
        }
        for (_, c) in groups {
            assert_eq!(c, 2);
            pair_count += 1;
        }
        assert!(
            pair_count >= 9,
            "19 leaves should form 9 pairs, got {pair_count}"
        );
    }

    #[test]
    fn twins_match_identical_neighborhoods() {
        // 0 and 1 both adjacent to exactly {2, 3} — twins (not adjacent).
        let g = from_edges_unit(4, &[(0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let mut m = vec![UNMAPPED; 4];
        m[2] = 2;
        m[3] = 2; // block the direct matching
        match_twins(&ExecPolicy::serial(), &g, &mut m);
        assert_eq!(m[0], m[1], "twins must pair");
        assert_ne!(m[0], UNMAPPED);
    }

    #[test]
    fn twins_require_exact_equality() {
        // 0 ~ {2,3}, 1 ~ {2,4}: common neighbor but not twins.
        let g = from_edges_unit(5, &[(0, 2), (0, 3), (1, 2), (1, 4)]);
        let mut m = vec![UNMAPPED; 5];
        m[2] = 2;
        m[3] = 3;
        m[4] = 4;
        match_twins(&ExecPolicy::serial(), &g, &mut m);
        assert_eq!(m[0], UNMAPPED);
        assert_eq!(m[1], UNMAPPED);
    }

    #[test]
    fn relatives_pair_through_intermediary() {
        // Path 0-1-2: 0 and 2 are relatives through 1.
        let g = gen::path(3);
        let mut m = vec![UNMAPPED; 3];
        m[1] = 1;
        match_relatives(&ExecPolicy::serial(), &g, &mut m);
        assert_eq!(m[0], m[2]);
        assert_ne!(m[0], UNMAPPED);
    }

    #[test]
    fn relatives_never_double_match() {
        // Dense bipartite-ish graph where many intermediaries see the same
        // unmatched candidates.
        let (g, _) = mlcg_graph::cc::largest_component(&gen::rmat(9, 10, 0.5, 0.2, 0.2, 8));
        for policy in ExecPolicy::all_test_policies() {
            let mut m = vec![UNMAPPED; g.n()];
            match_relatives(&policy, &g, &mut m);
            // Every non-UNMAPPED label names a group of exactly 2.
            let mut counts = std::collections::HashMap::new();
            for &l in m.iter().filter(|&&l| l != UNMAPPED) {
                *counts.entry(l).or_insert(0usize) += 1;
            }
            for (l, c) in counts {
                assert_eq!(c, 2, "label {l} has {c} members under {policy}");
            }
        }
    }

    #[test]
    fn better_than_hem_on_skewed_graphs() {
        let (g, _) = mlcg_graph::cc::largest_component(&gen::rmat(10, 6, 0.6, 0.18, 0.18, 4));
        let p = ExecPolicy::serial();
        let (hm, _) = super::super::hem::hem(&p, &g, 9);
        let (tm, _) = mtmetis(&p, &g, 9);
        assert!(
            tm.n_coarse <= hm.n_coarse,
            "two-hop should never coarsen less: {} vs {}",
            tm.n_coarse,
            hm.n_coarse
        );
    }
}

//! Fine-to-coarse vertex mapping algorithms (`FindCoarseMapping` in
//! Algorithm 1).

pub mod classify;
pub mod gosh;
pub mod hec;
pub mod hec23;
pub mod hem;
pub mod mis2;
pub mod seq;
pub mod suitor;
pub mod twohop;
pub mod util;
pub mod workspace;

pub use workspace::MapWorkspace;

use mlcg_graph::Csr;
use mlcg_par::{profile, ExecPolicy};

/// Sentinel for "not yet mapped" (the paper's `M[u] = 0`).
pub const UNMAPPED: u32 = u32::MAX;

/// A fine-to-coarse vertex mapping: `map[u]` is the coarse vertex of fine
/// vertex `u`, with labels contiguous in `0..n_coarse`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mapping {
    /// Coarse label per fine vertex.
    pub map: Vec<u32>,
    /// Number of coarse vertices.
    pub n_coarse: usize,
}

impl Mapping {
    /// Check completeness (no `UNMAPPED`) and label contiguity.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = vec![false; self.n_coarse];
        for (u, &m) in self.map.iter().enumerate() {
            if m == UNMAPPED {
                return Err(format!("vertex {u} unmapped"));
            }
            if (m as usize) >= self.n_coarse {
                return Err(format!("label {m} out of range at vertex {u}"));
            }
            seen[m as usize] = true;
        }
        if let Some(hole) = seen.iter().position(|&s| !s) {
            return Err(format!("coarse label {hole} unused"));
        }
        Ok(())
    }

    /// Sizes of all aggregates.
    pub fn aggregate_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.n_coarse];
        for &m in &self.map {
            sizes[m as usize] += 1;
        }
        sizes
    }

    /// `n_fine / n_coarse` for this one level.
    pub fn coarsening_ratio(&self) -> f64 {
        if self.n_coarse == 0 {
            0.0
        } else {
            self.map.len() as f64 / self.n_coarse as f64
        }
    }
}

/// Per-run statistics recorded by the mapping algorithms.
#[derive(Clone, Debug, Default)]
pub struct MapStats {
    /// Passes executed (Algorithm 4 loops until the work queue drains).
    pub passes: usize,
    /// Vertices resolved in each of the first
    /// [`MapStats::RESOLVED_PASS_CAP`] passes (HEC-family only). The pass
    /// loop is bounded only defensively (`64 + 2n`), so the vector is
    /// capacity-bounded; later passes accumulate into
    /// [`MapStats::resolved_overflow`].
    pub resolved_per_pass: Vec<usize>,
    /// Vertices resolved in passes beyond the per-pass cap.
    pub resolved_overflow: usize,
}

impl MapStats {
    /// Upper bound on `resolved_per_pass.len()`. The paper reports ≥99 %
    /// of vertices settle within two passes; 32 entries keep every
    /// observed run exact while bounding the allocation.
    pub const RESOLVED_PASS_CAP: usize = 32;

    /// Record one pass's resolved count, respecting the cap.
    pub fn record_resolved(&mut self, resolved: usize) {
        if self.resolved_per_pass.len() < Self::RESOLVED_PASS_CAP {
            self.resolved_per_pass.push(resolved);
        } else {
            self.resolved_overflow += resolved;
        }
    }

    /// Total vertices resolved across all passes (including overflow).
    pub fn resolved_total(&self) -> usize {
        self.resolved_per_pass.iter().sum::<usize>() + self.resolved_overflow
    }
}

/// Which mapping algorithm to run. See the crate docs for the table of
/// paper references.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MapMethod {
    /// Lock-free parallel Heavy Edge Coarsening (Algorithm 4).
    Hec,
    /// Two-array race-free HEC variant (HEC2).
    Hec2,
    /// Pseudoforest HEC variant with pointer jumping (Algorithm 5, HEC3).
    Hec3,
    /// Multi-pass parallel Heavy Edge Matching.
    Hem,
    /// HEM followed by two-hop matching (leaves, twins, relatives) with
    /// mt-Metis thresholds.
    MtMetis,
    /// GOSH coarsening: degree-ordered MIS-style aggregation.
    Gosh,
    /// New hybrid of GOSH and HEC (weighted, skips high-degree adjacencies).
    GoshHec,
    /// Distance-2 maximal-independent-set aggregation (Bell et al.).
    Mis2,
    /// Suitor approximate weighted matching (Manne & Halappanavar) — the
    /// paper's listed future-work comparison, implemented here.
    Suitor,
    /// Sequential HEC reference (Algorithm 3).
    SeqHec,
    /// Sequential HEM reference (Algorithm 2).
    SeqHem,
}

impl MapMethod {
    /// All parallel methods evaluated by the paper's Table IV.
    pub const TABLE4: [MapMethod; 5] = [
        MapMethod::Hec,
        MapMethod::Hem,
        MapMethod::MtMetis,
        MapMethod::Gosh,
        MapMethod::Mis2,
    ];

    /// Stable lowercase name used by the benchmark harness.
    pub fn name(&self) -> &'static str {
        match self {
            MapMethod::Hec => "hec",
            MapMethod::Hec2 => "hec2",
            MapMethod::Hec3 => "hec3",
            MapMethod::Hem => "hem",
            MapMethod::MtMetis => "mtmetis",
            MapMethod::Gosh => "gosh",
            MapMethod::GoshHec => "goshec",
            MapMethod::Mis2 => "mis2",
            MapMethod::Suitor => "suitor",
            MapMethod::SeqHec => "seq-hec",
            MapMethod::SeqHem => "seq-hem",
        }
    }

    /// Parse a harness name back into a method.
    pub fn parse(s: &str) -> Option<MapMethod> {
        Some(match s {
            "hec" => MapMethod::Hec,
            "hec2" => MapMethod::Hec2,
            "hec3" => MapMethod::Hec3,
            "hem" => MapMethod::Hem,
            "mtmetis" => MapMethod::MtMetis,
            "gosh" => MapMethod::Gosh,
            "goshec" => MapMethod::GoshHec,
            "mis2" => MapMethod::Mis2,
            "suitor" => MapMethod::Suitor,
            "seq-hec" => MapMethod::SeqHec,
            "seq-hem" => MapMethod::SeqHem,
            _ => return None,
        })
    }
}

/// Run the selected mapping algorithm on a connected weighted graph.
///
/// The randomized visit order is derived from `seed`; results are
/// deterministic for the serial policy and a fixed seed, and vary only in
/// tie-resolution order under parallel policies.
///
/// ```
/// use mlcg_coarsen::{find_mapping, MapMethod};
/// use mlcg_par::ExecPolicy;
///
/// let g = mlcg_graph::generators::grid2d(8, 8);
/// let (mapping, stats) = find_mapping(&ExecPolicy::host(), &g, MapMethod::Hec, 42);
/// assert!(mapping.validate().is_ok());
/// assert!(mapping.n_coarse < g.n());
/// assert!(stats.passes >= 1);
/// ```
pub fn find_mapping(
    policy: &ExecPolicy,
    g: &Csr,
    method: MapMethod,
    seed: u64,
) -> (Mapping, MapStats) {
    find_mapping_in(policy, g, method, seed, &mut MapWorkspace::new())
}

/// [`find_mapping`] through a caller-owned [`MapWorkspace`]: the
/// allocation-free form the multilevel driver uses, so levels after the
/// first reuse the previous level's scratch capacity. Results are
/// bit-identical to the fresh-workspace form (pinned by
/// `mapping_props.rs`).
///
/// All mapping kernels run under the `map` profiler label, so dispatches
/// show up as `par_for/map/<phase>` in Chrome traces — mirroring
/// construction's `par_for/construct/<phase>` scheme.
pub fn find_mapping_in(
    policy: &ExecPolicy,
    g: &Csr,
    method: MapMethod,
    seed: u64,
    ws: &mut MapWorkspace,
) -> (Mapping, MapStats) {
    let _k = profile::kernel("map");
    match method {
        MapMethod::Hec => hec::hec_in(policy, g, seed, ws),
        MapMethod::Hec2 => hec23::hec2_in(policy, g, seed, ws),
        MapMethod::Hec3 => hec23::hec3_in(policy, g, seed, ws),
        MapMethod::Hem => hem::hem_in(policy, g, seed, ws),
        MapMethod::MtMetis => twohop::mtmetis_in(policy, g, seed, ws),
        MapMethod::Gosh => gosh::gosh_in(policy, g, seed, ws),
        MapMethod::GoshHec => gosh::gosh_hec_in(policy, g, seed, ws),
        MapMethod::Mis2 => mis2::mis2_in(policy, g, seed, ws),
        MapMethod::Suitor => suitor::suitor_in(policy, g, seed, ws),
        MapMethod::SeqHec => seq::seq_hec_in(g, seed, ws),
        MapMethod::SeqHem => seq::seq_hem_in(g, seed, ws),
    }
}

#[cfg(test)]
pub(crate) mod testkit {
    use super::*;
    use mlcg_graph::generators as gen;

    /// Graphs exercised by every mapping algorithm's shared test battery.
    pub fn battery() -> Vec<(&'static str, Csr)> {
        vec![
            ("path", gen::path(50)),
            ("cycle", gen::cycle(33)),
            ("star", gen::star(40)),
            ("complete", gen::complete(12)),
            ("grid", gen::grid2d(12, 9)),
            ("delaunay", {
                let (g, _) = mlcg_graph::cc::largest_component(&gen::delaunay_like(15, 15, 3));
                g
            }),
            ("rmat", {
                let (g, _) =
                    mlcg_graph::cc::largest_component(&gen::rmat(8, 6, 0.57, 0.19, 0.19, 5));
                g
            }),
            ("two-vertex", gen::path(2)),
        ]
    }

    /// Assert the universal mapping postconditions on one graph.
    pub fn check_mapping(name: &str, g: &Csr, m: &Mapping) {
        assert_eq!(m.map.len(), g.n(), "{name}: map length");
        m.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(m.n_coarse >= 1, "{name}: empty coarse set");
        assert!(
            m.n_coarse < g.n() || g.n() <= 1,
            "{name}: no coarsening progress"
        );
    }

    /// Run a method over the battery under every test policy.
    pub fn run_battery(method: MapMethod) {
        for policy in ExecPolicy::all_test_policies() {
            for (name, g) in battery() {
                let (m, _) = find_mapping(&policy, &g, method, 42);
                check_mapping(name, &g, &m);
            }
        }
    }

    /// Assert every aggregate is connected in the fine graph — true for all
    /// the paper's strict aggregation schemes.
    pub fn check_aggregates_connected(g: &Csr, m: &Mapping) {
        use mlcg_graph::cc::Dsu;
        // Union fine endpoints of intra-aggregate edges; each aggregate must
        // form a single set.
        let mut dsu = Dsu::new(g.n());
        for u in 0..g.n() as u32 {
            for &v in g.neighbors(u) {
                if v > u && m.map[u as usize] == m.map[v as usize] {
                    dsu.union(u, v);
                }
            }
        }
        let mut root_of_agg: Vec<Option<u32>> = vec![None; m.n_coarse];
        for u in 0..g.n() as u32 {
            let a = m.map[u as usize] as usize;
            let r = dsu.find(u);
            match root_of_agg[a] {
                None => root_of_agg[a] = Some(r),
                Some(prev) => assert_eq!(prev, r, "aggregate {a} is disconnected"),
            }
        }
    }
}

//! The alternate HEC parallelizations: HEC3 (the paper's Algorithm 5) and
//! HEC2 (Algorithm 9 of the extended report).
//!
//! Both decouple coarse-vertex creation from the inherit/skip handling so
//! almost no fine-grained synchronization remains, at the cost of less
//! aggressive coarsening (the paper measures 1.26× / 1.56× more levels than
//! Algorithm 4 for HEC3 / HEC2):
//!
//! - **HEC3** views the heavy-edge set as a pseudoforest: it collapses the
//!   mutual (2-cycle) pairs, marks every heavy-target as a coarse root with
//!   a single idempotent CAS, points every remaining vertex at its target's
//!   root, and resolves any residual chains by pointer jumping.
//! - **HEC2** omits the 2-cycle collapse and uses two plain arrays (the
//!   `X`/`Y` of the report) so coarse ids are assigned without races: every
//!   heavy-target roots itself; everyone else joins its target.
//!
//! Root/representative selection is randomized through the permutation `P`
//! (mutual pairs keep the endpoint that appears *earlier* in `P`), matching
//! the `O[·]` indirection in the paper's pseudocode.
//!
//! Both variants end with a full sweep that writes every final raw label,
//! so the relabel flag-mark pass is *fused* into that sweep (an idempotent
//! `flag[label] = 1` alongside the label write) and the relabel runs in
//! its premarked form — one fewer O(n) traversal per level.

use super::util::{heavy_neighbors_in, prepare_premark, relabel_premarked_in};
use super::workspace::MapWorkspace;
use super::{MapStats, Mapping, UNMAPPED};
use mlcg_graph::Csr;
use mlcg_par::atomic::as_atomic_u32;
use mlcg_par::perm::{invert_permutation_in, random_permutation_in};
use mlcg_par::{parallel_for, ExecPolicy};
use std::sync::atomic::Ordering;

/// HEC3 — Algorithm 5.
pub fn hec3(policy: &ExecPolicy, g: &Csr, seed: u64) -> (Mapping, MapStats) {
    hec3_in(policy, g, seed, &mut MapWorkspace::new())
}

/// [`hec3`] through a level-reused workspace.
pub fn hec3_in(
    policy: &ExecPolicy,
    g: &Csr,
    seed: u64,
    ws: &mut MapWorkspace,
) -> (Mapping, MapStats) {
    let n = g.n();
    if n <= 1 {
        return (
            Mapping {
                map: vec![0; n.min(1)],
                n_coarse: n.min(1),
            },
            MapStats::default(),
        );
    }
    heavy_neighbors_in(policy, g, &mut ws.heavy);
    random_permutation_in(policy, n, seed, &mut ws.perm_keys, &mut ws.queue);
    // pos[u] = random priority of u.
    {
        let (queue, pos) = (&ws.queue, &mut ws.pos);
        invert_permutation_in(policy, queue, pos);
    }

    let mut m = vec![UNMAPPED; n];

    // Phase 1 (lines 5-8): collapse mutual heavy pairs, keeping the
    // endpoint with the smaller random position as representative.
    {
        let base = m.as_mut_ptr() as usize;
        let (h_ref, pos_ref) = (&ws.heavy, &ws.pos);
        parallel_for(policy, n, move |u| {
            let v = h_ref[u] as usize;
            if h_ref[v] as usize == u {
                let root = if pos_ref[u] <= pos_ref[v] { u } else { v };
                // SAFETY: both endpoints compute the same root; idempotent.
                unsafe {
                    (base as *mut u32).add(u).write(root as u32);
                }
            }
        });
    }
    // Phase 2 (lines 9-12): mark heavy-targets as self-roots. The paper
    // notes the plain-read guard skips unnecessary random atomic writes.
    {
        let m_at = as_atomic_u32(&mut m);
        let h_ref = &ws.heavy;
        parallel_for(policy, n, move |u| {
            let v = h_ref[u] as usize;
            if m_at[v].load(Ordering::Relaxed) == UNMAPPED {
                let _ = m_at[v].compare_exchange(
                    UNMAPPED,
                    v as u32,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                );
            }
        });
    }
    // Phase 3 (lines 13-16): everyone else joins its heavy target.
    {
        MapWorkspace::snapshot(&mut ws.snap, &m);
        let base = m.as_mut_ptr() as usize;
        let (h_ref, snap) = (&ws.heavy, &ws.snap);
        parallel_for(policy, n, move |u| {
            if snap[u] == UNMAPPED {
                let v = h_ref[u] as usize;
                // v has in-degree >= 1, so phase 1 or 2 assigned it.
                debug_assert_ne!(snap[v], UNMAPPED);
                // SAFETY: disjoint writes (u was UNMAPPED in the snapshot,
                // so no other phase wrote it).
                unsafe {
                    (base as *mut u32).add(u).write(snap[v]);
                }
            }
        });
    }
    // Phase 4 (lines 17-21): pointer jumping to the aggregate root, with
    // the relabel flag-mark fused into the same sweep.
    {
        MapWorkspace::snapshot(&mut ws.snap, &m);
        prepare_premark(ws, n);
        let base = m.as_mut_ptr() as usize;
        let flag_base = ws.flag.as_mut_ptr() as usize;
        let snap = &ws.snap;
        parallel_for(policy, n, move |u| {
            let mut r = snap[u] as usize;
            let mut hops = 0;
            while snap[r] as usize != r {
                r = snap[snap[r] as usize] as usize;
                hops += 1;
                debug_assert!(hops <= snap.len(), "pointer-jump cycle");
            }
            // SAFETY: disjoint label writes per index; flag writes are
            // idempotent (racing threads all write 1).
            unsafe {
                (base as *mut u32).add(u).write(r as u32);
                (flag_base as *mut u32).add(r).write(1);
            }
        });
    }
    let mapping = relabel_premarked_in(policy, m, ws); // FindUniqAndRelabel (line 22)
    (
        mapping,
        MapStats {
            passes: 4,
            resolved_per_pass: vec![n],
            resolved_overflow: 0,
        },
    )
}

/// HEC2 — the intermediate variant. Two arrays make the id assignment
/// race-free without HEC3's explicit 2-cycle loop:
///
/// - `X[v]`: the *winning proposer* of target `v` — the first vertex whose
///   heavy edge points at `v` (one CAS per vertex);
/// - `Y[v]` (the raw label): a target is labeled `min(v, X[v])`, so the
///   two orientations of a mutual heavy pair agree on one id without
///   detecting the cycle; every non-target joins its target's label.
pub fn hec2(policy: &ExecPolicy, g: &Csr, seed: u64) -> (Mapping, MapStats) {
    hec2_in(policy, g, seed, &mut MapWorkspace::new())
}

/// [`hec2`] through a level-reused workspace.
pub fn hec2_in(
    policy: &ExecPolicy,
    g: &Csr,
    seed: u64,
    ws: &mut MapWorkspace,
) -> (Mapping, MapStats) {
    let n = g.n();
    if n <= 1 {
        return (
            Mapping {
                map: vec![0; n.min(1)],
                n_coarse: n.min(1),
            },
            MapStats::default(),
        );
    }
    heavy_neighbors_in(policy, g, &mut ws.heavy);
    random_permutation_in(policy, n, seed, &mut ws.perm_keys, &mut ws.queue);
    // X[v] = winning proposer, chosen in permutation order for the serial
    // policy (first CAS wins under parallel policies).
    MapWorkspace::filled(&mut ws.own, n, UNMAPPED);
    {
        let x_at = as_atomic_u32(&mut ws.own);
        let (h_ref, p_ref) = (&ws.heavy, &ws.queue);
        parallel_for(policy, n, move |i| {
            let u = p_ref[i];
            let _ = x_at[h_ref[u as usize] as usize].compare_exchange(
                UNMAPPED,
                u,
                Ordering::AcqRel,
                Ordering::Relaxed,
            );
        });
    }
    // Y: targets take min(v, winner); non-targets take their target's
    // label. This full sweep also carries the fused relabel flag-mark.
    let mut y = vec![UNMAPPED; n];
    {
        prepare_premark(ws, n);
        let base = y.as_mut_ptr() as usize;
        let flag_base = ws.flag.as_mut_ptr() as usize;
        let (h_ref, x_ref) = (&ws.heavy, &ws.own);
        let label_of_target = |v: usize| v.min(x_ref[v] as usize) as u32;
        parallel_for(policy, n, move |u| {
            let label = if x_ref[u] != UNMAPPED {
                label_of_target(u)
            } else {
                // u's heavy target is a target by construction.
                label_of_target(h_ref[u] as usize)
            };
            // SAFETY: disjoint label writes per index; flag writes are
            // idempotent.
            unsafe {
                (base as *mut u32).add(u).write(label);
                (flag_base as *mut u32).add(label as usize).write(1);
            }
        });
    }
    let mapping = relabel_premarked_in(policy, y, ws);
    (
        mapping,
        MapStats {
            passes: 2,
            resolved_per_pass: vec![n],
            resolved_overflow: 0,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{testkit, MapMethod};
    use mlcg_graph::builder::from_edges_weighted;
    use mlcg_graph::generators as gen;

    #[test]
    fn battery_hec3() {
        testkit::run_battery(MapMethod::Hec3);
    }

    #[test]
    fn battery_hec2() {
        testkit::run_battery(MapMethod::Hec2);
    }

    #[test]
    fn aggregates_connected_both_variants() {
        for (name, g) in testkit::battery() {
            for f in [
                hec2 as fn(&ExecPolicy, &Csr, u64) -> (Mapping, MapStats),
                hec3,
            ] {
                let (m, _) = f(&ExecPolicy::serial(), &g, 13);
                testkit::check_mapping(name, &g, &m);
                testkit::check_aggregates_connected(&g, &m);
            }
        }
    }

    #[test]
    fn hec3_always_merges_mutual_pairs() {
        // 0 -(9)- 1 mutual heavy pair; 2, 3 attach via unit edges. HEC3's
        // explicit 2-cycle loop merges the pair for every seed; HEC2 merges
        // it only when each endpoint wins the other's proposal race.
        for seed in 0..10 {
            let g = from_edges_weighted(4, &[(0, 1, 9), (1, 2, 1), (2, 3, 1), (3, 0, 1)]);
            let (m3, _) = hec3(&ExecPolicy::serial(), &g, seed);
            assert_eq!(
                m3.map[0], m3.map[1],
                "HEC3 collapses 2-cycles (seed {seed})"
            );
            let (m2, _) = hec2(&ExecPolicy::serial(), &g, seed);
            m2.validate().unwrap();
        }
    }

    #[test]
    fn hec2_makes_progress_on_a_single_mutual_pair() {
        let g = from_edges_weighted(2, &[(0, 1, 5)]);
        let (m, _) = hec2(&ExecPolicy::serial(), &g, 3);
        assert_eq!(m.n_coarse, 1, "the pair's two orientations agree on min id");
    }

    #[test]
    fn coarse_count_ordering_hec_leq_hec3_leq_hec2() {
        // More aggressive methods produce fewer coarse vertices; the paper
        // orders levels HEC < HEC3 < HEC2. Check the per-level counterpart
        // with a tolerance (randomized tie-breaks can flip near-equal cases).
        let (g, _) = mlcg_graph::cc::largest_component(&gen::rmat(11, 8, 0.57, 0.19, 0.19, 2));
        let p = ExecPolicy::serial();
        let (mh, _) = crate::mapping::hec::hec(&p, &g, 3);
        let (m3, _) = hec3(&p, &g, 3);
        let (m2, _) = hec2(&p, &g, 3);
        assert!(
            mh.n_coarse as f64 <= m3.n_coarse as f64 * 1.05,
            "{} vs {}",
            mh.n_coarse,
            m3.n_coarse
        );
        assert!(
            m3.n_coarse as f64 <= m2.n_coarse as f64 * 1.05,
            "{} vs {}",
            m3.n_coarse,
            m2.n_coarse
        );
    }

    #[test]
    fn hec3_star_single_aggregate() {
        let g = gen::star(30);
        let (m, _) = hec3(&ExecPolicy::serial(), &g, 1);
        assert_eq!(m.n_coarse, 1);
    }

    #[test]
    fn hec2_deterministic_for_serial_policy() {
        let g = gen::grid2d(25, 25);
        let (a, _) = hec2(&ExecPolicy::serial(), &g, 7);
        let (b, _) = hec2(&ExecPolicy::serial(), &g, 7);
        assert_eq!(
            a, b,
            "serial HEC2 resolves proposal races in permutation order"
        );
        for policy in ExecPolicy::all_test_policies() {
            let (c, _) = hec2(&policy, &g, 7);
            c.validate().unwrap();
        }
    }

    #[test]
    fn hec3_seed_changes_roots_but_not_validity() {
        let g = gen::grid2d(30, 30);
        let (a, _) = hec3(&ExecPolicy::serial(), &g, 1);
        let (b, _) = hec3(&ExecPolicy::serial(), &g, 2);
        a.validate().unwrap();
        b.validate().unwrap();
        // Different seeds permute mutual-pair representatives.
        assert!(
            (a.n_coarse as f64 - b.n_coarse as f64).abs() / a.n_coarse as f64 * 100.0 < 20.0,
            "counts should be similar: {} vs {}",
            a.n_coarse,
            b.n_coarse
        );
    }
}

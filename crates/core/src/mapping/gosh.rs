//! GOSH coarsening and the new GOSH+HEC hybrid (the paper's Algorithms 15
//! and 16 of the extended report).
//!
//! GOSH (Akyildiz et al.) aggregates around a maximal independent set,
//! processing vertices in decreasing-degree order and preventing two
//! high-degree vertices from mapping to each other. Our parallelization
//! follows the MIS(2) structure: Luby-style rounds select centers whose
//! (degree, random, id) priority beats every undecided neighbor, then
//! non-centers attach to an adjacent center subject to the high-degree
//! guard. Edge weights are ignored — the drawback the hybrid fixes.
//!
//! The **GOSH+HEC hybrid** keeps HEC's weighted heavy-neighbor choice but
//! skips adjacencies between two high-degree vertices, and executes the
//! low-synchronization HEC3 phases ("less indirection, lower fine-grained
//! synchronization, skips high-degree vertex adjacencies").

use super::util::{heavy_neighbor_where, prepare_premark, relabel_in, relabel_premarked_in};
use super::workspace::MapWorkspace;
use super::{MapStats, Mapping, UNMAPPED};
use mlcg_graph::{Csr, VId};
use mlcg_par::atomic::as_atomic_u32;
use mlcg_par::perm::{invert_permutation_in, random_permutation_in};
use mlcg_par::rng::hash_index;
use mlcg_par::{parallel_count, parallel_for, ExecPolicy};
use std::sync::atomic::Ordering;

/// Two vertices are both "high degree" when each exceeds this multiple of
/// the average degree; GOSH refuses to contract such pairs.
pub const HIGH_DEGREE_FACTOR: f64 = 4.0;

/// The degree above which a vertex counts as "high degree" for the guard,
/// given a multiplier of the average degree (floor 8 so tiny graphs never
/// trigger it spuriously).
pub fn high_degree_threshold_with(g: &Csr, factor: f64) -> usize {
    ((g.avg_degree() * factor).ceil() as usize).max(8)
}

fn high_degree_threshold(g: &Csr) -> usize {
    high_degree_threshold_with(g, HIGH_DEGREE_FACTOR)
}

/// Priority tuple: decreasing-degree order, randomized within a degree
/// class, uniquely tie-broken by id.
#[inline]
fn priority(g: &Csr, seed: u64, u: usize) -> (usize, u64, usize) {
    (g.degree(u as VId), hash_index(seed, u as u64), u)
}

/// GOSH coarsening (Algorithm 15 parallelization).
pub fn gosh(policy: &ExecPolicy, g: &Csr, seed: u64) -> (Mapping, MapStats) {
    gosh_in(policy, g, seed, &mut MapWorkspace::new())
}

/// [`gosh`] through a level-reused workspace.
pub fn gosh_in(
    policy: &ExecPolicy,
    g: &Csr,
    seed: u64,
    ws: &mut MapWorkspace,
) -> (Mapping, MapStats) {
    let n = g.n();
    if n <= 1 {
        return (
            Mapping {
                map: vec![0; n.min(1)],
                n_coarse: n.min(1),
            },
            MapStats::default(),
        );
    }
    let tau = high_degree_threshold(g);
    let mut m = vec![UNMAPPED; n];
    let mut stats = MapStats::default();
    loop {
        let before = parallel_count(policy, n, |u| m[u] == UNMAPPED);
        if before == 0 {
            break;
        }
        // Center selection: local priority maxima among undecided vertices.
        // Decisions read a round-start snapshot so concurrent (or earlier
        // sequential) center writes cannot promote their beaten neighbors.
        {
            MapWorkspace::snapshot(&mut ws.snap, &m);
            let m_at = as_atomic_u32(&mut m);
            let snap = &ws.snap;
            parallel_for(policy, n, |u| {
                if snap[u] != UNMAPPED {
                    return;
                }
                let p = priority(g, seed, u);
                let beaten = g
                    .neighbors(u as VId)
                    .iter()
                    .any(|&v| snap[v as usize] == UNMAPPED && priority(g, seed, v as usize) > p);
                if !beaten {
                    m_at[u].store(u as u32, Ordering::Release);
                }
            });
        }
        // Attachment: join an adjacent center unless the high-degree guard
        // forbids it; isolated leftovers self-center to guarantee progress.
        {
            let m_at = as_atomic_u32(&mut m);
            parallel_for(policy, n, |u| {
                if m_at[u].load(Ordering::Acquire) != UNMAPPED {
                    return;
                }
                let du = g.degree(u as VId);
                let mut any_unmapped_neighbor = false;
                let mut fallback: Option<u32> = None;
                for &v in g.neighbors(u as VId) {
                    let mv = m_at[v as usize].load(Ordering::Acquire);
                    if mv == UNMAPPED {
                        any_unmapped_neighbor = true;
                        continue;
                    }
                    if mv == v {
                        // v is a center.
                        if !(du > tau && g.degree(v) > tau) {
                            m_at[u].store(v, Ordering::Release);
                            return;
                        }
                        fallback = Some(v);
                    }
                }
                if !any_unmapped_neighbor {
                    // Every neighbor is settled but none is joinable —
                    // either the guard blocked the only centers
                    // (`fallback` saw them) or all neighbors attached
                    // elsewhere. Self-center rather than stall (GOSH's own
                    // escape hatch).
                    let _ = fallback;
                    m_at[u].store(u as u32, Ordering::Release);
                }
            });
        }
        let after = parallel_count(policy, n, |u| m[u] == UNMAPPED);
        stats.passes += 1;
        stats.record_resolved(before - after);
        assert!(after < before || after == 0, "GOSH made no progress");
    }
    (relabel_in(policy, m, ws), stats)
}

/// The new GOSH+HEC hybrid (Algorithm 16): weighted heavy neighbors with
/// high-degree adjacencies skipped, executed via the HEC3 phases.
pub fn gosh_hec(policy: &ExecPolicy, g: &Csr, seed: u64) -> (Mapping, MapStats) {
    gosh_hec_in(policy, g, seed, &mut MapWorkspace::new())
}

/// [`gosh_hec`] through a level-reused workspace.
pub fn gosh_hec_in(
    policy: &ExecPolicy,
    g: &Csr,
    seed: u64,
    ws: &mut MapWorkspace,
) -> (Mapping, MapStats) {
    let n = g.n();
    if n <= 1 {
        return (
            Mapping {
                map: vec![0; n.min(1)],
                n_coarse: n.min(1),
            },
            MapStats::default(),
        );
    }
    let tau = high_degree_threshold(g);
    // Heavy neighbor, skipping high-degree/high-degree adjacencies.
    MapWorkspace::filled(&mut ws.heavy, n, UNMAPPED);
    {
        let base = ws.heavy.as_mut_ptr() as usize;
        parallel_for(policy, n, move |u| {
            let du = g.degree(u as VId);
            let pick = heavy_neighbor_where(g, u as VId, |v| !(du > tau && g.degree(v) > tau))
                .or_else(|| heavy_neighbor_where(g, u as VId, |_| true))
                .expect("connected graph has a neighbor");
            // SAFETY: disjoint writes per index.
            unsafe {
                (base as *mut u32).add(u).write(pick);
            }
        });
    }
    // HEC3-style phases over the filtered heavy array.
    random_permutation_in(policy, n, seed, &mut ws.perm_keys, &mut ws.queue);
    {
        let (queue, pos) = (&ws.queue, &mut ws.pos);
        invert_permutation_in(policy, queue, pos);
    }
    let mut m = vec![UNMAPPED; n];
    {
        let base = m.as_mut_ptr() as usize;
        let (h_ref, pos_ref) = (&ws.heavy, &ws.pos);
        parallel_for(policy, n, move |u| {
            let v = h_ref[u] as usize;
            if h_ref[v] as usize == u {
                let root = if pos_ref[u] <= pos_ref[v] { u } else { v };
                // SAFETY: both endpoints write the same value.
                unsafe {
                    (base as *mut u32).add(u).write(root as u32);
                }
            }
        });
    }
    {
        let m_at = as_atomic_u32(&mut m);
        let h_ref = &ws.heavy;
        parallel_for(policy, n, move |u| {
            let v = h_ref[u] as usize;
            if m_at[v].load(Ordering::Relaxed) == UNMAPPED {
                let _ = m_at[v].compare_exchange(
                    UNMAPPED,
                    v as u32,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                );
            }
        });
    }
    {
        MapWorkspace::snapshot(&mut ws.snap, &m);
        let base = m.as_mut_ptr() as usize;
        let (h_ref, snap) = (&ws.heavy, &ws.snap);
        parallel_for(policy, n, move |u| {
            if snap[u] == UNMAPPED {
                let root = snap[h_ref[u] as usize];
                debug_assert_ne!(root, UNMAPPED);
                // SAFETY: disjoint writes.
                unsafe {
                    (base as *mut u32).add(u).write(root);
                }
            }
        });
    }
    // Final pointer-jump sweep, with the relabel flag-mark fused in.
    {
        MapWorkspace::snapshot(&mut ws.snap, &m);
        prepare_premark(ws, n);
        let base = m.as_mut_ptr() as usize;
        let flag_base = ws.flag.as_mut_ptr() as usize;
        let snap = &ws.snap;
        parallel_for(policy, n, move |u| {
            let mut r = snap[u] as usize;
            while snap[r] as usize != r {
                r = snap[snap[r] as usize] as usize;
            }
            // SAFETY: disjoint label writes per index; flag writes are
            // idempotent (racing threads all write 1).
            unsafe {
                (base as *mut u32).add(u).write(r as u32);
                (flag_base as *mut u32).add(r).write(1);
            }
        });
    }
    (
        relabel_premarked_in(policy, m, ws),
        MapStats {
            passes: 4,
            resolved_per_pass: vec![n],
            resolved_overflow: 0,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{testkit, MapMethod};
    use mlcg_graph::generators as gen;

    #[test]
    fn battery_gosh() {
        testkit::run_battery(MapMethod::Gosh);
    }

    #[test]
    fn battery_gosh_hec() {
        testkit::run_battery(MapMethod::GoshHec);
    }

    #[test]
    fn gosh_centers_form_an_independent_set_per_round_effect() {
        // After GOSH, roots (vertices mapped to themselves pre-relabel)
        // were selected as priority maxima; the observable invariant is
        // that every aggregate is a star around its center in the fine
        // graph — i.e. aggregates are connected.
        for (name, g) in testkit::battery() {
            let (m, _) = gosh(&ExecPolicy::serial(), &g, 5);
            testkit::check_mapping(name, &g, &m);
            testkit::check_aggregates_connected(&g, &m);
        }
    }

    #[test]
    fn gosh_hec_aggregates_connected() {
        for (name, g) in testkit::battery() {
            let (m, _) = gosh_hec(&ExecPolicy::serial(), &g, 5);
            testkit::check_mapping(name, &g, &m);
            testkit::check_aggregates_connected(&g, &m);
        }
    }

    #[test]
    fn gosh_guard_keeps_hubs_apart() {
        // Two hubs joined by an edge, each with its own leaves: the guard
        // must keep the hubs in different aggregates.
        let mut edges = vec![(0u32, 1u32)];
        for leaf in 2..30u32 {
            edges.push((if leaf % 2 == 0 { 0 } else { 1 }, leaf));
        }
        let g = mlcg_graph::builder::from_edges_unit(30, &edges);
        let (m, _) = gosh(&ExecPolicy::serial(), &g, 9);
        assert_ne!(
            m.map[0], m.map[1],
            "high-degree hubs must not contract together"
        );
    }

    #[test]
    fn gosh_hec_prefers_heavy_edges_unlike_gosh() {
        // A triangle where one edge is massively heavier: the hybrid must
        // contract it.
        let g = mlcg_graph::builder::from_edges_weighted(
            4,
            &[(0, 1, 100), (1, 2, 1), (0, 2, 1), (2, 3, 1)],
        );
        let (m, _) = gosh_hec(&ExecPolicy::serial(), &g, 3);
        assert_eq!(m.map[0], m.map[1], "hybrid must respect edge weights");
    }

    #[test]
    fn gosh_coarsens_star_fully() {
        let g = gen::star(25);
        let (m, _) = gosh(&ExecPolicy::serial(), &g, 2);
        // The hub is the degree maximum -> center; every leaf attaches
        // (leaves are low-degree so the guard does not trigger).
        assert_eq!(m.n_coarse, 1);
    }

    #[test]
    fn gosh_is_less_aggressive_than_hec_on_regular_graphs() {
        let g = gen::grid2d(30, 30);
        let p = ExecPolicy::serial();
        let (mg, _) = gosh(&p, &g, 3);
        mg.validate().unwrap();
        assert!(
            mg.coarsening_ratio() >= 1.5,
            "ratio {}",
            mg.coarsening_ratio()
        );
    }
}

//! Shared helpers for the mapping algorithms: heavy-neighbor computation
//! and label relabeling (`FindUniqAndRelabel` in Algorithm 5).

use super::workspace::MapWorkspace;
use super::{Mapping, UNMAPPED};
use mlcg_graph::{Csr, VId};
use mlcg_par::scan::{exclusive_scan, ScanElem};
use mlcg_par::{parallel_for, profile, ExecPolicy};

/// Compute the heavy-neighbor array `H[u]`: the first maximum-weight
/// neighbor in adjacency order (adjacency is sorted by id, so ties resolve
/// to the smallest id — which guarantees the directed graph `u → H[u]` has
/// no cycles longer than two).
pub fn heavy_neighbors(policy: &ExecPolicy, g: &Csr) -> Vec<u32> {
    let mut h = Vec::new();
    heavy_neighbors_in(policy, g, &mut h);
    h
}

/// [`heavy_neighbors`] into a caller-owned buffer.
pub fn heavy_neighbors_in(policy: &ExecPolicy, g: &Csr, h: &mut Vec<u32>) {
    let _k = profile::kernel("heavy_nbrs");
    let n = g.n();
    MapWorkspace::filled(h, n, UNMAPPED);
    let base = h.as_mut_ptr() as usize;
    parallel_for(policy, n, move |u| {
        let mut best_w = 0u64;
        let mut best = UNMAPPED;
        for (v, w) in g.edges(u as VId) {
            if w > best_w {
                best_w = w;
                best = v;
            }
        }
        // SAFETY: one write per index.
        unsafe {
            (base as *mut u32).add(u).write(best);
        }
    });
}

/// Heavy neighbor restricted by a per-vertex predicate on the *candidate*
/// (used by HEM's unmatched-only selection and GOSH-HEC's high-degree skip).
pub fn heavy_neighbor_where<F>(g: &Csr, u: VId, allow: F) -> Option<VId>
where
    F: Fn(VId) -> bool,
{
    let mut best_w = 0u64;
    let mut best = None;
    for (v, w) in g.edges(u) {
        if w > best_w && allow(v) {
            best_w = w;
            best = Some(v);
        }
    }
    best
}

/// Flag-array element for the relabel prefix sum, mirroring construction's
/// `CountWord`: `u32` whenever counts provably fit (labels and totals are
/// bounded by `n ≤ u32::MAX`), `usize` as the defensive wide form. The
/// narrow form halves the 8 B/vertex auxiliary footprint of the old
/// `vec![0usize; n + 1]` flag on every graph the suite runs.
trait FlagWord: ScanElem {
    const ONE: Self;
    fn to_u32(self) -> u32;
    fn to_usize(self) -> usize;
}

impl FlagWord for u32 {
    const ONE: Self = 1;
    #[inline]
    fn to_u32(self) -> u32 {
        self
    }
    #[inline]
    fn to_usize(self) -> usize {
        self as usize
    }
}

impl FlagWord for usize {
    const ONE: Self = 1;
    #[inline]
    fn to_u32(self) -> u32 {
        self as u32
    }
    #[inline]
    fn to_usize(self) -> usize {
        self
    }
}

/// The shared mark → scan → rewrite core. `premarked` skips the mark pass
/// (the caller already set `flag[l] = 1` for every used label during its
/// own final sweep — the fused form that saves one O(n) traversal).
fn relabel_core<T: FlagWord>(
    policy: &ExecPolicy,
    labels: &mut [u32],
    flag: &mut Vec<T>,
    premarked: bool,
) -> usize {
    let n = labels.len();
    if !premarked {
        flag.clear();
        flag.resize(n + 1, T::default());
        let base = flag.as_mut_ptr() as usize;
        let labels_ref = &*labels;
        parallel_for(policy, n, move |u| {
            let l = labels_ref[u];
            assert!(l != UNMAPPED, "relabel: vertex {u} unmapped");
            assert!((l as usize) < n, "relabel: raw label out of range");
            // SAFETY: idempotent writes of the same value; racing threads
            // all write 1.
            unsafe {
                (base as *mut T).add(l as usize).write(T::ONE);
            }
        });
    } else {
        debug_assert_eq!(flag.len(), n + 1, "premarked flag not prepared");
    }
    let n_coarse = exclusive_scan(policy, flag).to_usize();
    {
        let base = labels.as_mut_ptr() as usize;
        let flag_ref = &flag[..];
        let labels_ptr = labels.as_ptr() as usize;
        parallel_for(policy, n, move |u| {
            // SAFETY: disjoint read/write per index.
            unsafe {
                let l = *(labels_ptr as *const u32).add(u);
                (base as *mut u32)
                    .add(u)
                    .write(flag_ref[l as usize].to_u32());
            }
        });
    }
    n_coarse
}

/// Relabel arbitrary labels in `0..n` to contiguous coarse ids `0..n_c`
/// (parallel flag + prefix sum). Consumes the raw label array.
pub fn relabel(policy: &ExecPolicy, labels: Vec<u32>) -> Mapping {
    relabel_in(policy, labels, &mut MapWorkspace::new())
}

/// [`relabel`] through workspace flag buffers (width-adaptive: see
/// [`FlagWord`]).
pub fn relabel_in(policy: &ExecPolicy, mut labels: Vec<u32>, ws: &mut MapWorkspace) -> Mapping {
    let _k = profile::kernel("relabel");
    let n = labels.len();
    let n_coarse = if n < u32::MAX as usize {
        relabel_core(policy, &mut labels, &mut ws.flag, false)
    } else {
        relabel_core(policy, &mut labels, &mut ws.flag_wide, false)
    };
    Mapping {
        map: labels,
        n_coarse,
    }
}

/// Zero the narrow flag buffer for a fused mark: policies whose final pass
/// already sweeps the label array call this first, write
/// `flag[root] = 1` during that sweep (idempotent u32 writes), and finish
/// with [`relabel_premarked_in`] — eliminating relabel's own mark
/// traversal.
pub(crate) fn prepare_premark(ws: &mut MapWorkspace, n: usize) -> &mut Vec<u32> {
    assert!(n < u32::MAX as usize, "premark requires the narrow flag");
    ws.flag.clear();
    ws.flag.resize(n + 1, 0);
    &mut ws.flag
}

/// [`relabel_in`] when `ws.flag` was already marked via
/// [`prepare_premark`] — skips the mark pass.
pub(crate) fn relabel_premarked_in(
    policy: &ExecPolicy,
    mut labels: Vec<u32>,
    ws: &mut MapWorkspace,
) -> Mapping {
    let _k = profile::kernel("relabel");
    debug_assert!(labels
        .iter()
        .all(|&l| l != UNMAPPED && (l as usize) < labels.len()));
    let n_coarse = relabel_core(policy, &mut labels, &mut ws.flag, true);
    Mapping {
        map: labels,
        n_coarse,
    }
}

/// Collect the indices of still-unmapped vertices (the `R`/`Q` requeue of
/// Algorithm 4's lines 22–28), via the order-stable parallel compaction.
pub fn unmapped_vertices(policy: &ExecPolicy, m: &[u32], from: &[u32]) -> Vec<u32> {
    mlcg_par::filter::filter_indices(policy, from, |u| m[u as usize] == UNMAPPED)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcg_graph::builder::from_edges_weighted;
    use mlcg_graph::generators::{complete, path};

    #[test]
    fn heavy_neighbor_prefers_weight_then_small_id() {
        // 1 -(5)- 0 -(5)- 2, 0 -(9)- 3.
        let g = from_edges_weighted(4, &[(0, 1, 5), (0, 2, 5), (0, 3, 9)]);
        let h = heavy_neighbors(&ExecPolicy::serial(), &g);
        assert_eq!(h[0], 3); // heaviest wins
        assert_eq!(h[1], 0);
        // Tie between 1 and 2 at vertex 0 would resolve to 1 (smaller id):
        let g2 = from_edges_weighted(3, &[(0, 1, 5), (0, 2, 5)]);
        let h2 = heavy_neighbors(&ExecPolicy::serial(), &g2);
        assert_eq!(h2[0], 1);
    }

    #[test]
    fn heavy_neighbor_digraph_has_no_long_cycles() {
        // On an unweighted clique H[u] is the smallest other id, so the only
        // cycle is 0 <-> 1.
        let g = complete(6);
        let h = heavy_neighbors(&ExecPolicy::serial(), &g);
        assert_eq!(h[0], 1);
        for &hu in &h[1..6] {
            assert_eq!(hu, 0);
        }
    }

    #[test]
    fn relabel_compacts_labels() {
        // Raw labels use vertex ids {0, 3, 4}.
        let m = relabel(&ExecPolicy::serial(), vec![3, 0, 3, 4, 0]);
        assert_eq!(m.n_coarse, 3);
        m.validate().unwrap();
        assert_eq!(m.map[1], m.map[4]);
        assert_eq!(m.map[0], m.map[2]);
        assert_ne!(m.map[0], m.map[3]);
    }

    #[test]
    fn relabel_parallel_matches_serial() {
        let raw: Vec<u32> = (0..10_000u32).map(|i| (i * 7919) % 500).collect();
        let a = relabel(&ExecPolicy::serial(), raw.clone());
        for policy in ExecPolicy::all_test_policies() {
            let b = relabel(&policy, raw.clone());
            assert_eq!(a, b);
        }
    }

    #[test]
    fn relabel_reused_workspace_matches_fresh() {
        let mut ws = MapWorkspace::new();
        // First use at a large size, then a smaller one: stale flag
        // capacity must not leak into the second result.
        let big: Vec<u32> = (0..50_000u32).map(|i| (i * 31) % 9000).collect();
        let small: Vec<u32> = (0..777u32).map(|i| (i * 13) % 111).collect();
        for raw in [big, small] {
            let fresh = relabel(&ExecPolicy::host(), raw.clone());
            let reused = relabel_in(&ExecPolicy::host(), raw, &mut ws);
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn relabel_premarked_matches_plain() {
        let raw: Vec<u32> = (0..5_000u32)
            .map(|i| (i.wrapping_mul(2654435761)) % 4000)
            .collect();
        for policy in ExecPolicy::all_test_policies() {
            let plain = relabel(&policy, raw.clone());
            let mut ws = MapWorkspace::new();
            let flag = prepare_premark(&mut ws, raw.len());
            for &l in &raw {
                flag[l as usize] = 1;
            }
            let fused = relabel_premarked_in(&policy, raw.clone(), &mut ws);
            assert_eq!(plain, fused, "{policy}");
        }
    }

    #[test]
    fn relabel_narrow_flag_halves_aux_footprint() {
        // The width rule's acceptance criterion: peak auxiliary bytes for
        // a relabel through the narrow flag are less than 60 % of the old
        // usize-flag implementation's (4 B vs 8 B per vertex + scan
        // internals). Measured under the serial policy so the tracking
        // allocator sees the whole envelope.
        let n = 100_000usize;
        let raw: Vec<u32> = (0..n as u32).map(|i| (i * 7) % 50_000).collect();
        let serial = ExecPolicy::serial();
        let mut ws = MapWorkspace::new();
        // Label arrays are allocated outside each scope and returned from
        // it, so the measured peaks are the *auxiliary* envelope only
        // (flag array + scan internals).
        let raw1 = raw.clone();
        let (m1, narrow) = mlcg_par::mem::measure(|| relabel_in(&serial, raw1, &mut ws));
        let raw2 = raw.clone();
        let (m2, wide) = mlcg_par::mem::measure(|| {
            // The pre-rebuild implementation: usize flag array.
            let mut labels = raw2;
            let mut flag = Vec::new();
            let n_coarse = relabel_core::<usize>(&serial, &mut labels, &mut flag, false);
            (labels, n_coarse)
        });
        assert_eq!(m1.map, m2.0);
        assert_eq!(m1.n_coarse, m2.1);
        assert!(
            (narrow.peak_bytes as f64) <= 0.6 * wide.peak_bytes as f64,
            "narrow flag {} must be <= 60% of wide flag {}",
            narrow.peak_bytes,
            wide.peak_bytes
        );
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn relabel_rejects_unmapped() {
        relabel(&ExecPolicy::serial(), vec![0, UNMAPPED]);
    }

    #[test]
    fn heavy_neighbor_where_respects_filter() {
        let g = path(3); // 0-1-2 unit weights
        let h = heavy_neighbor_where(&g, 1, |v| v != 0);
        assert_eq!(h, Some(2));
        let none = heavy_neighbor_where(&g, 1, |_| false);
        assert_eq!(none, None);
    }

    #[test]
    fn unmapped_collection() {
        let m = vec![0, UNMAPPED, 2, UNMAPPED];
        let q: Vec<u32> = (0..4).collect();
        for policy in ExecPolicy::all_test_policies() {
            assert_eq!(unmapped_vertices(&policy, &m, &q), vec![1, 3]);
        }
    }
}

//! Shared helpers for the mapping algorithms: heavy-neighbor computation
//! and label relabeling (`FindUniqAndRelabel` in Algorithm 5).

use super::{Mapping, UNMAPPED};
use mlcg_graph::{Csr, VId};
use mlcg_par::scan::exclusive_scan;
use mlcg_par::{parallel_for, profile, ExecPolicy};

/// Compute the heavy-neighbor array `H[u]`: the first maximum-weight
/// neighbor in adjacency order (adjacency is sorted by id, so ties resolve
/// to the smallest id — which guarantees the directed graph `u → H[u]` has
/// no cycles longer than two).
pub fn heavy_neighbors(policy: &ExecPolicy, g: &Csr) -> Vec<u32> {
    let _k = profile::kernel("heavy_nbrs");
    let n = g.n();
    let mut h = vec![UNMAPPED; n];
    let base = h.as_mut_ptr() as usize;
    parallel_for(policy, n, move |u| {
        let mut best_w = 0u64;
        let mut best = UNMAPPED;
        for (v, w) in g.edges(u as VId) {
            if w > best_w {
                best_w = w;
                best = v;
            }
        }
        // SAFETY: one write per index.
        unsafe {
            (base as *mut u32).add(u).write(best);
        }
    });
    h
}

/// Heavy neighbor restricted by a per-vertex predicate on the *candidate*
/// (used by HEM's unmatched-only selection and GOSH-HEC's high-degree skip).
pub fn heavy_neighbor_where<F>(g: &Csr, u: VId, allow: F) -> Option<VId>
where
    F: Fn(VId) -> bool,
{
    let mut best_w = 0u64;
    let mut best = None;
    for (v, w) in g.edges(u) {
        if w > best_w && allow(v) {
            best_w = w;
            best = Some(v);
        }
    }
    best
}

/// Relabel arbitrary labels in `0..n` to contiguous coarse ids `0..n_c`
/// (parallel flag + prefix sum). Consumes the raw label array.
pub fn relabel(policy: &ExecPolicy, mut labels: Vec<u32>) -> Mapping {
    let _k = profile::kernel("relabel");
    let n = labels.len();
    let mut flag = vec![0usize; n + 1];
    {
        let base = flag.as_mut_ptr() as usize;
        let labels_ref = &labels;
        parallel_for(policy, n, move |u| {
            let l = labels_ref[u];
            assert!(l != UNMAPPED, "relabel: vertex {u} unmapped");
            assert!((l as usize) < n, "relabel: raw label out of range");
            // SAFETY: idempotent writes of the same value; racing threads
            // all write 1.
            unsafe {
                (base as *mut usize).add(l as usize).write(1);
            }
        });
    }
    let n_coarse = exclusive_scan(policy, &mut flag);
    {
        let base = labels.as_mut_ptr() as usize;
        let flag_ref = &flag;
        let labels_ptr = labels.as_ptr() as usize;
        parallel_for(policy, n, move |u| {
            // SAFETY: disjoint read/write per index.
            unsafe {
                let l = *(labels_ptr as *const u32).add(u);
                (base as *mut u32).add(u).write(flag_ref[l as usize] as u32);
            }
        });
    }
    Mapping {
        map: labels,
        n_coarse,
    }
}

/// Collect the indices of still-unmapped vertices (the `R`/`Q` requeue of
/// Algorithm 4's lines 22–28).
pub fn unmapped_vertices(m: &[u32], from: &[u32]) -> Vec<u32> {
    from.iter()
        .copied()
        .filter(|&u| m[u as usize] == UNMAPPED)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlcg_graph::builder::from_edges_weighted;
    use mlcg_graph::generators::{complete, path};

    #[test]
    fn heavy_neighbor_prefers_weight_then_small_id() {
        // 1 -(5)- 0 -(5)- 2, 0 -(9)- 3.
        let g = from_edges_weighted(4, &[(0, 1, 5), (0, 2, 5), (0, 3, 9)]);
        let h = heavy_neighbors(&ExecPolicy::serial(), &g);
        assert_eq!(h[0], 3); // heaviest wins
        assert_eq!(h[1], 0);
        // Tie between 1 and 2 at vertex 0 would resolve to 1 (smaller id):
        let g2 = from_edges_weighted(3, &[(0, 1, 5), (0, 2, 5)]);
        let h2 = heavy_neighbors(&ExecPolicy::serial(), &g2);
        assert_eq!(h2[0], 1);
    }

    #[test]
    fn heavy_neighbor_digraph_has_no_long_cycles() {
        // On an unweighted clique H[u] is the smallest other id, so the only
        // cycle is 0 <-> 1.
        let g = complete(6);
        let h = heavy_neighbors(&ExecPolicy::serial(), &g);
        assert_eq!(h[0], 1);
        for &hu in &h[1..6] {
            assert_eq!(hu, 0);
        }
    }

    #[test]
    fn relabel_compacts_labels() {
        // Raw labels use vertex ids {0, 3, 4}.
        let m = relabel(&ExecPolicy::serial(), vec![3, 0, 3, 4, 0]);
        assert_eq!(m.n_coarse, 3);
        m.validate().unwrap();
        assert_eq!(m.map[1], m.map[4]);
        assert_eq!(m.map[0], m.map[2]);
        assert_ne!(m.map[0], m.map[3]);
    }

    #[test]
    fn relabel_parallel_matches_serial() {
        let raw: Vec<u32> = (0..10_000u32).map(|i| (i * 7919) % 500).collect();
        let a = relabel(&ExecPolicy::serial(), raw.clone());
        for policy in ExecPolicy::all_test_policies() {
            let b = relabel(&policy, raw.clone());
            assert_eq!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn relabel_rejects_unmapped() {
        relabel(&ExecPolicy::serial(), vec![0, UNMAPPED]);
    }

    #[test]
    fn heavy_neighbor_where_respects_filter() {
        let g = path(3); // 0-1-2 unit weights
        let h = heavy_neighbor_where(&g, 1, |v| v != 0);
        assert_eq!(h, Some(2));
        let none = heavy_neighbor_where(&g, 1, |_| false);
        assert_eq!(none, None);
    }

    #[test]
    fn unmapped_collection() {
        let m = vec![0, UNMAPPED, 2, UNMAPPED];
        let q: Vec<u32> = (0..4).collect();
        assert_eq!(unmapped_vertices(&m, &q), vec![1, 3]);
    }
}

//! Lock-free parallelization of Heavy Edge Coarsening — the paper's
//! Algorithm 4.
//!
//! Threads sweep the heavy-edge set `⟨u, H[u]⟩` in a random order `P`,
//! claiming endpoints with atomic compare-and-swap on the ownership array
//! `C`:
//!
//! - *create* edge — both `C[u]` and `C[v]` won: a fresh coarse id is
//!   allocated for the pair;
//! - *skip* edge — `C[u]` was already taken: another thread is creating
//!   `u`'s aggregate, nothing to do;
//! - *inherit* edge — `C[v]` was taken and `M[v]` already set: `u` joins
//!   `v`'s aggregate. If `M[v]` is not yet visible, the thread releases
//!   `C[u]` and re-queues `u` for the next pass.
//!
//! The extra vertex-identifier check before the first CAS (mentioned below
//! Algorithm 4 in the paper) defers the larger endpoint of a *mutual* heavy
//! pair, preventing the symmetric claim/claim deadlock. Unresolved vertices
//! are gathered into `R` and the loop repeats; the paper reports ≥99 % of
//! vertices settle within two passes, a statistic [`MapStats`] reproduces.

use super::util::{heavy_neighbors_in, relabel_in};
use super::workspace::MapWorkspace;
use super::{MapStats, Mapping, UNMAPPED};
use mlcg_graph::Csr;
use mlcg_par::atomic::as_atomic_u32;
use mlcg_par::filter::filter_indices_in;
use mlcg_par::perm::random_permutation_in;
use mlcg_par::{parallel_for, profile, ExecPolicy};
use std::sync::atomic::{AtomicU32, Ordering};

/// Ownership sentinel: `C[u] = FREE` means unclaimed.
const FREE: u32 = u32::MAX;

/// Run parallel HEC. Requires a connected graph with `n ≥ 1`.
pub fn hec(policy: &ExecPolicy, g: &Csr, seed: u64) -> (Mapping, MapStats) {
    hec_in(policy, g, seed, &mut MapWorkspace::new())
}

/// [`hec`] through a level-reused workspace.
pub fn hec_in(
    policy: &ExecPolicy,
    g: &Csr,
    seed: u64,
    ws: &mut MapWorkspace,
) -> (Mapping, MapStats) {
    let n = g.n();
    if n <= 1 {
        return (
            Mapping {
                map: vec![0; n.min(1)],
                n_coarse: n.min(1),
            },
            MapStats::default(),
        );
    }
    heavy_neighbors_in(policy, g, &mut ws.heavy);
    debug_assert!(
        ws.heavy.iter().all(|&x| x != UNMAPPED),
        "graph must have no isolated vertices"
    );

    let mut m = vec![UNMAPPED; n];
    MapWorkspace::filled(&mut ws.own, n, FREE);
    let next_id = AtomicU32::new(0);
    let mut stats = MapStats::default();

    random_permutation_in(policy, n, seed, &mut ws.perm_keys, &mut ws.queue);
    // The pass loop of Algorithm 4 (line 29). Termination: every pass
    // resolves at least the smaller endpoint of the heaviest pending mutual
    // pair; the cap is a defensive bound never reached in practice.
    let max_passes = 64 + 2 * n;
    while !ws.queue.is_empty() && stats.passes < max_passes {
        let before = ws.queue.len();
        {
            let _k = profile::kernel("hec_match");
            let m_at = as_atomic_u32(&mut m);
            let c_at = as_atomic_u32(&mut ws.own);
            let h_ref = &ws.heavy;
            let q_ref = &ws.queue;
            let next = &next_id;
            parallel_for(policy, q_ref.len(), move |i| {
                let u = q_ref[i];
                let v = h_ref[u as usize];
                if m_at[u as usize].load(Ordering::Acquire) != UNMAPPED {
                    return;
                }
                // Deadlock-avoidance id check for mutual heavy pairs: while
                // both endpoints are unmapped, only the smaller one drives
                // the two-sided claim. Once v is mapped (possibly absorbed
                // by a third vertex), u must fall through and inherit.
                if h_ref[v as usize] == u
                    && v < u
                    && m_at[v as usize].load(Ordering::Acquire) == UNMAPPED
                {
                    return; // the (v, u) orientation will create the pair
                }
                if c_at[u as usize].load(Ordering::Relaxed) != FREE {
                    return; // skip edge: another thread owns u
                }
                if c_at[u as usize]
                    .compare_exchange(FREE, v, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    return; // skip edge (lost the race for u)
                }
                if c_at[v as usize]
                    .compare_exchange(FREE, u, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    // Create edge: a fresh coarse vertex for {u, v}.
                    let id = next.fetch_add(1, Ordering::Relaxed);
                    m_at[v as usize].store(id, Ordering::Release);
                    m_at[u as usize].store(id, Ordering::Release);
                } else {
                    let mv = m_at[v as usize].load(Ordering::Acquire);
                    if mv != UNMAPPED {
                        // Inherit edge: u joins v's aggregate.
                        m_at[u as usize].store(mv, Ordering::Release);
                    } else {
                        // v is mid-creation elsewhere; release u and retry
                        // in the next pass.
                        c_at[u as usize].store(FREE, Ordering::Release);
                    }
                }
            });
        }
        // Parallel, order-stable requeue of the unresolved (bit-identical
        // to the old sequential `retain`).
        filter_indices_in(
            policy,
            &ws.queue,
            |u| m[u as usize] == UNMAPPED,
            &mut ws.fcounts,
            &mut ws.qscratch,
        );
        std::mem::swap(&mut ws.queue, &mut ws.qscratch);
        stats.passes += 1;
        stats.record_resolved(before - ws.queue.len());
    }
    assert!(
        ws.queue.is_empty(),
        "HEC failed to converge within {max_passes} passes"
    );

    let n_coarse = next_id.load(Ordering::Relaxed) as usize;
    // Labels are already contiguous (atomic counter), but relabel defends
    // against the (unobserved) case of allocated-but-unused ids.
    debug_assert!(m.iter().all(|&x| (x as usize) < n_coarse));
    let mapping = relabel_in(policy, m, ws);
    (mapping, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::testkit;
    use crate::mapping::MapMethod;
    use mlcg_graph::builder::from_edges_weighted;
    use mlcg_graph::generators as gen;

    #[test]
    fn battery() {
        testkit::run_battery(MapMethod::Hec);
    }

    #[test]
    fn aggregates_are_connected() {
        for (name, g) in testkit::battery() {
            let (m, _) = hec(&ExecPolicy::serial(), &g, 9);
            testkit::check_mapping(name, &g, &m);
            testkit::check_aggregates_connected(&g, &m);
        }
    }

    #[test]
    fn heavy_pair_merges() {
        // 0 -(9)- 1 is the unique heavy edge for both endpoints.
        let g = from_edges_weighted(4, &[(0, 1, 9), (1, 2, 1), (2, 3, 1), (3, 0, 1)]);
        let (m, _) = hec(&ExecPolicy::serial(), &g, 1);
        assert_eq!(m.map[0], m.map[1], "mutual heavy pair must merge");
    }

    #[test]
    fn star_collapses_to_one_aggregate() {
        // Every leaf's heavy neighbor is the hub; HEC absorbs them all.
        let g = gen::star(50);
        let (m, _) = hec(&ExecPolicy::serial(), &g, 3);
        assert_eq!(m.n_coarse, 1, "HEC coarsening ratio is unbounded on stars");
    }

    #[test]
    fn coarsening_ratio_exceeds_matching_bound_on_skewed_graphs() {
        let (g, _) = mlcg_graph::cc::largest_component(&gen::rmat(10, 8, 0.57, 0.19, 0.19, 7));
        let (m, _) = hec(&ExecPolicy::serial(), &g, 11);
        assert!(
            m.coarsening_ratio() > 2.0,
            "HEC should beat the matching bound on skewed graphs: {}",
            m.coarsening_ratio()
        );
    }

    #[test]
    fn most_vertices_resolve_in_two_passes() {
        // The paper reports 99.4% resolved within two passes on level 1.
        let (g, _) = mlcg_graph::cc::largest_component(&gen::rmat(11, 8, 0.57, 0.19, 0.19, 3));
        for policy in ExecPolicy::all_test_policies() {
            let (_, stats) = hec(&policy, &g, 5);
            let total = stats.resolved_total();
            let first_two: usize = stats.resolved_per_pass.iter().take(2).sum();
            assert!(
                first_two as f64 >= 0.95 * total as f64,
                "only {first_two}/{total} resolved in two passes ({policy})"
            );
        }
    }

    #[test]
    fn serial_is_deterministic() {
        let g = gen::grid2d(20, 20);
        let (a, _) = hec(&ExecPolicy::serial(), &g, 77);
        let (b, _) = hec(&ExecPolicy::serial(), &g, 77);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_policies_produce_valid_mappings_with_similar_ratio() {
        let g = gen::grid2d(40, 40);
        let (serial, _) = hec(&ExecPolicy::serial(), &g, 5);
        for policy in ExecPolicy::all_test_policies() {
            let (m, _) = hec(&policy, &g, 5);
            m.validate().unwrap();
            let r = m.coarsening_ratio() / serial.coarsening_ratio();
            assert!(
                (0.5..=2.0).contains(&r),
                "policy {policy} ratio {} vs serial {}",
                m.coarsening_ratio(),
                serial.coarsening_ratio()
            );
        }
    }

    #[test]
    fn single_and_two_vertex_graphs() {
        let g1 = gen::path(2);
        let (m, _) = hec(&ExecPolicy::serial(), &g1, 1);
        assert_eq!(m.n_coarse, 1);
        assert_eq!(m.map[0], m.map[1]);
    }
}

//! Sequential reference implementations: HEM (the paper's Algorithm 2) and
//! HEC (Algorithm 3). These define the semantics the parallelizations
//! relax, and serve as test oracles for aggregate-structure invariants.

use super::util::relabel_in;
use super::workspace::MapWorkspace;
use super::{MapStats, Mapping, UNMAPPED};
use mlcg_graph::{Csr, VId};
use mlcg_par::perm::random_permutation_in;
use mlcg_par::ExecPolicy;

/// Sequential Heavy Edge Matching (Algorithm 2): visit vertices in random
/// order; an unmatched vertex pairs with its heaviest *unmatched* neighbor,
/// or becomes a singleton.
pub fn seq_hem(g: &Csr, seed: u64) -> (Mapping, MapStats) {
    seq_hem_in(g, seed, &mut MapWorkspace::new())
}

/// [`seq_hem`] through a level-reused workspace.
pub fn seq_hem_in(g: &Csr, seed: u64, ws: &mut MapWorkspace) -> (Mapping, MapStats) {
    let n = g.n();
    let serial = ExecPolicy::serial();
    random_permutation_in(&serial, n, seed, &mut ws.perm_keys, &mut ws.queue);
    let mut m = vec![UNMAPPED; n];
    let mut next = 0u32;
    for &u in &ws.queue {
        if m[u as usize] != UNMAPPED {
            continue;
        }
        let mut best_w = 0u64;
        let mut best: Option<VId> = None;
        for (v, w) in g.edges(u) {
            if m[v as usize] == UNMAPPED && w > best_w {
                best_w = w;
                best = Some(v);
            }
        }
        if let Some(x) = best {
            m[x as usize] = next;
        }
        m[u as usize] = next;
        next += 1;
    }
    let n_coarse = next as usize;
    (
        Mapping { map: m, n_coarse },
        MapStats {
            passes: 1,
            resolved_per_pass: vec![n],
            resolved_overflow: 0,
        },
    )
}

/// Sequential Heavy Edge Coarsening (Algorithm 3): visit vertices in random
/// order; an unmapped vertex joins its heaviest neighbor's aggregate,
/// creating it if the neighbor is also unmapped. Requires a connected graph
/// (every vertex has a heaviest neighbor).
pub fn seq_hec(g: &Csr, seed: u64) -> (Mapping, MapStats) {
    seq_hec_in(g, seed, &mut MapWorkspace::new())
}

/// [`seq_hec`] through a level-reused workspace (the membership scratch
/// array lives in `ws.own`; only `raw` escapes into the relabel).
pub fn seq_hec_in(g: &Csr, seed: u64, ws: &mut MapWorkspace) -> (Mapping, MapStats) {
    let n = g.n();
    if n <= 1 {
        return (
            Mapping {
                map: vec![0; n.min(1)],
                n_coarse: n.min(1),
            },
            MapStats::default(),
        );
    }
    let serial = ExecPolicy::serial();
    random_permutation_in(&serial, n, seed, &mut ws.perm_keys, &mut ws.queue);
    MapWorkspace::filled(&mut ws.own, n, UNMAPPED);
    let mut raw = vec![UNMAPPED; n]; // labels are representative vertex ids
    let (m, order) = (&mut ws.own, &ws.queue);
    for &u in order {
        if m[u as usize] != UNMAPPED {
            continue;
        }
        let mut best_w = 0u64;
        let mut x: Option<VId> = None;
        for (v, w) in g.edges(u) {
            if w > best_w {
                best_w = w;
                x = Some(v);
            }
        }
        let x = x.expect("connected graph: heaviest neighbor always exists");
        if m[x as usize] == UNMAPPED {
            m[x as usize] = x;
            raw[x as usize] = x;
        }
        m[u as usize] = m[x as usize];
        raw[u as usize] = m[x as usize];
    }
    let mapping = relabel_in(&serial, raw, ws);
    (
        mapping,
        MapStats {
            passes: 1,
            resolved_per_pass: vec![n],
            resolved_overflow: 0,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{testkit, MapMethod};
    use mlcg_graph::builder::from_edges_weighted;
    use mlcg_graph::generators as gen;

    #[test]
    fn battery_seq_hem() {
        testkit::run_battery(MapMethod::SeqHem);
    }

    #[test]
    fn battery_seq_hec() {
        testkit::run_battery(MapMethod::SeqHec);
    }

    #[test]
    fn seq_hem_is_a_maximal_matching() {
        for (name, g) in testkit::battery() {
            let (m, _) = seq_hem(&g, 3);
            let sizes = m.aggregate_sizes();
            assert!(sizes.iter().all(|&s| s <= 2), "{name}: matching bound");
            // Maximality: no edge joins two singleton aggregates.
            let mut agg_size = vec![0usize; m.n_coarse];
            for &a in &m.map {
                agg_size[a as usize] += 1;
            }
            for u in 0..g.n() as u32 {
                for &v in g.neighbors(u) {
                    let (au, av) = (m.map[u as usize], m.map[v as usize]);
                    assert!(
                        !(au != av && agg_size[au as usize] == 1 && agg_size[av as usize] == 1),
                        "{name}: unmatched adjacent singletons {u},{v}"
                    );
                }
            }
        }
    }

    #[test]
    fn seq_hec_follows_heavy_edges() {
        // Triangle-free 3-vertex case where every visit order merges the
        // heavy pair: H = [1, 0, 0], so whichever vertex is visited first
        // creates or joins an aggregate containing 0, and 1 inherits it.
        for seed in 0..20 {
            let g = from_edges_weighted(3, &[(0, 1, 9), (0, 2, 1)]);
            let (m, _) = seq_hec(&g, seed);
            assert_eq!(m.map[0], m.map[1], "seed {seed}");
        }
    }

    #[test]
    fn seq_hec_aggregates_connected() {
        for (name, g) in testkit::battery() {
            let (m, _) = seq_hec(&g, 7);
            testkit::check_mapping(name, &g, &m);
            testkit::check_aggregates_connected(&g, &m);
        }
    }

    #[test]
    fn seq_hec_star_is_single_aggregate() {
        let (m, _) = seq_hec(&gen::star(30), 1);
        assert_eq!(m.n_coarse, 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gen::grid2d(15, 15);
        assert_eq!(seq_hec(&g, 5).0, seq_hec(&g, 5).0);
        assert_eq!(seq_hem(&g, 5).0, seq_hem(&g, 5).0);
        assert_ne!(seq_hec(&g, 5).0, seq_hec(&g, 6).0);
    }

    #[test]
    fn parallel_hec_ratio_tracks_sequential() {
        // The parallel algorithm is "in the spirit of" the sequential one:
        // coarse counts should be in the same ballpark.
        let (g, _) = mlcg_graph::cc::largest_component(&gen::rmat(10, 8, 0.57, 0.19, 0.19, 2));
        let (seq, _) = seq_hec(&g, 3);
        let (par, _) = crate::mapping::hec::hec(&ExecPolicy::serial(), &g, 3);
        let ratio = par.n_coarse as f64 / seq.n_coarse as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "par {} vs seq {}",
            par.n_coarse,
            seq.n_coarse
        );
    }
}

//! Level-reused scratch for the mapping phase, mirroring
//! [`crate::construct::ConstructWorkspace`]: every `n`-sized array a
//! mapping algorithm needs — ownership, heavy neighbors, queues,
//! permutation scratch, MIS-2 tiebreak arrays, the relabel flag — lives
//! here, so a hierarchy pays the mapping allocation envelope once and
//! levels after the first only shrink into existing capacity.
//!
//! Only *capacity* survives between uses. Every algorithm re-initializes
//! the prefixes it reads (`clear` + `resize`, or a snapshot
//! `clear` + `extend_from_slice`), so results are bit-identical to a
//! fresh workspace — the property `mapping_props.rs` pins.
//!
//! The raw label array that becomes [`super::Mapping::map`] is
//! deliberately *not* pooled: it escapes as the output, so pooling it
//! would just force a copy. Likewise [`mlcg_par::sort::par_radix_sort_pairs`]
//! keeps its internal ping-pong buffers; those are documented as
//! per-call in DESIGN §5h.

/// Pooled buffers for [`super::find_mapping_in`]. Construct once per
/// hierarchy (the multilevel driver keeps one next to its
/// `ConstructWorkspace`) and thread through every level.
#[derive(Debug, Default)]
pub struct MapWorkspace {
    /// Ownership / claim array (`C` in Algorithm 4), MIS-2 state, HEC2's
    /// proposer array, suitor-of — any `u32`-per-vertex working state.
    pub(crate) own: Vec<u32>,
    /// Heavy-neighbor array `H[u]`.
    pub(crate) heavy: Vec<u32>,
    /// Visit order / retry queue / suitor work stack.
    pub(crate) queue: Vec<u32>,
    /// Compaction destination (ping-pong partner of `queue`) and two-hop
    /// candidate list.
    pub(crate) qscratch: Vec<u32>,
    /// Inverted permutation (random priority positions) for HEC3-style
    /// representative selection.
    pub(crate) pos: Vec<u32>,
    /// Round-start snapshot of the label array (HEC3 phases 3–4, GOSH
    /// center selection, MIS-2 aggregation).
    pub(crate) snap: Vec<u32>,
    /// u64 sort keys for permutation generation and twin hashing.
    pub(crate) perm_keys: Vec<u64>,
    /// MIS-2 random priorities.
    pub(crate) prio: Vec<u64>,
    /// MIS-2 distance-1 max-propagation sweep / suitor offer weights.
    pub(crate) t1: Vec<u64>,
    /// MIS-2 distance-2 max-propagation sweep / suitor offer priorities.
    pub(crate) t2: Vec<u64>,
    /// MIS-2 distance-1-of-MIS flags.
    pub(crate) near: Vec<u8>,
    /// Relabel flag + prefix-sum array, narrow form (see
    /// [`super::util::relabel_in`]'s width rule).
    pub(crate) flag: Vec<u32>,
    /// Relabel flag array, wide form (only when counts could exceed
    /// `u32`).
    pub(crate) flag_wide: Vec<usize>,
    /// Per-block survivor counts for [`mlcg_par::filter`] compactions.
    pub(crate) fcounts: Vec<usize>,
}

impl MapWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset `buf` to `n` copies of `value` (capacity-preserving).
    pub(crate) fn filled(buf: &mut Vec<u32>, n: usize, value: u32) {
        buf.clear();
        buf.resize(n, value);
    }

    /// Reset `buf` to a copy of `src` (capacity-preserving snapshot).
    pub(crate) fn snapshot(buf: &mut Vec<u32>, src: &[u32]) {
        buf.clear();
        buf.extend_from_slice(src);
    }
}

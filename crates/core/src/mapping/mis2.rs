//! Distance-2 maximal-independent-set coarsening — Bell, Dalton & Olson's
//! MIS(2) aggregation (the paper's Algorithm 14 of the extended report).
//!
//! Luby-style rounds: a vertex enters the MIS when its random priority is
//! the maximum among all *undecided* vertices within distance two (checked
//! with two max-propagation sweeps); every vertex within distance two of a
//! new MIS member is removed. Aggregation then attaches each vertex to a
//! root at distance one, and the remainder through a mapped neighbor
//! (distance two) — maximality guarantees two sweeps suffice.

use super::util::relabel_in;
use super::workspace::MapWorkspace;
use super::{MapStats, Mapping, UNMAPPED};
use mlcg_graph::{Csr, VId};
use mlcg_par::rng::hash_index;
use mlcg_par::{parallel_count, parallel_for, ExecPolicy};

const UNDECIDED: u32 = 0;
const IN_MIS: u32 = 1;
const REMOVED: u32 = 2;

/// MIS(2) coarsening.
pub fn mis2(policy: &ExecPolicy, g: &Csr, seed: u64) -> (Mapping, MapStats) {
    mis2_in(policy, g, seed, &mut MapWorkspace::new())
}

/// [`mis2`] through a level-reused workspace.
pub fn mis2_in(
    policy: &ExecPolicy,
    g: &Csr,
    seed: u64,
    ws: &mut MapWorkspace,
) -> (Mapping, MapStats) {
    let n = g.n();
    if n <= 1 {
        return (
            Mapping {
                map: vec![0; n.min(1)],
                n_coarse: n.min(1),
            },
            MapStats::default(),
        );
    }
    let mut stats = MapStats::default();
    // Unique random priorities: (hash, id) packed into u64 (id in the low
    // bits breaks hash collisions).
    ws.prio.clear();
    ws.prio
        .extend((0..n).map(|u| (hash_index(seed, u as u64) & !0xFFFF_FFFF) | u as u64));
    // `own` doubles as the MIS state array here.
    MapWorkspace::filled(&mut ws.own, n, UNDECIDED);

    // Both propagation arrays and the near flags are fully rewritten every
    // round, so a single capacity-reusing resize suffices.
    ws.t1.clear();
    ws.t1.resize(n, 0);
    ws.t2.clear();
    ws.t2.resize(n, 0);
    ws.near.clear();
    ws.near.resize(n, 0);
    loop {
        let state = &ws.own;
        let undecided = parallel_count(policy, n, |u| state[u] == UNDECIDED);
        if undecided == 0 {
            break;
        }
        // Sweep 1: t1[u] = max undecided priority within distance 1 of u.
        {
            let base = ws.t1.as_mut_ptr() as usize;
            let (state_ref, prio_ref) = (&ws.own, &ws.prio);
            parallel_for(policy, n, move |u| {
                let mut best = if state_ref[u] == UNDECIDED {
                    prio_ref[u]
                } else {
                    0
                };
                for &v in g.neighbors(u as VId) {
                    if state_ref[v as usize] == UNDECIDED {
                        best = best.max(prio_ref[v as usize]);
                    }
                }
                // SAFETY: disjoint writes per index.
                unsafe {
                    (base as *mut u64).add(u).write(best);
                }
            });
        }
        // Sweep 2: t2[u] = max of t1 within distance 1 => max undecided
        // priority within distance 2.
        {
            let base = ws.t2.as_mut_ptr() as usize;
            let t1_ref = &ws.t1;
            parallel_for(policy, n, move |u| {
                let mut best = t1_ref[u];
                for &v in g.neighbors(u as VId) {
                    best = best.max(t1_ref[v as usize]);
                }
                // SAFETY: disjoint writes per index.
                unsafe {
                    (base as *mut u64).add(u).write(best);
                }
            });
        }
        // Select: undecided local distance-2 maxima join the MIS.
        {
            let base = ws.own.as_mut_ptr() as usize;
            let (state_ref, prio_ref, t2_ref) = (&ws.own, &ws.prio, &ws.t2);
            parallel_for(policy, n, move |u| {
                if state_ref[u] == UNDECIDED && prio_ref[u] == t2_ref[u] {
                    // SAFETY: disjoint writes (only u's own slot).
                    unsafe {
                        (base as *mut u32).add(u).write(IN_MIS);
                    }
                }
            });
        }
        // Remove everything within distance 2 of a (new) MIS vertex, via
        // two flag propagations.
        {
            let base = ws.near.as_mut_ptr() as usize;
            let state_ref = &ws.own;
            parallel_for(policy, n, move |u| {
                let hit = state_ref[u] == IN_MIS
                    || g.neighbors(u as VId)
                        .iter()
                        .any(|&v| state_ref[v as usize] == IN_MIS);
                // SAFETY: disjoint writes per index.
                unsafe {
                    (base as *mut u8).add(u).write(u8::from(hit));
                }
            });
        }
        {
            let base = ws.own.as_mut_ptr() as usize;
            let (state_ref, near_ref) = (&ws.own, &ws.near);
            parallel_for(policy, n, move |u| {
                if state_ref[u] == UNDECIDED
                    && (near_ref[u] == 1
                        || g.neighbors(u as VId)
                            .iter()
                            .any(|&v| near_ref[v as usize] == 1))
                {
                    // SAFETY: disjoint writes per index.
                    unsafe {
                        (base as *mut u32).add(u).write(REMOVED);
                    }
                }
            });
        }
        stats.passes += 1;
        let state = &ws.own;
        let now_undecided = parallel_count(policy, n, |u| state[u] == UNDECIDED);
        stats.record_resolved(undecided - now_undecided);
        assert!(now_undecided < undecided, "MIS(2) made no progress");
    }

    // Aggregation: roots, then distance-1 attach, then distance-2 attach.
    let mut m = vec![UNMAPPED; n];
    {
        let base = m.as_mut_ptr() as usize;
        let state_ref = &ws.own;
        parallel_for(policy, n, move |u| {
            if state_ref[u] == IN_MIS {
                // SAFETY: disjoint writes.
                unsafe {
                    (base as *mut u32).add(u).write(u as u32);
                }
            }
        });
    }
    {
        // Distance-1: attach to the highest-priority adjacent root.
        MapWorkspace::snapshot(&mut ws.snap, &m);
        let base = m.as_mut_ptr() as usize;
        let (snap, prio_ref, state_ref) = (&ws.snap, &ws.prio, &ws.own);
        parallel_for(policy, n, move |u| {
            if snap[u] != UNMAPPED {
                return;
            }
            let mut best: Option<(u64, u32)> = None;
            for &v in g.neighbors(u as VId) {
                if state_ref[v as usize] == IN_MIS {
                    let key = (prio_ref[v as usize], v);
                    if best.is_none_or(|(bp, _)| key.0 > bp) {
                        best = Some(key);
                    }
                }
            }
            if let Some((_, v)) = best {
                // SAFETY: disjoint writes.
                unsafe {
                    (base as *mut u32).add(u).write(v);
                }
            }
        });
    }
    // Distance-2 (and a defensive loop for any pathological remainder):
    // attach through any already-mapped neighbor.
    loop {
        let remaining = parallel_count(policy, n, |u| m[u] == UNMAPPED);
        if remaining == 0 {
            break;
        }
        MapWorkspace::snapshot(&mut ws.snap, &m);
        {
            let base = m.as_mut_ptr() as usize;
            let snap = &ws.snap;
            parallel_for(policy, n, move |u| {
                if snap[u] != UNMAPPED {
                    return;
                }
                for &v in g.neighbors(u as VId) {
                    let mv = snap[v as usize];
                    if mv != UNMAPPED {
                        // SAFETY: disjoint writes.
                        unsafe {
                            (base as *mut u32).add(u).write(mv);
                        }
                        return;
                    }
                }
            });
        }
        let now = parallel_count(policy, n, |u| m[u] == UNMAPPED);
        assert!(
            now < remaining,
            "MIS(2) aggregation stalled (disconnected input?)"
        );
    }
    (relabel_in(policy, m, ws), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{testkit, MapMethod};
    use mlcg_graph::generators as gen;

    /// BFS distance between two vertices (test helper).
    fn dist(g: &Csr, a: u32, b: u32) -> usize {
        let mut seen = vec![usize::MAX; g.n()];
        let mut q = std::collections::VecDeque::new();
        seen[a as usize] = 0;
        q.push_back(a);
        while let Some(u) = q.pop_front() {
            if u == b {
                return seen[u as usize];
            }
            for &v in g.neighbors(u) {
                if seen[v as usize] == usize::MAX {
                    seen[v as usize] = seen[u as usize] + 1;
                    q.push_back(v);
                }
            }
        }
        usize::MAX
    }

    #[test]
    fn battery() {
        testkit::run_battery(MapMethod::Mis2);
    }

    #[test]
    fn roots_are_pairwise_distance_three_apart() {
        // The defining MIS(2) property: no two aggregate roots within
        // distance two. Roots are recovered as the (unique) fine vertices
        // that kept their own aggregate: re-derive by checking that each
        // aggregate contains exactly one vertex that is adjacent-or-equal
        // to every member (the star center). Simpler: rerun and inspect.
        let g = gen::grid2d(9, 9);
        let n = g.n();
        let (m, _) = mis2(&ExecPolicy::serial(), &g, 7);
        // Recover one representative per aggregate: a member whose every
        // aggregate sibling is within distance 2 — take the member that is
        // within distance 2 of all others.
        let mut members: Vec<Vec<u32>> = vec![vec![]; m.n_coarse];
        for u in 0..n as u32 {
            members[m.map[u as usize] as usize].push(u);
        }
        // Check the diameter bound of each aggregate: every member is
        // within distance 2 of some center, so the diameter is at most 4.
        for (a, mem) in members.iter().enumerate() {
            for i in 0..mem.len() {
                for j in (i + 1)..mem.len() {
                    let d = dist(&g, mem[i], mem[j]);
                    assert!(d <= 4, "aggregate {a}: members {d} apart");
                }
            }
        }
    }

    #[test]
    fn aggressive_on_dense_graphs() {
        // On a clique, the entire graph is one aggregate.
        let g = gen::complete(20);
        let (m, _) = mis2(&ExecPolicy::serial(), &g, 3);
        assert_eq!(m.n_coarse, 1);
    }

    #[test]
    fn coarsens_faster_than_matching() {
        // MIS(2) needs far fewer levels than matching; per level, its
        // ratio on meshes is well above 2 (aggregates are distance-2 balls).
        let g = gen::grid2d(25, 25);
        let (m, _) = mis2(&ExecPolicy::serial(), &g, 5);
        assert!(m.coarsening_ratio() > 3.0, "ratio {}", m.coarsening_ratio());
    }

    #[test]
    fn aggregates_connected() {
        for (name, g) in testkit::battery() {
            let (m, _) = mis2(&ExecPolicy::serial(), &g, 11);
            testkit::check_mapping(name, &g, &m);
            testkit::check_aggregates_connected(&g, &m);
        }
    }

    #[test]
    fn path_roots_spacing() {
        let g = gen::path(30);
        let (m, _) = mis2(&ExecPolicy::serial(), &g, 13);
        // On a path, aggregates are intervals of length <= 5 (center +- 2).
        let sizes = m.aggregate_sizes();
        assert!(sizes.iter().all(|&s| s <= 5), "sizes {sizes:?}");
    }
}
